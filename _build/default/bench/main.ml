(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md for the per-experiment index), plus a
   Bechamel wall-clock microbenchmark of the core operations.

     dune exec bench/main.exe                 # everything, small scale
     dune exec bench/main.exe -- fig3 tab1    # selected experiments
     dune exec bench/main.exe -- --scale 2    # larger runs
     dune exec bench/main.exe -- --list       # available ids *)

let list_experiments () =
  Printf.printf "available experiments:\n";
  List.iter
    (fun e ->
      Printf.printf "  %-8s %s\n" e.Harness.Experiments.id
        e.Harness.Experiments.what)
    Harness.Experiments.all

(* Wall-clock microbenchmark of the real code paths (one Bechamel test per
   core operation).  The simulator's modeled numbers come from the
   experiments; this measures what the OCaml implementation itself costs. *)
let bechamel_micro () =
  let open Bechamel in
  let dev =
    Pmem.Device.create
      ~config:(Pmem.Config.default ~size:(64 * 1024 * 1024) ())
      ()
  in
  let t = Ccl_btree.Tree.create dev in
  let n = 50_000 in
  Array.iter
    (fun k -> Ccl_btree.Tree.upsert t k 1L)
    (Workload.Keygen.shuffled_range ~seed:1 n);
  let rng = Random.State.make [| 7 |] in
  let next () = Int64.of_int (1 + Random.State.int rng n) in
  (* competitor indexes, for wall-clock comparison of the implementations *)
  let baseline_tests =
    List.map
      (fun spec ->
        let bdev =
          Pmem.Device.create
            ~config:(Pmem.Config.default ~size:(64 * 1024 * 1024) ())
            ()
        in
        let drv = Harness.Runner.build spec bdev in
        Array.iter
          (fun k -> drv.Baselines.Index_intf.upsert k 1L)
          (Workload.Keygen.shuffled_range ~seed:1 n);
        Test.make
          ~name:(Harness.Runner.name spec ^ "/upsert")
          (Staged.stage (fun () ->
               drv.Baselines.Index_intf.upsert (next ()) 2L)))
      [ Harness.Runner.Fastfair; Harness.Runner.Fptree; Harness.Runner.Flatstore ]
  in
  let tests =
    Test.make_grouped ~name:"wall-clock"
      ([
         Test.make ~name:"CCL-BTree/upsert"
           (Staged.stage (fun () -> Ccl_btree.Tree.upsert t (next ()) 2L));
         Test.make ~name:"CCL-BTree/search"
           (Staged.stage (fun () ->
                ignore (Ccl_btree.Tree.search t (next ()))));
         Test.make ~name:"CCL-BTree/scan-100"
           (Staged.stage (fun () ->
                ignore (Ccl_btree.Tree.scan t ~start:(next ()) 100)));
         Test.make ~name:"CCL-BTree/delete+reinsert"
           (Staged.stage (fun () ->
                let k = next () in
                Ccl_btree.Tree.delete t k;
                Ccl_btree.Tree.upsert t k 3L));
       ]
      @ baseline_tests)
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  Harness.Report.section "Bechamel: wall-clock cost of the implementation";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) ->
        rows := [ name; Printf.sprintf "%.0f" est ] :: !rows
      | _ -> ())
    results;
  Harness.Report.table
    ~header:[ "operation"; "ns/op (host)" ]
    (List.sort compare !rows)

let run_ids ids scale_level bech =
  let scale = Harness.Scale.of_level scale_level in
  let selected =
    match ids with
    | [] -> Harness.Experiments.all
    | ids ->
      List.map
        (fun id ->
          match Harness.Experiments.find id with
          | Some e -> e
          | None ->
            Printf.eprintf "unknown experiment %S (try --list)\n" id;
            exit 2)
        ids
  in
  List.iter
    (fun e ->
      let t0 = Unix.gettimeofday () in
      e.Harness.Experiments.run scale;
      Printf.printf "  [%s done in %.1fs]\n%!" e.Harness.Experiments.id
        (Unix.gettimeofday () -. t0))
    selected;
  if bech then bechamel_micro ()

open Cmdliner

let ids_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT")

let scale_arg =
  Arg.(
    value & opt int 1
    & info [ "scale" ] ~docv:"LEVEL" ~doc:"Workload scale level (1-3).")

let list_arg =
  Arg.(value & flag & info [ "list" ] ~doc:"List experiment ids and exit.")

let no_bechamel_arg =
  Arg.(
    value & flag
    & info [ "no-bechamel" ] ~doc:"Skip the wall-clock microbenchmark.")

let cmd =
  let doc = "Regenerate the CCL-BTree paper's tables and figures" in
  Cmd.v
    (Cmd.info "ccl-bench" ~doc)
    Term.(
      const (fun list ids scale no_bech ->
          if list then list_experiments ()
          else run_ids ids scale ((ids = []) && not no_bech))
      $ list_arg $ ids_arg $ scale_arg $ no_bechamel_arg)

let () = exit (Cmd.eval cmd)
