(* Amplification explorer: compare any two indexes' PM traffic on a
   chosen workload — the paper's §2 motivation as an interactive tool.

     dune exec examples/amplification_explorer.exe -- \
       --left ccl --right fastfair --dist zipfian --ops 20000

   Indexes: ccl fastfair fptree lbtree utree dptree pactree flatstore lsm
   Distributions: uniform zipfian sequential *)

module D = Pmem.Device
module S = Pmem.Stats
module I = Baselines.Index_intf
module K = Workload.Keygen

let spec_of = function
  | "ccl" -> Harness.Runner.ccl_default
  | "fastfair" -> Harness.Runner.Fastfair
  | "fptree" -> Harness.Runner.Fptree
  | "lbtree" -> Harness.Runner.Lbtree
  | "utree" -> Harness.Runner.Utree
  | "dptree" -> Harness.Runner.Dptree
  | "pactree" -> Harness.Runner.Pactree
  | "flatstore" -> Harness.Runner.Flatstore
  | "lsm" -> Harness.Runner.Lsm
  | s -> raise (Arg.Bad ("unknown index " ^ s))

let gen_of dist ~space =
  match dist with
  | "uniform" -> K.uniform ~seed:5 ~space
  | "zipfian" -> K.zipfian ~seed:5 ~space ~theta:0.9
  | "sequential" -> K.sequential ~space
  | s -> raise (Arg.Bad ("unknown distribution " ^ s))

let measure spec ~dist ~warmup ~ops =
  let dev = Harness.Runner.device ~mb:96 () in
  let drv = Harness.Runner.build spec dev in
  D.set_classifier dev
    (Some (Pmalloc.Alloc.classify (drv.I.allocator ())));
  Array.iter
    (fun k -> drv.I.upsert k 1L)
    (K.shuffled_range ~seed:1 warmup);
  let gen = gen_of dist ~space:(2 * warmup) in
  let before = D.snapshot dev in
  for i = 1 to ops do
    drv.I.upsert (K.next gen) (Int64.of_int i)
  done;
  drv.I.flush_all ();
  D.drain dev;
  S.diff ~after:(D.snapshot dev) ~before

let report name (d : S.t) =
  Printf.printf "%s\n" name;
  Printf.printf "  user bytes        %d\n" d.S.user_bytes;
  Printf.printf "  cacheline flushes %d\n" d.S.clwb_count;
  Printf.printf "  XPBuffer writes   %d B\n" d.S.xpbuffer_write_bytes;
  Printf.printf "  media writes      %d B in %d XPLines\n" d.S.media_write_bytes
    d.S.media_write_lines;
  Printf.printf "    leaf/node data  %d B\n" d.S.media_write_bytes_by_class.(1);
  Printf.printf "    log data        %d B\n" d.S.media_write_bytes_by_class.(2);
  Printf.printf "  CLI-amplification %.2f\n" (S.cli_amplification d);
  Printf.printf "  XBI-amplification %.2f\n" (S.xbi_amplification d)

let () =
  let left = ref "ccl" and right = ref "fastfair" in
  let dist = ref "uniform" and ops = ref 20_000 in
  Arg.parse
    [
      ("--left", Arg.Set_string left, "left index");
      ("--right", Arg.Set_string right, "right index");
      ("--dist", Arg.Set_string dist, "uniform | zipfian | sequential");
      ("--ops", Arg.Set_int ops, "measured operations");
    ]
    (fun _ -> ())
    "amplification_explorer";
  let warmup = !ops in
  let dl = measure (spec_of !left) ~dist:!dist ~warmup ~ops:!ops in
  let dr = measure (spec_of !right) ~dist:!dist ~warmup ~ops:!ops in
  report !left dl;
  report !right dr;
  let ratio =
    S.xbi_amplification dr /. Float.max 0.01 (S.xbi_amplification dl)
  in
  Printf.printf "\n%s writes %.2fx %s media bytes per user byte (%s keys)\n"
    !right ratio !left !dist
