(* Crash-recovery torture demo: run a mixed workload, power-fail the
   device at a random point with adversarial persistency (each unflushed
   cacheline survives with probability p), recover, and audit the
   durability contract (§3.3): every acknowledged operation must be
   recovered, nothing deleted may resurrect.

     dune exec examples/crash_recovery.exe -- [--rounds 20] [--ops 5000] *)

module D = Pmem.Device
module T = Ccl_btree.Tree
module K = Workload.Keygen

let run_round ~seed ~ops =
  let dev =
    D.create
      ~config:
        {
          (Pmem.Config.default ~size:(32 * 1024 * 1024) ()) with
          persist_prob = 0.3;
          crash_seed = seed;
        }
      ()
  in
  let t = T.create dev in
  let model = Hashtbl.create 1024 in
  let rng = Random.State.make [| seed |] in
  let crash_at = 1 + Random.State.int rng ops in
  (* run ops; the model records only ACKNOWLEDGED operations *)
  for i = 1 to crash_at do
    let key = Int64.of_int (1 + Random.State.int rng 2000) in
    if Random.State.int rng 10 = 0 then begin
      T.delete t key;
      Hashtbl.remove model key
    end
    else begin
      let v = Int64.of_int i in
      T.upsert t key v;
      Hashtbl.replace model key v
    end
  done;
  D.crash dev;
  let t2 = T.recover dev in
  T.check_invariants t2;
  let lost = ref 0 and resurrected = ref 0 in
  Hashtbl.iter
    (fun k v -> if T.search t2 k <> Some v then incr lost)
    model;
  for key = 1 to 2000 do
    let k = Int64.of_int key in
    if (not (Hashtbl.mem model k)) && T.search t2 k <> None then
      incr resurrected
  done;
  (crash_at, Hashtbl.length model, !lost, !resurrected)

let () =
  let rounds = ref 20 and ops = ref 5000 in
  let spec =
    [
      ("--rounds", Arg.Set_int rounds, "number of crash rounds");
      ("--ops", Arg.Set_int ops, "operations per round");
    ]
  in
  Arg.parse spec (fun _ -> ()) "crash_recovery [--rounds N] [--ops N]";
  Printf.printf "%6s  %8s  %7s  %5s  %11s\n" "round" "crash@op" "entries"
    "lost" "resurrected";
  let failures = ref 0 in
  for r = 1 to !rounds do
    let crash_at, entries, lost, resurrected =
      run_round ~seed:(r * 1000 + 7) ~ops:!ops
    in
    if lost > 0 || resurrected > 0 then incr failures;
    Printf.printf "%6d  %8d  %7d  %5d  %11d\n" r crash_at entries lost
      resurrected
  done;
  if !failures = 0 then
    Printf.printf "durability contract held in all %d rounds\n" !rounds
  else begin
    Printf.printf "VIOLATIONS in %d rounds\n" !failures;
    exit 1
  end
