examples/hash_quickstart.mli:
