examples/quickstart.ml: Array Ccl_btree Int64 List Option Pmem Printf String
