examples/crash_recovery.ml: Arg Ccl_btree Hashtbl Int64 Pmem Printf Random Workload
