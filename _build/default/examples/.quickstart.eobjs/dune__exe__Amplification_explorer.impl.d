examples/amplification_explorer.ml: Arg Array Baselines Float Harness Int64 Pmalloc Pmem Printf Workload
