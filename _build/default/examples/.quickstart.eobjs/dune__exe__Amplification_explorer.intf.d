examples/amplification_explorer.mli:
