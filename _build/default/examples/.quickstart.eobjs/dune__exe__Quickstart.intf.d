examples/quickstart.mli:
