examples/hash_quickstart.ml: Ccl_hash Int64 Pmem Printf
