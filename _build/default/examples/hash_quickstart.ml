(* CCL-Hash quickstart: the paper's §6 generality claim in action — the
   same buffering, write-conservative logging and locality-aware GC on a
   persistent hash table.

     dune exec examples/hash_quickstart.exe *)

module D = Pmem.Device
module H = Ccl_hash.Hash_table

let () =
  let dev =
    D.create ~config:(Pmem.Config.default ~size:(32 * 1024 * 1024) ()) ()
  in
  let h = H.create ~buckets:256 dev in
  for i = 1 to 20_000 do
    H.upsert h (Int64.of_int i) (Int64.of_int (i * 3))
  done;
  assert (H.search h 777L = Some 2331L);
  H.delete h 777L;
  assert (H.search h 777L = None);
  Printf.printf "  %d entries across 256 bucket chains\n" (H.count_entries h);

  (* same amplification story as the tree *)
  let st = D.snapshot dev in
  Printf.printf "  CLI %.2f / XBI %.2f (buffered hash inserts)\n"
    (Pmem.Stats.cli_amplification st)
    (Pmem.Stats.xbi_amplification st);

  (* crash consistency through WAL replay, like the tree *)
  D.crash dev;
  let h2 = H.recover dev in
  assert (H.search h2 500L = Some 1500L);
  assert (H.search h2 777L = None);
  H.check_invariants h2;
  Printf.printf "  recovered %d entries after crash\n" (H.count_entries h2);
  print_endline "hash quickstart: OK"
