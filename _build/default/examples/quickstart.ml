(* Quickstart: the CCL-BTree public API in two minutes.

     dune exec examples/quickstart.exe

   Creates a simulated PM device, builds a tree, runs point and range
   operations (fixed-size and variable-size), inspects the hardware
   counters, then demonstrates crash recovery. *)

module D = Pmem.Device
module T = Ccl_btree.Tree

let () =
  (* a 64 MB simulated Optane DIMM *)
  let dev = D.create ~config:(Pmem.Config.default ~size:(64 * 1024 * 1024) ()) () in
  let t = T.create dev in

  (* fixed-size API: int64 keys and values (value 0 is reserved) *)
  for i = 1 to 10_000 do
    T.upsert t (Int64.of_int i) (Int64.of_int (i * 10))
  done;
  assert (T.search t 4242L = Some 42420L);
  T.delete t 4242L;
  assert (T.search t 4242L = None);

  (* range query: entries come back in key order despite unsorted leaves *)
  let r = T.scan t ~start:100L 5 in
  Array.iter (fun (k, v) -> Printf.printf "  %Ld -> %Ld\n" k v) r;

  (* variable-size API: out-of-band values behind indirection pointers *)
  T.upsert_str t "greeting" (String.concat " " (List.init 40 (fun _ -> "hello")));
  Printf.printf "  greeting: %d bytes stored out-of-band\n"
    (String.length (Option.get (T.search_str t "greeting")));

  (* the simulated device keeps Optane-style hardware counters *)
  let st = D.snapshot dev in
  Printf.printf "  CLI-amplification %.2f, XBI-amplification %.2f\n"
    (Pmem.Stats.cli_amplification st)
    (Pmem.Stats.xbi_amplification st);

  (* crash consistency: power-fail the device and recover *)
  D.crash dev;
  let t2 = T.recover dev in
  assert (T.search t2 7777L = Some 77770L);
  assert (T.search t2 4242L = None);
  T.check_invariants t2;
  Printf.printf "  recovered %d entries after crash\n" (T.count_entries t2);
  print_endline "quickstart: OK"
