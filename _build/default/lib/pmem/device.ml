let ( .%[] ) = Bytes.get
let ( .%[]<- ) = Bytes.set

type xpslot = {
  data : Bytes.t;  (* 256 B staging area *)
  mutable valid : int;  (* bitmask over the 4 sublines *)
  mutable lru : int;
}

(* Growable ring of candidate eviction victims.  Eviction picks a random
   element among the oldest [jitter] entries: caches evict by set
   conflict, which preserves temporal order only coarsely — the jitter is
   what turns a completed sequential write burst into slightly reordered
   write-backs (the eADR observation of paper §5.5). *)
module Ring = struct
  type t = {
    mutable buf : int array;
    mutable head : int;
    mutable len : int;
  }

  let create () = { buf = Array.make 1024 0; head = 0; len = 0 }

  let push t v =
    if t.len = Array.length t.buf then begin
      let nbuf = Array.make (2 * t.len) 0 in
      for i = 0 to t.len - 1 do
        nbuf.(i) <- t.buf.((t.head + i) mod t.len)
      done;
      t.buf <- nbuf;
      t.head <- 0
    end;
    t.buf.((t.head + t.len) mod Array.length t.buf) <- v;
    t.len <- t.len + 1

  let pop_jittered t rng ~jitter =
    if t.len = 0 then None
    else begin
      let cap = Array.length t.buf in
      let r = Random.State.int rng (min jitter t.len) in
      let i = (t.head + r) mod cap in
      let v = t.buf.(i) in
      (* move the head element into the vacated slot, then advance *)
      t.buf.(i) <- t.buf.(t.head);
      t.head <- (t.head + 1) mod cap;
      t.len <- t.len - 1;
      Some v
    end

  let clear t =
    t.head <- 0;
    t.len <- 0
end

type t = {
  cfg : Config.t;
  work : Bytes.t;  (* logical (volatile) content *)
  media : Bytes.t;  (* physically persisted content *)
  dirty : (int, unit) Hashtbl.t;  (* dirty cachelines in the CPU cache *)
  dirty_fifo : Ring.t;  (* eviction order (may hold stale entries) *)
  pending : (int, Bytes.t) Hashtbl.t;  (* clwb'd, not yet fenced *)
  xpbuffer : (int, xpslot) Hashtbl.t;
  read_cache : (int, int) Hashtbl.t;  (* xpline -> lru stamp *)
  mutable lru_clock : int;
  mutable rng : Random.State.t;
  stats : Stats.t;
  mutable classifier : (int -> int) option;
      (* maps an XPLine address to a traffic class for attribution *)
  mutable fail_after_fences : int option;
      (* fault injection: power-fail at the n-th upcoming sfence *)
}

exception Power_failure
(* raised by [sfence] when a planned failure fires; the fence's staged
   lines remain un-fenced, i.e. subject to the adversarial crash coin *)

let create ?config () =
  let cfg = match config with Some c -> c | None -> Config.default () in
  {
    cfg;
    work = Bytes.make cfg.Config.size '\000';
    media = Bytes.make cfg.Config.size '\000';
    dirty = Hashtbl.create 4096;
    dirty_fifo = Ring.create ();
    pending = Hashtbl.create 64;
    xpbuffer = Hashtbl.create cfg.Config.xpbuffer_lines;
    read_cache = Hashtbl.create cfg.Config.read_cache_lines;
    lru_clock = 0;
    rng = Random.State.make [| cfg.Config.crash_seed |];
    stats = Stats.create ();
    classifier = None;
    fail_after_fences = None;
  }

let set_classifier t f = t.classifier <- f
let plan_failure t ~after_fences = t.fail_after_fences <- Some after_fences
let cancel_failure t = t.fail_after_fences <- None

let config t = t.cfg
let size t = t.cfg.Config.size
let stats t = t.stats
let snapshot t = Stats.copy t.stats
let add_user_bytes t n = t.stats.Stats.user_bytes <- t.stats.Stats.user_bytes + n
let dirty_lines t = Hashtbl.length t.dirty
let xpbuffer_occupancy t = Hashtbl.length t.xpbuffer
let media_byte t addr = Char.code t.media.%[addr]
let peek_u8 t addr = Char.code t.work.%[addr]

let tick t =
  t.lru_clock <- t.lru_clock + 1;
  t.lru_clock

let check_range t addr len =
  assert (addr >= 0 && len >= 0 && addr + len <= t.cfg.Config.size)

(* --- media write-back path ----------------------------------------- *)

let write_back_slot t xp slot =
  let st = t.stats in
  if slot.valid <> 0 then begin
    if slot.valid <> 0b1111 then begin
      (* partially buffered XPLine: read-modify-write fill from media *)
      st.Stats.media_read_bytes <-
        st.Stats.media_read_bytes + Geometry.xpline_size;
      st.Stats.media_read_lines <- st.Stats.media_read_lines + 1
    end;
    for sub = 0 to Geometry.lines_per_xpline - 1 do
      if slot.valid land (1 lsl sub) <> 0 then
        Bytes.blit slot.data
          (sub * Geometry.cacheline_size)
          t.media
          (xp + (sub * Geometry.cacheline_size))
          Geometry.cacheline_size
    done;
    st.Stats.media_write_bytes <-
      st.Stats.media_write_bytes + Geometry.xpline_size;
    st.Stats.media_write_lines <- st.Stats.media_write_lines + 1;
    match t.classifier with
    | Some f ->
      let c = f xp in
      if c >= 0 && c < Stats.classes then
        st.Stats.media_write_bytes_by_class.(c) <-
          st.Stats.media_write_bytes_by_class.(c) + Geometry.xpline_size
    | None -> ()
  end

let evict_lru_xpline t =
  let victim = ref None in
  let best = ref max_int in
  Hashtbl.iter
    (fun xp slot ->
      if slot.lru < !best then begin
        best := slot.lru;
        victim := Some (xp, slot)
      end)
    t.xpbuffer;
  match !victim with
  | None -> ()
  | Some (xp, slot) ->
    write_back_slot t xp slot;
    Hashtbl.remove t.xpbuffer xp

(* A 64 B cacheline (snapshotted in [line_data]) arrives at the XPBuffer.
   This is the persistence boundary: once here, the data survives power
   failure (ADR domain). *)
let xpbuffer_insert t line line_data =
  let st = t.stats in
  let xp = Geometry.xpline_of line in
  let sub = Geometry.subline_of line in
  let slot =
    match Hashtbl.find_opt t.xpbuffer xp with
    | Some slot ->
      st.Stats.xpbuffer_hits <- st.Stats.xpbuffer_hits + 1;
      slot
    | None ->
      st.Stats.xpbuffer_misses <- st.Stats.xpbuffer_misses + 1;
      if Hashtbl.length t.xpbuffer >= t.cfg.Config.xpbuffer_lines then
        evict_lru_xpline t;
      let slot =
        { data = Bytes.make Geometry.xpline_size '\000'; valid = 0; lru = 0 }
      in
      Hashtbl.replace t.xpbuffer xp slot;
      slot
  in
  Bytes.blit line_data 0 slot.data
    (sub * Geometry.cacheline_size)
    Geometry.cacheline_size;
  slot.valid <- slot.valid lor (1 lsl sub);
  slot.lru <- tick t;
  st.Stats.xpbuffer_write_bytes <-
    st.Stats.xpbuffer_write_bytes + Geometry.cacheline_size

let snapshot_line t line =
  Bytes.sub t.work line Geometry.cacheline_size

(* --- CPU cache (store buffer) path ---------------------------------- *)

(* Capacity eviction of a dirty line: an implicit, locality-oblivious
   flush straight into the XPBuffer. *)
let evict_one_dirty t =
  (* Under eADR nothing is ever explicitly flushed, so the eviction stream
     carries every thread's lines interleaved: write-backs of one XPLine's
     cachelines scatter far beyond the XPBuffer's combining window.  With
     explicit flushes (ADR) capacity evictions are rare and roughly
     temporal. *)
  let jitter = if t.cfg.Config.eadr then 2048 else 64 in
  let rec pop () =
    match Ring.pop_jittered t.dirty_fifo t.rng ~jitter with
    | None -> None
    | Some line -> if Hashtbl.mem t.dirty line then Some line else pop ()
  in
  match pop () with
  | None -> ()
  | Some line ->
    Hashtbl.remove t.dirty line;
    t.stats.Stats.cpu_evictions <- t.stats.Stats.cpu_evictions + 1;
    xpbuffer_insert t line (snapshot_line t line)

let mark_dirty t line =
  if not (Hashtbl.mem t.dirty line) then begin
    Hashtbl.replace t.dirty line ();
    Ring.push t.dirty_fifo line;
    if Hashtbl.length t.dirty > t.cfg.Config.cpu_cache_lines then
      evict_one_dirty t
  end

let store t addr b =
  let len = Bytes.length b in
  check_range t addr len;
  Bytes.blit b 0 t.work addr len;
  t.stats.Stats.store_bytes <- t.stats.Stats.store_bytes + len;
  List.iter (mark_dirty t) (Geometry.lines_in_range addr len)

let store_string t addr s =
  let len = String.length s in
  check_range t addr len;
  Bytes.blit_string s 0 t.work addr len;
  t.stats.Stats.store_bytes <- t.stats.Stats.store_bytes + len;
  List.iter (mark_dirty t) (Geometry.lines_in_range addr len)

let store_u64 t addr v =
  check_range t addr 8;
  Bytes.set_int64_le t.work addr v;
  t.stats.Stats.store_bytes <- t.stats.Stats.store_bytes + 8;
  List.iter (mark_dirty t) (Geometry.lines_in_range addr 8)

let store_u8 t addr v =
  check_range t addr 1;
  t.work.%[addr] <- Char.chr (v land 0xff);
  t.stats.Stats.store_bytes <- t.stats.Stats.store_bytes + 1;
  mark_dirty t (Geometry.line_of addr)

let fill t addr len c =
  check_range t addr len;
  Bytes.fill t.work addr len c;
  t.stats.Stats.store_bytes <- t.stats.Stats.store_bytes + len;
  List.iter (mark_dirty t) (Geometry.lines_in_range addr len)

(* --- load path ------------------------------------------------------- *)

let read_cache_insert t xp =
  if Hashtbl.length t.read_cache >= t.cfg.Config.read_cache_lines then begin
    (* evict the least recently stamped XPLine *)
    let victim = ref (-1) and best = ref max_int in
    Hashtbl.iter
      (fun k stamp ->
        if stamp < !best then begin
          best := stamp;
          victim := k
        end)
      t.read_cache;
    if !victim >= 0 then Hashtbl.remove t.read_cache !victim
  end;
  Hashtbl.replace t.read_cache xp (tick t)

(* A load touching an XPLine costs a media read unless that XPLine is in
   the XPBuffer, in the read cache, or still dirty in the CPU cache.  The
   CPU cache holds 64 B cachelines, not whole XPLines, so only the
   sublines the load actually covers can be served from it. *)
let account_load t addr len =
  let cached_in_cpu xp =
    let lo = max addr xp in
    let hi = min (addr + len) (xp + Geometry.xpline_size) in
    List.for_all
      (fun line -> Hashtbl.mem t.dirty line || Hashtbl.mem t.pending line)
      (Geometry.lines_in_range lo (hi - lo))
  in
  let visit xp =
    if Hashtbl.mem t.xpbuffer xp then ()
    else if Hashtbl.mem t.read_cache xp then
      Hashtbl.replace t.read_cache xp (tick t)
    else if cached_in_cpu xp then ()
    else begin
      t.stats.Stats.media_read_bytes <-
        t.stats.Stats.media_read_bytes + Geometry.xpline_size;
      t.stats.Stats.media_read_lines <- t.stats.Stats.media_read_lines + 1;
      read_cache_insert t xp
    end
  in
  List.iter visit (Geometry.xplines_in_range addr len)

let load t addr len =
  check_range t addr len;
  account_load t addr len;
  Bytes.sub t.work addr len

let load_u64 t addr =
  check_range t addr 8;
  account_load t addr 8;
  Bytes.get_int64_le t.work addr

let load_u8 t addr =
  check_range t addr 1;
  account_load t addr 1;
  Char.code t.work.%[addr]

(* --- persistence primitives ------------------------------------------ *)

(* Under eADR the paper's methodology removes flush instructions entirely
   (§5.5): caches are persistent, and media traffic is driven by capacity
   evictions instead of explicit flushes.  We model that by making
   clwb/sfence free no-ops in eADR mode. *)
let clwb t addr =
  if not t.cfg.Config.eadr then begin
    let line = Geometry.line_of addr in
    t.stats.Stats.clwb_count <- t.stats.Stats.clwb_count + 1;
    if Hashtbl.mem t.dirty line then begin
      Hashtbl.remove t.dirty line;
      Hashtbl.replace t.pending line (snapshot_line t line)
    end
  end

let flush_range t addr len =
  List.iter (clwb t) (Geometry.lines_in_range addr len)

let sfence t =
  if not t.cfg.Config.eadr then begin
    (match t.fail_after_fences with
    | Some n when n <= 1 ->
      t.fail_after_fences <- None;
      (* power fails before this fence completes: its staged lines stay
         in the volatile domain *)
      raise Power_failure
    | Some n -> t.fail_after_fences <- Some (n - 1)
    | None -> ());
    t.stats.Stats.sfence_count <- t.stats.Stats.sfence_count + 1;
    let staged =
      Hashtbl.fold (fun line b acc -> (line, b) :: acc) t.pending []
    in
    Hashtbl.reset t.pending;
    let ordered = List.sort (fun (a, _) (b, _) -> compare a b) staged in
    List.iter (fun (line, b) -> xpbuffer_insert t line b) ordered
  end

let persist t addr len =
  flush_range t addr len;
  sfence t

let drain t =
  let dirty = Hashtbl.fold (fun line () acc -> line :: acc) t.dirty [] in
  Hashtbl.reset t.dirty;
  Ring.clear t.dirty_fifo;
  List.iter
    (fun line -> xpbuffer_insert t line (snapshot_line t line))
    (List.sort compare dirty);
  sfence t;
  let slots = Hashtbl.fold (fun xp slot acc -> (xp, slot) :: acc) t.xpbuffer [] in
  Hashtbl.reset t.xpbuffer;
  let ordered = List.sort (fun (a, _) (b, _) -> compare a b) slots in
  List.iter (fun (xp, slot) -> write_back_slot t xp slot) ordered

(* --- host-file persistence --------------------------------------------- *)

let image_magic = "PMEMIMG1"

let save_image t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc image_magic;
      output_binary_int oc (Bytes.length t.media);
      output_bytes oc t.media)

let load_image ?config path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let magic, size =
        try
          let magic = really_input_string ic (String.length image_magic) in
          (magic, if magic = image_magic then input_binary_int ic else 0)
        with End_of_file ->
          invalid_arg "Device.load_image: truncated image header"
      in
      if magic <> image_magic then
        invalid_arg "Device.load: not a PM image file";
      let remaining = in_channel_length ic - pos_in ic in
      if size < 0 || size > remaining then
        invalid_arg
          (Printf.sprintf
             "Device.load_image: truncated or corrupt image (declares %d \
              media bytes, file holds %d)"
             size remaining);
      let cfg =
        match config with Some c -> { c with Config.size } | None -> Config.default ~size ()
      in
      let t = create ~config:cfg () in
      really_input ic t.media 0 size;
      Bytes.blit t.media 0 t.work 0 size;
      t)

(* --- checkpoint / restore --------------------------------------------- *)

(* Deep snapshot of the complete device state, including the adversarial
   RNG and the counters: restoring one and replaying the same operations
   reproduces the original execution bit for bit.  This is what lets the
   crash-state model checker re-enter the same workload once per fence
   index without re-formatting a device each time. *)
type checkpoint = {
  ck_work : Bytes.t;
  ck_media : Bytes.t;
  ck_dirty : (int, unit) Hashtbl.t;
  ck_fifo_buf : int array;
  ck_fifo_head : int;
  ck_fifo_len : int;
  ck_pending : (int, Bytes.t) Hashtbl.t;
  ck_xpbuffer : (int, xpslot) Hashtbl.t;
  ck_read_cache : (int, int) Hashtbl.t;
  ck_lru_clock : int;
  ck_rng : Random.State.t;
  ck_stats : Stats.t;
  ck_fail_after_fences : int option;
}

let copy_slot slot =
  { data = Bytes.copy slot.data; valid = slot.valid; lru = slot.lru }

let checkpoint t =
  let pending = Hashtbl.create (max 16 (Hashtbl.length t.pending)) in
  Hashtbl.iter (fun l b -> Hashtbl.replace pending l (Bytes.copy b)) t.pending;
  let xpbuffer = Hashtbl.create (max 16 (Hashtbl.length t.xpbuffer)) in
  Hashtbl.iter (fun xp s -> Hashtbl.replace xpbuffer xp (copy_slot s)) t.xpbuffer;
  {
    ck_work = Bytes.copy t.work;
    ck_media = Bytes.copy t.media;
    ck_dirty = Hashtbl.copy t.dirty;
    ck_fifo_buf = Array.copy t.dirty_fifo.Ring.buf;
    ck_fifo_head = t.dirty_fifo.Ring.head;
    ck_fifo_len = t.dirty_fifo.Ring.len;
    ck_pending = pending;
    ck_xpbuffer = xpbuffer;
    ck_read_cache = Hashtbl.copy t.read_cache;
    ck_lru_clock = t.lru_clock;
    ck_rng = Random.State.copy t.rng;
    ck_stats = Stats.copy t.stats;
    ck_fail_after_fences = t.fail_after_fences;
  }

let restore t ck =
  if Bytes.length ck.ck_work <> Bytes.length t.work then
    invalid_arg "Device.restore: checkpoint from a different device size";
  Bytes.blit ck.ck_work 0 t.work 0 (Bytes.length t.work);
  Bytes.blit ck.ck_media 0 t.media 0 (Bytes.length t.media);
  Hashtbl.reset t.dirty;
  Hashtbl.iter (fun l () -> Hashtbl.replace t.dirty l ()) ck.ck_dirty;
  t.dirty_fifo.Ring.buf <- Array.copy ck.ck_fifo_buf;
  t.dirty_fifo.Ring.head <- ck.ck_fifo_head;
  t.dirty_fifo.Ring.len <- ck.ck_fifo_len;
  Hashtbl.reset t.pending;
  Hashtbl.iter (fun l b -> Hashtbl.replace t.pending l (Bytes.copy b))
    ck.ck_pending;
  Hashtbl.reset t.xpbuffer;
  Hashtbl.iter (fun xp s -> Hashtbl.replace t.xpbuffer xp (copy_slot s))
    ck.ck_xpbuffer;
  Hashtbl.reset t.read_cache;
  Hashtbl.iter (fun xp stamp -> Hashtbl.replace t.read_cache xp stamp)
    ck.ck_read_cache;
  t.lru_clock <- ck.ck_lru_clock;
  t.rng <- Random.State.copy ck.ck_rng;
  Stats.blit ~src:ck.ck_stats ~dst:t.stats;
  t.fail_after_fences <- ck.ck_fail_after_fences

(* --- crash ------------------------------------------------------------ *)

let crash t =
  t.stats.Stats.crashes <- t.stats.Stats.crashes + 1;
  (* a failure plan dies with the power: it must not fire at a fence of
     the recovery that follows *)
  t.fail_after_fences <- None;
  let keep () =
    t.cfg.Config.eadr
    || Random.State.float t.rng 1.0 < t.cfg.Config.persist_prob
  in
  (* Unfenced flushes and plain dirty lines persist adversarially. *)
  let pending = Hashtbl.fold (fun l b acc -> (l, b) :: acc) t.pending [] in
  Hashtbl.reset t.pending;
  List.iter
    (fun (line, b) -> if keep () then xpbuffer_insert t line b)
    (List.sort (fun (a, _) (b, _) -> compare a b) pending)
  ;
  let dirty = Hashtbl.fold (fun l () acc -> l :: acc) t.dirty [] in
  Hashtbl.reset t.dirty;
  Ring.clear t.dirty_fifo;
  List.iter
    (fun line -> if keep () then xpbuffer_insert t line (snapshot_line t line))
    (List.sort compare dirty);
  (* The ADR domain (WPQ + XPBuffer) always drains to media on power loss. *)
  let slots = Hashtbl.fold (fun xp slot acc -> (xp, slot) :: acc) t.xpbuffer [] in
  Hashtbl.reset t.xpbuffer;
  List.iter (fun (xp, slot) -> write_back_slot t xp slot)
    (List.sort (fun (a, _) (b, _) -> compare a b) slots);
  Hashtbl.reset t.read_cache;
  (* Volatile content is lost: what remains is exactly the media image. *)
  Bytes.blit t.media 0 t.work 0 (Bytes.length t.media)
