(** Device configuration for the simulated DCPMM. *)

type t = {
  size : int;  (** Capacity in bytes of the simulated DIMM. *)
  xpbuffer_lines : int;  (** XPLine slots in the write-combining buffer. *)
  cpu_cache_lines : int;
      (** Dirty-cacheline capacity of the simulated CPU cache; exceeding it
          triggers locality-oblivious evictions. *)
  read_cache_lines : int;
      (** XPLines retained in a small read cache, coalescing repeated reads
          of the same XPLine within an operation. *)
  eadr : bool;
      (** Extended-ADR mode: CPU caches are in the persistence domain, so a
          crash loses nothing, but media traffic is driven by eviction
          order instead of explicit flushes (paper §5.5). *)
  persist_prob : float;
      (** Probability that an unflushed (or unfenced) dirty cacheline made
          it to the persistence domain before a crash. Models the
          adversarial "any subset of unordered stores may persist"
          semantics of ADR. *)
  crash_seed : int;  (** Seed for the adversarial crash coin flips. *)
}

let default ?(size = 64 * 1024 * 1024) () =
  {
    size;
    xpbuffer_lines = Geometry.xpbuffer_capacity_lines;
    cpu_cache_lines = 8192;
    read_cache_lines = 128;
    eadr = false;
    persist_prob = 0.5;
    crash_seed = 0x5eed;
  }
