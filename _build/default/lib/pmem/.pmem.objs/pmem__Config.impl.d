lib/pmem/config.ml: Geometry
