lib/pmem/device.ml: Array Bytes Char Config Fun Geometry Hashtbl List Random Stats String
