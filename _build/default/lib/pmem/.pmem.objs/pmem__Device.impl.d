lib/pmem/device.ml: Array Bytes Char Config Fun Geometry Hashtbl List Printf Random Stats String
