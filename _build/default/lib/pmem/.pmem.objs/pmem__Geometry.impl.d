lib/pmem/geometry.ml:
