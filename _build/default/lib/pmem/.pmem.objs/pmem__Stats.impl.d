lib/pmem/stats.ml: Array Fmt Geometry
