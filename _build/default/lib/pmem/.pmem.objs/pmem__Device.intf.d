lib/pmem/device.mli: Config Stats
