(** Latency percentile synthesis (Fig 12).

    Per-operation service times are sampled from the simulator (each
    sample prices one operation's DRAM work, PM reads, flushes and
    fences); under load they inflate by an M/M/1-style queueing factor
    driven by the utilization of the binding PM bandwidth resource, so
    indexes with high XBI-amplification show heavy tails exactly as the
    paper observes. *)

let percentile_points = [ 0.0; 20.0; 40.0; 60.0; 80.0; 90.0; 99.0; 99.9 ]
let point_names = [ "min"; "20%"; "40%"; "60%"; "80%"; "90%"; "99%"; "99.9%" ]

(* The queue forms at the PM device: operations from all threads share
   the media, whose service rate is the bandwidth bound.  M/M/1 FCFS
   waiting time: an arrival waits with probability rho, and conditional
   waits are Exp(rate*(1-rho)).  Low percentiles therefore see raw
   service time; tails inflate exactly when XBI-amplified traffic
   saturates the media — the paper's explanation for CCL-BTree's low
   99.9th-percentile insert latency. *)
let percentiles ?(utilization = 0.0) ?(service_rate = infinity) samples =
  let n = Array.length samples in
  if n = 0 then List.map (fun _ -> 0.0) percentile_points
  else begin
    let s = Array.copy samples in
    Array.sort compare s;
    let rho = Float.min utilization 0.95 in
    let wait p =
      let p = p /. 100.0 in
      if rho <= 0.0 || service_rate = infinity || p <= 1.0 -. rho then 0.0
      else
        Float.log (rho /. (1.0 -. p))
        /. (service_rate *. (1.0 -. rho))
        *. 1e9
    in
    List.map
      (fun p ->
        let idx =
          min (n - 1) (int_of_float (Float.of_int (n - 1) *. p /. 100.0))
        in
        s.(idx) +. wait p)
      percentile_points
  end
