type profile = {
  t_cpu_ns : float;
  write_bytes : float;
  read_bytes : float;
  numa_aware : bool;
}

let bounds ?(machine = Constants.default_machine) ~threads p =
  let open Constants in
  (* sockets engage gradually as threads spill over (smooth curves, like
     the measured figures) *)
  let sockets_used =
    Float.min
      (float_of_int machine.sockets)
      (Float.max 1.0
         (float_of_int threads /. float_of_int machine.cores_per_socket))
  in
  (* fraction of accesses that cross sockets for a NUMA-oblivious index *)
  let remote_frac =
    if p.numa_aware then 0.0
    else (sockets_used -. 1.0) /. float_of_int (max 1 (machine.sockets - 1))
  in
  let latency_factor =
    1.0 +. ((machine.numa_latency_penalty -. 1.0) *. 0.5 *. remote_frac)
  in
  let bw_eff = 1.0 -. ((1.0 -. machine.numa_bw_efficiency) *. remote_frac) in
  let compute =
    float_of_int threads *. 1e9 /. (p.t_cpu_ns *. latency_factor)
  in
  let write_cap =
    if p.write_bytes <= 0.0 then infinity
    else sockets_used *. machine.pm_write_bw *. bw_eff /. p.write_bytes
  in
  let read_cap =
    if p.read_bytes <= 0.0 then infinity
    else sockets_used *. machine.pm_read_bw *. bw_eff /. p.read_bytes
  in
  (compute, write_cap, read_cap)

(* smooth minimum (p-norm) so the saturation knee is rounded like
   measured curves rather than piecewise-linear *)
let softmin3 a b c =
  let p = 4.0 in
  let inv x = if x = infinity then 0.0 else Float.pow (1.0 /. x) p in
  let s = inv a +. inv b +. inv c in
  if s <= 0.0 then infinity else Float.pow s (-1.0 /. p)

let throughput ?machine ~threads p =
  let compute, w, r = bounds ?machine ~threads p in
  softmin3 compute w r

let mops ?machine ~threads p = throughput ?machine ~threads p /. 1e6

let utilization ?machine ~threads p =
  let compute, w, r = bounds ?machine ~threads p in
  let t = softmin3 compute w r in
  let cap = Float.min w r in
  if cap = infinity then 0.0 else Float.min 0.97 (t /. cap)

let bottleneck_rate ?machine ~threads p =
  let _, w, r = bounds ?machine ~threads p in
  Float.min w r
