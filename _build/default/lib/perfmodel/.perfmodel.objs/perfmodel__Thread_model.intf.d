lib/perfmodel/thread_model.mli: Constants
