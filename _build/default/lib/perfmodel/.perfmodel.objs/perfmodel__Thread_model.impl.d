lib/perfmodel/thread_model.ml: Constants Float
