lib/perfmodel/constants.ml:
