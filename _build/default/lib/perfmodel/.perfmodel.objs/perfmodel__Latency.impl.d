lib/perfmodel/latency.ml: Array Float List
