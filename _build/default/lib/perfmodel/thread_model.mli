(** Multi-thread throughput model.

    The paper's §2.2 establishes the mechanism: once the PM media
    bandwidth is exhausted, throughput is determined by media traffic per
    operation (XBI-amplification), not by CPU work.  Accordingly,
    throughput at [n] threads is the soft minimum of

    - the compute bound [n / t_cpu],
    - the media write bound [BW_w / write_bytes_per_op],
    - the media read bound [BW_r / read_bytes_per_op],

    with NUMA-oblivious indexes paying a latency penalty on remote
    accesses and retaining only part of the aggregate bandwidth once
    threads span sockets.  Single-thread costs and per-op traffic come
    from the simulator's hardware counters, so "who saturates where" is
    derived, not asserted. *)

type profile = {
  t_cpu_ns : float;  (** Modeled single-thread latency per op. *)
  write_bytes : float;  (** Media bytes written per op. *)
  read_bytes : float;  (** Media bytes read per op. *)
  numa_aware : bool;
}

val throughput :
  ?machine:Constants.machine -> threads:int -> profile -> float
(** Operations per second. *)

val mops : ?machine:Constants.machine -> threads:int -> profile -> float
(** Same, in Mop/s. *)

val utilization :
  ?machine:Constants.machine -> threads:int -> profile -> float
(** Fraction of the binding bandwidth resource in use (drives queueing
    delay for latency percentiles). *)

val bottleneck_rate :
  ?machine:Constants.machine -> threads:int -> profile -> float
(** Service rate (ops/s) of the binding PM bandwidth resource; [infinity]
    when the workload writes and reads no media. *)
