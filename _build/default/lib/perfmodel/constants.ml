(** Cost constants of the modeled platform.

    Latency and bandwidth figures follow the published characterizations
    of Intel Optane DCPMM (Yang et al., FAST '20; Wang et al., MICRO '20)
    and the paper's own testbed (two Xeon Gold 5318Y sockets, four 128 GB
    DCPMM 200-series DIMMs per socket):

    - random PM read latency ~300-350 ns per XPLine,
    - [clwb] issue cost tens of ns (posted, the store buffer drains
      asynchronously), [sfence] ~100 ns when flushes are outstanding,
    - sustained per-socket write bandwidth a few GB/s and highly sensitive
      to access locality — which is exactly the resource whose exhaustion
      the paper's §2.2 experiment demonstrates. *)

let base_op_ns = 150.0
(** DRAM-side work per operation: inner-node traversal, buffer-node scan,
    bookkeeping. *)

let pm_read_ns = 320.0  (** Media read, per XPLine touched. *)

let clwb_ns = 60.0
let sfence_ns = 100.0
let dram_hit_bonus_ns = -80.0
(** Reads served entirely from buffer nodes skip the PM access. *)

type machine = {
  sockets : int;
  cores_per_socket : int;
  pm_write_bw : float;  (** Per-socket media write bandwidth, B/s. *)
  pm_read_bw : float;  (** Per-socket media read bandwidth, B/s. *)
  numa_bw_efficiency : float;
      (** Fraction of aggregate PM bandwidth a NUMA-oblivious index
          retains once threads span sockets (coherence + remote access
          overhead, cf. paper Optimization #1 and PACTree's PAC
          guidelines). *)
  numa_latency_penalty : float;
      (** Latency multiplier on remote PM accesses. *)
}

let default_machine =
  {
    sockets = 2;
    cores_per_socket = 48;
    pm_write_bw = 3.6e9;
    pm_read_bw = 8.0e9;
    numa_bw_efficiency = 0.55;
    numa_latency_penalty = 1.6;
  }
