(** Tunables of CCL-BTree, mirroring the paper's parameters. *)

type gc_strategy =
  | Locality_aware  (** §3.4: copy survivors B-log → I-log, never flush. *)
  | Naive  (** Stop-the-world: flush all buffers to leaves, reclaim logs. *)
  | Disabled  (** Never reclaim (baseline for Fig 14's "w/o GC"). *)

type t = {
  nbatch : int;  (** Buffer-node slots, N_batch (default 2, Table 1). *)
  th_log : float;
      (** GC trigger: live log bytes / leaf bytes threshold (default 0.20,
          Table 2). *)
  gc_strategy : gc_strategy;
  gc_step_nodes : int;
      (** Buffer nodes the (simulated) background GC thread scans per
          foreground operation while a GC is active. *)
  threads : int;  (** Number of per-thread WALs. *)
  conservative_logging : bool;
      (** §3.3: skip the log append for trigger writes.  [false] gives the
          +BNode ablation of Fig 13. *)
  buffering : bool;
      (** [false] disables buffer nodes entirely (writes go straight to the
          leaf): the Base ablation of Fig 13. *)
  chunk_size : int;  (** Allocator chunk size (4 MB in the paper; scaled). *)
}

let default =
  {
    nbatch = 2;
    th_log = 0.20;
    gc_strategy = Locality_aware;
    gc_step_nodes = 8;
    threads = 1;
    conservative_logging = true;
    buffering = true;
    chunk_size = 64 * 1024;
  }
