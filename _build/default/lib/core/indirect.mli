(** Indirection pointers for variable-size keys and values (paper
    Optimization #3, §4.4).

    An 8 B word in the tree is either inline data or a pointer to an
    out-of-band extent, distinguished by the most significant bit:

    - values of at most 6 bytes are stored inline
      ([0x00 | len+1 | data]), so the tombstone [0L] never collides with a
      real value;
    - larger values live in an {!Pmalloc.Extent} region prefixed by a
      32-bit length, and the tree stores [0x80<<56 | address].

    Keys up to 8 bytes are packed inline big-endian, which preserves
    lexicographic order under signed [Int64] comparison for ASCII keys;
    longer keys are mapped through a 64-bit FNV-1a hash (range scans over
    hashed keys are not order-meaningful; the paper's variable-size
    experiments, Fig 15(b)(c), only measure point operations). *)

val is_pointer : int64 -> bool
val pointer_addr : int64 -> int
val pointer_len : Pmem.Device.t -> int64 -> int
(** Total extent length (header included) of a pointer word, for recovery
    watermark accounting. *)

val encode_value : Pmem.Device.t -> Pmalloc.Extent.t -> string -> int64
(** Persist the value (if out-of-band) and return the tree word.  The
    extent write is durable before the word is returned. *)

val decode_value : Pmem.Device.t -> int64 -> string
val encode_key : string -> int64
val mark_used : Pmem.Device.t -> Pmalloc.Extent.t -> int64 -> unit
(** Recovery: re-account the extent referenced by a pointer word. *)
