module D = Pmem.Device
module Alloc = Pmalloc.Alloc
module L = Leaf_node

type report = {
  leaves : int;
  entries : int;
  chain_ordered : bool;
  fingerprint_mismatches : int;
  orphan_leaf_slots : int;
  log_chunks : int;
  log_entries : int;
  log_bytes : int;
  errors : string list;
}

let tree_magic = 0x43434C2D42545245L (* must match Tree.tree_magic *)

let check dev =
  let alloc = Alloc.attach dev in
  let sb = Alloc.superblock alloc in
  if D.load_u64 dev sb <> tree_magic then
    invalid_arg "Fsck.check: no CCL-BTree on this device";
  let head = Int64.to_int (D.load_u64 dev (sb + 8)) in
  let errors = ref [] in
  let error fmt = Fmt.kstr (fun m -> errors := m :: !errors) fmt in
  (* walk the leaf chain *)
  let reachable = Hashtbl.create 1024 in
  let leaves = ref 0 in
  let entries = ref 0 in
  let fp_bad = ref 0 in
  let ordered = ref true in
  let prev_max = ref None in
  let rec walk addr =
    if addr <> 0 then begin
      if Hashtbl.mem reachable addr then
        error "leaf chain cycle at %#x" addr
      else begin
        Hashtbl.replace reachable addr ();
        incr leaves;
        let bm = L.bitmap dev addr in
        let keys = ref [] in
        for i = 0 to L.slots - 1 do
          if bm land (1 lsl i) <> 0 then begin
            incr entries;
            let k = L.key_at dev addr i in
            keys := k :: !keys;
            if D.load_u8 dev (addr + 16 + i) <> L.fingerprint k then begin
              incr fp_bad;
              error "fingerprint mismatch: leaf %#x slot %d" addr i
            end
          end
        done;
        (match (!prev_max, !keys) with
        | Some pm, _ :: _ ->
          let mn = List.fold_left min (List.hd !keys) !keys in
          if Int64.compare pm mn >= 0 then begin
            ordered := false;
            error "chain order violated before leaf %#x" addr
          end
        | _ -> ());
        (match !keys with
        | [] -> ()
        | k0 :: rest ->
          prev_max :=
            Some
              (List.fold_left max
                 (Option.value !prev_max ~default:k0)
                 (k0 :: rest)));
        walk (L.next dev addr)
      end
    end
  in
  walk head;
  (* count leaf-tagged slots not reachable from the chain *)
  let orphans = ref 0 in
  Alloc.iter_chunks alloc Alloc.Leaf (fun chunk ->
      let per = Alloc.chunk_size alloc / L.size in
      for i = 0 to per - 1 do
        let addr = chunk + (i * L.size) in
        if (not (Hashtbl.mem reachable addr)) && L.bitmap dev addr <> 0 then
          incr orphans
      done);
  (* log statistics via a replay scan *)
  let log_entries = ref 0 in
  ignore
    (Walog.Wal.replay alloc ~f:(fun ~key:_ ~value:_ ~ts:_ -> incr log_entries));
  let log_chunks = ref 0 in
  Alloc.iter_chunks alloc Alloc.Log (fun _ -> incr log_chunks);
  {
    leaves = !leaves;
    entries = !entries;
    chain_ordered = !ordered;
    fingerprint_mismatches = !fp_bad;
    orphan_leaf_slots = !orphans;
    log_chunks = !log_chunks;
    log_entries = !log_entries;
    log_bytes = !log_entries * Walog.Wal.entry_size;
    errors = List.rev !errors;
  }

let is_healthy r = r.errors = []

let pp ppf r =
  Fmt.pf ppf
    "@[<v>leaves                 %d@,\
     entries                %d@,\
     chain ordered          %b@,\
     fingerprint mismatches %d@,\
     orphan leaf slots      %d@,\
     log chunks             %d@,\
     log entries            %d (%d B)@,\
     status                 %s@]"
    r.leaves r.entries r.chain_ordered r.fingerprint_mismatches
    r.orphan_leaf_slots r.log_chunks r.log_entries r.log_bytes
    (if is_healthy r then "HEALTHY"
     else String.concat "; " r.errors)
