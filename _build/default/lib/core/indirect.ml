module D = Pmem.Device

let pointer_bit = Int64.shift_left 1L 63
let is_pointer v = Int64.logand v pointer_bit <> 0L
let pointer_addr v = Int64.to_int (Int64.logand v 0xFFFF_FFFF_FFFFL)

let inline_max = 6

let encode_inline s =
  let len = String.length s in
  assert (len <= inline_max);
  let v = ref (Int64.of_int (len + 1)) in
  (* tag byte [len+1] sits in bits 48..55; data fills bits 0..47 *)
  v := Int64.shift_left !v 48;
  String.iteri
    (fun i c -> v := Int64.logor !v (Int64.shift_left (Int64.of_int (Char.code c)) (8 * i)))
    s;
  !v

let decode_inline v =
  let len = Int64.to_int (Int64.shift_right_logical v 48) - 1 in
  String.init len (fun i ->
      Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))

let pointer_len dev v =
  let addr = pointer_addr v in
  let len = Int64.to_int (Int64.logand (D.load_u64 dev addr) 0xFFFF_FFFFL) in
  len + 4

let encode_value dev extent s =
  let len = String.length s in
  if len <= inline_max then encode_inline s
  else begin
    let addr = Pmalloc.Extent.alloc extent (len + 4) in
    D.store_u64 dev addr (Int64.of_int len);
    (* the u64 store covers the 4-byte header plus padding; the payload
       follows at +4 *)
    D.store_string dev (addr + 4) s;
    D.persist dev addr (len + 4);
    Int64.logor pointer_bit (Int64.of_int addr)
  end

let decode_value dev v =
  if is_pointer v then begin
    let addr = pointer_addr v in
    let len = Int64.to_int (Int64.logand (D.load_u64 dev addr) 0xFFFF_FFFFL) in
    Bytes.to_string (D.load dev (addr + 4) len)
  end
  else decode_inline v

let fnv1a s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

let encode_key s =
  let len = String.length s in
  if len <= 8 then begin
    (* big-endian pack preserves order for ASCII keys *)
    let v = ref 0L in
    for i = 0 to 7 do
      let byte = if i < len then Char.code s.[i] else 0 in
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int byte)
    done;
    !v
  end
  else
    (* clear the sign bit so hashed keys stay in the positive range *)
    Int64.logand (fnv1a s) Int64.max_int

let mark_used dev extent v =
  if is_pointer v then
    Pmalloc.Extent.mark_used extent ~addr:(pointer_addr v)
      ~len:(pointer_len dev v)
