module D = Pmem.Device

type addr = int

let size = 256
let slots = 14
let bitmap_mask = (1 lsl slots) - 1

let fingerprint key =
  let h = Int64.mul key 0x9E3779B97F4A7C15L in
  Int64.to_int (Int64.shift_right_logical h 56) land 0xff

let meta_word dev addr = D.load_u64 dev addr

let bitmap dev addr = Int64.to_int (meta_word dev addr) land bitmap_mask

let next dev addr =
  Int64.to_int (Int64.shift_right_logical (meta_word dev addr) 16)

let store_meta_word dev addr ~bitmap ~next =
  assert (bitmap land lnot bitmap_mask = 0);
  let w = Int64.logor (Int64.of_int bitmap)
      (Int64.shift_left (Int64.of_int next) 16)
  in
  D.store_u64 dev addr w

let timestamp dev addr = D.load_u64 dev (addr + 8)
let store_timestamp dev addr ts = D.store_u64 dev (addr + 8) ts

let store_fingerprint dev addr i key =
  D.store_u8 dev (addr + 16 + i) (fingerprint key)

let slot_addr addr i = addr + 32 + (i * 16)
let key_at dev addr i = D.load_u64 dev (slot_addr addr i)
let value_at dev addr i = D.load_u64 dev (slot_addr addr i + 8)

let store_slot dev addr i ~key ~value =
  D.store_u64 dev (slot_addr addr i) key;
  D.store_u64 dev (slot_addr addr i + 8) value

let valid_count dev addr =
  let rec pop n b = if b = 0 then n else pop (n + (b land 1)) (b lsr 1) in
  pop 0 (bitmap dev addr)

let find dev addr key =
  let bm = bitmap dev addr in
  let fp = fingerprint key in
  let rec scan i =
    if i >= slots then None
    else if
      bm land (1 lsl i) <> 0
      && D.load_u8 dev (addr + 16 + i) = fp
      && key_at dev addr i = key
    then Some i
    else scan (i + 1)
  in
  scan 0

let entries dev addr =
  let bm = bitmap dev addr in
  let rec collect i acc =
    if i < 0 then acc
    else if bm land (1 lsl i) <> 0 then
      collect (i - 1) ((key_at dev addr i, value_at dev addr i) :: acc)
    else collect (i - 1) acc
  in
  collect (slots - 1) []

let free_slots dev addr =
  let bm = bitmap dev addr in
  let rec collect i acc =
    if i < 0 then acc
    else if bm land (1 lsl i) = 0 then collect (i - 1) (i :: acc)
    else collect (i - 1) acc
  in
  collect (slots - 1) []

let init dev addr ~next =
  D.fill dev addr size '\000';
  store_meta_word dev addr ~bitmap:0 ~next;
  D.persist dev addr size
