(** Offline consistency checker for CCL-BTree persistent images (the
    [pmempool check] analog).

    Walks the persistent structures directly — superblock, chunk table,
    leaf chain, write-ahead logs — without constructing a tree, and
    reports both integrity violations and a structural summary.  Useful
    after a crash, on a loaded image file, or as a debugging aid. *)

type report = {
  leaves : int;
  entries : int;
  chain_ordered : bool;  (** Keys strictly increase across the chain. *)
  fingerprint_mismatches : int;
  orphan_leaf_slots : int;
      (** Leaf-tagged slab slots not reachable from the chain (reclaimed
          automatically by recovery; non-zero is normal after a crash
          that interrupted a split). *)
  log_chunks : int;
  log_entries : int;  (** Valid (replayable) WAL entries. *)
  log_bytes : int;
  errors : string list;  (** Human-readable integrity violations. *)
}

val check : Pmem.Device.t -> report
(** @raise Invalid_argument when the device holds no CCL-BTree. *)

val pp : Format.formatter -> report -> unit

val is_healthy : report -> bool
(** No integrity violations (orphans alone do not make an image
    unhealthy). *)
