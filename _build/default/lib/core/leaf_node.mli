(** 256 B persistent leaf nodes (paper Fig 7(b), §4.1).

    One leaf node fills exactly one XPLine so a batch insertion is a single
    XPLine write.  Layout:

    {v
      0  .. 7    bitmap(14 bits) | next-leaf address << 16   (8 B atomic)
      8  .. 15   timestamp of the last batch flush
      16 .. 29   one-byte fingerprints for the 14 slots
      30 .. 31   padding
      32 .. 255  14 slots of 16 B: key u64, value u64 (unsorted)
    v}

    Packing bitmap and next pointer into one word lets split and merge
    commit with a single atomic 8 B persist (logless split, §4.2).  Keys
    are unsorted within the leaf; order is maintained only {e between}
    adjacent leaves. *)

type addr = int

val size : int  (** 256 *)

val slots : int  (** 14 *)

val fingerprint : int64 -> int
(** One-byte hash used to prefilter slots on search (as in FPTree). *)

(** {1 Metadata accessors}  All loads/stores go through the simulated
    device and are accounted.  Stores do not flush; callers own the
    persistence protocol. *)

val bitmap : Pmem.Device.t -> addr -> int
val next : Pmem.Device.t -> addr -> addr  (** 0 = end of chain. *)

val store_meta_word : Pmem.Device.t -> addr -> bitmap:int -> next:addr -> unit
val timestamp : Pmem.Device.t -> addr -> int64
val store_timestamp : Pmem.Device.t -> addr -> int64 -> unit
val store_fingerprint : Pmem.Device.t -> addr -> int -> int64 -> unit

(** {1 Slots} *)

val key_at : Pmem.Device.t -> addr -> int -> int64
val value_at : Pmem.Device.t -> addr -> int -> int64
val store_slot : Pmem.Device.t -> addr -> int -> key:int64 -> value:int64 -> unit
val slot_addr : addr -> int -> int

val valid_count : Pmem.Device.t -> addr -> int

val find : Pmem.Device.t -> addr -> int64 -> int option
(** Slot index holding the key, filtered through fingerprints. *)

val entries : Pmem.Device.t -> addr -> (int64 * int64) list
(** Valid (key, value) pairs, unsorted. *)

val free_slots : Pmem.Device.t -> addr -> int list
(** Indices of invalid slots. *)

val init : Pmem.Device.t -> addr -> next:addr -> unit
(** Zero a freshly allocated leaf and persist it (empty bitmap). *)
