module M = Map.Make (Int64)

type 'a t = { mutable map : 'a M.t }

let create () = { map = M.empty }
let add t k v = t.map <- M.add k v t.map
let remove t k = t.map <- M.remove k t.map

let find_le t k =
  match M.find_last_opt (fun k' -> Int64.compare k' k <= 0) t.map with
  | Some (_, v) -> Some v
  | None -> None

let iter t f = M.iter f t.map
let cardinal t = M.cardinal t.map

let dram_bytes t =
  (* a fence key, a pointer and balanced-tree overhead per entry *)
  M.cardinal t.map * 48
