lib/core/leaf_node.ml: Int64 Pmem
