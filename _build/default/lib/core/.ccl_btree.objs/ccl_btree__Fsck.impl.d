lib/core/fsck.ml: Fmt Hashtbl Int64 Leaf_node List Option Pmalloc Pmem String Walog
