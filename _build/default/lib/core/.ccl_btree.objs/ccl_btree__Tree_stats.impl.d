lib/core/tree_stats.ml: Fmt
