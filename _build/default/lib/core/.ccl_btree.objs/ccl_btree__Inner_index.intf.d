lib/core/inner_index.mli:
