lib/core/tree.ml: Array Buffer_node Config Fmt Hashtbl Indirect Inner_index Int64 Leaf_node List Option Pmalloc Pmem String Tree_stats Walog
