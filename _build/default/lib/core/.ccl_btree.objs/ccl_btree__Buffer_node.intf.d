lib/core/buffer_node.mli:
