lib/core/tree.mli: Config Pmalloc Pmem Tree_stats
