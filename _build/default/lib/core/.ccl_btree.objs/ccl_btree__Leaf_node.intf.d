lib/core/leaf_node.mli: Pmem
