lib/core/inner_index.ml: Int64 Map
