lib/core/config.ml:
