lib/core/buffer_node.ml: Array Int64
