lib/core/indirect.mli: Pmalloc Pmem
