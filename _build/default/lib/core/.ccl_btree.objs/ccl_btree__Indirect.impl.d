lib/core/indirect.ml: Bytes Char Int64 Pmalloc Pmem String
