lib/core/fsck.mli: Format Pmem
