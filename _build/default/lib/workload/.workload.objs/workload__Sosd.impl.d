lib/workload/sosd.ml: Array Hashtbl Int64 Random
