lib/workload/sosd.mli:
