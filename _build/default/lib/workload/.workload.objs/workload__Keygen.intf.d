lib/workload/keygen.mli:
