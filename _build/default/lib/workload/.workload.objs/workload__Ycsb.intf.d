lib/workload/ycsb.mli:
