lib/workload/ycsb.ml: Array Int64 Random
