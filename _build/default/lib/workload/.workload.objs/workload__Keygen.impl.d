lib/workload/keygen.ml: Array Float Int64 Random
