(** Synthetic stand-ins for the four SOSD datasets of Fig 19.

    The real datasets are external downloads; what matters to an index is
    their key-space locality, which we reproduce:

    - [amzn] (book popularity): dense clustered IDs — many small runs of
      near-contiguous keys separated by gaps,
    - [osm] (OpenStreetMap cell IDs): Morton-interleaved coordinates of
      uniform 2D points — hierarchical clustering at every scale,
    - [wiki] (edit timestamps): near-monotonic with small jitter and
      occasional bursts,
    - [facebook] (sampled user IDs): uniform hashed 63-bit values. *)

val amzn : seed:int -> int -> int64 array
val osm : seed:int -> int -> int64 array
val wiki : seed:int -> int -> int64 array
val facebook : seed:int -> int -> int64 array

val all : (string * (seed:int -> int -> int64 array)) list
