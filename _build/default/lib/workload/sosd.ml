let dedup_resize ~seed ~regen n keys =
  (* index keys must be unique: re-draw collisions *)
  let seen = Hashtbl.create (2 * n) in
  let rng = Random.State.make [| seed + 77 |] in
  Array.map
    (fun k ->
      let rec fresh k =
        if Int64.compare k 1L < 0 then fresh (regen rng)
        else if Hashtbl.mem seen k then fresh (regen rng)
        else begin
          Hashtbl.replace seen k ();
          k
        end
      in
      fresh k)
    keys

let amzn ~seed n =
  let rng = Random.State.make [| seed |] in
  let clusters = max 1 (n / 64) in
  let keys =
    Array.init n (fun _ ->
        let c = Random.State.int rng clusters in
        let base = Int64.of_int ((c * 1_000_003) + 1) in
        Int64.add base (Int64.of_int (Random.State.int rng 4096)))
  in
  dedup_resize ~seed ~regen:(fun rng ->
      Int64.of_int (1 + Random.State.int rng 1_000_000_000))
    n keys

(* interleave the low 31 bits of x and y into a Morton code *)
let morton x y =
  let spread v =
    let rec go acc i =
      if i >= 31 then acc
      else begin
        let bit = (v lsr i) land 1 in
        go (acc lor (bit lsl (2 * i))) (i + 1)
      end
    in
    go 0 0
  in
  Int64.of_int (spread x lor (spread y lsl 1))

let osm ~seed n =
  let rng = Random.State.make [| seed |] in
  let keys =
    Array.init n (fun _ ->
        morton
          (Random.State.int rng 0x7FFFFFF)
          (Random.State.int rng 0x7FFFFFF))
  in
  dedup_resize ~seed ~regen:(fun rng ->
      morton (Random.State.int rng 0x7FFFFFF) (Random.State.int rng 0x7FFFFFF))
    n keys

let wiki ~seed n =
  let rng = Random.State.make [| seed |] in
  let now = ref 1_500_000_000_000L in
  let keys =
    Array.init n (fun _ ->
        let burst = if Random.State.int rng 100 = 0 then 1_000_000 else 0 in
        now :=
          Int64.add !now
            (Int64.of_int (1 + Random.State.int rng 2000 + burst));
        !now)
  in
  dedup_resize ~seed ~regen:(fun rng ->
      Int64.of_int (1 + Random.State.int rng 1_000_000_000))
    n keys

let facebook ~seed n =
  let rng = Random.State.make [| seed |] in
  let draw rng =
    Int64.logand (Random.State.int64 rng Int64.max_int) Int64.max_int
  in
  dedup_resize ~seed ~regen:draw n (Array.init n (fun _ -> draw rng))

let all =
  [ ("amzn", amzn); ("osm", osm); ("wiki", wiki); ("facebook", facebook) ]
