(** Figure 14 and Tables 1-2: garbage collection behaviour and the
    N_batch / TH_log sensitivity studies.  These drive {!Ccl_btree.Tree}
    directly to control GC strategy and read index-level statistics. *)

module D = Pmem.Device
module S = Pmem.Stats
module T = Ccl_btree.Tree
module Config = Ccl_btree.Config
module Ts = Ccl_btree.Tree_stats
module K = Workload.Keygen

let tree_with cfg (scale : Scale.t) =
  let dev = Runner.device ~mb:scale.Scale.device_mb () in
  let t = T.create ~cfg dev in
  (dev, t)

let insert_tput dev t ~ops ~threads =
  let before = D.snapshot dev in
  ops ();
  let delta = S.diff ~after:(D.snapshot dev) ~before in
  let n = delta.S.user_bytes / 16 in
  let profile =
    {
      Perfmodel.Thread_model.t_cpu_ns =
        Perfmodel.Constants.base_op_ns
        +. (Runner.events_cost_ns delta /. float_of_int (max 1 n));
      write_bytes = float_of_int delta.S.media_write_bytes /. float_of_int (max 1 n);
      read_bytes = float_of_int delta.S.media_read_bytes /. float_of_int (max 1 n);
      numa_aware = true;
    }
  in
  ignore t;
  Perfmodel.Thread_model.mops ~threads profile

(* --- Fig 14: throughput timeline under the three GC strategies --------- *)

let run_fig14 (scale : Scale.t) =
  Report.section "Fig 14: insert throughput timeline per GC strategy (Mop/s)";
  let windows = 15 in
  let window_ops = max 200 (scale.Scale.ops / windows) in
  let strategies =
    [
      ("w/o GC", { Config.default with Config.gc_strategy = Config.Disabled });
      ( "our GC",
        {
          Config.default with
          Config.gc_strategy = Config.Locality_aware;
          th_log = 0.10;
        } );
      ( "naive GC",
        { Config.default with Config.gc_strategy = Config.Naive; th_log = 0.10 }
      );
    ]
  in
  let series =
    List.map
      (fun (name, cfg) ->
        let dev, t = tree_with cfg scale in
        (* populate and clean all buffer nodes, as in the paper *)
        Array.iter
          (fun k -> T.upsert t k 1L)
          (K.shuffled_range ~seed:1 scale.Scale.warmup);
        T.flush_all t;
        (* random-order fresh keys, as in the paper's insert stream *)
        let keys =
          K.shuffled_range ~seed:77 (windows * window_ops)
        in
        let next = ref 0 in
        let base = Int64.of_int scale.Scale.warmup in
        let gc_marks = ref [] in
        let points =
          List.init windows (fun w ->
              let gc_before = (T.stats t).Ts.gc_runs in
              let tput =
                insert_tput dev t ~threads:48 ~ops:(fun () ->
                    for _ = 1 to window_ops do
                      T.upsert t (Int64.add base keys.(!next)) 1L;
                      incr next
                    done)
              in
              if (T.stats t).Ts.gc_runs > gc_before || T.gc_active t then
                gc_marks := w :: !gc_marks;
              tput)
        in
        (name, points, !gc_marks))
      strategies
  in
  let header =
    "window" :: List.map (fun (n, _, _) -> n) series
  in
  let rows =
    List.init windows (fun w ->
        string_of_int (w + 1)
        :: List.map
             (fun (_, points, marks) ->
               let v = Report.mops (List.nth points w) in
               if List.mem w marks then v ^ "*" else v)
             series)
  in
  Report.table ~header rows;
  Report.note "* = a GC was active/triggered during this window";
  Report.note
    "paper: naive GC drops throughput ~37.5% when triggered; \
     locality-aware GC is indistinguishable from no GC"

(* --- Table 1: N_batch sensitivity --------------------------------------- *)

let run_tab1 (scale : Scale.t) =
  Report.section "Table 1: sensitivity of N_batch (48 threads)";
  let rows =
    List.map
      (fun nbatch ->
        let cfg = { Config.default with Config.nbatch } in
        let dev, t = tree_with cfg scale in
        Array.iter
          (fun k -> T.upsert t k 1L)
          (K.shuffled_range ~seed:1 scale.Scale.warmup);
        let gen = K.uniform ~seed:3 ~space:(2 * scale.Scale.warmup) in
        let before = D.snapshot dev in
        let insert_tp =
          insert_tput dev t ~threads:48 ~ops:(fun () ->
              for _ = 1 to scale.Scale.ops do
                T.upsert t (K.next gen) 2L
              done)
        in
        T.flush_all t;
        D.drain dev;
        let media_mb =
          float_of_int
            (S.diff ~after:(D.snapshot dev) ~before).S.media_write_bytes
          /. 1048576.0
        in
        let sgen = K.uniform ~seed:5 ~space:scale.Scale.warmup in
        let hits_before = (T.stats t).Ts.dram_hits in
        let s_before = D.snapshot dev in
        for _ = 1 to scale.Scale.ops do
          ignore (T.search t (K.next sgen))
        done;
        let sdelta = S.diff ~after:(D.snapshot dev) ~before:s_before in
        let search_profile =
          {
            Perfmodel.Thread_model.t_cpu_ns =
              Runner.op_cost_ns sdelta /. float_of_int scale.Scale.ops;
            write_bytes = 0.0;
            read_bytes =
              float_of_int sdelta.S.media_read_bytes
              /. float_of_int scale.Scale.ops;
            numa_aware = true;
          }
        in
        let search_tp = Perfmodel.Thread_model.mops ~threads:48 search_profile in
        let hits = (T.stats t).Ts.dram_hits - hits_before in
        [
          string_of_int nbatch;
          Report.mops insert_tp;
          Report.f1 media_mb;
          Report.mops search_tp;
          string_of_int hits;
          Report.mb (T.dram_bytes t);
          Report.mb (T.pm_bytes t);
        ])
      [ 1; 2; 3; 4; 5 ]
  in
  Report.table
    ~header:
      [
        "Nbatch";
        "Insert TP";
        "media write (MB)";
        "Search TP";
        "DRAM hits";
        "DRAM (MB)";
        "PM (MB)";
      ]
    rows;
  Report.note
    "paper: insert TP +21.5% and search TP +11.3% from Nbatch 1->5, \
     media writes shrink, DRAM usage nearly doubles; default Nbatch=2"

(* --- Table 2: TH_log sensitivity ---------------------------------------- *)

let run_tab2 (scale : Scale.t) =
  Report.section "Table 2: sensitivity of TH_log (insert workload, 48 threads)";
  let rows =
    List.map
      (fun th_log ->
        let cfg = { Config.default with Config.th_log } in
        let dev, t = tree_with cfg scale in
        Array.iter
          (fun k -> T.upsert t k 1L)
          (K.shuffled_range ~seed:1 scale.Scale.warmup);
        let next = ref (scale.Scale.warmup + 1) in
        let tput =
          insert_tput dev t ~threads:48 ~ops:(fun () ->
              for _ = 1 to scale.Scale.ops do
                T.upsert t (Int64.of_int !next) 1L;
                incr next
              done)
        in
        [
          Printf.sprintf "%.0f%%" (th_log *. 100.0);
          Report.mops tput;
          Report.f1 (float_of_int (T.log_peak_bytes t) /. 1048576.0);
        ])
      [ 0.10; 0.15; 0.20; 0.25; 0.30; 0.35 ]
  in
  Report.table ~header:[ "TH_log"; "Throughput (Mop/s)"; "Peak log (MB)" ] rows;
  Report.note
    "paper: throughput insensitive to TH_log; peak log size tracks the \
     threshold; default 20%"

let run scale =
  run_fig14 scale;
  run_tab1 scale;
  run_tab2 scale
