(** Experiment scaling.

    The paper warms indexes with 50 M KVs and runs 50 M operations; in
    the simulator the default scale keeps every run in seconds while the
    amplification ratios and relative throughputs stay representative
    (the XPBuffer, whose capacity drives locality effects, is modeled at
    full size, and the tree always far exceeds it).  Pass [--scale 2] or
    [--scale 3] to the bench binary for larger runs. *)

type t = {
  warmup : int;  (** Keys loaded before measuring. *)
  ops : int;  (** Measured operations. *)
  device_mb : int;
  scan_len : int;  (** Default range-query length (paper: 100). *)
  threads : int list;  (** Thread counts for the scaling figures. *)
}

let of_level = function
  | 1 ->
    {
      warmup = 20_000;
      ops = 20_000;
      device_mb = 96;
      scan_len = 100;
      threads = [ 1; 24; 48; 72; 96 ];
    }
  | 2 ->
    {
      warmup = 100_000;
      ops = 100_000;
      device_mb = 256;
      scan_len = 100;
      threads = [ 1; 24; 48; 72; 96 ];
    }
  | _ ->
    {
      warmup = 500_000;
      ops = 500_000;
      device_mb = 1024;
      scan_len = 100;
      threads = [ 1; 24; 48; 72; 96 ];
    }

let default = of_level 1
