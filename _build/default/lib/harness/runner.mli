(** Experiment runner: builds any of the compared indexes on a fresh
    simulated device, drives an operation stream over it, and prices the
    run with the {!Perfmodel} cost model. *)

type spec =
  | Fastfair
  | Fptree
  | Lbtree
  | Utree
  | Dptree
  | Pactree
  | Flatstore
  | Lsm
  | Ccl of Ccl_btree.Config.t * string

val name : spec -> string
val numa_aware : spec -> bool
val ccl_default : spec

val paper_indexes : spec list
(** The seven indexes of the line figures (Figs 5, 10, 11, 12, 15):
    FPTree, FAST&FAIR, DPTree, uTree, LB+-Tree, PACTree, CCL-BTree. *)

val device :
  ?mb:int -> ?eadr:bool -> ?cache_lines:int -> unit -> Pmem.Device.t
val build : spec -> Pmem.Device.t -> Baselines.Index_intf.driver

type measurement = {
  ops : int;
  delta : Pmem.Stats.t;  (** Device counters over the measured phase. *)
  avg_ns : float;  (** Modeled single-thread ns per op. *)
  samples : float array;  (** Per-op modeled ns (subsampled). *)
  numa_aware : bool;
}

val op_cost_ns : Pmem.Stats.t -> float
(** Price one operation's counter delta with {!Perfmodel.Constants}
    (base cost plus hardware events). *)

val events_cost_ns : Pmem.Stats.t -> float
(** Hardware-event cost only; callers amortizing over [n] ops add the
    per-op base cost themselves. *)

val warmup :
  Baselines.Index_intf.driver -> keys:int64 array -> unit

val profile : measurement -> Perfmodel.Thread_model.profile
val mops : measurement -> threads:int -> float
(** Modeled throughput of the measured op mix at [threads] threads. *)

val cli_amp : measurement -> float
val xbi_amp : measurement -> float
