lib/harness/exp_gc.ml: Array Ccl_btree Int64 List Perfmodel Pmem Printf Report Runner Scale Workload
