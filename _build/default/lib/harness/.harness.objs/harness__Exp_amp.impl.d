lib/harness/exp_amp.ml: Array Baselines Exp_common List Pmem Report Runner Scale Workload
