lib/harness/runner.ml: Array Baselines Ccl_btree Int64 Perfmodel Pmem
