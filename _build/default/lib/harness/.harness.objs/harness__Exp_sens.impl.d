lib/harness/exp_sens.ml: Array Baselines Ccl_btree Char Exp_common Float Int64 List Perfmodel Pmalloc Pmem Printf Random Report Runner Scale String Workload
