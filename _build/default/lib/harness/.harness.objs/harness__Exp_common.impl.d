lib/harness/exp_common.ml: Array Baselines Int64 List Perfmodel Pmalloc Pmem Runner Scale Workload
