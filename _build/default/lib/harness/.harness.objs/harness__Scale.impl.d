lib/harness/scale.ml:
