lib/harness/experiments.ml: Exp_amp Exp_ext Exp_fig2 Exp_gc Exp_micro Exp_sens Exp_ycsb List Scale
