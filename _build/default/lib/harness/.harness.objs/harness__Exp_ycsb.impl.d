lib/harness/exp_ycsb.ml: Exp_common List Printf Report Runner Scale Workload
