lib/harness/exp_fig2.ml: List Perfmodel Pmem Printf Random Report Runner Scale
