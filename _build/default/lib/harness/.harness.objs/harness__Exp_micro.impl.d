lib/harness/exp_micro.ml: Ccl_btree Exp_common List Perfmodel Printf Report Runner Scale Workload
