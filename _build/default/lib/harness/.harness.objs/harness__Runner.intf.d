lib/harness/runner.mli: Baselines Ccl_btree Perfmodel Pmem
