lib/harness/exp_ext.ml: Array Ccl_btree Ccl_hash Int64 List Perfmodel Pmem Report Runner Scale Workload
