(** Plain-text tables in the shape of the paper's figures and tables. *)

let out = ref Format.std_formatter

let section title =
  Format.fprintf !out "@.=== %s ===@." title

let note s = Format.fprintf !out "  %s@." s

let table ~header rows =
  let all = header :: rows in
  let ncols = List.length header in
  let width c =
    List.fold_left (fun w row -> max w (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let line row =
    Format.fprintf !out "  ";
    List.iteri
      (fun c cell ->
        let w = List.nth widths c in
        if c = 0 then Format.fprintf !out "%-*s" w cell
        else Format.fprintf !out "  %*s" w cell)
      row;
    Format.fprintf !out "@."
  in
  line header;
  line (List.map (fun w -> String.make w '-') widths);
  List.iter line rows

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let mops v = Printf.sprintf "%.2f" v
let mb bytes = Printf.sprintf "%.1f" (float_of_int bytes /. 1048576.0)
