(** Registry of all reproduced experiments (see DESIGN.md §3 for the
    per-experiment index). *)

type t = {
  id : string;
  what : string;
  run : Scale.t -> unit;
}

let all =
  [
    { id = "fig2"; what = "CLI vs XBI microbenchmark"; run = Exp_fig2.run };
    { id = "fig3"; what = "amplification + time, uniform"; run = Exp_amp.run_fig3 };
    { id = "fig4"; what = "amplification + time, Zipfian"; run = Exp_amp.run_fig4 };
    { id = "fig5"; what = "range query vs scan size"; run = Exp_micro.run_fig5 };
    { id = "fig10"; what = "micro ops vs threads"; run = Exp_micro.run_fig10 };
    { id = "fig11"; what = "YCSB mixes vs threads"; run = Exp_ycsb.run };
    { id = "fig12"; what = "latency percentiles"; run = Exp_micro.run_fig12 };
    { id = "fig13"; what = "ablation Base/+BNode/+WLog"; run = Exp_amp.run_fig13 };
    { id = "fig14"; what = "GC strategy timeline"; run = Exp_gc.run_fig14 };
    { id = "tab1"; what = "N_batch sensitivity"; run = Exp_gc.run_tab1 };
    { id = "tab2"; what = "TH_log sensitivity"; run = Exp_gc.run_tab2 };
    { id = "fig15a"; what = "skewness sweep"; run = Exp_sens.run_fig15a };
    { id = "fig15b"; what = "variable-size KVs"; run = Exp_sens.run_fig15b };
    { id = "fig15c"; what = "large values"; run = Exp_sens.run_fig15c };
    { id = "fig15d"; what = "dataset-size sweep"; run = Exp_sens.run_fig15d };
    { id = "fig16"; what = "eADR mode"; run = Exp_sens.run_fig16 };
    { id = "fig17"; what = "recovery time"; run = Exp_sens.run_fig17 };
    { id = "fig18"; what = "memory consumption"; run = Exp_sens.run_fig18 };
    { id = "fig19"; what = "realistic datasets"; run = Exp_sens.run_fig19 };
    { id = "tab3"; what = "vs log-structured stores"; run = Exp_sens.run_tab3 };
    { id = "ext"; what = "CCL techniques on a hash table (§6)"; run = Exp_ext.run };
  ]

let find id = List.find_opt (fun e -> e.id = id) all
let ids () = List.map (fun e -> e.id) all
