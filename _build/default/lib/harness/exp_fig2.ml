(** Figure 2: the motivating microbenchmark.

    (a) fixes the XPLine count and varies cacheline flushes per request:
    each request writes and flushes N cachelines of one random XPLine.
    (b) fixes the cacheline count and varies XPLine flushes: each request
    writes one cacheline in each of N random XPLines.

    The paper's observation: execution time is insensitive to (a) once
    threads saturate PM (the flushes coalesce in the XPBuffer) but grows
    linearly with (b) — XBI-amplification, not CLI-amplification, is what
    the media bandwidth pays for. *)

module D = Pmem.Device
module S = Pmem.Stats

let requests = 20_000
let thread_counts = [ 1; 12; 24; 36; 48 ]

let run_variant ~mb ~variant ~n =
  let dev = Runner.device ~mb () in
  let rng = Random.State.make [| 100 + n |] in
  let xplines = mb * 1024 * 1024 / 256 in
  let before = D.snapshot dev in
  for _ = 1 to requests do
    (match variant with
    | `Cachelines_one_xpline ->
      let xp = Random.State.int rng xplines * 256 in
      for c = 0 to n - 1 do
        D.store_u64 dev (xp + (c * 64)) 1L;
        D.clwb dev (xp + (c * 64))
      done;
      D.sfence dev
    | `Xplines_four_cachelines ->
      for _ = 1 to n do
        let xp = Random.State.int rng xplines * 256 in
        for c = 0 to 3 do
          D.store_u64 dev (xp + (c * 64)) 1L;
          D.clwb dev (xp + (c * 64))
        done
      done;
      D.sfence dev);
    D.add_user_bytes dev 8
  done;
  D.drain dev;
  let delta = S.diff ~after:(D.snapshot dev) ~before in
  let avg_ns =
    Perfmodel.Constants.base_op_ns
    +. (Runner.events_cost_ns delta /. float_of_int requests)
  in
  let profile =
    {
      Perfmodel.Thread_model.t_cpu_ns = avg_ns;
      write_bytes = float_of_int delta.S.media_write_bytes /. float_of_int requests;
      read_bytes = float_of_int delta.S.media_read_bytes /. float_of_int requests;
      numa_aware = true;
    }
  in
  (* execution time normalized to the paper's 5M requests per thread *)
  List.map
    (fun threads ->
      let tput = Perfmodel.Thread_model.throughput ~threads profile in
      5e6 *. float_of_int threads /. tput)
    thread_counts

let run (scale : Scale.t) =
  let mb = scale.Scale.device_mb in
  Report.section "Fig 2(a): N cacheline flushes into one XPLine";
  let header =
    "# threads" :: List.map (fun n -> Printf.sprintf "N=%d (s)" n) [ 1; 2; 3; 4 ]
  in
  let times_a =
    List.map (fun n -> run_variant ~mb ~variant:`Cachelines_one_xpline ~n)
      [ 1; 2; 3; 4 ]
  in
  let rows_a =
    List.mapi
      (fun ti threads ->
        string_of_int threads
        :: List.map (fun series -> Report.f2 (List.nth series ti)) times_a)
      thread_counts
  in
  Report.table ~header rows_a;
  Report.note
    "paper: curves converge as threads grow - extra cacheline flushes \
     coalesce in the XPBuffer";
  Report.section "Fig 2(b): 4 cacheline flushes into N XPLines";
  let times_b =
    List.map (fun n -> run_variant ~mb ~variant:`Xplines_four_cachelines ~n)
      [ 1; 2; 3; 4 ]
  in
  let rows_b =
    List.mapi
      (fun ti threads ->
        string_of_int threads
        :: List.map (fun series -> Report.f2 (List.nth series ti)) times_b)
      thread_counts
  in
  Report.table ~header rows_b;
  Report.note
    "paper: execution time grows ~linearly with the number of XPLine \
     flushes"
