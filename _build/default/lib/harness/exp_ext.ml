(** Extension experiment (paper §6): the CCL techniques applied to a
    persistent hash table.  Compares CCL-Hash (buffer nodes +
    write-conservative logging + locality-aware GC) against the same
    bucket structure with write-through updates, on random upserts. *)

module D = Pmem.Device
module S = Pmem.Stats
module H = Ccl_hash.Hash_table
module Config = Ccl_btree.Config
module K = Workload.Keygen

let run_variant ~buffering (scale : Scale.t) =
  let dev = Runner.device ~mb:scale.Scale.device_mb () in
  let cfg = { Config.default with Config.buffering } in
  let buckets =
    (* about one bucket per 10 warm keys, rounded to a power of two *)
    let rec pow2 n = if n >= scale.Scale.warmup / 10 then n else pow2 (2 * n) in
    pow2 64
  in
  let h = H.create ~cfg ~buckets dev in
  Array.iter
    (fun k -> H.upsert h k 1L)
    (K.shuffled_range ~seed:1 scale.Scale.warmup);
  let gen = K.uniform ~seed:9 ~space:(2 * scale.Scale.warmup) in
  let before = D.snapshot dev in
  for i = 1 to scale.Scale.ops do
    H.upsert h (K.next gen) (Int64.of_int i)
  done;
  H.flush_all h;
  D.drain dev;
  let delta = S.diff ~after:(D.snapshot dev) ~before in
  let n = float_of_int scale.Scale.ops in
  let profile =
    {
      Perfmodel.Thread_model.t_cpu_ns =
        Perfmodel.Constants.base_op_ns
        +. (Runner.events_cost_ns delta /. n);
      write_bytes = float_of_int delta.S.media_write_bytes /. n;
      read_bytes = float_of_int delta.S.media_read_bytes /. n;
      numa_aware = true;
    }
  in
  ( S.cli_amplification delta,
    S.xbi_amplification delta,
    Perfmodel.Thread_model.mops ~threads:48 profile )

let run (scale : Scale.t) =
  Report.section
    "Extension (paper §6): CCL techniques on a persistent hash table";
  let rows =
    List.map
      (fun (name, buffering) ->
        let cli, xbi, mops = run_variant ~buffering scale in
        [ name; Report.f2 cli; Report.f2 xbi; Report.mops mops ])
      [ ("write-through hash", false); ("CCL-Hash", true) ]
  in
  Report.table
    ~header:[ "variant"; "CLI-amp"; "XBI-amp"; "Mop/s@48t" ]
    rows;
  Report.note
    "paper (forward-looking claim): buffering + write-conservative \
     logging + locality-aware GC transfer to hash tables (CCEH/CLevel \
     style) with the same XBI reduction"
