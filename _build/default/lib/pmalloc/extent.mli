(** Bump allocator for variable-size values (paper Optimization #3).

    Large keys/values live out-of-band in [Extent]-tagged chunks and are
    referenced through 8 B indirection pointers.  Allocation bumps a
    volatile per-chunk watermark; recovery replays [mark_used] for every
    extent still referenced from the tree or logs, re-raising watermarks so
    live data is never overwritten (unreferenced tails are reclaimed
    implicitly). *)

type t

val create : Alloc.t -> t
val attach : Alloc.t -> t
val alloc : t -> int -> int
(** [alloc t len] returns the address of a fresh 16 B-aligned extent. *)

val mark_used : t -> addr:int -> len:int -> unit
val used_bytes : t -> int
