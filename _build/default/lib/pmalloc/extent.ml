type t = {
  alloc : Alloc.t;
  watermark : (int, int) Hashtbl.t;  (* chunk base -> bytes used *)
  mutable current : int option;  (* chunk being bump-allocated *)
  mutable used : int;
}

let create alloc = { alloc; watermark = Hashtbl.create 16; current = None; used = 0 }

let attach alloc =
  let t = create alloc in
  Alloc.iter_chunks alloc Alloc.Extent (fun base ->
      Hashtbl.replace t.watermark base 0);
  t

let align16 n = (n + 15) land lnot 15

let alloc t len =
  let len = align16 len in
  let cs = Alloc.chunk_size t.alloc in
  if len > cs then invalid_arg "Extent.alloc: larger than a chunk";
  let base =
    match t.current with
    | Some base when Hashtbl.find t.watermark base + len <= cs -> base
    | _ ->
      let base = Alloc.alloc_chunk t.alloc Alloc.Extent in
      Hashtbl.replace t.watermark base 0;
      t.current <- Some base;
      base
  in
  let off = Hashtbl.find t.watermark base in
  Hashtbl.replace t.watermark base (off + len);
  t.used <- t.used + len;
  base + off

let mark_used t ~addr ~len =
  let len = align16 len in
  let base = Alloc.chunk_base_of_addr t.alloc addr in
  let high = addr - base + len in
  let cur = try Hashtbl.find t.watermark base with Not_found -> 0 in
  if high > cur then begin
    t.used <- t.used + (high - cur);
    Hashtbl.replace t.watermark base high
  end

let used_bytes t = t.used
