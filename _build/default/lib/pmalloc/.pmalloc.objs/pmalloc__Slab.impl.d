lib/pmalloc/slab.ml: Alloc Bytes Hashtbl Stack
