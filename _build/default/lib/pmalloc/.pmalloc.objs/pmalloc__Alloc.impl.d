lib/pmalloc/alloc.ml: Int64 Pmem Queue
