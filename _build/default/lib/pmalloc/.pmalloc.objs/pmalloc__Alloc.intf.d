lib/pmalloc/alloc.mli: Pmem
