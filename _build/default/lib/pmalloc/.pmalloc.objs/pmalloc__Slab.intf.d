lib/pmalloc/slab.mli: Alloc
