lib/pmalloc/extent.mli: Alloc
