lib/pmalloc/extent.ml: Alloc Hashtbl
