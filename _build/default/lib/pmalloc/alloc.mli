(** Chunk-based persistent-memory allocator (paper §4.2).

    The device is carved into fixed-size chunks described by a persistent
    one-byte-per-chunk tag table.  Allocation writes and persists the tag,
    so a post-crash scan of the table recovers exactly which chunks belong
    to which subsystem: there is no persistent free list to corrupt and no
    chunk can leak.  Objects *within* a chunk are tracked by volatile
    metadata ({!Slab}, {!Extent}) that owners rebuild during recovery by
    scanning their own structures; unreferenced objects fall back to the
    free state automatically. *)

type t

type tag =
  | Leaf  (** 256 B tree leaf nodes. *)
  | Log  (** Write-ahead-log chunks. *)
  | Extent  (** Out-of-band variable-size values. *)

val format : Pmem.Device.t -> chunk_size:int -> t
(** Initialize a fresh device.  [chunk_size] must be a multiple of 256. *)

val attach : Pmem.Device.t -> t
(** Recover allocator state from a previously formatted device by scanning
    the persistent tag table. *)

val device : t -> Pmem.Device.t
val chunk_size : t -> int
val superblock : t -> int
(** Address of a 3.8 KB client metadata area persisted independently of the
    chunk space (the tree stores its head-leaf pointer there). *)

val alloc_chunk : t -> tag -> int
(** Allocate a chunk and persist its tag.  @raise Out_of_memory when the
    device is full. *)

val free_chunk : t -> int -> unit
(** Return a chunk to the free state (tag persisted before reuse). *)

val chunk_base_of_addr : t -> int -> int
(** Base address of the chunk containing the given address. *)

val classify : t -> int -> int
(** Unaccounted chunk-tag lookup (0 free / metadata, 1 leaf, 2 log,
    3 extent), suitable as a {!Pmem.Device.set_classifier} callback for
    attributing media writes. *)

val iter_chunks : t -> tag -> (int -> unit) -> unit
(** Iterate over the addresses of all chunks carrying [tag]. *)

val chunks_total : t -> int
val chunks_free : t -> int
val allocated_bytes : t -> int
(** Bytes held by non-free chunks (PM space accounting, Fig 18). *)
