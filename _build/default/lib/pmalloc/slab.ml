type chunk = { base : int; used : Bytes.t (* one byte per slot *) }

type t = {
  alloc : Alloc.t;
  tag : Alloc.tag;
  obj_size : int;
  slots_per_chunk : int;
  chunks : (int, chunk) Hashtbl.t;  (* base -> chunk *)
  free_slots : int Stack.t;  (* may hold stale entries; validated on pop *)
  mutable used : int;
}

let make alloc tag ~obj_size =
  let cs = Alloc.chunk_size alloc in
  assert (obj_size > 0 && cs mod obj_size = 0);
  {
    alloc;
    tag;
    obj_size;
    slots_per_chunk = cs / obj_size;
    chunks = Hashtbl.create 64;
    free_slots = Stack.create ();
    used = 0;
  }

let add_chunk t base =
  let c = { base; used = Bytes.make t.slots_per_chunk '\000' } in
  Hashtbl.replace t.chunks base c;
  for i = t.slots_per_chunk - 1 downto 0 do
    Stack.push (base + (i * t.obj_size)) t.free_slots
  done

let create alloc tag ~obj_size = make alloc tag ~obj_size

let attach alloc tag ~obj_size =
  let t = make alloc tag ~obj_size in
  Alloc.iter_chunks alloc tag (add_chunk t);
  t

let chunk_of t addr =
  match Hashtbl.find_opt t.chunks (Alloc.chunk_base_of_addr t.alloc addr) with
  | Some c -> c
  | None -> invalid_arg "Slab: address outside any chunk of this slab"

let slot_index t c addr =
  let off = addr - c.base in
  assert (off >= 0 && off mod t.obj_size = 0);
  off / t.obj_size

let rec alloc t =
  if Stack.is_empty t.free_slots then
    add_chunk t (Alloc.alloc_chunk t.alloc t.tag);
  let addr = Stack.pop t.free_slots in
  let c = chunk_of t addr in
  let i = slot_index t c addr in
  if Bytes.get c.used i <> '\000' then alloc t (* stale: taken by mark_used *)
  else begin
    Bytes.set c.used i '\001';
    t.used <- t.used + 1;
    addr
  end

let free t addr =
  let c = chunk_of t addr in
  let i = slot_index t c addr in
  if Bytes.get c.used i <> '\000' then begin
    Bytes.set c.used i '\000';
    t.used <- t.used - 1;
    Stack.push addr t.free_slots
  end

let mark_used t addr =
  let c = chunk_of t addr in
  let i = slot_index t c addr in
  if Bytes.get c.used i = '\000' then begin
    Bytes.set c.used i '\001';
    t.used <- t.used + 1
  end

let is_used t addr =
  let c = chunk_of t addr in
  Bytes.get c.used (slot_index t c addr) <> '\000'

let used_count t = t.used
let used_bytes t = t.used * t.obj_size
