(** Fixed-size object allocator over tagged chunks.

    Used for 256 B leaf nodes: objects are allocated from chunks carrying a
    single {!Alloc.tag}; the free bitmap is volatile and is rebuilt during
    recovery by the owner calling [mark_used] for every object it can still
    reach (leaf-chain scan), which automatically reclaims orphans from
    interrupted splits. *)

type t

val create : Alloc.t -> Alloc.tag -> obj_size:int -> t
(** Fresh slab with no chunks; chunks are claimed from the allocator on
    demand.  [obj_size] must divide the chunk size. *)

val attach : Alloc.t -> Alloc.tag -> obj_size:int -> t
(** Recovery: adopt every chunk carrying [tag], with all slots presumed
    free until [mark_used]. *)

val alloc : t -> int
val free : t -> int -> unit
val mark_used : t -> int -> unit
(** Declare [addr] live during recovery.  Idempotent. *)

val is_used : t -> int -> bool
val used_count : t -> int
val used_bytes : t -> int
