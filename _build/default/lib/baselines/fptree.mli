(** FPTree (Oukid et al., SIGMOD '16): hybrid SCM-DRAM B+-tree with
    fingerprinting.  Volatile inner nodes; persistent unsorted leaves
    committed via a bitmap word; an insert costs two flush+fence rounds
    (KV slot, then metadata), both to the same random XPLine. *)

type t

val name : string
val create : Pmem.Device.t -> t
val upsert : t -> int64 -> int64 -> unit
val search : t -> int64 -> int64 option
val delete : t -> int64 -> unit
val scan : t -> start:int64 -> int -> (int64 * int64) array
val flush_all : t -> unit
val dram_bytes : t -> int
val pm_bytes : t -> int
val allocator : t -> Pmalloc.Alloc.t
