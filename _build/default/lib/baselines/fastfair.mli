(** FAST&FAIR (Hwang et al., FAST '18): failure-atomic shift-based
    B+-tree living entirely in PM.  Sorted 256 B nodes; inserts shift
    entries with 8 B stores and flush the touched cachelines — low
    CLI-amplification, but each insert dirties a random XPLine (high
    XBI), and traversals pay PM reads for the inner nodes.  The paper's
    primary baseline. *)

type t

val name : string

val create : Pmem.Device.t -> t
(** Format the device and build an empty tree. *)

val create_on : Pmalloc.Alloc.t -> t
(** Build on an existing allocator (PACTree embeds one as its PM search
    layer). *)

val upsert : t -> int64 -> int64 -> unit
val search : t -> int64 -> int64 option

val find_le : t -> int64 -> (int64 * int64) option
(** Greatest entry with key ≤ the argument (used by PACTree routing). *)

val delete : t -> int64 -> unit
(** FAIR-style lazy delete: shift left within the leaf, no rebalancing. *)

val scan : t -> start:int64 -> int -> (int64 * int64) array
val flush_all : t -> unit
val dram_bytes : t -> int
val pm_bytes : t -> int
val allocator : t -> Pmalloc.Alloc.t
