(** DPTree (Zhou et al., VLDB '19): differential indexing with a global
    DRAM buffer and sequential PM log in front of a base tree.  When the
    buffer fills it merges wholesale into the base — random leaf writes
    across the key space (the global-buffering pitfall of paper §3.2)
    and a foreground stall visible in the latency tail (Fig 12). *)

type t

val name : string
val create : Pmem.Device.t -> t
val upsert : t -> int64 -> int64 -> unit
val search : t -> int64 -> int64 option
val delete : t -> int64 -> unit
val scan : t -> start:int64 -> int -> (int64 * int64) array

val flush_all : t -> unit
(** Forces a merge of the buffered delta. *)

val merge_count : t -> int
val dram_bytes : t -> int
val pm_bytes : t -> int
val allocator : t -> Pmalloc.Alloc.t
