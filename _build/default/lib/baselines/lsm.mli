(** PMEM-RocksDB stand-in: a two-level LSM tree on PM (memtable + WAL,
    L0 runs, compacted L1).  Compaction re-reads and rewrites live data
    (high write amplification) and queries consult multiple sorted runs —
    why RocksDB trails every PM-native index in the paper's Table 3. *)

type t

val name : string
val create : Pmem.Device.t -> t
val upsert : t -> int64 -> int64 -> unit
val search : t -> int64 -> int64 option
val delete : t -> int64 -> unit
val scan : t -> start:int64 -> int -> (int64 * int64) array

val flush_all : t -> unit
(** Flush the memtable to an L0 run (may trigger compaction). *)

val compaction_count : t -> int
val dram_bytes : t -> int
val pm_bytes : t -> int
val allocator : t -> Pmalloc.Alloc.t
