(** PACTree (Kim et al., SOSP '21) stand-in: a pure-PM range index — a
    FAST&FAIR-style search layer over unsorted fingerprinted data nodes,
    with the search layer updated only on splits (PACTree updates it
    asynchronously).  NUMA-aware in the performance model, per the PAC
    guidelines. *)

type t

val name : string
val create : Pmem.Device.t -> t
val upsert : t -> int64 -> int64 -> unit
val search : t -> int64 -> int64 option
val delete : t -> int64 -> unit
val scan : t -> start:int64 -> int -> (int64 * int64) array
val flush_all : t -> unit
val dram_bytes : t -> int
val pm_bytes : t -> int
val allocator : t -> Pmalloc.Alloc.t
