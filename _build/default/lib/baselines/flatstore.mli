(** FlatStore (Chen et al., ASPLOS '20) reimplementation (the original
    is closed source; the paper's authors also reimplemented it): a
    volatile index over a sequential PM log.  Minimal CLI and XBI
    amplification — and the paper's counterexample: chronological layout
    makes every range-query entry a random XPLine read (Fig 5). *)

type t

val name : string
val create : Pmem.Device.t -> t
val upsert : t -> int64 -> int64 -> unit
val search : t -> int64 -> int64 option
val delete : t -> int64 -> unit
val scan : t -> start:int64 -> int -> (int64 * int64) array
val flush_all : t -> unit
val dram_bytes : t -> int
val pm_bytes : t -> int
val allocator : t -> Pmalloc.Alloc.t
