(* LB+-Tree: single-cacheline commit via first-line packing (Liu et al.,
   VLDB '20).  See {!Fptree_core} for the shared implementation. *)

type t = Fptree_core.t

let name = "LB+-Tree"
let create dev = Fptree_core.make ~single_line_commit:true dev
let upsert = Fptree_core.upsert
let search = Fptree_core.search
let delete = Fptree_core.delete
let scan = Fptree_core.scan
let flush_all = Fptree_core.flush_all
let dram_bytes = Fptree_core.dram_bytes
let pm_bytes = Fptree_core.pm_bytes
let allocator = Fptree_core.allocator
