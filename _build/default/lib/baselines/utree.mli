(** uTree (Chen et al., VLDB '20): DRAM index over a persistent
    singly-linked list with one KV per 32 B node.  Structural operations
    stay in DRAM (low tail latency), but each insert writes two random
    PM lines (node + predecessor link) and scans chase pointers through
    random XPLines — the worst scan throughput in the paper's Fig 10(e). *)

type t

val name : string
val create : Pmem.Device.t -> t
val upsert : t -> int64 -> int64 -> unit
val search : t -> int64 -> int64 option
val delete : t -> int64 -> unit
val scan : t -> start:int64 -> int -> (int64 * int64) array
val flush_all : t -> unit
val dram_bytes : t -> int
val pm_bytes : t -> int
val allocator : t -> Pmalloc.Alloc.t
