lib/baselines/ccl_index.mli: Ccl_btree Index_intf Pmalloc Pmem
