lib/baselines/dptree.mli: Pmalloc Pmem
