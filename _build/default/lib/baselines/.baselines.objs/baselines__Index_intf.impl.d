lib/baselines/index_intf.ml: Pmalloc Pmem
