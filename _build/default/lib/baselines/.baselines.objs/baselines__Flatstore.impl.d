lib/baselines/flatstore.ml: Array Int64 List Map Pmalloc Pmem
