lib/baselines/flatstore.mli: Pmalloc Pmem
