lib/baselines/fastfair.mli: Pmalloc Pmem
