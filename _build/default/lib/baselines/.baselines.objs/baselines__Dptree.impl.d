lib/baselines/dptree.ml: Array Fptree_core Hashtbl Int64 List Pmalloc Pmem
