lib/baselines/pactree.ml: Array Ccl_btree Fastfair Int64 List Pmalloc Pmem
