lib/baselines/lbtree.ml: Fptree_core
