lib/baselines/lbtree.mli: Pmalloc Pmem
