lib/baselines/fptree_core.mli: Pmalloc Pmem
