lib/baselines/fptree.mli: Pmalloc Pmem
