lib/baselines/ccl_index.ml: Ccl_btree Index_intf
