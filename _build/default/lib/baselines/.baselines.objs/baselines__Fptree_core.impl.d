lib/baselines/fptree_core.ml: Array Ccl_btree Int64 List Pmalloc Pmem
