lib/baselines/fastfair.ml: Array Int64 List Pmalloc Pmem
