lib/baselines/lsm.mli: Pmalloc Pmem
