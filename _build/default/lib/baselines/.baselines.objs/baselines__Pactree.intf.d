lib/baselines/pactree.mli: Pmalloc Pmem
