lib/baselines/fptree.ml: Fptree_core
