lib/baselines/utree.mli: Pmalloc Pmem
