lib/baselines/utree.ml: Array Int64 List Map Pmalloc Pmem
