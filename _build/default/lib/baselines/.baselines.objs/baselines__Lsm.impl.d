lib/baselines/lsm.ml: Array Hashtbl Int64 List Map Pmalloc Pmem
