(* Shared implementation of FPTree (Oukid et al., SIGMOD '16) and
   LB+-Tree (Liu et al., VLDB '20): volatile inner nodes, persistent
   256 B unsorted leaves with a bitmap and per-slot fingerprints.

   The two differ in their flush discipline: FPTree persists the KV slot
   and then the metadata in two flush+fence rounds; LB+-Tree packs
   metadata and data into the first cacheline and prefers free slots
   there, committing an insert with a single flush+fence in the common
   case.  Both reduce cacheline flushes (CLI) but still dirty one random
   XPLine per insert (XBI), which is the paper's point. *)

module D = Pmem.Device
module Alloc = Pmalloc.Alloc
module Slab = Pmalloc.Slab
module L = Ccl_btree.Leaf_node
module Idx = Ccl_btree.Inner_index

type t = {
  dev : D.t;
  alloc : Alloc.t;
  slab : Slab.t;
  index : int Idx.t;  (* lower fence key -> leaf address *)
  single_line_commit : bool;  (* LB+-Tree mode *)
}

let make_on ~single_line_commit alloc =
  let dev = Alloc.device alloc in
  let slab = Slab.create alloc Alloc.Leaf ~obj_size:L.size in
  let head = Slab.alloc slab in
  L.init dev head ~next:0;
  let index = Idx.create () in
  Idx.add index Int64.min_int head;
  { dev; alloc; slab; index; single_line_commit }

let make ~single_line_commit dev =
  make_on ~single_line_commit (Alloc.format dev ~chunk_size:(64 * 1024))

let allocator t = t.alloc

let target_leaf t key =
  match Idx.find_le t.index key with Some l -> l | None -> assert false

(* Insert a fresh key into a leaf that has at least one free slot. *)
let insert_free_slot t leaf ~key ~value =
  let free = L.free_slots t.dev leaf in
  let slot =
    if t.single_line_commit then
      (* prefer a slot in the first cacheline (slots 0 and 1) *)
      match List.filter (fun i -> i < 2) free with
      | i :: _ -> i
      | [] -> List.hd free
    else List.hd free
  in
  L.store_slot t.dev leaf slot ~key ~value;
  let commit () =
    L.store_fingerprint t.dev leaf slot key;
    L.store_meta_word t.dev leaf
      ~bitmap:(L.bitmap t.dev leaf lor (1 lsl slot))
      ~next:(L.next t.dev leaf)
  in
  if t.single_line_commit && slot < 2 then begin
    (* data and metadata share the first cacheline: one flush, one fence *)
    commit ();
    D.persist t.dev leaf 64
  end
  else begin
    D.persist t.dev (L.slot_addr leaf slot) 16;
    commit ();
    D.persist t.dev leaf 32
  end

(* Split a full leaf, returning the leaf that should host [key]. *)
let split_leaf t leaf key =
  let entries =
    List.sort (fun (a, _) (b, _) -> Int64.compare a b) (L.entries t.dev leaf)
  in
  let n = List.length entries in
  let mid = n / 2 in
  let right = List.filteri (fun i _ -> i >= mid) entries in
  let right_low = fst (List.hd right) in
  let new_leaf = Slab.alloc t.slab in
  let bits = ref 0 in
  List.iteri
    (fun i (k, v) ->
      L.store_slot t.dev new_leaf i ~key:k ~value:v;
      L.store_fingerprint t.dev new_leaf i k;
      bits := !bits lor (1 lsl i))
    right;
  L.store_meta_word t.dev new_leaf ~bitmap:!bits ~next:(L.next t.dev leaf);
  D.persist t.dev new_leaf L.size;
  (* atomic commit on the old leaf: drop moved slots, link the new leaf *)
  let keep = ref 0 in
  let bm = L.bitmap t.dev leaf in
  for i = 0 to L.slots - 1 do
    if bm land (1 lsl i) <> 0 then
      if Int64.compare (L.key_at t.dev leaf i) right_low < 0 then
        keep := !keep lor (1 lsl i)
  done;
  L.store_meta_word t.dev leaf ~bitmap:!keep ~next:new_leaf;
  D.persist t.dev leaf 8;
  Idx.add t.index right_low new_leaf;
  if Int64.compare key right_low >= 0 then new_leaf else leaf

let rec upsert t key value =
  let leaf = target_leaf t key in
  match L.find t.dev leaf key with
  | Some i ->
    (* in-place 8 B value update, one flush *)
    D.store_u64 t.dev (L.slot_addr leaf i + 8) value;
    D.persist t.dev (L.slot_addr leaf i + 8) 8
  | None ->
    if L.free_slots t.dev leaf = [] then begin
      ignore (split_leaf t leaf key);
      upsert t key value
    end
    else insert_free_slot t leaf ~key ~value

let upsert t key value =
  D.add_user_bytes t.dev 16;
  upsert t key value

let search t key =
  let leaf = target_leaf t key in
  match L.find t.dev leaf key with
  | Some i -> Some (L.value_at t.dev leaf i)
  | None -> None

let delete t key =
  D.add_user_bytes t.dev 16;
  let leaf = target_leaf t key in
  match L.find t.dev leaf key with
  | Some i ->
    L.store_meta_word t.dev leaf
      ~bitmap:(L.bitmap t.dev leaf land lnot (1 lsl i))
      ~next:(L.next t.dev leaf);
    D.persist t.dev leaf 8
  | None -> ()

let scan t ~start n =
  let acc = ref [] in
  let count = ref 0 in
  let rec walk leaf =
    if leaf <> 0 && !count < n then begin
      let entries =
        List.sort compare
          (List.filter
             (fun (k, _) -> Int64.compare k start >= 0)
             (L.entries t.dev leaf))
      in
      List.iter
        (fun e ->
          if !count < n then begin
            acc := e :: !acc;
            incr count
          end)
        entries;
      if !count < n then walk (L.next t.dev leaf)
    end
  in
  walk (target_leaf t start);
  Array.of_list (List.rev !acc)

let flush_all _ = ()
let dram_bytes t = Idx.dram_bytes t.index
let pm_bytes t = Slab.used_bytes t.slab
