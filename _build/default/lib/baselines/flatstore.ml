(* FlatStore (Chen et al., ASPLOS '20): a log-structured KV engine with a
   volatile index.  Every write appends a 16 B record to a sequential PM
   log — near-perfect XPBuffer locality, hence minimal CLI and XBI
   amplification — but records sit in chronological rather than key
   order, so a range query takes one random XPLine read per entry (the
   paper's Fig 5: up to 5.59x slower scans).  The original is closed
   source; like the paper's authors we reimplement it from its paper. *)

module D = Pmem.Device
module Alloc = Pmalloc.Alloc
module M = Map.Make (Int64)

let name = "FlatStore"

type t = {
  dev : D.t;
  alloc : Alloc.t;
  mutable map : int M.t;  (* DRAM index: key -> log record address *)
  mutable chunks : int list;
  mutable off : int;
  mutable live_records : int;
}

let create dev =
  let alloc = Alloc.format dev ~chunk_size:(64 * 1024) in
  { dev; alloc; map = M.empty; chunks = []; off = 0; live_records = 0 }

let append t key value =
  let cs = Alloc.chunk_size t.alloc in
  (if t.chunks = [] || t.off + 16 > cs then begin
     t.chunks <- Alloc.alloc_chunk t.alloc Alloc.Log :: t.chunks;
     t.off <- 0
   end);
  let addr = List.hd t.chunks + t.off in
  D.store_u64 t.dev addr key;
  D.store_u64 t.dev (addr + 8) value;
  D.persist t.dev addr 16;
  t.off <- t.off + 16;
  addr

let upsert t key value =
  D.add_user_bytes t.dev 16;
  let addr = append t key value in
  if not (M.mem key t.map) then t.live_records <- t.live_records + 1;
  t.map <- M.add key addr t.map

let search t key =
  match M.find_opt key t.map with
  | Some addr -> Some (D.load_u64 t.dev (addr + 8)) (* random PM read *)
  | None -> None

let delete t key =
  D.add_user_bytes t.dev 16;
  ignore (append t key 0L);
  if M.mem key t.map then t.live_records <- t.live_records - 1;
  t.map <- M.remove key t.map

(* Keys come from the ordered DRAM index, but each value requires a
   random read into the log: this is FlatStore's scan penalty. *)
let scan t ~start n =
  let acc = ref [] in
  let count = ref 0 in
  (try
     M.iter
       (fun k addr ->
         if Int64.compare k start >= 0 then begin
           if !count >= n then raise Exit;
           acc := (k, D.load_u64 t.dev (addr + 8)) :: !acc;
           incr count
         end)
       t.map
   with Exit -> ());
  Array.of_list (List.rev !acc)

let flush_all _ = ()
let dram_bytes t = M.cardinal t.map * 48
let pm_bytes t = List.length t.chunks * Alloc.chunk_size t.alloc
let allocator t = t.alloc
