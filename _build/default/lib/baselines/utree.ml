(* uTree (Chen et al., VLDB '20): a B+-tree layer in DRAM whose leaf layer
   is a persistent singly-linked list with one KV per 32 B list node.
   Structural refinements (splits/merges) happen entirely in DRAM, which
   gives low tail latency, but every insert writes two random PM lines
   (the new node and its predecessor's next pointer) and scans chase
   pointers through random XPLines. *)

module D = Pmem.Device
module Alloc = Pmalloc.Alloc
module Slab = Pmalloc.Slab
module M = Map.Make (Int64)

let name = "uTree"
let node_size = 32

type t = {
  dev : D.t;
  alloc : Alloc.t;
  slab : Slab.t;
  mutable map : int M.t;  (* DRAM index: key -> PM list node *)
  head : int;  (* PM sentinel node *)
}

(* list node: [0..7] key, [8..15] value, [16..23] next *)
let node_key t a = D.load_u64 t.dev a
let node_value t a = D.load_u64 t.dev (a + 8)
let node_next t a = Int64.to_int (D.load_u64 t.dev (a + 16))

let create dev =
  let alloc = Alloc.format dev ~chunk_size:(64 * 1024) in
  let slab = Slab.create alloc Alloc.Leaf ~obj_size:node_size in
  let head = Slab.alloc slab in
  D.fill dev head node_size '\000';
  D.store_u64 dev head Int64.min_int;
  D.persist dev head node_size;
  { dev; alloc; slab; map = M.empty; head }

let pred_node t key =
  match M.find_last_opt (fun k -> Int64.compare k key < 0) t.map with
  | Some (_, a) -> a
  | None -> t.head

let upsert t key value =
  D.add_user_bytes t.dev 16;
  match M.find_opt key t.map with
  | Some a ->
    (* in-place update of the PM list node *)
    D.store_u64 t.dev (a + 8) value;
    D.persist t.dev (a + 8) 8
  | None ->
    let pred = pred_node t key in
    let a = Slab.alloc t.slab in
    D.store_u64 t.dev a key;
    D.store_u64 t.dev (a + 8) value;
    D.store_u64 t.dev (a + 16) (Int64.of_int (node_next t pred));
    D.persist t.dev a 24;
    (* second random PM write: predecessor link (8 B atomic) *)
    D.store_u64 t.dev (pred + 16) (Int64.of_int a);
    D.persist t.dev (pred + 16) 8;
    t.map <- M.add key a t.map

let search t key =
  match M.find_opt key t.map with
  | Some a -> Some (node_value t a)
  | None -> None

let delete t key =
  D.add_user_bytes t.dev 16;
  match M.find_opt key t.map with
  | Some a ->
    let pred = pred_node t key in
    D.store_u64 t.dev (pred + 16) (Int64.of_int (node_next t a));
    D.persist t.dev (pred + 16) 8;
    Slab.free t.slab a;
    t.map <- M.remove key t.map
  | None -> ()

(* Scans chase the PM linked list: one random XPLine read per entry. *)
let scan t ~start n =
  let first =
    match M.find_first_opt (fun k -> Int64.compare k start >= 0) t.map with
    | Some (_, a) -> a
    | None -> 0
  in
  let acc = ref [] in
  let count = ref 0 in
  let rec walk a =
    if a <> 0 && !count < n then begin
      acc := (node_key t a, node_value t a) :: !acc;
      incr count;
      walk (node_next t a)
    end
  in
  walk first;
  Array.of_list (List.rev !acc)

let flush_all _ = ()
let dram_bytes t = M.cardinal t.map * 48
let pm_bytes t = Slab.used_bytes t.slab
let allocator t = t.alloc
