(** CCL-BTree behind the common {!Index_intf.S} interface, plus the
    configurations of the paper's Fig 13 ablation study. *)

type t = Ccl_btree.Tree.t

val name : string
val create : Pmem.Device.t -> t
val upsert : t -> int64 -> int64 -> unit
val search : t -> int64 -> int64 option
val delete : t -> int64 -> unit
val scan : t -> start:int64 -> int -> (int64 * int64) array
val flush_all : t -> unit
val dram_bytes : t -> int
val pm_bytes : t -> int
val allocator : t -> Pmalloc.Alloc.t

val driver_with :
  ?name:string -> Ccl_btree.Config.t -> Pmem.Device.t -> Index_intf.driver
(** Build a driver for an arbitrary configuration (ablations, GC
    strategies, N_batch sweeps). *)

val base_cfg : Ccl_btree.Config.t
(** Fig 13 "Base": write-through, no buffering, no logging. *)

val bnode_cfg : Ccl_btree.Config.t
(** Fig 13 "+BNode": buffering with naive (log-everything) WAL. *)

val wlog_cfg : Ccl_btree.Config.t
(** Fig 13 "+WLog": buffering with write-conservative logging. *)
