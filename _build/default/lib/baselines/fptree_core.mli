(** Shared implementation of FPTree and LB+-Tree: volatile inner nodes
    over persistent 256 B unsorted leaves with bitmap + fingerprints.
    [single_line_commit] selects LB+-Tree's first-cacheline packing
    (metadata and a KV slot persisted with one flush+fence). *)

type t

val make : single_line_commit:bool -> Pmem.Device.t -> t
val make_on : single_line_commit:bool -> Pmalloc.Alloc.t -> t
val allocator : t -> Pmalloc.Alloc.t
val upsert : t -> int64 -> int64 -> unit
val search : t -> int64 -> int64 option
val delete : t -> int64 -> unit
val scan : t -> start:int64 -> int -> (int64 * int64) array
val flush_all : t -> unit
val dram_bytes : t -> int
val pm_bytes : t -> int
