(** LB+-Tree (Liu et al., VLDB '20): FPTree-style hybrid tree whose
    leaves pack metadata and the first KV slots into one cacheline, so
    the common insert commits with a single flush+fence (lowest
    CLI-amplification of the tree baselines; XBI unchanged — the flush
    still hits a random XPLine, which is the paper's point). *)

type t

val name : string
val create : Pmem.Device.t -> t
val upsert : t -> int64 -> int64 -> unit
val search : t -> int64 -> int64 option
val delete : t -> int64 -> unit
val scan : t -> start:int64 -> int -> (int64 * int64) array
val flush_all : t -> unit
val dram_bytes : t -> int
val pm_bytes : t -> int
val allocator : t -> Pmalloc.Alloc.t
