(** Monotonic logical timestamp source (stands in for rdtsc+ORDO, §3.3). *)

type t

val create : ?start:int64 -> unit -> t
val next : t -> int64
(** Strictly increasing; never returns 0 (reserved for "never written"). *)

val peek : t -> int64
(** The next value [next] would return, without consuming it. *)

val advance_to : t -> int64 -> unit
(** Ensure future timestamps exceed [ts]; used after log replay. *)
