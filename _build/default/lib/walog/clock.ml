(** Monotonic logical timestamp source.

    Stands in for the paper's [rdtsc]+ORDO hardware clock (§3.3): ORDO only
    compensates cross-socket skew of the physical TSC, which a single
    logical counter does not exhibit, so ordering guarantees are
    preserved.  Timestamp 0 is reserved as "never written". *)

type t = { mutable now : int64 }

let create ?(start = 1L) () = { now = start }

let next t =
  let v = t.now in
  t.now <- Int64.add t.now 1L;
  v

let peek t = t.now

let advance_to t ts =
  if Int64.unsigned_compare ts t.now >= 0 then t.now <- Int64.add ts 1L
