lib/walog/clock.mli:
