lib/walog/wal.ml: Array Clock Int64 List Pmalloc Pmem Queue
