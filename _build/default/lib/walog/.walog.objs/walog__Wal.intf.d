lib/walog/wal.mli: Clock Pmalloc
