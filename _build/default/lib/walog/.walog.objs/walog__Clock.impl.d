lib/walog/clock.ml: Int64
