lib/hash/hash_table.ml: Array Ccl_btree Fmt Hashtbl Int64 List Pmalloc Pmem Walog
