lib/hash/hash_table.mli: Ccl_btree Pmem
