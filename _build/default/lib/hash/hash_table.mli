(** CCL-Hash: the paper's generality claim (§6) as a working system.

    "In the persistent hash tables (e.g., CCEH, CLevel), we can introduce
    a buffer node for one or multiple buckets to batch the updates to
    them, and use the write-conservative logging and locality-aware GC to
    ensure crash consistency with reduced write amplification."

    This module does exactly that: 256 B persistent buckets (one XPLine
    each, fingerprints + bitmap + overflow chain) fronted by volatile
    buffer nodes of N_batch slots; inserts append to the per-thread WAL
    and buffer in DRAM; a full buffer flushes N_batch+1 entries in one
    XPLine write, and the trigger write skips the log; GC copies
    surviving entries B-log → I-log without ever flushing to a random
    bucket.  Routing is a pure hash of the key, so recovery has no fence
    ambiguity: replay applies a log entry iff it is newer than its
    bucket's flush timestamp or its key is absent from the bucket chain.

    Value [0L] is the tombstone, as in the tree. *)

type t

val create :
  ?cfg:Ccl_btree.Config.t -> buckets:int -> Pmem.Device.t -> t
(** Format the device with a power-of-two directory of [buckets]. *)

val recover : ?cfg:Ccl_btree.Config.t -> Pmem.Device.t -> t

val upsert : t -> int64 -> int64 -> unit
val search : t -> int64 -> int64 option
val delete : t -> int64 -> unit
val iter : t -> (int64 -> int64 -> unit) -> unit
(** Visit every live entry (no key order: it is a hash table). *)

val count_entries : t -> int
val flush_all : t -> unit
val gc_active : t -> bool
val stats : t -> Ccl_btree.Tree_stats.t
val device : t -> Pmem.Device.t
val dram_bytes : t -> int
val pm_bytes : t -> int

val check_invariants : t -> unit
(** Fingerprint consistency and hash-placement of every valid slot. *)
