(* Tests for CCL-Hash (the §6 generality extension): functional
   correctness against a model, buffering/logging behaviour, overflow
   chains, GC, and crash recovery. *)

module D = Pmem.Device
module H = Ccl_hash.Hash_table
module Config = Ccl_btree.Config
module Ts = Ccl_btree.Tree_stats

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let cfg ?(nbatch = 2) ?(th_log = 0.20) ?(buffering = true) () =
  { Config.default with Config.nbatch; th_log; buffering; chunk_size = 4096 }

let table ?cfg:(c = cfg ()) ?(buckets = 64) ?(persist_prob = 0.5) ?(seed = 5)
    () =
  let dev =
    D.create
      ~config:
        {
          (Pmem.Config.default ~size:(8 * 1024 * 1024) ()) with
          persist_prob;
          crash_seed = seed;
        }
      ()
  in
  (dev, H.create ~cfg:c ~buckets dev)

let k = Int64.of_int
let v i = Int64.of_int (i + 1_000_000)

let test_basic_ops () =
  let _, h = table () in
  H.upsert h 1L 10L;
  H.upsert h 2L 20L;
  Alcotest.(check (option int64)) "hit" (Some 10L) (H.search h 1L);
  Alcotest.(check (option int64)) "miss" None (H.search h 3L);
  H.upsert h 1L 11L;
  Alcotest.(check (option int64)) "update" (Some 11L) (H.search h 1L);
  H.delete h 1L;
  Alcotest.(check (option int64)) "deleted" None (H.search h 1L);
  check_int "one entry" 1 (H.count_entries h);
  H.check_invariants h

let test_zero_value_rejected () =
  let _, h = table () in
  Alcotest.check_raises "tombstone"
    (Invalid_argument "Hash_table.upsert: value 0 is reserved (tombstone)")
    (fun () -> H.upsert h 1L 0L)

let test_many_keys_overflow_chains () =
  (* 16 buckets x 14 slots = 224 direct slots; 2000 keys force chains *)
  let _, h = table ~buckets:16 () in
  for i = 1 to 2000 do
    H.upsert h (k i) (v i)
  done;
  check_int "all present" 2000 (H.count_entries h);
  for i = 1 to 2000 do
    if H.search h (k i) <> Some (v i) then Alcotest.failf "lost %d" i
  done;
  H.check_invariants h

let test_buffering_batches_writes () =
  let _, h = table ~cfg:(cfg ~th_log:1e9 ()) ~buckets:1 () in
  H.upsert h 1L 1L;
  H.upsert h 2L 2L;
  check_int "buffered, no flush yet" 0 (H.stats h).Ts.batch_flushes;
  H.upsert h 3L 3L;
  check_int "trigger flush" 1 (H.stats h).Ts.batch_flushes;
  check_int "trigger skipped the log" 1 (H.stats h).Ts.log_skips

let test_write_through_mode () =
  let _, h = table ~cfg:(cfg ~buffering:false ()) () in
  for i = 1 to 20 do
    H.upsert h (k i) (v i)
  done;
  check_int "flush per op" 20 (H.stats h).Ts.batch_flushes;
  check_int "no logging" 0 (H.stats h).Ts.log_appends

let test_xbi_vs_write_through () =
  let media c =
    let dev, h = table ~cfg:c ~buckets:512 () in
    let rng = Random.State.make [| 7 |] in
    for i = 1 to 10_000 do
      H.upsert h (k (1 + Random.State.int rng 50_000)) (v i)
    done;
    H.flush_all h;
    D.drain dev;
    (D.snapshot dev).Pmem.Stats.media_write_lines
  in
  let ccl = media (cfg ()) in
  let naive = media (cfg ~buffering:false ()) in
  check_bool
    (Printf.sprintf "buffered hash (%d) < write-through (%d)" ccl naive)
    true
    (float_of_int ccl < 0.75 *. float_of_int naive)

let test_gc_runs_and_content_intact () =
  let _, h = table ~cfg:(cfg ~th_log:0.05 ()) ~buckets:64 () in
  for i = 1 to 5000 do
    H.upsert h (k (1 + (i mod 1500))) (v i)
  done;
  check_bool "gc ran" true ((H.stats h).Ts.gc_runs > 0);
  check_bool "not stuck in gc forever" true (H.count_entries h = 1500);
  H.check_invariants h

let test_iter_sees_latest () =
  let _, h = table () in
  H.upsert h 1L 10L;
  H.upsert h 2L 20L;
  H.flush_all h;
  H.upsert h 1L 11L (* buffered update shadows the flushed version *);
  let acc = ref [] in
  H.iter h (fun key value -> acc := (key, value) :: !acc);
  Alcotest.(check (list (pair int64 int64)))
    "latest versions"
    [ (1L, 11L); (2L, 20L) ]
    (List.sort compare !acc)

let test_recovery_clean () =
  let dev, h = table ~persist_prob:0.0 () in
  for i = 1 to 500 do
    H.upsert h (k i) (v i)
  done;
  H.flush_all h;
  D.crash dev;
  let h2 = H.recover dev in
  check_int "entries" 500 (H.count_entries h2);
  H.check_invariants h2

let test_recovery_buffered_and_deleted () =
  let dev, h = table ~persist_prob:0.0 () in
  for i = 1 to 100 do
    H.upsert h (k i) (v i)
  done;
  H.delete h 50L;
  H.upsert h 1L 999L;
  (* both only in the WAL *)
  D.crash dev;
  let h2 = H.recover dev in
  Alcotest.(check (option int64)) "update replayed" (Some 999L)
    (H.search h2 1L);
  Alcotest.(check (option int64)) "delete replayed" None (H.search h2 50L);
  check_int "entries" 99 (H.count_entries h2)

let test_recovered_usable () =
  let dev, h = table ~persist_prob:0.0 () in
  for i = 1 to 200 do
    H.upsert h (k i) (v i)
  done;
  D.crash dev;
  let h2 = H.recover dev in
  H.upsert h2 1000L 1L;
  H.delete h2 10L;
  Alcotest.(check (option int64)) "insert works" (Some 1L)
    (H.search h2 1000L);
  Alcotest.(check (option int64)) "delete works" None (H.search h2 10L)

let prop_model_equivalence =
  QCheck.Test.make ~count:40 ~name:"hash ≡ reference map"
    QCheck.(list (tup3 (int_bound 2) (int_bound 300) (int_bound 1000)))
    (fun ops ->
      let _, h = table ~buckets:16 ~cfg:(cfg ~th_log:0.1 ()) () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (kind, key, value) ->
          if kind = 2 then begin
            H.delete h (k key);
            Hashtbl.remove model key
          end
          else begin
            H.upsert h (k key) (Int64.of_int (value + 1));
            Hashtbl.replace model key (value + 1)
          end)
        ops;
      H.check_invariants h;
      Hashtbl.fold
        (fun key value ok ->
          ok && H.search h (k key) = Some (Int64.of_int value))
        model true
      && H.count_entries h = Hashtbl.length model)

let prop_crash_recovery =
  QCheck.Test.make ~count:25 ~name:"hash crash/recover durability"
    QCheck.(
      pair small_int (list (tup3 (int_bound 2) (int_bound 300) (int_bound 1000))))
    (fun (seed, ops) ->
      let dev, h = table ~buckets:16 ~persist_prob:0.4 ~seed () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (kind, key, value) ->
          if kind = 2 then begin
            H.delete h (k key);
            Hashtbl.remove model key
          end
          else begin
            H.upsert h (k key) (Int64.of_int (value + 1));
            Hashtbl.replace model key (value + 1)
          end)
        ops;
      D.crash dev;
      let h2 = H.recover dev in
      H.check_invariants h2;
      Hashtbl.fold
        (fun key value ok ->
          ok && H.search h2 (k key) = Some (Int64.of_int value))
        model true
      && List.for_all
           (fun key -> Hashtbl.mem model key || H.search h2 (k key) = None)
           (List.init 301 Fun.id))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "ccl_hash"
    [
      ( "basic",
        [
          Alcotest.test_case "ops" `Quick test_basic_ops;
          Alcotest.test_case "zero value rejected" `Quick
            test_zero_value_rejected;
          Alcotest.test_case "overflow chains" `Quick
            test_many_keys_overflow_chains;
          Alcotest.test_case "iter sees latest" `Quick test_iter_sees_latest;
        ] );
      ( "buffering",
        [
          Alcotest.test_case "batches writes" `Quick
            test_buffering_batches_writes;
          Alcotest.test_case "write-through mode" `Quick
            test_write_through_mode;
          Alcotest.test_case "xbi vs write-through" `Quick
            test_xbi_vs_write_through;
          Alcotest.test_case "gc runs" `Quick test_gc_runs_and_content_intact;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "clean" `Quick test_recovery_clean;
          Alcotest.test_case "buffered and deleted" `Quick
            test_recovery_buffered_and_deleted;
          Alcotest.test_case "recovered usable" `Quick test_recovered_usable;
        ] );
      ("properties", [ qt prop_model_equivalence; qt prop_crash_recovery ]);
    ]
