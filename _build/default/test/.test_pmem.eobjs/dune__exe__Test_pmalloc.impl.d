test/test_pmalloc.ml: Alcotest List Pmalloc Pmem
