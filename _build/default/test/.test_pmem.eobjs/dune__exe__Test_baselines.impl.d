test/test_baselines.ml: Alcotest Array Baselines Fun Hashtbl Int64 List Pmem Printf QCheck QCheck_alcotest Random
