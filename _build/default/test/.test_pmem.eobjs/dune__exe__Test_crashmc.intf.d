test/test_crashmc.mli:
