test/test_pmem.ml: Alcotest Bytes Char Digest Filename Fun Hashtbl In_channel Int64 List Out_channel Pmem QCheck QCheck_alcotest Random String Sys
