test/test_pmem.ml: Alcotest Bytes Filename Fun Hashtbl Int64 List Pmem QCheck QCheck_alcotest Sys
