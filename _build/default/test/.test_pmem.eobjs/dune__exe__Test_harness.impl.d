test/test_harness.ml: Alcotest Array Baselines Buffer Float Format Harness List String Workload
