test/test_units.ml: Alcotest Ccl_btree Int64 List Pmalloc Pmem QCheck QCheck_alcotest String
