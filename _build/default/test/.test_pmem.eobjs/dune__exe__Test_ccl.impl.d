test/test_ccl.ml: Alcotest Array Ccl_btree Char Fun Hashtbl Int64 List Option Pmalloc Pmem Printf QCheck QCheck_alcotest Random String
