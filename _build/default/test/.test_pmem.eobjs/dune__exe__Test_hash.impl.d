test/test_hash.ml: Alcotest Ccl_btree Ccl_hash Fun Hashtbl Int64 List Pmem Printf QCheck QCheck_alcotest Random
