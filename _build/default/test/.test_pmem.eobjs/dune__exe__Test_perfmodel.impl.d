test/test_perfmodel.ml: Alcotest Array Float List Perfmodel Printf
