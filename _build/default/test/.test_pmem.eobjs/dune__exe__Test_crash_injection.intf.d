test/test_crash_injection.mli:
