test/test_walog.mli:
