test/test_workload.ml: Alcotest Array Hashtbl Int64 List Option Printf Workload
