test/test_crash_injection.ml: Alcotest Ccl_btree Ccl_hash Hashtbl Int64 List Pmalloc Pmem Printf QCheck QCheck_alcotest Random String
