test/test_walog.ml: Alcotest Int64 List Pmalloc Pmem Printf QCheck QCheck_alcotest Walog
