test/test_crashmc.ml: Alcotest Ccl_btree Crashmc Fmt Int64 List
