(* Tests for the workload generators: distribution statistics (Zipfian
   skew), YCSB mix ratios, SOSD dataset character. *)

module K = Workload.Keygen
module Y = Workload.Ycsb
module S = Workload.Sosd

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- keygens ------------------------------------------------------------ *)

let test_uniform_range_and_spread () =
  let g = K.uniform ~seed:1 ~space:1000 in
  let seen = Hashtbl.create 256 in
  for _ = 1 to 10_000 do
    let k = Int64.to_int (K.next g) in
    check_bool "in range" true (k >= 1 && k <= 1000);
    Hashtbl.replace seen k ()
  done;
  check_bool "covers most of the space" true (Hashtbl.length seen > 900)

let test_uniform_deterministic () =
  let draw () =
    let g = K.uniform ~seed:9 ~space:1000 in
    List.init 20 (fun _ -> K.next g)
  in
  Alcotest.(check (list int64)) "same seed same stream" (draw ()) (draw ())

let test_sequential_wraps () =
  let g = K.sequential ~space:3 in
  let xs = List.init 7 (fun _ -> Int64.to_int (K.next g)) in
  Alcotest.(check (list int)) "wraps" [ 1; 2; 3; 1; 2; 3; 1 ] xs

let zipf_top_share theta =
  let space = 10_000 in
  let g = K.zipfian ~seed:2 ~space ~theta in
  let counts = Hashtbl.create 1024 in
  let n = 50_000 in
  for _ = 1 to n do
    let k = K.next g in
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  let sorted =
    List.sort (fun a b -> compare b a)
      (Hashtbl.fold (fun _ c acc -> c :: acc) counts [])
  in
  let top100 = List.fold_left ( + ) 0 (List.filteri (fun i _ -> i < 100) sorted) in
  float_of_int top100 /. float_of_int n

let test_zipfian_skew_monotone () =
  let s05 = zipf_top_share 0.5 in
  let s09 = zipf_top_share 0.9 in
  let s099 = zipf_top_share 0.99 in
  check_bool
    (Printf.sprintf "skew grows with theta (%.3f < %.3f < %.3f)" s05 s09 s099)
    true
    (s05 < s09 && s09 < s099);
  check_bool "theta=0.99 is heavily skewed" true (s099 > 0.3);
  check_bool "theta=0.5 is mildly skewed" true (s05 < 0.2)

let test_zipfian_range () =
  let g = K.zipfian ~seed:3 ~space:500 ~theta:0.9 in
  for _ = 1 to 5000 do
    let k = Int64.to_int (K.next g) in
    if k < 1 || k > 500 then Alcotest.failf "zipfian out of range: %d" k
  done

let test_shuffled_range_is_permutation () =
  let a = K.shuffled_range ~seed:4 100 in
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int64))
    "permutation of 1..100"
    (Array.init 100 (fun i -> Int64.of_int (i + 1)))
    sorted;
  check_bool "actually shuffled" true (a <> sorted)

(* --- YCSB ---------------------------------------------------------------- *)

let mix_counts mix =
  let ops = Y.generate mix ~seed:5 ~space:1000 ~scan_len:100 10_000 in
  let ins = ref 0 and rd = ref 0 and sc = ref 0 in
  Array.iter
    (function
      | Y.Insert _ -> incr ins
      | Y.Read _ -> incr rd
      | Y.Scan _ -> incr sc)
    ops;
  (!ins, !rd, !sc)

let near ~pct got = abs (got - (pct * 100)) < 200

let test_ycsb_ratios () =
  let ins, rd, sc = mix_counts Y.Insert_intensive in
  check_bool "75% inserts" true (near ~pct:75 ins);
  check_bool "25% reads" true (near ~pct:25 rd);
  check_int "no scans" 0 sc;
  let ins, rd, sc = mix_counts Y.Scan_insert in
  check_bool "95% scans" true (near ~pct:95 sc);
  check_bool "5% inserts" true (near ~pct:5 ins);
  check_int "no reads" 0 rd;
  let ins, rd, _ = mix_counts Y.Read_only in
  check_int "read-only has no inserts" 0 ins;
  check_int "read-only all reads" 10_000 rd

let test_ycsb_insert_only () =
  let ins, rd, sc = mix_counts Y.Insert_only in
  check_int "all inserts" 10_000 ins;
  check_int "no reads" 0 rd;
  check_int "no scans" 0 sc

(* --- SOSD ----------------------------------------------------------------- *)

let uniq keys =
  let t = Hashtbl.create (Array.length keys) in
  Array.iter (fun k -> Hashtbl.replace t k ()) keys;
  Hashtbl.length t

let test_sosd_unique_positive () =
  List.iter
    (fun (name, gen) ->
      let keys = gen ~seed:6 5000 in
      if uniq keys <> 5000 then Alcotest.failf "%s has duplicate keys" name;
      Array.iter
        (fun k ->
          if Int64.compare k 1L < 0 then
            Alcotest.failf "%s has non-positive key" name)
        keys)
    S.all

(* locality character: mean gap between consecutive sorted keys *)
let sortedness keys =
  let s = Array.copy keys in
  Array.sort compare s;
  (* how often consecutive inserts are also close in key space *)
  let close = ref 0 in
  for i = 1 to Array.length keys - 1 do
    let d = Int64.abs (Int64.sub keys.(i) keys.(i - 1)) in
    if Int64.compare d 1_000_000L < 0 then incr close
  done;
  float_of_int !close /. float_of_int (Array.length keys - 1)

let test_sosd_characters () =
  let wiki = S.wiki ~seed:7 5000 in
  let fb = S.facebook ~seed:7 5000 in
  let amzn = S.amzn ~seed:7 5000 in
  check_bool "wiki is near-monotonic" true (sortedness wiki > 0.9);
  check_bool "facebook is scattered" true (sortedness fb < 0.05);
  check_bool "amzn is clustered but not sorted" true
    (sortedness amzn > sortedness fb)

let test_sosd_deterministic () =
  Alcotest.(check (array int64))
    "same seed, same dataset"
    (S.osm ~seed:8 1000)
    (S.osm ~seed:8 1000)

let () =
  Alcotest.run "workload"
    [
      ( "keygen",
        [
          Alcotest.test_case "uniform range/spread" `Quick
            test_uniform_range_and_spread;
          Alcotest.test_case "uniform deterministic" `Quick
            test_uniform_deterministic;
          Alcotest.test_case "sequential wraps" `Quick test_sequential_wraps;
          Alcotest.test_case "zipfian skew monotone" `Quick
            test_zipfian_skew_monotone;
          Alcotest.test_case "zipfian range" `Quick test_zipfian_range;
          Alcotest.test_case "shuffled range" `Quick
            test_shuffled_range_is_permutation;
        ] );
      ( "ycsb",
        [
          Alcotest.test_case "mix ratios" `Quick test_ycsb_ratios;
          Alcotest.test_case "insert only" `Quick test_ycsb_insert_only;
        ] );
      ( "sosd",
        [
          Alcotest.test_case "unique positive keys" `Quick
            test_sosd_unique_positive;
          Alcotest.test_case "dataset characters" `Quick test_sosd_characters;
          Alcotest.test_case "deterministic" `Quick test_sosd_deterministic;
        ] );
    ]
