(* Tests for the seven baseline indexes: each must agree with a reference
   map on arbitrary op sequences, return sorted scans, and exhibit its
   characteristic PM traffic pattern. *)

module D = Pmem.Device
module S = Pmem.Stats
module I = Baselines.Index_intf

let device ?(size = 16 * 1024 * 1024) () =
  D.create ~config:(Pmem.Config.default ~size ()) ()

let drivers () :
    (string * (Pmem.Device.t -> I.driver)) list =
  [
    ( "fastfair",
      fun dev -> I.driver (module Baselines.Fastfair) (Baselines.Fastfair.create dev) );
    ( "fptree",
      fun dev -> I.driver (module Baselines.Fptree) (Baselines.Fptree.create dev) );
    ( "lbtree",
      fun dev -> I.driver (module Baselines.Lbtree) (Baselines.Lbtree.create dev) );
    ( "utree",
      fun dev -> I.driver (module Baselines.Utree) (Baselines.Utree.create dev) );
    ( "dptree",
      fun dev -> I.driver (module Baselines.Dptree) (Baselines.Dptree.create dev) );
    ( "flatstore",
      fun dev ->
        I.driver (module Baselines.Flatstore) (Baselines.Flatstore.create dev) );
    ("lsm", fun dev -> I.driver (module Baselines.Lsm) (Baselines.Lsm.create dev));
    ( "pactree",
      fun dev -> I.driver (module Baselines.Pactree) (Baselines.Pactree.create dev) );
    ( "ccl",
      fun dev ->
        I.driver (module Baselines.Ccl_index) (Baselines.Ccl_index.create dev) );
  ]

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let k = Int64.of_int
let v i = Int64.of_int (i + 1_000_000)

(* every index passes the same functional battery *)
let functional_battery make () =
  let d = make (device ()) in
  (* inserts and lookups *)
  for i = 1 to 500 do
    d.I.upsert (k i) (v i)
  done;
  for i = 1 to 500 do
    if d.I.search (k i) <> Some (v i) then Alcotest.failf "lost key %d" i
  done;
  Alcotest.(check (option int64)) "miss" None (d.I.search 100000L);
  (* updates *)
  d.I.upsert 7L 777L;
  Alcotest.(check (option int64)) "update" (Some 777L) (d.I.search 7L);
  (* deletes *)
  d.I.delete 7L;
  Alcotest.(check (option int64)) "delete" None (d.I.search 7L);
  (* scan: ordered, correct slice *)
  let r = d.I.scan ~start:100L 20 in
  check_int "scan length" 20 (Array.length r);
  Alcotest.(check int64) "scan start" 100L (fst r.(0));
  for i = 1 to Array.length r - 1 do
    if Int64.compare (fst r.(i - 1)) (fst r.(i)) >= 0 then
      Alcotest.fail "scan not sorted"
  done;
  (* flush_all then everything still reachable *)
  d.I.flush_all ();
  for i = 100 to 120 do
    if d.I.search (k i) <> Some (v i) then Alcotest.failf "lost %d post-flush" i
  done

let model_property (name, make) =
  QCheck.Test.make ~count:25
    ~name:(name ^ " ≡ reference map")
    QCheck.(
      list
        (tup3 (int_bound 2) (int_bound 300) (int_bound 1000)))
    (fun ops ->
      let d = make (device ()) in
      let model = Hashtbl.create 64 in
      let ok = ref true in
      List.iter
        (fun (kind, key, value) ->
          match kind with
          | 0 | 1 ->
            d.I.upsert (k key) (Int64.of_int (value + 1));
            Hashtbl.replace model key (value + 1)
          | _ ->
            d.I.delete (k key);
            Hashtbl.remove model key)
        ops;
      Hashtbl.iter
        (fun key value ->
          if d.I.search (k key) <> Some (Int64.of_int value) then ok := false)
        model;
      List.iter
        (fun key ->
          if (not (Hashtbl.mem model key)) && d.I.search (k key) <> None then
            ok := false)
        (List.init 301 Fun.id);
      !ok)

(* characteristic traffic: sequential-log designs (FlatStore) write far
   fewer XPLines for random upserts than in-place trees (FAST&FAIR) *)
let test_traffic_shapes () =
  let media make =
    let dev = device () in
    let d = make dev in
    for i = 1 to 10_000 do
      d.I.upsert (k i) 1L
    done;
    d.I.flush_all ();
    D.drain dev;
    let before = (D.snapshot dev).S.media_write_lines in
    let st = Random.State.make [| 11 |] in
    for _ = 1 to 2000 do
      d.I.upsert (k (1 + Random.State.int st 10_000)) 2L
    done;
    d.I.flush_all ();
    D.drain dev;
    (D.snapshot dev).S.media_write_lines - before
  in
  let ff =
    media (fun dev -> I.driver (module Baselines.Fastfair) (Baselines.Fastfair.create dev))
  in
  let fs =
    media (fun dev ->
        I.driver (module Baselines.Flatstore) (Baselines.Flatstore.create dev))
  in
  let ccl =
    media (fun dev ->
        I.driver (module Baselines.Ccl_index) (Baselines.Ccl_index.create dev))
  in
  check_bool
    (Printf.sprintf "flatstore (%d) << fastfair (%d)" fs ff)
    true
    (float_of_int fs < 0.35 *. float_of_int ff);
  check_bool
    (Printf.sprintf "ccl (%d) < fastfair (%d)" ccl ff)
    true
    (float_of_int ccl < 0.75 *. float_of_int ff)

(* LSM compaction rewrites data: total media writes far exceed user bytes *)
let test_lsm_compaction_amplifies () =
  let dev = device () in
  let t = Baselines.Lsm.create dev in
  for i = 1 to 20_000 do
    Baselines.Lsm.upsert t (k i) 1L
  done;
  Baselines.Lsm.flush_all t;
  D.drain dev;
  check_bool "compactions ran" true (Baselines.Lsm.compaction_count t > 0);
  let st = D.snapshot dev in
  check_bool "write amplification high" true
    (S.xbi_amplification st > 3.0)

(* DPTree merges stall: merge count grows with inserts *)
let test_dptree_merges () =
  let dev = device () in
  let t = Baselines.Dptree.create dev in
  for i = 1 to 10_000 do
    Baselines.Dptree.upsert t (k i) 1L
  done;
  check_bool "merges happened" true (Baselines.Dptree.merge_count t >= 2);
  for i = 1 to 10_000 do
    if Baselines.Dptree.search t (k i) <> Some 1L then
      Alcotest.failf "dptree lost %d" i
  done

(* uTree: one KV per node means scans do one random PM read per entry *)
let test_utree_scan_reads () =
  let dev = device () in
  let t = Baselines.Utree.create dev in
  (* random insertion order scatters list neighbours across XPLines *)
  let keys = Array.init 2000 (fun i -> i + 1) in
  let st = Random.State.make [| 23 |] in
  for i = 1999 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = keys.(i) in
    keys.(i) <- keys.(j);
    keys.(j) <- tmp
  done;
  Array.iter (fun i -> Baselines.Utree.upsert t (k i) 1L) keys;
  D.drain dev;
  let before = (D.snapshot dev).S.media_read_lines in
  ignore (Baselines.Utree.scan t ~start:1L 500);
  let reads = (D.snapshot dev).S.media_read_lines - before in
  check_bool
    (Printf.sprintf "scan causes many media reads (%d)" reads)
    true (reads > 200)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  let functional =
    List.map
      (fun (name, make) ->
        Alcotest.test_case name `Quick (functional_battery make))
      (drivers ())
  in
  let properties = List.map (fun d -> qt (model_property d)) (drivers ()) in
  Alcotest.run "baselines"
    [
      ("functional", functional);
      ("model-equivalence", properties);
      ( "traffic",
        [
          Alcotest.test_case "traffic shapes" `Quick test_traffic_shapes;
          Alcotest.test_case "lsm compaction amplifies" `Quick
            test_lsm_compaction_amplifies;
          Alcotest.test_case "dptree merges" `Quick test_dptree_merges;
          Alcotest.test_case "utree scan reads" `Quick test_utree_scan_reads;
        ] );
    ]
