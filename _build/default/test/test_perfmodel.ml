(* Tests for the performance model: monotonicity, saturation knees, NUMA
   effects, and latency percentile synthesis. *)

module TM = Perfmodel.Thread_model
module L = Perfmodel.Latency
module C = Perfmodel.Constants

let check_bool = Alcotest.(check bool)

let profile ?(t_cpu_ns = 500.0) ?(write_bytes = 200.0) ?(read_bytes = 0.0)
    ?(numa_aware = false) () =
  { TM.t_cpu_ns; write_bytes; read_bytes; numa_aware }

let test_throughput_monotone_in_threads () =
  let p = profile () in
  let prev = ref 0.0 in
  List.iter
    (fun threads ->
      let t = TM.throughput ~threads p in
      check_bool
        (Printf.sprintf "non-decreasing at %d threads" threads)
        true
        (t >= !prev -. 1e-6);
      prev := t)
    [ 1; 8; 16; 24; 48 ]

let test_compute_bound_scales_linearly () =
  (* no media traffic: pure compute scaling *)
  let p = profile ~write_bytes:0.0 () in
  let t1 = TM.throughput ~threads:1 p in
  let t8 = TM.throughput ~threads:8 p in
  check_bool "8 threads ~ 8x" true (t8 /. t1 > 7.5 && t8 /. t1 < 8.5)

let test_bandwidth_saturation () =
  (* heavy media traffic: throughput plateaus at the bandwidth cap *)
  let p = profile ~write_bytes:1000.0 () in
  let t24 = TM.mops ~threads:24 p in
  let t48 = TM.mops ~threads:48 p in
  let cap = C.default_machine.C.pm_write_bw /. 1000.0 /. 1e6 in
  check_bool "saturated by 24 threads" true ((t48 -. t24) /. t24 < 0.1);
  check_bool "plateau near the cap" true (t48 < cap *. 1.05)

let test_lower_write_bytes_higher_saturated_throughput () =
  (* the paper's core claim: at saturation, throughput ~ 1/XBI *)
  let lo = TM.mops ~threads:96 (profile ~write_bytes:160.0 ~numa_aware:true ())
  and hi = TM.mops ~threads:96 (profile ~write_bytes:640.0 ~numa_aware:true ()) in
  check_bool "4x fewer media bytes -> ~4x throughput" true
    (lo /. hi > 3.2 && lo /. hi < 4.8)

let test_numa_awareness_pays_beyond_one_socket () =
  let aware = profile ~numa_aware:true () in
  let oblivious = profile ~numa_aware:false () in
  let at threads p = TM.throughput ~threads p in
  (* identical within one socket *)
  check_bool "same at 24 threads" true
    (Float.abs (at 24 aware -. at 24 oblivious) /. at 24 aware < 0.01);
  (* aware index gains more from the second socket *)
  check_bool "aware wins at 96 threads" true (at 96 aware > 1.3 *. at 96 oblivious)

let test_read_bound_workload () =
  let p = profile ~write_bytes:0.0 ~read_bytes:512.0 () in
  let t = TM.mops ~threads:96 p in
  let cap =
    2.0 *. C.default_machine.C.pm_read_bw
    *. C.default_machine.C.numa_bw_efficiency /. 512.0 /. 1e6
  in
  check_bool "read cap binds" true (t < cap *. 1.05)

let test_utilization_bounds () =
  let p = profile ~write_bytes:1000.0 () in
  let u = TM.utilization ~threads:96 p in
  check_bool "utilization in (0, 0.97]" true (u > 0.5 && u <= 0.97);
  let idle = TM.utilization ~threads:1 (profile ~write_bytes:0.0 ()) in
  check_bool "no media traffic -> zero utilization" true (idle = 0.0)

(* --- latency percentiles -------------------------------------------------- *)

let test_percentiles_sorted_and_monotone () =
  let samples = Array.init 1000 (fun i -> float_of_int (i + 1)) in
  let ps = L.percentiles ~utilization:0.8 ~service_rate:1e7 samples in
  Alcotest.(check int) "8 points" 8 (List.length ps);
  let rec mono = function
    | a :: b :: rest -> a <= b && mono (b :: rest)
    | _ -> true
  in
  check_bool "non-decreasing" true (mono ps)

let test_low_percentiles_see_raw_service () =
  let samples = Array.make 100 100.0 in
  let ps = L.percentiles ~utilization:0.5 ~service_rate:1e7 samples in
  (* min (p=0) waits with probability 0 under rho=0.5 *)
  Alcotest.(check (float 0.01)) "min is raw" 100.0 (List.hd ps)

let test_tail_inflates_with_utilization () =
  let samples = Array.make 1000 100.0 in
  let tail u =
    List.nth (L.percentiles ~utilization:u ~service_rate:1e7 samples) 7
  in
  check_bool "tail grows with utilization" true (tail 0.9 > 2.0 *. tail 0.3)

let test_empty_samples () =
  Alcotest.(check (list (float 0.0)))
    "empty -> zeros"
    [ 0.; 0.; 0.; 0.; 0.; 0.; 0.; 0. ]
    (L.percentiles [||])

let () =
  Alcotest.run "perfmodel"
    [
      ( "thread-model",
        [
          Alcotest.test_case "monotone in threads" `Quick
            test_throughput_monotone_in_threads;
          Alcotest.test_case "compute-bound linear" `Quick
            test_compute_bound_scales_linearly;
          Alcotest.test_case "bandwidth saturation" `Quick
            test_bandwidth_saturation;
          Alcotest.test_case "throughput ~ 1/XBI at saturation" `Quick
            test_lower_write_bytes_higher_saturated_throughput;
          Alcotest.test_case "NUMA awareness" `Quick
            test_numa_awareness_pays_beyond_one_socket;
          Alcotest.test_case "read-bound cap" `Quick test_read_bound_workload;
          Alcotest.test_case "utilization bounds" `Quick
            test_utilization_bounds;
        ] );
      ( "latency",
        [
          Alcotest.test_case "sorted, monotone points" `Quick
            test_percentiles_sorted_and_monotone;
          Alcotest.test_case "low percentiles raw" `Quick
            test_low_percentiles_see_raw_service;
          Alcotest.test_case "tail inflates" `Quick
            test_tail_inflates_with_utilization;
          Alcotest.test_case "empty samples" `Quick test_empty_samples;
        ] );
    ]
