(* Mid-operation crash testing: power-fail at an exact fence inside the
   persistence protocols (log append, batch flush, logless split, merge,
   GC) and verify that recovery yields a consistent tree in which

   - every operation acknowledged BEFORE the interrupted one is durable,
   - nothing deleted resurrects,
   - the interrupted operation is atomic: its key reads as either the
     previous value or the new one, never garbage,
   - all structural invariants hold.

   This sweeps the failure point across every fence the workload issues,
   so each branch of each protocol gets hit. *)

module D = Pmem.Device
module S = Pmem.Stats
module T = Ccl_btree.Tree
module H = Ccl_hash.Hash_table
module Config = Ccl_btree.Config

let check_bool = Alcotest.(check bool)

type outcome = {
  fences_total : int;  (* fences the un-failed workload issues *)
  tested_points : int;
  violations : string list;
}

(* run [ops i] for i = 1..n against a fresh tree; returns the op trace *)
let workload ~seed n =
  let rng = Random.State.make [| seed |] in
  List.init n (fun i ->
      let key = Int64.of_int (1 + Random.State.int rng 300) in
      if Random.State.int rng 8 = 0 then `Del key
      else `Ups (key, Int64.of_int (i + 1)))

let fresh_dev ~seed ~persist_prob =
  D.create
    ~config:
      {
        (Pmem.Config.default ~size:(16 * 1024 * 1024) ()) with
        persist_prob;
        crash_seed = seed;
      }
    ()

let cfg = { Config.default with Config.chunk_size = 4096; th_log = 0.15 }

(* count the fences a full run issues, to bound the sweep *)
let count_fences ~seed ops =
  let dev = fresh_dev ~seed ~persist_prob:1.0 in
  let t = T.create ~cfg dev in
  List.iter
    (function
      | `Ups (k, v) -> T.upsert t k v
      | `Del k -> T.delete t k)
    ops;
  (D.snapshot dev).S.sfence_count

let run_tree_with_failure ~seed ~persist_prob ops ~fail_at =
  let dev = fresh_dev ~seed ~persist_prob in
  let t = T.create ~cfg dev in
  let model = Hashtbl.create 128 in
  let in_flight = ref None in
  D.plan_failure dev ~after_fences:fail_at;
  let interrupted =
    try
      List.iter
        (fun op ->
          in_flight := Some op;
          (match op with
          | `Ups (k, v) -> T.upsert t k v
          | `Del k -> T.delete t k);
          (* acknowledged: record in the model *)
          (match op with
          | `Ups (k, v) -> Hashtbl.replace model (Int64.to_int k) v
          | `Del k -> Hashtbl.remove model (Int64.to_int k));
          in_flight := None)
        ops;
      false
    with D.Power_failure -> true
  in
  D.cancel_failure dev;
  D.crash dev;
  let t2 = T.recover ~cfg dev in
  let errs = ref [] in
  (try T.check_invariants t2
   with Failure m -> errs := ("invariants: " ^ m) :: !errs);
  Hashtbl.iter
    (fun key v ->
      (* the in-flight op may legitimately have overwritten this key *)
      let tolerated =
        match !in_flight with
        | Some (`Ups (k, v')) when Int64.to_int k = key ->
          T.search t2 (Int64.of_int key) = Some v'
        | Some (`Del k) when Int64.to_int k = key ->
          T.search t2 (Int64.of_int key) = None
        | _ -> false
      in
      if (not tolerated) && T.search t2 (Int64.of_int key) <> Some v then
        errs := Printf.sprintf "lost acked key %d" key :: !errs)
    model;
  (* atomicity of the interrupted op: old value, new value, or (delete)
     absent — never anything else *)
  (match !in_flight with
  | Some (`Ups (k, v')) ->
    let prev = Hashtbl.find_opt model (Int64.to_int k) in
    let got = T.search t2 k in
    if got <> Some v' && got <> prev then
      errs :=
        Printf.sprintf "in-flight upsert of %Ld not atomic" k :: !errs
  | Some (`Del k) ->
    let prev = Hashtbl.find_opt model (Int64.to_int k) in
    let got = T.search t2 k in
    if got <> None && got <> prev then
      errs := Printf.sprintf "in-flight delete of %Ld not atomic" k :: !errs
  | None -> ());
  (* no resurrection *)
  for key = 1 to 300 do
    let shadowed =
      match !in_flight with
      | Some (`Ups (k, _)) -> Int64.to_int k = key
      | _ -> false
    in
    if
      (not (Hashtbl.mem model key))
      && (not shadowed)
      && T.search t2 (Int64.of_int key) <> None
    then errs := Printf.sprintf "resurrected key %d" key :: !errs
  done;
  (interrupted, !errs)

let sweep_tree ~seed ~persist_prob ~stride =
  let ops = workload ~seed 400 in
  let total = count_fences ~seed ops in
  let tested = ref 0 in
  let violations = ref [] in
  let fail_at = ref 1 in
  while !fail_at <= total do
    let interrupted, errs =
      run_tree_with_failure ~seed ~persist_prob ops ~fail_at:!fail_at
    in
    ignore interrupted;
    incr tested;
    List.iter
      (fun e ->
        violations :=
          Printf.sprintf "[fence %d] %s" !fail_at e :: !violations)
      errs;
    fail_at := !fail_at + stride
  done;
  { fences_total = total; tested_points = !tested; violations = !violations }

let test_tree_fence_sweep () =
  let o = sweep_tree ~seed:101 ~persist_prob:0.4 ~stride:17 in
  check_bool
    (Printf.sprintf "tested %d/%d fence points: %s" o.tested_points
       o.fences_total
       (String.concat "; " o.violations))
    true (o.violations = []);
  check_bool "covered a meaningful number of points" true
    (o.tested_points > 30)

let test_tree_fence_sweep_all_dropped () =
  (* persist_prob = 0: the adversary drops every unfenced line *)
  let o = sweep_tree ~seed:202 ~persist_prob:0.0 ~stride:23 in
  check_bool
    (Printf.sprintf "violations: %s" (String.concat "; " o.violations))
    true (o.violations = [])

let test_tree_fence_sweep_all_kept () =
  (* persist_prob = 1: every store persists, ordering still arbitrary *)
  let o = sweep_tree ~seed:303 ~persist_prob:1.0 ~stride:29 in
  check_bool
    (Printf.sprintf "violations: %s" (String.concat "; " o.violations))
    true (o.violations = [])

(* the same sweep for CCL-Hash *)
let run_hash_with_failure ~seed ~persist_prob ops ~fail_at =
  let dev = fresh_dev ~seed ~persist_prob in
  let h = H.create ~cfg ~buckets:16 dev in
  let model = Hashtbl.create 128 in
  let in_flight = ref None in
  D.plan_failure dev ~after_fences:fail_at;
  (try
     List.iter
       (fun op ->
         in_flight := Some op;
         (match op with
         | `Ups (k, v) -> H.upsert h k v
         | `Del k -> H.delete h k);
         (match op with
         | `Ups (k, v) -> Hashtbl.replace model (Int64.to_int k) v
         | `Del k -> Hashtbl.remove model (Int64.to_int k));
         in_flight := None)
       ops
   with D.Power_failure -> ());
  D.cancel_failure dev;
  D.crash dev;
  let h2 = H.recover ~cfg dev in
  let errs = ref [] in
  (try H.check_invariants h2
   with Failure m -> errs := ("invariants: " ^ m) :: !errs);
  Hashtbl.iter
    (fun key v ->
      let tolerated =
        match !in_flight with
        | Some (`Ups (k, v')) when Int64.to_int k = key ->
          H.search h2 (Int64.of_int key) = Some v'
        | Some (`Del k) when Int64.to_int k = key ->
          H.search h2 (Int64.of_int key) = None
        | _ -> false
      in
      if (not tolerated) && H.search h2 (Int64.of_int key) <> Some v then
        errs := Printf.sprintf "lost acked key %d" key :: !errs)
    model;
  !errs

let test_hash_fence_sweep () =
  let ops = workload ~seed:404 300 in
  let violations = ref [] in
  let fail_at = ref 1 in
  while !fail_at <= 600 do
    List.iter
      (fun e ->
        violations := Printf.sprintf "[fence %d] %s" !fail_at e :: !violations)
      (run_hash_with_failure ~seed:404 ~persist_prob:0.4 ops ~fail_at:!fail_at);
    fail_at := !fail_at + 31
  done;
  check_bool
    (Printf.sprintf "violations: %s" (String.concat "; " !violations))
    true (!violations = [])

(* The sweep again under different tree configurations: larger buffer
   nodes change which fences carry which protocol step, and an active GC
   adds epoch-flip and reclaim fences to the schedule. *)
let sweep_tree_with_cfg ~cfg:c ~seed ~stride =
  let ops = workload ~seed 350 in
  let violations = ref [] in
  let fail_at = ref 1 in
  while !fail_at <= 900 do
    let dev = fresh_dev ~seed ~persist_prob:0.4 in
    let t = T.create ~cfg:c dev in
    let model = Hashtbl.create 128 in
    let in_flight = ref None in
    D.plan_failure dev ~after_fences:!fail_at;
    (try
       List.iter
         (fun op ->
           in_flight := Some op;
           (match op with
           | `Ups (k, v) -> T.upsert t k v
           | `Del k -> T.delete t k);
           (match op with
           | `Ups (k, v) -> Hashtbl.replace model k v
           | `Del k -> Hashtbl.remove model k);
           in_flight := None)
         ops
     with D.Power_failure -> ());
    D.cancel_failure dev;
    D.crash dev;
    let t2 = T.recover ~cfg:c dev in
    (try T.check_invariants t2
     with Failure m ->
       violations := Printf.sprintf "[fence %d] %s" !fail_at m :: !violations);
    Hashtbl.iter
      (fun k v ->
        let tolerated =
          match !in_flight with
          | Some (`Ups (k', v')) when Int64.equal k' k ->
            T.search t2 k = Some v'
          | Some (`Del k') when Int64.equal k' k -> T.search t2 k = None
          | _ -> false
        in
        if (not tolerated) && T.search t2 k <> Some v then
          violations :=
            Printf.sprintf "[fence %d] lost %Ld" !fail_at k :: !violations)
      model;
    fail_at := !fail_at + stride
  done;
  !violations

let test_fence_sweep_nbatch_variants () =
  List.iter
    (fun nbatch ->
      let c = { cfg with Config.nbatch } in
      let v = sweep_tree_with_cfg ~cfg:c ~seed:(600 + nbatch) ~stride:41 in
      check_bool
        (Printf.sprintf "nbatch=%d: %s" nbatch (String.concat "; " v))
        true (v = []))
    [ 1; 4; 6 ]

let test_fence_sweep_gc_active () =
  (* a tiny threshold keeps the locality-aware GC running constantly *)
  let c = { cfg with Config.th_log = 0.01 } in
  let v = sweep_tree_with_cfg ~cfg:c ~seed:700 ~stride:37 in
  check_bool (String.concat "; " v) true (v = [])

(* Robustness: random corruption of the log region must never make
   recovery raise, and the tree must stay structurally consistent
   (replaying a garbage-but-valid-looking entry is an upsert of a
   garbage key, which is benign). *)
let test_recovery_survives_log_corruption () =
  List.iter
    (fun seed ->
      let dev = fresh_dev ~seed ~persist_prob:1.0 in
      let t = T.create ~cfg dev in
      List.iter
        (function
          | `Ups (k, v) -> T.upsert t k v
          | `Del k -> T.delete t k)
        (workload ~seed 400);
      D.crash dev;
      (* flip bytes inside log-tagged chunks *)
      let alloc = Pmalloc.Alloc.attach dev in
      let rng = Random.State.make [| seed |] in
      Pmalloc.Alloc.iter_chunks alloc Pmalloc.Alloc.Log (fun chunk ->
          for _ = 1 to 16 do
            let off = Random.State.int rng (Pmalloc.Alloc.chunk_size alloc) in
            D.store_u8 dev (chunk + off) (Random.State.int rng 256)
          done);
      D.drain dev;
      match T.recover ~cfg dev with
      | t2 -> T.check_invariants t2
      | exception (D.Power_failure | Invalid_argument _) ->
        Alcotest.fail "recovery raised on corrupted log")
    [ 801; 802; 803; 804 ]

(* Crash during recovery: replay writes to leaves and resets timestamps;
   a power failure in the middle must leave a state from which a second
   recovery still satisfies the durability contract (idempotence). *)
let test_crash_during_recovery () =
  List.iter
    (fun fail_at ->
      let seed = 500 + fail_at in
      let dev = fresh_dev ~seed ~persist_prob:0.4 in
      let t = T.create ~cfg dev in
      let model = Hashtbl.create 128 in
      List.iter
        (fun op ->
          (match op with
          | `Ups (k, v) -> T.upsert t k v
          | `Del k -> T.delete t k);
          match op with
          | `Ups (k, v) -> Hashtbl.replace model k v
          | `Del k -> Hashtbl.remove model k)
        (workload ~seed 500);
      D.crash dev;
      (* fail inside the first recovery *)
      D.plan_failure dev ~after_fences:fail_at;
      (match T.recover ~cfg dev with
      | _ -> ()
      | exception D.Power_failure -> ());
      D.cancel_failure dev;
      D.crash dev;
      let t2 = T.recover ~cfg dev in
      T.check_invariants t2;
      Hashtbl.iter
        (fun k v ->
          if T.search t2 k <> Some v then
            Alcotest.failf "fail@%d: lost %Ld across recovery crash" fail_at k)
        model)
    [ 1; 3; 7; 15; 40; 90 ]

let prop_random_fence_failure =
  QCheck.Test.make ~count:30 ~name:"random fence failure point (tree)"
    QCheck.(pair small_int (int_range 1 500))
    (fun (seed, fail_at) ->
      let ops = workload ~seed:(seed + 1) 300 in
      let _, errs =
        run_tree_with_failure ~seed:(seed + 1) ~persist_prob:0.5 ops ~fail_at
      in
      errs = [])

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "crash-injection"
    [
      ( "tree",
        [
          Alcotest.test_case "fence sweep (p=0.4)" `Quick test_tree_fence_sweep;
          Alcotest.test_case "fence sweep (all dropped)" `Quick
            test_tree_fence_sweep_all_dropped;
          Alcotest.test_case "fence sweep (all kept)" `Quick
            test_tree_fence_sweep_all_kept;
          Alcotest.test_case "crash during recovery" `Quick
            test_crash_during_recovery;
          Alcotest.test_case "nbatch variants" `Quick
            test_fence_sweep_nbatch_variants;
          Alcotest.test_case "with GC active" `Quick test_fence_sweep_gc_active;
          Alcotest.test_case "survives log corruption" `Quick
            test_recovery_survives_log_corruption;
        ] );
      ("hash", [ Alcotest.test_case "fence sweep" `Quick test_hash_fence_sweep ]);
      ("properties", [ qt prop_random_fence_failure ]);
    ]
