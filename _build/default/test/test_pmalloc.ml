(* Tests for the chunk allocator, slab and extent sub-allocators:
   persistence of the tag table, recovery scans, and leak reclamation. *)

module D = Pmem.Device
module Alloc = Pmalloc.Alloc
module Slab = Pmalloc.Slab
module Extent = Pmalloc.Extent

let device () =
  D.create ~config:(Pmem.Config.default ~size:(1 lsl 20) ()) ()

let formatted ?(chunk_size = 4096) () =
  let dev = device () in
  (dev, Alloc.format dev ~chunk_size)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_format_attach () =
  let dev, a = formatted () in
  let total = Alloc.chunks_total a in
  check_bool "has chunks" true (total > 100);
  check_int "all free" total (Alloc.chunks_free a);
  let a2 = Alloc.attach dev in
  check_int "attach sees same space" total (Alloc.chunks_total a2);
  check_int "attach sees all free" total (Alloc.chunks_free a2)

let test_alloc_free_cycle () =
  let _, a = formatted () in
  let c1 = Alloc.alloc_chunk a Alloc.Leaf in
  let c2 = Alloc.alloc_chunk a Alloc.Log in
  check_bool "distinct" true (c1 <> c2);
  check_bool "aligned to 256" true (c1 mod 256 = 0);
  check_int "two allocated" (Alloc.chunks_total a - 2) (Alloc.chunks_free a);
  Alloc.free_chunk a c1;
  check_int "one back" (Alloc.chunks_total a - 1) (Alloc.chunks_free a)

let test_tags_survive_crash () =
  let dev, a = formatted () in
  let c1 = Alloc.alloc_chunk a Alloc.Leaf in
  let c2 = Alloc.alloc_chunk a Alloc.Log in
  D.crash dev;
  let a2 = Alloc.attach dev in
  let leaves = ref [] and logs = ref [] in
  Alloc.iter_chunks a2 Alloc.Leaf (fun c -> leaves := c :: !leaves);
  Alloc.iter_chunks a2 Alloc.Log (fun c -> logs := c :: !logs);
  Alcotest.(check (list int)) "leaf chunk recovered" [ c1 ] !leaves;
  Alcotest.(check (list int)) "log chunk recovered" [ c2 ] !logs;
  check_int "free count excludes them"
    (Alloc.chunks_total a2 - 2)
    (Alloc.chunks_free a2)

let test_chunk_base_of_addr () =
  let _, a = formatted ~chunk_size:4096 () in
  let c = Alloc.alloc_chunk a Alloc.Leaf in
  check_int "base of base" c (Alloc.chunk_base_of_addr a c);
  check_int "base of middle" c (Alloc.chunk_base_of_addr a (c + 1000));
  check_int "base of last byte" c (Alloc.chunk_base_of_addr a (c + 4095))

let test_out_of_memory () =
  let dev = D.create ~config:(Pmem.Config.default ~size:65536 ()) () in
  let a = Alloc.format dev ~chunk_size:8192 in
  let n = Alloc.chunks_free a in
  for _ = 1 to n do
    ignore (Alloc.alloc_chunk a Alloc.Extent)
  done;
  Alcotest.check_raises "exhausted" Out_of_memory (fun () ->
      ignore (Alloc.alloc_chunk a Alloc.Extent))

(* --- slab -------------------------------------------------------------- *)

let test_slab_alloc_free () =
  let _, a = formatted () in
  let s = Slab.create a Alloc.Leaf ~obj_size:256 in
  let x = Slab.alloc s in
  let y = Slab.alloc s in
  check_bool "distinct objects" true (x <> y);
  check_bool "256-aligned" true (x mod 256 = 0);
  check_int "two used" 2 (Slab.used_count s);
  check_int "bytes" 512 (Slab.used_bytes s);
  Slab.free s x;
  check_int "one used" 1 (Slab.used_count s);
  let z = Slab.alloc s in
  check_bool "slot reused" true (z = x);
  check_bool "is_used" true (Slab.is_used s z && Slab.is_used s y)

let test_slab_double_free_ignored () =
  let _, a = formatted () in
  let s = Slab.create a Alloc.Leaf ~obj_size:256 in
  let x = Slab.alloc s in
  Slab.free s x;
  Slab.free s x;
  check_int "count not negative" 0 (Slab.used_count s)

let test_slab_recovery_reclaims_orphans () =
  let dev, a = formatted ~chunk_size:4096 () in
  let s = Slab.create a Alloc.Leaf ~obj_size:256 in
  let live = Slab.alloc s in
  let orphan = Slab.alloc s in
  ignore orphan;
  D.crash dev;
  let a2 = Alloc.attach dev in
  let s2 = Slab.attach a2 Alloc.Leaf ~obj_size:256 in
  (* the owner only re-marks what it can reach *)
  Slab.mark_used s2 live;
  check_int "only reachable object used" 1 (Slab.used_count s2);
  (* the orphan slot is allocatable again *)
  let reuse = ref false in
  for _ = 1 to 4096 / 256 do
    if Slab.alloc s2 = orphan then reuse := true
  done;
  check_bool "orphan reclaimed" true !reuse

let test_slab_mark_used_idempotent () =
  let _, a = formatted () in
  let s = Slab.create a Alloc.Leaf ~obj_size:256 in
  let x = Slab.alloc s in
  Slab.mark_used s x;
  Slab.mark_used s x;
  check_int "still one" 1 (Slab.used_count s)

let test_slab_grows_chunks () =
  let _, a = formatted ~chunk_size:1024 () in
  let s = Slab.create a Alloc.Leaf ~obj_size:256 in
  let addrs = List.init 10 (fun _ -> Slab.alloc s) in
  check_int "all live" 10 (Slab.used_count s);
  check_int "distinct addresses" 10
    (List.length (List.sort_uniq compare addrs))

(* --- extent ------------------------------------------------------------ *)

let test_extent_alloc () =
  let _, a = formatted () in
  let e = Extent.create a in
  let x = Extent.alloc e 100 in
  let y = Extent.alloc e 20 in
  check_bool "16-aligned" true (x mod 16 = 0 && y mod 16 = 0);
  check_bool "no overlap" true (y >= x + 112 || y + 32 <= x);
  check_int "used accounts alignment" (112 + 32) (Extent.used_bytes e)

let test_extent_recovery_watermark () =
  let dev, a = formatted ~chunk_size:4096 () in
  let e = Extent.create a in
  let live = Extent.alloc e 64 in
  let _orphan = Extent.alloc e 64 in
  D.crash dev;
  let a2 = Alloc.attach dev in
  let e2 = Extent.attach a2 in
  Extent.mark_used e2 ~addr:live ~len:64;
  (* new allocations in the same chunk must not overlap the live extent *)
  let fresh = Extent.alloc e2 64 in
  check_bool "no overlap with live" true
    (fresh >= live + 64 || fresh + 64 <= live)

let () =
  Alcotest.run "pmalloc"
    [
      ( "alloc",
        [
          Alcotest.test_case "format/attach" `Quick test_format_attach;
          Alcotest.test_case "alloc/free cycle" `Quick test_alloc_free_cycle;
          Alcotest.test_case "tags survive crash" `Quick
            test_tags_survive_crash;
          Alcotest.test_case "chunk_base_of_addr" `Quick
            test_chunk_base_of_addr;
          Alcotest.test_case "out of memory" `Quick test_out_of_memory;
        ] );
      ( "slab",
        [
          Alcotest.test_case "alloc/free" `Quick test_slab_alloc_free;
          Alcotest.test_case "double free ignored" `Quick
            test_slab_double_free_ignored;
          Alcotest.test_case "recovery reclaims orphans" `Quick
            test_slab_recovery_reclaims_orphans;
          Alcotest.test_case "mark_used idempotent" `Quick
            test_slab_mark_used_idempotent;
          Alcotest.test_case "grows chunks" `Quick test_slab_grows_chunks;
        ] );
      ( "extent",
        [
          Alcotest.test_case "alloc" `Quick test_extent_alloc;
          Alcotest.test_case "recovery watermark" `Quick
            test_extent_recovery_watermark;
        ] );
    ]
