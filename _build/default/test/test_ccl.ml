(* Tests for the CCL-BTree core: functional correctness against a model,
   buffering/logging behaviour, split/merge, GC interleavings, recovery
   after adversarial crashes, and variable-size KVs. *)

module D = Pmem.Device
module S = Pmem.Stats
module T = Ccl_btree.Tree
module Config = Ccl_btree.Config
module Ts = Ccl_btree.Tree_stats
module L = Ccl_btree.Leaf_node

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let cfg ?(nbatch = 2) ?(threads = 1) ?(gc = Config.Locality_aware)
    ?(conservative = true) ?(buffering = true) ?(th_log = 0.20)
    ?(chunk_size = 4096) () =
  {
    Config.default with
    Config.nbatch;
    threads;
    gc_strategy = gc;
    conservative_logging = conservative;
    buffering;
    th_log;
    chunk_size;
  }

let device ?(size = 8 * 1024 * 1024) ?(persist_prob = 0.5) ?(seed = 17) () =
  D.create
    ~config:
      { (Pmem.Config.default ~size ()) with persist_prob; crash_seed = seed }
    ()

let tree ?cfg:(c = cfg ()) ?size ?persist_prob ?seed () =
  let dev = device ?size ?persist_prob ?seed () in
  (dev, T.create ~cfg:c dev)

let k i = Int64.of_int i
let v i = Int64.of_int (i + 1_000_000)

(* --- basic operations -------------------------------------------------- *)

let test_empty_tree () =
  let _, t = tree () in
  Alcotest.(check (option int64)) "miss" None (T.search t 42L);
  check_int "no entries" 0 (T.count_entries t);
  T.check_invariants t

let test_insert_search () =
  let _, t = tree () in
  T.upsert t 1L 10L;
  T.upsert t 2L 20L;
  Alcotest.(check (option int64)) "hit 1" (Some 10L) (T.search t 1L);
  Alcotest.(check (option int64)) "hit 2" (Some 20L) (T.search t 2L);
  Alcotest.(check (option int64)) "miss" None (T.search t 3L);
  T.check_invariants t

let test_update_in_buffer () =
  let _, t = tree () in
  T.upsert t 1L 10L;
  T.upsert t 1L 11L;
  Alcotest.(check (option int64)) "latest wins" (Some 11L) (T.search t 1L);
  check_int "still one entry" 1 (T.count_entries t)

let test_zero_value_rejected () =
  let _, t = tree () in
  Alcotest.check_raises "tombstone value"
    (Invalid_argument "Tree.upsert: value 0 is reserved (tombstone)")
    (fun () -> T.upsert t 1L 0L)

let test_delete () =
  let _, t = tree () in
  T.upsert t 1L 10L;
  T.upsert t 2L 20L;
  T.delete t 1L;
  Alcotest.(check (option int64)) "deleted" None (T.search t 1L);
  Alcotest.(check (option int64)) "other kept" (Some 20L) (T.search t 2L);
  check_int "one entry" 1 (T.count_entries t)

let test_delete_then_reinsert () =
  let _, t = tree () in
  T.upsert t 1L 10L;
  T.flush_all t;
  T.delete t 1L;
  T.flush_all t;
  Alcotest.(check (option int64)) "gone from leaf" None (T.search t 1L);
  T.upsert t 1L 12L;
  Alcotest.(check (option int64)) "back" (Some 12L) (T.search t 1L);
  T.check_invariants t

let test_many_inserts_and_splits () =
  let _, t = tree () in
  let n = 2000 in
  for i = 1 to n do
    T.upsert t (k i) (v i)
  done;
  check_int "all present" n (T.count_entries t);
  for i = 1 to n do
    if T.search t (k i) <> Some (v i) then
      Alcotest.failf "lost key %d" i
  done;
  check_bool "splits happened" true ((T.stats t).Ts.splits > 50);
  T.check_invariants t

let test_random_order_inserts () =
  let _, t = tree () in
  let st = Random.State.make [| 3 |] in
  let keys = Array.init 1000 (fun i -> i + 1) in
  (* shuffle *)
  for i = 999 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = keys.(i) in
    keys.(i) <- keys.(j);
    keys.(j) <- tmp
  done;
  Array.iter (fun i -> T.upsert t (k i) (v i)) keys;
  check_int "all present" 1000 (T.count_entries t);
  T.check_invariants t

let test_scan_ordered () =
  let _, t = tree () in
  for i = 1 to 500 do
    T.upsert t (k (i * 2)) (v i)
  done;
  let r = T.scan t ~start:100L 50 in
  check_int "got 50" 50 (Array.length r);
  Alcotest.(check int64) "starts at 100" 100L (fst r.(0));
  let sorted = ref true in
  for i = 1 to Array.length r - 1 do
    if Int64.compare (fst r.(i - 1)) (fst r.(i)) >= 0 then sorted := false
  done;
  check_bool "strictly ordered" true !sorted

let test_scan_sees_buffered_updates () =
  let _, t = tree () in
  for i = 1 to 100 do
    T.upsert t (k i) (v i)
  done;
  T.flush_all t;
  T.upsert t 50L 999L;
  (* update sits in the buffer *)
  T.delete t 51L;
  (* tombstone sits in the buffer *)
  let r = T.scan t ~start:49L 3 in
  Alcotest.(check (list (pair int64 int64)))
    "buffer overrides leaf"
    [ (49L, v 49); (50L, 999L); (52L, v 52) ]
    (Array.to_list r)

let test_scan_past_end () =
  let _, t = tree () in
  for i = 1 to 10 do
    T.upsert t (k i) (v i)
  done;
  check_int "truncated scan" 10 (Array.length (T.scan t ~start:0L 100));
  check_int "empty scan" 0 (Array.length (T.scan t ~start:1000L 10))

(* --- buffering & write-conservative logging ----------------------------- *)

let test_buffer_absorbs_writes () =
  let dev, t = tree () in
  (* nbatch=2: two inserts buffer, third triggers the flush *)
  T.upsert t 1L 10L;
  T.upsert t 2L 20L;
  let before = (D.snapshot dev).S.clwb_count in
  check_int "nothing flushed to leaf yet" 0 (T.stats t).Ts.batch_flushes;
  T.upsert t 3L 30L;
  check_int "trigger flushed batch" 1 (T.stats t).Ts.batch_flushes;
  check_bool "leaf write happened" true
    ((D.snapshot dev).S.clwb_count > before)

let test_conservative_logging_skips_triggers () =
  let _, t = tree ~cfg:(cfg ~th_log:1e9 ()) () in
  for i = 1 to 30 do
    T.upsert t (k i) (v i)
  done;
  let st = T.stats t in
  (* every (nbatch+1)-th insert skips the log: 30 inserts -> 10 skips *)
  check_int "log skips" 10 st.Ts.log_skips;
  check_int "log appends" 20 st.Ts.log_appends

let test_naive_logging_logs_everything () =
  let c = cfg ~conservative:false ~th_log:1e9 () in
  let _, t = tree ~cfg:c () in
  for i = 1 to 30 do
    T.upsert t (k i) (v i)
  done;
  let st = T.stats t in
  check_int "no skips" 0 st.Ts.log_skips;
  check_int "all logged" 30 st.Ts.log_appends

let test_dram_read_hits () =
  let _, t = tree () in
  T.upsert t 1L 10L;
  ignore (T.search t 1L);
  check_int "buffered read is a DRAM hit" 1 (T.stats t).Ts.dram_hits;
  T.upsert t 2L 20L;
  T.upsert t 3L 30L;
  (* flush happened; entries are retained as cache *)
  ignore (T.search t 1L);
  ignore (T.search t 2L);
  check_bool "cache retained after flush" true ((T.stats t).Ts.dram_hits >= 2)

let test_base_mode_writes_through () =
  let c = cfg ~buffering:false () in
  let _, t = tree ~cfg:c () in
  for i = 1 to 10 do
    T.upsert t (k i) (v i)
  done;
  let st = T.stats t in
  check_int "one leaf write per upsert" 10 st.Ts.batch_flushes;
  check_int "no logging in base mode" 0 st.Ts.log_appends;
  for i = 1 to 10 do
    if T.search t (k i) <> Some (v i) then Alcotest.failf "lost %d" i
  done

let test_xbi_improvement_over_base () =
  (* The headline claim scaled down: buffering + logging writes fewer
     XPLines than write-through for random upserts. *)
  let run c =
    let dev, t = tree ~cfg:c ~size:(16 * 1024 * 1024) () in
    (* warm up with a tree much larger than the XPBuffer, then measure
       random upserts (mirrors the paper's warmup-then-upsert protocol) *)
    for i = 1 to 20_000 do
      T.upsert t (k i) 5L
    done;
    T.flush_all t;
    D.drain dev;
    let before = (D.snapshot dev).S.media_write_lines in
    let st = Random.State.make [| 7 |] in
    for _ = 1 to 3000 do
      T.upsert t (k (1 + Random.State.int st 20_000)) 6L
    done;
    T.flush_all t;
    D.drain dev;
    (D.snapshot dev).S.media_write_lines - before
  in
  let base = run (cfg ~buffering:false ()) in
  let ccl = run (cfg ()) in
  check_bool
    (Printf.sprintf "ccl (%d) < base (%d) media lines" ccl base)
    true
    (float_of_int ccl < 0.8 *. float_of_int base)

(* The paper's §3.5 closed form: K updates cost about
   K * (256 + 24*N) / (256 * (N+1)) XPLine flushes — leaf batches of
   N_batch+1 entries plus sequentially coalescing 24 B log records.  The
   ideal ignores node splits, so updates of existing keys (no splits) are
   used and a modest tolerance is allowed. *)
let test_section_3_5_cost_model () =
  List.iter
    (fun nbatch ->
      let c = cfg ~nbatch ~th_log:1e9 () in
      let dev, t = tree ~cfg:c ~size:(16 * 1024 * 1024) () in
      for i = 1 to 20_000 do
        T.upsert t (k i) 5L
      done;
      T.flush_all t;
      D.drain dev;
      let before = (D.snapshot dev).S.media_write_lines in
      let ops = 10_000 in
      let st = Random.State.make [| 13 |] in
      for _ = 1 to ops do
        T.upsert t (k (1 + Random.State.int st 20_000)) 6L
      done;
      T.flush_all t;
      D.drain dev;
      let measured =
        float_of_int ((D.snapshot dev).S.media_write_lines - before)
      in
      let predicted =
        float_of_int ops
        *. (256.0 +. (24.0 *. float_of_int nbatch))
        /. (256.0 *. float_of_int (nbatch + 1))
      in
      let ratio = measured /. predicted in
      if ratio < 0.7 || ratio > 1.4 then
        Alcotest.failf
          "Nbatch=%d: measured %.0f vs predicted %.0f XPLine flushes \
           (ratio %.2f)"
          nbatch measured predicted ratio)
    [ 1; 2; 4 ]

(* --- merge -------------------------------------------------------------- *)

let test_merge_on_deletions () =
  let _, t = tree () in
  for i = 1 to 200 do
    T.upsert t (k i) (v i)
  done;
  T.flush_all t;
  let nodes_before = T.buffer_node_count t in
  for i = 1 to 180 do
    T.delete t (k i)
  done;
  T.flush_all t;
  check_bool "merges happened" true ((T.stats t).Ts.merges > 0);
  check_bool "fewer nodes" true (T.buffer_node_count t < nodes_before);
  check_int "entries correct" 20 (T.count_entries t);
  T.check_invariants t

(* --- GC ------------------------------------------------------------------ *)

let test_gc_triggers_and_reclaims () =
  let c = cfg ~th_log:0.05 ~chunk_size:1024 () in
  let _, t = tree ~cfg:c () in
  for i = 1 to 3000 do
    T.upsert t (k i) (v i)
  done;
  T.gc_finish t;
  check_bool "gc ran" true ((T.stats t).Ts.gc_runs > 0);
  check_bool "log bounded" true (T.log_live_bytes t < T.leaf_bytes t);
  T.check_invariants t

let test_gc_steps_interleaved_with_ops () =
  let c = cfg ~gc:Config.Locality_aware ~th_log:1e9 () in
  (* huge threshold: drive GC manually *)
  let _, t = tree ~cfg:c () in
  for i = 1 to 100 do
    T.upsert t (k i) (v i)
  done;
  T.gc_start t;
  check_bool "gc active" true (T.gc_active t);
  (* interleave foreground inserts with GC steps *)
  for i = 101 to 200 do
    T.upsert t (k i) (v i);
    T.gc_step t 1
  done;
  T.gc_finish t;
  check_bool "gc done" true (not (T.gc_active t));
  for i = 1 to 200 do
    if T.search t (k i) <> Some (v i) then Alcotest.failf "lost %d" i
  done;
  T.check_invariants t

let test_gc_copies_only_old_epoch () =
  let c = cfg ~th_log:1e9 () in
  let _, t = tree ~cfg:c () in
  (* two unflushed entries from before the flip (nbatch = 2: buffer full) *)
  T.upsert t 1L 10L;
  T.upsert t 2L 20L;
  T.gc_start t;
  (* an in-place update during GC carries the new epoch: not copied *)
  T.upsert t 1L 99L;
  T.gc_finish t;
  let st = T.stats t in
  check_int "only the old-epoch entry copied" 1 st.Ts.gc_copied;
  check_int "new-epoch entry skipped" 1 st.Ts.gc_skipped;
  Alcotest.(check (option int64)) "update preserved" (Some 99L)
    (T.search t 1L)

let test_gc_crash_safety () =
  (* crash mid-GC: everything acknowledged must recover *)
  let c = cfg ~th_log:1e9 ~chunk_size:1024 () in
  let dev, t = tree ~cfg:c ~persist_prob:0.0 () in
  for i = 1 to 300 do
    T.upsert t (k i) (v i)
  done;
  T.gc_start t;
  T.gc_step t 20;
  (* crash while half the buffer nodes were scanned *)
  D.crash dev;
  let t2 = T.recover ~cfg:c dev in
  T.check_invariants t2;
  let lost = ref 0 in
  for i = 1 to 300 do
    if T.search t2 (k i) <> Some (v i) then incr lost
  done;
  check_int "no acknowledged write lost" 0 !lost

let test_naive_gc_equivalent_content () =
  let c = cfg ~gc:Config.Naive ~th_log:0.05 ~chunk_size:1024 () in
  let _, t = tree ~cfg:c () in
  for i = 1 to 2000 do
    T.upsert t (k i) (v i)
  done;
  check_bool "naive gc ran" true ((T.stats t).Ts.gc_runs > 0);
  check_int "content intact" 2000 (T.count_entries t);
  T.check_invariants t

(* --- recovery ------------------------------------------------------------ *)

let test_recover_clean () =
  let dev, t = tree ~persist_prob:0.0 () in
  for i = 1 to 500 do
    T.upsert t (k i) (v i)
  done;
  T.flush_all t;
  D.crash dev;
  let t2 = T.recover dev in
  check_int "all entries" 500 (T.count_entries t2);
  T.check_invariants t2

let test_recover_with_buffered_entries () =
  (* buffered (unflushed) entries are in the WAL and must replay *)
  let dev, t = tree ~persist_prob:0.0 () in
  for i = 1 to 101 do
    T.upsert t (k i) (v i)
  done;
  (* 101 = 33*3 + 2: the last two inserts are buffered, not flushed *)
  D.crash dev;
  let t2 = T.recover dev in
  T.check_invariants t2;
  for i = 1 to 101 do
    if T.search t2 (k i) <> Some (v i) then Alcotest.failf "lost %d" i
  done

let test_recover_latest_version_wins () =
  let dev, t = tree ~persist_prob:0.0 () in
  T.upsert t 1L 10L;
  T.upsert t 2L 20L;
  T.upsert t 3L 30L;
  (* flushed: leaf has v10/v20/v30 *)
  T.upsert t 1L 11L;
  (* logged update, buffered *)
  D.crash dev;
  let t2 = T.recover dev in
  Alcotest.(check (option int64)) "log beats leaf" (Some 11L)
    (T.search t2 1L)

let test_recover_deletes () =
  let dev, t = tree ~persist_prob:0.0 () in
  for i = 1 to 50 do
    T.upsert t (k i) (v i)
  done;
  T.flush_all t;
  T.delete t 10L;
  (* tombstone only in WAL *)
  D.crash dev;
  let t2 = T.recover dev in
  Alcotest.(check (option int64)) "delete replayed" None (T.search t2 10L);
  check_int "entries" 49 (T.count_entries t2)

let test_recover_empty_tree () =
  let dev, t = tree ~persist_prob:0.0 () in
  ignore t;
  D.crash dev;
  let t2 = T.recover dev in
  check_int "empty" 0 (T.count_entries t2)

let test_recover_twice () =
  let dev, t = tree ~persist_prob:0.0 () in
  for i = 1 to 100 do
    T.upsert t (k i) (v i)
  done;
  D.crash dev;
  let t2 = T.recover dev in
  for i = 101 to 200 do
    T.upsert t2 (k i) (v i)
  done;
  D.crash dev;
  let t3 = T.recover dev in
  T.check_invariants t3;
  for i = 1 to 200 do
    if T.search t3 (k i) <> Some (v i) then Alcotest.failf "lost %d" i
  done

let test_recovered_tree_usable () =
  let dev, t = tree ~persist_prob:0.0 () in
  for i = 1 to 100 do
    T.upsert t (k i) (v i)
  done;
  D.crash dev;
  let t2 = T.recover dev in
  T.upsert t2 1000L 1L;
  T.delete t2 50L;
  let r = T.scan t2 ~start:45L 10 in
  check_int "scan works" 10 (Array.length r);
  Alcotest.(check (option int64)) "insert works" (Some 1L)
    (T.search t2 1000L);
  Alcotest.(check (option int64)) "delete works" None (T.search t2 50L)

(* The paper's durability contract under an adversarial crash: every
   acknowledged non-trigger write must survive; a trigger write may be
   lost only if it was the very last operation in flight (we crash between
   operations, so even trigger writes are acknowledged here and must
   survive: their leaf commit happened before the ack). *)
let test_durability_contract_adversarial () =
  List.iter
    (fun seed ->
      let dev, t = tree ~persist_prob:0.3 ~seed () in
      let n = 257 in
      for i = 1 to n do
        T.upsert t (k i) (v i)
      done;
      D.crash dev;
      let t2 = T.recover dev in
      T.check_invariants t2;
      for i = 1 to n do
        if T.search t2 (k i) <> Some (v i) then
          Alcotest.failf "seed %d lost acknowledged key %d" seed i
      done)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* Regression: recovered fence keys are leaf minima, which drift when the
   pre-crash minimum was deleted; a logged-but-unflushed entry between
   the old and new minimum must still be recovered even though it routes
   to a sibling leaf with a newer flush timestamp. *)
let test_fence_drift_recovery () =
  List.iter
    (fun seed ->
      let dev, t =
        tree ~cfg:(cfg ~th_log:0.2 ~chunk_size:1024 ()) ~persist_prob:0.3
          ~seed ()
      in
      let model = Hashtbl.create 512 in
      let rng = Random.State.make [| seed |] in
      (* delete-heavy churn over a small key space maximizes leaf-minimum
         deletions and remerges *)
      for i = 1 to 3000 do
        let key = 1 + Random.State.int rng 600 in
        if Random.State.int rng 4 = 0 then begin
          T.delete t (k key);
          Hashtbl.remove model key
        end
        else begin
          T.upsert t (k key) (Int64.of_int i);
          Hashtbl.replace model key i
        end
      done;
      D.crash dev;
      let t2 = T.recover dev in
      T.check_invariants t2;
      Hashtbl.iter
        (fun key value ->
          if T.search t2 (k key) <> Some (Int64.of_int value) then
            Alcotest.failf "seed %d lost key %d after fence drift" seed key)
        model;
      for key = 1 to 600 do
        if (not (Hashtbl.mem model key)) && T.search t2 (k key) <> None then
          Alcotest.failf "seed %d resurrected deleted key %d" seed key
      done)
    [ 11; 22; 33; 44; 3007 ]

(* Regression: a delete that lands as a trigger write must still be
   logged, or recovery could resurrect an older logged version of the
   key through a drifted fence. *)
let test_trigger_tombstone_logged () =
  let _, t = tree ~cfg:(cfg ~th_log:1e9 ()) () in
  (* fill one buffer node so the next operation is a trigger write *)
  T.upsert t 1L 10L;
  T.upsert t 2L 20L;
  let before = (T.stats t).Ts.log_appends in
  T.delete t 3L;
  (* the tombstone triggered the flush and must appear in the WAL *)
  check_int "tombstone logged despite trigger" (before + 1)
    (T.stats t).Ts.log_appends

(* --- variable-size KVs ---------------------------------------------------- *)

let test_str_api_small () =
  let _, t = tree () in
  T.upsert_str t "alpha" "one";
  T.upsert_str t "beta" "two";
  Alcotest.(check (option string)) "small value inline" (Some "one")
    (T.search_str t "alpha");
  T.delete_str t "alpha";
  Alcotest.(check (option string)) "deleted" None (T.search_str t "alpha");
  Alcotest.(check (option string)) "other" (Some "two")
    (T.search_str t "beta")

let test_str_api_large_values () =
  let _, t = tree () in
  let big = String.init 300 (fun i -> Char.chr (65 + (i mod 26))) in
  T.upsert_str t "key1" big;
  Alcotest.(check (option string)) "big value via extent" (Some big)
    (T.search_str t "key1");
  T.upsert_str t "key1" "short";
  Alcotest.(check (option string)) "overwrite" (Some "short")
    (T.search_str t "key1")

let test_str_api_long_keys () =
  let _, t = tree () in
  let long_key = String.make 100 'k' in
  T.upsert_str t long_key "val";
  Alcotest.(check (option string)) "long key" (Some "val")
    (T.search_str t long_key)

let test_str_recovery () =
  let dev, t = tree ~persist_prob:0.0 () in
  let big = String.make 500 'z' in
  T.upsert_str t "persistent" big;
  T.upsert_str t "second" "small";
  T.flush_all t;
  D.crash dev;
  let t2 = T.recover dev in
  Alcotest.(check (option string)) "extent survives" (Some big)
    (T.search_str t2 "persistent");
  Alcotest.(check (option string)) "inline survives" (Some "small")
    (T.search_str t2 "second")

(* --- bulk load and iteration ------------------------------------------------ *)

let test_bulk_load_roundtrip () =
  let dev, t = tree () in
  let n = 5000 in
  let entries = Array.init n (fun i -> (k (i + 1), v i)) in
  let before = (D.snapshot dev).S.media_write_lines in
  T.bulk_load t entries;
  T.flush_all t;
  D.drain dev;
  let lines = (D.snapshot dev).S.media_write_lines - before in
  check_int "all entries" n (T.count_entries t);
  T.check_invariants t;
  for i = 0 to n - 1 do
    if T.search t (k (i + 1)) <> Some (v i) then Alcotest.failf "lost %d" i
  done;
  (* one XPLine per leaf: 5000/11-per-leaf ≈ 455 leaves *)
  check_bool
    (Printf.sprintf "sequential build is cheap (%d lines)" lines)
    true
    (lines < 700)

let test_bulk_load_then_mutate () =
  let dev, t = tree ~persist_prob:0.0 () in
  T.bulk_load t (Array.init 1000 (fun i -> (k (i + 1), v i)));
  T.upsert t 5000L 1L;
  T.delete t 500L;
  T.upsert t 501L 999L;
  check_int "entries" 1000 (T.count_entries t);
  D.crash dev;
  let t2 = T.recover dev in
  T.check_invariants t2;
  Alcotest.(check (option int64)) "post-load insert" (Some 1L)
    (T.search t2 5000L);
  Alcotest.(check (option int64)) "post-load delete" None (T.search t2 500L);
  Alcotest.(check (option int64)) "post-load update" (Some 999L)
    (T.search t2 501L)

let test_bulk_load_rejects_bad_input () =
  let _, t = tree () in
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Tree.bulk_load: entries must be strictly sorted")
    (fun () -> T.bulk_load t [| (2L, 1L); (1L, 1L) |]);
  let _, t2 = tree () in
  T.upsert t2 1L 1L;
  Alcotest.check_raises "non-empty"
    (Invalid_argument "Tree.bulk_load: tree is not empty") (fun () ->
      T.bulk_load t2 [| (5L, 1L) |])

let test_iter_in_order () =
  let _, t = tree () in
  for i = 1 to 300 do
    T.upsert t (k i) (v i)
  done;
  T.delete t 100L;
  let seen = ref [] in
  T.iter t (fun key value -> seen := (key, value) :: !seen);
  let l = List.rev !seen in
  check_int "count" 299 (List.length l);
  let rec sorted = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      Int64.compare a b < 0 && sorted rest
    | _ -> true
  in
  check_bool "key order" true (sorted l)

(* --- fsck ------------------------------------------------------------------ *)

let test_fsck_healthy_tree () =
  let dev, t = tree () in
  for i = 1 to 500 do
    T.upsert t (k i) (v i)
  done;
  T.flush_all t;
  let r = Ccl_btree.Fsck.check dev in
  check_bool "healthy" true (Ccl_btree.Fsck.is_healthy r);
  check_int "entries counted" 500 r.Ccl_btree.Fsck.entries;
  check_bool "chain ordered" true r.Ccl_btree.Fsck.chain_ordered;
  check_int "no fingerprint damage" 0 r.Ccl_btree.Fsck.fingerprint_mismatches

let test_fsck_detects_corruption () =
  let dev, t = tree ~persist_prob:1.0 () in
  for i = 1 to 200 do
    T.upsert t (k i) (v i)
  done;
  T.flush_all t;
  (* corrupt one fingerprint byte behind the tree's back *)
  let r0 = Ccl_btree.Fsck.check dev in
  check_bool "initially healthy" true (Ccl_btree.Fsck.is_healthy r0);
  (* find some leaf via the allocator and damage a fingerprint *)
  let alloc = T.allocator t in
  let victim = ref 0 in
  Pmalloc.Alloc.iter_chunks alloc Pmalloc.Alloc.Leaf (fun c ->
      if !victim = 0 then begin
        let per = Pmalloc.Alloc.chunk_size alloc / 256 in
        let rec scan i =
          if i < per then begin
            let a = c + (i * 256) in
            if Ccl_btree.Leaf_node.bitmap dev a <> 0 then victim := a
            else scan (i + 1)
          end
        in
        scan 0
      end);
  check_bool "found a leaf" true (!victim <> 0);
  let slot =
    let bm = Ccl_btree.Leaf_node.bitmap dev !victim in
    let rec first i = if bm land (1 lsl i) <> 0 then i else first (i + 1) in
    first 0
  in
  D.store_u8 dev (!victim + 16 + slot)
    (1 + D.load_u8 dev (!victim + 16 + slot));
  let r = Ccl_btree.Fsck.check dev in
  check_bool "corruption detected" true
    (not (Ccl_btree.Fsck.is_healthy r));
  check_bool "as fingerprint mismatch" true
    (r.Ccl_btree.Fsck.fingerprint_mismatches > 0)

let test_fsck_counts_logs_and_orphans () =
  let dev, t = tree ~persist_prob:1.0 () in
  for i = 1 to 100 do
    T.upsert t (k i) (v i)
  done;
  (* unflushed buffered entries leave live WAL entries behind *)
  let r = Ccl_btree.Fsck.check dev in
  check_bool "log entries present" true (r.Ccl_btree.Fsck.log_entries > 0);
  check_bool "log chunks present" true (r.Ccl_btree.Fsck.log_chunks > 0)

(* --- properties ----------------------------------------------------------- *)

type op = Ins of int * int | Del of int | Find of int

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map2 (fun k v -> Ins (k, v + 1)) (int_bound 200) (int_bound 1000));
        (2, map (fun k -> Del k) (int_bound 200));
        (2, map (fun k -> Find k) (int_bound 200));
      ])

let print_op = function
  | Ins (a, b) -> Printf.sprintf "Ins(%d,%d)" a b
  | Del a -> Printf.sprintf "Del %d" a
  | Find a -> Printf.sprintf "Find %d" a

let arb_ops = QCheck.make ~print:QCheck.Print.(list print_op)
    QCheck.Gen.(list_size (int_bound 400) op_gen)

(* Functional equivalence with a reference map, whatever the op mix. *)
let prop_model_equivalence =
  QCheck.Test.make ~count:60 ~name:"tree ≡ reference map" arb_ops (fun ops ->
      let _, t = tree ~cfg:(cfg ~th_log:0.05 ~chunk_size:1024 ()) () in
      let model = Hashtbl.create 64 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Ins (key, value) ->
            T.upsert t (k key) (Int64.of_int value);
            Hashtbl.replace model key value
          | Del key ->
            T.delete t (k key);
            Hashtbl.remove model key
          | Find key ->
            let got = T.search t (k key) in
            let want = Option.map Int64.of_int (Hashtbl.find_opt model key) in
            if got <> want then ok := false)
        ops;
      T.check_invariants t;
      !ok && T.count_entries t = Hashtbl.length model)

(* Scans agree with the model on content and order. *)
let prop_scan_equivalence =
  QCheck.Test.make ~count:40 ~name:"scan ≡ sorted model slice" arb_ops
    (fun ops ->
      let _, t = tree () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun op ->
          match op with
          | Ins (key, value) ->
            T.upsert t (k key) (Int64.of_int value);
            Hashtbl.replace model key value
          | Del key ->
            T.delete t (k key);
            Hashtbl.remove model key
          | Find _ -> ())
        ops;
      let want =
        Hashtbl.fold (fun key value acc -> (key, value) :: acc) model []
        |> List.filter (fun (key, _) -> key >= 50)
        |> List.sort compare
        |> List.filteri (fun i _ -> i < 20)
        |> List.map (fun (key, value) -> (k key, Int64.of_int value))
      in
      Array.to_list (T.scan t ~start:50L 20) = want)

(* Crash anywhere: recovery never loses an acknowledged write and never
   resurrects a deleted key. *)
let prop_crash_recovery =
  QCheck.Test.make ~count:40 ~name:"crash/recover respects durability"
    QCheck.(pair small_int arb_ops)
    (fun (seed, ops) ->
      let dev, t =
        tree
          ~cfg:(cfg ~th_log:0.1 ~chunk_size:1024 ())
          ~persist_prob:0.4 ~seed ()
      in
      let model = Hashtbl.create 64 in
      List.iter
        (fun op ->
          match op with
          | Ins (key, value) ->
            T.upsert t (k key) (Int64.of_int value);
            Hashtbl.replace model key value
          | Del key ->
            T.delete t (k key);
            Hashtbl.remove model key
          | Find _ -> ())
        ops;
      D.crash dev;
      let t2 = T.recover dev in
      T.check_invariants t2;
      let no_loss =
        Hashtbl.fold
          (fun key value ok ->
            ok && T.search t2 (k key) = Some (Int64.of_int value))
          model true
      in
      (* no resurrections: every key absent from the model stays absent *)
      let no_resurrection =
        List.for_all
          (fun key -> Hashtbl.mem model key || T.search t2 (k key) = None)
          (List.init 201 Fun.id)
      in
      no_loss && no_resurrection)

(* GC interleaving: any mix of foreground ops, explicit GC starts and
   incremental GC steps leaves the tree equivalent to the model. *)
let prop_gc_interleaving =
  QCheck.Test.make ~count:40 ~name:"GC steps interleave safely"
    (QCheck.make
       QCheck.Gen.(
         list
           (frequency
              [
                ( 6,
                  map2
                    (fun k v -> `Ups (k, v + 1))
                    (int_bound 150) (int_bound 500) );
                (1, map (fun k -> `Del k) (int_bound 150));
                (1, return `Gc_start);
                (2, map (fun n -> `Gc_step (1 + (n mod 4))) small_nat);
              ])))
    (fun script ->
      let _, t = tree ~cfg:(cfg ~th_log:1e9 ~chunk_size:1024 ()) () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun step ->
          match step with
          | `Ups (key, value) ->
            T.upsert t (k key) (Int64.of_int value);
            Hashtbl.replace model key value
          | `Del key ->
            T.delete t (k key);
            Hashtbl.remove model key
          | `Gc_start -> if not (T.gc_active t) then T.gc_start t
          | `Gc_step n -> T.gc_step t n)
        script;
      T.gc_finish t;
      T.check_invariants t;
      Hashtbl.fold
        (fun key value ok ->
          ok && T.search t (k key) = Some (Int64.of_int value))
        model true)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "ccl_btree"
    [
      ( "basic",
        [
          Alcotest.test_case "empty tree" `Quick test_empty_tree;
          Alcotest.test_case "insert/search" `Quick test_insert_search;
          Alcotest.test_case "update in buffer" `Quick test_update_in_buffer;
          Alcotest.test_case "zero value rejected" `Quick
            test_zero_value_rejected;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "delete then reinsert" `Quick
            test_delete_then_reinsert;
          Alcotest.test_case "many inserts and splits" `Quick
            test_many_inserts_and_splits;
          Alcotest.test_case "random order inserts" `Quick
            test_random_order_inserts;
        ] );
      ( "scan",
        [
          Alcotest.test_case "ordered" `Quick test_scan_ordered;
          Alcotest.test_case "sees buffered updates" `Quick
            test_scan_sees_buffered_updates;
          Alcotest.test_case "past end" `Quick test_scan_past_end;
        ] );
      ( "buffering",
        [
          Alcotest.test_case "buffer absorbs writes" `Quick
            test_buffer_absorbs_writes;
          Alcotest.test_case "conservative logging skips triggers" `Quick
            test_conservative_logging_skips_triggers;
          Alcotest.test_case "naive logging logs everything" `Quick
            test_naive_logging_logs_everything;
          Alcotest.test_case "dram read hits" `Quick test_dram_read_hits;
          Alcotest.test_case "base mode writes through" `Quick
            test_base_mode_writes_through;
          Alcotest.test_case "xbi improvement over base" `Quick
            test_xbi_improvement_over_base;
        ] );
      ( "cost-model",
        [
          Alcotest.test_case "paper §3.5 closed form" `Quick
            test_section_3_5_cost_model;
        ] );
      ("merge", [ Alcotest.test_case "merge on deletions" `Quick test_merge_on_deletions ]);
      ( "gc",
        [
          Alcotest.test_case "triggers and reclaims" `Quick
            test_gc_triggers_and_reclaims;
          Alcotest.test_case "steps interleaved with ops" `Quick
            test_gc_steps_interleaved_with_ops;
          Alcotest.test_case "copies only old epoch" `Quick
            test_gc_copies_only_old_epoch;
          Alcotest.test_case "crash mid-GC" `Quick test_gc_crash_safety;
          Alcotest.test_case "naive gc equivalent" `Quick
            test_naive_gc_equivalent_content;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "clean" `Quick test_recover_clean;
          Alcotest.test_case "buffered entries" `Quick
            test_recover_with_buffered_entries;
          Alcotest.test_case "latest version wins" `Quick
            test_recover_latest_version_wins;
          Alcotest.test_case "deletes" `Quick test_recover_deletes;
          Alcotest.test_case "empty tree" `Quick test_recover_empty_tree;
          Alcotest.test_case "recover twice" `Quick test_recover_twice;
          Alcotest.test_case "recovered tree usable" `Quick
            test_recovered_tree_usable;
          Alcotest.test_case "adversarial durability" `Quick
            test_durability_contract_adversarial;
          Alcotest.test_case "fence drift" `Quick test_fence_drift_recovery;
          Alcotest.test_case "trigger tombstone logged" `Quick
            test_trigger_tombstone_logged;
        ] );
      ( "variable-size",
        [
          Alcotest.test_case "small strings" `Quick test_str_api_small;
          Alcotest.test_case "large values" `Quick test_str_api_large_values;
          Alcotest.test_case "long keys" `Quick test_str_api_long_keys;
          Alcotest.test_case "recovery" `Quick test_str_recovery;
        ] );
      ( "bulk-load",
        [
          Alcotest.test_case "roundtrip" `Quick test_bulk_load_roundtrip;
          Alcotest.test_case "then mutate + recover" `Quick
            test_bulk_load_then_mutate;
          Alcotest.test_case "rejects bad input" `Quick
            test_bulk_load_rejects_bad_input;
          Alcotest.test_case "iter in order" `Quick test_iter_in_order;
        ] );
      ( "fsck",
        [
          Alcotest.test_case "healthy tree" `Quick test_fsck_healthy_tree;
          Alcotest.test_case "detects corruption" `Quick
            test_fsck_detects_corruption;
          Alcotest.test_case "counts logs" `Quick
            test_fsck_counts_logs_and_orphans;
        ] );
      ( "properties",
        [
          qt prop_model_equivalence;
          qt prop_scan_equivalence;
          qt prop_crash_recovery;
          qt prop_gc_interleaving;
        ] );
    ]
