bin/crashcheck.mli:
