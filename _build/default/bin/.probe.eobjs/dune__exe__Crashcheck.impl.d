bin/crashcheck.ml: Arg Ccl_btree Cmd Cmdliner Crashmc Fmt List Printf Term Unix
