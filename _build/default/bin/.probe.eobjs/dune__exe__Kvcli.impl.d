bin/kvcli.ml: Arg Array Ccl_btree Cmd Cmdliner Format Pmem Printf Sys Term
