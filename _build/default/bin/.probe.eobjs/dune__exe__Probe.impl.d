bin/probe.ml: Array Ccl_btree Pmalloc Pmem Printf Workload
