bin/kvcli.mli:
