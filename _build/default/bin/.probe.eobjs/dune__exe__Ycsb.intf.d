bin/ycsb.mli:
