bin/ycsb.ml: Arg Baselines Cmd Cmdliner Harness List Pmalloc Pmem Printf Term Workload
