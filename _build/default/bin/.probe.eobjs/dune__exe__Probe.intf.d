bin/probe.mli:
