(* ccl-ycsb: run a YCSB-style workload against any of the compared
   indexes and report throughput, amplification and traffic.

     dune exec bin/ycsb.exe -- --index ccl --mix insert-only \
       --warmup 50000 --ops 50000 --threads 48

   Indexes: ccl fastfair fptree lbtree utree dptree pactree flatstore lsm
   Mixes:   insert-only insert-intensive read-intensive read-only
            scan-insert *)

module D = Pmem.Device
module S = Pmem.Stats
module Y = Workload.Ycsb
module K = Workload.Keygen

let spec_of = function
  | "ccl" -> Harness.Runner.ccl_default
  | "fastfair" -> Harness.Runner.Fastfair
  | "fptree" -> Harness.Runner.Fptree
  | "lbtree" -> Harness.Runner.Lbtree
  | "utree" -> Harness.Runner.Utree
  | "dptree" -> Harness.Runner.Dptree
  | "pactree" -> Harness.Runner.Pactree
  | "flatstore" -> Harness.Runner.Flatstore
  | "lsm" -> Harness.Runner.Lsm
  | s ->
    Printf.eprintf "unknown index %s\n" s;
    exit 2

let mix_of = function
  | "insert-only" -> Y.Insert_only
  | "insert-intensive" -> Y.Insert_intensive
  | "read-intensive" -> Y.Read_intensive
  | "read-only" -> Y.Read_only
  | "scan-insert" -> Y.Scan_insert
  | s ->
    Printf.eprintf "unknown mix %s\n" s;
    exit 2

open Cmdliner

let run index mix warmup ops threads scan_len =
  let spec = spec_of index in
  let dev = Harness.Runner.device ~mb:(max 96 (warmup / 4000)) () in
  let drv = Harness.Runner.build spec dev in
  D.set_classifier dev
    (Some
       (Pmalloc.Alloc.classify (drv.Baselines.Index_intf.allocator ())));
  Printf.printf "loading %d keys into %s...\n%!" warmup
    (Harness.Runner.name spec);
  Harness.Runner.warmup drv ~keys:(K.shuffled_range ~seed:1 warmup);
  let stream =
    Y.generate (mix_of mix) ~seed:7 ~space:(2 * warmup) ~scan_len ops
  in
  Printf.printf "running %d x %s ops...\n%!" ops mix;
  let m =
    Harness.Exp_common.run_ops dev drv spec stream
  in
  let st = m.Harness.Runner.delta in
  Printf.printf "\n%-26s %s\n" "index" (Harness.Runner.name spec);
  Printf.printf "%-26s %s\n" "mix" mix;
  Printf.printf "%-26s %.2f\n" "CLI-amplification" (S.cli_amplification st);
  Printf.printf "%-26s %.2f\n" "XBI-amplification" (S.xbi_amplification st);
  Printf.printf "%-26s %d B (%d XPLines)\n" "media writes"
    st.S.media_write_bytes st.S.media_write_lines;
  Printf.printf "%-26s %d B\n" "media reads" st.S.media_read_bytes;
  Printf.printf "%-26s %.0f ns\n" "modeled ns/op (1 thread)"
    m.Harness.Runner.avg_ns;
  List.iter
    (fun n ->
      Printf.printf "%-26s %.2f Mop/s\n"
        (Printf.sprintf "modeled @%d threads" n)
        (Harness.Runner.mops m ~threads:n))
    (List.sort_uniq compare [ 1; threads ]);
  0

let cmd =
  let index =
    Arg.(value & opt string "ccl" & info [ "index" ] ~docv:"INDEX")
  in
  let mix =
    Arg.(value & opt string "insert-only" & info [ "mix" ] ~docv:"MIX")
  in
  let warmup = Arg.(value & opt int 20_000 & info [ "warmup" ]) in
  let ops = Arg.(value & opt int 20_000 & info [ "ops" ]) in
  let threads = Arg.(value & opt int 48 & info [ "threads" ]) in
  let scan_len = Arg.(value & opt int 100 & info [ "scan-len" ]) in
  Cmd.v
    (Cmd.info "ccl-ycsb" ~doc:"YCSB workload runner for the compared indexes")
    Term.(const run $ index $ mix $ warmup $ ops $ threads $ scan_len)

let () = exit (Cmd.eval' cmd)
