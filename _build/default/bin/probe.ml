(* Traffic attribution probe for development: where do CCL-BTree's
   flushes and media writes come from under the Fig 3 workload? *)

module D = Pmem.Device
module S = Pmem.Stats
module T = Ccl_btree.Tree
module Ts = Ccl_btree.Tree_stats
module K = Workload.Keygen

let () =
  let dev =
    D.create ~config:(Pmem.Config.default ~size:(96 * 1024 * 1024) ()) ()
  in
  let t = T.create dev in
  D.set_classifier dev (Some (Pmalloc.Alloc.classify (T.allocator t)));
  let warmup = 20_000 in
  Array.iter (fun k -> T.upsert t k 1L) (K.shuffled_range ~seed:1 warmup);
  let gen = K.uniform ~seed:9 ~space:(2 * warmup) in
  let before = D.snapshot dev in
  let st = T.stats t in
  let s0 =
    (st.Ts.log_appends, st.Ts.log_skips, st.Ts.batch_flushes, st.Ts.splits,
     st.Ts.gc_runs, st.Ts.gc_copied)
  in
  let ops = 20_000 in
  for _ = 1 to ops do
    T.upsert t (K.next gen) 2L
  done;
  T.flush_all t;
  D.drain dev;
  let d = S.diff ~after:(D.snapshot dev) ~before in
  let l1, k1, b1, sp1, g1, c1 = s0 in
  Printf.printf "ops %d\n" ops;
  Printf.printf "log_appends %d  skips %d\n" (st.Ts.log_appends - l1) (st.Ts.log_skips - k1);
  Printf.printf "batch_flushes %d  splits %d\n" (st.Ts.batch_flushes - b1) (st.Ts.splits - sp1);
  Printf.printf "gc_runs %d  gc_copied %d\n" (st.Ts.gc_runs - g1) (st.Ts.gc_copied - c1);
  Printf.printf "clwb %d (%.2f/op)  sfence %d\n" d.S.clwb_count
    (float_of_int d.S.clwb_count /. float_of_int ops)
    d.S.sfence_count;
  Printf.printf "media write lines %d (%.2f/op)\n" d.S.media_write_lines
    (float_of_int d.S.media_write_lines /. float_of_int ops);
  Printf.printf "media by class: meta %d leaf %d log %d extent %d\n"
    d.S.media_write_bytes_by_class.(0) d.S.media_write_bytes_by_class.(1)
    d.S.media_write_bytes_by_class.(2) d.S.media_write_bytes_by_class.(3);
  Printf.printf "CLI %.2f XBI %.2f\n" (S.cli_amplification d) (S.xbi_amplification d);
  Printf.printf "nodes %d  leaf_bytes %d  log_live %d  log_peak %d  dram %d pm %d\n"
    (T.buffer_node_count t) (T.leaf_bytes t) (T.log_live_bytes t)
    (T.log_peak_bytes t) (T.dram_bytes t) (T.pm_bytes t)
