(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md for the per-experiment index), plus a
   Bechamel wall-clock microbenchmark of the core operations.

     dune exec bench/main.exe                 # everything, small scale
     dune exec bench/main.exe -- fig3 tab1    # selected experiments
     dune exec bench/main.exe -- --scale 2    # larger runs
     dune exec bench/main.exe -- --list       # available ids *)

let list_experiments () =
  Printf.printf "available experiments:\n";
  List.iter
    (fun e ->
      Printf.printf "  %-8s %s\n" e.Harness.Experiments.id
        e.Harness.Experiments.what)
    Harness.Experiments.all

let escape_json s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

(* Machine-readable record of the microbenchmark, one object per
   operation, so the perf trajectory is comparable across PRs:
     [{"name": "CCL-BTree/upsert", "ns_per_op": 1234.5}, ...]
   [extra] rows (pre-rendered objects, e.g. the amp-profile suite's
   per-site WA rows) land in the same array: bench_check's name-keyed
   lookups skip rows whose fields it does not know, so mixed schemas in
   one artifact are safe. *)
let write_json ?(extra = []) path rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let rendered =
        List.map
          (fun (name, ns) ->
            Printf.sprintf "{\"name\": \"%s\", \"ns_per_op\": %.1f}"
              (escape_json name) ns)
          rows
        @ extra
      in
      output_string oc "[\n";
      List.iteri
        (fun i row ->
          Printf.fprintf oc "  %s%s\n" row
            (if i = List.length rendered - 1 then "" else ","))
        rendered;
      output_string oc "]\n");
  Printf.printf "  [benchmark results written to %s]\n%!" path

(* Every shard-suite JSON row carries the host's core count and the dune
   profile that produced it: a scaling row is meaningless without knowing
   how many real cores backed the domains, and dev/release numbers must
   never be compared against each other. *)
let row_env () =
  Printf.sprintf "\"host_cores\": %d, \"profile\": \"%s\""
    (Domain.recommended_domain_count ())
    Build_profile.profile

let write_row_list path rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "[\n";
      List.iteri
        (fun i row ->
          Printf.fprintf oc "  %s%s\n" row
            (if i = List.length rows - 1 then "" else ","))
        rows;
      output_string oc "]\n");
  Printf.printf "  [shard scaling results written to %s]\n%!" path

(* Measured domain-parallel scalability: the same YCSB insert-only mix on
   an N-shard CCL-BTree fleet (one domain + one private device per shard),
   reported three ways:

   - wall Mop/s: ops / elapsed wall clock.  Scales with domain count only
     when the host actually has that many cores.
   - svc Mop/s: ops / max per-shard thread-CPU time — the measured
     critical path, i.e. what the fleet sustains once every domain has a
     core.  On a multicore host with idle cores the two agree.
   - model Mop/s: the Perfmodel.Thread_model analytic curve at the same
     thread count, printed next to the measurements it used to replace. *)
let shard_scaling ~scale_level () =
  let scale = Harness.Scale.of_level scale_level in
  let warmup = scale.Harness.Scale.warmup and ops_n = 2 * scale.Harness.Scale.ops in
  Harness.Report.section
    "Shard: measured domain-parallel throughput, YCSB insert-only (Mop/s)";
  let spec = Harness.Runner.ccl_default in
  let rows =
    List.map
      (fun domains ->
        let t = Harness.Runner.make_sharded ~mb:96 spec ~domains () in
        Shard.run t
          (Array.mapi
             (fun i k -> Workload.Ycsb.Insert (k, Int64.of_int (i + 1)))
             (Workload.Keygen.shuffled_range ~seed:1 warmup));
        Shard.flush t;
        Shard.reset_counters t;
        let stream =
          Array.mapi
            (fun i k ->
              Workload.Ycsb.Insert
                (Int64.add k (Int64.of_int warmup), Int64.of_int (i + 1)))
            (Workload.Keygen.shuffled_range ~seed:2 ops_n)
        in
        let before = Shard.stats t in
        let t0 = Shard.Clock.monotonic_ns () in
        Shard.run t stream;
        Shard.flush t;
        let wall_ns =
          Int64.to_float (Int64.sub (Shard.Clock.monotonic_ns ()) t0)
        in
        let delta =
          Pmem.Stats.diff ~after:(Shard.stats t) ~before
        in
        let max_busy =
          float_of_int (Array.fold_left max 1 (Shard.busy_ns t))
        in
        let applied =
          float_of_int (Array.fold_left ( + ) 0 (Shard.applied t))
        in
        Shard.shutdown t;
        let wall_mops = float_of_int ops_n *. 1e3 /. wall_ns in
        let svc_mops = applied *. 1e3 /. max_busy in
        let model_mops =
          Harness.Runner.mops_modeled
            {
              Harness.Runner.ops = ops_n;
              delta;
              avg_ns =
                (Perfmodel.Constants.base_op_ns
                +. Harness.Runner.events_cost_ns delta /. float_of_int ops_n);
              wall_ns;
              samples = [||];
              numa_aware = Harness.Runner.numa_aware spec;
            }
            ~threads:domains
        in
        (domains, wall_mops, svc_mops, model_mops,
         Pmem.Stats.xbi_amplification delta))
      [ 1; 2; 4; 8 ]
  in
  Harness.Report.table
    ~header:[ "domains"; "wall meas"; "svc meas"; "model"; "XBI-amp" ]
    (List.map
       (fun (d, w, s, m, x) ->
         [
           string_of_int d;
           Printf.sprintf "%.2f" w;
           Printf.sprintf "%.2f" s;
           Printf.sprintf "%.2f" m;
           Printf.sprintf "%.2f" x;
         ])
       rows);
  Harness.Report.note
    (Printf.sprintf
       "host has %d core(s): wall-clock scaling needs real cores, svc is \
        the measured per-domain-CPU critical path"
       (Domain.recommended_domain_count ()));
  (* readers/writers/retries make every shard-suite row share one schema
     (the router path has no pools and no optimistic retries) *)
  List.map
    (fun (d, w, s, m, x) ->
      Printf.sprintf
        "{\"suite\": \"shard\", \"mix\": \"insert-only\", \"domains\": %d, \
         \"readers\": 0, \"writers\": 0, \"retries\": 0, \
         \"wall_mops\": %.3f, \"svc_mops\": %.3f, \"model_mops\": %.3f, \
         \"xbi_amp\": %.2f, %s}"
        d w s m x (row_env ()))
    rows

(* Measured intra-shard read parallelism: N read-only domains attached to
   one shard's CCL-BTree via {!Shard.reader_pool}, running the read side
   of YCSB-C (100% reads) and YCSB-B (95% reads, the writer domain
   applying the remaining 5% concurrently — structural modifications race
   the optimistic readers, which is the point).  svc Mop/s is reads /
   max per-reader thread-CPU time: the measured read critical path, which
   must scale near-linearly in the reader count regardless of how many
   real cores the host has. *)
let reader_scaling ~scale_level ~readers_max () =
  let scale = Harness.Scale.of_level scale_level in
  let warmup = scale.Harness.Scale.warmup in
  (* reads are several times cheaper than inserts: a larger stream keeps
     each reader's measured CPU window well above scheduler/GC jitter *)
  let ops_n = 8 * scale.Harness.Scale.ops in
  let counts =
    let rec up r acc = if r > readers_max then List.rev acc else up (2 * r) (r :: acc) in
    up 1 []
  in
  Harness.Report.section
    "Shard: read-mostly scaling, N reader domains on one shard (Mop/s)";
  let measure (mix, read_frac) readers =
    let t =
      Harness.Runner.make_sharded ~mb:96 Harness.Runner.ccl_default
        ~domains:1 ()
    in
    Shard.run t
      (Array.mapi
         (fun i k -> Workload.Ycsb.Insert (k, Int64.of_int (i + 1)))
         (Workload.Keygen.shuffled_range ~seed:1 warmup));
    Shard.flush t;
    let pool = Shard.reader_pool t ~shard:0 ~readers in
    let n_reads =
      int_of_float (Float.round (float_of_int ops_n *. read_frac))
    in
    let rng = Random.State.make [| 5 |] in
    let reads =
      Array.init n_reads (fun _ ->
          Workload.Ycsb.Read (Int64.of_int (1 + Random.State.int rng warmup)))
    in
    let writes =
      Array.init (ops_n - n_reads) (fun i ->
          Workload.Ycsb.Insert
            (Int64.of_int (warmup + i + 1), Int64.of_int (i + 1)))
    in
    let t0 = Shard.Clock.monotonic_ns () in
    Shard.Read_pool.run_async pool reads;
    if Array.length writes > 0 then begin
      Shard.run t writes;
      Shard.flush t
    end;
    Shard.Read_pool.join pool;
    let wall_ns =
      Int64.to_float (Int64.sub (Shard.Clock.monotonic_ns ()) t0)
    in
    let max_busy =
      float_of_int (Array.fold_left max 1 (Shard.Read_pool.busy_ns pool))
    in
    let applied = Array.fold_left ( + ) 0 (Shard.Read_pool.applied pool) in
    Shard.Read_pool.shutdown pool;
    let retries = Shard.Read_pool.retries pool in
    Shard.shutdown t;
    let wall_mops = float_of_int ops_n *. 1e3 /. wall_ns in
    let svc_mops = float_of_int applied *. 1e3 /. max_busy in
    (mix, readers, wall_mops, svc_mops, retries)
  in
  let rows =
    List.concat_map
      (fun mix ->
        List.map
          (fun readers ->
            (* best-of-2, like scripts/bench_check.sh: on a shared or
               single-core host one run can eat a 20%+ scheduler or GC
               spike, and the minimum CPU cost is the robust estimator *)
            let a = measure mix readers and b = measure mix readers in
            let (_, _, _, sa, _) = a and (_, _, _, sb, _) = b in
            if sa >= sb then a else b)
          counts)
      [ ("ycsb-c", 1.0); ("ycsb-b", 0.95) ]
  in
  Harness.Report.table
    ~header:[ "mix"; "readers"; "wall meas"; "svc meas"; "retries" ]
    (List.map
       (fun (mix, r, w, s, rt) ->
         [
           mix;
           string_of_int r;
           Printf.sprintf "%.2f" w;
           Printf.sprintf "%.2f" s;
           string_of_int rt;
         ])
       rows);
  Harness.Report.note
    "svc is reads / max per-reader CPU time; retries counts optimistic \
     validation failures (nonzero only while the writer races the pool)";
  List.map
    (fun (mix, r, w, s, rt) ->
      Printf.sprintf
        "{\"suite\": \"shard-readers\", \"mix\": \"%s\", \"domains\": 1, \
         \"readers\": %d, \"writers\": 0, \"wall_mops\": %.3f, \
         \"svc_mops\": %.3f, \"retries\": %d, %s}"
        mix r w s rt (row_env ()))
    rows

(* Measured intra-shard write parallelism: N writer domains attached to
   one shard's CCL-BTree via {!Shard.writer_pool} — optimistic lock
   coupling inside the tree, one WAL lane and one device write view per
   domain (DESIGN.md §13).  Two mixes: insert-only (fresh keys, so the
   lanes race over splits) and YCSB-A (50% uniform updates / 50% reads,
   the reads on one reader domain racing the writers over hot leaves).
   svc Mop/s is writes / max per-writer thread-CPU time — the measured
   write critical path, which must grow with the writer count even on a
   single-core host; retries counts optimistic validation restarts. *)
let writer_scaling ~scale_level ~writers_max () =
  let scale = Harness.Scale.of_level scale_level in
  let warmup = scale.Harness.Scale.warmup in
  let ops_n = 2 * scale.Harness.Scale.ops in
  let counts =
    let rec up w acc =
      if w > writers_max then List.rev acc else up (2 * w) (w :: acc)
    in
    up 1 []
  in
  Harness.Report.section
    "Shard: write scaling, N writer domains on one shard (Mop/s)";
  let measure (mix, read_frac) writers =
    (* one WAL lane per writer domain *)
    let spec =
      Harness.Runner.Ccl
        ( { Ccl_btree.Config.default with Ccl_btree.Config.threads = writers },
          "CCL-BTree" )
    in
    let t = Harness.Runner.make_sharded ~mb:96 spec ~domains:1 () in
    Shard.run t
      (Array.mapi
         (fun i k -> Workload.Ycsb.Insert (k, Int64.of_int (i + 1)))
         (Workload.Keygen.shuffled_range ~seed:1 warmup));
    Shard.flush t;
    Shard.reset_counters t;
    let wpool = Shard.writer_pool t ~shard:0 ~writers in
    let rpool =
      if read_frac > 0.0 then Some (Shard.reader_pool t ~shard:0 ~readers:1)
      else None
    in
    let n_reads =
      int_of_float (Float.round (float_of_int ops_n *. read_frac))
    in
    let rng = Random.State.make [| 5 |] in
    let reads =
      Array.init n_reads (fun _ ->
          Workload.Ycsb.Read (Int64.of_int (1 + Random.State.int rng warmup)))
    in
    let writes =
      match mix with
      | "insert-only" ->
        Array.init (ops_n - n_reads) (fun i ->
            Workload.Ycsb.Insert
              (Int64.of_int (warmup + i + 1), Int64.of_int (i + 1)))
      | _ ->
        (* ycsb-a: uniform updates over the warmed range, so the lanes
           contend on shared leaves and the retry counter means something *)
        Array.init (ops_n - n_reads) (fun i ->
            Workload.Ycsb.Insert
              (Int64.of_int (1 + Random.State.int rng warmup),
               Int64.of_int (i + 1)))
    in
    let t0 = Shard.Clock.monotonic_ns () in
    (match rpool with
    | Some p -> Shard.Read_pool.run_async p reads
    | None -> ());
    Shard.Write_pool.run wpool writes;
    (match rpool with Some p -> Shard.Read_pool.join p | None -> ());
    let wall_ns =
      Int64.to_float (Int64.sub (Shard.Clock.monotonic_ns ()) t0)
    in
    let max_busy =
      float_of_int (Array.fold_left max 1 (Shard.Write_pool.busy_ns wpool))
    in
    let applied = Array.fold_left ( + ) 0 (Shard.Write_pool.applied wpool) in
    Shard.Write_pool.shutdown wpool;
    let retries = Shard.Write_pool.retries wpool in
    (match rpool with Some p -> Shard.Read_pool.shutdown p | None -> ());
    Shard.shutdown t;
    let wall_mops = float_of_int ops_n *. 1e3 /. wall_ns in
    let svc_mops = float_of_int applied *. 1e3 /. max_busy in
    (mix, (match rpool with Some _ -> 1 | None -> 0), writers, wall_mops,
     svc_mops, retries)
  in
  let rows =
    List.concat_map
      (fun mix ->
        List.map
          (fun writers ->
            (* best-of-2, like the reader suite: the minimum CPU cost is
               the robust estimator on a shared or single-core host *)
            let a = measure mix writers and b = measure mix writers in
            let (_, _, _, _, sa, _) = a and (_, _, _, _, sb, _) = b in
            if sa >= sb then a else b)
          counts)
      [ ("insert-only", 0.0); ("ycsb-a", 0.5) ]
  in
  Harness.Report.table
    ~header:[ "mix"; "writers"; "wall meas"; "svc meas"; "retries" ]
    (List.map
       (fun (mix, _, w, wl, s, rt) ->
         [
           mix;
           string_of_int w;
           Printf.sprintf "%.2f" wl;
           Printf.sprintf "%.2f" s;
           string_of_int rt;
         ])
       rows);
  Harness.Report.note
    "svc is writes / max per-writer CPU time; retries counts optimistic \
     lock-coupling restarts (vlock validation failures and fence misses)";
  List.map
    (fun (mix, r, w, wl, s, rt) ->
      Printf.sprintf
        "{\"suite\": \"shard-writers\", \"mix\": \"%s\", \"domains\": 1, \
         \"readers\": %d, \"writers\": %d, \"wall_mops\": %.3f, \
         \"svc_mops\": %.3f, \"retries\": %d, %s}"
        mix r w wl s rt (row_env ()))
    rows

(* Measured-latency percentiles of real op execution: the op stream runs
   through Harness.Exp_common.run_ops with a lib/obs recorder attached, so
   every driver call lands in an allocation-free log-bucketed histogram
   (recording does not perturb the tail it measures).  Returns rows in the
   same {"name","ns_per_op"} schema as the microbenchmark, so
   scripts/bench_check.sh can track p50/p99 next to the bechamel medians.
   [sample]/[trace]/[metrics] forward the ycsb-style observability flags. *)
let latency_suite ~sample ~trace ~metrics ~scale_level () =
  let scale = Harness.Scale.of_level scale_level in
  let spec = Harness.Runner.ccl_default in
  let dev, drv = Harness.Exp_common.warmed spec scale in
  let rc =
    Obs.Recorder.create ~hist:true ~sample_every:sample
      ~trace:(trace <> None) ~now:Shard.Clock.monotonic_ns ()
  in
  let ow = Obs.Recorder.worker rc ~tid:0 ~name:"latency" ~dev () in
  Obs.Recorder.install_device_tracer ow;
  let before = Pmem.Device.snapshot dev in
  let run ops = ignore (Harness.Exp_common.run_ops ~obs:ow dev drv spec ops) in
  run (Harness.Exp_common.updates scale);
  run (Harness.Exp_common.searches scale);
  Obs.Recorder.finish rc;
  Harness.Report.section "Latency: measured percentiles of real execution (ns)";
  Obs.Recorder.print_hists rc;
  (match trace with
  | Some path ->
    Obs.Recorder.write_trace rc path;
    Printf.printf "  [trace written to %s]\n%!" path
  | None -> ());
  (match metrics with
  | Some path ->
    Obs.Recorder.write_metrics rc
      ~device:(Pmem.Stats.diff ~after:(Pmem.Device.snapshot dev) ~before)
      path;
    Printf.printf "  [metrics written to %s]\n%!" path
  | None -> ());
  List.concat_map
    (fun (kind, h) ->
      [
        ( Printf.sprintf "latency/CCL-BTree/%s/p50" kind,
          float_of_int (Obs.Histogram.percentile h 50.0) );
        ( Printf.sprintf "latency/CCL-BTree/%s/p99" kind,
          float_of_int (Obs.Histogram.percentile h 99.0) );
      ])
    (Obs.Recorder.hists rc)

(* Per-site write-amplification attribution (Obs.Prof) of an insert-only
   run: where each index's media bytes actually come from — CCL-BTree's
   wal-append / leaf-buffer / smo-split vs FAST&FAIR's in-place
   ff-insert / ff-split.  The profiler attaches after the warmup, so the
   table covers exactly the measured inserts plus their end-of-run
   flush; each site row lands in the benchmark JSON, so BENCH_device.json
   tracks the per-site WA trajectory across PRs alongside the wall-clock
   medians. *)
let amp_profile_suite ~scale_level () =
  let scale = Harness.Scale.of_level scale_level in
  let warmup = scale.Harness.Scale.warmup and ops_n = scale.Harness.Scale.ops in
  Harness.Report.section
    "Amp-profile: per-site write amplification (Obs.Prof), insert-only";
  List.concat_map
    (fun spec ->
      let dev = Harness.Runner.device ~mb:96 () in
      let drv = Harness.Runner.build spec dev in
      Harness.Runner.warmup drv
        ~keys:(Workload.Keygen.shuffled_range ~seed:1 warmup);
      let p = Obs.Prof.create ~now:Shard.Clock.monotonic_ns () in
      let ln = Obs.Prof.lane p ~tid:0 in
      Obs.Prof.attach_device ln dev;
      Array.iteri
        (fun i k ->
          drv.Baselines.Index_intf.upsert
            (Int64.add k (Int64.of_int warmup))
            (Int64.of_int (i + 1)))
        (Workload.Keygen.shuffled_range ~seed:2 ops_n);
      drv.Baselines.Index_intf.flush_all ();
      let name = Harness.Runner.name spec in
      Obs.Prof.print_report p ~name;
      let tot = Obs.Prof.wa_total p in
      List.map
        (fun (r : Obs.Prof.wa_row) ->
          let amp =
            if r.Obs.Prof.store_bytes = 0 then 0.0
            else
              float_of_int r.Obs.Prof.media_bytes
              /. float_of_int r.Obs.Prof.store_bytes
          in
          let share =
            if tot.Obs.Prof.media_bytes = 0 then 0.0
            else
              100.0
              *. float_of_int r.Obs.Prof.media_bytes
              /. float_of_int tot.Obs.Prof.media_bytes
          in
          Printf.sprintf
            "{\"suite\": \"amp-profile\", \"name\": \"amp/%s/%s\", \
             \"store_bytes\": %d, \"media_bytes\": %d, \"amp\": %.2f, \
             \"share_pct\": %.1f, %s}"
            (escape_json name)
            (escape_json r.Obs.Prof.site)
            r.Obs.Prof.store_bytes r.Obs.Prof.media_bytes amp share
            (row_env ()))
        (Obs.Prof.wa_table p))
    [ Harness.Runner.ccl_default; Harness.Runner.Fastfair ]

(* Wall-clock microbenchmark of the real code paths (one Bechamel test per
   core operation).  The simulator's modeled numbers come from the
   experiments; this measures what the OCaml implementation itself costs. *)
let bechamel_micro ?only ~quota () =
  let open Bechamel in
  (* [only] restricts to tests whose name contains the substring, so the
     bench_check gate can measure just the two ops it compares instead of
     paying preload + quota for the whole suite *)
  let keep name =
    match only with
    | None -> true
    | Some sub ->
      let nl = String.length name and sl = String.length sub in
      let rec at i = i + sl <= nl && (String.sub name i sl = sub || at (i + 1)) in
      sl = 0 || at 0
  in
  (* 16 MB per simulated device: ample for the 50 k-key working set, and
     it keeps the four preloaded indexes' images small enough that major
     GC pressure does not drown the per-op signal. *)
  let dev =
    Pmem.Device.create
      ~config:(Pmem.Config.default ~size:(16 * 1024 * 1024) ())
      ()
  in
  let t = Ccl_btree.Tree.create dev in
  let n = 50_000 in
  Array.iter
    (fun k -> Ccl_btree.Tree.upsert t k 1L)
    (Workload.Keygen.shuffled_range ~seed:1 n);
  let rng = Random.State.make [| 7 |] in
  let next () = Int64.of_int (1 + Random.State.int rng n) in
  (* Each staged call performs [batch] operations, so the per-sample cost
     sits far above Bechamel's fixed sampling overhead (clock reads,
     bookkeeping) — that overhead otherwise drowns sub-microsecond ops.
     Estimates are divided back to per-op before reporting. *)
  let batch = 64 in
  (* competitor indexes, for wall-clock comparison of the implementations *)
  let baseline_tests =
    List.filter_map
      (fun spec ->
        if not (keep (Harness.Runner.name spec ^ "/upsert")) then None
        else Some spec)
      [ Harness.Runner.Fastfair; Harness.Runner.Fptree; Harness.Runner.Flatstore ]
  in
  let baseline_tests =
    List.map
      (fun spec ->
        let bdev =
          Pmem.Device.create
            ~config:(Pmem.Config.default ~size:(16 * 1024 * 1024) ())
            ()
        in
        let drv = Harness.Runner.build spec bdev in
        Array.iter
          (fun k -> drv.Baselines.Index_intf.upsert k 1L)
          (Workload.Keygen.shuffled_range ~seed:1 n);
        Test.make
          ~name:(Harness.Runner.name spec ^ "/upsert")
          (Staged.stage (fun () ->
               for _ = 1 to batch do
                 drv.Baselines.Index_intf.upsert (next ()) 2L
               done)))
      baseline_tests
  in
  let ccl_tests =
    List.filter_map
      (fun (name, body) ->
        if keep name then Some (Test.make ~name (Staged.stage body)) else None)
      [
        ( "CCL-BTree/upsert",
          fun () ->
            for _ = 1 to batch do
              Ccl_btree.Tree.upsert t (next ()) 2L
            done );
        ( "CCL-BTree/search",
          fun () ->
            for _ = 1 to batch do
              ignore (Ccl_btree.Tree.search t (next ()))
            done );
        ( "CCL-BTree/scan-100",
          fun () ->
            for _ = 1 to batch do
              ignore (Ccl_btree.Tree.scan t ~start:(next ()) 100)
            done );
        ( "CCL-BTree/delete+reinsert",
          fun () ->
            for _ = 1 to batch do
              let k = next () in
              Ccl_btree.Tree.delete t k;
              Ccl_btree.Tree.upsert t k 3L
            done );
      ]
  in
  (* WAL append with and without epoch-batched group commit: each staged
     call appends [batch] log records; the grouped variant shares one
     deduplicated clwb set and tail fence per batch (lib/walog) where the
     per-record variant pays a flush+fence for every append.  The log is
     reclaimed whenever live bytes pass a few MB so neither variant fills
     its device during the quota — the reclaim cost lands on both
     equally. *)
  let wal_tests =
    let names = [ "WAL/append-per-record"; "WAL/append-grouped" ] in
    if not (List.exists keep names) then []
    else
      let wdev =
        Pmem.Device.create
          ~config:(Pmem.Config.default ~size:(16 * 1024 * 1024) ())
          ()
      in
      let alloc = Pmalloc.Alloc.format wdev ~chunk_size:(256 * 1024) in
      let clock = Walog.Clock.create () in
      let w = Walog.Wal.create alloc clock ~threads:1 in
      let k = ref 0L in
      let append_one () =
        k := Int64.add !k 1L;
        Walog.Wal.append w ~thread:0 ~epoch:0 ~key:!k ~value:1L
          ~ts:(Walog.Clock.next clock)
      in
      let reclaim_if_full () =
        if Walog.Wal.live_bytes w > 4 * 1024 * 1024 then
          Walog.Wal.reclaim_epoch w ~epoch:0
      in
      List.filter_map
        (fun (name, body) ->
          if keep name then Some (Test.make ~name (Staged.stage body))
          else None)
        [
          ( "WAL/append-per-record",
            fun () ->
              reclaim_if_full ();
              for _ = 1 to batch do
                append_one ()
              done );
          ( "WAL/append-grouped",
            fun () ->
              reclaim_if_full ();
              Walog.Wal.with_group w (fun () ->
                  for _ = 1 to batch do
                    append_one ()
                  done) );
        ]
  in
  let all_tests = ccl_tests @ baseline_tests @ wal_tests in
  (match all_tests with
  | [] ->
    Printf.eprintf "bechamel: --only matched no tests\n";
    exit 2
  | _ -> ());
  let tests = Test.make_grouped ~name:"wall-clock" all_tests in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None ()
  in
  (* settle the heap after the preloads so the first measured test does
     not pay their garbage *)
  Gc.compact ();
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  Harness.Report.section "Bechamel: wall-clock cost of the implementation";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> rows := (name, est /. float_of_int batch) :: !rows
      | _ -> ())
    results;
  let rows = List.sort compare !rows in
  Harness.Report.table
    ~header:[ "operation"; "ns/op (host)" ]
    (List.map (fun (name, ns) -> [ name; Printf.sprintf "%.0f" ns ]) rows);
  rows

let run_ids ids scale_level no_bech json quota only hist sample trace metrics
    readers writers =
  let scale = Harness.Scale.of_level scale_level in
  (* pseudo-ids select the non-registry suites *)
  let shard = List.mem "shard" ids in
  let bech_named = List.mem "bechamel" ids in
  let lat = List.mem "latency" ids || hist in
  let amp = List.mem "amp-profile" ids in
  let ids =
    List.filter
      (fun id ->
        not (List.mem id [ "shard"; "bechamel"; "latency"; "amp-profile" ]))
      ids
  in
  let bech =
    bech_named || ((ids = [] && not (shard || lat || amp)) && not no_bech)
  in
  let selected =
    match ids with
    | [] when shard || bech_named || lat || amp -> []
    | [] -> Harness.Experiments.all
    | ids ->
      List.map
        (fun id ->
          match Harness.Experiments.find id with
          | Some e -> e
          | None ->
            Printf.eprintf "unknown experiment %S (try --list)\n" id;
            exit 2)
        ids
  in
  List.iter
    (fun e ->
      let t0 = Unix.gettimeofday () in
      e.Harness.Experiments.run scale;
      Printf.printf "  [%s done in %.1fs]\n%!" e.Harness.Experiments.id
        (Unix.gettimeofday () -. t0))
    selected;
  if shard then begin
    let insert_rows = shard_scaling ~scale_level () in
    let reader_rows =
      if readers > 0 then reader_scaling ~scale_level ~readers_max:readers ()
      else []
    in
    let writer_rows =
      if writers > 0 then writer_scaling ~scale_level ~writers_max:writers ()
      else []
    in
    match json with
    | Some path ->
      write_row_list path (insert_rows @ reader_rows @ writer_rows)
    | None -> ()
  end;
  let rows =
    (if bech then bechamel_micro ?only ~quota () else [])
    @
    if lat then latency_suite ~sample ~trace ~metrics ~scale_level () else []
  in
  let amp_rows = if amp then amp_profile_suite ~scale_level () else [] in
  (* when the shard suite owns the --json path, don't overwrite it *)
  match json with
  | Some path when (not shard) && (rows <> [] || amp_rows <> []) ->
    write_json ~extra:amp_rows path rows
  | _ -> ()

open Cmdliner

let ids_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"EXPERIMENT"
        ~doc:
          "Experiment ids to run (default: all).  The pseudo-id $(b,bechamel) \
           runs only the wall-clock microbenchmark; $(b,shard) runs the \
           measured domain-parallel scaling suite; $(b,latency) runs the \
           measured-latency percentile suite (lib/obs histograms); \
           $(b,amp-profile) runs the per-site write-amplification \
           attribution suite (Obs.Prof) over CCL-BTree and FAST&FAIR and \
           records one JSON row per site.")

let scale_arg =
  Arg.(
    value & opt int 1
    & info [ "scale" ] ~docv:"LEVEL" ~doc:"Workload scale level (1-3).")

let list_arg =
  Arg.(value & flag & info [ "list" ] ~doc:"List experiment ids and exit.")

let no_bechamel_arg =
  Arg.(
    value & flag
    & info [ "no-bechamel" ] ~doc:"Skip the wall-clock microbenchmark.")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"PATH"
        ~doc:
          "Write the wall-clock microbenchmark (or, with the $(b,shard) \
           pseudo-id, the measured scaling) results to $(docv) as JSON.")

let quota_arg =
  Arg.(
    value & opt float 2.0
    & info [ "quota" ] ~docv:"SECONDS"
        ~doc:
          "Bechamel time budget per test (shorter budgets for CI smoke \
           checks, e.g. scripts/bench_check.sh).")

let only_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "only" ] ~docv:"SUBSTRING"
        ~doc:
          "Run only microbenchmark tests whose name contains $(docv) \
           (e.g. $(b,CCL-BTree) for the regression gate).")

let hist_arg =
  Arg.(
    value & flag
    & info [ "hist" ]
        ~doc:
          "Run the measured-latency percentile suite (alias for the \
           $(b,latency) pseudo-id).")

let sample_arg =
  Arg.(
    value & opt int 0
    & info [ "sample" ] ~docv:"N"
        ~doc:
          "During the latency suite, snapshot device counter deltas every \
           $(docv) ops into the metrics JSON (0 = off).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"PATH"
        ~doc:
          "Write a Chrome trace-event JSON of the latency suite's run to \
           $(docv) (load in Perfetto).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-json" ] ~docv:"PATH"
        ~doc:
          "Write the latency suite's histograms, device counters and \
           samples to $(docv) as JSON.")

let readers_arg =
  Arg.(
    value & opt int 4
    & info [ "readers" ] ~docv:"N"
        ~doc:
          "With the $(b,shard) pseudo-id, also run the read-mostly \
           (YCSB-B/C) suite with 1..$(docv) reader domains attached to one \
           shard (powers of two; 0 disables).")

let writers_arg =
  Arg.(
    value & opt int 4
    & info [ "writers" ] ~docv:"N"
        ~doc:
          "With the $(b,shard) pseudo-id, also run the write-scaling \
           (insert-only / YCSB-A) suite with 1..$(docv) writer domains \
           attached to one shard (powers of two; 0 disables).")

let cmd =
  let doc = "Regenerate the CCL-BTree paper's tables and figures" in
  Cmd.v
    (Cmd.info "ccl-bench" ~doc)
    Term.(
      const (fun list ids scale no_bech json quota only hist sample trace
                 metrics readers writers ->
          if list then list_experiments ()
          else if sample < 0 then (
            Printf.eprintf "ccl-bench: --sample must be >= 0\n";
            Stdlib.exit 2)
          else if readers < 0 then (
            Printf.eprintf "ccl-bench: --readers must be >= 0\n";
            Stdlib.exit 2)
          else if writers < 0 then (
            Printf.eprintf "ccl-bench: --writers must be >= 0\n";
            Stdlib.exit 2)
          else
            run_ids ids scale no_bech json quota only hist sample trace
              metrics readers writers)
      $ list_arg $ ids_arg $ scale_arg $ no_bechamel_arg $ json_arg
      $ quota_arg $ only_arg $ hist_arg $ sample_arg $ trace_arg
      $ metrics_arg $ readers_arg $ writers_arg)

let () = exit (Cmd.eval cmd)
