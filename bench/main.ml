(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md for the per-experiment index), plus a
   Bechamel wall-clock microbenchmark of the core operations.

     dune exec bench/main.exe                 # everything, small scale
     dune exec bench/main.exe -- fig3 tab1    # selected experiments
     dune exec bench/main.exe -- --scale 2    # larger runs
     dune exec bench/main.exe -- --list       # available ids *)

let list_experiments () =
  Printf.printf "available experiments:\n";
  List.iter
    (fun e ->
      Printf.printf "  %-8s %s\n" e.Harness.Experiments.id
        e.Harness.Experiments.what)
    Harness.Experiments.all

(* Machine-readable record of the microbenchmark, one object per
   operation, so the perf trajectory is comparable across PRs:
     [{"name": "CCL-BTree/upsert", "ns_per_op": 1234.5}, ...] *)
let write_json path rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let escape s =
        String.concat ""
          (List.map
             (fun c ->
               match c with
               | '"' -> "\\\""
               | '\\' -> "\\\\"
               | c -> String.make 1 c)
             (List.init (String.length s) (String.get s)))
      in
      output_string oc "[\n";
      List.iteri
        (fun i (name, ns) ->
          Printf.fprintf oc "  {\"name\": \"%s\", \"ns_per_op\": %.1f}%s\n"
            (escape name) ns
            (if i = List.length rows - 1 then "" else ","))
        rows;
      output_string oc "]\n");
  Printf.printf "  [microbenchmark results written to %s]\n%!" path

(* Wall-clock microbenchmark of the real code paths (one Bechamel test per
   core operation).  The simulator's modeled numbers come from the
   experiments; this measures what the OCaml implementation itself costs. *)
let bechamel_micro ?json () =
  let open Bechamel in
  (* 16 MB per simulated device: ample for the 50 k-key working set, and
     it keeps the four preloaded indexes' images small enough that major
     GC pressure does not drown the per-op signal. *)
  let dev =
    Pmem.Device.create
      ~config:(Pmem.Config.default ~size:(16 * 1024 * 1024) ())
      ()
  in
  let t = Ccl_btree.Tree.create dev in
  let n = 50_000 in
  Array.iter
    (fun k -> Ccl_btree.Tree.upsert t k 1L)
    (Workload.Keygen.shuffled_range ~seed:1 n);
  let rng = Random.State.make [| 7 |] in
  let next () = Int64.of_int (1 + Random.State.int rng n) in
  (* Each staged call performs [batch] operations, so the per-sample cost
     sits far above Bechamel's fixed sampling overhead (clock reads,
     bookkeeping) — that overhead otherwise drowns sub-microsecond ops.
     Estimates are divided back to per-op before reporting. *)
  let batch = 64 in
  (* competitor indexes, for wall-clock comparison of the implementations *)
  let baseline_tests =
    List.map
      (fun spec ->
        let bdev =
          Pmem.Device.create
            ~config:(Pmem.Config.default ~size:(16 * 1024 * 1024) ())
            ()
        in
        let drv = Harness.Runner.build spec bdev in
        Array.iter
          (fun k -> drv.Baselines.Index_intf.upsert k 1L)
          (Workload.Keygen.shuffled_range ~seed:1 n);
        Test.make
          ~name:(Harness.Runner.name spec ^ "/upsert")
          (Staged.stage (fun () ->
               for _ = 1 to batch do
                 drv.Baselines.Index_intf.upsert (next ()) 2L
               done)))
      [ Harness.Runner.Fastfair; Harness.Runner.Fptree; Harness.Runner.Flatstore ]
  in
  let tests =
    Test.make_grouped ~name:"wall-clock"
      ([
         Test.make ~name:"CCL-BTree/upsert"
           (Staged.stage (fun () ->
                for _ = 1 to batch do
                  Ccl_btree.Tree.upsert t (next ()) 2L
                done));
         Test.make ~name:"CCL-BTree/search"
           (Staged.stage (fun () ->
                for _ = 1 to batch do
                  ignore (Ccl_btree.Tree.search t (next ()))
                done));
         Test.make ~name:"CCL-BTree/scan-100"
           (Staged.stage (fun () ->
                for _ = 1 to batch do
                  ignore (Ccl_btree.Tree.scan t ~start:(next ()) 100)
                done));
         Test.make ~name:"CCL-BTree/delete+reinsert"
           (Staged.stage (fun () ->
                for _ = 1 to batch do
                  let k = next () in
                  Ccl_btree.Tree.delete t k;
                  Ccl_btree.Tree.upsert t k 3L
                done));
       ]
      @ baseline_tests)
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 2.0) ~kde:None ()
  in
  (* settle the heap after the preloads so the first measured test does
     not pay their garbage *)
  Gc.compact ();
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  Harness.Report.section "Bechamel: wall-clock cost of the implementation";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> rows := (name, est /. float_of_int batch) :: !rows
      | _ -> ())
    results;
  let rows = List.sort compare !rows in
  Harness.Report.table
    ~header:[ "operation"; "ns/op (host)" ]
    (List.map (fun (name, ns) -> [ name; Printf.sprintf "%.0f" ns ]) rows);
  match json with None -> () | Some path -> write_json path rows

let run_ids ids scale_level bech json =
  let scale = Harness.Scale.of_level scale_level in
  let selected =
    match ids with
    | [] -> Harness.Experiments.all
    | [ "bechamel" ] -> []
    | ids ->
      List.map
        (fun id ->
          match Harness.Experiments.find id with
          | Some e -> e
          | None ->
            Printf.eprintf "unknown experiment %S (try --list)\n" id;
            exit 2)
        ids
  in
  List.iter
    (fun e ->
      let t0 = Unix.gettimeofday () in
      e.Harness.Experiments.run scale;
      Printf.printf "  [%s done in %.1fs]\n%!" e.Harness.Experiments.id
        (Unix.gettimeofday () -. t0))
    selected;
  if bech then bechamel_micro ?json ()

open Cmdliner

let ids_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"EXPERIMENT"
        ~doc:
          "Experiment ids to run (default: all).  The pseudo-id $(b,bechamel) \
           runs only the wall-clock microbenchmark.")

let scale_arg =
  Arg.(
    value & opt int 1
    & info [ "scale" ] ~docv:"LEVEL" ~doc:"Workload scale level (1-3).")

let list_arg =
  Arg.(value & flag & info [ "list" ] ~doc:"List experiment ids and exit.")

let no_bechamel_arg =
  Arg.(
    value & flag
    & info [ "no-bechamel" ] ~doc:"Skip the wall-clock microbenchmark.")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"PATH"
        ~doc:
          "Write the wall-clock microbenchmark results (ns/op per \
           index/operation) to $(docv) as JSON.")

let cmd =
  let doc = "Regenerate the CCL-BTree paper's tables and figures" in
  Cmd.v
    (Cmd.info "ccl-bench" ~doc)
    Term.(
      const (fun list ids scale no_bech json ->
          if list then list_experiments ()
          else
            run_ids ids scale
              ((ids = [] || ids = [ "bechamel" ]) && not no_bech)
              json)
      $ list_arg $ ids_arg $ scale_arg $ no_bechamel_arg $ json_arg)

let () = exit (Cmd.eval cmd)
