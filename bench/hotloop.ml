(* Deterministic steady-state timing loop for the device hot path, used to
   validate speedups with less variance than the short Bechamel quota:
   fixed seeds, fixed op counts, median of repeated rounds.

     dune exec bench/hotloop.exe            # tree upsert/search
     dune exec bench/hotloop.exe -- device  # raw device primitives *)

let time_ns f =
  let t0 = Unix.gettimeofday () in
  f ();
  (Unix.gettimeofday () -. t0) *. 1e9

let median a =
  let b = Array.copy a in
  Array.sort compare b;
  b.(Array.length b / 2)

let report name ops rounds f =
  let samples = Array.init rounds (fun _ -> time_ns f /. float_of_int ops) in
  Printf.printf "  %-24s %8.0f ns/op (median of %d rounds)\n%!" name
    (median samples) rounds

let tree_bench () =
  let dev =
    Pmem.Device.create
      ~config:(Pmem.Config.default ~size:(64 * 1024 * 1024) ())
      ()
  in
  let t = Ccl_btree.Tree.create dev in
  let n = 50_000 in
  Array.iter
    (fun k -> Ccl_btree.Tree.upsert t k 1L)
    (Workload.Keygen.shuffled_range ~seed:1 n);
  let rng = Random.State.make [| 7 |] in
  let next () = Int64.of_int (1 + Random.State.int rng n) in
  let ops = 100_000 in
  report "CCL-BTree/upsert" ops 7 (fun () ->
      for _ = 1 to ops do
        Ccl_btree.Tree.upsert t (next ()) 2L
      done);
  report "CCL-BTree/search" ops 7 (fun () ->
      for _ = 1 to ops do
        ignore (Ccl_btree.Tree.search t (next ()))
      done)

let device_bench () =
  let d =
    Pmem.Device.create
      ~config:(Pmem.Config.default ~size:(64 * 1024 * 1024) ())
      ()
  in
  let rng = Random.State.make [| 13 |] in
  let span = (64 * 1024 * 1024) - 64 in
  let ops = 1_000_000 in
  report "store_u64" ops 7 (fun () ->
      for i = 1 to ops do
        Pmem.Device.store_u64 d (Random.State.int rng span) (Int64.of_int i)
      done);
  report "store+persist" (ops / 10) 7 (fun () ->
      for i = 1 to ops / 10 do
        let a = Random.State.int rng span in
        Pmem.Device.store_u64 d a (Int64.of_int i);
        Pmem.Device.persist d a 8
      done);
  report "load_u64" ops 7 (fun () ->
      for _ = 1 to ops do
        ignore (Pmem.Device.load_u64 d (Random.State.int rng span))
      done)

let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "device" then device_bench ()
  else tree_bench ()
