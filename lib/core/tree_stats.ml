(** Operation counters of the index itself (the device-level traffic
    counters live in {!Pmem.Stats}). *)

type t = {
  mutable inserts : int;
  mutable deletes : int;
  mutable searches : int;
  mutable scans : int;
  mutable dram_hits : int;  (** Reads served from buffer nodes (Table 1). *)
  mutable leaf_reads : int;  (** Reads that had to touch the PM leaf. *)
  mutable log_appends : int;
  mutable log_skips : int;  (** Trigger writes not logged (§3.3). *)
  mutable batch_flushes : int;
  mutable splits : int;
  mutable merges : int;
  mutable gc_runs : int;
  mutable gc_copied : int;  (** Entries moved B-log -> I-log. *)
  mutable gc_skipped : int;  (** Entries the GC did not need to copy. *)
}

let create () =
  {
    inserts = 0;
    deletes = 0;
    searches = 0;
    scans = 0;
    dram_hits = 0;
    leaf_reads = 0;
    log_appends = 0;
    log_skips = 0;
    batch_flushes = 0;
    splits = 0;
    merges = 0;
    gc_runs = 0;
    gc_copied = 0;
    gc_skipped = 0;
  }

let to_assoc t =
  [
    ("inserts", t.inserts);
    ("deletes", t.deletes);
    ("searches", t.searches);
    ("scans", t.scans);
    ("dram_hits", t.dram_hits);
    ("leaf_reads", t.leaf_reads);
    ("log_appends", t.log_appends);
    ("log_skips", t.log_skips);
    ("batch_flushes", t.batch_flushes);
    ("splits", t.splits);
    ("merges", t.merges);
    ("gc_runs", t.gc_runs);
    ("gc_copied", t.gc_copied);
    ("gc_skipped", t.gc_skipped);
  ]

let pp ppf t =
  Fmt.pf ppf
    "@[<v>inserts %d deletes %d searches %d scans %d@,\
     dram hits %d leaf reads %d@,\
     log appends %d skips %d@,\
     batch flushes %d splits %d merges %d@,\
     gc runs %d copied %d skipped %d@]"
    t.inserts t.deletes t.searches t.scans t.dram_hits t.leaf_reads
    t.log_appends t.log_skips t.batch_flushes t.splits t.merges t.gc_runs
    t.gc_copied t.gc_skipped
