type t = {
  mutable leaf : int;
  version : Sync.Vlock.t;
  mutable low : int64;
  mutable next : t option;
  mutable prev : t option;
  keys : int64 array;
  vals : int64 array;
  tss : int64 array;
  mutable valid : int;
  mutable unflushed : int;
  mutable epoch : int;
  mutable dead : bool;
}

let create ~nbatch ~leaf ~low =
  {
    leaf;
    version = Sync.Vlock.create ();
    low;
    next = None;
    prev = None;
    keys = Array.make nbatch 0L;
    vals = Array.make nbatch 0L;
    tss = Array.make nbatch 0L;
    valid = 0;
    unflushed = 0;
    epoch = 0;
    dead = false;
  }

let nbatch t = Array.length t.keys

let find t key =
  let n = nbatch t in
  let rec scan i =
    if i >= n then None
    else if t.valid land (1 lsl i) <> 0 && Int64.equal t.keys.(i) key then
      Some i
    else scan (i + 1)
  in
  scan 0

let popcount b =
  let rec go n b = if b = 0 then n else go (n + (b land 1)) (b lsr 1) in
  go 0 b

let unflushed_count t = popcount t.unflushed

let cached_slots t =
  let n = nbatch t in
  let rec collect i acc =
    if i < 0 then acc
    else if t.valid land (1 lsl i) <> 0 && t.unflushed land (1 lsl i) = 0 then
      collect (i - 1) (i :: acc)
    else collect (i - 1) acc
  in
  collect (n - 1) []

let cached_slot t =
  let n = nbatch t in
  let rec scan i =
    if i >= n then -1
    else if t.valid land (1 lsl i) <> 0 && t.unflushed land (1 lsl i) = 0 then i
    else scan (i + 1)
  in
  scan 0

let free_slot t =
  let n = nbatch t in
  let rec scan i =
    if i >= n then None
    else if t.valid land (1 lsl i) = 0 then Some i
    else scan (i + 1)
  in
  scan 0

let unflushed_entries t =
  let n = nbatch t in
  let rec collect i acc =
    if i < 0 then acc
    else if t.unflushed land (1 lsl i) <> 0 then
      collect (i - 1) ((t.keys.(i), t.vals.(i), t.tss.(i)) :: acc)
    else collect (i - 1) acc
  in
  collect (n - 1) []

let set_slot t i ~key ~value ~ts ~epoch =
  t.keys.(i) <- key;
  t.vals.(i) <- value;
  t.tss.(i) <- ts;
  t.valid <- t.valid lor (1 lsl i);
  t.unflushed <- t.unflushed lor (1 lsl i);
  if epoch <> 0 then t.epoch <- t.epoch lor (1 lsl i)
  else t.epoch <- t.epoch land lnot (1 lsl i)

let mark_all_flushed t = t.unflushed <- 0

let clear t =
  t.valid <- 0;
  t.unflushed <- 0;
  t.epoch <- 0

let lock t = Sync.Vlock.lock t.version
let unlock t = Sync.Vlock.unlock t.version
let is_locked t = Sync.Vlock.locked t.version

let dram_bytes ~nbatch =
  (* 8 B compressed header (leaf ptr / lock / epoch bitmap / position in
     the paper's packing) + N_batch 16 B slots, plus chain pointers. *)
  8 + (nbatch * 16) + 24
