(** CCL-BTree: a crash-consistent locality-aware B+-tree (the paper's
    contribution).

    The tree keeps inner nodes and per-leaf buffer nodes in DRAM and 256 B
    leaf nodes in (simulated) persistent memory.  Writes are absorbed by
    the buffer nodes and flushed N_batch+1 at a time into a single XPLine
    write (leaf-node-centric buffering, §3.2); buffered entries are covered
    by per-thread write-ahead logs except for the trigger writes that are
    immediately persisted anyway (write-conservative logging, §3.3); log
    space is reclaimed by an incremental garbage collector that only ever
    appends (locality-aware GC, §3.4).

    Durability contract: when [upsert]/[delete] returns, the operation
    survives any crash — except that a {e trigger write} interrupted
    before its leaf commit may be lost while all previously buffered
    entries are recovered from the WAL (§3.3, paper-specified).

    Keys are [int64] (non-negative for the fixed-size API); value [0L] is
    reserved as the tombstone.  Variable-size keys/values go through the
    [_str] API (§4.4 Optimization #3). *)

type t

val create : ?cfg:Config.t -> Pmem.Device.t -> t
(** Format the device and build an empty tree. *)

val recover : ?cfg:Config.t -> Pmem.Device.t -> t
(** Rebuild the volatile layers from the persistent leaf chain and replay
    the write-ahead logs (§3.3 failure recovery). *)

(** {1 Operations} *)

val upsert : t -> int64 -> int64 -> unit
val delete : t -> int64 -> unit
val search : t -> int64 -> int64 option
val scan : t -> start:int64 -> int -> (int64 * int64) array
(** [scan t ~start n] returns up to [n] key-ordered entries with
    key ≥ [start]. *)

val iter : t -> (int64 -> int64 -> unit) -> unit
(** Visit every live entry in key order (latest buffered versions win). *)

(** {1 Concurrent read-only handles}

    A {!reader} is a per-domain handle for latch-free searches and scans
    that run concurrently with the single writer domain (DESIGN.md §12).
    Reads are optimistic: route through the inner index, read the node,
    then validate the node's seqlock version and the index seqlock — a
    racing writer forces a retry, and after a bounded number of retries
    the reader falls back to a pessimistic [S]-latched read.  Each reader
    owns a {!Pmem.Device.read_view} (private caches and counters, merged
    with the writer's via [Stats.merge]) and an epoch slot that defers
    reuse of merged-away leaves.  Creating a reader is itself safe at any
    time; the handle must only ever be used from one domain. *)

type reader

val reader : t -> reader
val reader_search : reader -> int64 -> int64 option
val reader_scan : reader -> start:int64 -> int -> (int64 * int64) array

val reader_stats : reader -> Tree_stats.t
(** Private per-reader operation counters (searches, DRAM hits, ...). *)

val reader_device : reader -> Pmem.Device.t
(** The reader's device view; its [Stats] merge with the writer's. *)

val reader_retries : reader -> int
(** Validation failures observed (optimistic attempts that were retried
    or demoted to the pessimistic path). *)

val deferred_frees : t -> int
(** Merged-away leaves whose slab reuse is still pinned by a reader
    epoch. *)

(** {1 Concurrent writer handles}

    A {!writer} is a per-domain handle for upserts and deletes that run
    concurrently with other writer handles and with {!reader}s
    (DESIGN.md §13).  Writes use optimistic lock coupling: route
    latch-free, [try_lock] the target node's version lock, validate its
    fence interval under the lock, apply — so disjoint working sets
    never serialize.  Structural modifications prepare under the shared
    [SX] latch and commit with a validate-and-lock CAS on the remembered
    version; after bounded validation failures the op falls back to an
    [S]-latched and finally a fully [X]-latched path, so every write
    terminates.  Each writer owns a private WAL lane and a
    {!Pmem.Device.write_view} (private flush pipeline and counters,
    merged via [Stats.merge]).  A handle must only ever be used from one
    domain; the plain {!upsert}/{!delete} entry points must not run
    concurrently with writer handles (they are the zero-handle fast
    path, not a peer lane), and GC stays with the owning domain. *)

type writer

val writer : ?lane:int -> t -> writer
(** Mint a writer handle.  [?lane] pins the WAL lane (must be
    [< Config.threads]); omitted, lanes are assigned round-robin, and
    minting raises [Invalid_argument] once [Config.threads] handles have
    been assigned.  Concurrent writers MUST use distinct lanes: a lane's
    WAL chunk cursor is unsynchronized, so two live handles sharing one
    would corrupt the log.  Pinning [?lane] may reuse a lane only across
    handles that are never used concurrently (e.g. mint-per-phase). *)

val writer_upsert : writer -> int64 -> int64 -> unit
val writer_delete : writer -> int64 -> unit

val writer_stats : writer -> Tree_stats.t
(** Private per-writer operation counters. *)

val writer_device : writer -> Pmem.Device.t
(** The writer's device view; its [Stats] merge with the parent's. *)

val writer_retries : writer -> int
(** Validation failures observed (optimistic attempts retried or demoted
    to a latched path). *)

val writer_lane : writer -> int

val bulk_load : ?fill:float -> t -> (int64 * int64) array -> unit
(** Bottom-up load of strictly sorted entries into an empty tree: leaves
    are written sequentially at [fill] occupancy (default 0.8), one
    XPLine write each — far cheaper than repeated inserts.
    @raise Invalid_argument on an unsorted array, a zero value, or a
    non-empty tree. *)

(** {1 Variable-size KV} *)

val upsert_str : t -> string -> string -> unit
val search_str : t -> string -> string option
val delete_str : t -> string -> unit

(** {1 GC control (exposed for experiments and tests)} *)

val gc_active : t -> bool
val gc_start : t -> unit
val gc_step : t -> int -> unit
val gc_finish : t -> unit
val gc_naive : t -> unit

(** {1 Maintenance, accounting, introspection} *)

val flush_all : t -> unit
(** Flush every buffer node (clean shutdown / fair end-of-run traffic). *)

val device : t -> Pmem.Device.t
val allocator : t -> Pmalloc.Alloc.t
val stats : t -> Tree_stats.t
val config : t -> Config.t
val dram_bytes : t -> int
val pm_bytes : t -> int
val leaf_bytes : t -> int
val log_live_bytes : t -> int
val log_peak_bytes : t -> int
val buffer_node_count : t -> int
val count_entries : t -> int

val check_invariants : t -> unit
(** Raises [Failure] when a structural invariant is violated (leaf-chain
    key order, fingerprint consistency, fence containment, index
    routing).  Test-suite hook. *)

(** {1 Fault injection (sanitizer mutation tests only)}

    Each kind re-introduces one of the concurrency-protocol bug classes
    the PR-8 review caught by hand, so the rsan mutation tests can assert
    the detector finds them (DESIGN.md §14).  The switches are
    process-global; never arm them outside a sanitizer test. *)

module Fault : sig
  type kind =
    | Stale_merge_cert
        (** [writer_try_merge] certifies its commit [try_upgrade]s
            against versions snapshotted {e after} releasing the vlocks,
            so a complete lock/apply/unlock by another lane in the
            release→upgrade window goes undetected. *)
    | Skip_write_validation
        (** the optimistic write path skips the under-lock fence-interval
            validation, applying to a node its key may no longer belong
            to (stale route, dead node). *)
    | Premature_reclaim
        (** merged-away leaves are reclaimed immediately, ignoring
            reader epoch pins. *)

  val arm : kind -> unit
  val reset : unit -> unit
  val armed : kind -> bool
end
