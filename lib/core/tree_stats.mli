(** Operation counters of the index itself (the device-level traffic
    counters live in {!Pmem.Stats}).

    One mutable record per tree (or hash table), incremented in place on
    the operation paths and never reset by the index; callers snapshot by
    copying fields if they need deltas. *)

type t = {
  mutable inserts : int;
  mutable deletes : int;
  mutable searches : int;
  mutable scans : int;
  mutable dram_hits : int;  (** Reads served from buffer nodes (Table 1). *)
  mutable leaf_reads : int;  (** Reads that had to touch the PM leaf. *)
  mutable log_appends : int;
  mutable log_skips : int;  (** Trigger writes not logged (§3.3). *)
  mutable batch_flushes : int;  (** Leaf batch-write commits. *)
  mutable splits : int;
  mutable merges : int;
  mutable gc_runs : int;  (** Completed garbage-collection cycles. *)
  mutable gc_copied : int;  (** Entries moved B-log -> I-log. *)
  mutable gc_skipped : int;  (** Entries the GC did not need to copy. *)
}

val create : unit -> t
(** A fresh record with every counter at zero. *)

val to_assoc : t -> (string * int) list
(** Every counter as a (name, value) pair — the flat view attribution
    reports diff and print. *)

val pp : Format.formatter -> t -> unit
