(* Sorted parallel arrays keyed by fence key.  [find_le] — the routing
   step of every tree operation — is a closure-free binary search over a
   flat array, with none of the pointer chasing or predicate-closure
   allocation of a balanced map.  Updates shift the tail, which is fine:
   the index only changes on splits and merges. *)

type 'a t = {
  mutable keys : int64 array;
  mutable vals : 'a array;
  mutable len : int;
}

let create () = { keys = [||]; vals = [||]; len = 0 }

(* Index of the first key > [k] (so the answer to find_le is [pos - 1]). *)
let upper_bound t k =
  let lo = ref 0 and hi = ref t.len in
  while !lo < !hi do
    let mid = (!lo + !hi) lsr 1 in
    if Int64.compare t.keys.(mid) k <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let add t k v =
  let pos = upper_bound t k in
  if pos > 0 && Int64.equal t.keys.(pos - 1) k then t.vals.(pos - 1) <- v
  else begin
    if t.len = Array.length t.keys then begin
      let ncap = if t.len = 0 then 8 else 2 * t.len in
      let nkeys = Array.make ncap 0L in
      let nvals = Array.make ncap v in
      Array.blit t.keys 0 nkeys 0 t.len;
      Array.blit t.vals 0 nvals 0 t.len;
      t.keys <- nkeys;
      t.vals <- nvals
    end;
    Array.blit t.keys pos t.keys (pos + 1) (t.len - pos);
    Array.blit t.vals pos t.vals (pos + 1) (t.len - pos);
    t.keys.(pos) <- k;
    t.vals.(pos) <- v;
    t.len <- t.len + 1
  end

let remove t k =
  let pos = upper_bound t k in
  if pos > 0 && Int64.equal t.keys.(pos - 1) k then begin
    Array.blit t.keys pos t.keys (pos - 1) (t.len - pos);
    Array.blit t.vals pos t.vals (pos - 1) (t.len - pos);
    t.len <- t.len - 1
  end

let find_le t k =
  let pos = upper_bound t k in
  if pos = 0 then None else Some t.vals.(pos - 1)

let iter t f =
  for i = 0 to t.len - 1 do
    f t.keys.(i) t.vals.(i)
  done

let cardinal t = t.len

let dram_bytes t =
  (* a fence key and a pointer per entry, stored flat *)
  t.len * 16
