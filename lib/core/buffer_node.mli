(** Volatile buffer nodes (paper Fig 7(a), §3.2).

    One buffer node fronts each persistent leaf.  It holds up to N_batch
    KVs: *unflushed* entries waiting to be written to the leaf in one
    XPLine write, and *cached* entries that were already flushed but are
    retained to serve reads from DRAM.  Per-slot epoch bits drive the
    locality-aware GC; the version word is a {!Sync.Vlock} seqlock
    implementing the optimistic version-lock protocol of §4.4 (odd =
    write-locked): concurrent reader domains snapshot it, read the
    slots, and validate — see DESIGN.md §12. *)

type t = {
  mutable leaf : int;  (** PM address of the backing leaf node. *)
  version : Sync.Vlock.t;
  mutable low : int64;  (** Lower fence key (inclusive). *)
  mutable next : t option;  (** Leaf-order chain. *)
  mutable prev : t option;
  keys : int64 array;
  vals : int64 array;
  tss : int64 array;  (** Log timestamp of each unflushed entry. *)
  mutable valid : int;  (** Bitmask: slot holds a meaningful KV. *)
  mutable unflushed : int;  (** Subset of [valid] not yet in the leaf. *)
  mutable epoch : int;  (** Per-slot epoch bits (GC, §3.4). *)
  mutable dead : bool;
      (** Merged away: the version stays locked forever so optimistic
          readers bounce back to routing; writer-side walkers skip it.
          Written and read only by the writer domain. *)
}

val create : nbatch:int -> leaf:int -> low:int64 -> t
val nbatch : t -> int
val find : t -> int64 -> int option  (** Slot of [key] among valid slots. *)

val unflushed_count : t -> int

val cached_slots : t -> int list
(** Valid but already flushed. *)

val cached_slot : t -> int
(** Lowest valid-but-flushed slot, or -1.  Equals
    [List.hd (cached_slots t)] when one exists, without building the
    list — this sits on the per-upsert fast path. *)

val free_slot : t -> int option
(** An invalid slot, if any. *)

val unflushed_entries : t -> (int64 * int64 * int64) list
(** (key, value, ts) of every unflushed slot. *)

val set_slot :
  t -> int -> key:int64 -> value:int64 -> ts:int64 -> epoch:int -> unit
(** Fill a slot and mark it valid + unflushed with the given epoch bit. *)

val mark_all_flushed : t -> unit
val clear : t -> unit

(** {1 Version lock}

    Writer-side spin acquisition of the node's {!Sync.Vlock}; optimistic
    readers use [Sync.Vlock.read_begin]/[validate] on [version]
    directly. *)

val lock : t -> unit
val unlock : t -> unit
val is_locked : t -> bool

val dram_bytes : nbatch:int -> int
(** Approximate DRAM footprint of one buffer node (memory accounting,
    Table 1 / Fig 18). *)
