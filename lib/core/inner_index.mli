(** Volatile inner-node layer.

    The paper reuses FAST&FAIR's inner nodes placed in DRAM (§4.1) and
    notes they "can be easily replaced by other existing index structure
    implementations"; since the inner layer is volatile and rebuilt on
    recovery, we use a flat sorted array keyed by each buffer node's
    lower fence key (binary-searched, allocation-free routing).
    Routing = greatest fence key ≤ search key. *)

type 'a t

val create : unit -> 'a t
val add : 'a t -> int64 -> 'a -> unit
val remove : 'a t -> int64 -> unit
val find_le : 'a t -> int64 -> 'a option
(** The value with the greatest fence key ≤ the argument. *)

val iter : 'a t -> (int64 -> 'a -> unit) -> unit
val cardinal : 'a t -> int
val dram_bytes : 'a t -> int
(** Approximate DRAM footprint (inner-node memory accounting). *)
