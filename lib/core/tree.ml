module D = Pmem.Device
module Alloc = Pmalloc.Alloc
module Slab = Pmalloc.Slab
module Extent = Pmalloc.Extent
module Wal = Walog.Wal
module Clock = Walog.Clock
module B = Buffer_node
module L = Leaf_node

let tree_magic = 0x43434C2D42545245L (* "CCL-BTRE" *)

(* Write-amplification attribution sites (Obs.Prof): each bracket below
   mirrors an existing device span, stamping every store issued inside it
   so media write-backs — which happen long after the causal store —
   charge to the mechanism that produced them.  Innermost site wins, so
   WAL appends issued from GC show as ["wal-append"], not ["gc"]. *)
let site_leaf_buffer = Pmem.Site.id "leaf-buffer"
let site_smo_split = Pmem.Site.id "smo-split"
let site_smo_merge = Pmem.Site.id "smo-merge"
let site_gc = Pmem.Site.id "gc"
let site_bulk_load = Pmem.Site.id "bulk-load"

type gc_state = { mutable cursor : B.t option; old_epoch : int }

type t = {
  dev : D.t;
  alloc : Alloc.t;
  slab : Slab.t;
  extent : Extent.t;
  wal : Wal.t;
  clock : Clock.t;
  cfg : Config.t;
  index : B.t Inner_index.t;
  head : B.t;
  mutable global_epoch : int;
  mutable gc : gc_state option;
  mutable gc_floor : int;
      (* live log bytes right after the last reclaim: entries still
         buffered cannot be reclaimed, so re-triggering before the log has
         grown well past this floor would make GC spin *)
  stats : Tree_stats.t;
  mutable rr_thread : int;
  fs : Pmem.Flushset.t;
      (* per-commit-scope dirty-line set: one ordered clwb set and a
         single fence per batch/split/merge scope, no fence when the
         scope touched nothing *)
  latch : Sync.Sx.t;
      (* structural-modification latch (DESIGN.md §12): splits/merges run
         under SX so optimistic readers keep going, upgrading to X only
         for the reader-visible link-in/unlink; pessimistic fallback
         readers hold S.  The writer must never hold a node vlock while
         acquiring or upgrading this latch — an S-holder may be spinning
         on that very vlock *)
  iv : Sync.Vlock.t;
      (* seqlock over the inner index: bumped (under X) around every
         add/remove so an optimistic reader that raced the binary search
         re-routes instead of trusting a torn lookup *)
  epochs : Sync.Epoch.t;
      (* reader epochs: merged-away leaves are retired here and freed
         only once no reader can still hold a pre-unlink route to them *)
  next_lane : int Atomic.t;
      (* WAL-lane assignment for writer handles minted without an
         explicit [~lane]; atomic so pools can mint from their domains *)
}

let device t = t.dev
let allocator t = t.alloc
let stats t = t.stats
let config t = t.cfg
let gc_active t = t.gc <> None

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create ?(cfg = Config.default) dev =
  assert (cfg.Config.nbatch >= 1 && cfg.Config.nbatch <= 12);
  let alloc = Alloc.format dev ~chunk_size:cfg.Config.chunk_size in
  let slab = Slab.create alloc Alloc.Leaf ~obj_size:L.size in
  let extent = Extent.create alloc in
  let clock = Clock.create () in
  let wal = Wal.create alloc clock ~threads:cfg.Config.threads in
  let head_leaf = Slab.alloc slab in
  L.init dev head_leaf ~next:0;
  let sb = Alloc.superblock alloc in
  D.store_u64 dev sb tree_magic;
  D.store_u64 dev (sb + 8) (Int64.of_int head_leaf);
  D.persist dev sb 16;
  D.ack_durable dev ~label:"tree.format" sb 16;
  let head = B.create ~nbatch:cfg.Config.nbatch ~leaf:head_leaf ~low:Int64.min_int in
  let index = Inner_index.create () in
  Inner_index.add index Int64.min_int head;
  {
    dev;
    alloc;
    slab;
    extent;
    wal;
    clock;
    cfg;
    index;
    head;
    global_epoch = 0;
    gc = None;
    gc_floor = 0;
    stats = Tree_stats.create ();
    rr_thread = 0;
    fs = Pmem.Flushset.create ();
    latch = Sync.Sx.create ();
    iv = Sync.Vlock.create ();
    epochs = Sync.Epoch.create ();
    next_lane = Atomic.make 0;
  }

(* rsan annotation of a protocol-point access to the data guarded by a
   node's vlock (one atomic load when no Sync.Hook tracer is installed).
   The vlock id names the node in the event stream.  Two latch-free
   probes are deliberately NOT annotated: the writer's routing reads
   (validated by the under-lock fence check, not by a version edge) and
   the post-unlock merge-underflow probe — both are benign by design and
   annotating them would make every storm a false positive. *)
let ann b ~write site =
  Sync.Hook.access ~id:(Sync.Vlock.id b.B.version) ~write ~site

let ann_iv t ~write site = Sync.Hook.access ~id:(Sync.Vlock.id t.iv) ~write ~site

(* Seeded fault injection for sanitizer mutation tests: each kind
   re-introduces one of the protocol bugs the PR-8 review caught, so the
   tests can assert rsan detects the class.  Process-global and
   test-only — never arm outside a sanitizer test. *)
module Fault = struct
  type kind = Stale_merge_cert | Skip_write_validation | Premature_reclaim

  let mask = Atomic.make 0

  let bit = function
    | Stale_merge_cert -> 1
    | Skip_write_validation -> 2
    | Premature_reclaim -> 4

  let arm k = Atomic.set mask (Atomic.get mask lor bit k)
  let reset () = Atomic.set mask 0
  let armed k = Atomic.get mask land bit k <> 0
end

let target_node t key =
  match Inner_index.find_le t.index key with
  | Some b -> b
  | None -> t.head

(* Index updates happen under the X latch; bumping [iv] around them makes
   them detectable by optimistic readers, who validate [iv] alongside the
   node version. *)
let index_add t low b =
  Sync.Vlock.lock t.iv;
  ann_iv t ~write:true "tree.index_add";
  Inner_index.add t.index low b;
  Sync.Vlock.unlock t.iv

let index_remove t low =
  Sync.Vlock.lock t.iv;
  ann_iv t ~write:true "tree.index_remove";
  Inner_index.remove t.index low;
  Sync.Vlock.unlock t.iv

(* ------------------------------------------------------------------ *)
(* Logging                                                             *)
(* ------------------------------------------------------------------ *)

let log_append t ~key ~value ~ts =
  let thread = t.rr_thread in
  t.rr_thread <- (t.rr_thread + 1) mod t.cfg.Config.threads;
  Wal.append t.wal ~thread ~epoch:t.global_epoch ~key ~value ~ts;
  t.stats.Tree_stats.log_appends <- t.stats.Tree_stats.log_appends + 1

(* ------------------------------------------------------------------ *)
(* Batch insertion into leaves (§4.2)                                  *)
(* ------------------------------------------------------------------ *)

(* Dirty-cacheline dedup for one commit scope, via the shared
   {!Pmem.Flushset}: every store marks its lines, and the scope ends with
   one address-ordered clwb set plus a single fence — or no fence at all
   when nothing was touched, so tombstone-only batches and update-free
   split scopes emit no empty sfence.  Unlike the old per-leaf bitmask,
   the set spans leaves, letting a split's new-right-leaf write and the
   left leaf's in-place updates share one fence. *)
let touch t addr len = Pmem.Flushset.touch t.fs addr len
let flush_touched t = Pmem.Flushset.commit t.fs t.dev

let max_ts pending =
  List.fold_left
    (fun acc (_, _, ts) -> if Int64.compare ts acc > 0 then ts else acc)
    0L pending

(* Apply [pending] (unique keys; value 0 = tombstone) to the leaf behind
   [b], splitting when it overflows.  Persistence protocol per §4.2:
   data-region stores, flush, fence; then one metadata commit (bitmap and
   next pointer share an atomic 8 B word), flush, fence.

   Locking: the caller must NOT hold [b]'s version lock.  Each branch
   takes it internally just around its reader-visible leaf mutations, so
   the split/merge paths below are free to take the SX latch (never while
   holding a vlock — see the field comment on [latch]).  On return [b]
   may be dead (merged into its left sibling); callers that keep touching
   [b] must check [b.B.dead] first. *)
let rec leaf_apply ?(allow_merge = true) t b ~pending =
  let dev = t.dev in
  let leaf = b.B.leaf in
  let ts = max_ts pending in
  let bm = L.bitmap dev leaf in
  let removed = ref 0 in
  let updates = ref [] in
  let added = ref [] in
  List.iter
    (fun (k, v, _) ->
      match L.find dev leaf k with
      | Some i ->
        if Int64.equal v 0L then removed := !removed lor (1 lsl i)
        else updates := (i, v) :: !updates
      | None -> if not (Int64.equal v 0L) then added := (k, v) :: !added)
    pending;
  let free = L.free_slots dev leaf in
  let n_removed =
    let rec pop n b = if b = 0 then n else pop (n + (b land 1)) (b lsr 1) in
    pop 0 !removed
  in
  if
    List.length !added > List.length free
    && List.length !added <= List.length free + n_removed
  then begin
    (* Tombstones free enough slots, but a freed slot is only reusable
       after its removal is committed: apply removals/updates first, then
       run the additions as a second normal batch. *)
    let tombstones, additions =
      List.partition (fun (_, v, _) -> Int64.equal v 0L) pending
    in
    let upd, adds =
      List.partition (fun (k, _, _) -> L.find dev leaf k <> None) additions
    in
    leaf_apply ~allow_merge:false t b ~pending:(tombstones @ upd);
    if adds <> [] then leaf_apply ~allow_merge t b ~pending:adds
  end
  else if List.length !added <= List.length free then begin
    (* normal batch insertion; the vlock covers every leaf store so a
       concurrent optimistic reader of [b] fails validation instead of
       returning a half-applied batch.  The handler keeps a Power_failure
       from unwinding with the vlock held, which would strand concurrent
       readers mid-crash-test. *)
    B.lock b;
    ann b ~write:true "tree.batch";
    (try
       D.span_begin dev "tree.batch_flush";
       D.site_enter dev site_leaf_buffer;
       List.iter
         (fun (i, v) ->
           D.store_u64 dev (L.slot_addr leaf i + 8) v;
           touch t (L.slot_addr leaf i + 8) 8)
         !updates;
       let added_bits = ref 0 in
       let fps = ref [] in
       List.iteri
         (fun j (k, v) ->
           let i = List.nth free j in
           L.store_slot dev leaf i ~key:k ~value:v;
           touch t (L.slot_addr leaf i) 16;
           added_bits := !added_bits lor (1 lsl i);
           fps := (i, k) :: !fps)
         !added;
       (* a tombstone-only batch touches no data line: no fence needed
          before the metadata commit below, which fences on its own *)
       flush_touched t;
       List.iter (fun (i, k) -> L.store_fingerprint dev leaf i k) !fps;
       L.store_timestamp dev leaf ts;
       let new_bm = bm land lnot !removed lor !added_bits in
       L.store_meta_word dev leaf ~bitmap:new_bm ~next:(L.next dev leaf);
       D.persist dev leaf 32;
       D.ack_durable dev ~label:"tree.batch" leaf 32;
       t.stats.Tree_stats.batch_flushes <-
         t.stats.Tree_stats.batch_flushes + 1;
       D.site_exit dev;
       D.span_end dev "tree.batch_flush"
     with e ->
       B.unlock b;
       raise e);
    B.unlock b;
    if allow_merge && L.valid_count dev leaf < L.slots / 2 then try_merge t b
  end
  else split_apply t b ~pending ~ts

(* Logless split (§4.2): the fully written new right leaf becomes visible
   through a single atomic metadata commit on the old leaf.

   Latch protocol (DESIGN.md §12): the expensive phase — computing the
   union and writing the whole new right leaf — runs under SX, because
   that leaf is unreachable until step 3 and concurrent readers can keep
   searching.  The latch upgrades to X before any reader-visible mutation
   (in-place left updates, metadata commit, chain/index link-in); the
   upgrade must happen before taking [b]'s vlock, never after, or a
   pessimistic S-reader spinning on that vlock would deadlock the
   upgrade. *)
and split_apply t b ~pending ~ts =
  let dev = t.dev in
  Sync.Sx.acquire t.latch Sync.Sx.SX;
  (* exception path (Power_failure in a crash sweep): release whatever is
     held so concurrent reader domains are not stranded on a latch the
     abandoned writer will never drop *)
  let mode = ref Sync.Sx.SX in
  let latched = ref true in
  let vheld = ref false in
  try
    D.span_begin dev "tree.split";
    D.site_enter dev site_smo_split;
    let leaf = b.B.leaf in
  (* final content = existing entries with pending applied *)
  let tbl = Hashtbl.create 32 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) (L.entries dev leaf);
  List.iter
    (fun (k, v, _) ->
      if Int64.equal v 0L then Hashtbl.remove tbl k
      else Hashtbl.replace tbl k v)
    pending;
  let union =
    List.sort (fun (a, _) (b, _) -> Int64.compare a b)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  let n = List.length union in
  assert (n > L.slots && n <= 2 * L.slots);
  let left_n = n / 2 in
  let rec split_at i acc = function
    | rest when i = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> split_at (i - 1) (x :: acc) rest
  in
  let left, right = split_at left_n [] union in
  let split_key = fst (List.nth left (left_n - 1)) in
  let right_low = fst (List.hd right) in
  (* 1. write the new right leaf — only its written prefix is dirty, so
     only those lines join the flush set (the slab may hand back a leaf
     whose tail lines are already persisted; re-flushing them is the
     redundant-clwb bug pmsan flagged here) *)
  let new_leaf = Slab.alloc t.slab in
  let right_bits = ref 0 in
  List.iteri
    (fun i (k, v) ->
      L.store_slot dev new_leaf i ~key:k ~value:v;
      L.store_fingerprint dev new_leaf i k;
      right_bits := !right_bits lor (1 lsl i))
    right;
  L.store_timestamp dev new_leaf ts;
  L.store_meta_word dev new_leaf ~bitmap:!right_bits ~next:(L.next dev leaf);
  let right_bytes = 32 + (16 * List.length right) in
  touch t new_leaf right_bytes;
  (* 2. in-place value updates for keys staying left.  These share one
     fence with step 1: the new leaf is unreachable until step 3's
     metadata commit, and the updates are idempotent and WAL-covered, so
     no ordering between steps 1 and 2 is required — only both-before-3,
     which the single fence below provides.  Reader-visible from here:
     upgrade to X, then vlock [b] (in that order). *)
  Sync.Sx.upgrade t.latch;
  mode := Sync.Sx.X;
  B.lock b;
  vheld := true;
  ann b ~write:true "tree.split";
  let keep_bits = ref 0 in
  let bm = L.bitmap dev leaf in
  for i = 0 to L.slots - 1 do
    if bm land (1 lsl i) <> 0 then begin
      let k = L.key_at dev leaf i in
      if Int64.compare k split_key <= 0 then begin
        match List.assoc_opt k union with
        | Some v ->
          keep_bits := !keep_bits lor (1 lsl i);
          if not (Int64.equal v (L.value_at dev leaf i)) then begin
            D.store_u64 dev (L.slot_addr leaf i + 8) v;
            touch t (L.slot_addr leaf i + 8) 8
          end
        | None -> () (* deleted by a tombstone in pending *)
      end
    end
  done;
  flush_touched t;
  D.ack_durable dev ~label:"tree.split" new_leaf right_bytes;
  (* 3. atomic metadata commit: drop moved slots, link the new leaf *)
  L.store_timestamp dev leaf ts;
  L.store_meta_word dev leaf ~bitmap:!keep_bits ~next:new_leaf;
  D.persist dev leaf 32;
  D.ack_durable dev ~label:"tree.split" leaf 32;
  t.stats.Tree_stats.splits <- t.stats.Tree_stats.splits + 1;
  t.stats.Tree_stats.batch_flushes <- t.stats.Tree_stats.batch_flushes + 1;
  (* 4. DRAM bookkeeping: new buffer node, chain link, index entry *)
  let rb = B.create ~nbatch:t.cfg.Config.nbatch ~leaf:new_leaf ~low:right_low in
  rb.B.next <- b.B.next;
  rb.B.prev <- Some b;
  (match b.B.next with Some nx -> nx.B.prev <- Some rb | None -> ());
  b.B.next <- Some rb;
  index_add t right_low rb;
  (* prune buffered slots whose keys moved right *)
  for i = 0 to B.nbatch b - 1 do
    if
      b.B.valid land (1 lsl i) <> 0
      && Int64.compare b.B.keys.(i) split_key > 0
    then begin
      b.B.valid <- b.B.valid land lnot (1 lsl i);
      b.B.unflushed <- b.B.unflushed land lnot (1 lsl i);
      b.B.epoch <- b.B.epoch land lnot (1 lsl i)
    end
  done;
  B.unlock b;
  vheld := false;
  Sync.Sx.release t.latch Sync.Sx.X;
  latched := false;
  (* 5. pending additions left of the split point go through a normal
     batch insertion (they are covered by the WAL if they were logged) *)
  let added_left =
    List.filter
      (fun (k, v, _) ->
        Int64.compare k split_key <= 0
        && (not (Int64.equal v 0L))
        && L.find dev leaf k = None)
      pending
  in
  D.site_exit dev;
  if added_left <> [] then leaf_apply t b ~pending:added_left;
  D.span_end dev "tree.split"
  with e ->
    if !vheld then B.unlock b;
    if !latched then Sync.Sx.release t.latch !mode;
    raise e

(* Merge an underutilized leaf into its left sibling (§4.2).

   Latch protocol mirrors the split: copying [b]'s entries into [p]'s
   free slots runs under SX — those slots are outside [p]'s bitmap, so
   the copies are invisible and readers proceed.  The upgrade to X covers
   the metadata commit, the chain unlink and the index removal.  [b]'s
   vlock is taken and never released: a reader still holding a
   pre-unlink route to [b] bounces off the odd version (bounded
   [read_begin]) and re-routes, and its leaf is retired to the epoch
   guard so the slab slot is only reused once no such reader remains. *)
and try_merge t b =
  match b.B.prev with
  | None -> ()
  | Some p ->
    let dev = t.dev in
    let cnt = L.valid_count dev b.B.leaf in
    let free_p = List.length (L.free_slots dev p.B.leaf) in
    if cnt > free_p then ()
    else begin
      Sync.Sx.acquire t.latch Sync.Sx.SX;
      let mode = ref Sync.Sx.SX in
      let latched = ref true in
      let pheld = ref false in
      try
      D.span_begin dev "tree.merge";
      D.site_enter dev site_smo_merge;
      let entries = L.entries dev b.B.leaf in
      let bits = ref 0 in
      let fps = ref [] in
      let free = L.free_slots dev p.B.leaf in
      List.iteri
        (fun j (k, v) ->
          let i = List.nth free j in
          L.store_slot dev p.B.leaf i ~key:k ~value:v;
          touch t (L.slot_addr p.B.leaf i) 16;
          bits := !bits lor (1 lsl i);
          fps := (i, k) :: !fps)
        entries;
      (* an empty right leaf moves no slots: no data fence, the metadata
         commit below orders itself *)
      flush_touched t;
      List.iter (fun (i, k) -> L.store_fingerprint dev p.B.leaf i k) !fps;
      (* reader-visible from here: [p]'s bitmap grows, the chain and the
         index drop [b] *)
      Sync.Sx.upgrade t.latch;
      mode := Sync.Sx.X;
      B.lock p;
      pheld := true;
      ann p ~write:true "tree.merge.parent";
      (* [b]'s seal is permanent — on the exception path it stays locked,
         which is exactly what dead nodes look like anyway *)
      B.lock b;
      ann b ~write:true "tree.merge.victim";
      b.B.dead <- true;
      Sync.Hook.seal ~id:(Sync.Vlock.id b.B.version);
      (* Do NOT raise p's flush timestamp to b's: p may still hold
         buffered entries whose log records carry timestamps between the
         two, and recovery skips log entries older than the leaf
         timestamp.  Replaying b's already-applied records into p is
         merely idempotent. *)
      L.store_meta_word dev p.B.leaf
        ~bitmap:(L.bitmap dev p.B.leaf lor !bits)
        ~next:(L.next dev b.B.leaf);
      D.persist dev p.B.leaf 32;
      D.ack_durable dev ~label:"tree.merge" p.B.leaf 32;
      p.B.next <- b.B.next;
      (match b.B.next with Some nx -> nx.B.prev <- Some p | None -> ());
      index_remove t b.B.low;
      t.stats.Tree_stats.merges <- t.stats.Tree_stats.merges + 1;
      B.unlock p;
      pheld := false;
      (* [b] stays locked: sealed forever *)
      D.site_exit dev;
      D.span_end dev "tree.merge";
      Sync.Sx.release t.latch Sync.Sx.X;
      latched := false;
      Sync.Epoch.retire
        ~obj:(Sync.Vlock.id b.B.version)
        t.epochs
        (fun () -> Slab.free t.slab b.B.leaf);
      if Fault.armed Fault.Premature_reclaim then Sync.Epoch.force t.epochs
      with e ->
        if !pheld then B.unlock p;
        if !latched then Sync.Sx.release t.latch !mode;
        raise e
    end

(* ------------------------------------------------------------------ *)
(* Garbage collection (§3.4)                                           *)
(* ------------------------------------------------------------------ *)

let gc_start t =
  let old_epoch = t.global_epoch in
  t.global_epoch <- 1 - t.global_epoch;
  t.gc <- Some { cursor = Some t.head; old_epoch }

(* Scan up to [n] buffer nodes, copying entries that are still unflushed
   and were logged before the epoch flip into the I-log.  Entries flushed
   to leaves or (re)written during this GC round are skipped. *)
let gc_step t n =
  match t.gc with
  | None -> ()
  | Some gc ->
    let rec go n =
      if n > 0 then begin
        match gc.cursor with
        | None ->
          D.span_begin t.dev "tree.gc_reclaim";
          D.site_enter t.dev site_gc;
          Wal.reclaim_epoch t.wal ~epoch:gc.old_epoch;
          t.gc <- None;
          t.gc_floor <- Wal.live_bytes t.wal;
          t.stats.Tree_stats.gc_runs <- t.stats.Tree_stats.gc_runs + 1;
          D.site_exit t.dev;
          D.span_end t.dev "tree.gc_reclaim"
        | Some b when b.B.dead ->
          (* the cursor can be left parked on a node a later merge killed;
             its version is sealed, so step over it *)
          gc.cursor <- b.B.next;
          go n
        | Some b ->
          B.lock b;
          ann b ~write:true "tree.gc";
          (* One node's surviving entries form one I-log group: they
             share a single clwb set and tail fence instead of a
             flush+fence per record.  Crash-safe because the B-log
             originals stay replayable until [reclaim_epoch], which only
             runs after every group has committed. *)
          D.site_enter t.dev site_gc;
          (try
             Wal.with_group t.wal (fun () ->
              for i = 0 to B.nbatch b - 1 do
                let bit = 1 lsl i in
                if b.B.unflushed land bit <> 0 then begin
                  let slot_epoch = if b.B.epoch land bit <> 0 then 1 else 0 in
                  if slot_epoch = gc.old_epoch then begin
                    let ts = Clock.next t.clock in
                    log_append t ~key:b.B.keys.(i) ~value:b.B.vals.(i) ~ts;
                    b.B.tss.(i) <- ts;
                    if t.global_epoch <> 0 then b.B.epoch <- b.B.epoch lor bit
                    else b.B.epoch <- b.B.epoch land lnot bit;
                    t.stats.Tree_stats.gc_copied <-
                      t.stats.Tree_stats.gc_copied + 1
                  end
                  else
                    t.stats.Tree_stats.gc_skipped <-
                      t.stats.Tree_stats.gc_skipped + 1
                end
              done)
           with e ->
             D.site_exit t.dev;
             B.unlock b;
             raise e);
          D.site_exit t.dev;
          B.unlock b;
          gc.cursor <- b.B.next;
          go (n - 1)
      end
    in
    go n

let gc_finish t =
  while t.gc <> None do
    gc_step t max_int
  done

(* Stop-the-world strategy (Fig 9(a)): flush every buffer node to its
   leaf — random XPLine writes — then reclaim all logs. *)
let gc_naive t =
  D.span_begin t.dev "tree.gc_naive";
  D.site_enter t.dev site_gc;
  let rec walk = function
    | None -> ()
    | Some b ->
      let nx = b.B.next in
      (if b.B.unflushed <> 0 then begin
         leaf_apply t b ~pending:(B.unflushed_entries b);
         (* [b] may have merged away inside leaf_apply; its sealed vlock
            must not be re-taken, and a dead node's buffer is moot *)
         if not b.B.dead then begin
           B.lock b;
           ann b ~write:true "tree.flush_mark";
           B.mark_all_flushed b;
           B.unlock b
         end
       end);
      walk nx
  in
  walk (Some t.head);
  Wal.reclaim_epoch t.wal ~epoch:0;
  Wal.reclaim_epoch t.wal ~epoch:1;
  t.gc_floor <- 0;
  t.stats.Tree_stats.gc_runs <- t.stats.Tree_stats.gc_runs + 1;
  D.site_exit t.dev;
  D.span_end t.dev "tree.gc_naive"

let gc_trigger_reached t =
  let leaf_bytes = Slab.used_bytes t.slab in
  let live = Wal.live_bytes t.wal in
  leaf_bytes > 0
  && float_of_int live > t.cfg.Config.th_log *. float_of_int leaf_bytes
  (* entries still buffered survive a GC cycle; wait until the log has
     grown meaningfully past what the previous cycle could reclaim *)
  && live > t.gc_floor + (t.gc_floor / 2)

let maybe_gc t =
  match t.cfg.Config.gc_strategy with
  | Config.Disabled -> ()
  | Config.Naive -> if gc_trigger_reached t then gc_naive t
  | Config.Locality_aware ->
    if t.gc <> None then gc_step t t.cfg.Config.gc_step_nodes
    else if gc_trigger_reached t then gc_start t

(* ------------------------------------------------------------------ *)
(* Insert / delete (§3.2, §3.3)                                        *)
(* ------------------------------------------------------------------ *)

let oldest_slot b =
  let best = ref 0 and best_ts = ref Int64.max_int in
  for i = 0 to B.nbatch b - 1 do
    if Int64.compare b.B.tss.(i) !best_ts < 0 then begin
      best := i;
      best_ts := b.B.tss.(i)
    end
  done;
  !best

(* The vlock is held only around the buffer-slot mutations (so optimistic
   readers never see a torn key/value pair), never across [leaf_apply]:
   the split/merge paths acquire the SX latch, and holding a vlock there
   would deadlock against a pessimistic S-reader spinning on it.  The
   branch decision itself needs no lock — this is the single writer
   domain, and readers only validate. *)
let upsert_raw t key value =
  D.add_user_bytes t.dev 16;
  let b = target_node t key in
  let ts = Clock.next t.clock in
  (if not t.cfg.Config.buffering then
     (* Base ablation: write-through, one (random) leaf write per upsert *)
     leaf_apply t b ~pending:[ (key, value, ts) ]
   else begin
     match B.find b key with
     | Some i ->
       (* in-buffer update, in place (keys stay unique per buffer node) *)
       log_append t ~key ~value ~ts;
       B.lock b;
       ann b ~write:true "tree.upsert_buffer";
       B.set_slot b i ~key ~value ~ts ~epoch:t.global_epoch;
       B.unlock b
     | None -> (
       match B.free_slot b with
       | Some i ->
         log_append t ~key ~value ~ts;
         B.lock b;
         ann b ~write:true "tree.upsert_buffer";
         B.set_slot b i ~key ~value ~ts ~epoch:t.global_epoch;
         B.unlock b
       | None ->
         let ci = B.cached_slot b in
         if ci >= 0 then begin
           (* evict a read-cache entry *)
           log_append t ~key ~value ~ts;
           B.lock b;
           ann b ~write:true "tree.upsert_buffer";
           B.set_slot b ci ~key ~value ~ts ~epoch:t.global_epoch;
           B.unlock b
         end
         else begin
           (* Trigger write: flush the whole buffer plus the incoming KV
              in one XPLine write; conservative logging skips the WAL.
              Tombstones are logged even here: recovery rebuilds fence
              keys from leaf minima, so a key can re-route to a sibling
              leaf after a crash, and only the log can then prove the
              delete happened (an unlogged trigger-delete could let a
              stale logged version resurrect). *)
           if t.cfg.Config.conservative_logging && not (Int64.equal value 0L)
           then
             t.stats.Tree_stats.log_skips <-
               t.stats.Tree_stats.log_skips + 1
           else log_append t ~key ~value ~ts;
           let pending = (key, value, ts) :: B.unflushed_entries b in
           leaf_apply t b ~pending;
           (* Readers are consistent in the window before the buffer
              bookkeeping below: they check the buffer before the leaf,
              and both now hold current values for every flushed key. *)
           if not b.B.dead then begin
             B.lock b;
             ann b ~write:true "tree.flush_mark";
             B.mark_all_flushed b;
             (* retain the incoming KV as a cached entry, evicting the
                stalest slot — unless a split moved its key out of this
                node's fence interval *)
             let within_fence =
               match b.B.next with
               | Some nx -> Int64.compare key nx.B.low < 0
               | None -> true
             in
             if within_fence then begin
               let i = oldest_slot b in
               b.B.keys.(i) <- key;
               b.B.vals.(i) <- value;
               b.B.tss.(i) <- ts;
               b.B.valid <- b.B.valid lor (1 lsl i);
               b.B.unflushed <- b.B.unflushed land lnot (1 lsl i);
               b.B.epoch <- b.B.epoch land lnot (1 lsl i)
             end;
             B.unlock b
           end
         end)
   end);
  maybe_gc t

let upsert t key value =
  if Int64.equal value 0L then
    invalid_arg "Tree.upsert: value 0 is reserved (tombstone)";
  t.stats.Tree_stats.inserts <- t.stats.Tree_stats.inserts + 1;
  upsert_raw t key value

let delete t key =
  t.stats.Tree_stats.deletes <- t.stats.Tree_stats.deletes + 1;
  upsert_raw t key 0L

(* ------------------------------------------------------------------ *)
(* Queries (§4.3)                                                      *)
(* ------------------------------------------------------------------ *)

let search t key =
  t.stats.Tree_stats.searches <- t.stats.Tree_stats.searches + 1;
  let b = target_node t key in
  match B.find b key with
  | Some i ->
    t.stats.Tree_stats.dram_hits <- t.stats.Tree_stats.dram_hits + 1;
    let v = b.B.vals.(i) in
    if Int64.equal v 0L then None else Some v
  | None -> (
    t.stats.Tree_stats.leaf_reads <- t.stats.Tree_stats.leaf_reads + 1;
    match L.find t.dev b.B.leaf key with
    | Some i -> Some (L.value_at t.dev b.B.leaf i)
    | None -> None)

(* Entries of one node: leaf entries overridden by buffered entries
   (buffer nodes always hold the latest versions); tombstones hide.
   Parameterized over the device so concurrent readers can pass their
   own read view. *)
let node_entries_dev dev b =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (k, v) -> Hashtbl.replace tbl k v)
    (L.entries dev b.B.leaf);
  for i = 0 to B.nbatch b - 1 do
    if b.B.valid land (1 lsl i) <> 0 then
      Hashtbl.replace tbl b.B.keys.(i) b.B.vals.(i)
  done;
  let items =
    Hashtbl.fold
      (fun k v acc -> if Int64.equal v 0L then acc else (k, v) :: acc)
      tbl []
  in
  List.sort (fun (a, _) (b, _) -> Int64.compare a b) items

let node_entries t b = node_entries_dev t.dev b

let scan t ~start n =
  t.stats.Tree_stats.scans <- t.stats.Tree_stats.scans + 1;
  let acc = ref [] in
  let count = ref 0 in
  let rec walk = function
    | None -> ()
    | Some b when !count >= n -> ignore b
    | Some b ->
      List.iter
        (fun (k, v) ->
          if !count < n && Int64.compare k start >= 0 then begin
            acc := (k, v) :: !acc;
            incr count
          end)
        (node_entries t b);
      if !count < n then walk b.B.next
  in
  walk (Some (target_node t start));
  Array.of_list (List.rev !acc)

(* ------------------------------------------------------------------ *)
(* Variable-size KV API (§4.4 Optimization #3)                          *)
(* ------------------------------------------------------------------ *)

let upsert_str t key value =
  D.add_user_bytes t.dev (String.length key + String.length value - 16);
  (* the fixed-size path adds 16 below; account the true payload size *)
  let k = Indirect.encode_key key in
  let v = Indirect.encode_value t.dev t.extent value in
  t.stats.Tree_stats.inserts <- t.stats.Tree_stats.inserts + 1;
  upsert_raw t k v

let search_str t key =
  Option.map
    (Indirect.decode_value t.dev)
    (search t (Indirect.encode_key key))

let delete_str t key = delete t (Indirect.encode_key key)

let iter t f =
  let rec walk = function
    | None -> ()
    | Some b ->
      List.iter (fun (k, v) -> f k v) (node_entries t b);
      walk b.B.next
  in
  walk (Some t.head)

(* Bottom-up bulk load of a sorted key/value array into an empty tree:
   leaves are written sequentially at [fill] occupancy (one XPLine write
   each — ideal locality), the chain is linked left to right, and the
   volatile layers are built as we go.  The final state is identical to
   what inserts would produce, at a fraction of the PM traffic. *)
let bulk_load ?(fill = 0.8) t entries =
  let empty =
    t.head.B.next = None
    && t.head.B.valid = 0
    && L.bitmap t.dev t.head.B.leaf = 0
  in
  if not empty then invalid_arg "Tree.bulk_load: tree is not empty";
  let n = Array.length entries in
  if n > 0 then begin
    let dev = t.dev in
    let per_leaf = max 1 (min L.slots (int_of_float (fill *. float_of_int L.slots))) in
    Array.iteri
      (fun i (k, v) ->
        if Int64.equal v 0L then
          invalid_arg "Tree.bulk_load: value 0 is reserved";
        if i > 0 && Int64.compare (fst entries.(i - 1)) k >= 0 then
          invalid_arg "Tree.bulk_load: entries must be strictly sorted")
      entries;
    let ts = Clock.next t.clock in
    D.site_enter dev site_bulk_load;
    (* persist only a leaf's written prefix: the tail lines of a fresh
       slab object were never stored to, and flushing them would be pure
       redundant-clwb waste *)
    let persist_prefix leaf count = D.persist dev leaf (32 + (16 * count)) in
    let rec build i prev_node prev_count =
      if i < n then begin
        let count = min per_leaf (n - i) in
        let leaf, node =
          if i = 0 then (t.head.B.leaf, t.head)
          else begin
            let leaf = Slab.alloc t.slab in
            let node =
              B.create ~nbatch:t.cfg.Config.nbatch ~leaf
                ~low:(fst entries.(i))
            in
            node.B.prev <- Some prev_node;
            prev_node.B.next <- Some node;
            index_add t node.B.low node;
            (leaf, node)
          end
        in
        let bits = ref 0 in
        for j = 0 to count - 1 do
          let k, v = entries.(i + j) in
          L.store_slot dev leaf j ~key:k ~value:v;
          L.store_fingerprint dev leaf j k;
          bits := !bits lor (1 lsl j)
        done;
        L.store_timestamp dev leaf ts;
        L.store_meta_word dev leaf ~bitmap:!bits ~next:0;
        (* link the previous leaf to this one with its final metadata *)
        if i > 0 then begin
          L.store_meta_word dev prev_node.B.leaf
            ~bitmap:(L.bitmap dev prev_node.B.leaf)
            ~next:leaf;
          persist_prefix prev_node.B.leaf prev_count
        end;
        build (i + count) node count
      end
      else persist_prefix prev_node.B.leaf prev_count
    in
    build 0 t.head 0;
    D.site_exit dev;
    D.add_user_bytes dev (16 * n);
    t.stats.Tree_stats.inserts <- t.stats.Tree_stats.inserts + n
  end

(* ------------------------------------------------------------------ *)
(* Maintenance and accounting                                          *)
(* ------------------------------------------------------------------ *)

let flush_all t =
  let rec walk = function
    | None -> ()
    | Some b ->
      let nx = b.B.next in
      if b.B.unflushed <> 0 then begin
        leaf_apply t b ~pending:(B.unflushed_entries b);
        if not b.B.dead then begin
          B.lock b;
          ann b ~write:true "tree.flush_mark";
          B.mark_all_flushed b;
          B.unlock b
        end
      end;
      walk nx
  in
  walk (Some t.head);
  (* run any epoch-deferred leaf frees that are ripe *)
  Sync.Epoch.flush t.epochs

let buffer_node_count t =
  let rec go n = function None -> n | Some b -> go (n + 1) b.B.next in
  go 0 (Some t.head)

let dram_bytes t =
  Inner_index.dram_bytes t.index
  + (buffer_node_count t * B.dram_bytes ~nbatch:t.cfg.Config.nbatch)

let pm_bytes t = Alloc.allocated_bytes t.alloc
let leaf_bytes t = Slab.used_bytes t.slab
let log_live_bytes t = Wal.live_bytes t.wal
let log_peak_bytes t = Wal.peak_live_bytes t.wal

let count_entries t =
  let rec go n = function
    | None -> n
    | Some b -> go (n + List.length (node_entries t b)) b.B.next
  in
  go 0 (Some t.head)

(* Structural invariants, used by the test-suite:
   - adjacent leaves are key-ordered (all keys left < all keys right),
   - fingerprints match the keys of valid slots,
   - buffered keys fall inside their node's fence interval,
   - the index routes every node's low fence to that node. *)
let check_invariants t =
  let dev = t.dev in
  let fail fmt = Fmt.kstr failwith fmt in
  let rec walk prev_max = function
    | None -> ()
    | Some b ->
      let leaf = b.B.leaf in
      let entries = L.entries dev leaf in
      let keys = List.map fst entries in
      (match (prev_max, keys) with
      | Some pm, _ :: _ ->
        let mn = List.fold_left min (List.hd keys) keys in
        if Int64.compare pm mn >= 0 then
          fail "leaf order violated: %Ld >= %Ld" pm mn
      | _ -> ());
      let bm = L.bitmap dev leaf in
      for i = 0 to L.slots - 1 do
        if bm land (1 lsl i) <> 0 then begin
          let k = L.key_at dev leaf i in
          if D.load_u8 dev (leaf + 16 + i) <> L.fingerprint k then
            fail "fingerprint mismatch at slot %d" i
        end
      done;
      let hi =
        match b.B.next with Some nx -> Some nx.B.low | None -> None
      in
      for i = 0 to B.nbatch b - 1 do
        if b.B.valid land (1 lsl i) <> 0 then begin
          let k = b.B.keys.(i) in
          if Int64.compare k b.B.low < 0 then
            fail "buffered key %Ld below fence %Ld" k b.B.low;
          match hi with
          | Some h when Int64.compare k h >= 0 ->
            fail "buffered key %Ld beyond next fence %Ld" k h
          | _ -> ()
        end
      done;
      (match Inner_index.find_le t.index b.B.low with
      | Some b' when b' == b -> ()
      | _ ->
        if keys <> [] || b == t.head then
          fail "index does not route fence %Ld to its node" b.B.low);
      let max_here =
        List.fold_left
          (fun acc k -> if Int64.compare k acc > 0 then k else acc)
          (Option.value prev_max ~default:Int64.min_int)
          keys
      in
      walk (Some max_here) b.B.next
  in
  walk None (Some t.head)

(* ------------------------------------------------------------------ *)
(* Recovery (§3.3)                                                     *)
(* ------------------------------------------------------------------ *)

let recover_body ~cfg dev =
  let alloc = Alloc.attach dev in
  let slab = Slab.attach alloc Alloc.Leaf ~obj_size:L.size in
  let extent = Extent.attach alloc in
  let clock = Clock.create () in
  let sb = Alloc.superblock alloc in
  if D.load_u64 dev sb <> tree_magic then
    invalid_arg "Tree.recover: no CCL-BTree on this device";
  let head_leaf = Int64.to_int (D.load_u64 dev (sb + 8)) in
  let index = Inner_index.create () in
  let stats = Tree_stats.create () in
  (* 1. rebuild the volatile layers by walking the persistent leaf chain *)
  let max_leaf_ts = ref 0L in
  let head = B.create ~nbatch:cfg.Config.nbatch ~leaf:head_leaf ~low:Int64.min_int in
  Inner_index.add index Int64.min_int head;
  let rec walk node =
    Slab.mark_used slab node.B.leaf;
    let lts = L.timestamp dev node.B.leaf in
    if Int64.unsigned_compare lts !max_leaf_ts > 0 then max_leaf_ts := lts;
    List.iter
      (fun (k, v) ->
        ignore k;
        Indirect.mark_used dev extent v)
      (L.entries dev node.B.leaf);
    let nx = L.next dev node.B.leaf in
    if nx <> 0 then begin
      let low =
        match L.entries dev nx with
        | [] -> None
        | (k0, _) :: rest ->
          Some (List.fold_left (fun a (k, _) -> min a k) k0 rest)
      in
      match low with
      | Some low ->
        let nb = B.create ~nbatch:cfg.Config.nbatch ~leaf:nx ~low in
        nb.B.prev <- Some node;
        node.B.next <- Some nb;
        Inner_index.add index low nb;
        walk nb
      | None ->
        (* empty leaf: keep it in the chain (scans pass through), no
           index entry needed since it can serve no key *)
        let nb =
          B.create ~nbatch:cfg.Config.nbatch ~leaf:nx ~low:Int64.max_int
        in
        nb.B.prev <- Some node;
        node.B.next <- Some nb;
        walk nb
    end
  in
  walk head;
  let t =
    {
      dev;
      alloc;
      slab;
      extent;
      wal = Wal.create alloc clock ~threads:cfg.Config.threads;
      clock;
      cfg;
      index;
      head;
      global_epoch = 0;
      gc = None;
      gc_floor = 0;
      stats;
      rr_thread = 0;
      fs = Pmem.Flushset.create ();
      latch = Sync.Sx.create ();
      iv = Sync.Vlock.create ();
      epochs = Sync.Epoch.create ();
      next_lane = Atomic.make 0;
    }
  in
  (* 2. replay both epochs' logs in timestamp order.

     An entry is already covered by its leaf when the key is present and
     the entry predates the leaf's last flush (every flush includes all
     unflushed buffered entries, and the flush timestamp dominates their
     log timestamps).  When the key is ABSENT from the routed leaf the
     entry must be applied regardless of timestamps: recovered fences are
     leaf minima, which can differ from the pre-crash fences after the
     minimum key was deleted, re-routing the key to a sibling whose flush
     history never covered it.  Once a key is replay-managed, all its
     later entries apply in order so its final value is the newest logged
     version (tombstones are always logged, see the trigger-write path).

     Timestamps are compared against a pre-replay snapshot: applying an
     entry rewrites its leaf's timestamp, which must not influence the
     coverage decision for other keys. *)
  let entries = ref [] in
  let max_log_ts =
    Wal.replay alloc ~f:(fun ~key ~value ~ts ->
        Indirect.mark_used dev extent value;
        entries := (ts, key, value) :: !entries)
  in
  Clock.advance_to clock
    (if Int64.unsigned_compare max_log_ts !max_leaf_ts > 0 then max_log_ts
     else !max_leaf_ts);
  let ts0 = Hashtbl.create 256 in
  let rec snap = function
    | None -> ()
    | Some b ->
      Hashtbl.replace ts0 b.B.leaf (L.timestamp dev b.B.leaf);
      snap b.B.next
  in
  snap (Some head);
  let flush_ts0 leaf =
    match Hashtbl.find_opt ts0 leaf with Some ts -> ts | None -> 0L
  in
  let replayed = Hashtbl.create 256 in
  let sorted = List.sort compare !entries in
  List.iter
    (fun (ts, key, value) ->
      let b = target_node t key in
      let apply =
        Hashtbl.mem replayed key
        || L.find dev b.B.leaf key = None
        || Int64.unsigned_compare ts (flush_ts0 b.B.leaf) > 0
      in
      if apply then begin
        Hashtbl.replace replayed key ();
        (* leaf_apply locks internally; recovery is single-domain *)
        leaf_apply t b ~pending:[ (key, value, ts) ]
      end)
    sorted;
  (* 3. recycle all log chunks and reset leaf timestamps *)
  let log_chunks = ref [] in
  Alloc.iter_chunks alloc Alloc.Log (fun c -> log_chunks := c :: !log_chunks);
  List.iter (Alloc.free_chunk alloc) !log_chunks;
  let rec reset = function
    | None -> ()
    | Some b ->
      L.store_timestamp dev b.B.leaf 0L;
      D.persist dev (b.B.leaf + 8) 8;
      reset b.B.next
  in
  reset (Some t.head);
  t

(* Recovery runs inside a Recovery_begin/End bracket so persistency
   sanitizers can audit what it reads.  The whole rebuild is declared a
   validating region: the chain walk reads atomically-committed meta
   words for which either crash outcome is a legal state, and every
   coverage decision is re-checked against the WAL — coin-dependent
   bytes are read by design, never trusted unvalidated. *)
let recover ?(cfg = Config.default) dev =
  D.recovery_begin dev;
  D.validating dev true;
  Fun.protect
    ~finally:(fun () ->
      D.validating dev false;
      D.recovery_end dev)
    (fun () -> recover_body ~cfg dev)

(* ------------------------------------------------------------------ *)
(* Concurrent read-only handles (DESIGN.md §12)                        *)
(* ------------------------------------------------------------------ *)

type reader = {
  rt : t;
  rdev : D.t;  (* private read view: domain-local caches and counters *)
  slot : Sync.Epoch.slot;
  rstats : Tree_stats.t;
  mutable rretries : int;
}

let reader t =
  {
    rt = t;
    rdev = D.read_view t.dev;
    slot = Sync.Epoch.register t.epochs;
    rstats = Tree_stats.create ();
    rretries = 0;
  }

let reader_stats r = r.rstats
let reader_device r = r.rdev
let reader_retries r = r.rretries
let deferred_frees t = Sync.Epoch.pending t.epochs

(* After this many failed optimistic attempts the reader falls back to
   the pessimistic path (S latch + per-node spin lock), which always
   terminates: S bars structural modifications, and the single writer's
   vlock critical sections are short and lock-free to it. *)
let max_optimistic = 16

(* One uncontended read of node [b]: buffer first (buffered entries are
   always the newest versions), then the leaf through the given device.
   The result is meaningful only if the caller's validation succeeds —
   under a racing writer, every load here may be torn. *)
let node_read rdev b key =
  match B.find b key with
  | Some i ->
    let v = b.B.vals.(i) in
    ((if Int64.equal v 0L then None else Some v), true)
  | None -> (
    match L.find rdev b.B.leaf key with
    | Some i -> (Some (L.value_at rdev b.B.leaf i), false)
    | None -> (None, false))

let reader_search_pess r key =
  let t = r.rt in
  Sync.Sx.acquire t.latch Sync.Sx.S;
  Fun.protect
    ~finally:(fun () -> Sync.Sx.release t.latch Sync.Sx.S)
    (fun () ->
      (* under S the index and chain are frozen; the vlock orders us
         against the writer's in-place commits on this one node *)
      let b = target_node t key in
      B.lock b;
      ann b ~write:false "tree.reader_search_pess";
      Fun.protect
        ~finally:(fun () -> B.unlock b)
        (fun () -> node_read r.rdev b key))

let reader_search r key =
  r.rstats.Tree_stats.searches <- r.rstats.Tree_stats.searches + 1;
  let t = r.rt in
  let rec attempt tries =
    if tries >= max_optimistic then reader_search_pess r key
    else begin
      let iv = Sync.Vlock.read_begin t.iv in
      if Sync.Vlock.is_locked_v iv then retry tries
      else begin
        ann_iv t ~write:false "tree.reader_route";
        (* the routing structure may be mid-mutation: a torn binary
           search can raise or return an arbitrary node, both of which
           the validations below turn into a retry *)
        let routed =
          match Inner_index.find_le t.index key with
          | Some b -> Some b
          | None -> Some t.head
          | exception Invalid_argument _ -> None
        in
        match routed with
        | None -> retry tries
        | Some b ->
          Sync.Epoch.enter r.slot;
          let v = Sync.Vlock.read_begin b.B.version in
          if Sync.Vlock.is_locked_v v then begin
            Sync.Epoch.exit r.slot;
            retry tries
          end
          else begin
            ann b ~write:false "tree.reader_search";
            let res =
              try Some (node_read r.rdev b key)
              with Invalid_argument _ -> None
            in
            let ok =
              Sync.Vlock.validate b.B.version v
              && Sync.Vlock.validate t.iv iv
            in
            Sync.Epoch.exit r.slot;
            match res with
            | Some out when ok -> out
            | _ -> retry tries
          end
      end
    end
  and retry tries =
    r.rretries <- r.rretries + 1;
    Domain.cpu_relax ();
    attempt (tries + 1)
  in
  let value, dram = attempt 0 in
  (if dram then
     r.rstats.Tree_stats.dram_hits <- r.rstats.Tree_stats.dram_hits + 1
   else r.rstats.Tree_stats.leaf_reads <- r.rstats.Tree_stats.leaf_reads + 1);
  value

(* Optimistic scan: per-node validated snapshots compose into a correct
   range read by the B-link argument — a split moves a validated node's
   tail into a new right sibling we then also visit (or already covered
   via the pre-split content), and a merge seals the absorbed node's
   version so we restart instead of double-counting. *)
let reader_scan_opt r ~start n =
  let t = r.rt in
  let iv = Sync.Vlock.read_begin t.iv in
  if Sync.Vlock.is_locked_v iv then None
  else begin
    ann_iv t ~write:false "tree.reader_scan_route";
    let routed =
      match Inner_index.find_le t.index start with
      | Some b -> Some b
      | None -> Some t.head
      | exception Invalid_argument _ -> None
    in
    match routed with
    | Some b0 when Sync.Vlock.validate t.iv iv ->
      let acc = ref [] in
      let count = ref 0 in
      let rec walk b =
        if !count >= n then true
        else begin
          Sync.Epoch.enter r.slot;
          let v = Sync.Vlock.read_begin b.B.version in
          if Sync.Vlock.is_locked_v v then begin
            Sync.Epoch.exit r.slot;
            false
          end
          else begin
            ann b ~write:false "tree.reader_scan";
            let snap =
              try Some (node_entries_dev r.rdev b, b.B.next)
              with Invalid_argument _ -> None
            in
            let ok = Sync.Vlock.validate b.B.version v in
            Sync.Epoch.exit r.slot;
            match snap with
            | Some (entries, nxt) when ok ->
              List.iter
                (fun (k, v) ->
                  if !count < n && Int64.compare k start >= 0 then begin
                    acc := (k, v) :: !acc;
                    incr count
                  end)
                entries;
              if !count >= n then true
              else (match nxt with None -> true | Some nb -> walk nb)
            | _ -> false
          end
        end
      in
      if walk b0 then Some (Array.of_list (List.rev !acc)) else None
    | _ -> None
  end

let reader_scan_pess r ~start n =
  let t = r.rt in
  Sync.Sx.acquire t.latch Sync.Sx.S;
  Fun.protect
    ~finally:(fun () -> Sync.Sx.release t.latch Sync.Sx.S)
    (fun () ->
      let acc = ref [] in
      let count = ref 0 in
      let rec walk = function
        | None -> ()
        | Some b when !count >= n -> ignore b
        | Some b ->
          B.lock b;
          ann b ~write:false "tree.reader_scan_pess";
          let entries = node_entries_dev r.rdev b in
          let nxt = b.B.next in
          B.unlock b;
          List.iter
            (fun (k, v) ->
              if !count < n && Int64.compare k start >= 0 then begin
                acc := (k, v) :: !acc;
                incr count
              end)
            entries;
          if !count < n then walk nxt
      in
      walk (Some (target_node t start));
      Array.of_list (List.rev !acc))

let reader_scan r ~start n =
  r.rstats.Tree_stats.scans <- r.rstats.Tree_stats.scans + 1;
  let rec attempt tries =
    if tries >= max_optimistic then reader_scan_pess r ~start n
    else
      match reader_scan_opt r ~start n with
      | Some arr -> arr
      | None ->
        r.rretries <- r.rretries + 1;
        Domain.cpu_relax ();
        attempt (tries + 1)
  in
  attempt 0

(* ------------------------------------------------------------------ *)
(* Concurrent writer handles (DESIGN.md §13)                           *)
(* ------------------------------------------------------------------ *)

type writer = {
  wt : t;
  wdev : D.t;
      (* private write view: stores land in the shared image, but the
         store→clwb→sfence pipeline, stats and fail plan are lane-local *)
  lane : int;  (* private WAL lane: appends never share a chunk tail *)
  wfs : Pmem.Flushset.t;
  wstats : Tree_stats.t;
  mutable wretries : int;
}

let writer ?lane t =
  let lane =
    match lane with
    | Some l ->
      if l < 0 || l >= t.cfg.Config.threads then
        invalid_arg "Tree.writer: lane out of range (raise Config.threads)";
      l
    | None ->
      (* Never wrap: two concurrent handles sharing a lane would race on
         the lane's unsynchronized WAL chunk cursor and corrupt the log.
         Minting more handles than lanes is a config error, not a
         degradation. *)
      let l = Atomic.fetch_and_add t.next_lane 1 in
      if l >= t.cfg.Config.threads then
        invalid_arg
          "Tree.writer: WAL lanes exhausted (mint at most Config.threads \
           handles, or pin ~lane explicitly)";
      l
  in
  {
    wt = t;
    wdev = D.write_view t.dev;
    lane;
    wfs = Pmem.Flushset.create ();
    wstats = Tree_stats.create ();
    wretries = 0;
  }

let writer_stats w = w.wstats
let writer_device w = w.wdev
let writer_retries w = w.wretries
let writer_lane w = w.lane

(* Writer lanes always log — even the trigger write that the
   single-writer path may skip under conservative logging.  A trigger
   whose split loses the OLC validation race restarts the whole
   operation, and the restarted attempt may then buffer the KV; an
   unlogged buffered entry would be unrecoverable, so the skip is only
   sound when the trigger is guaranteed to reach the leaf. *)
let writer_log w ~key ~value ~ts =
  let t = w.wt in
  Wal.append ~dev:w.wdev t.wal ~thread:w.lane ~epoch:t.global_epoch ~key
    ~value ~ts;
  w.wstats.Tree_stats.log_appends <- w.wstats.Tree_stats.log_appends + 1

(* With [b]'s vlock held, key-range membership is stable: [b.low] never
   changes after creation, and [b.dead], [b.next] and the successor's
   [low] only change under [b]'s vlock (every SMO relinking around [b]
   locks it first).  This is what makes lock-then-validate routing
   sound. *)
let writer_fence_ok b key =
  let ok =
    (not b.B.dead)
    && Int64.compare key b.B.low >= 0
    &&
    match b.B.next with
    | None -> true
    | Some nx -> Int64.compare key nx.B.low < 0
  in
  if Sync.Hook.enabled () then
    Sync.Hook.emit
      (Sync.Hook.Fence_check { id = Sync.Vlock.id b.B.version; ok });
  ok

(* [leaf_apply]'s normal and tombstone-two-phase branches, with [b]'s
   vlock HELD by the caller and every store/flush/ack routed through the
   writer's view.  Overflow is returned instead of splitting: the split
   takes the SX latch, and a vlock must never be held across a latch
   acquire. *)
let rec writer_leaf_apply w b ~pending =
  let dev = w.wdev in
  let leaf = b.B.leaf in
  let ts = max_ts pending in
  let bm = L.bitmap dev leaf in
  let removed = ref 0 in
  let updates = ref [] in
  let added = ref [] in
  List.iter
    (fun (k, v, _) ->
      match L.find dev leaf k with
      | Some i ->
        if Int64.equal v 0L then removed := !removed lor (1 lsl i)
        else updates := (i, v) :: !updates
      | None -> if not (Int64.equal v 0L) then added := (k, v) :: !added)
    pending;
  let free = L.free_slots dev leaf in
  let n_removed =
    let rec pop n b = if b = 0 then n else pop (n + (b land 1)) (b lsr 1) in
    pop 0 !removed
  in
  if
    List.length !added > List.length free
    && List.length !added <= List.length free + n_removed
  then begin
    let tombstones, additions =
      List.partition (fun (_, v, _) -> Int64.equal v 0L) pending
    in
    let upd, adds =
      List.partition (fun (k, _, _) -> L.find dev leaf k <> None) additions
    in
    (match writer_leaf_apply w b ~pending:(tombstones @ upd) with
     | `Applied -> ()
     | `Overflow -> assert false (* removals and updates never grow the leaf *));
    if adds = [] then `Applied else writer_leaf_apply w b ~pending:adds
  end
  else if List.length !added <= List.length free then begin
    D.span_begin dev "tree.batch_flush";
    D.site_enter dev site_leaf_buffer;
    List.iter
      (fun (i, v) ->
        D.store_u64 dev (L.slot_addr leaf i + 8) v;
        Pmem.Flushset.touch w.wfs (L.slot_addr leaf i + 8) 8)
      !updates;
    let added_bits = ref 0 in
    let fps = ref [] in
    List.iteri
      (fun j (k, v) ->
        let i = List.nth free j in
        L.store_slot dev leaf i ~key:k ~value:v;
        Pmem.Flushset.touch w.wfs (L.slot_addr leaf i) 16;
        added_bits := !added_bits lor (1 lsl i);
        fps := (i, k) :: !fps)
      !added;
    Pmem.Flushset.commit w.wfs dev;
    List.iter (fun (i, k) -> L.store_fingerprint dev leaf i k) !fps;
    L.store_timestamp dev leaf ts;
    let new_bm = bm land lnot !removed lor !added_bits in
    L.store_meta_word dev leaf ~bitmap:new_bm ~next:(L.next dev leaf);
    D.persist dev leaf 32;
    D.ack_durable dev ~label:"tree.batch" leaf 32;
    w.wstats.Tree_stats.batch_flushes <-
      w.wstats.Tree_stats.batch_flushes + 1;
    D.site_exit dev;
    D.span_end dev "tree.batch_flush";
    `Applied
  end
  else `Overflow

(* Post-split content of [b]: leaf entries with the pending set applied.
   Unlike the single-writer [split_apply], the pending set can hold two
   versions of one key — between the trigger decision and the split's
   validated snapshot another lane may have buffered a newer version —
   so conflicts resolve by timestamp.  Reads may be torn (the caller
   holds no lock on the optimistic path); the commit-time [try_upgrade]
   is what certifies the result, so any exception here is just a
   restart. *)
let split_union dev b ~key ~value ~ts =
  match
    let pending = (key, value, ts) :: B.unflushed_entries b in
    let best = Hashtbl.create 16 in
    let tbl = Hashtbl.create 32 in
    List.iter (fun (k, v) -> Hashtbl.replace tbl k v) (L.entries dev b.B.leaf);
    List.iter
      (fun (k, v, ets) ->
        let newer =
          match Hashtbl.find_opt best k with
          | Some t0 -> Int64.compare ets t0 >= 0
          | None -> true
        in
        if newer then begin
          Hashtbl.replace best k ets;
          if Int64.equal v 0L then Hashtbl.remove tbl k
          else Hashtbl.replace tbl k v
        end)
      pending;
    ( List.sort (fun (a, _) (b, _) -> Int64.compare a b)
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []),
      max_ts pending )
  with
  | res -> Some res
  | exception _ -> None

(* Write the new right leaf (unreachable until the metadata commit on
   [b], so safe under SX or X alike).  Returns everything the commit
   needs. *)
let writer_split_prepare w b ~union ~ts =
  let t = w.wt in
  let dev = w.wdev in
  let n = List.length union in
  let left_n = n / 2 in
  let rec split_at i acc = function
    | rest when i = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> split_at (i - 1) (x :: acc) rest
  in
  let left, right = split_at left_n [] union in
  let split_key = fst (List.nth left (left_n - 1)) in
  let right_low = fst (List.hd right) in
  let new_leaf = Slab.alloc t.slab in
  let right_bits = ref 0 in
  List.iteri
    (fun i (k, v) ->
      L.store_slot dev new_leaf i ~key:k ~value:v;
      L.store_fingerprint dev new_leaf i k;
      right_bits := !right_bits lor (1 lsl i))
    right;
  L.store_timestamp dev new_leaf ts;
  L.store_meta_word dev new_leaf ~bitmap:!right_bits
    ~next:(L.next dev b.B.leaf);
  let right_bytes = 32 + (16 * List.length right) in
  Pmem.Flushset.touch w.wfs new_leaf right_bytes;
  (new_leaf, split_key, right_low, right_bytes)

(* Reader-visible phase of a writer split.  Requires the X latch and
   [b]'s vlock held, with the new right leaf fully written and its lines
   staged in [w.wfs].  Mirrors [split_apply] steps 2–5, except that the
   incoming KV is re-homed immediately (under the same vlock hold the
   union was validated against) instead of through a follow-up batch —
   there is no lockless window in which another lane could race it.
   Leaves [b] unlocked. *)
let writer_split_commit w b ~union ~split_key ~right_low ~new_leaf
    ~right_bytes ~ts ~key ~value =
  let t = w.wt in
  let dev = w.wdev in
  let leaf = b.B.leaf in
  let keep_bits = ref 0 in
  let bm = L.bitmap dev leaf in
  for i = 0 to L.slots - 1 do
    if bm land (1 lsl i) <> 0 then begin
      let k = L.key_at dev leaf i in
      if Int64.compare k split_key <= 0 then begin
        match List.assoc_opt k union with
        | Some v ->
          keep_bits := !keep_bits lor (1 lsl i);
          if not (Int64.equal v (L.value_at dev leaf i)) then begin
            D.store_u64 dev (L.slot_addr leaf i + 8) v;
            Pmem.Flushset.touch w.wfs (L.slot_addr leaf i + 8) 8
          end
        | None -> ()
      end
    end
  done;
  Pmem.Flushset.commit w.wfs dev;
  D.ack_durable dev ~label:"tree.split" new_leaf right_bytes;
  L.store_timestamp dev leaf ts;
  L.store_meta_word dev leaf ~bitmap:!keep_bits ~next:new_leaf;
  D.persist dev leaf 32;
  D.ack_durable dev ~label:"tree.split" leaf 32;
  w.wstats.Tree_stats.splits <- w.wstats.Tree_stats.splits + 1;
  w.wstats.Tree_stats.batch_flushes <- w.wstats.Tree_stats.batch_flushes + 1;
  let rb = B.create ~nbatch:t.cfg.Config.nbatch ~leaf:new_leaf ~low:right_low in
  rb.B.next <- b.B.next;
  rb.B.prev <- Some b;
  (match b.B.next with Some nx -> nx.B.prev <- Some rb | None -> ());
  b.B.next <- Some rb;
  index_add t right_low rb;
  (* Buffer-slot transformation: slots whose key moved right are pruned
     (their latest version is in the new leaf); unflushed slots whose key
     was folded into the left leaf become cached; left-side adds the leaf
     had no room for stay buffered unflushed — they are WAL-covered, and
     recovery re-applies any logged entry whose key is absent from its
     leaf regardless of the leaf timestamp. *)
  for i = 0 to B.nbatch b - 1 do
    if b.B.valid land (1 lsl i) <> 0 then
      if Int64.compare b.B.keys.(i) split_key > 0 then begin
        b.B.valid <- b.B.valid land lnot (1 lsl i);
        b.B.unflushed <- b.B.unflushed land lnot (1 lsl i);
        b.B.epoch <- b.B.epoch land lnot (1 lsl i)
      end
      else if
        b.B.unflushed land (1 lsl i) <> 0
        && L.find dev leaf b.B.keys.(i) <> None
      then begin
        b.B.unflushed <- b.B.unflushed land lnot (1 lsl i);
        b.B.epoch <- b.B.epoch land lnot (1 lsl i)
      end
  done;
  (* Re-home the incoming KV if it landed in neither leaf nor buffer. *)
  (if Int64.compare key split_key <= 0 && L.find dev leaf key = None then
     match B.find b key with
     | Some i ->
       (* another lane buffered this key behind our back; keep whichever
          version is newer *)
       if Int64.compare ts b.B.tss.(i) >= 0 then
         B.set_slot b i ~key ~value ~ts ~epoch:t.global_epoch
     | None ->
       if not (Int64.equal value 0L) then begin
         let slot =
           match B.free_slot b with
           | Some i -> Some i
           | None ->
             let ci = B.cached_slot b in
             if ci >= 0 then Some ci else None
         in
         match slot with
         | Some i -> B.set_slot b i ~key ~value ~ts ~epoch:t.global_epoch
         | None -> (
           (* every buffer slot is a left-side unflushed add, so the left
              leaf kept at most left_n - nbatch - 1 entries and has free
              slots; single-entry leaf write with its own meta commit *)
           match L.free_slots dev leaf with
           | i :: _ ->
             L.store_slot dev leaf i ~key ~value;
             Pmem.Flushset.touch w.wfs (L.slot_addr leaf i) 16;
             Pmem.Flushset.commit w.wfs dev;
             L.store_fingerprint dev leaf i key;
             L.store_timestamp dev leaf ts;
             L.store_meta_word dev leaf
               ~bitmap:(L.bitmap dev leaf lor (1 lsl i))
               ~next:new_leaf;
             D.persist dev leaf 32;
             D.ack_durable dev ~label:"tree.split" leaf 32
           | [] -> assert false)
       end);
  B.unlock b

(* One optimistic split attempt: prepare under SX (readers and sibling
   lanes keep going), upgrade to X, then commit only if [b] is exactly
   as the preparation saw it — OLC's validate-and-lock on the remembered
   version.  Returns true when the incoming op committed, false to
   restart from routing. *)
let writer_split w b ~key ~value ~ts =
  let t = w.wt in
  let dev = w.wdev in
  Sync.Sx.acquire t.latch Sync.Sx.SX;
  let mode = ref Sync.Sx.SX in
  let latched = ref true in
  let vheld = ref false in
  let staged = ref None in
  (* the prepared (still unreachable) right leaf, freed on abort *)
  try
    let v1 = Sync.Vlock.read_begin b.B.version in
    if b.B.dead || Sync.Vlock.is_locked_v v1 then begin
      Sync.Sx.release t.latch Sync.Sx.SX;
      latched := false;
      false
    end
    else begin
      D.span_begin dev "tree.split";
      D.site_enter dev site_smo_split;
      (* buffered in the [v1] optimistic bracket; certified (or dropped)
         by the try_upgrade below *)
      ann b ~write:false "tree.split_union";
      let committed =
        match split_union dev b ~key ~value ~ts with
        | Some (union, bts)
          when List.length union > L.slots && List.length union <= 2 * L.slots
          ->
          let new_leaf, split_key, right_low, right_bytes =
            writer_split_prepare w b ~union ~ts:bts
          in
          staged := Some new_leaf;
          Sync.Sx.upgrade t.latch;
          mode := Sync.Sx.X;
          if Sync.Vlock.try_upgrade b.B.version v1 then begin
            vheld := true;
            ann b ~write:true "tree.writer_split";
            writer_split_commit w b ~union ~split_key ~right_low ~new_leaf
              ~right_bytes ~ts:bts ~key ~value;
            vheld := false;
            staged := None;
            true
          end
          else begin
            (* [b] changed since the snapshot: the prepared right leaf
               reflects a stale union.  Nothing reader-visible happened —
               the leaf was unreachable — so give it back, and drop its
               lines staged in [w.wfs]: a later commit must not clwb a
               freed (possibly reallocated) chunk. *)
            Pmem.Flushset.reset w.wfs;
            Slab.free t.slab new_leaf;
            staged := None;
            false
          end
        | _ ->
          (* torn snapshot, or the node no longer overflows (another
             lane's split beat us): restart from routing *)
          false
      in
      D.site_exit dev;
      D.span_end dev "tree.split";
      Sync.Sx.release t.latch !mode;
      latched := false;
      committed
    end
  with e ->
    D.site_exit dev;
    if !vheld then B.unlock b
    else begin
      (* Aborted before anything reader-visible: drop the staged flush
         lines and reclaim the unreachable right leaf.  (With [vheld]
         the commit was underway and the leaf may already be linked in,
         so neither is safe there.) *)
      Pmem.Flushset.reset w.wfs;
      match !staged with Some nl -> Slab.free t.slab nl | None -> ()
    end;
    if !latched then Sync.Sx.release t.latch !mode;
    raise e

(* Opportunistic merge of [b] into its left sibling: stage the copies
   under SX holding both vlocks, release them, upgrade, then
   validate-and-relock both via [try_upgrade].  The staged copies sit in
   slots outside [p]'s bitmap — invisible garbage if anything changed —
   so any validation failure simply aborts; merges are best-effort space
   reclamation and another underflow probe will come. *)
let writer_try_merge w b =
  let t = w.wt in
  let dev = w.wdev in
  Sync.Sx.acquire t.latch Sync.Sx.SX;
  let mode = ref Sync.Sx.SX in
  let latched = ref true in
  let pheld = ref None in
  let bheld = ref false in
  try
    (match (b.B.dead, b.B.prev) with
     | true, _ | _, None -> ()
     | false, Some p ->
       D.span_begin dev "tree.merge";
       D.site_enter dev site_smo_merge;
       (* blocking vlock acquires are safe here: under SX no SMO can seal
          either node, and plain lane holders never wait on the latch *)
       B.lock p;
       pheld := Some p;
       ann p ~write:true "tree.writer_merge.stage";
       B.lock b;
       bheld := true;
       ann b ~write:false "tree.writer_merge.read";
       let entries = L.entries dev b.B.leaf in
       let free = L.free_slots dev p.B.leaf in
       if List.length entries > List.length free || B.unflushed_entries b <> []
       then begin
         (* no room, or [b] still buffers unflushed entries whose log
            records a merge would strand behind [p]'s fence *)
         B.unlock b;
         bheld := false;
         B.unlock p;
         pheld := None
       end
       else begin
         let bits = ref 0 in
         let fps = ref [] in
         List.iteri
           (fun j (k, v) ->
             let i = List.nth free j in
             L.store_slot dev p.B.leaf i ~key:k ~value:v;
             Pmem.Flushset.touch w.wfs (L.slot_addr p.B.leaf i) 16;
             bits := !bits lor (1 lsl i);
             fps := (i, k) :: !fps)
           entries;
         Pmem.Flushset.commit w.wfs dev;
         List.iter (fun (i, k) -> L.store_fingerprint dev p.B.leaf i k) !fps;
         let merged_next = L.next dev b.B.leaf in
         let chain_next = b.B.next in
         (* Snapshot the expected post-release versions while the locks
            are still held: unlock is deterministic (held odd v -> v+1),
            so these are exactly the values [try_upgrade] must see.  A
            snapshot taken after the release could race a complete
            try_lock/apply/unlock by another lane in the release→upgrade
            window and let the CAS commit the stale staged copies over
            that lane's write. *)
         let stale = Fault.armed Fault.Stale_merge_cert in
         let vb =
           if stale then 0 else Sync.Vlock.value b.B.version + 1
         in
         B.unlock b;
         bheld := false;
         (* Fault Stale_merge_cert: the PR-8 bug shape — certify against
            versions snapshotted AFTER the release, where a complete
            try_lock/apply/unlock by another lane can hide *)
         let vb = if stale then Sync.Vlock.value b.B.version else vb in
         let vp =
           if stale then 0 else Sync.Vlock.value p.B.version + 1
         in
         B.unlock p;
         pheld := None;
         let vp = if stale then Sync.Vlock.value p.B.version else vp in
         Sync.Sx.upgrade t.latch;
         mode := Sync.Sx.X;
         if Sync.Vlock.try_upgrade p.B.version vp then
           if Sync.Vlock.try_upgrade b.B.version vb then begin
             (* committed; [b]'s seal is permanent (dead nodes stay
                locked), so it is deliberately not tracked for unlock *)
             ann p ~write:true "tree.writer_merge.commit";
             ann b ~write:true "tree.writer_merge.seal";
             b.B.dead <- true;
             Sync.Hook.seal ~id:(Sync.Vlock.id b.B.version);
             L.store_meta_word dev p.B.leaf
               ~bitmap:(L.bitmap dev p.B.leaf lor !bits)
               ~next:merged_next;
             D.persist dev p.B.leaf 32;
             D.ack_durable dev ~label:"tree.merge" p.B.leaf 32;
             p.B.next <- chain_next;
             (match chain_next with
              | Some nx -> nx.B.prev <- Some p
              | None -> ());
             index_remove t b.B.low;
             w.wstats.Tree_stats.merges <- w.wstats.Tree_stats.merges + 1;
             B.unlock p;
             (* retire under the X latch: the epoch list and the slab free
                must stay serialized with SMO allocation *)
             Sync.Epoch.retire
               ~obj:(Sync.Vlock.id b.B.version)
               t.epochs
               (fun () -> Slab.free t.slab b.B.leaf);
             if Fault.armed Fault.Premature_reclaim then
               Sync.Epoch.force t.epochs
           end
           else B.unlock p
       end;
       D.site_exit dev;
       D.span_end dev "tree.merge");
    Sync.Sx.release t.latch !mode;
    latched := false
  with e ->
    D.site_exit dev;
    if !bheld then B.unlock b;
    (match !pheld with Some p -> B.unlock p | None -> ());
    (* staged-copy lines may still sit in [w.wfs] if the exception hit
       between touch and commit; they must not leak into a later commit *)
    Pmem.Flushset.reset w.wfs;
    if !latched then Sync.Sx.release t.latch !mode;
    raise e

(* The per-op buffer decision, with [b]'s vlock HELD.  Returns [`Done]
   (absorbed by the buffer), [`Flushed] (trigger write reached the leaf;
   the caller may probe for a merge after unlocking) or [`Overflow ts]
   (only the WAL record happened; the caller must release the vlock and
   split).  The timestamp is drawn inside the vlock hold, so timestamp
   order agrees with lock order on every node. *)
let writer_locked_apply w b key value =
  let t = w.wt in
  ann b ~write:true "tree.writer_apply";
  let ts = Clock.next t.clock in
  if not t.cfg.Config.buffering then
    match writer_leaf_apply w b ~pending:[ (key, value, ts) ] with
    | `Applied -> `Flushed
    | `Overflow -> `Overflow ts
  else
    let set i =
      writer_log w ~key ~value ~ts;
      B.set_slot b i ~key ~value ~ts ~epoch:t.global_epoch;
      `Done
    in
    match B.find b key with
    | Some i -> set i
    | None -> (
      match B.free_slot b with
      | Some i -> set i
      | None ->
        let ci = B.cached_slot b in
        if ci >= 0 then set ci
        else begin
          writer_log w ~key ~value ~ts;
          let pending = (key, value, ts) :: B.unflushed_entries b in
          match writer_leaf_apply w b ~pending with
          | `Overflow -> `Overflow ts
          | `Applied ->
            B.mark_all_flushed b;
            let within_fence =
              match b.B.next with
              | Some nx -> Int64.compare key nx.B.low < 0
              | None -> true
            in
            if within_fence then begin
              let i = oldest_slot b in
              b.B.keys.(i) <- key;
              b.B.vals.(i) <- value;
              b.B.tss.(i) <- ts;
              b.B.valid <- b.B.valid lor (1 lsl i);
              b.B.unflushed <- b.B.unflushed land lnot (1 lsl i);
              b.B.epoch <- b.B.epoch land lnot (1 lsl i)
            end;
            `Flushed
        end)

(* Total fallback after repeated validation failures: the whole
   operation — including an overflow split — runs under X with [b]'s
   vlock held, so nothing can invalidate it.  Guaranteed progress. *)
let writer_apply_x w key value =
  let t = w.wt in
  let dev = w.wdev in
  Sync.Sx.acquire t.latch Sync.Sx.X;
  let latched = ref true in
  let locked = ref None in
  try
    let b = target_node t key in
    B.lock b;
    locked := Some b;
    (match writer_locked_apply w b key value with
     | `Done | `Flushed ->
       B.unlock b;
       locked := None
     | `Overflow ts -> (
       D.span_begin dev "tree.split";
       D.site_enter dev site_smo_split;
       match split_union dev b ~key ~value ~ts with
       | Some (union, bts) ->
         assert (List.length union > L.slots && List.length union <= 2 * L.slots);
         let new_leaf, split_key, right_low, right_bytes =
           writer_split_prepare w b ~union ~ts:bts
         in
         writer_split_commit w b ~union ~split_key ~right_low ~new_leaf
           ~right_bytes ~ts:bts ~key ~value;
         locked := None;
         D.site_exit dev;
         D.span_end dev "tree.split"
       | None -> assert false (* nothing can tear under X + vlock *)));
    Sync.Sx.release t.latch Sync.Sx.X;
    latched := false
  with e ->
    (match !locked with Some b -> B.unlock b | None -> ());
    Pmem.Flushset.reset w.wfs;
    if !latched then Sync.Sx.release t.latch Sync.Sx.X;
    raise e

(* Optimistic-lock-coupling write path: route latch-free, [try_lock] the
   target, validate its fence interval under the lock, apply.  After
   [max_optimistic] failures fall back to routing under S (exact, but
   still concurrent with other lanes); after twice that, to the total
   X path above.  Writers skip [maybe_gc]: GC is a whole-tree scan that
   belongs to the owning domain, not to a lane. *)
let writer_upsert_raw w key value =
  let t = w.wt in
  D.add_user_bytes w.wdev 16;
  let rec attempt tries =
    if tries >= 2 * max_optimistic then writer_apply_x w key value
    else begin
      let use_s = tries >= max_optimistic in
      let routed =
        if use_s then begin
          Sync.Sx.acquire t.latch Sync.Sx.S;
          (* under S the index and chain are frozen: routing is exact and
             the blocking vlock acquire is safe (no SMO can seal [b]) *)
          let b = target_node t key in
          B.lock b;
          Some b
        end
        else
          match Inner_index.find_le t.index key with
          | Some b -> if Sync.Vlock.try_lock b.B.version then Some b else None
          | None -> if Sync.Vlock.try_lock t.head.B.version then Some t.head else None
          | exception Invalid_argument _ -> None
      in
      match routed with
      | None -> retry tries
      | Some b ->
        if
          (not use_s)
          && (not (Fault.armed Fault.Skip_write_validation))
          && not (writer_fence_ok b key)
        then begin
          B.unlock b;
          retry tries
        end
        else begin
          let outcome =
            try writer_locked_apply w b key value
            with e ->
              B.unlock b;
              if use_s then Sync.Sx.release t.latch Sync.Sx.S;
              raise e
          in
          B.unlock b;
          if use_s then Sync.Sx.release t.latch Sync.Sx.S;
          match outcome with
          | `Done -> ()
          | `Flushed ->
            if
              (not b.B.dead)
              && L.valid_count w.wdev b.B.leaf < L.slots / 2
            then writer_try_merge w b
          | `Overflow ts ->
            if not (writer_split w b ~key ~value ~ts) then retry tries
        end
    end
  and retry tries =
    w.wretries <- w.wretries + 1;
    Domain.cpu_relax ();
    attempt (tries + 1)
  in
  attempt 0

let writer_upsert w key value =
  if Int64.equal value 0L then
    invalid_arg "Tree.writer_upsert: value 0 is reserved (tombstone)";
  w.wstats.Tree_stats.inserts <- w.wstats.Tree_stats.inserts + 1;
  writer_upsert_raw w key value

let writer_delete w key =
  w.wstats.Tree_stats.deletes <- w.wstats.Tree_stats.deletes + 1;
  writer_upsert_raw w key 0L
