(** Deduplicated, address-ordered cacheline flush set for one commit scope.

    The flush/fence elision building block: a commit scope [touch]es the
    byte ranges it stores and finishes with one {!commit}, which emits one
    [clwb] per distinct touched line (ascending address order) and a
    single [sfence] — or nothing when no line was touched, so an empty
    scope never emits an empty fence.  Allocation-free after the set's
    backing array has grown to the scope's working size. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh set; [capacity] sizes the initial backing array (default 16). *)

val reset : t -> unit
(** Drop any accumulated lines without flushing them. *)

val touch : t -> int -> int -> unit
(** [touch t addr len] marks every cacheline overlapping
    [\[addr, addr+len)] as dirty in this scope.  [len <= 0] is a no-op. *)

val touch_line : t -> int -> unit
(** Mark one line by its (already line-aligned) address. *)

val pending : t -> int
(** Number of distinct lines accumulated so far. *)

val commit : t -> Device.t -> unit
(** Flush every accumulated line once, ascending, then fence; no-op when
    the set is empty.  Leaves the set reset. *)

val flush_only : t -> Device.t -> unit
(** Like {!commit} but without the trailing fence, for callers folding
    several scopes into one later fence.  Leaves the set reset. *)
