(** Simulated Intel Optane DCPMM.

    The device models the three layers of Figure 1 of the paper:

    - a CPU cache holding dirty cachelines (volatile under ADR),
    - a 16 KB on-DIMM write-combining buffer (XPBuffer) of 256 B XPLines
      (inside the ADR persistence domain),
    - the 3D-XPoint media, accessed only at XPLine granularity.

    Stores land in the CPU cache; [clwb] stages a cacheline towards the
    XPBuffer and [sfence] makes staged lines reach it.  A cacheline
    arriving at the XPBuffer coalesces into an already-buffered XPLine or
    claims a slot, evicting the least-recently-used XPLine to the media as
    one 256 B write (plus a 256 B read-modify-write fill when the evicted
    XPLine is only partially buffered).  All counters needed to compute
    CLI- and XBI-amplification are recorded in {!Stats}.

    [crash] implements the adversarial persistency semantics of ADR: lines
    that completed a flush+fence protocol always persist, every other dirty
    line persists with probability [persist_prob] (seeded, reproducible),
    and the XPBuffer always drains.  Under eADR everything persists. *)

type t

val create : ?config:Config.t -> unit -> t
val config : t -> Config.t
val size : t -> int

val read_view : t -> t
(** A per-reader-domain view for concurrent latch-free reads.  The view
    shares the parent's byte images — loads observe the writer's stores,
    possibly torn, which the caller's version-validation protocol must
    reject — but owns private cache state and a private {!Stats} record,
    so every load-path mutation is domain-local and per-view counters
    merge with the writer's via {!Stats.merge}.  A view never sees the
    parent's XPBuffer/dirty-line state, so it accounts conservatively
    (its own read cache, media reads on every miss).  Stores,
    persistence primitives, [drain] and [crash] through a view raise
    [Invalid_argument].  Views have their own tracer slot (initially
    disabled): sanitizer/observability hooks are per-domain or off under
    concurrent readers, never shared. *)

val write_view : t -> t
(** A per-writer-domain view for concurrent write lanes.  Same
    sharing/privacy split as {!read_view} — shared byte images, private
    cache model / stats / tracer — but mutable: stores land directly in
    the shared work image (immediately visible to every other view,
    possibly torn; the caller's lock discipline must make that safe),
    and each writer lane owns a private store→clwb→sfence pipeline,
    including its own {!plan_failure} slot, so fault injection can fire
    at one lane's fence while others run. *)

val is_read_view : t -> bool
(** True for {!read_view}s only ({!write_view}s are mutable). *)

(** {1 Stores (into the CPU cache)} *)

val store : t -> int -> bytes -> unit
val store_string : t -> int -> string -> unit
val store_u64 : t -> int -> int64 -> unit
val store_u8 : t -> int -> int -> unit
val fill : t -> int -> int -> char -> unit

(** {1 Loads} *)

val load : t -> int -> int -> bytes
val load_u64 : t -> int -> int64
val load_u8 : t -> int -> int

(** {1 Persistence primitives} *)

val clwb : t -> int -> unit
(** Flush the cacheline containing the given address.  No-op persistence
    until the next {!sfence}, exactly as on hardware. *)

val flush_range : t -> int -> int -> unit
(** [flush_range t addr len] issues [clwb] for every cacheline overlapping
    the range. *)

val sfence : t -> unit

val persist : t -> int -> int -> unit
(** [flush_range] followed by [sfence]. *)

val drain : t -> unit
(** Clean shutdown: push every dirty line and the whole XPBuffer to the
    media.  Used for fair end-of-run accounting. *)

(** {1 Host-file persistence}

    The media image can be saved to and restored from a host file, so
    programs built on the simulated device are durable across process
    restarts (the example KV store uses this). *)

val save_image : t -> string -> unit
(** Write the media image to a file.  Call {!drain} first if volatile
    state should be included. *)

val load_image : ?config:Config.t -> string -> t
(** Restore a device from a saved image.  @raise Invalid_argument on a
    malformed image file. *)

(** {1 Checkpoint / restore}

    Deep snapshot of the complete device state: both byte images, the
    dirty set and its eviction order, unfenced pending lines, the
    XPBuffer, the read cache, the LRU clock, the adversarial RNG and the
    {!Stats} counters.  Restoring a checkpoint and replaying the same
    operation sequence reproduces the original execution exactly —
    including which lines a later [crash] keeps or drops.  This is the
    substrate of the crash-state model checker ({!Crashmc}), which
    re-enters one workload hundreds of times, once per fence index,
    without paying device re-creation or re-formatting. *)

type checkpoint

val checkpoint : t -> checkpoint
(** Capture the current state.  The checkpoint is immutable and can be
    restored any number of times. *)

val restore : t -> checkpoint -> unit
(** Rewind the device to a previously captured state.  @raise
    Invalid_argument if the checkpoint comes from a device of a different
    size. *)

(** {1 Crash injection} *)

exception Power_failure

val plan_failure : t -> after_fences:int -> unit
(** Arm fault injection: the n-th upcoming {!sfence} raises
    {!Power_failure} instead of completing, leaving its staged lines in
    the volatile domain.  Callers then invoke {!crash} and run recovery —
    this drives a crash into the *middle* of a persistence protocol
    (batch flush, logless split, merge), the strongest consistency test
    the simulator offers. *)

val cancel_failure : t -> unit
(** Disarm a planned failure (e.g. before running recovery). *)

val crash : t -> unit
(** Power failure.  After [crash] the device content is exactly what
    survived: callers must run their recovery procedure.  Any planned
    failure is disarmed — a failure plan does not outlive the power. *)

val crash_spill : t -> unit
(** A {!write_view}'s share of a power failure: coin-flips the view's
    un-fenced pending and dirty lines into its private XPBuffer and
    drains it to the shared media image, without the parent's final
    media→work blit.  A multi-writer crash must [crash_spill] every
    write view first and call {!crash} on the parent last — the parent's
    blit is the moment volatile content is lost, and running it earlier
    would clobber sibling lanes' not-yet-flipped dirty snapshots. *)

(** {1 Accounting} *)

val add_user_bytes : t -> int -> unit
(** Declare logical payload bytes (the denominator of amplification). *)

val stats : t -> Stats.t
(** The live counter record (mutated in place by the device). *)

val snapshot : t -> Stats.t

(** {1 Introspection for tests} *)

val dirty_lines : t -> int
val xpbuffer_occupancy : t -> int
val media_byte : t -> int -> int
(** Read a byte directly from the media image, bypassing cache and
    accounting; test-only visibility into what has physically persisted. *)

val peek_u8 : t -> int -> int
(** Unaccounted read of the logical image; used by write classifiers that
    must not perturb the counters they feed. *)

val set_classifier : t -> (int -> int) option -> unit
(** Install a map from XPLine address to traffic class (0..3); media
    writes are then also attributed per class in
    {!Stats.media_write_bytes_by_class}.  Like the {!set_tracer} hook, the
    classifier is device-lifetime configuration, not device state: it is
    not captured by {!checkpoint} and therefore survives {!restore}
    unchanged. *)

(** {1 Persistency event hook}

    A lightweight observation channel for persistency sanitizers
    (the [pmsan] library).  When a tracer is
    installed, every store, load, [clwb], completed [sfence], [crash] and
    [drain] emits one event; [Recovery_begin]/[Recovery_end],
    [Acked] and [Validating] are annotations emitted by recovery code,
    durability-ack paths and validated-read regions through the helpers
    below.  Without a tracer every emission site is a single load and
    branch — the hot path stays allocation-free and within noise of the
    untraced device (the [bench_check] gate pins this). *)

type event =
  | Store of { addr : int; len : int }
  | Load of { addr : int; len : int }
  | Clwb of { line : int }  (** line-aligned address of the flushed line *)
  | Sfence  (** emitted only when the fence completes (not on
                {!Power_failure}) *)
  | Crash
  | Drain
  | Recovery_begin
  | Recovery_end
  | Acked of { addr : int; len : int; label : string }
      (** caller declares [addr, addr+len) durably persisted *)
  | Validating of bool
      (** entering/leaving a region whose loads deliberately read
          possibly-torn data and validate it (log-tail scans) *)
  | Span_begin of { name : string }
      (** a named phase of a persistence protocol opens (batch flush,
          split, GC run, ...); consumed by trace exporters ({!Obs.Trace})
          and ignored by the sanitizer *)
  | Span_end of { name : string }
  | Xp_write of { line : int; site : int; evict : bool }
      (** a 64 B cacheline (line-aligned address [line]) arrived at the
          XPBuffer, charged to {!Site} id [site]; [evict] when a CPU-cache
          capacity eviction (not an explicit flush) carried it there.
          Emitted only while {!set_site_tracking} is on — profiling runs —
          so sanitizer-only runs see a bit-identical event stream. *)
  | Media_write of { xp : int; site : int; fill : bool }
      (** a 256 B XPLine at address [xp] left the XPBuffer for the media,
          charged to the site of its last-arrived subline; [fill] when
          the partially-valid XPLine cost a read-modify-write fill.
          Same emission gate as [Xp_write]; never emitted during [drain]
          (which detaches the tracer for its internal settling). *)

val set_tracer : t -> (event -> unit) option -> unit
(** Install (or remove) the event hook.  Not part of {!checkpoint} state:
    the tracer survives {!restore}.  The callback runs synchronously on
    the device-calling thread. *)

val add_tracer : t -> (event -> unit) -> unit
(** Fan-out composition: install the hook {e alongside} any tracer already
    present (the existing one runs first).  This is how the [pmsan]
    sanitizer and the [obs] trace exporter observe the same device
    without clobbering each other — {!set_tracer} replaces, [add_tracer]
    composes. *)

val tracing : t -> bool

val ack_durable : t -> label:string -> int -> int -> unit
(** [ack_durable t ~label addr len] emits [Acked]: the caller is about to
    acknowledge [addr, addr+len) as durable.  No-op without a tracer.
    Annotation entry point for layers below the [pmsan] library; callers
    above it should use [Pmsan.acked]. *)

val recovery_begin : t -> unit
val recovery_end : t -> unit
(** Bracket a recovery procedure; sanitizers check loads inside the
    bracket against what could actually have persisted. *)

val validating : t -> bool -> unit
(** [validating t true]/[false] brackets a region whose loads read
    possibly-unpersisted bytes by design and validate them (e.g. WAL
    tail scanning).  Nests. *)

val span_begin : t -> string -> unit
val span_end : t -> string -> unit
(** Bracket a named phase of a persistence protocol ([Span_begin]/
    [Span_end] events) for timeline trace export.  The string argument
    should be a literal so the disabled path allocates nothing: without a
    tracer each call is one load and one branch. *)

(** {1 Site attribution (write-amplification profiler)}

    When site tracking is enabled, the device keeps a per-lane stack of
    {!Site} ids and stamps every stored cacheline with the innermost
    site, so that later traffic caused by those bytes — clwb staging,
    XPBuffer arrival, and the media write-back that may happen long after
    the causal store — is charged to the code that produced them
    ([Xp_write]/[Media_write] events carry the id).  Off (the default),
    every touch point is a single flag load and branch, no stamp memory
    is allocated, and no new event is ever emitted: sanitizer and
    benchmark runs are bit-identical to a build without the profiler.
    Tracking state is lifetime configuration like the tracer and
    classifier: not captured by {!checkpoint}, reset by enable. *)

val set_site_tracking : t -> bool -> unit
(** Enable/disable attribution stamping on this device or view.  First
    enable allocates the stamp arrays (one byte per cacheline). *)

val site_tracking : t -> bool

val site_enter : t -> int -> unit
(** Push a {!Site} id: subsequent stores charge to it until the matching
    {!site_exit}.  Nests; the innermost site wins.  No-op (one load and
    branch) when tracking is off, so annotations are always compiled
    in. *)

val site_exit : t -> unit
(** Pop the innermost site; no-op when tracking is off or the stack is
    empty (crash paths may unwind past their brackets). *)

val current_site : t -> int
(** The innermost active site id, 0 when none or when tracking is off.
    Contention profilers use it to attribute lock events observed on
    this lane. *)

(** Growable ring of candidate eviction victims used for the CPU cache's
    dirty-line FIFO.  [pop_jittered] removes a random element among the
    oldest [jitter] entries ([jitter:1] is exact FIFO); exposed so tests
    can pin that contract independently of the device. *)
module Ring : sig
  type t

  val create : unit -> t
  val length : t -> int
  val push : t -> int -> unit
  val pop_jittered : t -> Random.State.t -> jitter:int -> int option
  val clear : t -> unit
end
