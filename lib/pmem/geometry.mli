(** Address geometry of the simulated device.

    The simulated DCPMM mirrors the two granularities that drive the
    paper's analysis: the 64 B CPU cacheline (unit of [clwb]) and the
    256 B XPLine (unit of physical media access behind the XPBuffer).
    All addresses are plain byte offsets into the device. *)

val cacheline_size : int
(** 64 — bytes per CPU cacheline. *)

val xpline_size : int
(** 256 — bytes per XPLine. *)

val lines_per_xpline : int
(** 4 — cachelines per XPLine. *)

val xpbuffer_capacity_lines : int
(** Default XPBuffer capacity in XPLines: a 16 KB on-DIMM
    write-combining buffer. *)

val line_of : int -> int
(** Cacheline-aligned base address of the line containing an address. *)

val xpline_of : int -> int
(** XPLine-aligned base address of the XPLine containing an address. *)

val subline_of : int -> int
(** Index (0..3) of the cacheline within its XPLine. *)

val iter_lines : int -> int -> (int -> unit) -> unit
(** [iter_lines addr len f] applies [f] to every cacheline base address
    overlapping [addr, addr+len) in ascending order.  Allocation-free
    equivalent of {!lines_in_range}; the device hot path (stores,
    flushes, load accounting) is built on this.  No-op when [len <= 0]. *)

val iter_xplines : int -> int -> (int -> unit) -> unit
(** [iter_xplines addr len f] applies [f] to every XPLine base address
    overlapping [addr, addr+len) in ascending order.  Allocation-free
    equivalent of {!xplines_in_range}.  No-op when [len <= 0]. *)

val lines_in_range : int -> int -> int list
(** Base addresses of all cachelines overlapping [addr, addr+len),
    ascending; empty when [len <= 0]. *)

val xplines_in_range : int -> int -> int list
(** Base addresses of all XPLines overlapping [addr, addr+len),
    ascending; empty when [len <= 0]. *)
