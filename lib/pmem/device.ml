let ( .%[] ) = Bytes.get
let ( .%[]<- ) = Bytes.set

(* The device is on every operation's critical path of every index, so the
   hot primitives (store / load / clwb / sfence) are written to be
   allocation-free and O(1) amortized:

   - the dirty set is a direct-mapped bitset over cachelines (plus the
     jittered eviction ring), not a hashtable;
   - clwb'd-but-unfenced lines live in a line-sorted array backed by one
     reusable staging arena, so [sfence] neither allocates nor sorts;
   - the XPBuffer and the read cache keep their entries on intrusive
     doubly-linked lists ordered by LRU stamp, so eviction is O(1) instead
     of a full-table minimum scan, and evicted slots are pooled and
     reused.

   None of this changes any modeled number: stamps are unique, so the
   list head is provably the same victim the old minimum-scan chose, and
   every RNG draw and tick happens in the same order as before.  The
   golden-stats test in test_pmem.ml pins that equivalence. *)

(* Fixed-capacity bitset over small-integer keys (cacheline indices). *)
module Bitset = struct
  type t = Bytes.t

  let create nbits = Bytes.make ((nbits + 7) lsr 3) '\000'
  let mem (b : t) i = Char.code b.%[i lsr 3] land (1 lsl (i land 7)) <> 0

  let set (b : t) i =
    let j = i lsr 3 in
    b.%[j] <- Char.chr (Char.code b.%[j] lor (1 lsl (i land 7)))

  let clear (b : t) i =
    let j = i lsr 3 in
    b.%[j] <- Char.chr (Char.code b.%[j] land lnot (1 lsl (i land 7)))

  let reset (b : t) = Bytes.fill b 0 (Bytes.length b) '\000'
end

(* An XPBuffer slot: 256 B staging area plus intrusive LRU links.  Slots
   are recycled through a free pool (chained via [next]) instead of being
   re-allocated on every miss. *)
type xpslot = {
  mutable xp : int;  (* XPLine address; -1 on the sentinel *)
  data : Bytes.t;  (* 256 B staging area *)
  mutable valid : int;  (* bitmask over the 4 sublines *)
  mutable lru : int;
  mutable site : int;  (* attribution site of the last-arrived subline *)
  mutable prev : xpslot;
  mutable next : xpslot;
}

(* A read-cache entry: XPLine address and LRU stamp, on an intrusive list. *)
type rcnode = {
  mutable rxp : int;
  mutable stamp : int;
  mutable rprev : rcnode;
  mutable rnext : rcnode;
}

(* Growable ring of candidate eviction victims.  Eviction picks a random
   element among the oldest [jitter] entries: caches evict by set
   conflict, which preserves temporal order only coarsely — the jitter is
   what turns a completed sequential write burst into slightly reordered
   write-backs (the eADR observation of paper §5.5). *)
module Ring = struct
  type t = {
    mutable buf : int array;
    mutable head : int;
    mutable len : int;
  }

  let create () = { buf = Array.make 1024 0; head = 0; len = 0 }
  let length t = t.len

  let push t v =
    if t.len = Array.length t.buf then begin
      let nbuf = Array.make (2 * t.len) 0 in
      for i = 0 to t.len - 1 do
        nbuf.(i) <- t.buf.((t.head + i) mod t.len)
      done;
      t.buf <- nbuf;
      t.head <- 0
    end;
    t.buf.((t.head + t.len) mod Array.length t.buf) <- v;
    t.len <- t.len + 1

  (* [-1] when empty; the eviction path uses this to stay allocation-free
     (line addresses are non-negative). *)
  let pop_jittered_raw t rng ~jitter =
    if t.len = 0 then -1
    else begin
      let cap = Array.length t.buf in
      let r = Random.State.int rng (min jitter t.len) in
      let i = (t.head + r) mod cap in
      let v = t.buf.(i) in
      (* move the head element into the vacated slot, then advance *)
      t.buf.(i) <- t.buf.(t.head);
      t.head <- (t.head + 1) mod cap;
      t.len <- t.len - 1;
      v
    end

  let pop_jittered t rng ~jitter =
    let v = pop_jittered_raw t rng ~jitter in
    if v < 0 then None else Some v

  let clear t =
    t.head <- 0;
    t.len <- 0
end

(* Event stream for persistency sanitizers (Pmsan).  Emission sites are
   written so the disabled case is one load and one branch: the event
   value is only allocated inside the [Some] arm, never on the fast
   path. *)
type event =
  | Store of { addr : int; len : int }
  | Load of { addr : int; len : int }
  | Clwb of { line : int }
  | Sfence
  | Crash
  | Drain
  | Recovery_begin
  | Recovery_end
  | Acked of { addr : int; len : int; label : string }
  | Validating of bool
  | Span_begin of { name : string }
  | Span_end of { name : string }
  | Xp_write of { line : int; site : int; evict : bool }
      (* a 64 B cacheline arrived at the XPBuffer, charged to [site];
         [evict] when it got there by CPU-cache capacity eviction rather
         than an explicit flush.  Emitted only while site tracking is
         enabled (profiling runs), never during [drain]. *)
  | Media_write of { xp : int; site : int; fill : bool }
      (* a 256 B XPLine left the XPBuffer for the media, charged to the
         site of its last-arrived subline; [fill] when the partial XPLine
         needed a read-modify-write fill.  Same emission gate. *)

type t = {
  cfg : Config.t;
  work : Bytes.t;  (* logical (volatile) content *)
  media : Bytes.t;  (* physically persisted content *)
  (* CPU cache: dirty cachelines as a bitset (indexed by line number =
     address / 64) plus the jittered eviction ring. *)
  dirty_bits : Bitset.t;
  mutable dirty_count : int;
  dirty_fifo : Ring.t;  (* eviction order (may hold stale entries) *)
  (* clwb'd, not yet fenced: line addresses kept sorted ascending, each
     with a 64 B snapshot at the same index of the staging arena.  The
     bitset mirrors membership for O(1) lookups on the load path. *)
  mutable pending_lines : int array;
  mutable pending_arena : Bytes.t;
  mutable pending_len : int;
  pending_bits : Bitset.t;
  (* XPBuffer: direct-mapped by XPLine index (slot lookup is one array
     load, no hashing), threaded on an LRU list whose head
     (sentinel.next) is always the victim. *)
  xp_map : xpslot array;  (* xpline index -> slot; sentinel = absent *)
  mutable xp_count : int;
  xp_sentinel : xpslot;
  mutable xp_pool : xpslot;  (* free slots chained via [next] *)
  (* Read cache: same shape as the XPBuffer, stamps instead of data. *)
  rc_map : rcnode array;  (* xpline index -> node; sentinel = absent *)
  mutable rc_count : int;
  rc_sentinel : rcnode;
  mutable rc_pool : rcnode;  (* free nodes chained via [rnext] *)
  mutable lru_clock : int;
  mutable rng : Random.State.t;
  stats : Stats.t;
  mutable classifier : (int -> int) option;
      (* maps an XPLine address to a traffic class for attribution *)
  mutable tracer : (event -> unit) option;
      (* persistency-event hook; None = zero-overhead disabled state *)
  (* Site attribution (write-amplification profiler).  Off by default:
     every hot-path touch point is one [site_on] load and branch, and the
     stamp arrays stay unallocated until tracking is first enabled. *)
  mutable site_on : bool;
  site_stack : int array;  (* innermost-site scope stack *)
  mutable site_sp : int;
  mutable site_cur : int;  (* cached innermost site (stack top or 0) *)
  mutable line_sites : Bytes.t;  (* per-cacheline site stamp of last store *)
  mutable pending_sites : Bytes.t;  (* parallels [pending_lines] *)
  mutable fail_after_fences : int option;
      (* fault injection: power-fail at the n-th upcoming sfence *)
  ro : bool;
      (* read-only view: shares [work]/[media] with its parent but owns
         private caches and counters; stores and persistence primitives
         refuse (see [read_view]) *)
}

exception Power_failure
(* raised by [sfence] when a planned failure fires; the fence's staged
   lines remain un-fenced, i.e. subject to the adversarial crash coin *)

let cl = Geometry.cacheline_size

let make_xp_sentinel () =
  let rec s =
    {
      xp = -1;
      data = Bytes.create 0;
      valid = 0;
      lru = 0;
      site = 0;
      prev = s;
      next = s;
    }
  in
  s

let make_rc_sentinel () =
  let rec s = { rxp = -1; stamp = 0; rprev = s; rnext = s } in
  s

let create ?config () =
  let cfg = match config with Some c -> c | None -> Config.default () in
  let nlines = (cfg.Config.size + cl - 1) / cl in
  let nxplines =
    (cfg.Config.size + Geometry.xpline_size - 1) / Geometry.xpline_size
  in
  let pending_cap = 64 in
  let xp_sentinel = make_xp_sentinel () in
  let rc_sentinel = make_rc_sentinel () in
  {
    cfg;
    work = Bytes.make cfg.Config.size '\000';
    media = Bytes.make cfg.Config.size '\000';
    dirty_bits = Bitset.create nlines;
    dirty_count = 0;
    dirty_fifo = Ring.create ();
    pending_lines = Array.make pending_cap 0;
    pending_arena = Bytes.make (pending_cap * cl) '\000';
    pending_len = 0;
    pending_bits = Bitset.create nlines;
    xp_map = Array.make nxplines xp_sentinel;
    xp_count = 0;
    xp_sentinel;
    xp_pool = xp_sentinel;
    rc_map = Array.make nxplines rc_sentinel;
    rc_count = 0;
    rc_sentinel;
    rc_pool = rc_sentinel;
    lru_clock = 0;
    rng = Random.State.make [| cfg.Config.crash_seed |];
    stats = Stats.create ();
    classifier = None;
    tracer = None;
    site_on = false;
    site_stack = Array.make 32 0;
    site_sp = 0;
    site_cur = 0;
    line_sites = Bytes.create 0;
    pending_sites = Bytes.create 0;
    fail_after_fences = None;
    ro = false;
  }

(* A per-reader-domain view for concurrent latch-free searches: the byte
   images are shared (so readers observe the writer's stores, possibly
   torn — exactly what version validation is for), while the dirty set,
   pending array, XPBuffer map, read cache, RNG, tracer and {!Stats} are
   fresh and private.  One view per reader domain makes every load-path
   mutation (read-cache LRU, counters) domain-local; the per-view stats
   merge with the writer's through the {!Stats.merge} monoid.  The cost
   model degrades gracefully: a view never sees the writer's XPBuffer or
   dirty lines, so it attributes conservatively many media reads to
   itself — a private read cache, the same shape FPTree gives each
   thread. *)
let view t ~ro =
  let cfg = t.cfg in
  let nlines = (cfg.Config.size + cl - 1) / cl in
  let nxplines =
    (cfg.Config.size + Geometry.xpline_size - 1) / Geometry.xpline_size
  in
  let pending_cap = 64 in
  let xp_sentinel = make_xp_sentinel () in
  let rc_sentinel = make_rc_sentinel () in
  {
    cfg;
    work = t.work;
    media = t.media;
    dirty_bits = Bitset.create nlines;
    dirty_count = 0;
    dirty_fifo = Ring.create ();
    pending_lines = Array.make pending_cap 0;
    pending_arena = Bytes.make (pending_cap * cl) '\000';
    pending_len = 0;
    pending_bits = Bitset.create nlines;
    xp_map = Array.make nxplines xp_sentinel;
    xp_count = 0;
    xp_sentinel;
    xp_pool = xp_sentinel;
    rc_map = Array.make nxplines rc_sentinel;
    rc_count = 0;
    rc_sentinel;
    rc_pool = rc_sentinel;
    lru_clock = 0;
    rng = Random.State.make [| cfg.Config.crash_seed |];
    stats = Stats.create ();
    classifier = None;
    tracer = None;
    site_on = false;
    site_stack = Array.make 32 0;
    site_sp = 0;
    site_cur = 0;
    line_sites = Bytes.create 0;
    pending_sites = Bytes.create 0;
    fail_after_fences = None;
    ro;
  }

let read_view t = view t ~ro:true

(* A per-writer-domain view: same sharing/privacy split as [read_view]
   but mutable — stores land in the shared [work] bytes (visible to every
   other view immediately, possibly torn: vlock discipline makes that
   safe) while the CPU-cache model (dirty set, pending array, XPBuffer),
   stats, tracer and the [fail_after_fences] plan are lane-private.  Each
   writer domain therefore owns its own store->clwb->sfence pipeline and
   its own failure plan, and its traffic merges into the parent's record
   through {!Stats.merge} exactly like reader views. *)
let write_view t = view t ~ro:false

let is_read_view t = t.ro

let ro_fail () =
  invalid_arg "Device: mutation through a read-only view (read_view)"

let set_classifier t f = t.classifier <- f

(* --- event hook ------------------------------------------------------- *)

let set_tracer t f = t.tracer <- f
let tracing t = t.tracer <> None

let add_tracer t f =
  match t.tracer with
  | None -> t.tracer <- Some f
  | Some g ->
    t.tracer <-
      Some
        (fun ev ->
          g ev;
          f ev)

let[@inline] trace_store t addr len =
  match t.tracer with None -> () | Some f -> f (Store { addr; len })

let[@inline] trace_load t addr len =
  match t.tracer with None -> () | Some f -> f (Load { addr; len })

let[@inline] trace_clwb t line =
  match t.tracer with None -> () | Some f -> f (Clwb { line })

(* constant constructors: no allocation even when emitted *)
let[@inline] trace0 t ev =
  match t.tracer with None -> () | Some f -> f ev

let ack_durable t ~label addr len =
  match t.tracer with
  | None -> ()
  | Some f -> f (Acked { addr; len; label })

let recovery_begin t = trace0 t Recovery_begin
let recovery_end t = trace0 t Recovery_end

let validating t b =
  match t.tracer with None -> () | Some f -> f (Validating b)

let[@inline] span_begin t name =
  match t.tracer with None -> () | Some f -> f (Span_begin { name })

let[@inline] span_end t name =
  match t.tracer with None -> () | Some f -> f (Span_end { name })

(* --- site attribution (WA profiler) ----------------------------------- *)

let set_site_tracking t on =
  if on && Bytes.length t.line_sites = 0 then begin
    let nlines = (t.cfg.Config.size + cl - 1) / cl in
    t.line_sites <- Bytes.make nlines '\000';
    t.pending_sites <- Bytes.make (Array.length t.pending_lines) '\000'
  end;
  t.site_sp <- 0;
  t.site_cur <- 0;
  t.site_on <- on

let site_tracking t = t.site_on

let[@inline] site_enter t id =
  if t.site_on then begin
    let sp = t.site_sp in
    if sp < Array.length t.site_stack then begin
      t.site_stack.(sp) <- id;
      t.site_cur <- id
    end;
    (* deeper-than-capacity pushes keep charging the deepest stored site *)
    t.site_sp <- sp + 1
  end

let[@inline] site_exit t =
  if t.site_on && t.site_sp > 0 then begin
    let sp = t.site_sp - 1 in
    t.site_sp <- sp;
    let cap = Array.length t.site_stack in
    if sp <= cap then
      t.site_cur <- (if sp = 0 then 0 else t.site_stack.(sp - 1))
  end

let current_site t = if t.site_on then t.site_cur else 0

(* Stamp every cacheline covered by a store with the innermost site, so
   traffic charged later (clwb staging, XPBuffer arrival, media
   write-back) can be attributed to the code that produced the bytes
   rather than the code that happened to trigger the eviction. *)
let[@inline] stamp_range t addr len =
  if t.site_on && len > 0 then begin
    let s = Char.unsafe_chr t.site_cur in
    let last = (addr + len - 1) lsr 6 in
    for li = addr lsr 6 to last do
      Bytes.unsafe_set t.line_sites li s
    done
  end

(* [line] is a line-aligned address; only called while [site_on]. *)
let[@inline] site_at t line = Char.code (Bytes.unsafe_get t.line_sites (line lsr 6))
let[@inline] site_chr t line = Bytes.unsafe_get t.line_sites (line lsr 6)
let plan_failure t ~after_fences = t.fail_after_fences <- Some after_fences
let cancel_failure t = t.fail_after_fences <- None

let config t = t.cfg
let size t = t.cfg.Config.size
let stats t = t.stats
let snapshot t = Stats.copy t.stats
let add_user_bytes t n = t.stats.Stats.user_bytes <- t.stats.Stats.user_bytes + n
let dirty_lines t = t.dirty_count
let xpbuffer_occupancy t = t.xp_count
let media_byte t addr = Char.code t.media.%[addr]
let peek_u8 t addr = Char.code t.work.%[addr]

let tick t =
  t.lru_clock <- t.lru_clock + 1;
  t.lru_clock

let check_range t addr len =
  assert (addr >= 0 && len >= 0 && addr + len <= t.cfg.Config.size)

(* --- dirty-set bitset helpers ---------------------------------------- *)

let dirty_mem t line = Bitset.mem t.dirty_bits (line lsr 6)

let dirty_add t line =
  Bitset.set t.dirty_bits (line lsr 6);
  t.dirty_count <- t.dirty_count + 1

let dirty_remove t line =
  Bitset.clear t.dirty_bits (line lsr 6);
  t.dirty_count <- t.dirty_count - 1

(* Apply [f] to every dirty line in ascending address order.  O(lines/8)
   scan; only used on the cold paths (drain, crash). *)
let iter_dirty_ascending t f =
  let bits = t.dirty_bits in
  for j = 0 to Bytes.length bits - 1 do
    let byte = Char.code (Bytes.unsafe_get bits j) in
    if byte <> 0 then
      for k = 0 to 7 do
        if byte land (1 lsl k) <> 0 then f (((j lsl 3) + k) lsl 6)
      done
  done

let dirty_reset t =
  Bitset.reset t.dirty_bits;
  t.dirty_count <- 0

(* --- intrusive LRU lists ---------------------------------------------- *)

let slot_unlink s =
  s.prev.next <- s.next;
  s.next.prev <- s.prev

(* Append at the MRU end (just before the sentinel): the list stays sorted
   by ascending [lru] stamp, so the head is always the minimum — exactly
   the victim the former whole-table minimum scan selected. *)
let slot_append_mru sentinel s =
  s.prev <- sentinel.prev;
  s.next <- sentinel;
  sentinel.prev.next <- s;
  sentinel.prev <- s

let slot_pool_take t =
  let s = t.xp_pool in
  if s == t.xp_sentinel then
    {
      xp = -1;
      data = Bytes.make Geometry.xpline_size '\000';
      valid = 0;
      lru = 0;
      site = 0;
      prev = t.xp_sentinel;
      next = t.xp_sentinel;
    }
  else begin
    t.xp_pool <- s.next;
    s
  end

let slot_pool_put t s =
  s.valid <- 0;
  s.next <- t.xp_pool;
  t.xp_pool <- s

let rc_unlink n =
  n.rprev.rnext <- n.rnext;
  n.rnext.rprev <- n.rprev

let rc_append_mru sentinel n =
  n.rprev <- sentinel.rprev;
  n.rnext <- sentinel;
  sentinel.rprev.rnext <- n;
  sentinel.rprev <- n

let rc_pool_take t =
  let n = t.rc_pool in
  if n == t.rc_sentinel then
    { rxp = -1; stamp = 0; rprev = t.rc_sentinel; rnext = t.rc_sentinel }
  else begin
    t.rc_pool <- n.rnext;
    n
  end

let rc_pool_put t n =
  n.rnext <- t.rc_pool;
  t.rc_pool <- n

(* --- media write-back path ----------------------------------------- *)

let write_back_slot t xp slot =
  let st = t.stats in
  if slot.valid <> 0 then begin
    (if t.site_on then
       match t.tracer with
       | None -> ()
       | Some f ->
         f (Media_write { xp; site = slot.site; fill = slot.valid <> 0b1111 }));
    if slot.valid <> 0b1111 then begin
      (* partially buffered XPLine: read-modify-write fill from media *)
      st.Stats.media_read_bytes <-
        st.Stats.media_read_bytes + Geometry.xpline_size;
      st.Stats.media_read_lines <- st.Stats.media_read_lines + 1
    end;
    for sub = 0 to Geometry.lines_per_xpline - 1 do
      if slot.valid land (1 lsl sub) <> 0 then
        Bytes.blit slot.data
          (sub * Geometry.cacheline_size)
          t.media
          (xp + (sub * Geometry.cacheline_size))
          Geometry.cacheline_size
    done;
    st.Stats.media_write_bytes <-
      st.Stats.media_write_bytes + Geometry.xpline_size;
    st.Stats.media_write_lines <- st.Stats.media_write_lines + 1;
    match t.classifier with
    | Some f ->
      let c = f xp in
      if c >= 0 && c < Stats.classes then
        st.Stats.media_write_bytes_by_class.(c) <-
          st.Stats.media_write_bytes_by_class.(c) + Geometry.xpline_size
    | None -> ()
  end

let evict_lru_xpline t =
  let victim = t.xp_sentinel.next in
  if victim != t.xp_sentinel then begin
    write_back_slot t victim.xp victim;
    t.xp_map.(victim.xp lsr 8) <- t.xp_sentinel;
    t.xp_count <- t.xp_count - 1;
    slot_unlink victim;
    slot_pool_put t victim
  end

(* A 64 B cacheline (its content at [src.(srcoff..)]) arrives at the
   XPBuffer.  This is the persistence boundary: once here, the data
   survives power failure (ADR domain).  [site]/[evict] only feed the
   attribution event stream; they change no modeled number. *)
let xpbuffer_insert t ~site ~evict line src srcoff =
  (if t.site_on then
     match t.tracer with
     | None -> ()
     | Some f -> f (Xp_write { line; site; evict }));
  let st = t.stats in
  let xp = Geometry.xpline_of line in
  let sub = Geometry.subline_of line in
  let slot =
    let found = t.xp_map.(xp lsr 8) in
    if found != t.xp_sentinel then begin
      st.Stats.xpbuffer_hits <- st.Stats.xpbuffer_hits + 1;
      slot_unlink found;
      slot_append_mru t.xp_sentinel found;
      found
    end
    else begin
      st.Stats.xpbuffer_misses <- st.Stats.xpbuffer_misses + 1;
      if t.xp_count >= t.cfg.Config.xpbuffer_lines then evict_lru_xpline t;
      let slot = slot_pool_take t in
      slot.xp <- xp;
      slot.valid <- 0;
      slot_append_mru t.xp_sentinel slot;
      t.xp_map.(xp lsr 8) <- slot;
      t.xp_count <- t.xp_count + 1;
      slot
    end
  in
  Bytes.blit src srcoff slot.data
    (sub * Geometry.cacheline_size)
    Geometry.cacheline_size;
  slot.valid <- slot.valid lor (1 lsl sub);
  slot.lru <- tick t;
  slot.site <- site;
  st.Stats.xpbuffer_write_bytes <-
    st.Stats.xpbuffer_write_bytes + Geometry.cacheline_size

(* Write back the whole XPBuffer in ascending XPLine order (cold path:
   drain and crash only). *)
let flush_xpbuffer_ordered t =
  let slots = ref [] in
  let s = ref t.xp_sentinel.next in
  while !s != t.xp_sentinel do
    slots := !s :: !slots;
    t.xp_map.((!s).xp lsr 8) <- t.xp_sentinel;
    s := (!s).next
  done;
  t.xp_count <- 0;
  let ordered = List.sort (fun a b -> compare a.xp b.xp) !slots in
  List.iter (fun slot -> write_back_slot t slot.xp slot) ordered;
  t.xp_sentinel.prev <- t.xp_sentinel;
  t.xp_sentinel.next <- t.xp_sentinel;
  List.iter (fun slot -> slot_pool_put t slot) ordered

let read_cache_clear t =
  let s = t.rc_sentinel in
  let n = ref s.rnext in
  while !n != s do
    let nx = !n.rnext in
    t.rc_map.(!n.rxp lsr 8) <- s;
    rc_pool_put t !n;
    n := nx
  done;
  s.rprev <- s;
  s.rnext <- s;
  t.rc_count <- 0

(* --- CPU cache (store buffer) path ---------------------------------- *)

(* Capacity eviction of a dirty line: an implicit, locality-oblivious
   flush straight into the XPBuffer. *)
let evict_one_dirty t =
  (* Under eADR nothing is ever explicitly flushed, so the eviction stream
     carries every thread's lines interleaved: write-backs of one XPLine's
     cachelines scatter far beyond the XPBuffer's combining window.  With
     explicit flushes (ADR) capacity evictions are rare and roughly
     temporal. *)
  let jitter = if t.cfg.Config.eadr then 2048 else 64 in
  let line = ref (Ring.pop_jittered_raw t.dirty_fifo t.rng ~jitter) in
  while !line >= 0 && not (dirty_mem t !line) do
    (* stale ring entry: the line was clwb'd since it was pushed *)
    line := Ring.pop_jittered_raw t.dirty_fifo t.rng ~jitter
  done;
  if !line >= 0 then begin
    dirty_remove t !line;
    t.stats.Stats.cpu_evictions <- t.stats.Stats.cpu_evictions + 1;
    let site = if t.site_on then site_at t !line else 0 in
    xpbuffer_insert t ~site ~evict:true !line t.work !line
  end

let mark_dirty t line =
  if not (dirty_mem t line) then begin
    dirty_add t line;
    Ring.push t.dirty_fifo line;
    if t.dirty_count > t.cfg.Config.cpu_cache_lines then evict_one_dirty t
  end

let mark_dirty_range t addr len =
  if len > 0 then begin
    let last = Geometry.line_of (addr + len - 1) in
    let a = ref (Geometry.line_of addr) in
    while !a <= last do
      mark_dirty t !a;
      a := !a + cl
    done
  end

let store t addr b =
  if t.ro then ro_fail ();
  let len = Bytes.length b in
  check_range t addr len;
  trace_store t addr len;
  Bytes.blit b 0 t.work addr len;
  t.stats.Stats.store_bytes <- t.stats.Stats.store_bytes + len;
  stamp_range t addr len;
  mark_dirty_range t addr len

let store_string t addr s =
  if t.ro then ro_fail ();
  let len = String.length s in
  check_range t addr len;
  trace_store t addr len;
  Bytes.blit_string s 0 t.work addr len;
  t.stats.Stats.store_bytes <- t.stats.Stats.store_bytes + len;
  stamp_range t addr len;
  mark_dirty_range t addr len

let store_u64 t addr v =
  if t.ro then ro_fail ();
  check_range t addr 8;
  trace_store t addr 8;
  Bytes.set_int64_le t.work addr v;
  t.stats.Stats.store_bytes <- t.stats.Stats.store_bytes + 8;
  stamp_range t addr 8;
  mark_dirty_range t addr 8

let store_u8 t addr v =
  if t.ro then ro_fail ();
  check_range t addr 1;
  trace_store t addr 1;
  t.work.%[addr] <- Char.chr (v land 0xff);
  t.stats.Stats.store_bytes <- t.stats.Stats.store_bytes + 1;
  stamp_range t addr 1;
  mark_dirty t (Geometry.line_of addr)

let fill t addr len c =
  if t.ro then ro_fail ();
  check_range t addr len;
  trace_store t addr len;
  Bytes.fill t.work addr len c;
  t.stats.Stats.store_bytes <- t.stats.Stats.store_bytes + len;
  stamp_range t addr len;
  mark_dirty_range t addr len

(* --- pending (clwb'd, unfenced) staging ------------------------------- *)

let pending_grow t need =
  let cap = Array.length t.pending_lines in
  if need > cap then begin
    let ncap = max (2 * cap) need in
    let nlines = Array.make ncap 0 in
    Array.blit t.pending_lines 0 nlines 0 t.pending_len;
    let narena = Bytes.make (ncap * cl) '\000' in
    Bytes.blit t.pending_arena 0 narena 0 (t.pending_len * cl);
    t.pending_lines <- nlines;
    t.pending_arena <- narena;
    if t.site_on then begin
      let nsites = Bytes.make ncap '\000' in
      Bytes.blit t.pending_sites 0 nsites 0 t.pending_len;
      t.pending_sites <- nsites
    end
  end

(* Stage (or re-stage) the current content of [line] for the next fence.
   The array stays sorted by line address — clwb streams are overwhelmingly
   ascending (flush_range), so the common case is an O(1) append and
   [sfence] never has to sort. *)
let pending_put t line =
  let len = t.pending_len in
  if len > 0 && t.pending_lines.(len - 1) = line then begin
    (* re-flush of the line staged last: refresh its snapshot *)
    Bytes.blit t.work line t.pending_arena ((len - 1) * cl) cl;
    if t.site_on then Bytes.set t.pending_sites (len - 1) (site_chr t line)
  end
  else if len = 0 || line > t.pending_lines.(len - 1) then begin
    pending_grow t (len + 1);
    t.pending_lines.(len) <- line;
    Bytes.blit t.work line t.pending_arena (len * cl) cl;
    if t.site_on then Bytes.set t.pending_sites len (site_chr t line);
    Bitset.set t.pending_bits (line lsr 6);
    t.pending_len <- len + 1
  end
  else begin
    (* out-of-order flush: binary-search the slot, shift the tail *)
    let lo = ref 0 and hi = ref len in
    while !lo < !hi do
      let mid = (!lo + !hi) lsr 1 in
      if t.pending_lines.(mid) < line then lo := mid + 1 else hi := mid
    done;
    let p = !lo in
    if p < len && t.pending_lines.(p) = line then begin
      Bytes.blit t.work line t.pending_arena (p * cl) cl;
      if t.site_on then Bytes.set t.pending_sites p (site_chr t line)
    end
    else begin
      pending_grow t (len + 1);
      Array.blit t.pending_lines p t.pending_lines (p + 1) (len - p);
      Bytes.blit t.pending_arena (p * cl) t.pending_arena ((p + 1) * cl)
        ((len - p) * cl);
      t.pending_lines.(p) <- line;
      Bytes.blit t.work line t.pending_arena (p * cl) cl;
      if t.site_on then begin
        Bytes.blit t.pending_sites p t.pending_sites (p + 1) (len - p);
        Bytes.set t.pending_sites p (site_chr t line)
      end;
      Bitset.set t.pending_bits (line lsr 6);
      t.pending_len <- len + 1
    end
  end

let pending_mem t line = Bitset.mem t.pending_bits (line lsr 6)

let pending_clear t =
  for i = 0 to t.pending_len - 1 do
    Bitset.clear t.pending_bits (t.pending_lines.(i) lsr 6)
  done;
  t.pending_len <- 0

(* --- load path ------------------------------------------------------- *)

let read_cache_insert t xp =
  if t.rc_count >= t.cfg.Config.read_cache_lines then begin
    (* evict the least recently stamped XPLine: the list head *)
    let victim = t.rc_sentinel.rnext in
    if victim != t.rc_sentinel then begin
      t.rc_map.(victim.rxp lsr 8) <- t.rc_sentinel;
      t.rc_count <- t.rc_count - 1;
      rc_unlink victim;
      rc_pool_put t victim
    end
  end;
  let node = rc_pool_take t in
  node.rxp <- xp;
  node.stamp <- tick t;
  rc_append_mru t.rc_sentinel node;
  t.rc_map.(xp lsr 8) <- node;
  t.rc_count <- t.rc_count + 1

(* A load touching an XPLine costs a media read unless that XPLine is in
   the XPBuffer, in the read cache, or still dirty in the CPU cache.  The
   CPU cache holds 64 B cachelines, not whole XPLines, so only the
   sublines the load actually covers can be served from it. *)
(* Are all the sublines of [xp] covered by [addr, addr+len) held dirty or
   pending in the CPU cache?  Top-level (not a closure inside
   [account_load]) so the load fast path allocates nothing. *)
let cached_in_cpu t addr len xp =
  let lo = max addr xp in
  let hi = min (addr + len) (xp + Geometry.xpline_size) in
  let last = Geometry.line_of (hi - 1) in
  let a = ref (Geometry.line_of lo) in
  let ok = ref true in
  while !ok && !a <= last do
    if not (dirty_mem t !a || pending_mem t !a) then ok := false;
    a := !a + cl
  done;
  !ok

let account_load t addr len =
  if len > 0 then begin
    let last_xp = Geometry.xpline_of (addr + len - 1) in
    let xp = ref (Geometry.xpline_of addr) in
    while !xp <= last_xp do
      let x = !xp in
      if t.xp_map.(x lsr 8) != t.xp_sentinel then ()
      else begin
        let node = t.rc_map.(x lsr 8) in
        if node != t.rc_sentinel then begin
          node.stamp <- tick t;
          rc_unlink node;
          rc_append_mru t.rc_sentinel node
        end
        else begin
          if cached_in_cpu t addr len x then ()
          else begin
            t.stats.Stats.media_read_bytes <-
              t.stats.Stats.media_read_bytes + Geometry.xpline_size;
            t.stats.Stats.media_read_lines <-
              t.stats.Stats.media_read_lines + 1;
            read_cache_insert t x
          end
        end
      end;
      xp := x + Geometry.xpline_size
    done
  end

let load t addr len =
  check_range t addr len;
  trace_load t addr len;
  account_load t addr len;
  Bytes.sub t.work addr len

let load_u64 t addr =
  check_range t addr 8;
  trace_load t addr 8;
  account_load t addr 8;
  Bytes.get_int64_le t.work addr

let load_u8 t addr =
  check_range t addr 1;
  trace_load t addr 1;
  account_load t addr 1;
  Char.code t.work.%[addr]

(* --- persistence primitives ------------------------------------------ *)

(* Under eADR the paper's methodology removes flush instructions entirely
   (§5.5): caches are persistent, and media traffic is driven by capacity
   evictions instead of explicit flushes.  We model that by making
   clwb/sfence free no-ops in eADR mode. *)
let clwb t addr =
  if t.ro then ro_fail ();
  if not t.cfg.Config.eadr then begin
    let line = Geometry.line_of addr in
    trace_clwb t line;
    t.stats.Stats.clwb_count <- t.stats.Stats.clwb_count + 1;
    if dirty_mem t line then begin
      dirty_remove t line;
      pending_put t line
    end
  end

let flush_range t addr len =
  if len > 0 then begin
    let last = Geometry.line_of (addr + len - 1) in
    let a = ref (Geometry.line_of addr) in
    while !a <= last do
      clwb t !a;
      a := !a + cl
    done
  end

let sfence t =
  if t.ro then ro_fail ();
  if not t.cfg.Config.eadr then begin
    (match t.fail_after_fences with
    | Some n when n <= 1 ->
      t.fail_after_fences <- None;
      (* power fails before this fence completes: its staged lines stay
         in the volatile domain *)
      raise Power_failure
    | Some n -> t.fail_after_fences <- Some (n - 1)
    | None -> ());
    (* emitted only when the fence completes: a planned Power_failure
       leaves the staged lines unfenced, and the shadow must agree *)
    trace0 t Sfence;
    t.stats.Stats.sfence_count <- t.stats.Stats.sfence_count + 1;
    (* staged lines reach the XPBuffer in ascending address order; the
       pending array is maintained sorted, so this is a single sweep *)
    for i = 0 to t.pending_len - 1 do
      let site = if t.site_on then Char.code t.pending_sites.%[i] else 0 in
      xpbuffer_insert t ~site ~evict:false t.pending_lines.(i) t.pending_arena
        (i * cl)
    done;
    pending_clear t
  end

let persist t addr len =
  flush_range t addr len;
  sfence t

let drain t =
  if t.ro then ro_fail ();
  (* one Drain event stands for the whole clean shutdown; the internal
     sfence must not additionally be observed (it would register as an
     empty fence in a shadow that already persisted everything) *)
  trace0 t Drain;
  let tr = t.tracer in
  t.tracer <- None;
  Fun.protect
    ~finally:(fun () -> t.tracer <- tr)
    (fun () ->
      Ring.clear t.dirty_fifo;
      iter_dirty_ascending t (fun line ->
          let site = if t.site_on then site_at t line else 0 in
          xpbuffer_insert t ~site ~evict:false line t.work line);
      dirty_reset t;
      sfence t;
      flush_xpbuffer_ordered t)

(* --- host-file persistence --------------------------------------------- *)

(* Image format v2: 8-byte magic, 8-byte big-endian size, media bytes.
   v1 ("PMEMIMG1") encoded the size with [output_binary_int], which
   silently truncates to 32 bits — v1 images are still readable, but
   writing always uses the 64-bit header. *)
let image_magic = "PMEMIMG2"
let image_magic_v1 = "PMEMIMG1"

let save_image t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc image_magic;
      let hdr = Bytes.create 8 in
      Bytes.set_int64_be hdr 0 (Int64.of_int (Bytes.length t.media));
      output_bytes oc hdr;
      output_bytes oc t.media)

let load_image ?config path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let magic, size =
        try
          let magic = really_input_string ic (String.length image_magic) in
          if magic = image_magic then begin
            let size64 =
              Bytes.get_int64_be (Bytes.of_string (really_input_string ic 8)) 0
            in
            if size64 < 0L || size64 > Int64.of_int max_int then
              invalid_arg
                (Printf.sprintf
                   "Device.load_image: unreasonable media size %Ld" size64);
            (magic, Int64.to_int size64)
          end
          else if magic = image_magic_v1 then (magic, input_binary_int ic)
          else (magic, 0)
        with End_of_file ->
          invalid_arg "Device.load_image: truncated image header"
      in
      if magic <> image_magic && magic <> image_magic_v1 then
        invalid_arg "Device.load: not a PM image file";
      let remaining = in_channel_length ic - pos_in ic in
      if size < 0 || size > remaining then
        invalid_arg
          (Printf.sprintf
             "Device.load_image: truncated or corrupt image (declares %d \
              media bytes, file holds %d)"
             size remaining);
      let cfg =
        match config with Some c -> { c with Config.size } | None -> Config.default ~size ()
      in
      let t = create ~config:cfg () in
      really_input ic t.media 0 size;
      Bytes.blit t.media 0 t.work 0 size;
      t)

(* --- checkpoint / restore --------------------------------------------- *)

(* Deep snapshot of the complete device state, including the adversarial
   RNG and the counters: restoring one and replaying the same operations
   reproduces the original execution bit for bit.  This is what lets the
   crash-state model checker re-enter the same workload once per fence
   index without re-formatting a device each time.  The LRU lists are
   snapshotted in head-to-tail (LRU-to-MRU) order, so rebuilding them by
   appending preserves every future victim choice. *)
type checkpoint = {
  ck_work : Bytes.t;
  ck_media : Bytes.t;
  ck_dirty_bits : Bytes.t;
  ck_dirty_count : int;
  ck_fifo_buf : int array;
  ck_fifo_head : int;
  ck_fifo_len : int;
  ck_pending_lines : int array;  (* exactly pending_len entries *)
  ck_pending_arena : Bytes.t;
  ck_xpbuffer : (int * Bytes.t * int * int) array;
      (* (xp, data, valid, lru) in LRU-to-MRU order *)
  ck_read_cache : (int * int) array;  (* (xp, stamp) in LRU-to-MRU order *)
  ck_lru_clock : int;
  ck_rng : Random.State.t;
  ck_stats : Stats.t;
  ck_fail_after_fences : int option;
}

let checkpoint t =
  let ck_xpbuffer = Array.make t.xp_count (0, Bytes.create 0, 0, 0) in
  let i = ref 0 in
  let s = ref t.xp_sentinel.next in
  while !s != t.xp_sentinel do
    ck_xpbuffer.(!i) <- ((!s).xp, Bytes.copy (!s).data, (!s).valid, (!s).lru);
    incr i;
    s := (!s).next
  done;
  let ck_read_cache = Array.make t.rc_count (0, 0) in
  let j = ref 0 in
  let n = ref t.rc_sentinel.rnext in
  while !n != t.rc_sentinel do
    ck_read_cache.(!j) <- ((!n).rxp, (!n).stamp);
    incr j;
    n := (!n).rnext
  done;
  {
    ck_work = Bytes.copy t.work;
    ck_media = Bytes.copy t.media;
    ck_dirty_bits = Bytes.copy t.dirty_bits;
    ck_dirty_count = t.dirty_count;
    ck_fifo_buf = Array.copy t.dirty_fifo.Ring.buf;
    ck_fifo_head = t.dirty_fifo.Ring.head;
    ck_fifo_len = t.dirty_fifo.Ring.len;
    ck_pending_lines = Array.sub t.pending_lines 0 t.pending_len;
    ck_pending_arena = Bytes.sub t.pending_arena 0 (t.pending_len * cl);
    ck_xpbuffer;
    ck_read_cache;
    ck_lru_clock = t.lru_clock;
    ck_rng = Random.State.copy t.rng;
    ck_stats = Stats.copy t.stats;
    ck_fail_after_fences = t.fail_after_fences;
  }

let restore t ck =
  if Bytes.length ck.ck_work <> Bytes.length t.work then
    invalid_arg "Device.restore: checkpoint from a different device size";
  Bytes.blit ck.ck_work 0 t.work 0 (Bytes.length t.work);
  Bytes.blit ck.ck_media 0 t.media 0 (Bytes.length t.media);
  Bytes.blit ck.ck_dirty_bits 0 t.dirty_bits 0 (Bytes.length t.dirty_bits);
  t.dirty_count <- ck.ck_dirty_count;
  t.dirty_fifo.Ring.buf <- Array.copy ck.ck_fifo_buf;
  t.dirty_fifo.Ring.head <- ck.ck_fifo_head;
  t.dirty_fifo.Ring.len <- ck.ck_fifo_len;
  pending_clear t;
  let plen = Array.length ck.ck_pending_lines in
  pending_grow t plen;
  Array.blit ck.ck_pending_lines 0 t.pending_lines 0 plen;
  Bytes.blit ck.ck_pending_arena 0 t.pending_arena 0 (plen * cl);
  t.pending_len <- plen;
  for i = 0 to plen - 1 do
    Bitset.set t.pending_bits (t.pending_lines.(i) lsr 6)
  done;
  (* rebuild the XPBuffer LRU list in snapshotted order *)
  let s = ref t.xp_sentinel.next in
  while !s != t.xp_sentinel do
    let nx = (!s).next in
    t.xp_map.((!s).xp lsr 8) <- t.xp_sentinel;
    slot_pool_put t !s;
    s := nx
  done;
  t.xp_count <- 0;
  t.xp_sentinel.prev <- t.xp_sentinel;
  t.xp_sentinel.next <- t.xp_sentinel;
  Array.iter
    (fun (xp, data, valid, lru) ->
      let slot = slot_pool_take t in
      slot.xp <- xp;
      slot.valid <- valid;
      slot.lru <- lru;
      slot.site <- 0;  (* attribution is lifetime config, not device state *)
      Bytes.blit data 0 slot.data 0 Geometry.xpline_size;
      slot_append_mru t.xp_sentinel slot;
      t.xp_map.(xp lsr 8) <- slot;
      t.xp_count <- t.xp_count + 1)
    ck.ck_xpbuffer;
  read_cache_clear t;
  Array.iter
    (fun (xp, stamp) ->
      let node = rc_pool_take t in
      node.rxp <- xp;
      node.stamp <- stamp;
      rc_append_mru t.rc_sentinel node;
      t.rc_map.(xp lsr 8) <- node;
      t.rc_count <- t.rc_count + 1)
    ck.ck_read_cache;
  t.lru_clock <- ck.ck_lru_clock;
  t.rng <- Random.State.copy ck.ck_rng;
  Stats.blit ~src:ck.ck_stats ~dst:t.stats;
  t.fail_after_fences <- ck.ck_fail_after_fences

(* --- crash ------------------------------------------------------------ *)

(* A write view's share of a power failure: coin-flip its un-fenced
   pending and dirty lines into its private XPBuffer and drain that to
   the shared media image — but do NOT blit media back over [work].
   A fleet crash spills every write view first and then runs the parent's
   [crash] last: the parent's final blit is what loses all volatile
   content, and running it before a sibling's spill would clobber that
   sibling's still-unflipped dirty-line snapshots. *)
let crash_spill t =
  trace0 t Crash;
  t.fail_after_fences <- None;
  let keep () =
    t.cfg.Config.eadr
    || Random.State.float t.rng 1.0 < t.cfg.Config.persist_prob
  in
  for i = 0 to t.pending_len - 1 do
    if keep () then
      xpbuffer_insert t ~site:0 ~evict:false t.pending_lines.(i)
        t.pending_arena (i * cl)
  done;
  pending_clear t;
  Ring.clear t.dirty_fifo;
  iter_dirty_ascending t (fun line ->
      if keep () then xpbuffer_insert t ~site:0 ~evict:false line t.work line);
  dirty_reset t;
  flush_xpbuffer_ordered t;
  read_cache_clear t

let crash t =
  if t.ro then ro_fail ();
  trace0 t Crash;
  t.stats.Stats.crashes <- t.stats.Stats.crashes + 1;
  (* a failure plan dies with the power: it must not fire at a fence of
     the recovery that follows *)
  t.fail_after_fences <- None;
  let keep () =
    t.cfg.Config.eadr
    || Random.State.float t.rng 1.0 < t.cfg.Config.persist_prob
  in
  (* Unfenced flushes and plain dirty lines persist adversarially, coin
     flips drawn in ascending line order (the pending array is sorted and
     the dirty bitset scans in address order). *)
  for i = 0 to t.pending_len - 1 do
    if keep () then
      xpbuffer_insert t ~site:0 ~evict:false t.pending_lines.(i)
        t.pending_arena (i * cl)
  done;
  pending_clear t;
  Ring.clear t.dirty_fifo;
  iter_dirty_ascending t (fun line ->
      if keep () then xpbuffer_insert t ~site:0 ~evict:false line t.work line);
  dirty_reset t;
  (* The ADR domain (WPQ + XPBuffer) always drains to media on power loss. *)
  flush_xpbuffer_ordered t;
  read_cache_clear t;
  (* Volatile content is lost: what remains is exactly the media image. *)
  Bytes.blit t.media 0 t.work 0 (Bytes.length t.media)
