(** Hardware-counter model of the simulated DCPMM.

    Mirrors the metrics the paper collects with [ipmctl] (§2.1): bytes
    written to the XPBuffer, bytes physically written to / read from the
    3D-XPoint media, and the derived CLI- and XBI-amplification ratios. *)

type t = {
  mutable user_bytes : int;
      (** Logical payload bytes the application declared (denominator of
          both amplification ratios). *)
  mutable store_bytes : int;  (** Bytes stored through the CPU cache. *)
  mutable clwb_count : int;  (** Cacheline flush instructions issued. *)
  mutable sfence_count : int;  (** Fence instructions issued. *)
  mutable xpbuffer_write_bytes : int;
      (** 64 B cacheline arrivals into the write-combining buffer. *)
  mutable xpbuffer_hits : int;
      (** Arrivals that coalesced into an XPLine already buffered. *)
  mutable xpbuffer_misses : int;  (** Arrivals that claimed a new slot. *)
  mutable media_write_bytes : int;
      (** Bytes physically written to the 3D-XPoint media (multiples of
          256 B). *)
  mutable media_write_lines : int;  (** XPLine writes to the media. *)
  mutable media_read_bytes : int;  (** Bytes read from the media. *)
  mutable media_read_lines : int;  (** XPLine reads from the media. *)
  mutable cpu_evictions : int;
      (** Dirty cachelines evicted by capacity pressure (implicit,
          locality-oblivious flushes; dominant in eADR mode). *)
  mutable crashes : int;  (** Crash injections performed. *)
  media_write_bytes_by_class : int array;
      (** Media write bytes attributed by the device's write classifier
          (e.g. chunk tag: 0 unclassified, 1 leaf, 2 log, 3 extent); used
          to split XBI-amplification between leaf nodes and WALs as in the
          paper's Fig 13(b). *)
}

val classes : int

val create : unit -> t
val copy : t -> t
val reset : t -> unit

val blit : src:t -> dst:t -> unit
(** Overwrite every counter of [dst] with [src]'s values (used by
    {!Device.restore} to rewind the live counter record in place). *)

val equal : t -> t -> bool
(** Structural equality of every counter, including the per-class
    attribution array. *)

val diff : after:t -> before:t -> t
(** Counter deltas between two snapshots; used for per-phase accounting. *)

val merge : t -> t -> t
(** Counter-wise sum (per-class attribution included).  Commutative and
    associative with {!create}[ ()] as the neutral element; the sharded
    execution layer uses it to aggregate per-domain device traffic into
    one record, and phase deltas on a single device satisfy
    [merge (diff b a) (diff c b) = diff c a] by construction. *)

val merge_all : t list -> t
(** Fold of {!merge} over a list (empty list yields zeros).  Never aliases
    its inputs: mutating the result does not disturb the sources. *)

val to_assoc : t -> (string * int) list
(** Every counter as a (name, value) pair, per-class attribution
    included.  Gives golden/regression tests one stable flat view to
    compare and print, instead of field-by-field boilerplate. *)

val of_assoc : (string * int) list -> t
(** Inverse of {!to_assoc} (missing names default to 0): rebuild a counter
    record from its flat view.  Lets external snapshots — e.g. the
    [pmstat] tool diffing two metrics-JSON files — round-trip through the
    same arithmetic ({!diff}, {!merge}) as live records. *)

val cli_amplification : t -> float
(** [xpbuffer_write_bytes / user_bytes] (paper §2.1). *)

val xbi_amplification : t -> float
(** [media_write_bytes / user_bytes] (paper §2.1). *)

val pp : Format.formatter -> t -> unit
