let max_sites = 256

let labels = Array.make max_sites "(other)"
let next = ref 1
let table : (string, int) Hashtbl.t = Hashtbl.create 32
let mu = Mutex.create ()

let id name =
  Mutex.lock mu;
  let i =
    match Hashtbl.find_opt table name with
    | Some i -> i
    | None ->
      if !next >= max_sites then 0
      else begin
        let i = !next in
        (* write the label before publishing the id so a concurrent
           [label i] never observes the placeholder *)
        labels.(i) <- name;
        incr next;
        Hashtbl.add table name i;
        i
      end
  in
  Mutex.unlock mu;
  i

let label i = if i > 0 && i < max_sites then labels.(i) else "(other)"
let count () = !next
