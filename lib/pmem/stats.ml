type t = {
  mutable user_bytes : int;
  mutable store_bytes : int;
  mutable clwb_count : int;
  mutable sfence_count : int;
  mutable xpbuffer_write_bytes : int;
  mutable xpbuffer_hits : int;
  mutable xpbuffer_misses : int;
  mutable media_write_bytes : int;
  mutable media_write_lines : int;
  mutable media_read_bytes : int;
  mutable media_read_lines : int;
  mutable cpu_evictions : int;
  mutable crashes : int;
  media_write_bytes_by_class : int array;
}

let classes = 4

let create () =
  {
    user_bytes = 0;
    store_bytes = 0;
    clwb_count = 0;
    sfence_count = 0;
    xpbuffer_write_bytes = 0;
    xpbuffer_hits = 0;
    xpbuffer_misses = 0;
    media_write_bytes = 0;
    media_write_lines = 0;
    media_read_bytes = 0;
    media_read_lines = 0;
    cpu_evictions = 0;
    crashes = 0;
    media_write_bytes_by_class = Array.make classes 0;
  }

let copy t =
  {
    t with
    media_write_bytes_by_class = Array.copy t.media_write_bytes_by_class;
  }

let blit ~src ~dst =
  dst.user_bytes <- src.user_bytes;
  dst.store_bytes <- src.store_bytes;
  dst.clwb_count <- src.clwb_count;
  dst.sfence_count <- src.sfence_count;
  dst.xpbuffer_write_bytes <- src.xpbuffer_write_bytes;
  dst.xpbuffer_hits <- src.xpbuffer_hits;
  dst.xpbuffer_misses <- src.xpbuffer_misses;
  dst.media_write_bytes <- src.media_write_bytes;
  dst.media_write_lines <- src.media_write_lines;
  dst.media_read_bytes <- src.media_read_bytes;
  dst.media_read_lines <- src.media_read_lines;
  dst.cpu_evictions <- src.cpu_evictions;
  dst.crashes <- src.crashes;
  Array.blit src.media_write_bytes_by_class 0 dst.media_write_bytes_by_class 0
    classes

let equal a b =
  a.user_bytes = b.user_bytes
  && a.store_bytes = b.store_bytes
  && a.clwb_count = b.clwb_count
  && a.sfence_count = b.sfence_count
  && a.xpbuffer_write_bytes = b.xpbuffer_write_bytes
  && a.xpbuffer_hits = b.xpbuffer_hits
  && a.xpbuffer_misses = b.xpbuffer_misses
  && a.media_write_bytes = b.media_write_bytes
  && a.media_write_lines = b.media_write_lines
  && a.media_read_bytes = b.media_read_bytes
  && a.media_read_lines = b.media_read_lines
  && a.cpu_evictions = b.cpu_evictions
  && a.crashes = b.crashes
  && a.media_write_bytes_by_class = b.media_write_bytes_by_class

let reset t =
  t.user_bytes <- 0;
  t.store_bytes <- 0;
  t.clwb_count <- 0;
  t.sfence_count <- 0;
  t.xpbuffer_write_bytes <- 0;
  t.xpbuffer_hits <- 0;
  t.xpbuffer_misses <- 0;
  t.media_write_bytes <- 0;
  t.media_write_lines <- 0;
  t.media_read_bytes <- 0;
  t.media_read_lines <- 0;
  t.cpu_evictions <- 0;
  t.crashes <- 0;
  Array.fill t.media_write_bytes_by_class 0 classes 0

let diff ~after ~before =
  {
    user_bytes = after.user_bytes - before.user_bytes;
    store_bytes = after.store_bytes - before.store_bytes;
    clwb_count = after.clwb_count - before.clwb_count;
    sfence_count = after.sfence_count - before.sfence_count;
    xpbuffer_write_bytes =
      after.xpbuffer_write_bytes - before.xpbuffer_write_bytes;
    xpbuffer_hits = after.xpbuffer_hits - before.xpbuffer_hits;
    xpbuffer_misses = after.xpbuffer_misses - before.xpbuffer_misses;
    media_write_bytes = after.media_write_bytes - before.media_write_bytes;
    media_write_lines = after.media_write_lines - before.media_write_lines;
    media_read_bytes = after.media_read_bytes - before.media_read_bytes;
    media_read_lines = after.media_read_lines - before.media_read_lines;
    cpu_evictions = after.cpu_evictions - before.cpu_evictions;
    crashes = after.crashes - before.crashes;
    media_write_bytes_by_class =
      Array.init classes (fun i ->
          after.media_write_bytes_by_class.(i)
          - before.media_write_bytes_by_class.(i));
  }

let merge a b =
  {
    user_bytes = a.user_bytes + b.user_bytes;
    store_bytes = a.store_bytes + b.store_bytes;
    clwb_count = a.clwb_count + b.clwb_count;
    sfence_count = a.sfence_count + b.sfence_count;
    xpbuffer_write_bytes = a.xpbuffer_write_bytes + b.xpbuffer_write_bytes;
    xpbuffer_hits = a.xpbuffer_hits + b.xpbuffer_hits;
    xpbuffer_misses = a.xpbuffer_misses + b.xpbuffer_misses;
    media_write_bytes = a.media_write_bytes + b.media_write_bytes;
    media_write_lines = a.media_write_lines + b.media_write_lines;
    media_read_bytes = a.media_read_bytes + b.media_read_bytes;
    media_read_lines = a.media_read_lines + b.media_read_lines;
    cpu_evictions = a.cpu_evictions + b.cpu_evictions;
    crashes = a.crashes + b.crashes;
    media_write_bytes_by_class =
      Array.init classes (fun i ->
          a.media_write_bytes_by_class.(i) + b.media_write_bytes_by_class.(i));
  }

let merge_all = function
  | [] -> create ()
  | s :: rest -> List.fold_left merge (copy s) rest

let to_assoc t =
  [
    ("user_bytes", t.user_bytes);
    ("store_bytes", t.store_bytes);
    ("clwb_count", t.clwb_count);
    ("sfence_count", t.sfence_count);
    ("xpbuffer_write_bytes", t.xpbuffer_write_bytes);
    ("xpbuffer_hits", t.xpbuffer_hits);
    ("xpbuffer_misses", t.xpbuffer_misses);
    ("media_write_bytes", t.media_write_bytes);
    ("media_write_lines", t.media_write_lines);
    ("media_read_bytes", t.media_read_bytes);
    ("media_read_lines", t.media_read_lines);
    ("cpu_evictions", t.cpu_evictions);
    ("crashes", t.crashes);
  ]
  @ Array.to_list
      (Array.mapi
         (fun i v -> (Printf.sprintf "media_write_bytes_class%d" i, v))
         t.media_write_bytes_by_class)

let of_assoc kvs =
  let t = create () in
  let get name = match List.assoc_opt name kvs with Some v -> v | None -> 0 in
  t.user_bytes <- get "user_bytes";
  t.store_bytes <- get "store_bytes";
  t.clwb_count <- get "clwb_count";
  t.sfence_count <- get "sfence_count";
  t.xpbuffer_write_bytes <- get "xpbuffer_write_bytes";
  t.xpbuffer_hits <- get "xpbuffer_hits";
  t.xpbuffer_misses <- get "xpbuffer_misses";
  t.media_write_bytes <- get "media_write_bytes";
  t.media_write_lines <- get "media_write_lines";
  t.media_read_bytes <- get "media_read_bytes";
  t.media_read_lines <- get "media_read_lines";
  t.cpu_evictions <- get "cpu_evictions";
  t.crashes <- get "crashes";
  for i = 0 to classes - 1 do
    t.media_write_bytes_by_class.(i) <-
      get (Printf.sprintf "media_write_bytes_class%d" i)
  done;
  t

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den
let cli_amplification t = ratio t.xpbuffer_write_bytes t.user_bytes
let xbi_amplification t = ratio t.media_write_bytes t.user_bytes

let pp ppf t =
  Fmt.pf ppf
    "@[<v>user bytes        %d@,\
     store bytes       %d@,\
     clwb              %d@,\
     sfence            %d@,\
     xpbuffer writes   %d B (hit %d / miss %d)@,\
     media writes      %d B (%d XPLines)@,\
     media reads       %d B (%d XPLines)@,\
     cpu evictions     %d@,\
     CLI-amplification %.2f@,\
     XBI-amplification %.2f@]"
    t.user_bytes t.store_bytes t.clwb_count t.sfence_count
    t.xpbuffer_write_bytes t.xpbuffer_hits t.xpbuffer_misses
    t.media_write_bytes
    (t.media_write_bytes / Geometry.xpline_size)
    t.media_read_bytes
    (t.media_read_bytes / Geometry.xpline_size)
    t.cpu_evictions (cli_amplification t) (xbi_amplification t)
