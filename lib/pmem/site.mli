(** Process-global registry of attribution *sites* — the scoped labels
    (["wal-append"], ["leaf-buffer"], ["smo-split"], ...) that the
    write-amplification profiler charges device traffic to.

    Sites are interned once (typically at module initialisation of the
    annotating library) into small integers so the device can stamp each
    dirty cacheline with one byte and tracer events can carry the id
    without allocating.  Id [0] is reserved for ["(other)"]: traffic
    issued outside any site bracket.

    The registry is append-only and mutex-protected; {!label} and
    {!count} take no lock (the label table is written before the id that
    indexes it is published, and ids are handed out monotonically). *)

val id : string -> int
(** Intern a label, returning its site id (idempotent).  At most
    {!max_sites} distinct labels fit one stamp byte; beyond that every
    new label maps to id [0] rather than raising — attribution degrades
    to ["(other)"] instead of breaking the instrumented program. *)

val label : int -> string
(** The label interned for an id; ["(other)"] for 0 and out-of-range. *)

val count : unit -> int
(** Number of registered sites, including the reserved id 0. *)

val max_sites : int
(** Capacity of the id space (fits the device's one-byte line stamps). *)
