(** Address geometry of the simulated device.

    The simulated DCPMM mirrors the two granularities that drive the paper's
    analysis: the 64 B CPU cacheline (unit of [clwb]) and the 256 B XPLine
    (unit of physical media access behind the XPBuffer). *)

let cacheline_size = 64
let xpline_size = 256
let lines_per_xpline = xpline_size / cacheline_size

(** Default XPBuffer capacity: 16 KB on-DIMM write-combining buffer. *)
let xpbuffer_capacity_lines = 16 * 1024 / xpline_size

let line_of addr = addr land lnot (cacheline_size - 1)
let xpline_of addr = addr land lnot (xpline_size - 1)

(** Index (0..3) of the cacheline within its XPLine. *)
let subline_of addr = (addr land (xpline_size - 1)) / cacheline_size

(** Apply [f] to every cacheline overlapping [addr, addr+len) in ascending
    address order.  Allocation-free equivalent of {!lines_in_range}; the
    device hot path (stores, flushes, load accounting) is built on this. *)
let iter_lines addr len f =
  if len > 0 then begin
    let last = line_of (addr + len - 1) in
    let a = ref (line_of addr) in
    while !a <= last do
      f !a;
      a := !a + cacheline_size
    done
  end

(** Apply [f] to every XPLine overlapping [addr, addr+len) in ascending
    address order.  Allocation-free equivalent of {!xplines_in_range}. *)
let iter_xplines addr len f =
  if len > 0 then begin
    let last = xpline_of (addr + len - 1) in
    let a = ref (xpline_of addr) in
    while !a <= last do
      f !a;
      a := !a + xpline_size
    done
  end

(** All cachelines overlapping [addr, addr+len). *)
let lines_in_range addr len =
  if len <= 0 then []
  else begin
    let first = line_of addr and last = line_of (addr + len - 1) in
    let rec collect acc a =
      if a < first then acc else collect (a :: acc) (a - cacheline_size)
    in
    collect [] last
  end

(** All XPLines overlapping [addr, addr+len). *)
let xplines_in_range addr len =
  if len <= 0 then []
  else begin
    let first = xpline_of addr and last = xpline_of (addr + len - 1) in
    let rec collect acc a =
      if a < first then acc else collect (a :: acc) (a - xpline_size)
    in
    collect [] last
  end
