(* Deduplicated, address-ordered cacheline flush set for one commit scope.
   Callers mark every store with [touch]; [commit] emits exactly one clwb
   per distinct dirty line plus a single trailing sfence — and nothing at
   all when the scope turned out to touch no line, so an empty scope can
   never produce an empty fence. *)

type t = { mutable lines : int array; mutable n : int }

let create ?(capacity = 16) () = { lines = Array.make (max capacity 1) 0; n = 0 }
let reset t = t.n <- 0
let pending t = t.n

let grow t =
  let bigger = Array.make (2 * Array.length t.lines) 0 in
  Array.blit t.lines 0 bigger 0 t.n;
  t.lines <- bigger

let touch_line t line =
  let seen = ref false in
  for i = 0 to t.n - 1 do
    if t.lines.(i) = line then seen := true
  done;
  if not !seen then begin
    if t.n = Array.length t.lines then grow t;
    t.lines.(t.n) <- line;
    t.n <- t.n + 1
  end

let touch t addr len = Geometry.iter_lines addr len (fun line -> touch_line t line)

(* In-place insertion sort: sets are a handful of lines, and the hot paths
   must stay allocation-free. *)
let sort_lines t =
  for i = 1 to t.n - 1 do
    let v = t.lines.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && t.lines.(!j) > v do
      t.lines.(!j + 1) <- t.lines.(!j);
      decr j
    done;
    t.lines.(!j + 1) <- v
  done

let flush_only t dev =
  if t.n > 0 then begin
    sort_lines t;
    for i = 0 to t.n - 1 do
      Device.clwb dev t.lines.(i)
    done;
    t.n <- 0
  end

let commit t dev =
  if t.n > 0 then begin
    flush_only t dev;
    Device.sfence dev
  end
