module D = Pmem.Device
module Alloc = Pmalloc.Alloc
module Slab = Pmalloc.Slab
module Extent = Pmalloc.Extent
module Wal = Walog.Wal
module Clock = Walog.Clock
module Config = Ccl_btree.Config
module Tree_stats = Ccl_btree.Tree_stats
module B = Ccl_btree.Buffer_node
module L = Ccl_btree.Leaf_node
(* A bucket reuses the leaf-node layout: packed bitmap|overflow-pointer
   word (8 B atomic), flush timestamp, fingerprints, 14 slots. *)

let hash_magic = 0x43434C2D48415348L (* "CCL-HASH" *)

type gc_state = { mutable cursor : int; old_epoch : int }

type t = {
  dev : D.t;
  alloc : Alloc.t;
  slab : Slab.t;
  wal : Wal.t;
  clock : Clock.t;
  cfg : Config.t;
  mask : int;
  buffers : B.t array;  (* one buffer node per directory bucket *)
  mutable global_epoch : int;
  mutable gc : gc_state option;
  mutable gc_floor : int;
  stats : Tree_stats.t;
  mutable rr_thread : int;
}

let device t = t.dev
let stats t = t.stats
let gc_active t = t.gc <> None

let bucket_of_key t key =
  let h = Int64.mul key 0xFF51AFD7ED558CCDL in
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  Int64.to_int (Int64.logand h (Int64.of_int t.mask))

(* ------------------------------------------------------------------ *)
(* Construction and recovery                                           *)
(* ------------------------------------------------------------------ *)

let create ?(cfg = Config.default) ~buckets dev =
  assert (buckets > 0 && buckets land (buckets - 1) = 0);
  let alloc = Alloc.format dev ~chunk_size:cfg.Config.chunk_size in
  let slab = Slab.create alloc Alloc.Leaf ~obj_size:L.size in
  let clock = Clock.create () in
  let wal = Wal.create alloc clock ~threads:cfg.Config.threads in
  (* persist the directory of bucket addresses in an extent *)
  let extent = Extent.create alloc in
  let dir = Extent.alloc extent (8 * buckets) in
  let buffers =
    Array.init buckets (fun i ->
        let addr = Slab.alloc slab in
        L.init dev addr ~next:0;
        D.store_u64 dev (dir + (8 * i)) (Int64.of_int addr);
        B.create ~nbatch:cfg.Config.nbatch ~leaf:addr ~low:0L)
  in
  D.persist dev dir (8 * buckets);
  let sb = Alloc.superblock alloc in
  D.store_u64 dev sb hash_magic;
  D.store_u64 dev (sb + 8) (Int64.of_int dir);
  D.store_u64 dev (sb + 16) (Int64.of_int buckets);
  D.persist dev sb 24;
  {
    dev;
    alloc;
    slab;
    wal;
    clock;
    cfg;
    mask = buckets - 1;
    buffers;
    global_epoch = 0;
    gc = None;
    gc_floor = 0;
    stats = Tree_stats.create ();
    rr_thread = 0;
  }

(* ------------------------------------------------------------------ *)
(* Bucket chains                                                       *)
(* ------------------------------------------------------------------ *)

let rec chain_find t bucket key =
  if bucket = 0 then None
  else begin
    match L.find t.dev bucket key with
    | Some i -> Some (bucket, i)
    | None -> chain_find t (L.next t.dev bucket) key
  end

let rec chain_tail t bucket =
  let nx = L.next t.dev bucket in
  if nx = 0 then bucket else chain_tail t nx

(* Apply a pending batch (unique keys; value 0 = tombstone) to the bucket
   chain headed at [head]: data-region writes, flush, fence; then one
   metadata commit per touched bucket, flush, fence (same protocol as the
   tree's batch insertion). *)
let bucket_apply t head ~pending =
  let dev = t.dev in
  let ts =
    List.fold_left
      (fun acc (_, _, x) -> if Int64.compare x acc > 0 then x else acc)
      0L pending
  in
  let touched_data = Hashtbl.create 8 in
  let touch addr len =
    Pmem.Geometry.iter_lines addr len (fun l ->
        Hashtbl.replace touched_data l ())
  in
  (* meta mutations per bucket: (new bits to set, bits to clear, fps) *)
  let meta = Hashtbl.create 4 in
  let meta_of bucket =
    match Hashtbl.find_opt meta bucket with
    | Some m -> m
    | None ->
      let m = (ref 0, ref 0, ref []) in
      Hashtbl.replace meta bucket m;
      m
  in
  (* occupancy for placement: bits already valid plus slots taken earlier
     in this batch.  Slots freed by this batch's tombstones are NOT
     reusable before the metadata commit: writing fresh data under a
     still-set valid bit would be visible after a crash in between. *)
  let effective_bitmap bucket =
    let base = L.bitmap dev bucket in
    match Hashtbl.find_opt meta bucket with
    | Some (set, _, _) -> base lor !set
    | None -> base
  in
  let rec free_slot_in_chain bucket =
    if bucket = 0 then None
    else begin
      let bm = effective_bitmap bucket in
      let rec scan i =
        if i >= L.slots then free_slot_in_chain (L.next dev bucket)
        else if bm land (1 lsl i) = 0 then Some (bucket, i)
        else scan (i + 1)
      in
      scan 0
    end
  in
  List.iter
    (fun (k, v, _) ->
      match chain_find t head k with
      | Some (bucket, i) ->
        if Int64.equal v 0L then begin
          let _, clear, _ = meta_of bucket in
          clear := !clear lor (1 lsl i)
        end
        else begin
          D.store_u64 dev (L.slot_addr bucket i + 8) v;
          touch (L.slot_addr bucket i + 8) 8
        end
      | None ->
        if not (Int64.equal v 0L) then begin
          let bucket, i =
            match free_slot_in_chain head with
            | Some s -> s
            | None ->
              (* logless overflow: write the new bucket fully, persist,
                 then link it with one atomic 8 B meta commit *)
              let nb = Slab.alloc t.slab in
              L.init dev nb ~next:0;
              let tail = chain_tail t head in
              L.store_meta_word dev tail ~bitmap:(L.bitmap dev tail) ~next:nb;
              D.persist dev tail 8;
              (nb, 0)
          in
          L.store_slot dev bucket i ~key:k ~value:v;
          touch (L.slot_addr bucket i) 16;
          let set, _, fps = meta_of bucket in
          set := !set lor (1 lsl i);
          fps := (i, k) :: !fps
        end)
    pending;
  Hashtbl.iter (fun line () -> D.clwb dev line) touched_data;
  D.sfence dev;
  Hashtbl.iter
    (fun bucket (set, clear, fps) ->
      List.iter (fun (i, k) -> L.store_fingerprint dev bucket i k) !fps;
      L.store_meta_word dev bucket
        ~bitmap:(L.bitmap dev bucket land lnot !clear lor !set)
        ~next:(L.next dev bucket);
      D.flush_range dev bucket 32)
    meta;
  L.store_timestamp dev head ts;
  D.flush_range dev (head + 8) 8;
  D.sfence dev;
  t.stats.Tree_stats.batch_flushes <- t.stats.Tree_stats.batch_flushes + 1

(* ------------------------------------------------------------------ *)
(* Logging and GC (§3.3, §3.4 transplanted)                            *)
(* ------------------------------------------------------------------ *)

let log_append t ~key ~value ~ts =
  let thread = t.rr_thread in
  t.rr_thread <- (t.rr_thread + 1) mod t.cfg.Config.threads;
  Wal.append t.wal ~thread ~epoch:t.global_epoch ~key ~value ~ts;
  t.stats.Tree_stats.log_appends <- t.stats.Tree_stats.log_appends + 1

let gc_step t n =
  match t.gc with
  | None -> ()
  | Some gc ->
    let rec go n =
      if n > 0 then begin
        if gc.cursor >= Array.length t.buffers then begin
          Wal.reclaim_epoch t.wal ~epoch:gc.old_epoch;
          t.gc <- None;
          t.gc_floor <- Wal.live_bytes t.wal;
          t.stats.Tree_stats.gc_runs <- t.stats.Tree_stats.gc_runs + 1
        end
        else begin
          let b = t.buffers.(gc.cursor) in
          B.lock b;
          for i = 0 to B.nbatch b - 1 do
            let bit = 1 lsl i in
            if b.B.unflushed land bit <> 0 then begin
              let slot_epoch = if b.B.epoch land bit <> 0 then 1 else 0 in
              if slot_epoch = gc.old_epoch then begin
                let ts = Clock.next t.clock in
                log_append t ~key:b.B.keys.(i) ~value:b.B.vals.(i) ~ts;
                b.B.tss.(i) <- ts;
                if t.global_epoch <> 0 then b.B.epoch <- b.B.epoch lor bit
                else b.B.epoch <- b.B.epoch land lnot bit;
                t.stats.Tree_stats.gc_copied <-
                  t.stats.Tree_stats.gc_copied + 1
              end
              else
                t.stats.Tree_stats.gc_skipped <-
                  t.stats.Tree_stats.gc_skipped + 1
            end
          done;
          B.unlock b;
          gc.cursor <- gc.cursor + 1;
          go (n - 1)
        end
      end
    in
    go n

let maybe_gc t =
  match t.cfg.Config.gc_strategy with
  | Config.Disabled | Config.Naive -> ()
  | Config.Locality_aware ->
    if t.gc <> None then gc_step t t.cfg.Config.gc_step_nodes
    else begin
      let pm = Slab.used_bytes t.slab in
      let live = Wal.live_bytes t.wal in
      if
        pm > 0
        && float_of_int live > t.cfg.Config.th_log *. float_of_int pm
        && live > t.gc_floor + (t.gc_floor / 2)
      then begin
        let old_epoch = t.global_epoch in
        t.global_epoch <- 1 - t.global_epoch;
        t.gc <- Some { cursor = 0; old_epoch }
      end
    end

(* ------------------------------------------------------------------ *)
(* Operations                                                          *)
(* ------------------------------------------------------------------ *)

let oldest_slot b =
  let best = ref 0 and best_ts = ref Int64.max_int in
  for i = 0 to B.nbatch b - 1 do
    if Int64.compare b.B.tss.(i) !best_ts < 0 then begin
      best := i;
      best_ts := b.B.tss.(i)
    end
  done;
  !best

let upsert_raw t key value =
  D.add_user_bytes t.dev 16;
  let b = t.buffers.(bucket_of_key t key) in
  B.lock b;
  let ts = Clock.next t.clock in
  (if not t.cfg.Config.buffering then
     bucket_apply t b.B.leaf ~pending:[ (key, value, ts) ]
   else begin
     match B.find b key with
     | Some i ->
       log_append t ~key ~value ~ts;
       B.set_slot b i ~key ~value ~ts ~epoch:t.global_epoch
     | None -> (
       match B.free_slot b with
       | Some i ->
         log_append t ~key ~value ~ts;
         B.set_slot b i ~key ~value ~ts ~epoch:t.global_epoch
       | None -> (
         match B.cached_slots b with
         | i :: _ ->
           log_append t ~key ~value ~ts;
           B.set_slot b i ~key ~value ~ts ~epoch:t.global_epoch
         | [] ->
           (* trigger write: tombstones stay logged (recovery of deletes
              must never depend on an unlogged write) *)
           if t.cfg.Config.conservative_logging && not (Int64.equal value 0L)
           then
             t.stats.Tree_stats.log_skips <- t.stats.Tree_stats.log_skips + 1
           else log_append t ~key ~value ~ts;
           bucket_apply t b.B.leaf
             ~pending:((key, value, ts) :: B.unflushed_entries b);
           B.mark_all_flushed b;
           let i = oldest_slot b in
           b.B.keys.(i) <- key;
           b.B.vals.(i) <- value;
           b.B.tss.(i) <- ts;
           b.B.valid <- b.B.valid lor (1 lsl i);
           b.B.unflushed <- b.B.unflushed land lnot (1 lsl i);
           b.B.epoch <- b.B.epoch land lnot (1 lsl i)))
   end);
  B.unlock b;
  maybe_gc t

let upsert t key value =
  if Int64.equal value 0L then
    invalid_arg "Hash_table.upsert: value 0 is reserved (tombstone)";
  t.stats.Tree_stats.inserts <- t.stats.Tree_stats.inserts + 1;
  upsert_raw t key value

let delete t key =
  t.stats.Tree_stats.deletes <- t.stats.Tree_stats.deletes + 1;
  upsert_raw t key 0L

let search t key =
  t.stats.Tree_stats.searches <- t.stats.Tree_stats.searches + 1;
  let b = t.buffers.(bucket_of_key t key) in
  match B.find b key with
  | Some i ->
    t.stats.Tree_stats.dram_hits <- t.stats.Tree_stats.dram_hits + 1;
    let v = b.B.vals.(i) in
    if Int64.equal v 0L then None else Some v
  | None -> (
    t.stats.Tree_stats.leaf_reads <- t.stats.Tree_stats.leaf_reads + 1;
    match chain_find t b.B.leaf key with
    | Some (bucket, i) -> Some (L.value_at t.dev bucket i)
    | None -> None)

let iter t f =
  Array.iter
    (fun b ->
      let seen = Hashtbl.create 8 in
      for i = 0 to B.nbatch b - 1 do
        if b.B.valid land (1 lsl i) <> 0 then begin
          Hashtbl.replace seen b.B.keys.(i) ();
          if not (Int64.equal b.B.vals.(i) 0L) then f b.B.keys.(i) b.B.vals.(i)
        end
      done;
      let rec walk bucket =
        if bucket <> 0 then begin
          List.iter
            (fun (k, v) -> if not (Hashtbl.mem seen k) then f k v)
            (L.entries t.dev bucket);
          walk (L.next t.dev bucket)
        end
      in
      walk b.B.leaf)
    t.buffers

let count_entries t =
  let n = ref 0 in
  iter t (fun _ _ -> incr n);
  !n

let flush_all t =
  Array.iter
    (fun b ->
      if b.B.unflushed <> 0 then begin
        B.lock b;
        bucket_apply t b.B.leaf ~pending:(B.unflushed_entries b);
        B.mark_all_flushed b;
        B.unlock b
      end)
    t.buffers

let dram_bytes t =
  Array.length t.buffers * B.dram_bytes ~nbatch:t.cfg.Config.nbatch

let pm_bytes t = Alloc.allocated_bytes t.alloc

let check_invariants t =
  let fail fmt = Fmt.kstr failwith fmt in
  Array.iteri
    (fun idx b ->
      let rec walk bucket =
        if bucket <> 0 then begin
          let bm = L.bitmap t.dev bucket in
          for i = 0 to L.slots - 1 do
            if bm land (1 lsl i) <> 0 then begin
              let k = L.key_at t.dev bucket i in
              if bucket_of_key t k <> idx then
                fail "key %Ld stored in bucket %d, hashes to %d" k idx
                  (bucket_of_key t k);
              if D.load_u8 t.dev (bucket + 16 + i) <> L.fingerprint k then
                fail "fingerprint mismatch in bucket %d" idx
            end
          done;
          walk (L.next t.dev bucket)
        end
      in
      walk b.B.leaf)
    t.buffers

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

let recover_body ~cfg dev =
  let alloc = Alloc.attach dev in
  let slab = Slab.attach alloc Alloc.Leaf ~obj_size:L.size in
  let clock = Clock.create () in
  let sb = Alloc.superblock alloc in
  if D.load_u64 dev sb <> hash_magic then
    invalid_arg "Hash_table.recover: no CCL-Hash on this device";
  let dir = Int64.to_int (D.load_u64 dev (sb + 8)) in
  let buckets = Int64.to_int (D.load_u64 dev (sb + 16)) in
  let max_ts = ref 0L in
  let buffers =
    Array.init buckets (fun i ->
        let head = Int64.to_int (D.load_u64 dev (dir + (8 * i))) in
        let rec mark bucket =
          if bucket <> 0 then begin
            Slab.mark_used slab bucket;
            mark (L.next dev bucket)
          end
        in
        mark head;
        let ts = L.timestamp dev head in
        if Int64.unsigned_compare ts !max_ts > 0 then max_ts := ts;
        B.create ~nbatch:cfg.Config.nbatch ~leaf:head ~low:0L)
  in
  let t =
    {
      dev;
      alloc;
      slab;
      wal = Wal.create alloc clock ~threads:cfg.Config.threads;
      clock;
      cfg;
      mask = buckets - 1;
      buffers;
      global_epoch = 0;
      gc = None;
      gc_floor = 0;
      stats = Tree_stats.create ();
      rr_thread = 0;
    }
  in
  (* replay, with the same coverage rule as the tree (here routing is a
     pure hash, so only the timestamp and key-absence checks matter) *)
  let entries = ref [] in
  let max_log_ts =
    Wal.replay alloc ~f:(fun ~key ~value ~ts ->
        entries := (ts, key, value) :: !entries)
  in
  Clock.advance_to clock
    (if Int64.unsigned_compare max_log_ts !max_ts > 0 then max_log_ts
     else !max_ts);
  let ts0 = Array.map (fun b -> L.timestamp dev b.B.leaf) buffers in
  let replayed = Hashtbl.create 256 in
  List.iter
    (fun (ts, key, value) ->
      let idx = bucket_of_key t key in
      let b = t.buffers.(idx) in
      let apply =
        Hashtbl.mem replayed key
        || chain_find t b.B.leaf key = None
        || Int64.unsigned_compare ts ts0.(idx) > 0
      in
      if apply then begin
        Hashtbl.replace replayed key ();
        bucket_apply t b.B.leaf ~pending:[ (key, value, ts) ]
      end)
    (List.sort compare !entries);
  let chunks = ref [] in
  Alloc.iter_chunks alloc Alloc.Log (fun c -> chunks := c :: !chunks);
  List.iter (Alloc.free_chunk alloc) !chunks;
  Array.iter
    (fun b ->
      L.store_timestamp dev b.B.leaf 0L;
      D.persist dev (b.B.leaf + 8) 8)
    t.buffers;
  t

(* Same sanitizer bracket as [Tree.recover]: the chain walk reads
   atomically-committed words (either crash outcome is legal) and every
   coverage decision is re-validated against the WAL. *)
let recover ?(cfg = Config.default) dev =
  D.recovery_begin dev;
  D.validating dev true;
  Fun.protect
    ~finally:(fun () ->
      D.validating dev false;
      D.recovery_end dev)
    (fun () -> recover_body ~cfg dev)
