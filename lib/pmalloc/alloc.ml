module D = Pmem.Device

type tag = Leaf | Log | Extent

type t = {
  dev : D.t;
  chunk_size : int;
  table_addr : int;
  data_start : int;
  num_chunks : int;
  free : int Queue.t;  (* volatile free list of chunk indexes *)
  mutable n_free : int;
  mu : Mutex.t;
      (* chunk grant/return can race across writer lanes (WAL chunk
         acquisition) and the SMO path (slab refill); the tag-byte
         persist rides inside the same critical section so the PM table
         update is serialized with the volatile free list *)
}

let magic = 0x504d414c4c4f4331L (* "PMALLOC1" *)
let superblock_addr = 256
let table_addr = 4096

let tag_byte = function Leaf -> 1 | Log -> 2 | Extent -> 3

let tag_of_byte = function
  | 1 -> Some Leaf
  | 2 -> Some Log
  | 3 -> Some Extent
  | _ -> None

let geometry ~size ~chunk_size =
  assert (chunk_size mod 256 = 0 && chunk_size > 0);
  let max_chunks = size / chunk_size in
  let data_start = (table_addr + max_chunks + 255) / 256 * 256 in
  let num_chunks = (size - data_start) / chunk_size in
  assert (num_chunks > 0);
  (data_start, num_chunks)

let build dev ~chunk_size ~data_start ~num_chunks =
  {
    dev;
    chunk_size;
    table_addr;
    data_start;
    num_chunks;
    free = Queue.create ();
    n_free = 0;
    mu = Mutex.create ();
  }

let format dev ~chunk_size =
  let data_start, num_chunks = geometry ~size:(D.size dev) ~chunk_size in
  let t = build dev ~chunk_size ~data_start ~num_chunks in
  D.fill dev table_addr num_chunks '\000';
  D.persist dev table_addr num_chunks;
  D.store_u64 dev 0 magic;
  D.store_u64 dev 8 (Int64.of_int chunk_size);
  D.store_u64 dev 16 (Int64.of_int num_chunks);
  D.persist dev 0 24;
  for i = 0 to num_chunks - 1 do
    Queue.push i t.free
  done;
  t.n_free <- num_chunks;
  t

let attach dev =
  if D.load_u64 dev 0 <> magic then invalid_arg "Alloc.attach: not formatted";
  let chunk_size = Int64.to_int (D.load_u64 dev 8) in
  let data_start, num_chunks = geometry ~size:(D.size dev) ~chunk_size in
  assert (num_chunks = Int64.to_int (D.load_u64 dev 16));
  let t = build dev ~chunk_size ~data_start ~num_chunks in
  for i = 0 to num_chunks - 1 do
    if tag_of_byte (D.load_u8 dev (table_addr + i)) = None then begin
      Queue.push i t.free;
      t.n_free <- t.n_free + 1
    end
  done;
  t

let device t = t.dev
let chunk_size t = t.chunk_size
let superblock _ = superblock_addr
let chunks_total t = t.num_chunks
let chunks_free t = t.n_free
let allocated_bytes t = (t.num_chunks - t.n_free) * t.chunk_size
let addr_of_index t i = t.data_start + (i * t.chunk_size)
let index_of_addr t addr = (addr - t.data_start) / t.chunk_size

let alloc_chunk t tag =
  Mutex.protect t.mu (fun () ->
      if Queue.is_empty t.free then raise Out_of_memory;
      let i = Queue.pop t.free in
      t.n_free <- t.n_free - 1;
      D.store_u8 t.dev (t.table_addr + i) (tag_byte tag);
      D.persist t.dev (t.table_addr + i) 1;
      addr_of_index t i)

let free_chunk t addr =
  let i = index_of_addr t addr in
  assert (i >= 0 && i < t.num_chunks && addr = addr_of_index t i);
  Mutex.protect t.mu (fun () ->
      D.store_u8 t.dev (t.table_addr + i) 0;
      D.persist t.dev (t.table_addr + i) 1;
      Queue.push i t.free;
      t.n_free <- t.n_free + 1)

(* Unaccounted tag lookup usable as a Device write classifier. *)
let classify t addr =
  if addr < t.data_start then 0
  else begin
    let i = (addr - t.data_start) / t.chunk_size in
    if i >= t.num_chunks then 0
    else D.peek_u8 t.dev (t.table_addr + i)
  end

let chunk_base_of_addr t addr =
  assert (addr >= t.data_start && addr < t.data_start + (t.num_chunks * t.chunk_size));
  t.data_start + ((addr - t.data_start) / t.chunk_size * t.chunk_size)

let iter_chunks t tag f =
  for i = 0 to t.num_chunks - 1 do
    if tag_of_byte (D.load_u8 t.dev (t.table_addr + i)) = Some tag then
      f (addr_of_index t i)
  done
