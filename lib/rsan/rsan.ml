module H = Sync.Hook
module D = Pmem.Device
module I = Baselines.Index_intf

(* ------------------------------------------------------------------ *)
(* Violations                                                          *)
(* ------------------------------------------------------------------ *)

type severity = Race | Lint

type kind =
  | Write_write_race
  | Read_write_race
  | Unordered_ack
  | Premature_reclaim
  | Use_after_retire
  | Unheld_unlock
  | Stale_certification
  | Unvalidated_write
  | Sx_upgrade_readers
  | Lock_order_inversion

let severity = function
  | Write_write_race | Read_write_race | Unordered_ack | Premature_reclaim
  | Use_after_retire ->
    Race
  | Unheld_unlock | Stale_certification | Unvalidated_write
  | Sx_upgrade_readers | Lock_order_inversion ->
    Lint

let kind_name = function
  | Write_write_race -> "write_write_race"
  | Read_write_race -> "read_write_race"
  | Unordered_ack -> "unordered_ack"
  | Premature_reclaim -> "premature_reclaim"
  | Use_after_retire -> "use_after_retire"
  | Unheld_unlock -> "unheld_unlock"
  | Stale_certification -> "stale_certification"
  | Unvalidated_write -> "unvalidated_write"
  | Sx_upgrade_readers -> "sx_upgrade_readers"
  | Lock_order_inversion -> "lock_order_inversion"

type violation = { kind : kind; site : string; detail : string; tid : int }

let pp_violation ppf v =
  Format.fprintf ppf "[%s] %s at %s (tid %d): %s"
    (match severity v.kind with Race -> "RACE" | Lint -> "LINT")
    (kind_name v.kind) v.site v.tid v.detail

(* ------------------------------------------------------------------ *)
(* Vector clocks                                                       *)
(* ------------------------------------------------------------------ *)

module Vc = struct
  type t = { mutable a : int array }

  let create () = { a = [||] }
  let get t i = if i < Array.length t.a then t.a.(i) else 0

  let ensure t n =
    if Array.length t.a < n then begin
      let b = Array.make (max n ((2 * Array.length t.a) + 4)) 0 in
      Array.blit t.a 0 b 0 (Array.length t.a);
      t.a <- b
    end

  let set t i v =
    ensure t (i + 1);
    t.a.(i) <- v

  let bump t i = set t i (get t i + 1)

  let join dst src =
    Array.iteri (fun i v -> if v > get dst i then set dst i v) src.a

  let copy src = { a = Array.copy src.a }
end

(* ------------------------------------------------------------------ *)
(* Shadow state                                                        *)
(* ------------------------------------------------------------------ *)

(* A vlock currently held by a domain.  [fence_checked] starts false for
   optimistic (try_lock) acquisitions — the OLC route — and flips on the
   first Fence_check event; an Access write before that is the
   Unvalidated_write lint. *)
type holding = { optimistic : bool; mutable fence_checked : bool }

(* An open optimistic-read bracket: reads are buffered and only join the
   shadow machine if the bracket validates (or is certified by a
   successful try_upgrade against the same snapshot) — a failed
   validation means the protocol already rejected them. *)
type bracket = { snap : int; mutable breads : string list }

type dstate = {
  tid : int;
  vc : Vc.t;
  held : (int, holding) Hashtbl.t;  (* vlock id -> holding *)
  brackets : (int, bracket) Hashtbl.t;  (* vlock id -> open bracket *)
  sanct : (int, int) Hashtbl.t;
      (* vlock id -> sanctioned (even) certification snapshot: the last
         read_begin that returned even, or last value-under-the-lock + 1 *)
  staged : (int, unit) Hashtbl.t;  (* device lines clwb'd, unfenced *)
  mutable last_site : string;
}

(* FastTrack-style per-variable shadow; one variable per vlock (the
   guarded node content as a unit). *)
type var = {
  mutable w_tid : int;  (* -1 = never written *)
  mutable w_clk : int;
  mutable w_site : string;
  vreads : (int, int * string) Hashtbl.t;  (* tid -> (clk, site) *)
}

type t = {
  mu : Mutex.t;
  doms : (int, dstate) Hashtbl.t;  (* Domain.self -> state *)
  mutable ntids : int;
  locks : (int, Vc.t) Hashtbl.t;  (* vlock/sx id -> release clock *)
  vars : (int, var) Hashtbl.t;
  pins : (int, int * int) Hashtbl.t;  (* slot -> (epoch-domain id, epoch) *)
  reclaimed : (int, unit) Hashtbl.t;  (* retired objs whose closure ran *)
  sealed : (int, unit) Hashtbl.t;
  edges : (int * int, unit) Hashtbl.t;  (* blocking lock-order edges *)
  reported_inversions : (int * int, unit) Hashtbl.t;
  persisted : (int, int * int) Hashtbl.t;  (* line -> (fencer tid, clk) *)
  counts : (string * kind, int ref) Hashtbl.t;  (* (site, kind) totals *)
  mutable violations : violation list;  (* newest first *)
  mutable nviol : int;
  mutable vdropped : int;
}

let create () =
  {
    mu = Mutex.create ();
    doms = Hashtbl.create 8;
    ntids = 0;
    locks = Hashtbl.create 256;
    vars = Hashtbl.create 256;
    pins = Hashtbl.create 16;
    reclaimed = Hashtbl.create 64;
    sealed = Hashtbl.create 64;
    edges = Hashtbl.create 256;
    reported_inversions = Hashtbl.create 8;
    persisted = Hashtbl.create 1024;
    counts = Hashtbl.create 64;
    violations = [];
    nviol = 0;
    vdropped = 0;
  }

let max_recorded = 500

let record t ~kind ~site ~detail ~tid =
  (let key = (site, kind) in
   match Hashtbl.find_opt t.counts key with
   | Some r -> incr r
   | None -> Hashtbl.add t.counts key (ref 1));
  if t.nviol >= max_recorded then t.vdropped <- t.vdropped + 1
  else begin
    t.violations <- { kind; site; detail; tid } :: t.violations;
    t.nviol <- t.nviol + 1
  end

let dstate t =
  let did = (Domain.self () :> int) in
  match Hashtbl.find_opt t.doms did with
  | Some d -> d
  | None ->
    let d =
      {
        tid = t.ntids;
        vc = Vc.create ();
        held = Hashtbl.create 8;
        brackets = Hashtbl.create 8;
        sanct = Hashtbl.create 8;
        staged = Hashtbl.create 32;
        last_site = "?";
      }
    in
    t.ntids <- t.ntids + 1;
    Vc.set d.vc d.tid 1;
    Hashtbl.add t.doms did d;
    d

let lock_clock t id =
  match Hashtbl.find_opt t.locks id with
  | Some c -> c
  | None ->
    let c = Vc.create () in
    Hashtbl.add t.locks id c;
    c

(* ------------------------------------------------------------------ *)
(* The FastTrack core: per-variable read/write checks                  *)
(* ------------------------------------------------------------------ *)

let var t id =
  match Hashtbl.find_opt t.vars id with
  | Some v -> v
  | None ->
    let v = { w_tid = -1; w_clk = 0; w_site = "?"; vreads = Hashtbl.create 4 } in
    Hashtbl.add t.vars id v;
    v

let check_read_vs_write t d id site =
  let v = var t id in
  if v.w_tid >= 0 && v.w_tid <> d.tid && v.w_clk > Vc.get d.vc v.w_tid then
    record t ~kind:Read_write_race ~site ~tid:d.tid
      ~detail:
        (Printf.sprintf
           "read of node/vlock #%d not ordered after write at %s (tid %d)" id
           v.w_site v.w_tid)

(* A read that later writers must be ordered against (pessimistic /
   lock-held reads; validated optimistic reads are checked but NOT
   recorded — a seqlock gives them no edge to later writers, the
   validation protocol is what makes them safe). *)
let record_read t d id site =
  let v = var t id in
  Hashtbl.replace v.vreads d.tid (Vc.get d.vc d.tid, site)

let check_write t d id site =
  let v = var t id in
  if v.w_tid >= 0 && v.w_tid <> d.tid && v.w_clk > Vc.get d.vc v.w_tid then
    record t ~kind:Write_write_race ~site ~tid:d.tid
      ~detail:
        (Printf.sprintf
           "write to node/vlock #%d not ordered after write at %s (tid %d)" id
           v.w_site v.w_tid);
  Hashtbl.iter
    (fun rt (rc, rsite) ->
      if rt <> d.tid && rc > Vc.get d.vc rt then
        record t ~kind:Read_write_race ~site ~tid:d.tid
          ~detail:
            (Printf.sprintf
               "write to node/vlock #%d not ordered after read at %s (tid %d)"
               id rsite rt))
    v.vreads;
  v.w_tid <- d.tid;
  v.w_clk <- Vc.get d.vc d.tid;
  v.w_site <- site;
  Hashtbl.reset v.vreads

(* Commit an optimistic bracket that validated: the reads are ordered
   after the last release of the lock (that is exactly what a clean
   seqlock validation certifies), so join the release clock first and
   then check each buffered read — a write that bypassed the lock has no
   entry in the release clock and is flagged. *)
let commit_bracket t d id (br : bracket) =
  Vc.join d.vc (lock_clock t id);
  List.iter (fun site -> check_read_vs_write t d id site) br.breads

(* ------------------------------------------------------------------ *)
(* Sync.Hook event machine                                             *)
(* ------------------------------------------------------------------ *)

let on_vlock_acquire t d ~id ~optimistic =
  if not optimistic then
    (* blocking acquires while holding other vlocks define the lock
       order; a pair acquired in both orders can deadlock *)
    Hashtbl.iter
      (fun h _ ->
        if Hashtbl.mem t.edges (id, h) then begin
          let pair = (min id h, max id h) in
          if not (Hashtbl.mem t.reported_inversions pair) then begin
            Hashtbl.add t.reported_inversions pair ();
            record t ~kind:Lock_order_inversion ~site:d.last_site ~tid:d.tid
              ~detail:
                (Printf.sprintf
                   "vlocks #%d and #%d are (blocking-)acquired in both orders"
                   h id)
          end
        end;
        Hashtbl.replace t.edges (h, id) ())
      d.held;
  Vc.join d.vc (lock_clock t id);
  Hashtbl.replace d.held id { optimistic; fence_checked = not optimistic }

let on_vlock_release t d ~id =
  Hashtbl.remove d.held id;
  Hashtbl.replace t.locks id (Vc.copy d.vc);
  Vc.bump d.vc d.tid

let handle t ev =
  Mutex.lock t.mu;
  (try
     let d = dstate t in
     (match (ev : H.event) with
     | Vlock_acquire { id; v = _; optimistic } ->
       on_vlock_acquire t d ~id ~optimistic
     | Vlock_release { id; v = _ } -> on_vlock_release t d ~id
     | Vlock_release_unheld { id; v } ->
       record t ~kind:Unheld_unlock ~site:d.last_site ~tid:d.tid
         ~detail:
           (Printf.sprintf "unlock of vlock #%d at even version %d (not held)"
              id v)
     | Vlock_read_begin { id; v } ->
       Hashtbl.remove d.brackets id;
       if v land 1 = 0 then begin
         Hashtbl.replace d.brackets id { snap = v; breads = [] };
         Hashtbl.replace d.sanct id v
       end
     | Vlock_validate { id; v; ok } -> (
       match Hashtbl.find_opt d.brackets id with
       | Some br when br.snap = v ->
         Hashtbl.remove d.brackets id;
         if ok then commit_bracket t d id br
       | _ -> ())
     | Vlock_value { id; v } ->
       if Hashtbl.mem d.held id then Hashtbl.replace d.sanct id (v + 1)
       else
         (* a raw snapshot outside the lock is not a legitimate
            certification source; poison it *)
         Hashtbl.remove d.sanct id
     | Vlock_try_upgrade { id; v; ok } ->
       (if v land 1 = 0 then
          match Hashtbl.find_opt d.sanct id with
          | Some s when s = v -> ()
          | _ ->
            record t ~kind:Stale_certification ~site:d.last_site ~tid:d.tid
              ~detail:
                (Printf.sprintf
                   "try_upgrade of vlock #%d certifies version %d, which was \
                    not snapshotted under the lock or by a read_begin"
                   id v));
       (match Hashtbl.find_opt d.brackets id with
       | Some br when br.snap = v ->
         Hashtbl.remove d.brackets id;
         if ok then commit_bracket t d id br
       | _ -> ());
       if ok then begin
         (* a successful validate-and-lock is an acquisition whose fence
            condition is the CAS itself *)
         Vc.join d.vc (lock_clock t id);
         Hashtbl.replace d.held id { optimistic = false; fence_checked = true }
       end
     | Vlock_contended _ -> ()
     (* a failed try_lock synchronizes with nothing: telemetry only *)
     | Fence_check { id; ok = _ } -> (
       match Hashtbl.find_opt d.held id with
       | Some h -> h.fence_checked <- true
       | None -> ())
     | Sx_request _ -> ()
     (* wait-span open marker for contention profilers; the ordering
        edge is the Sx_acquire/Sx_upgrade that follows *)
     | Sx_acquire { id; mode = _ } -> Vc.join d.vc (lock_clock t id)
     | Sx_release { id; mode = _ } | Sx_downgrade { id } ->
       Vc.join (lock_clock t id) d.vc;
       Vc.bump d.vc d.tid
     | Sx_upgrade { id; readers } ->
       if readers > 0 then
         record t ~kind:Sx_upgrade_readers ~site:d.last_site ~tid:d.tid
           ~detail:
             (Printf.sprintf "SX->X upgrade of latch #%d with %d S holder(s) \
                              still live" id readers);
       Vc.join d.vc (lock_clock t id)
     | Epoch_enter { id; slot; epoch } -> Hashtbl.replace t.pins slot (id, epoch)
     | Epoch_exit { id = _; slot } -> Hashtbl.remove t.pins slot
     | Epoch_retire _ -> ()
     | Epoch_reclaim { id; obj; epoch } ->
       let live = ref 0 in
       Hashtbl.iter
         (fun _slot (eid, ep) -> if eid = id && ep <= epoch then incr live)
         t.pins;
       if !live > 0 then
         record t ~kind:Premature_reclaim ~site:d.last_site ~tid:d.tid
           ~detail:
             (Printf.sprintf
                "epoch-domain #%d reclaimed object #%d retired at epoch %d \
                 with %d reader pin(s) still at or before that epoch"
                id obj epoch !live);
       if obj >= 0 then Hashtbl.replace t.reclaimed obj ()
     | Seal { id } ->
       Hashtbl.replace t.sealed id ();
       (* the sealer holds the vlock forever; stop tracking it so the
          held-set stays bounded and order edges stay meaningful *)
       Hashtbl.remove d.held id
     | Access { id; write; site } ->
       d.last_site <- site;
       if Hashtbl.mem t.reclaimed id then
         record t ~kind:Use_after_retire ~site ~tid:d.tid
           ~detail:
             (Printf.sprintf
                "access to node/vlock #%d after its epoch-deferred \
                 reclamation ran"
                id);
       if write then begin
         (match Hashtbl.find_opt d.held id with
         | Some h ->
           if h.optimistic && not h.fence_checked then begin
             h.fence_checked <- true;
             record t ~kind:Unvalidated_write ~site ~tid:d.tid
               ~detail:
                 (Printf.sprintf
                    "write under optimistically acquired vlock #%d before \
                     any fence-interval validation"
                    id)
           end
         | None -> ());
         check_write t d id site
       end
       else
         match Hashtbl.find_opt d.brackets id with
         | Some br -> br.breads <- site :: br.breads
         | None ->
           check_read_vs_write t d id site;
           record_read t d id site);
     Mutex.unlock t.mu
   with e ->
     Mutex.unlock t.mu;
     raise e)

(* ------------------------------------------------------------------ *)
(* Device-event watch: pmsan composition (happens-before of acks)      *)
(* ------------------------------------------------------------------ *)

let line_of addr = addr lsr 6

let handle_dev t (ev : D.event) =
  match ev with
  | Clwb { line } ->
    Mutex.lock t.mu;
    let d = dstate t in
    Hashtbl.replace d.staged (line_of line) ();
    Mutex.unlock t.mu
  | Sfence ->
    Mutex.lock t.mu;
    let d = dstate t in
    Hashtbl.iter
      (fun l () -> Hashtbl.replace t.persisted l (d.tid, Vc.get d.vc d.tid))
      d.staged;
    Hashtbl.reset d.staged;
    Mutex.unlock t.mu
  | Acked { addr; len; label } ->
    Mutex.lock t.mu;
    let d = dstate t in
    let l0 = line_of addr and l1 = line_of (addr + max 1 len - 1) in
    let flagged = ref false in
    for l = l0 to l1 do
      if not !flagged then
        match Hashtbl.find_opt t.persisted l with
        | Some (ft, fc) when ft <> d.tid && fc > Vc.get d.vc ft ->
          flagged := true;
          record t ~kind:Unordered_ack ~site:label ~tid:d.tid
            ~detail:
              (Printf.sprintf
                 "ack_durable of line 0x%x has no happens-before edge to \
                  the sfence that persisted it (tid %d)"
                 (l * 64) ft)
        | _ -> ()
    done;
    Mutex.unlock t.mu
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Lifecycle and results                                               *)
(* ------------------------------------------------------------------ *)

let attach t = H.set_tracer (Some (handle t))
let detach () = H.set_tracer None
let watch_device t dev = D.add_tracer dev (handle_dev t)

let violations t =
  Mutex.lock t.mu;
  let v = List.rev t.violations in
  Mutex.unlock t.mu;
  v

let dropped t = t.vdropped
let races vs = List.filter (fun v -> severity v.kind = Race) vs
let lints vs = List.filter (fun v -> severity v.kind = Lint) vs
let clean t = violations t = []

let find ?kind t =
  List.filter
    (fun v -> match kind with None -> true | Some k -> v.kind = k)
    (violations t)

let by_site t =
  Mutex.lock t.mu;
  let rows =
    Hashtbl.fold (fun (site, k) r acc -> (site, k, !r) :: acc) t.counts []
  in
  Mutex.unlock t.mu;
  List.sort compare rows

let pp_report ppf t =
  let vs = violations t in
  let nr = List.length (races vs) and nl = List.length (lints vs) in
  Format.fprintf ppf "rsan: %d race(s), %d lint(s)%s@." nr nl
    (if t.vdropped > 0 then Printf.sprintf " (+%d dropped)" t.vdropped else "");
  List.iter
    (fun (site, k, n) ->
      Format.fprintf ppf "  %-28s %-22s %d@." site (kind_name k) n)
    (by_site t);
  let shown = ref 0 in
  List.iter
    (fun v ->
      if !shown < 20 then begin
        incr shown;
        Format.fprintf ppf "  %a@." pp_violation v
      end)
    vs

(* ------------------------------------------------------------------ *)
(* Harnesses                                                           *)
(* ------------------------------------------------------------------ *)

type report = {
  name : string;
  ops_run : int;
  report_violations : violation list;
  report_dropped : int;
}

let report_clean r = r.report_violations = []

let pp_index_report ppf r =
  Format.fprintf ppf "rsan %s: %d ops, %d violation(s)%s@." r.name r.ops_run
    (List.length r.report_violations)
    (if r.report_dropped > 0 then
       Printf.sprintf " (+%d dropped)" r.report_dropped
     else "");
  List.iter
    (fun v -> Format.fprintf ppf "  %a@." pp_violation v)
    r.report_violations

let make_detector = create

let finish_report san ~name ~ops_run =
  detach ();
  {
    name;
    ops_run;
    report_violations = violations san;
    report_dropped = dropped san;
  }

(* Sequential seeded workload over any index driver with the hook
   attached: proves the single-domain protocol (and any vlock/SX/epoch
   use the index makes) runs lint-free.  Baselines emit no sync events
   at all and are trivially clean; CCL-BTree exercises the full vlock
   discipline of its plain entry points. *)
let check_index ?(ops = 4_000) ?(seed = 7) ?(key_space = 512)
    ?(device_mb = 16) ~name ~(create : D.t -> I.driver) () =
  let san = make_detector () in
  let dev =
    D.create
      ~config:(Pmem.Config.default ~size:(device_mb * 1024 * 1024) ())
      ()
  in
  attach san;
  watch_device san dev;
  Fun.protect ~finally:detach (fun () ->
      let drv = create dev in
      let rng = Random.State.make [| seed |] in
      for _ = 1 to ops do
        let k = Int64.of_int (1 + Random.State.int rng key_space) in
        match Random.State.int rng 10 with
        | 0 -> drv.I.delete k
        | 1 | 2 -> ignore (drv.I.search k)
        | 3 -> ignore (drv.I.scan ~start:k 16)
        | _ ->
          drv.I.upsert k (Int64.of_int (1 + Random.State.int rng 1_000_000))
      done;
      drv.I.flush_all ());
  finish_report san ~name ~ops_run:ops

(* Concurrent storm over the tree itself, in the mold of the
   test_writers storm: each writer lane owns the keys congruent to its
   lane id and also inserts-then-deletes batches of far keys so splits
   AND merges keep firing; reader domains run validated searches
   throughout.  [faults] arms Tree.Fault mutations for the duration (and
   always resets them), so mutation tests can assert detection. *)
let check_tree ?(writers = 2) ?(readers = 2) ?(ops = 3_000) ?(seed = 42)
    ?(key_space = 512) ?(device_mb = 32) ?(faults = []) () =
  let san = make_detector () in
  let dev =
    D.create
      ~config:(Pmem.Config.default ~size:(device_mb * 1024 * 1024) ())
      ()
  in
  attach san;
  watch_device san dev;
  List.iter Ccl_btree.Tree.Fault.arm faults;
  Fun.protect
    ~finally:(fun () ->
      Ccl_btree.Tree.Fault.reset ();
      detach ())
    (fun () ->
      let module T = Ccl_btree.Tree in
      let cfg =
        { Ccl_btree.Config.default with Ccl_btree.Config.threads = writers }
      in
      let tree = T.create ~cfg dev in
      let stop = Atomic.make false in
      let reader_doms =
        List.init readers (fun i ->
            Domain.spawn (fun () ->
                let r = T.reader tree in
                let rng = Random.State.make [| seed + 1000 + i |] in
                while not (Atomic.get stop) do
                  ignore
                    (T.reader_search r
                       (Int64.of_int (1 + Random.State.int rng key_space)))
                done))
      in
      let writer_doms =
        List.init writers (fun lane ->
            Domain.spawn (fun () ->
                let w = T.writer ~lane tree in
                let rng = Random.State.make [| seed + lane |] in
                for op = 1 to ops do
                  let near =
                    lane + (writers * Random.State.int rng (key_space / writers))
                  in
                  T.writer_upsert w
                    (Int64.of_int (1 + near))
                    (Int64.of_int (1 + op));
                  (* far keys forced in and out again: splits then
                     underflow merges *)
                  if op mod 16 = 0 then begin
                    let base =
                      key_space + (Random.State.int rng 64 * writers * 8)
                    in
                    for j = 0 to 7 do
                      T.writer_upsert w
                        (Int64.of_int (base + (j * writers) + lane + 1))
                        1L
                    done;
                    for j = 0 to 7 do
                      T.writer_delete w
                        (Int64.of_int (base + (j * writers) + lane + 1))
                    done
                  end
                done))
      in
      List.iter Domain.join writer_doms;
      Atomic.set stop true;
      List.iter Domain.join reader_doms;
      T.flush_all tree);
  finish_report san ~name:"ccl_tree_storm" ~ops_run:(writers * ops)
