(** Concurrency sanitizer for the vlock / SX-latch / epoch protocol.

    Rsan is the happens-before counterpart of {!Pmsan}: where pmsan
    shadows every cacheline's persistence state, rsan consumes the
    {!Sync.Hook} event stream and drives a FastTrack-style vector-clock
    machine per domain and per version-locked node, plus a
    lock-discipline linter over the protocol itself (DESIGN.md §14).

    {b Races} (vector-clock findings):
    - {!Write_write_race} / {!Read_write_race}: annotated node accesses
      with no ordering edge through a vlock release→acquire, an SX
      transition, or a validated seqlock bracket;
    - {!Premature_reclaim}: an epoch-deferred reclamation ran while a
      reader pin at or before the retire epoch was still live;
    - {!Use_after_retire}: an annotated access to a node whose
      reclamation closure already ran;
    - {!Unordered_ack}: composition with the device layer — an
      [ack_durable] with no happens-before edge to the sfence that
      persisted the acked lines (requires {!watch_device}).

    {b Lints} (protocol-shape findings, meaningful even single-domain):
    - {!Unheld_unlock}: [Vlock.unlock] of an even (unheld) version;
    - {!Stale_certification}: a [try_upgrade] certifying a version that
      was not snapshotted under the lock (value-while-held + 1) or by an
      even [read_begin] — the PR-8 stale-merge-certification class;
    - {!Unvalidated_write}: a write under an optimistically
      ([try_lock]) acquired vlock before any fence-interval validation —
      the missing-under-lock-validation class;
    - {!Sx_upgrade_readers}: an SX→X upgrade completing with S holders
      still live;
    - {!Lock_order_inversion}: two vlocks blocking-acquired in both
      orders (pairwise deadlock potential).

    Optimistic seqlock reads are buffered per bracket and join the
    machine only when their validation (or a certifying [try_upgrade])
    succeeds — a failed validation is the protocol working, not a race.
    Validated reads are checked against unlocked writes but are not
    recorded as racing reads for later writers: a seqlock grants readers
    no edge to subsequent writers, validation is their protection.

    The detector serializes all events behind one mutex; with no
    detector attached the instrumentation costs one atomic load per
    protocol operation. *)

(** {1 Violations} *)

type severity = Race | Lint

type kind =
  | Write_write_race
  | Read_write_race
  | Unordered_ack
  | Premature_reclaim
  | Use_after_retire
  | Unheld_unlock
  | Stale_certification
  | Unvalidated_write
  | Sx_upgrade_readers
  | Lock_order_inversion

val severity : kind -> severity
val kind_name : kind -> string

type violation = {
  kind : kind;
  site : string;
      (** the annotation site active when the event fired ("?" when the
          offending domain never passed an annotated access) *)
  detail : string;
  tid : int;  (** dense per-detector domain index *)
}

val pp_violation : Format.formatter -> violation -> unit

(** {1 Lifecycle} *)

type t

val create : unit -> t

val attach : t -> unit
(** Install the detector as the global {!Sync.Hook} tracer (replaces any
    previous tracer).  Attach before spawning the domains to be
    checked. *)

val detach : unit -> unit
(** Remove the global tracer.  Accumulated results remain readable. *)

val watch_device : t -> Pmem.Device.t -> unit
(** Additionally consume the device's event stream (via
    {!Pmem.Device.add_tracer}, so it composes with pmsan and trace
    exporters on the same device) to check {!Unordered_ack}.  Note that
    per-lane read/write views have private tracer slots: lane traffic is
    not visible to a base-device watch — the same coverage contract as
    pmsan. *)

(** {1 Results} *)

val violations : t -> violation list
(** Oldest first.  Recording caps at 500; beyond that only {!dropped}
    counts (per-site counters keep counting). *)

val dropped : t -> int
val races : violation list -> violation list
val lints : violation list -> violation list
val clean : t -> bool
val find : ?kind:kind -> t -> violation list

val by_site : t -> (string * kind * int) list
(** Exact per-(site, kind) totals since [create] (never capped). *)

val pp_report : Format.formatter -> t -> unit

(** {1 Harnesses} *)

type report = {
  name : string;
  ops_run : int;
  report_violations : violation list;
  report_dropped : int;
}

val report_clean : report -> bool
val pp_index_report : Format.formatter -> report -> unit

val check_index :
  ?ops:int ->
  ?seed:int ->
  ?key_space:int ->
  ?device_mb:int ->
  name:string ->
  create:(Pmem.Device.t -> Baselines.Index_intf.driver) ->
  unit ->
  report
(** Run a seeded sequential upsert/delete/search/scan script over an
    index driver with the detector attached (hook + device watch):
    single-domain protocol discipline must come back violation-free. *)

val check_tree :
  ?writers:int ->
  ?readers:int ->
  ?ops:int ->
  ?seed:int ->
  ?key_space:int ->
  ?device_mb:int ->
  ?faults:Ccl_btree.Tree.Fault.kind list ->
  unit ->
  report
(** Concurrent writer/reader storm over one CCL-BTree (lane-owned near
    keys plus far-key insert+delete batches, so splits and merges keep
    firing) with the detector attached.  [faults] arms
    {!Ccl_btree.Tree.Fault} mutations for the run (always reset on
    exit), letting mutation tests assert the detector finds each
    re-introduced bug class; with no faults the storm must come back
    clean. *)
