(** Periodic device time-series: every N ops, snapshot the counter deltas
    since the previous sample plus the instantaneous XPBuffer occupancy
    and dirty-cacheline count — the paper's [ipmctl]-style polling loop,
    but exact.

    Invariant (tested): after {!finish}, [Stats.merge_all] over the sample
    deltas equals [Stats.diff] between the device counters at {!finish}
    and at {!create} — no traffic is lost between samples. *)

type sample = {
  at_op : int;  (** op count at which the sample was taken *)
  ts_ns : int64;  (** caller-supplied timestamp *)
  delta : Pmem.Stats.t;  (** counter deltas since the previous sample *)
  xpbuffer_occupancy : int;
  dirty_lines : int;
}

type t

val create : ?every:int -> now:(unit -> int64) -> Pmem.Device.t -> t
(** Snapshot the device counters as the baseline.  [every] defaults to
    1000 ops; values < 1 are clamped to 1. *)

val tick : t -> unit
(** Count one op; takes a sample when the op count crosses a multiple of
    [every].  O(1) and allocation-free off the sampling edge. *)

val rebase : t -> unit
(** Reset the delta baseline to the device's current counters without
    emitting a sample: the next delta starts here.  Used at the start of
    a measured phase so warmup traffic does not leak into the series. *)

val finish : t -> unit
(** Take a final partial sample covering ops since the last edge, so the
    deltas sum to the whole run.  Idempotent only if no ops follow. *)

val samples : t -> sample list
(** Samples in chronological order. *)

val summed : t -> Pmem.Stats.t
(** [Stats.merge_all] over all sample deltas. *)

val to_csv : t -> Buffer.t -> unit
(** Header line + one row per sample (counter deltas + occupancy). *)

val to_json : t -> Json.t
(** [List] of flat objects, one per sample. *)
