(** Chrome trace-event JSON writer ([chrome://tracing] / Perfetto).

    Events accumulate in memory and {!write} emits a
    [{"traceEvents": [...]}] document.  Timestamps are microseconds
    (float); [tid] distinguishes execution lanes (0 = router/main thread,
    1..N = shard workers).

    Well-formedness is guaranteed by construction: {!span_end} with no
    matching open {!span_begin} on that lane is dropped, and {!write}
    auto-closes any span still open at the latest timestamp seen — so the
    B/E events in the output always balance per lane. *)

type t

val create : unit -> t

val event_count : t -> int
(** Number of events buffered so far (metadata records included). *)

val thread_name : t -> tid:int -> string -> unit
(** Label a lane in the viewer (metadata record, ph "M"). *)

val complete : t -> tid:int -> name:string -> cat:string -> ts_us:float -> dur_us:float -> unit
(** A self-contained span (ph "X"): one op, one queue batch, ... *)

val span_begin : t -> tid:int -> name:string -> ts_us:float -> unit
(** Open a nested span (ph "B") on a lane. *)

val span_end : t -> tid:int -> ts_us:float -> unit
(** Close the innermost open span on a lane (ph "E"); no-op when no span
    is open there. *)

val instant : t -> tid:int -> name:string -> ts_us:float -> unit
(** A point event (ph "i", thread scope). *)

val counter : t -> name:string -> ts_us:float -> (string * float) list -> unit
(** A counter track sample (ph "C") — e.g. XPBuffer occupancy over time. *)

val write : t -> out_channel -> unit
(** Emit the trace document; open spans are closed first. *)

val write_many : t list -> out_channel -> unit
(** Emit one trace document holding every buffer's events.  The sharded
    runner gives each worker domain its own [t] (so recording is
    race-free without locks) and merges them here; the trace-event format
    does not require global timestamp order. *)
