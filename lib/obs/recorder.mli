(** Glue binding the three pillars — histograms, sampler, trace — to an
    execution: a recorder holds global switches, and each execution lane
    (main thread, shard worker) registers a {!worker} handle it records
    through.

    Concurrency contract: register every worker from the coordinating
    thread {e before} spawning domains; after that, each worker handle is
    touched only by its own domain (own histogram table, own trace
    buffer, own sampler), so recording needs no locks.  {!finish},
    {!hists} and the writers are called after the domains join.

    Everything is zero-cost when the corresponding switch is off: each
    recording call is one branch. *)

type t
type worker

val create :
  ?hist:bool -> ?sample_every:int -> ?trace:bool -> now:(unit -> int64) -> unit -> t
(** [now] supplies monotonic nanoseconds (e.g. [Shard.Clock.monotonic_ns]
    — this library stays clock-agnostic to avoid a dependency cycle).
    [sample_every <= 0] disables sampling.  All switches default off. *)

val enabled : t -> bool
(** At least one switch is on. *)

val trace_on : t -> bool
val hist_on : t -> bool

val worker : t -> tid:int -> ?name:string -> ?dev:Pmem.Device.t -> unit -> worker
(** Register lane [tid] (0 = main/router, 1..N = shard workers).  [dev]
    enables per-lane device sampling (when [sample_every > 0]) and is the
    target for {!install_device_tracer}. *)

val record : worker -> kind:string -> t0:int64 -> t1:int64 -> unit
(** One completed op: records [t1 - t0] ns into this lane's [kind]
    histogram, emits a trace "X" span, ticks the lane's sampler. *)

val span : worker -> name:string -> t0:int64 -> t1:int64 -> unit
(** An explicit trace span with no histogram/sampler side effects
    (queue batches, worker busy periods). *)

val instant : worker -> string -> unit
(** A point event on this lane's trace track. *)

val pause : t -> unit
(** Stop recording (all lanes): warmup/load phases call this so measured
    histograms, samples and traces cover only the op phase.  Call from the
    coordinating thread in a quiescent window. *)

val resume : t -> unit
(** Re-enable recording and rebase every lane's sampler to the device's
    current counters, so the time-series deltas start at the measured
    phase.  Recorders start resumed. *)

val install_device_tracer : worker -> unit
(** When tracing, hook the worker's device (via
    [Pmem.Device.add_tracer], composing with any sanitizer already
    attached) so [Span_begin]/[Span_end] protocol markers — WAL batch
    flushes, splits, GC runs — become nested B/E spans on this lane. *)

val finish : t -> unit
(** Flush every lane's sampler (final partial sample). *)

val hists : t -> (string * Histogram.t) list
(** Per-kind histograms merged across lanes, sorted by kind. *)

val samplers : t -> (int * Sampler.t) list
(** Per-lane samplers, tagged with lane id. *)

val total_ops : t -> int
(** Sum of histogram counts across lanes and kinds. *)

val write_trace : ?extra:Trace.t list -> t -> string -> unit
(** Write the merged Chrome trace-event document.  [extra] buffers from
    other producers (e.g. {!Prof.trace_buffers} counter tracks) are
    appended to the same document. *)

val write_metrics : ?extra:(string * Json.t) list -> t -> device:Pmem.Stats.t -> string -> unit
(** Write the metrics-JSON document ({!Metrics.document}). *)

val print_hists : t -> unit
(** Human-readable percentile table on stdout (the [--hist] flag). *)
