(** The metrics-JSON document: measured latency histograms per op kind,
    final device counters (with derived amplification ratios), and the
    optional device time-series.

    The ["device"] section deliberately precedes ["samples"] so that
    {!Json.scan_numbers} + [Pmem.Stats.of_assoc] (first occurrence wins)
    recover the final counters from the file — that is how the [pmstat]
    tool diffs two snapshots. *)

val histogram_json : Histogram.t -> Json.t
(** Summary percentiles plus the full non-empty bucket list. *)

val device_json : Pmem.Stats.t -> Json.t
(** Flat counter object + [cli_amplification] / [xbi_amplification]. *)

val document :
  ops:int ->
  hists:(string * Histogram.t) list ->
  device:Pmem.Stats.t ->
  ?samples:(int * Sampler.t) list ->
  ?extra:(string * Json.t) list ->
  unit ->
  Json.t
(** [samples] are tagged with the worker lane id they were collected on.
    [extra] appends caller-specific fields (workload name, config, ...). *)

type diff_entry =
  [ `Delta of float * float | `Added of float | `Removed of float ]

val diff_numbers :
  before:(string * float) list ->
  after:(string * float) list ->
  (string * diff_entry) list
(** Union diff over two flat numeric snapshots ({!Json.scan_numbers}
    output).  Keys present in both yield [`Delta (before, after)] in the
    after-snapshot's key order; keys only in [after] yield [`Added] and
    keys only in [before] yield [`Removed] (appended last) — schema
    growth (new profile sections) never raises.  Duplicate keys resolve
    first-occurrence-wins, matching [scan_numbers] consumers. *)

val write_file : string -> Json.t -> unit
