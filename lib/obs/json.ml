type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_repr f =
  if Float.is_nan f || Float.is_integer f && Float.abs f < 1e15 then
    (* integral floats (and NaN -> 0) print without an exponent *)
    Printf.sprintf "%.0f" (if Float.is_nan f then 0.0 else f)
  else if Float.is_finite f then Printf.sprintf "%.6g" f
  else if f > 0.0 then "1e308"
  else "-1e308"

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int v -> Buffer.add_string b (string_of_int v)
  | Float v -> Buffer.add_string b (float_repr v)
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List vs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          to_buffer b v)
        vs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          to_buffer b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b

let to_channel oc v = output_string oc (to_string v)

(* Scan for "key" : number pairs; enough to re-read the flat metrics
   objects this module writes. *)
let scan_numbers s =
  let n = String.length s in
  let acc = ref [] in
  let i = ref 0 in
  let skip_ws () =
    while !i < n && (s.[!i] = ' ' || s.[!i] = '\n' || s.[!i] = '\t' || s.[!i] = '\r') do
      incr i
    done
  in
  while !i < n do
    if s.[!i] = '"' then begin
      let start = !i + 1 in
      let j = ref start in
      while !j < n && s.[!j] <> '"' do
        if s.[!j] = '\\' then incr j;
        incr j
      done;
      if !j < n then begin
        let key = String.sub s start (!j - start) in
        i := !j + 1;
        skip_ws ();
        if !i < n && s.[!i] = ':' then begin
          incr i;
          skip_ws ();
          let start = !i in
          while
            !i < n
            && (match s.[!i] with
               | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
               | _ -> false)
          do
            incr i
          done;
          if !i > start then
            match float_of_string_opt (String.sub s start (!i - start)) with
            | Some v -> acc := (key, v) :: !acc
            | None -> ()
        end
      end
      else i := n
    end
    else incr i
  done;
  List.rev !acc
