module Stats = Pmem.Stats

let histogram_json h =
  Json.Obj
    (List.map (fun (k, v) -> (k, Json.Float v)) (Histogram.to_assoc h)
    @ [
        ( "buckets",
          Json.List
            (List.map
               (fun (lo, hi, n) ->
                 Json.Obj
                   [ ("lo", Json.Int lo); ("hi", Json.Int hi); ("n", Json.Int n) ])
               (Histogram.buckets h)) );
      ])

let device_json stats =
  Json.Obj
    (List.map (fun (k, v) -> (k, Json.Int v)) (Stats.to_assoc stats)
    @ [
        ("cli_amplification", Json.Float (Stats.cli_amplification stats));
        ("xbi_amplification", Json.Float (Stats.xbi_amplification stats));
      ])

let document ~ops ~hists ~device ?(samples = []) ?(extra = []) () =
  Json.Obj
    ([ ("ops", Json.Int ops) ]
    @ [
        ( "histograms",
          Json.Obj (List.map (fun (k, h) -> (k, histogram_json h)) hists) );
      ]
    @ [ ("device", device_json device) ]
    @ (match samples with
      | [] -> []
      | _ ->
          [
            ( "samples",
              Json.Obj
                (List.map
                   (fun (tid, s) ->
                     (Printf.sprintf "w%d" tid, Sampler.to_json s))
                   samples) );
          ])
    @ extra)

let write_file path doc =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Json.to_channel oc doc;
      output_char oc '\n')
