module Stats = Pmem.Stats

let histogram_json h =
  Json.Obj
    (List.map (fun (k, v) -> (k, Json.Float v)) (Histogram.to_assoc h)
    @ [
        ( "buckets",
          Json.List
            (List.map
               (fun (lo, hi, n) ->
                 Json.Obj
                   [ ("lo", Json.Int lo); ("hi", Json.Int hi); ("n", Json.Int n) ])
               (Histogram.buckets h)) );
      ])

let device_json stats =
  Json.Obj
    (List.map (fun (k, v) -> (k, Json.Int v)) (Stats.to_assoc stats)
    @ [
        ("cli_amplification", Json.Float (Stats.cli_amplification stats));
        ("xbi_amplification", Json.Float (Stats.xbi_amplification stats));
      ])

let document ~ops ~hists ~device ?(samples = []) ?(extra = []) () =
  Json.Obj
    ([ ("ops", Json.Int ops) ]
    @ [
        ( "histograms",
          Json.Obj (List.map (fun (k, h) -> (k, histogram_json h)) hists) );
      ]
    @ [ ("device", device_json device) ]
    @ (match samples with
      | [] -> []
      | _ ->
          [
            ( "samples",
              Json.Obj
                (List.map
                   (fun (tid, s) ->
                     (Printf.sprintf "w%d" tid, Sampler.to_json s))
                   samples) );
          ])
    @ extra)

(* Union diff over two flat numeric snapshots.  Keys may appear in only
   one snapshot (a profile section present after but not before, say):
   those surface as [`Added]/[`Removed] instead of raising, which is what
   lets [pmstat] diff metrics documents across schema growth.  Duplicate
   keys (histogram bucket fields) resolve first-occurrence-wins, matching
   [Json.scan_numbers] usage. *)

type diff_entry =
  [ `Delta of float * float | `Added of float | `Removed of float ]

let diff_numbers ~before ~after : (string * diff_entry) list =
  let dedupe l =
    let seen = Hashtbl.create 64 in
    List.filter
      (fun (k, _) ->
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      l
  in
  let b = dedupe before and a = dedupe after in
  let btbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace btbl k v) b;
  let atbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace atbl k v) a;
  List.map
    (fun (k, va) ->
      match Hashtbl.find_opt btbl k with
      | Some vb -> (k, `Delta (vb, va))
      | None -> (k, `Added va))
    a
  @ List.filter_map
      (fun (k, vb) ->
        if Hashtbl.mem atbl k then None else Some (k, `Removed vb))
      b

let write_file path doc =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Json.to_channel oc doc;
      output_char oc '\n')
