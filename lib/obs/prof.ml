module D = Pmem.Device
module G = Pmem.Geometry
module Site = Pmem.Site
module H = Sync.Hook

let nsites = Site.max_sites
let dom_slots = 1024 (* power of two; domain ids are masked into it *)

type lane = {
  tid : int;
  p : t;
  mutable dev : D.t option;
  mutable dom : int;  (* domain id bound on first observed event; -1 before *)
  (* WA engine, indexed by site id *)
  stores : int array;
  store_bytes : int array;
  clwbs : int array;
  xp_bytes : int array;
  evict_bytes : int array;
  media_bytes : int array;
  media_lines : int array;
  fill_lines : int array;
  (* contention engine *)
  try_fail : int array;
  upg_abort : int array;
  val_fail : int array;
  sx_wait : Histogram.t;
  mutable sx_waits : int;
  mutable sx_t0 : int64;
  mutable sx_id : int;
  q_wait : Histogram.t;
  q_apply : Histogram.t;
  tr : Trace.t option;
  mutable cevents : int;  (* contention events since last counter sample *)
}

and t = {
  now : unit -> int64;
  origin : int64;
  trace : bool;
  mu : Mutex.t;
  mutable lanes : lane list;
  by_dom : lane option array;
  mutable paused : bool;
  mutable hook_installed : bool;
}

let create ?(trace = false) ~now () =
  {
    now;
    origin = now ();
    trace;
    mu = Mutex.create ();
    lanes = [];
    by_dom = Array.make dom_slots None;
    paused = false;
    hook_installed = false;
  }

let pause t = t.paused <- true
let resume t = t.paused <- false

let lane t ~tid =
  let l =
    {
      tid;
      p = t;
      dev = None;
      dom = -1;
      stores = Array.make nsites 0;
      store_bytes = Array.make nsites 0;
      clwbs = Array.make nsites 0;
      xp_bytes = Array.make nsites 0;
      evict_bytes = Array.make nsites 0;
      media_bytes = Array.make nsites 0;
      media_lines = Array.make nsites 0;
      fill_lines = Array.make nsites 0;
      try_fail = Array.make nsites 0;
      upg_abort = Array.make nsites 0;
      val_fail = Array.make nsites 0;
      sx_wait = Histogram.create ();
      sx_waits = 0;
      sx_t0 = 0L;
      sx_id = -1;
      q_wait = Histogram.create ();
      q_apply = Histogram.create ();
      tr = (if t.trace then Some (Trace.create ()) else None);
      cevents = 0;
    }
  in
  Mutex.lock t.mu;
  t.lanes <- l :: t.lanes;
  Mutex.unlock t.mu;
  l

(* First event on a lane binds the calling domain, so the global sync
   hook can route lock events back to the lane whose device the domain
   is driving.  Slots can collide (ids are masked) or be contended when
   one domain drives several lane devices (single-driver round-robin
   mode): first binding wins, later lanes' sync events fall back to the
   bound lane — attribution noise, never a race (word-sized writes). *)
let[@inline] bind_domain l =
  if l.dom < 0 then begin
    let d = (Domain.self () :> int) in
    l.dom <- d;
    let slot = d land (dom_slots - 1) in
    match l.p.by_dom.(slot) with
    | None -> l.p.by_dom.(slot) <- Some l
    | Some _ -> ()
  end

let us_of t ns = Int64.to_float (Int64.sub ns t.origin) /. 1e3

(* Per-site cumulative counter sample (Perfetto "C" events).  Only
   non-zero series are emitted, so quiet sites don't clutter tracks. *)
let counter_series arr =
  let acc = ref [] in
  for s = nsites - 1 downto 0 do
    if arr.(s) > 0 then acc := (Site.label s, float_of_int arr.(s)) :: !acc
  done;
  !acc

let emit_counters l =
  match l.tr with
  | None -> ()
  | Some tr ->
    let ts_us = us_of l.p (l.p.now ()) in
    let put name arr =
      match counter_series arr with
      | [] -> ()
      | series ->
        Trace.counter tr ~name:(Printf.sprintf "%s/w%d" name l.tid) ~ts_us
          series
    in
    put "vlock-contended" l.try_fail;
    put "vlock-upgrade-abort" l.upg_abort;
    put "read-validate-fail" l.val_fail;
    if Histogram.count l.sx_wait > 0 then
      Trace.counter tr
        ~name:(Printf.sprintf "sx-wait-ns/w%d" l.tid)
        ~ts_us
        [
          ("p50", float_of_int (Histogram.percentile l.sx_wait 50.0));
          ("p99", float_of_int (Histogram.percentile l.sx_wait 99.0));
        ];
    if Histogram.count l.q_wait > 0 then
      Trace.counter tr
        ~name:(Printf.sprintf "queue-wait-ns/w%d" l.tid)
        ~ts_us
        [ ("p99", float_of_int (Histogram.percentile l.q_wait 99.0)) ]

let[@inline] tick_counters l =
  l.cevents <- l.cevents + 1;
  if l.cevents land 255 = 0 then emit_counters l

let attach_device l dev =
  l.dev <- Some dev;
  D.set_site_tracking dev true;
  let p = l.p in
  D.add_tracer dev (fun ev ->
      bind_domain l;
      if not p.paused then
        match ev with
        | D.Store { len; _ } ->
          let s = D.current_site dev in
          l.stores.(s) <- l.stores.(s) + 1;
          l.store_bytes.(s) <- l.store_bytes.(s) + len
        | D.Clwb _ ->
          let s = D.current_site dev in
          l.clwbs.(s) <- l.clwbs.(s) + 1
        | D.Xp_write { site; evict; _ } ->
          l.xp_bytes.(site) <- l.xp_bytes.(site) + G.cacheline_size;
          if evict then
            l.evict_bytes.(site) <- l.evict_bytes.(site) + G.cacheline_size
        | D.Media_write { site; fill; _ } ->
          l.media_bytes.(site) <- l.media_bytes.(site) + G.xpline_size;
          l.media_lines.(site) <- l.media_lines.(site) + 1;
          if fill then l.fill_lines.(site) <- l.fill_lines.(site) + 1
        | _ -> ())

let queue_wait l ns = if not l.p.paused then Histogram.record l.q_wait ns
let queue_apply l ns = if not l.p.paused then Histogram.record l.q_apply ns

let install_sync_hook t =
  if not t.hook_installed then begin
    t.hook_installed <- true;
    H.add_tracer (fun ev ->
        if not t.paused then
          match t.by_dom.((Domain.self () :> int) land (dom_slots - 1)) with
          | None -> ()
          | Some l ->
            let site =
              match l.dev with Some dev -> D.current_site dev | None -> 0
            in
            (match ev with
            | H.Vlock_contended _ ->
              l.try_fail.(site) <- l.try_fail.(site) + 1;
              tick_counters l
            | H.Vlock_try_upgrade { ok = false; _ } ->
              l.upg_abort.(site) <- l.upg_abort.(site) + 1;
              tick_counters l
            | H.Vlock_validate { ok = false; _ } ->
              l.val_fail.(site) <- l.val_fail.(site) + 1;
              tick_counters l
            | H.Sx_request { id; _ } ->
              l.sx_id <- id;
              l.sx_t0 <- t.now ()
            | H.Sx_acquire { id; _ } | H.Sx_upgrade { id; _ } ->
              if l.sx_id = id then begin
                Histogram.record l.sx_wait
                  (Int64.to_int (Int64.sub (t.now ()) l.sx_t0));
                l.sx_waits <- l.sx_waits + 1;
                l.sx_id <- -1;
                tick_counters l
              end
            | _ -> ()))
  end

let finish t =
  Mutex.lock t.mu;
  let lanes = t.lanes in
  Mutex.unlock t.mu;
  List.iter emit_counters lanes

let trace_buffers t =
  Mutex.lock t.mu;
  let lanes = t.lanes in
  Mutex.unlock t.mu;
  List.filter_map (fun l -> l.tr) (List.rev lanes)

(* --- aggregation (after worker domains join) -------------------------- *)

type wa_row = {
  site : string;
  stores : int;
  store_bytes : int;
  clwbs : int;
  xp_bytes : int;
  evict_bytes : int;
  media_bytes : int;
  media_lines : int;
  fill_lines : int;
}

let sum_site t arr_of s =
  List.fold_left (fun acc l -> acc + (arr_of l).(s)) 0 t.lanes

let wa_row t s =
  {
    site = Site.label s;
    stores = sum_site t (fun l -> l.stores) s;
    store_bytes = sum_site t (fun l -> l.store_bytes) s;
    clwbs = sum_site t (fun l -> l.clwbs) s;
    xp_bytes = sum_site t (fun l -> l.xp_bytes) s;
    evict_bytes = sum_site t (fun l -> l.evict_bytes) s;
    media_bytes = sum_site t (fun l -> l.media_bytes) s;
    media_lines = sum_site t (fun l -> l.media_lines) s;
    fill_lines = sum_site t (fun l -> l.fill_lines) s;
  }

let row_empty r =
  r.stores = 0 && r.clwbs = 0 && r.xp_bytes = 0 && r.media_bytes = 0

let wa_table t =
  let rows = ref [] in
  for s = Site.count () - 1 downto 0 do
    let r = wa_row t s in
    if not (row_empty r) then rows := r :: !rows
  done;
  List.sort
    (fun a b ->
      if a.media_bytes <> b.media_bytes then compare b.media_bytes a.media_bytes
      else compare b.store_bytes a.store_bytes)
    !rows

let wa_total t =
  List.fold_left
    (fun acc r ->
      {
        acc with
        stores = acc.stores + r.stores;
        store_bytes = acc.store_bytes + r.store_bytes;
        clwbs = acc.clwbs + r.clwbs;
        xp_bytes = acc.xp_bytes + r.xp_bytes;
        evict_bytes = acc.evict_bytes + r.evict_bytes;
        media_bytes = acc.media_bytes + r.media_bytes;
        media_lines = acc.media_lines + r.media_lines;
        fill_lines = acc.fill_lines + r.fill_lines;
      })
    {
      site = "total";
      stores = 0;
      store_bytes = 0;
      clwbs = 0;
      xp_bytes = 0;
      evict_bytes = 0;
      media_bytes = 0;
      media_lines = 0;
      fill_lines = 0;
    }
    (wa_table t)

type cont_row = {
  csite : string;
  try_fail : int;
  upgrade_abort : int;
  validate_fail : int;
}

let cont_table t =
  let rows = ref [] in
  for s = Site.count () - 1 downto 0 do
    let r =
      {
        csite = Site.label s;
        try_fail = sum_site t (fun l -> l.try_fail) s;
        upgrade_abort = sum_site t (fun l -> l.upg_abort) s;
        validate_fail = sum_site t (fun l -> l.val_fail) s;
      }
    in
    if r.try_fail + r.upgrade_abort + r.validate_fail > 0 then
      rows := r :: !rows
  done;
  List.sort
    (fun a b ->
      compare
        (b.try_fail + b.upgrade_abort + b.validate_fail)
        (a.try_fail + a.upgrade_abort + a.validate_fail))
    !rows

let sx_wait t = Histogram.merge_all (List.map (fun l -> l.sx_wait) t.lanes)
let sx_waits t = List.fold_left (fun acc l -> acc + l.sx_waits) 0 t.lanes

let queue_hists t =
  let w = Histogram.merge_all (List.map (fun l -> l.q_wait) t.lanes) in
  let a = Histogram.merge_all (List.map (fun l -> l.q_apply) t.lanes) in
  (if Histogram.count w > 0 then [ ("queue-wait", w) ] else [])
  @ if Histogram.count a > 0 then [ ("queue-apply", a) ] else []

(* --- export ----------------------------------------------------------- *)

let amp r =
  if r.store_bytes = 0 then 0.0
  else float_of_int r.media_bytes /. float_of_int r.store_bytes

let to_json t =
  let wa =
    List.concat_map
      (fun r ->
        let k f = Printf.sprintf "wa.%s.%s" r.site f in
        [
          (k "stores", Json.Int r.stores);
          (k "store_bytes", Json.Int r.store_bytes);
          (k "clwbs", Json.Int r.clwbs);
          (k "xp_bytes", Json.Int r.xp_bytes);
          (k "evict_bytes", Json.Int r.evict_bytes);
          (k "media_bytes", Json.Int r.media_bytes);
          (k "fill_lines", Json.Int r.fill_lines);
          (k "amp", Json.Float (amp r));
        ])
      (wa_table t)
  in
  let tot = wa_total t in
  let totals =
    [
      ("wa.total.store_bytes", Json.Int tot.store_bytes);
      ("wa.total.media_bytes", Json.Int tot.media_bytes);
      ("wa.total.xp_bytes", Json.Int tot.xp_bytes);
      ("wa.total.amp", Json.Float (amp tot));
    ]
  in
  let cont =
    List.concat_map
      (fun r ->
        let k f = Printf.sprintf "cont.%s.%s" r.csite f in
        [
          (k "vlock_contended", Json.Int r.try_fail);
          (k "upgrade_abort", Json.Int r.upgrade_abort);
          (k "validate_fail", Json.Int r.validate_fail);
        ])
      (cont_table t)
  in
  let sx =
    let h = sx_wait t in
    if Histogram.count h = 0 then []
    else
      [
        ("sx.waits", Json.Int (Histogram.count h));
        ("sx.wait_p50_ns", Json.Int (Histogram.percentile h 50.0));
        ("sx.wait_p99_ns", Json.Int (Histogram.percentile h 99.0));
      ]
  in
  let queue =
    List.concat_map
      (fun (name, h) ->
        let k f = Printf.sprintf "%s.%s" name f in
        [
          (k "count", Json.Int (Histogram.count h));
          (k "p50_ns", Json.Int (Histogram.percentile h 50.0));
          (k "p99_ns", Json.Int (Histogram.percentile h 99.0));
        ])
      (queue_hists t)
  in
  Json.Obj (wa @ totals @ cont @ sx @ queue)

let print_report t ~name =
  let rows = wa_table t in
  let tot = wa_total t in
  Printf.printf "\nWrite amplification by site — %s\n" name;
  Printf.printf "  %-18s %10s %10s %8s %10s %10s %7s %6s\n" "site"
    "store_B" "xpbuf_B" "evict_B" "media_B" "fills" "amp" "share";
  let share r =
    if tot.media_bytes = 0 then 0.0
    else 100.0 *. float_of_int r.media_bytes /. float_of_int tot.media_bytes
  in
  List.iter
    (fun r ->
      Printf.printf "  %-18s %10d %10d %8d %10d %10d %7.2f %5.1f%%\n" r.site
        r.store_bytes r.xp_bytes r.evict_bytes r.media_bytes r.fill_lines
        (amp r) (share r))
    rows;
  Printf.printf "  %-18s %10d %10d %8d %10d %10d %7.2f %5s\n" "TOTAL"
    tot.store_bytes tot.xp_bytes tot.evict_bytes tot.media_bytes
    tot.fill_lines (amp tot) "";
  let cont = cont_table t in
  let sxh = sx_wait t in
  if cont <> [] || Histogram.count sxh > 0 || queue_hists t <> [] then begin
    Printf.printf "\nContention by site — %s\n" name;
    Printf.printf "  %-18s %12s %12s %12s\n" "site" "vlock-fail"
      "upgrade-abort" "validate-fail";
    List.iter
      (fun r ->
        Printf.printf "  %-18s %12d %12d %12d\n" r.csite r.try_fail
          r.upgrade_abort r.validate_fail)
      cont;
    if Histogram.count sxh > 0 then
      Printf.printf "  sx-wait: %d waits, p50 %d ns, p99 %d ns\n"
        (Histogram.count sxh)
        (Histogram.percentile sxh 50.0)
        (Histogram.percentile sxh 99.0);
    List.iter
      (fun (qname, h) ->
        Printf.printf "  %s: %d batches, p50 %d ns, p99 %d ns\n" qname
          (Histogram.count h)
          (Histogram.percentile h 50.0)
          (Histogram.percentile h 99.0))
      (queue_hists t)
  end
