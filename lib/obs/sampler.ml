module D = Pmem.Device
module Stats = Pmem.Stats

type sample = {
  at_op : int;
  ts_ns : int64;
  delta : Stats.t;
  xpbuffer_occupancy : int;
  dirty_lines : int;
}

type t = {
  dev : D.t;
  every : int;
  now : unit -> int64;
  prev : Stats.t; (* counters as of the previous sample (or creation) *)
  mutable ops : int;
  mutable since_edge : int;
  mutable rev_samples : sample list;
}

let create ?(every = 1000) ~now dev =
  {
    dev;
    every = max 1 every;
    now;
    prev = D.snapshot dev;
    ops = 0;
    since_edge = 0;
    rev_samples = [];
  }

let take t =
  let cur = D.stats t.dev in
  let delta = Stats.diff ~after:cur ~before:t.prev in
  Stats.blit ~src:cur ~dst:t.prev;
  t.rev_samples <-
    {
      at_op = t.ops;
      ts_ns = t.now ();
      delta;
      xpbuffer_occupancy = D.xpbuffer_occupancy t.dev;
      dirty_lines = D.dirty_lines t.dev;
    }
    :: t.rev_samples;
  t.since_edge <- 0

let tick t =
  t.ops <- t.ops + 1;
  t.since_edge <- t.since_edge + 1;
  if t.since_edge >= t.every then take t

let rebase t =
  Stats.blit ~src:(D.stats t.dev) ~dst:t.prev;
  t.since_edge <- 0

let finish t = if t.since_edge > 0 || not (Stats.equal (D.stats t.dev) t.prev) then take t
let samples t = List.rev t.rev_samples
let summed t = Stats.merge_all (List.map (fun s -> s.delta) (samples t))

let columns =
  [ "at_op"; "ts_ns"; "xpbuffer_occupancy"; "dirty_lines" ]
  @ List.map fst (Stats.to_assoc (Stats.create ()))

let row s =
  [
    ("at_op", float_of_int s.at_op);
    ("ts_ns", Int64.to_float s.ts_ns);
    ("xpbuffer_occupancy", float_of_int s.xpbuffer_occupancy);
    ("dirty_lines", float_of_int s.dirty_lines);
  ]
  @ List.map (fun (k, v) -> (k, float_of_int v)) (Stats.to_assoc s.delta)

let to_csv t buf =
  Buffer.add_string buf (String.concat "," columns);
  Buffer.add_char buf '\n';
  List.iter
    (fun s ->
      List.iteri
        (fun i (_, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "%.0f" v))
        (row s);
      Buffer.add_char buf '\n')
    (samples t)

let to_json t =
  Json.List
    (List.map
       (fun s -> Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) (row s)))
       (samples t))
