type t = {
  buf : Buffer.t;
  mutable n : int;
  mutable last_ts : float;
  open_spans : (int, string list ref) Hashtbl.t; (* tid -> open B names *)
}

let create () =
  { buf = Buffer.create 4096; n = 0; last_ts = 0.0; open_spans = Hashtbl.create 8 }

let event_count t = t.n

let add t fields =
  if t.n > 0 then Buffer.add_string t.buf ",\n";
  Json.to_buffer t.buf (Json.Obj fields);
  t.n <- t.n + 1

let base ~ph ~tid ~ts_us rest =
  Json.
    [
      ("ph", Str ph);
      ("pid", Int 1);
      ("tid", Int tid);
      ("ts", Float ts_us);
    ]
  @ rest

let see_ts t ts = if ts > t.last_ts then t.last_ts <- ts

let thread_name t ~tid name =
  add t
    Json.
      [
        ("ph", Str "M");
        ("pid", Int 1);
        ("tid", Int tid);
        ("name", Str "thread_name");
        ("args", Obj [ ("name", Str name) ]);
      ]

let complete t ~tid ~name ~cat ~ts_us ~dur_us =
  see_ts t (ts_us +. dur_us);
  add t
    (base ~ph:"X" ~tid ~ts_us
       Json.[ ("dur", Float dur_us); ("name", Str name); ("cat", Str cat) ])

let stack t tid =
  match Hashtbl.find_opt t.open_spans tid with
  | Some s -> s
  | None ->
      let s = ref [] in
      Hashtbl.add t.open_spans tid s;
      s

let span_begin t ~tid ~name ~ts_us =
  see_ts t ts_us;
  let s = stack t tid in
  s := name :: !s;
  add t (base ~ph:"B" ~tid ~ts_us Json.[ ("name", Str name) ])

let span_end t ~tid ~ts_us =
  let s = stack t tid in
  match !s with
  | [] -> () (* unmatched end: span began before tracing started *)
  | name :: rest ->
      s := rest;
      see_ts t ts_us;
      add t (base ~ph:"E" ~tid ~ts_us Json.[ ("name", Str name) ])

let instant t ~tid ~name ~ts_us =
  see_ts t ts_us;
  add t (base ~ph:"i" ~tid ~ts_us Json.[ ("name", Str name); ("s", Str "t") ])

let counter t ~name ~ts_us values =
  see_ts t ts_us;
  add t
    (base ~ph:"C" ~tid:0 ~ts_us
       Json.
         [
           ("name", Str name);
           ("args", Obj (List.map (fun (k, v) -> (k, Float v)) values));
         ])

let close_open_spans t =
  Hashtbl.iter
    (fun tid s ->
      while !s <> [] do
        span_end t ~tid ~ts_us:t.last_ts
      done)
    t.open_spans

let write_many ts oc =
  List.iter close_open_spans ts;
  output_string oc "{\"traceEvents\":[\n";
  let first = ref true in
  List.iter
    (fun t ->
      if t.n > 0 then begin
        if not !first then output_string oc ",\n";
        first := false;
        Buffer.output_buffer oc t.buf
      end)
    ts;
  output_string oc "\n]}\n"

let write t oc = write_many [ t ] oc
