(** Allocation-free log-bucketed latency histogram (HDR-histogram style).

    Values (nanoseconds, non-negative ints) land in buckets whose width
    grows geometrically: values below 16 are exact, and every power-of-two
    octave above that is split into 16 sub-buckets, so any recorded value
    is off from its bucket bound by at most 1/16 (6.25%) — precise enough
    for p50/p99/p99.9 tail reporting at any magnitude from 1 ns to hours.
    The bucket array is fixed (944 slots) and {!record} touches one slot:
    no allocation on the hot path, so per-op recording does not perturb
    the latencies being measured.

    {!merge} is a commutative, associative monoid with {!create}[ ()] as
    the neutral element — the same contract as {!Pmem.Stats.merge} — so
    per-worker histograms aggregate into one distribution exactly. *)

type t

val create : unit -> t
val clear : t -> unit
val copy : t -> t

val record : t -> int -> unit
(** Record one value (ns).  Negative values clamp to 0. *)

val count : t -> int
(** Total number of recorded values. *)

val sum : t -> int
(** Sum of recorded values (exact, not bucket-rounded). *)

val min_value : t -> int
(** Smallest recorded value; 0 on an empty histogram. *)

val max_value : t -> int
(** Largest recorded value; 0 on an empty histogram. *)

val mean : t -> float

val percentile : t -> float -> int
(** [percentile t p] for [p] in (0, 100]: an upper bound of the bucket
    containing the p-th percentile value — within one bucket (≤ 6.25%)
    of the exact order statistic.  0 on an empty histogram. *)

val merge : t -> t -> t
(** Bucket-wise sum.  Never aliases its inputs. *)

val merge_all : t list -> t

val equal : t -> t -> bool

val buckets : t -> (int * int * int) list
(** Non-empty buckets as [(lo, hi, count)] triples, ascending — the full
    distribution for export. *)

val bucket_of : int -> int
(** Bucket index of a value (monotone non-decreasing); exposed so tests
    can pin the bucketing scheme. *)

val bounds_of_bucket : int -> int * int
(** Inclusive [(lo, hi)] value range of a bucket index. *)

val to_assoc : t -> (string * float) list
(** Summary as (name, value) pairs: count, mean and the reporting
    percentiles p50/p90/p99/p99.9/max. *)

val pp : Format.formatter -> t -> unit
