(** Minimal hand-rolled JSON — the toolchain has no JSON library and the
    observability exporters only need to emit flat metrics objects and
    Chrome trace-event arrays, plus re-read the flat numeric objects they
    wrote ({!scan_numbers} for [pmstat]). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** Body of a JSON string literal (no surrounding quotes): quotes and
    backslashes get a backslash escape, control characters become
    [\u00XX] sequences. *)

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string
val to_channel : out_channel -> t -> unit

val scan_numbers : string -> (string * float) list
(** Extract every ["key" : number] pair from a JSON text, in order of
    appearance, ignoring all structure.  Tolerant by design: it is only
    meant to re-read flat numeric objects written by {!to_buffer} (metrics
    snapshots), where key names are unique and unescaped. *)
