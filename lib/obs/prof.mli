(** Site-attributed write-amplification and contention profiler.

    Two engines, both always compiled and zero-overhead when off:

    {b WA attribution.}  Each profiled lane enables the device's site
    tracking ({!Pmem.Device.set_site_tracking}) and consumes its tracer
    stream: every store and clwb is charged to the lane's innermost
    active site ({!Pmem.Device.site_enter} brackets: ["wal-append"],
    ["leaf-buffer"], ["smo-split"], ...), and the [Xp_write] /
    [Media_write] events — which fire at XPBuffer arrival and media
    write-back, long after the causal store — carry the site stamped at
    store time.  The result is a per-site breakdown of
    bytes-written-to-media vs. bytes-logically-stored: an
    XBI-amplification flame table per index, per lane.  Because every
    media write-back emits exactly one sited event, the site totals sum
    exactly to the device's global {!Pmem.Stats} media-write counters
    over the profiled window (a tested invariant).

    {b Contention.}  A {!Sync.Hook} consumer (installed with
    {!install_sync_hook}, composing with rsan via [Hook.add_tracer])
    counts per-site vlock [try_lock] failures, [try_upgrade] CAS aborts
    and optimistic-read validation retries, and times SX latch wait
    spans ([Sx_request] → [Sx_acquire]/[Sx_upgrade]) into an
    {!Histogram}.  Shard-queue residency (enqueue→dequeue→apply) is fed
    by the shard runtime through {!queue_wait}/{!queue_apply}.  With a
    trace buffer attached, cumulative per-site counts are also emitted
    as Perfetto counter tracks alongside the span tracks.

    Concurrency contract: create lanes from the coordinating thread
    ({!lane} takes a lock), then each lane is touched only by the domain
    that drives its device — the tracer callbacks run synchronously on
    the device-calling thread, and the sync-hook consumer routes events
    to the calling domain's lane.  Aggregation ({!wa_table}, ...) runs
    after the worker domains join. *)

type t
type lane

val create : ?trace:bool -> now:(unit -> int64) -> unit -> t
(** [now] supplies monotonic nanoseconds (clock-agnostic, like
    {!Recorder.create}).  [trace] allocates a per-lane counter-track
    buffer for every subsequently created lane (default off). *)

val lane : t -> tid:int -> lane
(** Register a profiling lane (0 = main/router, matching recorder lane
    numbering).  Thread-safe, but create lanes before the traffic they
    should observe. *)

val attach_device : lane -> Pmem.Device.t -> unit
(** Enable site tracking on [dev] (or a view) and hook its tracer —
    composing, via [add_tracer], with any sanitizer or trace exporter
    already attached.  The first event observed binds the calling domain
    to this lane for sync-event routing. *)

val install_sync_hook : t -> unit
(** Install the contention consumer on the global {!Sync.Hook} stream
    (idempotent).  Call after any [rsan] attach so composition preserves
    the sanitizer. *)

val pause : t -> unit
(** Stop charging (all lanes): load/warmup phases call this so tables
    cover only the measured window.  Profilers start resumed. *)

val resume : t -> unit

val queue_wait : lane -> int -> unit
(** Record one shard-queue residency span (ns): enqueue → dequeue. *)

val queue_apply : lane -> int -> unit
(** Record one batch application span (ns): dequeue → applied. *)

val finish : t -> unit
(** Emit final counter-track samples on every traced lane. *)

val trace_buffers : t -> Trace.t list
(** Per-lane counter-track buffers (empty unless [~trace:true]); merge
    them into the trace document with {!Trace.write_many}. *)

(** {1 Results} — merged across lanes (per-lane arrays combine like the
    {!Pmem.Stats.merge} monoid: commutative element-wise sums). *)

type wa_row = {
  site : string;
  stores : int;
  store_bytes : int;  (** bytes logically stored under this site *)
  clwbs : int;
  xp_bytes : int;  (** bytes arriving at the XPBuffer *)
  evict_bytes : int;  (** subset of [xp_bytes] carried by capacity evictions *)
  media_bytes : int;  (** bytes written to media (256 B per XPLine) *)
  media_lines : int;
  fill_lines : int;  (** media writes that cost a read-modify-write fill *)
}

val wa_table : t -> wa_row list
(** Non-empty sites, descending [media_bytes]; id 0 shows as
    ["(other)"]. *)

val wa_total : t -> wa_row
(** Element-wise sum over every site — equals the device-side
    {!Pmem.Stats} deltas of the profiled window. *)

type cont_row = {
  csite : string;
  try_fail : int;
  upgrade_abort : int;
  validate_fail : int;
}

val cont_table : t -> cont_row list
val sx_wait : t -> Histogram.t
val sx_waits : t -> int
val queue_hists : t -> (string * Histogram.t) list
(** [("queue-wait", h); ("queue-apply", h)] when any were recorded. *)

val to_json : t -> Json.t
(** Flat numeric object (dotted unique keys: [wa.<site>.media_bytes],
    [cont.<site>.vlock_contended], [sx.wait_p99_ns], ...) — the
    ["profile"] section of the metrics document, diffable by
    [pmstat]. *)

val print_report : t -> name:string -> unit
(** Human-readable per-site WA flame table and contention summary. *)
