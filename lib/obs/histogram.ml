(* Log-bucketed histogram: values below [sub] are exact; every octave
   [2^p, 2^(p+1)) above that splits into [sub] equal sub-buckets, so the
   relative bucket width is 1/sub everywhere.  With sub = 16 and 63-bit
   ints the index space is 944 buckets — one fixed int array, no
   allocation per record. *)

let sub_bits = 4
let sub = 1 lsl sub_bits
let nbuckets = ((62 - sub_bits) * sub) + sub (* max index 943, see below *)

type t = {
  counts : int array;
  mutable total : int;
  mutable vsum : int;
  mutable vmin : int; (* max_int when empty *)
  mutable vmax : int; (* -1 when empty *)
}

let create () =
  { counts = Array.make nbuckets 0; total = 0; vsum = 0; vmin = max_int; vmax = -1 }

let clear t =
  Array.fill t.counts 0 nbuckets 0;
  t.total <- 0;
  t.vsum <- 0;
  t.vmin <- max_int;
  t.vmax <- -1

let copy t = { t with counts = Array.copy t.counts }

(* position of the highest set bit; caller guarantees v >= sub *)
let msb v =
  let p = ref sub_bits and x = ref (v lsr sub_bits) in
  while !x > 1 do
    incr p;
    x := !x lsr 1
  done;
  !p

let bucket_of v =
  let v = if v < 0 then 0 else v in
  if v < sub then v
  else
    let p = msb v in
    ((p - sub_bits) lsl sub_bits) + (v lsr (p - sub_bits))

let bounds_of_bucket i =
  if i < sub then (i, i)
  else
    let shift = (i lsr sub_bits) - 1 in
    let lo = (sub + (i land (sub - 1))) lsl shift in
    (lo, lo + (1 lsl shift) - 1)

let record t v =
  let v = if v < 0 then 0 else v in
  let i = bucket_of v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1;
  t.vsum <- t.vsum + v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v

let count t = t.total
let sum t = t.vsum
let min_value t = if t.total = 0 then 0 else t.vmin
let max_value t = if t.total = 0 then 0 else t.vmax
let mean t = if t.total = 0 then 0.0 else float_of_int t.vsum /. float_of_int t.total

let percentile t p =
  if t.total = 0 then 0
  else begin
    let target =
      let r = int_of_float (ceil (p *. float_of_int t.total /. 100.0)) in
      if r < 1 then 1 else if r > t.total then t.total else r
    in
    let acc = ref 0 and i = ref 0 in
    while !acc < target && !i < nbuckets do
      acc := !acc + t.counts.(!i);
      incr i
    done;
    let hi = snd (bounds_of_bucket (!i - 1)) in
    (* never report past the recorded maximum *)
    if hi > t.vmax then t.vmax else hi
  end

let merge a b =
  {
    counts = Array.init nbuckets (fun i -> a.counts.(i) + b.counts.(i));
    total = a.total + b.total;
    vsum = a.vsum + b.vsum;
    vmin = min a.vmin b.vmin;
    vmax = max a.vmax b.vmax;
  }

let merge_all = function [] -> create () | h :: rest -> List.fold_left merge (copy h) rest

let equal a b =
  a.total = b.total && a.vsum = b.vsum && a.vmin = b.vmin && a.vmax = b.vmax
  && a.counts = b.counts

let buckets t =
  let acc = ref [] in
  for i = nbuckets - 1 downto 0 do
    if t.counts.(i) > 0 then begin
      let lo, hi = bounds_of_bucket i in
      acc := (lo, hi, t.counts.(i)) :: !acc
    end
  done;
  !acc

let to_assoc t =
  [
    ("count", float_of_int t.total);
    ("mean_ns", mean t);
    ("p50_ns", float_of_int (percentile t 50.0));
    ("p90_ns", float_of_int (percentile t 90.0));
    ("p99_ns", float_of_int (percentile t 99.0));
    ("p999_ns", float_of_int (percentile t 99.9));
    ("max_ns", float_of_int (max_value t));
  ]

let pp ppf t =
  Format.fprintf ppf
    "n=%d mean=%.0fns p50=%d p90=%d p99=%d p99.9=%d max=%d" t.total (mean t)
    (percentile t 50.0) (percentile t 90.0) (percentile t 99.0)
    (percentile t 99.9) (max_value t)
