module D = Pmem.Device

type t = {
  hist : bool;
  sample_every : int; (* <= 0 disables *)
  tracing : bool;
  now : unit -> int64;
  origin_ns : int64;
  mutable paused : bool;
      (* written only from the coordinating thread in quiescent windows;
         workers read a plain bool — no tearing on immediates *)
  mutable workers : worker list; (* registration order, router-side only *)
}

and worker = {
  rc : t;
  tid : int;
  hists : (string, Histogram.t) Hashtbl.t;
  trace : Trace.t option;
  sampler : Sampler.t option;
  dev : D.t option;
}

let create ?(hist = false) ?(sample_every = 0) ?(trace = false) ~now () =
  {
    hist;
    sample_every;
    tracing = trace;
    now;
    origin_ns = now ();
    paused = false;
    workers = [];
  }

let enabled t = t.hist || t.tracing || t.sample_every > 0
let trace_on t = t.tracing
let hist_on t = t.hist
let us_of t ns = Int64.to_float (Int64.sub ns t.origin_ns) /. 1e3

let worker t ~tid ?name ?dev () =
  let trace = if t.tracing then Some (Trace.create ()) else None in
  (match (trace, name) with
  | Some tr, Some n -> Trace.thread_name tr ~tid n
  | _ -> ());
  let sampler =
    match dev with
    | Some d when t.sample_every > 0 ->
        Some (Sampler.create ~every:t.sample_every ~now:t.now d)
    | _ -> None
  in
  let w = { rc = t; tid; hists = Hashtbl.create 8; trace; sampler; dev } in
  t.workers <- w :: t.workers;
  w

let hist_for w kind =
  match Hashtbl.find_opt w.hists kind with
  | Some h -> h
  | None ->
      let h = Histogram.create () in
      Hashtbl.add w.hists kind h;
      h

let record w ~kind ~t0 ~t1 =
  let t = w.rc in
  if not t.paused then begin
    if t.hist then
      Histogram.record (hist_for w kind) (Int64.to_int (Int64.sub t1 t0));
    (match w.trace with
    | Some tr ->
        Trace.complete tr ~tid:w.tid ~name:kind ~cat:"op" ~ts_us:(us_of t t0)
          ~dur_us:(Int64.to_float (Int64.sub t1 t0) /. 1e3)
    | None -> ());
    match w.sampler with Some s -> Sampler.tick s | None -> ()
  end

let span w ~name ~t0 ~t1 =
  match w.trace with
  | Some tr when not w.rc.paused ->
      Trace.complete tr ~tid:w.tid ~name ~cat:"phase" ~ts_us:(us_of w.rc t0)
        ~dur_us:(Int64.to_float (Int64.sub t1 t0) /. 1e3)
  | _ -> ()

let instant w name =
  match w.trace with
  | Some tr when not w.rc.paused ->
      Trace.instant tr ~tid:w.tid ~name ~ts_us:(us_of w.rc (w.rc.now ()))
  | _ -> ()

let install_device_tracer w =
  match (w.trace, w.dev) with
  | Some tr, Some dev ->
      let t = w.rc in
      D.add_tracer dev (fun ev ->
          if not t.paused then
            match ev with
            | D.Span_begin { name } ->
                Trace.span_begin tr ~tid:w.tid ~name ~ts_us:(us_of t (t.now ()))
            | D.Span_end _ ->
                Trace.span_end tr ~tid:w.tid ~ts_us:(us_of t (t.now ()))
            | _ -> ())
  | _ -> ()

let pause t = t.paused <- true

let resume t =
  List.iter
    (fun w -> match w.sampler with Some s -> Sampler.rebase s | None -> ())
    t.workers;
  t.paused <- false

let finish t =
  List.iter
    (fun w -> match w.sampler with Some s -> Sampler.finish s | None -> ())
    t.workers

let hists t =
  let acc = Hashtbl.create 8 in
  List.iter
    (fun w ->
      Hashtbl.iter
        (fun kind h ->
          let merged =
            match Hashtbl.find_opt acc kind with
            | Some m -> Histogram.merge m h
            | None -> Histogram.copy h
          in
          Hashtbl.replace acc kind merged)
        w.hists)
    t.workers;
  Hashtbl.fold (fun k h l -> (k, h) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let samplers t =
  List.filter_map
    (fun w -> match w.sampler with Some s -> Some (w.tid, s) | None -> None)
    (List.rev t.workers)

let total_ops t =
  List.fold_left (fun acc (_, h) -> acc + Histogram.count h) 0 (hists t)

let traces t =
  List.filter_map (fun w -> w.trace) (List.rev t.workers)

let write_trace ?(extra = []) t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Trace.write_many (traces t @ extra) oc)

let write_metrics ?extra t ~device path =
  Metrics.write_file path
    (Metrics.document ~ops:(total_ops t) ~hists:(hists t) ~device
       ~samples:(samplers t) ?extra ())

let print_hists t =
  let hs = hists t in
  if hs <> [] then begin
    Printf.printf "\nmeasured latency (ns):\n";
    Printf.printf "  %-10s %10s %10s %8s %8s %8s %8s %10s\n" "op" "count"
      "mean" "p50" "p90" "p99" "p99.9" "max";
    List.iter
      (fun (kind, h) ->
        Printf.printf "  %-10s %10d %10.0f %8d %8d %8d %8d %10d\n" kind
          (Histogram.count h) (Histogram.mean h)
          (Histogram.percentile h 50.0)
          (Histogram.percentile h 90.0)
          (Histogram.percentile h 99.0)
          (Histogram.percentile h 99.9)
          (Histogram.max_value h))
      hs
  end
