(* Pmsan: a persistency-ordering sanitizer for the simulated device.

   Driven by the Device event hook, it shadows every cacheline with a
   four-state machine

       clean --store--> dirty --clwb--> staged --sfence--> persisted

   plus an [indeterminate] state for lines whose content became
   coin-dependent at a crash (stored or staged, never fenced).  On top of
   the per-line machine it reports two violation families:

   - correctness: durability acks of lines that never completed
     flush+fence; recovery-phase loads of indeterminate bytes (outside
     declared validating regions); fences that persist a stale snapshot
     because the line was re-stored after its clwb and never re-flushed;
   - performance: clwb of a clean or already-staged line, fences with
     nothing staged, duplicate flushes of one line inside a fence epoch —
     the Bentō class of redundant persistence work.

   Detection is deterministic and exhaustive over the executed trace: it
   does not depend on which crash points a model-checking sweep samples. *)

module D = Pmem.Device
module G = Pmem.Geometry
module I = Baselines.Index_intf

(* --- violation taxonomy ----------------------------------------------- *)

type severity = Correctness | Performance

type kind =
  | Acked_unpersisted
      (* durability-acked range contains lines never flushed+fenced *)
  | Recovery_load
      (* recovery read bytes whose persistence a crash left undecided *)
  | Stale_fence
      (* line was stored after its clwb and not re-flushed: the fence
         persisted a stale snapshot while the newest content stayed
         volatile *)
  | Redundant_clwb  (* clwb of a clean / persisted / indeterminate line *)
  | Duplicate_clwb  (* re-clwb of a line already staged, content unchanged *)
  | Empty_sfence  (* fence ordered nothing: no line staged since the last *)

let severity = function
  | Acked_unpersisted | Recovery_load | Stale_fence -> Correctness
  | Redundant_clwb | Duplicate_clwb | Empty_sfence -> Performance

let kind_name = function
  | Acked_unpersisted -> "acked-unpersisted"
  | Recovery_load -> "recovery-load-indeterminate"
  | Stale_fence -> "stale-snapshot-fence"
  | Redundant_clwb -> "redundant-clwb"
  | Duplicate_clwb -> "duplicate-clwb"
  | Empty_sfence -> "empty-sfence"

type violation = {
  kind : kind;
  site : string;  (* label active when the event fired *)
  addr : int;  (* offending line (or range start); -1 for fences *)
  len : int;
  detail : string;
}

(* --- counters ---------------------------------------------------------- *)

type counters = {
  mutable clwb : int;
  mutable clwb_redundant : int;  (* Redundant_clwb *)
  mutable clwb_duplicate : int;  (* Duplicate_clwb *)
  mutable sfence : int;
  mutable sfence_empty : int;
  mutable correctness : int;  (* correctness-class violations *)
}

let counters_create () =
  {
    clwb = 0;
    clwb_redundant = 0;
    clwb_duplicate = 0;
    sfence = 0;
    sfence_empty = 0;
    correctness = 0;
  }

let counters_copy c = { c with clwb = c.clwb }

let counters_add ~into c =
  into.clwb <- into.clwb + c.clwb;
  into.clwb_redundant <- into.clwb_redundant + c.clwb_redundant;
  into.clwb_duplicate <- into.clwb_duplicate + c.clwb_duplicate;
  into.sfence <- into.sfence + c.sfence;
  into.sfence_empty <- into.sfence_empty + c.sfence_empty;
  into.correctness <- into.correctness + c.correctness

let redundant_flushes c = c.clwb_redundant + c.clwb_duplicate

let redundant_flush_pct c =
  if c.clwb = 0 then 0.0
  else 100.0 *. float_of_int (redundant_flushes c) /. float_of_int c.clwb

(* --- shadow state ------------------------------------------------------ *)

(* Per-line byte: state in the low 3 bits, flags above.  [stale] marks a
   dirty line that still has a pending clwb snapshot of older content;
   [reported] dedups recovery-load reports per line. *)
let st_clean = 0
let st_dirty = 1
let st_staged = 2
let st_persisted = 3
let st_indet = 4
let fl_stale = 8
let fl_reported = 16

let state_name = function
  | 0 -> "clean"
  | 1 -> "dirty"
  | 2 -> "staged"
  | 3 -> "persisted"
  | 4 -> "indeterminate"
  | _ -> "?"

let max_recorded = 500

type t = {
  dev : D.t;
  nlines : int;
  shadow : Bytes.t;
  mutable staged_lines : int array;  (* lines with a pending snapshot *)
  mutable staged_len : int;
  mutable recovery_depth : int;
  mutable validate_depth : int;
  mutable site : string;
  mutable violations : violation list;  (* newest first *)
  mutable recorded : int;
  mutable dropped : int;
  totals : counters;
  by_site : (string, counters) Hashtbl.t;
}

let device t = t.dev
let set_site t s = t.site <- s
let site t = t.site

let site_counters t site =
  match Hashtbl.find_opt t.by_site site with
  | Some c -> c
  | None ->
    let c = counters_create () in
    Hashtbl.add t.by_site site c;
    c

let record t kind ~addr ~len detail =
  (if severity kind = Correctness then begin
     t.totals.correctness <- t.totals.correctness + 1;
     (site_counters t t.site).correctness <-
       (site_counters t t.site).correctness + 1
   end);
  if t.recorded < max_recorded then begin
    t.recorded <- t.recorded + 1;
    t.violations <- { kind; site = t.site; addr; len; detail } :: t.violations
  end
  else t.dropped <- t.dropped + 1

let shadow_get t li = Char.code (Bytes.get t.shadow li)
let shadow_set t li v = Bytes.set t.shadow li (Char.chr v)

let staged_push t li =
  if t.staged_len = Array.length t.staged_lines then begin
    let n = Array.make (2 * t.staged_len) 0 in
    Array.blit t.staged_lines 0 n 0 t.staged_len;
    t.staged_lines <- n
  end;
  t.staged_lines.(t.staged_len) <- li;
  t.staged_len <- t.staged_len + 1

(* --- event handlers ---------------------------------------------------- *)

let on_store t addr len =
  let last = (addr + len - 1) lsr 6 in
  for li = addr lsr 6 to last do
    let b = shadow_get t li in
    let st = b land 7 in
    if st = st_staged then
      (* still in the staged list: the device keeps the old snapshot
         pending, so the line now carries both a stale snapshot and newer
         volatile content *)
      shadow_set t li (st_dirty lor fl_stale)
    else if st <> st_dirty then shadow_set t li st_dirty
  done

let on_clwb t line =
  let li = line lsr 6 in
  t.totals.clwb <- t.totals.clwb + 1;
  let sc = site_counters t t.site in
  sc.clwb <- sc.clwb + 1;
  let b = shadow_get t li in
  let st = b land 7 in
  if st = st_dirty then
    if b land fl_stale <> 0 then
      (* legitimate re-flush of content stored after the last clwb *)
      shadow_set t li st_staged
    else begin
      shadow_set t li st_staged;
      staged_push t li
    end
  else if st = st_staged then begin
    t.totals.clwb_duplicate <- t.totals.clwb_duplicate + 1;
    sc.clwb_duplicate <- sc.clwb_duplicate + 1;
    record t Duplicate_clwb ~addr:line ~len:G.cacheline_size
      "line already staged with identical content"
  end
  else begin
    t.totals.clwb_redundant <- t.totals.clwb_redundant + 1;
    sc.clwb_redundant <- sc.clwb_redundant + 1;
    record t Redundant_clwb ~addr:line ~len:G.cacheline_size
      (Printf.sprintf "clwb of %s line" (state_name st))
  end

let on_sfence t =
  t.totals.sfence <- t.totals.sfence + 1;
  let sc = site_counters t t.site in
  sc.sfence <- sc.sfence + 1;
  if t.staged_len = 0 then begin
    t.totals.sfence_empty <- t.totals.sfence_empty + 1;
    sc.sfence_empty <- sc.sfence_empty + 1;
    record t Empty_sfence ~addr:(-1) ~len:0 "sfence with zero staged lines"
  end
  else begin
    for i = 0 to t.staged_len - 1 do
      let li = t.staged_lines.(i) in
      let b = shadow_get t li in
      let st = b land 7 in
      if st = st_staged then shadow_set t li st_persisted
      else if st = st_dirty && b land fl_stale <> 0 then begin
        record t Stale_fence ~addr:(li lsl 6) ~len:G.cacheline_size
          "stored after clwb and not re-flushed: fence persisted a stale \
           snapshot";
        shadow_set t li st_dirty
      end
    done;
    t.staged_len <- 0
  end

let on_ack t addr len label =
  if len > 0 then begin
    let last = (addr + len - 1) lsr 6 in
    for li = addr lsr 6 to last do
      let st = shadow_get t li land 7 in
      if st = st_dirty || st = st_staged || st = st_indet then
        record t Acked_unpersisted ~addr:(li lsl 6) ~len:G.cacheline_size
          (Printf.sprintf "%s: acked line is %s" label (state_name st))
    done
  end

let on_recovery_load t addr len =
  let last = (addr + len - 1) lsr 6 in
  for li = addr lsr 6 to last do
    let b = shadow_get t li in
    if b land 7 = st_indet && b land fl_reported = 0 then begin
      shadow_set t li (b lor fl_reported);
      record t Recovery_load ~addr:(li lsl 6) ~len:G.cacheline_size
        "recovery read of bytes whose persistence the crash left undecided"
    end
  done

let on_crash t =
  for li = 0 to t.nlines - 1 do
    let b = shadow_get t li in
    let st = b land 7 in
    if st = st_dirty || st = st_staged then shadow_set t li st_indet
  done;
  t.staged_len <- 0

let on_drain t =
  for li = 0 to t.nlines - 1 do
    if shadow_get t li land 7 <> st_clean then shadow_set t li st_persisted
  done;
  t.staged_len <- 0

let on_event t = function
  | D.Store { addr; len } -> if len > 0 then on_store t addr len
  | D.Load { addr; len } ->
    if len > 0 && t.recovery_depth > 0 && t.validate_depth = 0 then
      on_recovery_load t addr len
  | D.Clwb { line } -> on_clwb t line
  | D.Sfence -> on_sfence t
  | D.Crash -> on_crash t
  | D.Drain -> on_drain t
  | D.Recovery_begin -> t.recovery_depth <- t.recovery_depth + 1
  | D.Recovery_end -> t.recovery_depth <- max 0 (t.recovery_depth - 1)
  | D.Acked { addr; len; label } -> on_ack t addr len label
  | D.Validating b ->
    t.validate_depth <- max 0 (t.validate_depth + (if b then 1 else -1))
  | D.Span_begin _ | D.Span_end _ -> ()
  (* protocol-phase markers for trace exporters; no persistency meaning *)
  | D.Xp_write _ | D.Media_write _ -> ()
  (* attribution stream for the WA profiler (Obs.Prof); the shadow model
     already tracks persistence at clwb/sfence granularity *)

(* --- lifecycle --------------------------------------------------------- *)

let attach ?(site = "init") dev =
  if (D.config dev).Pmem.Config.eadr then
    invalid_arg
      "Pmsan.attach: eADR device has no flush discipline to sanitize";
  let nlines = (D.size dev + G.cacheline_size - 1) / G.cacheline_size in
  let t =
    {
      dev;
      nlines;
      shadow = Bytes.make nlines '\000';
      staged_lines = Array.make 256 0;
      staged_len = 0;
      recovery_depth = 0;
      validate_depth = 0;
      site;
      violations = [];
      recorded = 0;
      dropped = 0;
      totals = counters_create ();
      by_site = Hashtbl.create 16;
    }
  in
  D.set_tracer dev (Some (on_event t));
  t

let detach t = D.set_tracer t.dev None

(* --- annotations (for layers above pmsan) ------------------------------ *)

let acked ?(label = "ack") dev ~addr ~len = D.ack_durable dev ~label addr len

let recovering dev f =
  D.recovery_begin dev;
  Fun.protect ~finally:(fun () -> D.recovery_end dev) f

let validating dev f =
  D.validating dev true;
  Fun.protect ~finally:(fun () -> D.validating dev false) f

(* --- results ----------------------------------------------------------- *)

let violations t = List.rev t.violations
let dropped t = t.dropped

let correctness vs = List.filter (fun v -> severity v.kind = Correctness) vs

let drain_violations t =
  let vs = List.rev t.violations in
  t.violations <- [];
  t.recorded <- 0;
  t.dropped <- 0;
  vs

let counters t = t.totals

let by_site t =
  Hashtbl.fold (fun s c acc -> (s, c) :: acc) t.by_site []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let line_state t addr =
  state_name (shadow_get t (addr lsr 6) land 7)

(* --- snapshot / rewind (crash-state model checker integration) --------- *)

(* Shadow-state snapshot: lets Crashmc rewind the sanitizer in lock-step
   with Device.restore.  Counters keep accumulating across rewinds (they
   aggregate the whole sweep); the violation list is cleared so each
   crash point reports only its own findings. *)
type snapshot = {
  s_shadow : Bytes.t;
  s_staged : int array;
  s_recovery : int;
  s_validate : int;
  s_site : string;
}

let snapshot t =
  {
    s_shadow = Bytes.copy t.shadow;
    s_staged = Array.sub t.staged_lines 0 t.staged_len;
    s_recovery = t.recovery_depth;
    s_validate = t.validate_depth;
    s_site = t.site;
  }

let rewind t s =
  if Bytes.length s.s_shadow <> t.nlines then
    invalid_arg "Pmsan.rewind: snapshot from a different device size";
  Bytes.blit s.s_shadow 0 t.shadow 0 t.nlines;
  let n = Array.length s.s_staged in
  if n > Array.length t.staged_lines then
    t.staged_lines <- Array.copy s.s_staged
  else Array.blit s.s_staged 0 t.staged_lines 0 n;
  t.staged_len <- n;
  t.recovery_depth <- s.s_recovery;
  t.validate_depth <- s.s_validate;
  t.site <- s.s_site;
  t.violations <- [];
  t.recorded <- 0;
  t.dropped <- 0

(* --- pretty printing --------------------------------------------------- *)

let pp_violation ppf v =
  if v.addr >= 0 then
    Fmt.pf ppf "[%s] %s @@ 0x%x+%d: %s" v.site (kind_name v.kind) v.addr
      v.len v.detail
  else Fmt.pf ppf "[%s] %s: %s" v.site (kind_name v.kind) v.detail

let pp_counters ppf c =
  Fmt.pf ppf
    "clwb %d (redundant %d, duplicate %d = %.1f%%) sfence %d (empty %d) \
     correctness %d"
    c.clwb c.clwb_redundant c.clwb_duplicate (redundant_flush_pct c) c.sfence
    c.sfence_empty c.correctness

let pp_site_table ppf t =
  Fmt.pf ppf "@[<v>%-14s %8s %9s %9s %8s %7s %5s@," "site" "clwb" "redundant"
    "duplicate" "sfence" "empty" "corr";
  List.iter
    (fun (s, c) ->
      Fmt.pf ppf "%-14s %8d %9d %9d %8d %7d %5d@," s c.clwb c.clwb_redundant
        c.clwb_duplicate c.sfence c.sfence_empty c.correctness)
    (by_site t);
  Fmt.pf ppf "%-14s %8d %9d %9d %8d %7d %5d (redundant flushes: %.1f%%)@]"
    "total" t.totals.clwb t.totals.clwb_redundant t.totals.clwb_duplicate
    t.totals.sfence t.totals.sfence_empty t.totals.correctness
    (redundant_flush_pct t.totals)

(* --- index harness ------------------------------------------------------ *)

(* Randomized op/recover script over any Index_intf implementation, under
   the sanitizer.  Mutating and reading ops run with per-kind site labels;
   after each round the device crashes and (when the index supports it)
   recovery runs inside a Recovery_begin/End bracket; a volatile model
   checks that every acknowledged op survived.  The final round drains the
   device cleanly so end-of-run shadow state is fully persisted. *)

type index_report = {
  index : string;
  ops_run : int;
  recoveries : int;
  totals : counters;
  per_site : (string * counters) list;
  report_violations : violation list;
  report_dropped : int;
  model_errors : string list;
}

let correctness_count r = r.totals.correctness

let check_index ?(ops = 600) ?(seed = 42) ?(key_space = 400) ?(rounds = 3)
    ?(device_mb = 16) ~name ~(create : D.t -> I.driver)
    ?(recover : (D.t -> I.driver) option) () =
  let dev =
    D.create ~config:(Pmem.Config.default ~size:(device_mb * 1024 * 1024) ())
      ()
  in
  let san = attach ~site:"create" dev in
  let drv = ref (create dev) in
  let model = Hashtbl.create 256 in
  let rng = Random.State.make [| seed |] in
  let errors = ref [] in
  let err fmt = Fmt.kstr (fun m -> errors := m :: !errors) fmt in
  let recoveries = ref 0 in
  let per_round = max 1 (ops / max 1 rounds) in
  let ops_run = ref 0 in
  let key () = Int64.of_int (1 + Random.State.int rng key_space) in
  for round = 1 to rounds do
    for i = 1 to per_round do
      incr ops_run;
      let k = key () in
      match Random.State.int rng 10 with
      | 0 | 1 ->
        set_site san "delete";
        !drv.I.delete k;
        Hashtbl.remove model k
      | 2 ->
        set_site san "search";
        let got = !drv.I.search k in
        let want = Hashtbl.find_opt model k in
        if got <> want then
          err "round %d: search %Ld returned %a, model says %a" round k
            Fmt.(option ~none:(any "None") int64)
            got
            Fmt.(option ~none:(any "None") int64)
            want
      | 3 ->
        set_site san "scan";
        ignore (!drv.I.scan ~start:k 10 : (int64 * int64) array)
      | _ ->
        set_site san "upsert";
        let v = Int64.of_int (((round * per_round) + i) * 7) in
        !drv.I.upsert k v;
        Hashtbl.replace model k v
    done;
    match recover with
    | Some recover when round < rounds ->
      set_site san "crash";
      D.crash dev;
      set_site san "recover";
      incr recoveries;
      drv := recovering dev (fun () -> recover dev);
      set_site san "post-recovery";
      Hashtbl.iter
        (fun k v ->
          if !drv.I.search k <> Some v then
            err "round %d: lost acked key %Ld after recovery" round k)
        model
    | _ ->
      set_site san "flush_all";
      !drv.I.flush_all ()
  done;
  set_site san "drain";
  D.drain dev;
  let report =
    {
      index = name;
      ops_run = !ops_run;
      recoveries = !recoveries;
      totals = counters_copy san.totals;
      per_site = List.map (fun (s, c) -> (s, counters_copy c)) (by_site san);
      report_violations = violations san;
      report_dropped = san.dropped;
      model_errors = List.rev !errors;
    }
  in
  detach san;
  report

let pp_index_report ppf r =
  Fmt.pf ppf
    "@[<v>%s: %d ops, %d recoveries@,%a@,violations recorded %d (dropped \
     %d)%a%a@]"
    r.index r.ops_run r.recoveries pp_counters r.totals
    (List.length r.report_violations)
    r.report_dropped
    (fun ppf -> function
      | [] -> ()
      | vs -> Fmt.pf ppf "@,%a" (Fmt.list ~sep:Fmt.cut pp_violation) vs)
    (correctness r.report_violations)
    (fun ppf -> function
      | [] -> ()
      | es ->
        Fmt.pf ppf "@,model errors:@,%a" (Fmt.list ~sep:Fmt.cut Fmt.string) es)
    r.model_errors

(* --- flush budgets ------------------------------------------------------ *)

module Budget = struct
  type ceiling = {
    redundant_pct : float;
    duplicate : int;
    empty_sfence : int;
    corr : int;
  }

  let exact = { redundant_pct = 0.0; duplicate = 0; empty_sfence = 0; corr = 0 }

  let ceiling ?(redundant_pct = 0.0) ?(duplicate = 0) ?(empty_sfence = 0)
      ?(corr = 0) () =
    { redundant_pct; duplicate; empty_sfence; corr }

  let pp_ceiling ppf c =
    Fmt.pf ppf "redundant<=%.1f%% duplicate<=%d empty_sfence<=%d corr<=%d"
      c.redundant_pct c.duplicate c.empty_sfence c.corr

  let of_bindings ~index bindings =
    let get field = List.assoc_opt (index ^ "." ^ field) bindings in
    match
      ( get "redundant_pct",
        get "duplicate",
        get "empty_sfence",
        get "correctness" )
    with
    | None, None, None, None -> None
    | rp, du, es, co ->
      let f v = Option.value ~default:0.0 v in
      let i v = int_of_float (f v) in
      Some
        {
          redundant_pct = f rp;
          duplicate = i du;
          empty_sfence = i es;
          corr = i co;
        }

  let check ceiling c =
    let breaches = ref [] in
    let breach fmt = Fmt.kstr (fun s -> breaches := s :: !breaches) fmt in
    let pct = redundant_flush_pct c in
    if pct > ceiling.redundant_pct +. 1e-9 then
      breach "redundant flush rate %.2f%% exceeds ceiling %.2f%% (%d/%d clwbs)"
        pct ceiling.redundant_pct (redundant_flushes c) c.clwb;
    if c.clwb_duplicate > ceiling.duplicate then
      breach "duplicate clwbs %d exceed ceiling %d" c.clwb_duplicate
        ceiling.duplicate;
    if c.sfence_empty > ceiling.empty_sfence then
      breach "empty sfences %d exceed ceiling %d" c.sfence_empty
        ceiling.empty_sfence;
    if c.correctness > ceiling.corr then
      breach "correctness violations %d exceed ceiling %d" c.correctness
        ceiling.corr;
    match List.rev !breaches with [] -> Ok () | bs -> Error bs
end
