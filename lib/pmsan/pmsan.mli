(** Persistency-ordering sanitizer for the simulated PM device.

    Pmsan consumes the {!Pmem.Device} event hook and shadows every 64 B
    cacheline with the state machine

    {v clean --store--> dirty --clwb--> staged --sfence--> persisted v}

    plus an {e indeterminate} state for lines whose content became
    coin-dependent at a crash.  On top of the per-line machine it reports
    two violation families, each tagged with the callsite label active
    when the event fired:

    - {b correctness}: durability acks covering lines that never completed
      flush+fence ({!Acked_unpersisted}); recovery-phase loads of
      indeterminate bytes outside declared validating regions
      ({!Recovery_load}); fences persisting a stale snapshot because the
      line was re-stored after its [clwb] and never re-flushed
      ({!Stale_fence});
    - {b performance}: [clwb] of a clean/persisted line
      ({!Redundant_clwb}), re-[clwb] of an already-staged line
      ({!Duplicate_clwb}), and fences that order nothing
      ({!Empty_sfence}) — the Bentō class of redundant persistence work.

    Detection is deterministic and exhaustive over the executed trace; it
    does not depend on which crash points a model-checking sweep happens
    to sample. *)

(** {1 Violations} *)

type severity = Correctness | Performance

type kind =
  | Acked_unpersisted
  | Recovery_load
  | Stale_fence
  | Redundant_clwb
  | Duplicate_clwb
  | Empty_sfence

val severity : kind -> severity
val kind_name : kind -> string

type violation = {
  kind : kind;
  site : string;  (** label active when the event fired *)
  addr : int;  (** offending line (range start); [-1] for fence events *)
  len : int;
  detail : string;
}

val pp_violation : Format.formatter -> violation -> unit

(** {1 Counters} *)

type counters = {
  mutable clwb : int;
  mutable clwb_redundant : int;
  mutable clwb_duplicate : int;
  mutable sfence : int;
  mutable sfence_empty : int;
  mutable correctness : int;
}

val counters_create : unit -> counters
val counters_copy : counters -> counters
val counters_add : into:counters -> counters -> unit

val redundant_flushes : counters -> int
(** [clwb_redundant + clwb_duplicate]. *)

val redundant_flush_pct : counters -> float
(** Redundant flushes as a percentage of all flushes (0 when no flushes). *)

val pp_counters : Format.formatter -> counters -> unit

(** {1 Lifecycle} *)

type t

val attach : ?site:string -> Pmem.Device.t -> t
(** Install the sanitizer on a device (replaces any previous tracer).
    The shadow starts all-clean, which matches a freshly created device.
    @raise Invalid_argument on an eADR device — there is no flush
    discipline to sanitize when the whole cache is in the persistence
    domain. *)

val detach : t -> unit
(** Remove the sanitizer's tracer from the device.  Accumulated results
    remain readable. *)

val device : t -> Pmem.Device.t

val set_site : t -> string -> unit
(** Set the callsite label attached to subsequent violations and counter
    attribution (e.g. ["upsert"], ["recover"]). *)

val site : t -> string

(** {1 Annotations}

    Thin wrappers over the {!Pmem.Device} annotation entry points, for
    code layered above [pmsan].  Libraries {e below} it in the dependency
    order (walog, core) call [Device.ack_durable] etc. directly. *)

val acked : ?label:string -> Pmem.Device.t -> addr:int -> len:int -> unit
(** Declare [addr, addr+len) durability-acknowledged; the sanitizer flags
    any covered line that never completed flush+fence. *)

val recovering : Pmem.Device.t -> (unit -> 'a) -> 'a
(** Run a recovery procedure inside a [Recovery_begin]/[Recovery_end]
    bracket (exception-safe). *)

val validating : Pmem.Device.t -> (unit -> 'a) -> 'a
(** Run a validated-read region (loads of possibly-torn data that the
    caller checks, e.g. log-tail scans) inside a [Validating] bracket. *)

(** {1 Results} *)

val violations : t -> violation list
(** Recorded violations, oldest first.  Recording caps at 500; beyond
    that only {!dropped} counts (exact counters keep counting). *)

val dropped : t -> int

val drain_violations : t -> violation list
(** Take and clear the recorded violations (counters are untouched). *)

val correctness : violation list -> violation list
(** Filter to correctness-class violations. *)

val counters : t -> counters
(** Exact totals since [attach] (never capped). *)

val by_site : t -> (string * counters) list
(** Per-site counter breakdown, sorted by site name. *)

val line_state : t -> int -> string
(** Shadow state name of the line containing an address (for tests). *)

val pp_site_table : Format.formatter -> t -> unit

(** {1 Snapshot / rewind}

    {!Pmem.Device.restore} rewinds the device but not the shadow; a
    model-checking sweep ({!Crashmc}) must rewind both in lock-step. *)

type snapshot

val snapshot : t -> snapshot

val rewind : t -> snapshot -> unit
(** Restore the shadow state and clear the recorded-violation list (each
    crash point reports only its own findings); cumulative counters keep
    accumulating across rewinds.  @raise Invalid_argument if the snapshot
    comes from a different device size. *)

(** {1 Index harness} *)

type index_report = {
  index : string;
  ops_run : int;
  recoveries : int;
  totals : counters;
  per_site : (string * counters) list;
  report_violations : violation list;
  report_dropped : int;
  model_errors : string list;
      (** volatile-model divergences: wrong search results, acked keys
          lost across recovery *)
}

val correctness_count : index_report -> int

val check_index :
  ?ops:int ->
  ?seed:int ->
  ?key_space:int ->
  ?rounds:int ->
  ?device_mb:int ->
  name:string ->
  create:(Pmem.Device.t -> Baselines.Index_intf.driver) ->
  ?recover:(Pmem.Device.t -> Baselines.Index_intf.driver) ->
  unit ->
  index_report
(** Run a seeded randomized upsert/delete/search/scan script against an
    index under the sanitizer, in [rounds] rounds.  Between rounds the
    device crashes and, when [recover] is given, the index is rebuilt
    inside a recovery bracket and checked against a volatile model;
    without [recover] the index instead runs [flush_all].  The final
    round ends with a clean {!Pmem.Device.drain}. *)

val pp_index_report : Format.formatter -> index_report -> unit

(** {1 Flush budgets}

    Committed per-index ceilings on flush/fence waste, the pmsan analogue
    of [bench_check]'s latency gate: once an index's redundant-flush rate
    has been driven down, its budget locks the win in CI
    ([scripts/flush_check.sh] reads the ceilings from
    [FLUSH_BUDGET.json]). *)

module Budget : sig
  type ceiling = {
    redundant_pct : float;  (** max redundant flushes, % of all [clwb]s *)
    duplicate : int;  (** max {!Duplicate_clwb} count *)
    empty_sfence : int;  (** max {!Empty_sfence} count *)
    corr : int;  (** max correctness violations (normally 0) *)
  }

  val exact : ceiling
  (** The all-zero ceiling: no waste, no violations. *)

  val ceiling :
    ?redundant_pct:float ->
    ?duplicate:int ->
    ?empty_sfence:int ->
    ?corr:int ->
    unit ->
    ceiling
  (** Ceiling with unspecified fields at zero. *)

  val pp_ceiling : Format.formatter -> ceiling -> unit

  val of_bindings : index:string -> (string * float) list -> ceiling option
  (** Extract the ceiling for [index] from flat [name.field -> number]
      bindings (the shape {!Obs.Json.scan_numbers} yields for
      [FLUSH_BUDGET.json]); recognized fields are [redundant_pct],
      [duplicate], [empty_sfence] and [correctness], each defaulting to
      0.  [None] when no field for [index] is present. *)

  val check : ceiling -> counters -> (unit, string list) result
  (** [Error breaches] when any counter exceeds its ceiling. *)
end
