(** Monotonic logical timestamp source.

    Stands in for the paper's [rdtsc]+ORDO hardware clock (§3.3): ORDO only
    compensates cross-socket skew of the physical TSC, which a single
    logical counter does not exhibit, so ordering guarantees are
    preserved.  Timestamp 0 is reserved as "never written".

    Backed by an [Atomic.t] so concurrent writer lanes can draw
    timestamps without coordination: [next] is a fetch-and-add, giving
    each lane a unique, globally ordered value. *)

type t = int64 Atomic.t

let create ?(start = 1L) () = Atomic.make start

let rec next t =
  let v = Atomic.get t in
  if Atomic.compare_and_set t v (Int64.add v 1L) then v
  else begin
    Domain.cpu_relax ();
    next t
  end

let peek t = Atomic.get t

let rec advance_to t ts =
  let now = Atomic.get t in
  if Int64.unsigned_compare ts now >= 0 then
    if not (Atomic.compare_and_set t now (Int64.add ts 1L)) then advance_to t ts
