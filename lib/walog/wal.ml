module D = Pmem.Device
module G = Pmem.Geometry
module Alloc = Pmalloc.Alloc

let entry_size = 24
let header_size = 32
let magic = 0x57414C4F47314243L (* "WALOG1BC" *)

(* WA-attribution sites (Obs.Prof): [append] and [group_commit] bracket
   their stores/flushes as ["wal-append"], [reclaim_epoch] as
   ["wal-reclaim"], so log traffic separates from leaf/SMO traffic in the
   per-site flame table.  No-ops unless the device has site tracking on. *)
let site_wal_append = Pmem.Site.id "wal-append"
let site_wal_reclaim = Pmem.Site.id "wal-reclaim"

type active = { mutable chunk : int; mutable off : int }
(* chunk = 0 means no chunk acquired yet (address 0 is the allocator
   superblock, never a chunk). *)

(* Epoch-batched group commit: while a group is open, appends store their
   bytes but defer flush/fence/ack to [group_commit], which emits one
   deduplicated clwb set and a single tail fence for the whole batch.
   Straddling entries additionally defer the timestamp *store* itself:
   one fence cannot order key/value before timestamp within an entry, so
   the commit runs two phases — persist every key/value line, fence, then
   store + persist the deferred timestamps, fence.  A crash anywhere
   inside the group therefore leaves torn entries with invalid
   timestamps, which replay rejects; nothing is acked until both phases
   are durable.

   Groups are per lane: concurrent writer threads each batch and commit
   through their own group (and their own device view) without touching
   each other's deferred state.  The legacy single-group API maps to
   lane 0. *)
type group = {
  fs : Pmem.Flushset.t;
  mutable open_ : bool;
  mutable ts_addr : int array;  (* deferred timestamp stores *)
  mutable ts_val : int64 array;
  mutable nts : int;
  mutable ack_addr : int array;  (* per-entry ack ranges, all entry_size *)
  mutable nack : int;
  mutable gdev : D.t;  (* device the commit flushes/acks through *)
  mutable owner : int;
      (* Domain.id of the domain that opened the group: cross-lane
         capture (an append with no group on its own lane falling back to
         lane 0's) is only legal from this domain — see [append] *)
}

type t = {
  alloc : Alloc.t;
  dev : D.t;
  clock : Clock.t;
  threads : int;
  active : active array array;  (* [epoch 0/1].[thread], lane-private *)
  epoch_chunks : int list ref array;  (* chunks assigned to each epoch *)
  free : int Queue.t;
  epoch_data : int Atomic.t array;  (* live log-entry bytes per epoch *)
  peak : int Atomic.t;
  groups : group array;  (* one per lane *)
  chunk_mu : Mutex.t;  (* guards [free] + [epoch_chunks] across lanes *)
}

let create alloc clock ~threads =
  let dev = Alloc.device alloc in
  {
    alloc;
    dev;
    clock;
    threads;
    active =
      Array.init 2 (fun _ ->
          Array.init threads (fun _ -> { chunk = 0; off = 0 }));
    epoch_chunks = [| ref []; ref [] |];
    free = Queue.create ();
    epoch_data = [| Atomic.make 0; Atomic.make 0 |];
    peak = Atomic.make 0;
    groups =
      Array.init threads (fun _ ->
          {
            fs = Pmem.Flushset.create ~capacity:32 ();
            open_ = false;
            ts_addr = Array.make 16 0;
            ts_val = Array.make 16 0L;
            nts = 0;
            ack_addr = Array.make 64 0;
            nack = 0;
            gdev = dev;
            owner = (Domain.self () :> int);
          });
    chunk_mu = Mutex.create ();
  }

let live_bytes t = Atomic.get t.epoch_data.(0) + Atomic.get t.epoch_data.(1)
let peak_live_bytes t = Atomic.get t.peak

let chunk_count t =
  Mutex.protect t.chunk_mu (fun () ->
      List.length !(t.epoch_chunks.(0))
      + List.length !(t.epoch_chunks.(1))
      + Queue.length t.free)

(* Header layout: magic u64, watermark u64, epoch u8, thread u16. *)
let write_header ~dev addr ~watermark ~epoch ~thread =
  D.store_u64 dev addr magic;
  D.store_u64 dev (addr + 8) watermark;
  D.store_u8 dev (addr + 16) epoch;
  D.store_u8 dev (addr + 17) (thread land 0xff);
  D.store_u8 dev (addr + 18) (thread lsr 8);
  D.persist dev addr header_size;
  D.ack_durable dev ~label:"wal.header" addr header_size

(* Acquire a chunk for an append whose timestamp [ts] is already drawn.
   The watermark [ts-1] dominates every previously issued timestamp, so
   stale entries of a recycled chunk can never replay, while all future
   entries of this chunk remain valid.  The free list and epoch lists are
   shared across lanes, so both are touched under [chunk_mu]; the header
   write goes through the acquiring lane's device view. *)
let acquire_chunk t ~dev ~epoch ~thread ~ts =
  let addr =
    Mutex.protect t.chunk_mu (fun () ->
        let addr =
          if Queue.is_empty t.free then Alloc.alloc_chunk t.alloc Alloc.Log
          else Queue.pop t.free
        in
        t.epoch_chunks.(epoch) := addr :: !(t.epoch_chunks.(epoch));
        addr)
  in
  write_header ~dev addr ~watermark:(Int64.pred ts) ~epoch ~thread;
  addr

(* --- group commit ------------------------------------------------------ *)

let grow_int a n = if n = Array.length a then Array.append a (Array.make n 0) else a

let grow_i64 a n =
  if n = Array.length a then Array.append a (Array.make n 0L) else a

let defer_ts g addr ts =
  g.ts_addr <- grow_int g.ts_addr g.nts;
  g.ts_val <- grow_i64 g.ts_val g.nts;
  g.ts_addr.(g.nts) <- addr;
  g.ts_val.(g.nts) <- ts;
  g.nts <- g.nts + 1

let defer_ack g addr =
  g.ack_addr <- grow_int g.ack_addr g.nack;
  g.ack_addr.(g.nack) <- addr;
  g.nack <- g.nack + 1

let group_open ?thread t =
  match thread with
  | Some i -> t.groups.(i).open_
  | None -> Array.exists (fun g -> g.open_) t.groups

let group_begin ?dev ?(thread = 0) t =
  let g = t.groups.(thread) in
  if g.open_ then invalid_arg "Wal.group_begin: group already open";
  g.owner <- (Domain.self () :> int);
  g.gdev <- Option.value dev ~default:t.dev;
  D.span_begin g.gdev "wal.group";
  g.open_ <- true

let group_reset g =
  Pmem.Flushset.reset g.fs;
  g.nts <- 0;
  g.nack <- 0;
  g.open_ <- false

let group_commit ?(thread = 0) t =
  let g = t.groups.(thread) in
  if not g.open_ then invalid_arg "Wal.group_commit: no open group";
  let dev = g.gdev in
  D.site_enter dev site_wal_append;
  (* Phase 1: one deduplicated, address-ordered clwb set over every line
     the batch stored, then the shared tail fence.  Skipped entirely for
     an empty group — no empty sfence. *)
  Pmem.Flushset.commit g.fs dev;
  (* Phase 2 (straddling entries only): the deferred timestamp stores,
     ordered after their key/value lines by the phase-1 fence. *)
  if g.nts > 0 then begin
    for i = 0 to g.nts - 1 do
      D.store_u64 dev g.ts_addr.(i) g.ts_val.(i);
      Pmem.Flushset.touch g.fs g.ts_addr.(i) 8
    done;
    Pmem.Flushset.commit g.fs dev
  end;
  for i = 0 to g.nack - 1 do
    D.ack_durable dev ~label:"wal.group" g.ack_addr.(i) entry_size
  done;
  group_reset g;
  D.site_exit dev;
  D.span_end dev "wal.group"

let with_group ?dev ?(thread = 0) t f =
  group_begin ?dev ~thread t;
  match f () with
  | x ->
    group_commit ~thread t;
    x
  | exception e ->
    (* Abandon the batch: nothing was acked, and any partially stored
       entries present unfenced or missing timestamps, so replay drops
       them. *)
    let g = t.groups.(thread) in
    let gdev = g.gdev in
    group_reset g;
    D.span_end gdev "wal.group";
    raise e

let append ?dev t ~thread ~epoch ~key ~value ~ts =
  assert (thread >= 0 && thread < t.threads && (epoch = 0 || epoch = 1));
  let dev = Option.value dev ~default:t.dev in
  D.site_enter dev site_wal_append;
  let a = t.active.(epoch).(thread) in
  let cs = Alloc.chunk_size t.alloc in
  if a.chunk = 0 || a.off + entry_size > cs then begin
    a.chunk <- acquire_chunk t ~dev ~epoch ~thread ~ts;
    a.off <- header_size
  end;
  let addr = a.chunk + a.off in
  (* An open group on this lane captures the append; otherwise lane 0's
     group does (the legacy single-group behaviour, where e.g. the GC
     batches appends round-robined over all lanes under one group) — but
     only when this append runs on the domain that opened it.  A writer
     lane falling into another domain's group would mutate its
     flushset/defer arrays unsynchronized and have its durability acked
     through the wrong device view, so that is a contract violation
     (owner quiet while lanes append), not a fallback. *)
  let g =
    let gt = t.groups.(thread) in
    if gt.open_ then gt
    else begin
      let g0 = t.groups.(0) in
      if g0.open_ && g0.owner <> (Domain.self () :> int) then begin
        D.site_exit dev;
        invalid_arg
          "Wal.append: lane has no open group and lane 0's group belongs \
           to another domain (cross-lane capture is owner-only)"
      end;
      g0
    end
  in
  if g.open_ then begin
    (* Grouped append: store now, flush/fence/ack at [group_commit]. *)
    D.store_u64 dev addr key;
    D.store_u64 dev (addr + 8) value;
    if G.line_of addr = G.line_of (addr + entry_size - 1) then begin
      (* Single-line entry: a 64 B line persists atomically, so the
         timestamp can ride in the same line with no ordering hazard. *)
      D.store_u64 dev (addr + 16) ts;
      Pmem.Flushset.touch g.fs addr entry_size
    end
    else begin
      (* Straddling entry: the timestamp store itself is deferred to the
         commit's second phase so it can never persist before the
         key/value bytes. *)
      Pmem.Flushset.touch g.fs addr 16;
      defer_ts g (addr + 16) ts
    end;
    defer_ack g addr
  end
  else if G.line_of addr = G.line_of (addr + entry_size - 1) then begin
    (* Entry fits in one cacheline: single flush+fence. *)
    D.store_u64 dev addr key;
    D.store_u64 dev (addr + 8) value;
    D.store_u64 dev (addr + 16) ts;
    D.persist dev addr entry_size;
    D.ack_durable dev ~label:"wal.append" addr entry_size
  end
  else begin
    (* Straddling entry: persist key/value before the timestamp so a torn
       entry always presents an invalid timestamp. *)
    D.store_u64 dev addr key;
    D.store_u64 dev (addr + 8) value;
    D.persist dev addr 16;
    D.store_u64 dev (addr + 16) ts;
    D.persist dev (addr + 16) 8;
    D.ack_durable dev ~label:"wal.append" addr entry_size
  end;
  a.off <- a.off + entry_size;
  D.site_exit dev;
  ignore (Atomic.fetch_and_add t.epoch_data.(epoch) entry_size : int);
  let live = live_bytes t in
  let rec bump () =
    let p = Atomic.get t.peak in
    if live > p && not (Atomic.compare_and_set t.peak p live) then bump ()
  in
  bump ()

let reclaim_epoch t ~epoch =
  if group_open t then invalid_arg "Wal.reclaim_epoch: group still open";
  D.span_begin t.dev "wal.reclaim";
  D.site_enter t.dev site_wal_reclaim;
  let watermark = Clock.peek t.clock in
  Mutex.protect t.chunk_mu (fun () ->
      List.iter
        (fun addr ->
          D.store_u64 t.dev (addr + 8) watermark;
          D.persist t.dev (addr + 8) 8;
          D.ack_durable t.dev ~label:"wal.reclaim" (addr + 8) 8;
          Queue.push addr t.free)
        !(t.epoch_chunks.(epoch));
      t.epoch_chunks.(epoch) := []);
  Atomic.set t.epoch_data.(epoch) 0;
  Array.iter
    (fun a ->
      a.chunk <- 0;
      a.off <- 0)
    t.active.(epoch);
  D.site_exit t.dev;
  D.span_end t.dev "wal.reclaim"

let replay alloc ~f =
  let dev = Alloc.device alloc in
  let cs = Alloc.chunk_size alloc in
  let max_ts = ref 0L in
  (* The tail scan deliberately reads possibly-torn entries and rejects
     them by timestamp; bracket it so sanitizers don't flag those loads. *)
  D.validating dev true;
  Fun.protect ~finally:(fun () -> D.validating dev false) @@ fun () ->
  Alloc.iter_chunks alloc Alloc.Log (fun base ->
      if D.load_u64 dev base = magic then begin
        let watermark = D.load_u64 dev (base + 8) in
        let rec scan off prev =
          if off + entry_size <= cs then begin
            let ts = D.load_u64 dev (base + off + 16) in
            if
              Int64.unsigned_compare ts watermark > 0
              && Int64.unsigned_compare ts prev > 0
            then begin
              let key = D.load_u64 dev (base + off) in
              let value = D.load_u64 dev (base + off + 8) in
              if Int64.unsigned_compare ts !max_ts > 0 then max_ts := ts;
              f ~key ~value ~ts;
              scan (off + entry_size) ts
            end
          end
        in
        scan header_size watermark
      end);
  !max_ts
