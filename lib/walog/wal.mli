(** Per-thread write-ahead logs with B-log / I-log epoch tagging (§3.3–3.4).

    Each thread owns an append-only log made of fixed-size chunks taken
    from the {!Pmalloc.Alloc} chunk allocator (4 MB in the paper, scaled
    here via the allocator's chunk size).  A log entry is 24 B: key,
    value, timestamp — so a 256 B XPLine absorbs ~10.7 sequential entries,
    which is the whole point of logging (the paper's §3.5 cost model).

    Epochs implement locality-aware GC: entries are appended to the log of
    the current global epoch (the B-log); during GC survivors and new
    entries go to the other epoch (the I-log); when the scan finishes the
    B-log's chunks are reclaimed and roles swap.

    Crash safety of the append protocol: an entry that fits in one
    cacheline is persisted with a single flush+fence; an entry straddling
    two cachelines persists key/value first and timestamp second (two
    fences), so a torn entry always presents an invalid timestamp and
    replay stops at the first invalid entry.  Recycled chunks re-persist a
    header whose watermark exceeds every stale timestamp, making leftover
    entries unreadable without zeroing the chunk. *)

type t

val create :
  Pmalloc.Alloc.t -> Clock.t -> threads:int -> t
(** Fresh log set with one (lazy) log per thread and per epoch. *)

val entry_size : int

val append :
  ?dev:Pmem.Device.t ->
  t ->
  thread:int ->
  epoch:int ->
  key:int64 ->
  value:int64 ->
  ts:int64 ->
  unit
(** Persist one log entry; durable when [append] returns — unless a group
    is open on this lane (see {!group_begin}), in which case durability
    and the ack are deferred to {!group_commit}.  [?dev] routes the
    stores/flushes/ack through a writer lane's private
    {!Pmem.Device.write_view} (default: the log's own device); lanes are
    append-private, so concurrent appends from distinct [~thread]s never
    touch the same chunk — only chunk acquisition is shared, and it is
    mutex-guarded internally.  Raises [Invalid_argument] when this lane
    has no open group but lane 0's group is open {e and} was opened by a
    different domain — the owner-only cross-lane capture contract (see
    the group-commit section below). *)

(** {1 Epoch-batched group commit}

    Appends issued between {!group_begin} and {!group_commit} share a
    single deduplicated clwb set and one tail [sfence] instead of paying a
    flush+fence each (the §3.5 XPBuffer coalescing argument applied to
    fences).  Entries that straddle two cachelines defer their timestamp
    {e store} to a second commit phase — fenced after the key/value
    lines — so a crash anywhere inside the group leaves only entries with
    invalid timestamps, which replay rejects.  Nothing is acked durable
    until both phases complete; a crash mid-group therefore loses only
    unacked records.

    Groups are {e per lane}: each WAL thread owns one, so concurrent
    writer lanes batch and commit independently (through their own device
    views) with no shared deferred state.  An append on lane [i] is
    captured by lane [i]'s group when open, otherwise by lane 0's group —
    the legacy behaviour, where a single coordinator (e.g. the GC)
    batches appends round-robined over every lane under one group.

    The cross-lane fallback is {e owner-only}: it applies solely to
    appends issued from the domain that called {!group_begin} on lane 0.
    An append from any other domain while lane 0's group is open (a
    writer lane racing a coordinator batch) raises [Invalid_argument]
    instead of silently mutating the group's deferred state from a
    second domain and acking durability through the wrong device view.
    Equivalently: the owning domain must be quiet (no [with_group]
    batches) while writer lanes append. *)

val group_begin : ?dev:Pmem.Device.t -> ?thread:int -> t -> unit
(** Open lane [?thread]'s group (default 0).  [?dev] sets the device the
    commit will flush/ack through (a writer lane passes its write view).
    Raises [Invalid_argument] if that lane's group is already open. *)

val group_commit : ?thread:int -> t -> unit
(** Flush, fence and ack every append captured by lane [?thread]'s group
    since {!group_begin}.  An empty group emits no fence at all.  Raises
    [Invalid_argument] if that lane has no open group. *)

val with_group : ?dev:Pmem.Device.t -> ?thread:int -> t -> (unit -> 'a) -> 'a
(** [with_group t f] brackets [f] with {!group_begin}/{!group_commit}.
    If [f] raises, the group is abandoned un-acked and the exception is
    re-raised. *)

val group_open : ?thread:int -> t -> bool
(** Whether lane [?thread]'s group is open; without [?thread], whether
    {e any} lane's group is (the {!reclaim_epoch} guard). *)

val live_bytes : t -> int
(** Live log-entry bytes across both epochs (drives the TH_log GC
    trigger). *)

val peak_live_bytes : t -> int
val reclaim_epoch : t -> epoch:int -> unit
(** Recycle every chunk of [epoch] onto the internal free list.  The freed
    chunks' headers are re-stamped so their stale entries can never be
    replayed. *)

val chunk_count : t -> int
(** Chunks held (active + free-listed), for PM space accounting. *)

(** {1 Recovery} *)

val replay :
  Pmalloc.Alloc.t ->
  f:(key:int64 -> value:int64 -> ts:int64 -> unit) ->
  int64
(** Scan every log-tagged chunk on the device and invoke [f] for each valid
    entry (both epochs, any order across chunks; timestamp order within a
    chunk).  Returns the maximum timestamp seen, for clock resynchroni-
    zation.  Static: usable before any {!create}. *)
