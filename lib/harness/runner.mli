(** Experiment runner: builds any of the compared indexes on a fresh
    simulated device, drives an operation stream over it, and prices the
    run with the {!Perfmodel} cost model. *)

type spec =
  | Fastfair
  | Fptree
  | Lbtree
  | Utree
  | Dptree
  | Pactree
  | Flatstore
  | Lsm
  | Ccl of Ccl_btree.Config.t * string

val name : spec -> string
val numa_aware : spec -> bool
val ccl_default : spec

val paper_indexes : spec list
(** The seven indexes of the line figures (Figs 5, 10, 11, 12, 15):
    FPTree, FAST&FAIR, DPTree, uTree, LB+-Tree, PACTree, CCL-BTree. *)

val device :
  ?mb:int -> ?eadr:bool -> ?cache_lines:int -> unit -> Pmem.Device.t
val build : spec -> Pmem.Device.t -> Baselines.Index_intf.driver

type measurement = {
  ops : int;
  delta : Pmem.Stats.t;  (** Device counters over the measured phase. *)
  avg_ns : float;  (** Modeled single-thread ns per op. *)
  wall_ns : float;
      (** Measured host wall-clock ns over the op phase (driver calls
          only, harness bookkeeping excluded); [0.] when the phase was
          not timed. *)
  samples : float array;  (** Per-op modeled ns (subsampled). *)
  numa_aware : bool;
}

val op_cost_ns : Pmem.Stats.t -> float
(** Price one operation's counter delta with {!Perfmodel.Constants}
    (base cost plus hardware events). *)

val events_cost_ns : Pmem.Stats.t -> float
(** Hardware-event cost only; callers amortizing over [n] ops add the
    per-op base cost themselves. *)

val warmup :
  Baselines.Index_intf.driver -> keys:int64 array -> unit

val profile : measurement -> Perfmodel.Thread_model.profile

val mops_modeled : measurement -> threads:int -> float
(** {e Modeled} throughput of the measured op mix at [threads] threads —
    the {!Perfmodel.Thread_model} analytic curve, not an execution.  For
    genuinely parallel measured numbers, see {!make_sharded} and the
    [shard] bench suite. *)

val mops_measured : measurement -> float
(** Measured single-driver throughput: [ops / wall_ns], in Mop/s; [0.]
    when the phase was not timed. *)

val cli_amp : measurement -> float
val xbi_amp : measurement -> float

val make_sharded :
  ?mb:int ->
  ?partition:Shard.partition ->
  ?queue_depth:int ->
  ?batch:int ->
  ?recorder:Obs.Recorder.t ->
  ?profiler:Obs.Prof.t ->
  ?pre_shard:(int -> Pmem.Device.t -> unit) ->
  spec ->
  domains:int ->
  unit ->
  Shard.t
(** A [domains]-shard fleet of the given index spec, each shard on a
    private device of [mb/domains] MB (same aggregate capacity as the
    single-device setup) with the traffic classifier installed.
    [recorder] is forwarded to {!Shard.create} to attach per-worker
    latency histograms, device sampling and trace lanes; [profiler]
    likewise, to attach per-worker {!Obs.Prof} WA-attribution lanes and
    shard-queue residency accounting.  [pre_shard i
    dev] runs on the router domain right after shard [i]'s device is
    created and before its index is built — the hook ycsb uses to
    attach a per-shard sanitizer while the device is still quiescent. *)
