(** Shared plumbing for the paper's experiments. *)

module D = Pmem.Device
module S = Pmem.Stats
module I = Baselines.Index_intf
module Y = Workload.Ycsb
module K = Workload.Keygen

let fresh ?(eadr = false) ?cache_lines spec (scale : Scale.t) =
  (* Under eADR the CPU cache size relative to the dataset governs the
     eviction traffic; keep the paper's cache/dataset proportion (~36 MB
     vs 1.6 GB) at the simulator's scale. *)
  let cache_lines =
    match (cache_lines, eadr) with
    | (Some _, _) -> cache_lines
    | (None, true) ->
      Some (max 256 (scale.Scale.warmup * 2 * 16 / 44 / 64))
    | (None, false) -> None
  in
  let dev = Runner.device ~mb:scale.Scale.device_mb ~eadr ?cache_lines () in
  let drv = Runner.build spec dev in
  (dev, drv)

(* Build the index and load [warmup] keys in random order, with the
   device classifier installed for traffic attribution. *)
let warmed ?eadr ?cache_lines ?(warmup_factor = 1.0) spec (scale : Scale.t) =
  let dev, drv = fresh ?eadr ?cache_lines spec scale in
  D.set_classifier dev
    (Some (Pmalloc.Alloc.classify (drv.I.allocator ())));
  let n =
    int_of_float (float_of_int scale.Scale.warmup *. warmup_factor)
  in
  Runner.warmup drv ~keys:(K.shuffled_range ~seed:1 n);
  (dev, drv)

(* --- op stream builders ------------------------------------------------ *)

let v i = Int64.of_int (i + 1)

(* Fresh keys beyond the warmed range, inserted in random order. *)
let inserts_fresh (scale : Scale.t) =
  let keys = K.shuffled_range ~seed:2 scale.Scale.ops in
  Array.mapi
    (fun i k ->
      Y.Insert (Int64.add k (Int64.of_int scale.Scale.warmup), v i))
    keys

(* Upserts drawn from a key generator (covers both updates and inserts,
   as in the paper's warm-then-upsert protocol). *)
let upserts gen n = Array.init n (fun i -> Y.Insert (K.next gen, v i))

let updates (scale : Scale.t) =
  upserts (K.uniform ~seed:3 ~space:scale.Scale.warmup) scale.Scale.ops

(* Deletes of distinct existing keys (tombstone convention: value 0 is
   produced by the driver's delete; here we upsert value 0 via Insert —
   the runner maps Insert with value 0 to delete). *)
let deletes (scale : Scale.t) =
  let n = min scale.Scale.ops scale.Scale.warmup in
  let keys = K.shuffled_range ~seed:4 scale.Scale.warmup in
  Array.init n (fun i -> Y.Insert (keys.(i), 0L))

let searches (scale : Scale.t) =
  let gen = K.uniform ~seed:5 ~space:scale.Scale.warmup in
  Array.init scale.Scale.ops (fun _ -> Y.Read (K.next gen))

let scans ?(len = 100) (scale : Scale.t) =
  let gen = K.uniform ~seed:6 ~space:scale.Scale.warmup in
  let n = max 1 (scale.Scale.ops / 50) in
  Array.init n (fun _ -> Y.Scan (K.next gen, len))

(* --- measurement ------------------------------------------------------- *)

let run_ops ?obs dev (drv : I.driver) spec ops =
  (* Insert with value 0 encodes a delete (tombstone convention). *)
  let mapped =
    Array.map
      (function
        | Y.Insert (k, z) when Int64.equal z 0L -> `Del k
        | op -> `Op op)
      ops
  in
  let before = D.snapshot dev in
  let samples = ref [] in
  (* wall time of the driver calls alone, so the measured column is not
     polluted by the per-op snapshot/pricing bookkeeping around them *)
  let wall_ns = ref 0L in
  Array.iter
    (fun op ->
      let snap = D.snapshot dev in
      let t0 = Shard.Clock.monotonic_ns () in
      (match op with
      | `Del k -> drv.I.delete k
      | `Op (Y.Insert (k, value)) -> drv.I.upsert k value
      | `Op (Y.Read k) -> ignore (drv.I.search k)
      | `Op (Y.Scan (k, len)) -> ignore (drv.I.scan ~start:k len));
      let t1 = Shard.Clock.monotonic_ns () in
      wall_ns := Int64.add !wall_ns (Int64.sub t1 t0);
      (match obs with
      | Some w ->
        let kind =
          match op with
          | `Del _ -> "delete"
          | `Op (Y.Insert _) -> "upsert"
          | `Op (Y.Read _) -> "search"
          | `Op (Y.Scan _) -> "scan"
        in
        Obs.Recorder.record w ~kind ~t0 ~t1
      | None -> ());
      samples :=
        Runner.op_cost_ns (S.diff ~after:(D.snapshot dev) ~before:snap)
        :: !samples)
    mapped;
  let delta = S.diff ~after:(D.snapshot dev) ~before in
  let n = max 1 (Array.length ops) in
  {
    Runner.ops = Array.length ops;
    delta;
    avg_ns =
      Perfmodel.Constants.base_op_ns
      +. (Runner.events_cost_ns delta /. float_of_int n);
    wall_ns = Int64.to_float !wall_ns;
    samples = Array.of_list (List.rev !samples);
    numa_aware = Runner.numa_aware spec;
  }

(* run a phase and settle the device so media counters are final *)
let measure_settled dev (drv : I.driver) spec ops =
  let before = D.snapshot dev in
  let m = run_ops dev drv spec ops in
  drv.I.flush_all ();
  D.drain dev;
  let delta = S.diff ~after:(D.snapshot dev) ~before in
  { m with Runner.delta }

let mops_modeled_at m ~threads = Runner.mops_modeled m ~threads
