module D = Pmem.Device
module S = Pmem.Stats
module I = Baselines.Index_intf
module C = Perfmodel.Constants

type spec =
  | Fastfair
  | Fptree
  | Lbtree
  | Utree
  | Dptree
  | Pactree
  | Flatstore
  | Lsm
  | Ccl of Ccl_btree.Config.t * string

let name = function
  | Fastfair -> Baselines.Fastfair.name
  | Fptree -> Baselines.Fptree.name
  | Lbtree -> Baselines.Lbtree.name
  | Utree -> Baselines.Utree.name
  | Dptree -> Baselines.Dptree.name
  | Pactree -> Baselines.Pactree.name
  | Flatstore -> Baselines.Flatstore.name
  | Lsm -> Baselines.Lsm.name
  | Ccl (_, n) -> n

(* CCL-BTree (buffering + per-thread local logs + DRAM-only GC scans) and
   PACTree (PAC guidelines) are the NUMA-aware designs (§4.4 Opt. #1). *)
let numa_aware = function
  | Ccl _ | Pactree -> true
  | Fastfair | Fptree | Lbtree | Utree | Dptree | Flatstore | Lsm -> false

let ccl_default = Ccl (Ccl_btree.Config.default, "CCL-BTree")

let paper_indexes =
  [ Fptree; Fastfair; Dptree; Utree; Lbtree; Pactree; ccl_default ]

let device ?(mb = 96) ?(eadr = false) ?cache_lines () =
  let base = Pmem.Config.default ~size:(mb * 1024 * 1024) () in
  let cpu_cache_lines =
    match cache_lines with Some n -> n | None -> base.Pmem.Config.cpu_cache_lines
  in
  D.create ~config:{ base with eadr; cpu_cache_lines } ()

let build spec dev =
  match spec with
  | Fastfair -> I.driver (module Baselines.Fastfair) (Baselines.Fastfair.create dev)
  | Fptree -> I.driver (module Baselines.Fptree) (Baselines.Fptree.create dev)
  | Lbtree -> I.driver (module Baselines.Lbtree) (Baselines.Lbtree.create dev)
  | Utree -> I.driver (module Baselines.Utree) (Baselines.Utree.create dev)
  | Dptree -> I.driver (module Baselines.Dptree) (Baselines.Dptree.create dev)
  | Pactree -> I.driver (module Baselines.Pactree) (Baselines.Pactree.create dev)
  | Flatstore ->
    I.driver (module Baselines.Flatstore) (Baselines.Flatstore.create dev)
  | Lsm -> I.driver (module Baselines.Lsm) (Baselines.Lsm.create dev)
  | Ccl (cfg, name) -> Baselines.Ccl_index.driver_with ~name cfg dev

type measurement = {
  ops : int;
  delta : S.t;
  avg_ns : float;
  wall_ns : float;
  samples : float array;
  numa_aware : bool;
}

(* Price the hardware events of a counter delta (no per-op base cost). *)
let events_cost_ns (d : S.t) =
  float_of_int d.S.media_read_lines *. C.pm_read_ns
  +. (float_of_int d.S.clwb_count *. C.clwb_ns)
  +. (float_of_int d.S.sfence_count *. C.sfence_ns)

(* Full cost of one operation's delta. *)
let op_cost_ns d = C.base_op_ns +. events_cost_ns d

let warmup (driver : I.driver) ~keys =
  Array.iteri (fun i k -> driver.I.upsert k (Int64.of_int (i + 1))) keys

let profile m =
  let n = float_of_int (max 1 m.ops) in
  {
    Perfmodel.Thread_model.t_cpu_ns = m.avg_ns;
    write_bytes = float_of_int m.delta.S.media_write_bytes /. n;
    read_bytes = float_of_int m.delta.S.media_read_bytes /. n;
    numa_aware = m.numa_aware;
  }

let mops_modeled m ~threads =
  Perfmodel.Thread_model.mops ~threads (profile m)

let mops_measured m =
  if m.wall_ns <= 0.0 then 0.0
  else float_of_int m.ops *. 1e3 /. m.wall_ns

let cli_amp m = S.cli_amplification m.delta
let xbi_amp m = S.xbi_amplification m.delta

(* --- sharded (measured) execution --------------------------------------- *)

let make_sharded ?(mb = 96) ?partition ?(queue_depth = 64) ?(batch = 256)
    ?recorder ?profiler ?pre_shard spec ~domains () =
  let partition =
    match partition with Some p -> p | None -> Shard.default_config.partition
  in
  (* each shard gets its proportional slice of the device budget, so an
     N-shard fleet and a single tree cover the same total PM capacity *)
  let shard_mb = max 16 (mb / max 1 domains) in
  Shard.create
    ~config:{ Shard.shards = domains; partition; queue_depth; batch }
    ?recorder ?profiler
    ~make:(fun i ->
      let dev = device ~mb:shard_mb () in
      (match pre_shard with Some f -> f i dev | None -> ());
      let drv = build spec dev in
      D.set_classifier dev
        (Some (Pmalloc.Alloc.classify (drv.Baselines.Index_intf.allocator ())));
      (dev, drv))
    ()
