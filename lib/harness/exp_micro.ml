(** Figures 10, 5 and 12: micro-benchmark throughput, range queries and
    latency percentiles across the seven tree indexes. *)

module K = Workload.Keygen
module Y = Workload.Ycsb

let thread_header threads =
  "index" :: List.map (fun t -> Printf.sprintf "%dt" t) threads

(* one measured run per index, throughput modeled per thread count *)
let sweep ~mk (scale : Scale.t) specs =
  List.map
    (fun spec ->
      let dev, drv = Exp_common.warmed spec scale in
      let m = Exp_common.run_ops dev drv spec (mk scale) in
      ( spec,
        m,
        List.map (fun threads -> Runner.mops_modeled m ~threads) scale.Scale.threads ))
    specs

let print_sweep ~title ~mk scale =
  Report.section title;
  let results = sweep ~mk scale Runner.paper_indexes in
  let rows =
    List.map
      (fun (spec, _, tputs) ->
        Runner.name spec :: List.map Report.mops tputs)
      results
  in
  Report.table ~header:(thread_header scale.Scale.threads) rows;
  results

let run_fig10 (scale : Scale.t) =
  ignore
    (print_sweep
       ~title:"Fig 10(a): Insert throughput vs threads (Mop/s)"
       ~mk:Exp_common.inserts_fresh scale);
  ignore
    (print_sweep
       ~title:"Fig 10(b): Update throughput vs threads (Mop/s)"
       ~mk:Exp_common.updates scale);
  ignore
    (print_sweep
       ~title:"Fig 10(c): Delete throughput vs threads (Mop/s)"
       ~mk:Exp_common.deletes scale);
  ignore
    (print_sweep
       ~title:"Fig 10(d): Search throughput vs threads (Mop/s)"
       ~mk:Exp_common.searches scale);
  ignore
    (print_sweep
       ~title:"Fig 10(e): Scan throughput vs threads (Mop/s)"
       ~mk:(Exp_common.scans ~len:scale.Scale.scan_len)
       scale);
  Report.note
    "paper: CCL-BTree scales to 96 threads (insert 1.97x-9.35x over \
     others); scan within ~10% of LB+-Tree; uTree worst scan"

(* --- Fig 5: range query vs scan size ----------------------------------- *)

let run_fig5 (scale : Scale.t) =
  Report.section "Fig 5: range query throughput vs #KVs (48 threads, Mop/s)";
  let sizes = [ 50; 100; 200; 400 ] in
  let specs = Runner.paper_indexes @ [ Runner.Flatstore ] in
  let rows =
    List.map
      (fun spec ->
        let dev, drv = Exp_common.warmed spec scale in
        Runner.name spec
        :: List.map
             (fun len ->
               let m =
                 Exp_common.run_ops dev drv spec (Exp_common.scans ~len scale)
               in
               Report.mops (Runner.mops_modeled m ~threads:48))
             sizes)
      specs
  in
  Report.table
    ~header:("index" :: List.map (fun s -> Printf.sprintf "%d KVs" s) sizes)
    rows;
  Report.note
    "paper: FlatStore up to 5.59x slower than the B+-trees at 400 KVs"

(* --- Fig 12: latency percentiles ---------------------------------------- *)

let run_fig12 (scale : Scale.t) =
  (* GC runs on a background thread in the paper; keep its work off the
     sampled foreground latencies *)
  let specs =
    List.map
      (function
        | Runner.Ccl (cfg, name) ->
          Runner.Ccl
            ({ cfg with Ccl_btree.Config.th_log = 1e12 }, name)
        | spec -> spec)
      Runner.paper_indexes
  in
  let print_latency ~title ~mk =
    Report.section title;
    let results = sweep ~mk scale specs in
    let rows =
      List.map
        (fun (spec, m, _) ->
          let profile = Runner.profile m in
          let u =
            Perfmodel.Thread_model.utilization ~threads:48 profile
          in
          let rate =
            Perfmodel.Thread_model.bottleneck_rate ~threads:48 profile
          in
          let ps =
            Perfmodel.Latency.percentiles ~utilization:u ~service_rate:rate
              m.Runner.samples
          in
          Runner.name spec
          :: List.map (fun ns -> Report.f2 (ns /. 1000.0)) ps)
        results
    in
    Report.table ~header:("index" :: Perfmodel.Latency.point_names) rows
  in
  print_latency
    ~title:"Fig 12(a): Insert latency percentiles at 48 threads (us)"
    ~mk:Exp_common.inserts_fresh;
  print_latency
    ~title:"Fig 12(b): Search latency percentiles at 48 threads (us)"
    ~mk:Exp_common.searches;
  Report.note
    "paper: CCL-BTree 1.37x-6.83x lower 99.9th insert latency; DPTree's \
     merge stalls blow up its tail; CCL searches fastest below the 20th \
     percentile (buffer-node hits)"

let run scale =
  run_fig10 scale;
  run_fig5 scale;
  run_fig12 scale
