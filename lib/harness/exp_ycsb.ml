(** Figure 11: the five YCSB mixes versus thread count. *)

module Y = Workload.Ycsb

let run (scale : Scale.t) =
  List.iter
    (fun mix ->
      Report.section
        (Printf.sprintf
           "Fig 11 (%s): measured 1-thread vs modeled thread scaling (Mop/s)"
           (Y.mix_name mix));
      let rows =
        List.map
          (fun spec ->
            let dev, drv = Exp_common.warmed spec scale in
            let ops =
              Y.generate mix ~seed:21 ~space:(2 * scale.Scale.warmup)
                ~scan_len:scale.Scale.scan_len scale.Scale.ops
            in
            let m = Exp_common.run_ops dev drv spec ops in
            (Runner.name spec :: [ Report.mops (Runner.mops_measured m) ])
            @ List.map
                (fun threads ->
                  Report.mops (Runner.mops_modeled m ~threads))
                scale.Scale.threads)
          Runner.paper_indexes
      in
      Report.table
        ~header:
          (("index" :: [ "meas 1t" ])
          @ List.map
              (fun t -> Printf.sprintf "model %dt" t)
              scale.Scale.threads)
        rows)
    Y.all_mixes;
  Report.note
    "paper: CCL-BTree at least 1.67x better on insert-heavy mixes at 96 \
     threads and best or tied on read-only / scan-insert"
