(** Figures 3, 4 and 13: write-amplification anatomy.

    Figs 3/4 warm each index and then upsert under uniform / Zipfian(0.9)
    key distributions, reporting CLI-amplification, XBI-amplification and
    the modeled 48-thread execution time.  Fig 13 is the ablation study:
    Base (write-through) / +BNode (buffering, naive logging) / +WLog
    (write-conservative logging), with the XBI split between leaf-node
    and WAL traffic via the device's write classifier. *)

module S = Pmem.Stats
module I = Baselines.Index_intf
module K = Workload.Keygen
module Y = Workload.Ycsb

let specs =
  [
    Runner.Fptree;
    Runner.Fastfair;
    Runner.Dptree;
    Runner.Utree;
    Runner.Lbtree;
    Runner.Pactree;
    Runner.Flatstore;
    Runner.ccl_default;
  ]

let run_distribution ~keygen (scale : Scale.t) =
  List.map
    (fun spec ->
      let dev, drv = Exp_common.warmed spec scale in
      let gen = keygen () in
      let ops = Exp_common.upserts gen scale.Scale.ops in
      let m = Exp_common.measure_settled dev drv spec ops in
      let mops = Runner.mops_modeled m ~threads:48 in
      (* execution time normalized to the paper's 50M-op run *)
      let time = 50.0 /. mops in
      [
        Runner.name spec;
        Report.f2 (Runner.cli_amp m);
        Report.f2 (Runner.xbi_amp m);
        Report.mops mops;
        Report.f2 time;
      ])
    specs

let header =
  [ "index"; "CLI-amp"; "XBI-amp"; "Mop/s@48t"; "time/50M ops (s)" ]

let run_fig3 (scale : Scale.t) =
  Report.section "Fig 3: write amplification and execution time (uniform)";
  let keygen () = K.uniform ~seed:9 ~space:(2 * scale.Scale.warmup) in
  Report.table ~header (run_distribution ~keygen scale);
  Report.note
    "paper: B+-tree variants average XBI ~37; CCL-BTree reduces it to \
     ~10; FlatStore lowest (log-structured)"

let run_fig4 (scale : Scale.t) =
  Report.section "Fig 4: write amplification and execution time (Zipfian 0.9)";
  let keygen () =
    K.zipfian ~seed:9 ~space:(2 * scale.Scale.warmup) ~theta:0.9
  in
  Report.table ~header (run_distribution ~keygen scale);
  Report.note
    "paper: skew lowers everyone's XBI (hot lines coalesce); CCL-BTree \
     ~3.7 vs ~12.4 average"

(* --- Fig 13: ablation --------------------------------------------------- *)

let ablations =
  [
    Runner.Ccl (Baselines.Ccl_index.base_cfg, "Base");
    Runner.Ccl (Baselines.Ccl_index.bnode_cfg, "+BNode");
    Runner.Ccl (Baselines.Ccl_index.wlog_cfg, "+WLog");
  ]

let run_fig13 (scale : Scale.t) =
  Report.section "Fig 13(a): throughput of each optimization (48 threads, Mop/s)";
  let phases =
    [
      ("Insert", fun s -> Exp_common.inserts_fresh s);
      ("Update", fun s -> Exp_common.updates s);
      ("Delete", fun s -> Exp_common.deletes s);
      ("Search", fun s -> Exp_common.searches s);
      ("Scan", fun s -> Exp_common.scans ~len:scale.Scale.scan_len s);
    ]
  in
  let results =
    List.map
      (fun spec ->
        ( spec,
          List.map
            (fun (_, mk) ->
              let dev, drv = Exp_common.warmed spec scale in
              let m = Exp_common.run_ops dev drv spec (mk scale) in
              Runner.mops_modeled m ~threads:48)
            phases ))
      ablations
  in
  let header = "op" :: List.map (fun (s, _) -> Runner.name s) results in
  let rows =
    List.mapi
      (fun pi (pname, _) ->
        pname
        :: List.map (fun (_, ms) -> Report.mops (List.nth ms pi)) results)
      phases
  in
  Report.table ~header rows;
  Report.section "Fig 13(b): XBI-amplification split (insert workload)";
  let rows =
    List.map
      (fun spec ->
        let dev, drv = Exp_common.warmed spec scale in
        let gen = K.uniform ~seed:9 ~space:(2 * scale.Scale.warmup) in
        let ops = Exp_common.upserts gen scale.Scale.ops in
        let m = Exp_common.measure_settled dev drv spec ops in
        let user = max 1 m.Runner.delta.S.user_bytes in
        let by c =
          float_of_int m.Runner.delta.S.media_write_bytes_by_class.(c)
          /. float_of_int user
        in
        [
          Runner.name spec;
          Report.f2 (by 1 +. by 3) (* leaf + extent *);
          Report.f2 (by 2) (* WAL *);
          Report.f2 (Runner.xbi_amp m);
        ])
      ablations
  in
  Report.table ~header:[ "variant"; "XBI leaf"; "XBI WAL"; "XBI total" ] rows;
  Report.note
    "paper: +BNode cuts leaf XBI by ~64% over Base; +WLog cuts WAL XBI a \
     further ~26%; total reduction ~44%"

let run scale =
  run_fig3 scale;
  run_fig4 scale;
  run_fig13 scale
