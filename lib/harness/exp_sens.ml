(** Figure 15 (skew, variable-size KVs, large values, dataset size),
    Figure 16 (eADR), Figure 17 (recovery), Figure 18 (memory), Figure 19
    (realistic datasets) and Table 3 (log-structured comparison). *)

module D = Pmem.Device
module S = Pmem.Stats
module I = Baselines.Index_intf
module T = Ccl_btree.Tree
module K = Workload.Keygen
module Y = Workload.Ycsb

(* --- Fig 15(a): skew sweep ---------------------------------------------- *)

(* LB+-Tree serializes writers with HTM; under high skew transaction
   aborts cascade (paper: "highly skewed workload incurs frequent HTM
   transaction aborts").  The simulator has no HTM, so the abort cost is
   modeled: beyond theta = 0.9 the hottest keys conflict on nearly every
   write at 48 threads. *)
let htm_abort_factor ~theta ~threads =
  if theta < 0.9 then 1.0
  else begin
    let contention = (theta -. 0.85) *. float_of_int threads /. 48.0 in
    Float.max 0.2 (1.0 -. (2.5 *. contention))
  end

let run_fig15a (scale : Scale.t) =
  Report.section
    "Fig 15(a): 50% lookup / 50% upsert vs Zipfian coefficient (48t, modeled Mop/s)";
  let thetas = [ 0.5; 0.6; 0.7; 0.8; 0.9; 0.99 ] in
  let rows =
    List.map
      (fun spec ->
        let dev, drv = Exp_common.warmed spec scale in
        Runner.name spec
        :: List.map
             (fun theta ->
               let gen =
                 K.zipfian ~seed:31 ~space:scale.Scale.warmup ~theta
               in
               let rng = Random.State.make [| 32 |] in
               let ops =
                 Array.init scale.Scale.ops (fun i ->
                     if Random.State.bool rng then Y.Read (K.next gen)
                     else Y.Insert (K.next gen, Int64.of_int (i + 1)))
               in
               let m = Exp_common.run_ops dev drv spec ops in
               let tput = Runner.mops_modeled m ~threads:48 in
               let tput =
                 match spec with
                 | Runner.Lbtree -> tput *. htm_abort_factor ~theta ~threads:48
                 | _ -> tput
               in
               Report.mops tput)
             thetas)
      Runner.paper_indexes
  in
  Report.table
    ~header:("index" :: List.map (Printf.sprintf "θ=%.2f") thetas)
    rows;
  Report.note
    "paper: CCL-BTree best everywhere and increasingly so with skew \
     (buffer-node hits); LB+-Tree collapses at 0.99 (HTM aborts, modeled \
     here)"

(* --- variable-size KV machinery ----------------------------------------- *)

(* Out-of-band storage shared by all indexes: values (and keys) larger
   than 8 B go to a sequential extent heap through an 8 B indirection
   word, as in the paper's Optimization #3. *)
let var_upsert dev extent (drv : I.driver) key value =
  if String.length key > 8 then begin
    (* store the long key out of band too (pointer-chasing traffic) *)
    let addr = Pmalloc.Extent.alloc extent (String.length key + 4) in
    D.store_u64 dev addr (Int64.of_int (String.length key));
    D.store_string dev (addr + 4) key;
    D.persist dev addr (String.length key + 4)
  end;
  let k = Ccl_btree.Indirect.encode_key key in
  let v = Ccl_btree.Indirect.encode_value dev extent value in
  D.add_user_bytes dev (String.length key + String.length value - 16);
  drv.I.upsert k v

let rand_string rng lo hi =
  let len = lo + Random.State.int rng (hi - lo + 1) in
  String.init len (fun _ -> Char.chr (33 + Random.State.int rng 90))

let run_fig15b (scale : Scale.t) =
  Report.section
    "Fig 15(b): variable-size KVs (8-128 B) insert throughput (modeled Mop/s)";
  (* the paper could not run DPTree and PACTree in this test *)
  let specs =
    [
      Runner.Fptree;
      Runner.Fastfair;
      Runner.Utree;
      Runner.Lbtree;
      Runner.ccl_default;
    ]
  in
  let rows =
    List.map
      (fun spec ->
        let dev, drv = Exp_common.warmed spec scale in
        let extent = Pmalloc.Extent.create (drv.I.allocator ()) in
        let rng = Random.State.make [| 41 |] in
        let before = D.snapshot dev in
        for _ = 1 to scale.Scale.ops do
          var_upsert dev extent drv (rand_string rng 8 128)
            (rand_string rng 8 128)
        done;
        let delta = S.diff ~after:(D.snapshot dev) ~before in
        let profile =
          {
            Perfmodel.Thread_model.t_cpu_ns =
              (Perfmodel.Constants.base_op_ns
              +. (Runner.events_cost_ns delta /. float_of_int scale.Scale.ops))
              +. 100.0 (* string comparison / pointer chasing *);
            write_bytes =
              float_of_int delta.S.media_write_bytes
              /. float_of_int scale.Scale.ops;
            read_bytes =
              float_of_int delta.S.media_read_bytes
              /. float_of_int scale.Scale.ops;
            numa_aware = Runner.numa_aware spec;
          }
        in
        Runner.name spec
        :: List.map
             (fun threads ->
               Report.mops (Perfmodel.Thread_model.mops ~threads profile))
             scale.Scale.threads)
      specs
  in
  Report.table
    ~header:
      ("index"
      :: List.map (fun t -> Printf.sprintf "%dt" t) scale.Scale.threads)
    rows;
  Report.note "paper: CCL-BTree up to 2.47x over the others"

let run_fig15c (scale : Scale.t) =
  Report.section "Fig 15(c): large values, 96 threads (modeled Mop/s)";
  let sizes = [ 64; 128; 256; 512 ] in
  let rows =
    List.map
      (fun spec ->
        Runner.name spec
        :: List.map
             (fun vsize ->
               let dev, drv = Exp_common.warmed spec scale in
               let extent = Pmalloc.Extent.create (drv.I.allocator ()) in
               let rng = Random.State.make [| 43 |] in
               let before = D.snapshot dev in
               for i = 1 to scale.Scale.ops do
                 let key = Printf.sprintf "%08d" i in
                 var_upsert dev extent drv key (rand_string rng vsize vsize)
               done;
               let delta = S.diff ~after:(D.snapshot dev) ~before in
               let n = float_of_int scale.Scale.ops in
               let profile =
                 {
                   Perfmodel.Thread_model.t_cpu_ns =
                     Perfmodel.Constants.base_op_ns +. (Runner.events_cost_ns delta /. n);
                   write_bytes = float_of_int delta.S.media_write_bytes /. n;
                   read_bytes = float_of_int delta.S.media_read_bytes /. n;
                   numa_aware = Runner.numa_aware spec;
                 }
               in
               Report.mops (Perfmodel.Thread_model.mops ~threads:96 profile))
             sizes)
      Runner.paper_indexes
  in
  Report.table
    ~header:("index" :: List.map (fun s -> Printf.sprintf "%dB" s) sizes)
    rows;
  Report.note
    "paper: the gap narrows as values grow (XBI dilutes) but CCL-BTree \
     still 1.2x-3.5x ahead at 512 B"

let run_fig15d (scale : Scale.t) =
  Report.section "Fig 15(d): dataset-size sweep, insert at 96 threads (modeled Mop/s)";
  let factors = [ (1.0, "1x"); (2.0, "2x"); (5.0, "5x"); (10.0, "10x") ] in
  let rows =
    List.map
      (fun spec ->
        Runner.name spec
        :: List.map
             (fun (f, _) ->
               let dev, drv =
                 Exp_common.warmed ~warmup_factor:f spec scale
               in
               let m =
                 Exp_common.run_ops dev drv spec
                   (Array.map
                      (fun op ->
                        match op with
                        | Y.Insert (k, value) ->
                          Y.Insert
                            ( Int64.add k
                                (Int64.of_int
                                   (int_of_float
                                      (f *. float_of_int scale.Scale.warmup))),
                              value )
                        | op -> op)
                      (Exp_common.inserts_fresh scale))
               in
               Report.mops (Runner.mops_modeled m ~threads:96))
             factors)
      Runner.paper_indexes
  in
  Report.table ~header:("index" :: List.map snd factors) rows;
  Report.note
    "paper: CCL-BTree stays ~flat (~40 Mop/s) as the dataset grows and \
     leads by at least 1.83x at the largest size"

(* --- Fig 16: eADR ------------------------------------------------------- *)

let run_fig16 (scale : Scale.t) =
  Report.section "Fig 16: insert throughput in eADR mode (modeled Mop/s)";
  let rows =
    List.map
      (fun spec ->
        let dev, drv = Exp_common.warmed ~eadr:true spec scale in
        let m =
          Exp_common.measure_settled dev drv spec
            (Exp_common.inserts_fresh scale)
        in
        Runner.name spec
        :: List.map
             (fun threads -> Report.mops (Runner.mops_modeled m ~threads))
             scale.Scale.threads)
      Runner.paper_indexes
  in
  Report.table
    ~header:
      ("index"
      :: List.map (fun t -> Printf.sprintf "%dt" t) scale.Scale.threads)
    rows;
  Report.note
    "paper: CCL-BTree still 1.78x-6.07x ahead at 96 threads; XPLine \
     locality pays even without explicit flushes"

(* --- Fig 17: recovery ---------------------------------------------------- *)

let run_fig17 (scale : Scale.t) =
  Report.section "Fig 17: recovery time vs dataset size";
  let rows =
    List.map
      (fun (f, label) ->
        let dev = Runner.device ~mb:scale.Scale.device_mb () in
        let t = T.create dev in
        let n = int_of_float (f *. float_of_int scale.Scale.warmup) in
        Array.iter (fun k -> T.upsert t k 1L) (K.shuffled_range ~seed:1 n);
        D.crash dev;
        let before = D.snapshot dev in
        let t2 = T.recover dev in
        ignore t2;
        let delta = S.diff ~after:(D.snapshot dev) ~before in
        let total_ns =
          float_of_int delta.S.media_read_lines *. Perfmodel.Constants.pm_read_ns
          +. float_of_int delta.S.clwb_count *. Perfmodel.Constants.clwb_ns
          +. (float_of_int n *. 50.0 (* DRAM rebuild work per entry *))
        in
        let ms threads = total_ns /. 1e6 /. float_of_int threads in
        [ label; Report.f2 (ms 24); Report.f2 (ms 48) ])
      [ (0.5, "0.5x"); (1.0, "1x"); (2.0, "2x"); (5.0, "5x") ]
  in
  Report.table ~header:[ "dataset"; "24 threads (ms)"; "48 threads (ms)" ] rows;
  Report.note
    "paper: recovery time linear in data size, scales with threads (6.2 s \
     for 1000M KVs at 48 threads)"

(* --- Fig 18: memory consumption ------------------------------------------ *)

let run_fig18 (scale : Scale.t) =
  Report.section "Fig 18: space consumption after loading (MB)";
  let sizes = [ 8; 32; 128; 512 ] in
  let results =
    List.map
      (fun spec ->
        ( Runner.name spec,
          List.map
            (fun vsize ->
              let dev, drv = Exp_common.fresh spec scale in
              let extent = Pmalloc.Extent.create (drv.I.allocator ()) in
              let rng = Random.State.make [| 51 |] in
              Array.iter
                (fun k ->
                  if vsize <= 8 then drv.I.upsert k 1L
                  else begin
                    let value = rand_string rng vsize vsize in
                    let v =
                      Ccl_btree.Indirect.encode_value dev extent value
                    in
                    drv.I.upsert k v
                  end)
                (K.shuffled_range ~seed:1 scale.Scale.warmup);
              ( drv.I.dram_bytes (),
                Pmalloc.Alloc.allocated_bytes (drv.I.allocator ()) ))
            sizes ))
      Runner.paper_indexes
  in
  let header =
    "index" :: List.map (fun s -> Printf.sprintf "%dB val" s) sizes
  in
  Report.note "DRAM consumption:";
  Report.table ~header
    (List.map
       (fun (n, cells) ->
         n :: List.map (fun (d, _) -> Report.mb d) cells)
       results);
  Report.note "PM consumption:";
  Report.table ~header
    (List.map
       (fun (n, cells) ->
         n :: List.map (fun (_, p) -> Report.mb p) cells)
       results);
  Report.note
    "paper: CCL-BTree's DRAM share is 17.5% -> 1.1% of total as values \
     grow (indirection keeps the DRAM side constant)"

(* --- Fig 19: realistic datasets ------------------------------------------ *)

let run_fig19 (scale : Scale.t) =
  Report.section "Fig 19: insert throughput on SOSD-like datasets (96t, modeled Mop/s)";
  let n = scale.Scale.warmup + scale.Scale.ops in
  let datasets =
    List.map (fun (name, gen) -> (name, gen ~seed:61 n)) Workload.Sosd.all
  in
  let rows =
    List.map
      (fun spec ->
        Runner.name spec
        :: List.map
             (fun (_, keys) ->
               let dev, drv = Exp_common.fresh spec scale in
               (* warm with the first half, measure the second half *)
               let warm = Array.sub keys 0 scale.Scale.warmup in
               let rest =
                 Array.sub keys scale.Scale.warmup
                   (Array.length keys - scale.Scale.warmup)
               in
               Runner.warmup drv ~keys:warm;
               let ops =
                 Array.mapi (fun i k -> Y.Insert (k, Int64.of_int (i + 1))) rest
               in
               let m = Exp_common.run_ops dev drv spec ops in
               Report.mops (Runner.mops_modeled m ~threads:96))
             datasets)
      Runner.paper_indexes
  in
  Report.table ~header:("index" :: List.map fst datasets) rows;
  Report.note "paper: CCL-BTree at least 1.24x ahead on every dataset"

(* --- Table 3: log-structured comparison ----------------------------------- *)

let run_tab3 (scale : Scale.t) =
  Report.section
    "Table 3: vs log-structured stores (measured 1t / modeled 48t, Mop/s)";
  let specs = [ Runner.Lsm; Runner.Flatstore; Runner.ccl_default ] in
  let rows =
    List.map
      (fun spec ->
        let dev, drv = Exp_common.warmed spec scale in
        let ins =
          Exp_common.run_ops dev drv spec (Exp_common.inserts_fresh scale)
        in
        let srch =
          Exp_common.run_ops dev drv spec (Exp_common.searches scale)
        in
        let scn =
          Exp_common.run_ops dev drv spec
            (Exp_common.scans ~len:scale.Scale.scan_len scale)
        in
        [
          Runner.name spec;
          Report.mops (Runner.mops_measured ins);
          Report.mops (Runner.mops_modeled ins ~threads:48);
          Report.mops (Runner.mops_measured srch);
          Report.mops (Runner.mops_modeled srch ~threads:48);
          Report.mops (Runner.mops_measured scn);
          Report.mops (Runner.mops_modeled scn ~threads:48);
        ])
      specs
  in
  Report.table
    ~header:
      [
        "store"; "Ins meas"; "Ins 48t"; "Srch meas"; "Srch 48t"; "Scan meas";
        "Scan 48t";
      ]
    rows;
  Report.note
    "paper: FlatStore inserts ~16% faster than CCL-BTree but scans 3.72x \
     slower; RocksDB-PM an order of magnitude behind everywhere"

let run scale =
  run_fig15a scale;
  run_fig15b scale;
  run_fig15c scale;
  run_fig15d scale;
  run_fig16 scale;
  run_fig17 scale;
  run_fig18 scale;
  run_fig19 scale;
  run_tab3 scale
