(** Common interface of every persistent index compared in the paper's
    evaluation (CCL-BTree itself and the seven baselines).

    All indexes operate on the same simulated device so their CLI/XBI
    amplification and media traffic are directly comparable.  Value [0L]
    is reserved (tombstone convention shared with CCL-BTree). *)

module type S = sig
  type t

  val name : string
  val create : Pmem.Device.t -> t
  val upsert : t -> int64 -> int64 -> unit
  val search : t -> int64 -> int64 option
  val delete : t -> int64 -> unit
  val scan : t -> start:int64 -> int -> (int64 * int64) array
  val flush_all : t -> unit
  (** Push any volatile buffered state to PM (end-of-run accounting). *)

  val dram_bytes : t -> int
  val pm_bytes : t -> int

  val allocator : t -> Pmalloc.Alloc.t
  (** The index's chunk allocator; experiments use it for uniform PM space
      accounting and for out-of-band variable-size value heaps. *)
end

(** Read-only operation handle for one concurrent reader domain.  Each
    handle owns a private device read view and private counters; handles
    must be created on the domain that will use them or handed over
    before first use, and used from one domain only. *)
type reader_ops = {
  r_search : int64 -> int64 option;
  r_scan : start:int64 -> int -> (int64 * int64) array;
  r_dev_stats : unit -> Pmem.Stats.t;
      (** Live device-counter record of the reader's view, mergeable with
          the writer's via [Pmem.Stats.merge]. *)
  r_counters : unit -> (string * int) list;
      (** Reader-side index counters (searches, DRAM hits, ...). *)
  r_retries : unit -> int;
      (** Optimistic-validation failures so far. *)
  r_dev : unit -> Pmem.Device.t;
      (** The handle's private device read view — lets observability
          consumers (profiler lanes) attach tracers to the exact device
          this reader drives. *)
}

(** Write operation handle for one concurrent writer domain.  Each handle
    owns a private device write view and a private WAL lane; same
    domain-affinity rules as {!reader_ops}. *)
type writer_ops = {
  w_upsert : int64 -> int64 -> unit;
  w_delete : int64 -> unit;
  w_dev_stats : unit -> Pmem.Stats.t;
      (** Live device-counter record of the writer's view, mergeable with
          the parent's via [Pmem.Stats.merge]. *)
  w_counters : unit -> (string * int) list;
      (** Writer-side index counters (inserts, batch flushes, splits,
          ...). *)
  w_retries : unit -> int;
      (** Optimistic-validation failures so far. *)
  w_dev : unit -> Pmem.Device.t;
      (** The handle's private device write view — lets observability
          consumers (profiler lanes) attach tracers to the exact device
          this writer drives. *)
}

(** First-class driver record, letting the harness and benches iterate over
    heterogeneous index instances uniformly. *)
type driver = {
  name : string;
  upsert : int64 -> int64 -> unit;
  search : int64 -> int64 option;
  delete : int64 -> unit;
  scan : start:int64 -> int -> (int64 * int64) array;
  flush_all : unit -> unit;
  dram_bytes : unit -> int;
  pm_bytes : unit -> int;
  allocator : unit -> Pmalloc.Alloc.t;
  counters : unit -> (string * int) list;
      (** Index-internal operation counters (log appends, batch flushes,
          splits, GC work, ...) as a flat snapshot for attribution
          reports; empty for indexes that expose none. *)
  new_reader : (unit -> reader_ops) option;
      (** Mint a concurrent read-only handle; [None] for indexes without
          a latch-free read path (all current baselines). *)
  new_writer : (unit -> writer_ops) option;
      (** Mint a concurrent write handle; [None] for indexes without an
          optimistic-lock-coupling write path (all current baselines).
          While any writer handle is live, the driver's own
          [upsert]/[delete] must not be called concurrently with it. *)
}

let driver (type a) (module M : S with type t = a) (t : a) =
  {
    name = M.name;
    upsert = M.upsert t;
    search = M.search t;
    delete = M.delete t;
    scan = (fun ~start n -> M.scan t ~start n);
    flush_all = (fun () -> M.flush_all t);
    dram_bytes = (fun () -> M.dram_bytes t);
    pm_bytes = (fun () -> M.pm_bytes t);
    allocator = (fun () -> M.allocator t);
    counters = (fun () -> []);
    new_reader = None;
    new_writer = None;
  }
