(* PACTree (Kim et al., SOSP '21) stand-in: a persistent range index whose
   search layer and data layer both live in PM (the paper groups it with
   FAST&FAIR as a "pure PM index" whose traversals cost PM reads).  We
   model it as a PM-resident search layer (a FAST&FAIR-style B+-tree over
   anchor keys, updated only on data-node splits — PACTree updates its
   search layer asynchronously and rarely) over unsorted 256 B data nodes
   with fingerprints (PACTree data nodes use permutation/fingerprint
   metadata).  Point writes therefore cost a couple of flushes to a
   random data node, searches cost several PM reads, scans ride the
   data-node chain. *)

module D = Pmem.Device
module Alloc = Pmalloc.Alloc
module Slab = Pmalloc.Slab
module L = Ccl_btree.Leaf_node

let name = "PACTree"

type t = {
  dev : D.t;
  alloc : Alloc.t;
  slab : Slab.t;  (* data-layer nodes *)
  anchors : Fastfair.t;  (* PM search layer: anchor key -> data node *)
  head : int;
}

let create dev =
  let alloc = Alloc.format dev ~chunk_size:(64 * 1024) in
  let slab = Slab.create alloc Alloc.Leaf ~obj_size:L.size in
  let anchors = Fastfair.create_on alloc in
  let head = Slab.alloc slab in
  L.init dev head ~next:0;
  Fastfair.upsert anchors Int64.min_int (Int64.of_int head);
  { dev; alloc; slab; anchors; head }

(* Route through the PM search layer: greatest anchor <= key. *)
let target_node t key =
  match Fastfair.find_le t.anchors key with
  | Some (_, v) -> Int64.to_int v
  | None -> t.head

let split_node t node key =
  let entries =
    List.sort compare (L.entries t.dev node)
  in
  let n = List.length entries in
  let right = List.filteri (fun i _ -> i >= n / 2) entries in
  let right_low = fst (List.hd right) in
  let new_node = Slab.alloc t.slab in
  let bits = ref 0 in
  List.iteri
    (fun i (k, v) ->
      L.store_slot t.dev new_node i ~key:k ~value:v;
      L.store_fingerprint t.dev new_node i k;
      bits := !bits lor (1 lsl i))
    right;
  L.store_meta_word t.dev new_node ~bitmap:!bits ~next:(L.next t.dev node);
  (* persist only the written prefix: the tail of the fresh slab node was
     never stored to, and flushing untouched lines is pure waste *)
  D.persist t.dev new_node (32 + (16 * List.length right));
  let keep = ref 0 in
  let bm = L.bitmap t.dev node in
  for i = 0 to L.slots - 1 do
    if bm land (1 lsl i) <> 0 then
      if Int64.compare (L.key_at t.dev node i) right_low < 0 then
        keep := !keep lor (1 lsl i)
  done;
  L.store_meta_word t.dev node ~bitmap:!keep ~next:new_node;
  D.persist t.dev node 8;
  (* asynchronous search-layer update, modeled synchronously *)
  Fastfair.upsert t.anchors right_low (Int64.of_int new_node);
  if Int64.compare key right_low >= 0 then new_node else node

let rec upsert_in t key value =
  let node = target_node t key in
  match L.find t.dev node key with
  | Some i ->
    D.store_u64 t.dev (L.slot_addr node i + 8) value;
    D.persist t.dev (L.slot_addr node i + 8) 8
  | None -> (
    match L.free_slots t.dev node with
    | [] ->
      ignore (split_node t node key);
      upsert_in t key value
    | slot :: _ ->
      L.store_slot t.dev node slot ~key ~value;
      D.persist t.dev (L.slot_addr node slot) 16;
      L.store_fingerprint t.dev node slot key;
      L.store_meta_word t.dev node
        ~bitmap:(L.bitmap t.dev node lor (1 lsl slot))
        ~next:(L.next t.dev node);
      D.persist t.dev node 32)

let upsert t key value =
  D.add_user_bytes t.dev 16;
  upsert_in t key value

let search t key =
  let node = target_node t key in
  match L.find t.dev node key with
  | Some i -> Some (L.value_at t.dev node i)
  | None -> None

let delete t key =
  D.add_user_bytes t.dev 16;
  let node = target_node t key in
  match L.find t.dev node key with
  | Some i ->
    L.store_meta_word t.dev node
      ~bitmap:(L.bitmap t.dev node land lnot (1 lsl i))
      ~next:(L.next t.dev node);
    D.persist t.dev node 8
  | None -> ()

let scan t ~start n =
  let acc = ref [] in
  let count = ref 0 in
  let rec walk node =
    if node <> 0 && !count < n then begin
      let entries =
        List.sort compare
          (List.filter
             (fun (k, _) -> Int64.compare k start >= 0)
             (L.entries t.dev node))
      in
      List.iter
        (fun e ->
          if !count < n then begin
            acc := e :: !acc;
            incr count
          end)
        entries;
      if !count < n then walk (L.next t.dev node)
    end
  in
  walk (target_node t start);
  Array.of_list (List.rev !acc)

let flush_all _ = ()
let dram_bytes _ = 16
let pm_bytes t = Slab.used_bytes t.slab + Fastfair.pm_bytes t.anchors
let allocator t = t.alloc
