(* PMEM-RocksDB stand-in: a two-level LSM tree on PM.  Inserts hit a DRAM
   memtable fronted by a sequential WAL; full memtables flush to sorted
   L0 runs; when enough L0 runs accumulate they are compacted with the L1
   run into a fresh L1 run.  Compaction re-reads and rewrites all live
   data — the write amplification that makes RocksDB an order of
   magnitude slower than the PM-native indexes in the paper's Table 3 —
   and both point and range queries must consult multiple sorted runs. *)

module D = Pmem.Device
module Alloc = Pmalloc.Alloc
module M = Map.Make (Int64)

let name = "RocksDB-PM"
let memtable_limit = 1024

(* WA-attribution sites (Obs.Prof): WAL appends vs memtable flushes vs
   compaction rewrites — the classic LSM write-amplification split. *)
let site_wal = Pmem.Site.id "lsm-wal"
let site_flush = Pmem.Site.id "lsm-flush"
let site_compact = Pmem.Site.id "lsm-compact"
let l0_limit = 4

type run = { chunks : int array; count : int }

type t = {
  dev : D.t;
  alloc : Alloc.t;
  mutable memtable : int64 M.t;
  mutable wal_chunks : int list;
  mutable wal_off : int;
  mutable l0 : run list;  (* newest first *)
  mutable l1 : run option;
  mutable compactions : int;
  per_chunk : int;
}

let create dev =
  let alloc = Alloc.format dev ~chunk_size:(64 * 1024) in
  {
    dev;
    alloc;
    memtable = M.empty;
    wal_chunks = [];
    wal_off = 0;
    l0 = [];
    l1 = None;
    compactions = 0;
    per_chunk = Alloc.chunk_size alloc / 16;
  }

let entry_addr t run i =
  run.chunks.(i / t.per_chunk) + (i mod t.per_chunk * 16)

let run_key t run i = D.load_u64 t.dev (entry_addr t run i)
let run_value t run i = D.load_u64 t.dev (entry_addr t run i + 8)

(* Write a sorted entry list as a fresh run: sequential PM writes. *)
let write_run t entries =
  let count = List.length entries in
  let nchunks = (count + t.per_chunk - 1) / t.per_chunk in
  let chunks =
    Array.init (max nchunks 1) (fun _ -> Alloc.alloc_chunk t.alloc Alloc.Extent)
  in
  let run = { chunks; count } in
  List.iteri
    (fun i (k, v) ->
      let a = entry_addr t run i in
      D.store_u64 t.dev a k;
      D.store_u64 t.dev (a + 8) v)
    entries;
  (* flush only the bytes the run actually wrote into each chunk: the
     memtable rarely fills a 64 KB chunk, and flushing the untouched tail
     was the 31.6% redundant-flush rate pmsan pinned on this site *)
  Array.iteri
    (fun ci c ->
      let written = min t.per_chunk (count - (ci * t.per_chunk)) in
      D.flush_range t.dev c (written * 16))
    chunks;
  if count > 0 then D.sfence t.dev;
  run

let free_run t run = Array.iter (Alloc.free_chunk t.alloc) run.chunks

let run_entries t run =
  List.init run.count (fun i -> (run_key t run i, run_value t run i))

(* Merge newest-first sources; earlier sources win on duplicate keys. *)
let merge_sources sources ~drop_tombstones =
  let tbl = Hashtbl.create 4096 in
  List.iter
    (fun entries ->
      List.iter
        (fun (k, v) ->
          if not (Hashtbl.mem tbl k) then Hashtbl.replace tbl k v)
        entries)
    sources;
  Hashtbl.fold
    (fun k v acc ->
      if drop_tombstones && Int64.equal v 0L then acc else (k, v) :: acc)
    tbl []
  |> List.sort compare

let compact t =
  let l1_entries = match t.l1 with Some r -> run_entries t r | None -> [] in
  let sources = List.map (run_entries t) t.l0 @ [ l1_entries ] in
  let merged = merge_sources sources ~drop_tombstones:true in
  D.site_enter t.dev site_compact;
  let new_l1 = write_run t merged in
  D.site_exit t.dev;
  List.iter (free_run t) t.l0;
  (match t.l1 with Some r -> free_run t r | None -> ());
  t.l0 <- [];
  t.l1 <- Some new_l1;
  t.compactions <- t.compactions + 1

let flush_memtable t =
  if not (M.is_empty t.memtable) then begin
    let entries = M.bindings t.memtable in
    D.site_enter t.dev site_flush;
    let run = write_run t entries in
    D.site_exit t.dev;
    t.l0 <- run :: t.l0;
    t.memtable <- M.empty;
    List.iter (Alloc.free_chunk t.alloc) t.wal_chunks;
    t.wal_chunks <- [];
    t.wal_off <- 0;
    if List.length t.l0 >= l0_limit then compact t
  end

let wal_append t key value =
  let cs = Alloc.chunk_size t.alloc in
  (if t.wal_chunks = [] || t.wal_off + 16 > cs then begin
     t.wal_chunks <- Alloc.alloc_chunk t.alloc Alloc.Log :: t.wal_chunks;
     t.wal_off <- 0
   end);
  let addr = List.hd t.wal_chunks + t.wal_off in
  D.site_enter t.dev site_wal;
  D.store_u64 t.dev addr key;
  D.store_u64 t.dev (addr + 8) value;
  D.persist t.dev addr 16;
  D.site_exit t.dev;
  t.wal_off <- t.wal_off + 16

let upsert_raw t key value =
  D.add_user_bytes t.dev 16;
  wal_append t key value;
  t.memtable <- M.add key value t.memtable;
  if M.cardinal t.memtable >= memtable_limit then flush_memtable t

let upsert t key value = upsert_raw t key value
let delete t key = upsert_raw t key 0L

let find_in_run t run key =
  (* binary search over the sorted run: ~log2(count) random PM reads *)
  let rec go lo hi =
    if lo >= hi then None
    else begin
      let mid = (lo + hi) / 2 in
      let k = run_key t run mid in
      let c = Int64.compare key k in
      if c = 0 then Some (run_value t run mid)
      else if c < 0 then go lo mid
      else go (mid + 1) hi
    end
  in
  go 0 run.count

let search t key =
  let result =
    match M.find_opt key t.memtable with
    | Some v -> Some v
    | None -> (
      let rec through_runs = function
        | [] -> ( match t.l1 with Some r -> find_in_run t r key | None -> None)
        | r :: rest -> (
          match find_in_run t r key with
          | Some v -> Some v
          | None -> through_runs rest)
      in
      through_runs t.l0)
  in
  match result with Some v when Int64.equal v 0L -> None | r -> r

(* Range queries seek and sort-merge entries from every level. *)
let scan t ~start n =
  let clip entries =
    List.filter (fun (k, _) -> Int64.compare k start >= 0) entries
  in
  let sources =
    clip (M.bindings t.memtable)
    :: List.map (fun r -> clip (run_entries t r)) t.l0
    @ [ (match t.l1 with Some r -> clip (run_entries t r) | None -> []) ]
  in
  let merged = merge_sources sources ~drop_tombstones:true in
  let rec take i = function
    | [] -> []
    | _ when i = 0 -> []
    | x :: rest -> x :: take (i - 1) rest
  in
  Array.of_list (take n merged)

let flush_all t = flush_memtable t
let compaction_count t = t.compactions

let dram_bytes t = M.cardinal t.memtable * 48

let pm_bytes t =
  let run_bytes = function
    | Some r -> Array.length r.chunks * Alloc.chunk_size t.alloc
    | None -> 0
  in
  List.fold_left (fun acc r -> acc + run_bytes (Some r)) 0 t.l0
  + run_bytes t.l1
  + (List.length t.wal_chunks * Alloc.chunk_size t.alloc)

let allocator t = t.alloc
