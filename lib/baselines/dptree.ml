(* DPTree (Zhou et al., VLDB '19): differential indexing with a global
   DRAM buffer in front of a persistent base tree.  Inserts append to a
   sequential PM log and stage in the buffer; when the buffer fills it is
   merged wholesale into the base tree — random leaf writes across the
   whole key space, which is why the paper measures DPTree's
   XBI-amplification at 43.2 vs CCL-BTree's 10.2 (§3.2, §5.2).  The merge
   also stalls foreground operations (tail-latency spike in Fig 12). *)

module D = Pmem.Device
module Alloc = Pmalloc.Alloc

let name = "DPTree"
let default_merge_threshold = 1024

(* WA-attribution sites (Obs.Prof), per-index analogues of the CCL
   taxonomy: the differential log is this index's "wal-append", the
   wholesale buffer merge its "smo" traffic. *)
let site_log = Pmem.Site.id "dpt-log"
let site_merge = Pmem.Site.id "dpt-merge"

type t = {
  dev : D.t;
  base : Fptree_core.t;
  buffer : (int64, int64) Hashtbl.t;
  merge_threshold : int;
  (* sequential differential log *)
  mutable log_chunks : int list;
  mutable log_off : int;
  log_alloc : Alloc.t;
  mutable merges : int;
  mutable merged_entries : int;
}

let create dev =
  let base = Fptree_core.make ~single_line_commit:false dev in
  (* share the base tree's allocator: one chunk table per device *)
  let log_alloc = Fptree_core.allocator base in
  {
    dev;
    base;
    buffer = Hashtbl.create 4096;
    merge_threshold = default_merge_threshold;
    log_chunks = [];
    log_off = 0;
    log_alloc;
    merges = 0;
    merged_entries = 0;
  }

let log_append t key value =
  let cs = Alloc.chunk_size t.log_alloc in
  (if t.log_chunks = [] || t.log_off + 16 > cs then begin
     t.log_chunks <- Alloc.alloc_chunk t.log_alloc Alloc.Log :: t.log_chunks;
     t.log_off <- 0
   end);
  let addr = List.hd t.log_chunks + t.log_off in
  D.site_enter t.dev site_log;
  D.store_u64 t.dev addr key;
  D.store_u64 t.dev (addr + 8) value;
  D.persist t.dev addr 16;
  D.site_exit t.dev;
  t.log_off <- t.log_off + 16

(* Merge the whole buffer into the base tree: the KVs scatter across
   random leaves in PM. *)
let merge t =
  D.span_begin t.dev "dptree.merge";
  D.site_enter t.dev site_merge;
  let entries =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.buffer [])
  in
  List.iter
    (fun (k, v) ->
      (* the merge's writes are internal traffic, not fresh user bytes *)
      if Int64.equal v 0L then Fptree_core.delete t.base k
      else Fptree_core.upsert t.base k v;
      D.add_user_bytes t.dev (-16);
      t.merged_entries <- t.merged_entries + 1)
    entries;
  Hashtbl.reset t.buffer;
  List.iter (Alloc.free_chunk t.log_alloc) t.log_chunks;
  t.log_chunks <- [];
  t.log_off <- 0;
  t.merges <- t.merges + 1;
  D.site_exit t.dev;
  D.span_end t.dev "dptree.merge"

let upsert_raw t key value =
  D.add_user_bytes t.dev 16;
  log_append t key value;
  Hashtbl.replace t.buffer key value;
  if Hashtbl.length t.buffer >= t.merge_threshold then merge t

let upsert t key value = upsert_raw t key value
let delete t key = upsert_raw t key 0L

let search t key =
  match Hashtbl.find_opt t.buffer key with
  | Some v -> if Int64.equal v 0L then None else Some v
  | None -> Fptree_core.search t.base key

let scan t ~start n =
  (* merge the buffered delta with the base-tree scan *)
  let base = Fptree_core.scan t.base ~start (n + Hashtbl.length t.buffer) in
  let tbl = Hashtbl.create (Array.length base) in
  Array.iter (fun (k, v) -> Hashtbl.replace tbl k v) base;
  Hashtbl.iter
    (fun k v -> if Int64.compare k start >= 0 then Hashtbl.replace tbl k v)
    t.buffer;
  let all =
    Hashtbl.fold
      (fun k v acc -> if Int64.equal v 0L then acc else (k, v) :: acc)
      tbl []
    |> List.sort compare
  in
  let rec take i = function
    | [] -> []
    | _ when i = 0 -> []
    | x :: rest -> x :: take (i - 1) rest
  in
  Array.of_list (take n all)

let flush_all t = if Hashtbl.length t.buffer > 0 then merge t
let merge_count t = t.merges

let dram_bytes t =
  Fptree_core.dram_bytes t.base + (Hashtbl.length t.buffer * 48)

let allocator t = t.log_alloc

let pm_bytes t =
  Fptree_core.pm_bytes t.base + (List.length t.log_chunks * Alloc.chunk_size t.log_alloc)
