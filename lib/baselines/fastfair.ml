(* FAST&FAIR (Hwang et al., FAST '18) reimplementation on the simulated
   device: the entire tree (inner nodes and leaves) lives in PM with
   sorted 256 B nodes.  Inserts shift entries with 8 B stores and flush
   every touched cacheline; failure atomicity comes from tolerating
   transient duplicates, so no logging is needed.  This gives it low
   CLI-amplification but every insert dirties a random leaf's cachelines,
   hence high XBI-amplification — the paper's primary baseline. *)

module D = Pmem.Device
module Alloc = Pmalloc.Alloc
module Slab = Pmalloc.Slab

let name = "FAST&FAIR"
let node_size = 256

(* WA-attribution sites (Obs.Prof): shift-insert traffic vs node-split
   traffic — FAST&FAIR's in-place entry shifting is what the paper's §3.2
   charges its CLI amplification to. *)
let site_insert = Pmem.Site.id "ff-insert"
let site_split = Pmem.Site.id "ff-split"
let capacity = 15 (* 16 B header + 15 x 16 B entries *)

type t = {
  dev : D.t;
  alloc : Alloc.t;
  slab : Slab.t;
  mutable root : int;
  mutable height : int;
}

(* header: [0] nkeys, [1] is_leaf, [8..15] sibling (leaf) / leftmost child
   (inner) *)
let nkeys t node = D.load_u8 t.dev node
let set_nkeys t node n = D.store_u8 t.dev node n
let is_leaf t node = D.load_u8 t.dev (node + 1) = 1
let aux t node = Int64.to_int (D.load_u64 t.dev (node + 8))
let set_aux t node v = D.store_u64 t.dev (node + 8) (Int64.of_int v)
let entry_addr node i = node + 16 + (i * 16)
let key_at t node i = D.load_u64 t.dev (entry_addr node i)
let payload_at t node i = D.load_u64 t.dev (entry_addr node i + 8)

let store_entry t node i ~key ~payload =
  D.store_u64 t.dev (entry_addr node i) key;
  D.store_u64 t.dev (entry_addr node i + 8) payload

let alloc_node t ~leaf =
  let node = Slab.alloc t.slab in
  D.fill t.dev node node_size '\000';
  D.store_u8 t.dev (node + 1) (if leaf then 1 else 0);
  D.persist t.dev node node_size;
  node

(* Build on an existing allocator (lets PACTree embed a FAST&FAIR-style
   PM search layer next to its own data layer). *)
let create_on alloc =
  let dev = Alloc.device alloc in
  let slab = Slab.create alloc Alloc.Leaf ~obj_size:node_size in
  let t = { dev; alloc; slab; root = 0; height = 1 } in
  t.root <- alloc_node t ~leaf:true;
  t

let create dev = create_on (Alloc.format dev ~chunk_size:(64 * 1024))

(* position of the first entry with key >= [key] *)
let lower_bound t node key =
  let n = nkeys t node in
  let rec go i =
    if i >= n then n
    else if Int64.compare (key_at t node i) key >= 0 then i
    else go (i + 1)
  in
  go 0

let child_for t node key =
  let n = nkeys t node in
  let rec go i =
    if i >= n then if n = 0 then aux t node else Int64.to_int (payload_at t node (n - 1))
    else if Int64.compare key (key_at t node i) < 0 then
      if i = 0 then aux t node else Int64.to_int (payload_at t node (i - 1))
    else go (i + 1)
  in
  go 0

let rec find_leaf t node key =
  if is_leaf t node then node else find_leaf t (child_for t node key) key

let flush_entry_range t node lo hi =
  (* flush cachelines covering entries lo..hi plus the header — each
     line exactly once: entries 0..2 share the header's cacheline, so
     when the range starts there the range flush already covers the
     header and a second clwb would just re-flush a staged line *)
  if hi >= lo then begin
    D.flush_range t.dev (entry_addr node lo) ((hi - lo + 1) * 16);
    if Pmem.Geometry.line_of (entry_addr node lo) <> Pmem.Geometry.line_of node
    then D.clwb t.dev node
  end
  else D.clwb t.dev node;
  D.sfence t.dev

(* FAST insert: shift entries right one by one with 8 B stores, flushing
   the touched cachelines, then publish by bumping nkeys. *)
let insert_into_node t node ~key ~payload =
  let n = nkeys t node in
  assert (n < capacity);
  let pos = lower_bound t node key in
  D.site_enter t.dev site_insert;
  for i = n - 1 downto pos do
    store_entry t node (i + 1) ~key:(key_at t node i)
      ~payload:(payload_at t node i)
  done;
  store_entry t node pos ~key ~payload;
  set_nkeys t node (n + 1);
  flush_entry_range t node pos n;
  D.site_exit t.dev

(* split [node], returning (separator, right sibling address) *)
let split_node t node =
  let n = nkeys t node in
  let leaf = is_leaf t node in
  let mid = n / 2 in
  D.site_enter t.dev site_split;
  let right = alloc_node t ~leaf in
  if leaf then begin
    for i = mid to n - 1 do
      store_entry t right (i - mid) ~key:(key_at t node i)
        ~payload:(payload_at t node i)
    done;
    set_nkeys t right (n - mid);
    set_aux t right (aux t node);
    (* [alloc_node] persisted the zero fill; only the written prefix is
       dirty, so flushing the untouched tail would be redundant *)
    D.persist t.dev right (16 + (16 * (n - mid)));
    set_aux t node right;
    set_nkeys t node mid;
    D.persist t.dev node 16;
    D.site_exit t.dev;
    (key_at t right 0, right)
  end
  else begin
    (* entry [mid] moves up; right gets entries mid+1..n-1 with leftmost
       child = payload of entry mid *)
    for i = mid + 1 to n - 1 do
      store_entry t right (i - mid - 1) ~key:(key_at t node i)
        ~payload:(payload_at t node i)
    done;
    set_nkeys t right (n - mid - 1);
    set_aux t right (Int64.to_int (payload_at t node mid));
    D.persist t.dev right (16 + (16 * (n - mid - 1)));
    set_nkeys t node mid;
    D.persist t.dev node 16;
    D.site_exit t.dev;
    (key_at t node mid, right)
  end

let rec insert_rec t node key payload =
  if is_leaf t node then begin
    match lower_bound t node key with
    | pos when pos < nkeys t node && Int64.equal (key_at t node pos) key ->
      (* in-place update: one 8 B store, one flush *)
      D.store_u64 t.dev (entry_addr node pos + 8) payload;
      D.persist t.dev (entry_addr node pos + 8) 8;
      None
    | _ ->
      if nkeys t node < capacity then begin
        insert_into_node t node ~key ~payload;
        None
      end
      else begin
        let sep, right = split_node t node in
        let target = if Int64.compare key sep >= 0 then right else node in
        insert_into_node t target ~key ~payload;
        Some (sep, right)
      end
  end
  else begin
    let child = child_for t node key in
    match insert_rec t child key payload with
    | None -> None
    | Some (sep, right) ->
      if nkeys t node < capacity then begin
        insert_into_node t node ~key:sep ~payload:(Int64.of_int right);
        None
      end
      else begin
        let sep2, right2 = split_node t node in
        let target = if Int64.compare sep sep2 >= 0 then right2 else node in
        insert_into_node t target ~key:sep ~payload:(Int64.of_int right);
        Some (sep2, right2)
      end
  end

let upsert t key value =
  D.add_user_bytes t.dev 16;
  match insert_rec t t.root key value with
  | None -> ()
  | Some (sep, right) ->
    let new_root = alloc_node t ~leaf:false in
    set_aux t new_root t.root;
    store_entry t new_root 0 ~key:sep ~payload:(Int64.of_int right);
    set_nkeys t new_root 1;
    D.persist t.dev new_root 32;
    t.root <- new_root;
    t.height <- t.height + 1

let search t key =
  let leaf = find_leaf t t.root key in
  let pos = lower_bound t leaf key in
  if pos < nkeys t leaf && Int64.equal (key_at t leaf pos) key then
    Some (payload_at t leaf pos)
  else None

(* Greatest entry with key <= the argument.  Because separators are always
   keys still present in their right leaf, the target entry (when it
   exists) is in the leaf the traversal lands on. *)
let find_le t key =
  let leaf = find_leaf t t.root key in
  let n = nkeys t leaf in
  let rec go i best =
    if i >= n then best
    else if Int64.compare (key_at t leaf i) key <= 0 then
      go (i + 1) (Some (key_at t leaf i, payload_at t leaf i))
    else best
  in
  go 0 None

(* FAIR-style lazy delete: shift left within the leaf, no rebalancing. *)
let delete t key =
  D.add_user_bytes t.dev 16;
  let leaf = find_leaf t t.root key in
  let pos = lower_bound t leaf key in
  let n = nkeys t leaf in
  if pos < n && Int64.equal (key_at t leaf pos) key then begin
    for i = pos to n - 2 do
      store_entry t leaf i ~key:(key_at t leaf (i + 1))
        ~payload:(payload_at t leaf (i + 1))
    done;
    set_nkeys t leaf (n - 1);
    flush_entry_range t leaf pos (n - 1)
  end

let scan t ~start n =
  let acc = ref [] in
  let count = ref 0 in
  let rec walk node =
    if node <> 0 && !count < n then begin
      let nk = nkeys t node in
      let pos = lower_bound t node start in
      for i = pos to nk - 1 do
        if !count < n then begin
          acc := (key_at t node i, payload_at t node i) :: !acc;
          incr count
        end
      done;
      if !count < n then walk (aux t node)
    end
  in
  walk (find_leaf t t.root start);
  Array.of_list (List.rev !acc)

let flush_all _ = ()
let dram_bytes _ = 16 (* just the root pointer; the tree is pure PM *)
let pm_bytes t = Slab.used_bytes t.slab
let allocator t = t.alloc
