(* CCL-BTree behind the common {!Index_intf.S} interface, so the harness
   and benches treat it uniformly with the baselines.  Ablation variants
   (Base / +BNode / +WLog, naive GC) come from configuration flags. *)

module Tree = Ccl_btree.Tree
module Config = Ccl_btree.Config

type t = Tree.t

let name = "CCL-BTree"
let create dev = Tree.create dev
let upsert = Tree.upsert
let search = Tree.search
let delete = Tree.delete
let scan t ~start n = Tree.scan t ~start n
let flush_all = Tree.flush_all
let dram_bytes = Tree.dram_bytes
let pm_bytes = Tree.pm_bytes
let allocator = Tree.allocator

(* Drivers for the ablation study (Fig 13). *)

let driver_with ?(name = "CCL-BTree") cfg dev =
  let t = Tree.create ~cfg dev in
  {
    Index_intf.name;
    upsert = Tree.upsert t;
    search = Tree.search t;
    delete = Tree.delete t;
    scan = (fun ~start n -> Tree.scan t ~start n);
    flush_all = (fun () -> Tree.flush_all t);
    dram_bytes = (fun () -> Tree.dram_bytes t);
    pm_bytes = (fun () -> Tree.pm_bytes t);
    allocator = (fun () -> Tree.allocator t);
    counters =
      (fun () -> Ccl_btree.Tree_stats.to_assoc (Tree.stats t));
    new_reader =
      Some
        (fun () ->
          let r = Tree.reader t in
          {
            Index_intf.r_search = Tree.reader_search r;
            r_scan = (fun ~start n -> Tree.reader_scan r ~start n);
            r_dev_stats =
              (fun () -> Pmem.Device.stats (Tree.reader_device r));
            r_counters =
              (fun () ->
                Ccl_btree.Tree_stats.to_assoc (Tree.reader_stats r));
            r_retries = (fun () -> Tree.reader_retries r);
            r_dev = (fun () -> Tree.reader_device r);
          });
    new_writer =
      Some
        (fun () ->
          let w = Tree.writer t in
          {
            Index_intf.w_upsert = Tree.writer_upsert w;
            w_delete = Tree.writer_delete w;
            w_dev_stats =
              (fun () -> Pmem.Device.stats (Tree.writer_device w));
            w_counters =
              (fun () ->
                Ccl_btree.Tree_stats.to_assoc (Tree.writer_stats w));
            w_retries = (fun () -> Tree.writer_retries w);
            w_dev = (fun () -> Tree.writer_device w);
          });
  }

let base_cfg = { Config.default with Config.buffering = false }

let bnode_cfg =
  { Config.default with Config.conservative_logging = false }

let wlog_cfg = Config.default
