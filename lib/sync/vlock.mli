(** Seqlock-style version lock over an [Atomic.t].

    Even value = unlocked, odd = a writer is inside its critical section.
    Optimistic readers take a snapshot with {!read_begin}, read the
    protected data (tolerating torn values), then {!validate} the
    snapshot: validation succeeds only when the version is unchanged and
    even, i.e. no writer ran during the read.  Writers bump the version
    by one on {!lock} and again on {!unlock}, so every critical section
    advances it by two and any overlap is detected.

    {!lock} is a CAS loop, so it also serves as a spin mutex when a
    pessimistic (fallback) reader needs a definitely-consistent view of
    one node without holding a global latch. *)

type t

val create : unit -> t

val id : t -> int
(** Process-unique identity ({!Hook.fresh_id}) — the key rsan and the
    tree's access annotations use to name this lock in event streams. *)

val value : t -> int
(** Current raw version (may be odd). *)

val read_begin : t -> int
(** Snapshot for optimistic validation.  Spins briefly while a writer is
    inside; may still return an odd value if the writer outlasts the
    bounded spin — callers must treat an odd snapshot as a failed read
    and retry from routing (a node locked forever, e.g. merged away,
    must not capture a reader in an unbounded spin). *)

val is_locked_v : int -> bool
(** Whether a snapshot value is odd (writer inside). *)

val validate : t -> int -> bool
(** [validate t v] is true iff the version is still exactly [v].  Only
    meaningful when [v] was even. *)

val lock : t -> unit
(** Acquire as a writer (version becomes odd).  Spins on contention. *)

val try_lock : t -> bool
(** One-shot writer acquire: succeeds (version becomes odd) iff the lock
    was free and no other writer raced the CAS.  Never spins — the
    optimistic-lock-coupling building block for concurrent writers. *)

val try_upgrade : t -> int -> bool
(** [try_upgrade t v] atomically acquires the lock iff the version is
    still exactly the (even) snapshot [v] — i.e. no writer ran since the
    caller observed [v].  This is OLC's "validate and lock in one CAS":
    on success the caller holds the lock knowing the protected data is
    unchanged since the snapshot; on failure it must restart. *)

val unlock : t -> unit
(** Release (version becomes even again, two above the pre-lock value).

    @raise Invalid_argument if the lock is not held (even version): an
    unbalanced unlock would otherwise silently {e lock} the node and
    wedge every later writer.  A {!Hook.Vlock_release_unheld} event is
    emitted before raising so rsan reports the offending site even when
    the exception is swallowed. *)

val locked : t -> bool
