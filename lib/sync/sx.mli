(** SX latch: the three-mode latch FPTree-style trees use so structural
    modifications exclude each other without stalling readers.

    Compatibility matrix (SNIPPETS.md §1):

    {v
            S     SX    X
      S     ok    ok    --
      SX    ok    --    --
      X     --    --    --
    v}

    - [S] (shared): pessimistic readers.  Many at once, compatible with
      one [SX] holder.
    - [SX] (shared-exclusive): a structural writer preparing a split or
      merge.  Excludes other structural writers but {e not} readers — the
      expensive phase (writing the new leaf) runs while searches proceed.
    - [X] (exclusive): the short link-in/unlink step that republishes
      routing state.  Excludes everyone.

    An [SX] holder upgrades to [X] with {!upgrade}; the [upgrading] flag
    (an [Atomic]) stops new [S] acquisitions immediately so the upgrade
    cannot be starved by a stream of readers.  Built on [Mutex] +
    [Condition]: acquisition order within a mode is whatever the runtime
    wakes, which is fine for one writer domain and a bounded reader
    pool. *)

type t

type mode = S | SX | X

val create : unit -> t

val id : t -> int
(** Process-unique identity ({!Hook.fresh_id}) used in event streams. *)

val acquire : t -> mode -> unit
val release : t -> mode -> unit

val upgrade : t -> unit
(** [SX] → [X].  Caller must hold [SX]; blocks until all [S] holders
    drain while barring new ones. *)

val downgrade : t -> unit
(** [X] → [SX]: readers may re-enter while the holder finishes
    non-critical work. *)

val with_mode : t -> mode -> (unit -> 'a) -> 'a
(** Acquire, run, release (also on exception). *)
