type sx_mode = S | SX | X

type event =
  | Vlock_acquire of { id : int; v : int; optimistic : bool }
  | Vlock_release of { id : int; v : int }
  | Vlock_release_unheld of { id : int; v : int }
  | Vlock_read_begin of { id : int; v : int }
  | Vlock_validate of { id : int; v : int; ok : bool }
  | Vlock_value of { id : int; v : int }
  | Vlock_try_upgrade of { id : int; v : int; ok : bool }
  | Vlock_contended of { id : int; v : int }
  | Fence_check of { id : int; ok : bool }
  | Sx_request of { id : int; mode : sx_mode }
  | Sx_acquire of { id : int; mode : sx_mode }
  | Sx_release of { id : int; mode : sx_mode }
  | Sx_upgrade of { id : int; readers : int }
  | Sx_downgrade of { id : int }
  | Epoch_enter of { id : int; slot : int; epoch : int }
  | Epoch_exit of { id : int; slot : int }
  | Epoch_retire of { id : int; obj : int; epoch : int }
  | Epoch_reclaim of { id : int; obj : int; epoch : int }
  | Access of { id : int; write : bool; site : string }
  | Seal of { id : int }

let ids = Atomic.make 1
let fresh_id () = Atomic.fetch_and_add ids 1

let tracer : (event -> unit) option Atomic.t = Atomic.make None

let set_tracer f = Atomic.set tracer f

let add_tracer f =
  match Atomic.get tracer with
  | None -> Atomic.set tracer (Some f)
  | Some g ->
    Atomic.set tracer
      (Some
         (fun ev ->
           g ev;
           f ev))

let tracer_installed () = Atomic.get tracer <> None
let enabled () = Atomic.get tracer <> None

let emit e = match Atomic.get tracer with None -> () | Some f -> f e

let access ~id ~write ~site =
  match Atomic.get tracer with
  | None -> ()
  | Some f -> f (Access { id; write; site })

let seal ~id =
  match Atomic.get tracer with None -> () | Some f -> f (Seal { id })
