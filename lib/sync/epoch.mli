(** Epoch-based deferral of node reclamation.

    Optimistic readers may hold a pointer to a node that a concurrent
    merge has just unlinked; the version validation that follows rejects
    whatever they read from it, but the storage behind the node must not
    be handed to a new allocation while a reader is still inside it.
    Readers bracket each node visit with {!enter}/{!exit} on their own
    {!slot}; the single structural writer {!retire}s a reclamation
    closure, which runs only once every slot that was active at retire
    time has left its critical section.

    One writer, N readers.  [retire]/[flush] are writer-only;
    [enter]/[exit] are per-reader and touch only that reader's slot. *)

type t
type slot

val create : unit -> t

val register : t -> slot
(** A per-reader slot.  Callable from any domain (serialized
    internally); each slot is then used by exactly one reader domain. *)

val enter : slot -> unit
(** Pin the current epoch for a read-side critical section. *)

val exit : slot -> unit

val retire : ?obj:int -> t -> (unit -> unit) -> unit
(** Defer a reclamation to when all currently-active readers have left.
    Runs ripe closures opportunistically (writer-side).  [obj] names the
    retired object in {!Hook} events (a vlock id for sealed tree nodes;
    defaults to [-1] for anonymous closures). *)

val flush : t -> unit
(** Run every deferred closure whose epoch has quiesced; with no active
    readers this is all of them.  Writer-only, used at shutdown and in
    single-threaded phases (recovery, tests). *)

val pending : t -> int
(** Deferred closures not yet run (introspection for tests). *)

val force : t -> unit
(** Run {e every} deferred closure immediately, ignoring active pins.
    This deliberately violates the reclamation contract — it exists only
    as a fault-injection hook for sanitizer tests (rsan's premature-
    reclaim mutation) and must never be called on a live index. *)
