type t = { cell : int Atomic.t; id : int }

let create () = { cell = Atomic.make 0; id = Hook.fresh_id () }
let id t = t.id

let value t =
  let v = Atomic.get t.cell in
  if Hook.enabled () then Hook.emit (Vlock_value { id = t.id; v });
  v

let is_locked_v v = v land 1 = 1
let locked t = is_locked_v (Atomic.get t.cell)

(* Bounded: a node that is locked forever (merged away and retired) must
   bounce its readers back to routing instead of capturing them here. *)
let read_begin t =
  let rec go n =
    let v = Atomic.get t.cell in
    if v land 1 = 0 || n = 0 then v
    else begin
      Domain.cpu_relax ();
      go (n - 1)
    end
  in
  let v = go 64 in
  if Hook.enabled () then Hook.emit (Vlock_read_begin { id = t.id; v });
  v

let validate t v =
  let ok = Atomic.get t.cell = v in
  if Hook.enabled () then Hook.emit (Vlock_validate { id = t.id; v; ok });
  ok

(* Acquire events are emitted after the winning CAS: the emitter holds
   the lock, so no competing acquire can be announced in between and the
   per-lock event order matches the real acquisition order. *)
let try_lock t =
  let v = Atomic.get t.cell in
  let ok = v land 1 = 0 && Atomic.compare_and_set t.cell v (v + 1) in
  if Hook.enabled () then
    if ok then
      Hook.emit (Vlock_acquire { id = t.id; v = v + 1; optimistic = true })
    else Hook.emit (Vlock_contended { id = t.id; v });
  ok

let try_upgrade t v =
  let ok = v land 1 = 0 && Atomic.compare_and_set t.cell v (v + 1) in
  if Hook.enabled () then Hook.emit (Vlock_try_upgrade { id = t.id; v; ok });
  ok

let rec lock t =
  let v = Atomic.get t.cell in
  if v land 1 = 1 || not (Atomic.compare_and_set t.cell v (v + 1)) then begin
    Domain.cpu_relax ();
    lock t
  end
  else if Hook.enabled () then
    Hook.emit (Vlock_acquire { id = t.id; v = v + 1; optimistic = false })

(* The release event is emitted before the version store, while the lock
   is still held: it can never land after a successor's acquire event. *)
let unlock t =
  let v = Atomic.get t.cell in
  if v land 1 = 0 then begin
    if Hook.enabled () then
      Hook.emit (Vlock_release_unheld { id = t.id; v });
    invalid_arg "Sync.Vlock.unlock: lock not held"
  end;
  if Hook.enabled () then Hook.emit (Vlock_release { id = t.id; v = v + 1 });
  Atomic.set t.cell (v + 1)
