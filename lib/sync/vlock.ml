type t = int Atomic.t

let create () = Atomic.make 0
let value t = Atomic.get t
let is_locked_v v = v land 1 = 1
let locked t = is_locked_v (Atomic.get t)

(* Bounded: a node that is locked forever (merged away and retired) must
   bounce its readers back to routing instead of capturing them here. *)
let read_begin t =
  let rec go n =
    let v = Atomic.get t in
    if v land 1 = 0 || n = 0 then v
    else begin
      Domain.cpu_relax ();
      go (n - 1)
    end
  in
  go 64

let validate t v = Atomic.get t = v

let try_lock t =
  let v = Atomic.get t in
  v land 1 = 0 && Atomic.compare_and_set t v (v + 1)

let try_upgrade t v = v land 1 = 0 && Atomic.compare_and_set t v (v + 1)

let rec lock t =
  let v = Atomic.get t in
  if v land 1 = 1 || not (Atomic.compare_and_set t v (v + 1)) then begin
    Domain.cpu_relax ();
    lock t
  end

let unlock t =
  let v = Atomic.get t in
  assert (v land 1 = 1);
  Atomic.set t (v + 1)
