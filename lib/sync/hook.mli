(** Event hook for the synchronization primitives.

    The concurrency analogue of {!Pmem.Device.set_tracer}: every
    {!Vlock}, {!Sx} and {!Epoch} operation emits a protocol event when a
    tracer is installed, and costs one load + branch when none is — the
    hot read/write paths stay allocation- and branch-predictable with
    the hook off.  {!Rsan} consumes this stream to drive its vector-clock
    race detector and lock-discipline linter (DESIGN.md §14).

    Events may be emitted concurrently from many domains; a tracer must
    serialize internally.  Emission points are chosen so that the event
    order {e per lock} is consistent with the lock's real state
    transitions: acquisitions emit after the CAS (while the lock is
    held, so no later acquirer can overtake), releases emit before the
    version store, SX events emit inside the latch's mutex, and epoch
    pin events emit inside the pin window (enter after publishing,
    exit before clearing) so the tracer's view of pins is never wider
    than reality. *)

type sx_mode = S | SX | X

type event =
  | Vlock_acquire of { id : int; v : int; optimistic : bool }
      (** Writer acquired the lock ([v] odd, the post-CAS version).
          [optimistic] is true for [try_lock] — the OLC lock-then-validate
          route, which owes a fence check before its first write. *)
  | Vlock_release of { id : int; v : int }
      (** Writer released ([v] even, the post-store version). *)
  | Vlock_release_unheld of { id : int; v : int }
      (** [unlock] called on an even (unheld) version — emitted just
          before the [Invalid_argument] raise so a sanitizer can report
          the site even when the exception is swallowed. *)
  | Vlock_read_begin of { id : int; v : int }
  | Vlock_validate of { id : int; v : int; ok : bool }
  | Vlock_value of { id : int; v : int }
      (** Raw version snapshot ([value]) — the certification source for
          merge-style [try_upgrade]s, legitimate only under the lock. *)
  | Vlock_try_upgrade of { id : int; v : int; ok : bool }
      (** Validate-and-lock CAS against snapshot [v]. *)
  | Vlock_contended of { id : int; v : int }
      (** [try_lock] failed — the observed version [v] was odd (someone
          holds the lock) or the CAS lost a race.  Pure contention
          telemetry for profilers; creates no ordering edge. *)
  | Fence_check of { id : int; ok : bool }
      (** The under-lock fence-interval validation of an optimistically
          locked node (annotated by [Tree.writer_fence_ok]). *)
  | Sx_request of { id : int; mode : sx_mode }
      (** An acquirer entered the latch mutex and is about to wait for
          [mode]; paired with the [Sx_acquire] (or [Sx_upgrade]) that
          follows on the same domain, it bounds the wait span for
          contention profilers.  Emitted under the latch mutex, so the
          per-latch order request→acquire is exact. *)
  | Sx_acquire of { id : int; mode : sx_mode }
  | Sx_release of { id : int; mode : sx_mode }
  | Sx_upgrade of { id : int; readers : int }
      (** SX→X completed; [readers] is the S-holder count the latch saw
          at that instant (0 for a correct latch). *)
  | Sx_downgrade of { id : int }
  | Epoch_enter of { id : int; slot : int; epoch : int }
  | Epoch_exit of { id : int; slot : int }
  | Epoch_retire of { id : int; obj : int; epoch : int }
      (** A reclamation was deferred at [epoch]; [obj] is the retired
          object's identity (a vlock id for sealed tree nodes, [-1] when
          anonymous). *)
  | Epoch_reclaim of { id : int; obj : int; epoch : int }
      (** The deferred closure actually ran. *)
  | Access of { id : int; write : bool; site : string }
      (** An annotated protocol-point access to the data guarded by
          vlock [id] (emitted by the tree, not by this library). *)
  | Seal of { id : int }
      (** The node guarded by vlock [id] was merged away: its version
          stays odd forever and readers must bounce off it. *)

val fresh_id : unit -> int
(** Process-unique ids for locks, latches, epoch domains and slots. *)

val set_tracer : (event -> unit) option -> unit
(** Install (or remove) the global tracer.  Install before spawning the
    domains whose events you want; the slot is a single atomic, so a
    mid-run swap is safe but may miss in-flight emissions. *)

val add_tracer : (event -> unit) -> unit
(** Fan-out composition, the analogue of {!Pmem.Device.add_tracer}: run
    [f] {e after} any tracer already installed.  This is how the
    contention profiler observes the same stream as [rsan] without
    clobbering it.  Not atomic with respect to a concurrent
    [set_tracer]; compose from the orchestrating thread before the
    traffic of interest. *)

val tracer_installed : unit -> bool

val enabled : unit -> bool
(** One atomic load; the guard instrumentation sites use before
    constructing an event. *)

val emit : event -> unit
(** Deliver to the tracer if one is installed (no-op otherwise). *)

val access : id:int -> write:bool -> site:string -> unit
(** [emit (Access ...)] behind an {!enabled} check — the annotation
    entry point for code layered above [sync]. *)

val seal : id:int -> unit
