type t = {
  global : int Atomic.t;
  reg : Mutex.t;  (* guards [slots] against concurrent registration *)
  mutable slots : int Atomic.t list;
  mutable retired : (int * (unit -> unit)) list;
      (* (epoch at retire time, closure); writer-only *)
}

type slot = { cell : int Atomic.t; owner : t }

let create () =
  { global = Atomic.make 1; reg = Mutex.create (); slots = []; retired = [] }

let register t =
  let cell = Atomic.make 0 in
  Mutex.lock t.reg;
  t.slots <- cell :: t.slots;
  Mutex.unlock t.reg;
  { cell; owner = t }

(* Store-then-recheck: publishing the pinned epoch must be visible before
   the reader trusts it, otherwise a concurrent retire+collect can slip
   between the read of [global] and the store of the pin. *)
let enter s =
  let rec go () =
    let g = Atomic.get s.owner.global in
    Atomic.set s.cell g;
    if Atomic.get s.owner.global <> g then go ()
  in
  go ()

let exit s = Atomic.set s.cell 0

(* Smallest epoch any reader currently pins, or [max_int] when idle. *)
let min_active t =
  Mutex.lock t.reg;
  let m =
    List.fold_left
      (fun acc cell ->
        let v = Atomic.get cell in
        if v > 0 && v < acc then v else acc)
      max_int t.slots
  in
  Mutex.unlock t.reg;
  m

let collect t =
  let m = min_active t in
  let ripe, rest = List.partition (fun (e, _) -> e < m) t.retired in
  t.retired <- rest;
  List.iter (fun (_, f) -> f ()) ripe

let retire t f =
  let e = Atomic.get t.global in
  t.retired <- (e, f) :: t.retired;
  Atomic.set t.global (e + 1);
  collect t

let flush t = collect t
let pending t = List.length t.retired
