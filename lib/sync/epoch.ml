type t = {
  global : int Atomic.t;
  reg : Mutex.t;  (* guards [slots] against concurrent registration *)
  mutable slots : int Atomic.t list;
  mutable retired : (int * (unit -> unit)) list;
      (* (epoch at retire time, closure); writer-only *)
  id : int;
}

type slot = { cell : int Atomic.t; owner : t; sid : int }

let create () =
  {
    global = Atomic.make 1;
    reg = Mutex.create ();
    slots = [];
    retired = [];
    id = Hook.fresh_id ();
  }

let register t =
  let cell = Atomic.make 0 in
  Mutex.lock t.reg;
  t.slots <- cell :: t.slots;
  Mutex.unlock t.reg;
  { cell; owner = t; sid = Hook.fresh_id () }

(* Store-then-recheck: publishing the pinned epoch must be visible before
   the reader trusts it, otherwise a concurrent retire+collect can slip
   between the read of [global] and the store of the pin.  The enter
   event is emitted only once the pin is published and validated, and the
   exit event before the pin is cleared, so a tracer's view of the pin
   window is always contained in the real one. *)
let enter s =
  let rec go () =
    let g = Atomic.get s.owner.global in
    Atomic.set s.cell g;
    if Atomic.get s.owner.global <> g then go () else g
  in
  let g = go () in
  if Hook.enabled () then
    Hook.emit (Epoch_enter { id = s.owner.id; slot = s.sid; epoch = g })

let exit s =
  if Hook.enabled () then
    Hook.emit (Epoch_exit { id = s.owner.id; slot = s.sid });
  Atomic.set s.cell 0

(* Smallest epoch any reader currently pins, or [max_int] when idle. *)
let min_active t =
  Mutex.lock t.reg;
  let m =
    List.fold_left
      (fun acc cell ->
        let v = Atomic.get cell in
        if v > 0 && v < acc then v else acc)
      max_int t.slots
  in
  Mutex.unlock t.reg;
  m

let collect t =
  let m = min_active t in
  let ripe, rest = List.partition (fun (e, _) -> e < m) t.retired in
  t.retired <- rest;
  List.iter (fun (_, f) -> f ()) ripe

let retire ?(obj = -1) t f =
  let e = Atomic.get t.global in
  let f =
    if Hook.tracer_installed () then (fun () ->
      if Hook.enabled () then
        Hook.emit (Epoch_reclaim { id = t.id; obj; epoch = e });
      f ())
    else f
  in
  if Hook.enabled () then Hook.emit (Epoch_retire { id = t.id; obj; epoch = e });
  t.retired <- (e, f) :: t.retired;
  Atomic.set t.global (e + 1);
  collect t

let flush t = collect t
let pending t = List.length t.retired

let force t =
  let r = t.retired in
  t.retired <- [];
  List.iter (fun (_, f) -> f ()) (List.rev r)
