type mode = S | SX | X

type t = {
  m : Mutex.t;
  c : Condition.t;
  mutable readers : int;  (* S holders *)
  mutable sx : bool;  (* one SX holder at most *)
  mutable x : bool;  (* exclusive holder *)
  upgrading : bool Atomic.t;
      (* SX holder wants X: new S acquisitions stall so the upgrade
         cannot be starved by a steady reader stream *)
  id : int;
}

let create () =
  {
    m = Mutex.create ();
    c = Condition.create ();
    readers = 0;
    sx = false;
    x = false;
    upgrading = Atomic.make false;
    id = Hook.fresh_id ();
  }

let id t = t.id
let hmode = function S -> Hook.S | SX -> Hook.SX | X -> Hook.X

(* All events are emitted while [t.m] is held, so the event order per
   latch is exactly the order of its state transitions. *)

let acquire t mode =
  Mutex.lock t.m;
  if Hook.enabled () then
    Hook.emit (Sx_request { id = t.id; mode = hmode mode });
  (match mode with
  | S ->
    while t.x || Atomic.get t.upgrading do
      Condition.wait t.c t.m
    done;
    t.readers <- t.readers + 1
  | SX ->
    while t.x || t.sx do
      Condition.wait t.c t.m
    done;
    t.sx <- true
  | X ->
    while t.x || t.sx || t.readers > 0 do
      Condition.wait t.c t.m
    done;
    t.x <- true);
  if Hook.enabled () then
    Hook.emit (Sx_acquire { id = t.id; mode = hmode mode });
  Mutex.unlock t.m

let release t mode =
  Mutex.lock t.m;
  (match mode with
  | S ->
    assert (t.readers > 0);
    t.readers <- t.readers - 1
  | SX ->
    assert t.sx;
    t.sx <- false
  | X ->
    assert t.x;
    t.x <- false);
  if Hook.enabled () then
    Hook.emit (Sx_release { id = t.id; mode = hmode mode });
  Condition.broadcast t.c;
  Mutex.unlock t.m

let upgrade t =
  Atomic.set t.upgrading true;
  Mutex.lock t.m;
  assert (t.sx && not t.x);
  if Hook.enabled () then Hook.emit (Sx_request { id = t.id; mode = Hook.X });
  while t.readers > 0 do
    Condition.wait t.c t.m
  done;
  if Hook.enabled () then
    Hook.emit (Sx_upgrade { id = t.id; readers = t.readers });
  t.sx <- false;
  t.x <- true;
  Atomic.set t.upgrading false;
  Mutex.unlock t.m

let downgrade t =
  Mutex.lock t.m;
  assert (t.x && not t.sx);
  t.x <- false;
  t.sx <- true;
  if Hook.enabled () then Hook.emit (Sx_downgrade { id = t.id });
  Condition.broadcast t.c;
  Mutex.unlock t.m

let with_mode t mode f =
  acquire t mode;
  Fun.protect ~finally:(fun () -> release t mode) f
