type mode = S | SX | X

type t = {
  m : Mutex.t;
  c : Condition.t;
  mutable readers : int;  (* S holders *)
  mutable sx : bool;  (* one SX holder at most *)
  mutable x : bool;  (* exclusive holder *)
  upgrading : bool Atomic.t;
      (* SX holder wants X: new S acquisitions stall so the upgrade
         cannot be starved by a steady reader stream *)
}

let create () =
  {
    m = Mutex.create ();
    c = Condition.create ();
    readers = 0;
    sx = false;
    x = false;
    upgrading = Atomic.make false;
  }

let acquire t mode =
  Mutex.lock t.m;
  (match mode with
  | S ->
    while t.x || Atomic.get t.upgrading do
      Condition.wait t.c t.m
    done;
    t.readers <- t.readers + 1
  | SX ->
    while t.x || t.sx do
      Condition.wait t.c t.m
    done;
    t.sx <- true
  | X ->
    while t.x || t.sx || t.readers > 0 do
      Condition.wait t.c t.m
    done;
    t.x <- true);
  Mutex.unlock t.m

let release t mode =
  Mutex.lock t.m;
  (match mode with
  | S ->
    assert (t.readers > 0);
    t.readers <- t.readers - 1
  | SX ->
    assert t.sx;
    t.sx <- false
  | X ->
    assert t.x;
    t.x <- false);
  Condition.broadcast t.c;
  Mutex.unlock t.m

let upgrade t =
  Atomic.set t.upgrading true;
  Mutex.lock t.m;
  assert (t.sx && not t.x);
  while t.readers > 0 do
    Condition.wait t.c t.m
  done;
  t.sx <- false;
  t.x <- true;
  Atomic.set t.upgrading false;
  Mutex.unlock t.m

let downgrade t =
  Mutex.lock t.m;
  assert (t.x && not t.sx);
  t.x <- false;
  t.sx <- true;
  Condition.broadcast t.c;
  Mutex.unlock t.m

let with_mode t mode f =
  acquire t mode;
  Fun.protect ~finally:(fun () -> release t mode) f
