(** Clocks for measured (not modeled) throughput.

    Exposed through {!Shard.Clock}. *)

val thread_cpu_ns : unit -> int64
(** CPU time consumed by the calling thread (Linux
    [CLOCK_THREAD_CPUTIME_ID]).  Unlike wall-clock time this excludes the
    intervals in which the OS ran someone else, so per-shard busy time —
    and the critical-path throughput derived from it — is accurate even
    when worker domains outnumber host cores. *)

val monotonic_ns : unit -> int64
(** Monotonic wall clock ([CLOCK_MONOTONIC]); the basis of the measured
    wall-clock Mop/s columns. *)
