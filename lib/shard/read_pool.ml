module Clock = Shard_clock
module Queue = Shard_queue
module I = Baselines.Index_intf
module S = Pmem.Stats
module Y = Workload.Ycsb

type reply = { m : Mutex.t; c : Condition.t; mutable ready : bool }

let reply () = { m = Mutex.create (); c = Condition.create (); ready = false }

let signal r =
  Mutex.lock r.m;
  r.ready <- true;
  Condition.signal r.c;
  Mutex.unlock r.m

let await r =
  Mutex.lock r.m;
  while not r.ready do
    Condition.wait r.c r.m
  done;
  Mutex.unlock r.m

type job = Run of Y.op array * reply | Stop

type rworker = {
  q : job Queue.t;
  applied : int Atomic.t;
  busy_ns : int Atomic.t;
  (* written by the reader domain just before it exits; the router reads
     them only after [Domain.join], which establishes happens-before *)
  mutable fin_stats : S.t option;
  mutable fin_counters : (string * int) list;
  mutable fin_retries : int;
  mutable pending : reply option;  (* router-side, one job in flight *)
  mutable domain : unit Domain.t option;
}

type t = { rworkers : rworker array; mutable live : bool }

let exec (rops : I.reader_ops) w op =
  match op with
  | Y.Read k ->
    ignore (rops.I.r_search k : int64 option);
    Atomic.incr w.applied
  | Y.Scan (k, len) ->
    ignore (rops.I.r_scan ~start:k len : (int64 * int64) array);
    Atomic.incr w.applied
  | Y.Insert _ -> ()
(* read-only pool: the caller routes mutations to the writer *)

(* The handle is minted on this domain, so every private structure it
   owns (device read view, counters, epoch slot) is domain-local from
   birth.  Profiler lanes attach here, after mint, from their owning
   domain (see {!Write_pool.writer_loop}). *)
let reader_loop ?prof mint w =
  let rops : I.reader_ops = mint () in
  (match prof with
  | Some ln -> Obs.Prof.attach_device ln (rops.I.r_dev ())
  | None -> ());
  let continue = ref true in
  while !continue do
    match Queue.pop w.q with
    | Stop ->
      w.fin_stats <- Some (rops.I.r_dev_stats ());
      w.fin_counters <- rops.I.r_counters ();
      w.fin_retries <- rops.I.r_retries ();
      continue := false
    | Run (ops, r) ->
      let t0 = Clock.thread_cpu_ns () in
      Array.iter (exec rops w) ops;
      Atomic.set w.busy_ns
        (Atomic.get w.busy_ns
        + Int64.to_int (Int64.sub (Clock.thread_cpu_ns ()) t0));
      signal r
  done

let create ?profiler ?(tid_base = 1) mint ~readers =
  if readers < 1 then invalid_arg "Read_pool.create: readers < 1";
  let rworkers =
    Array.init readers (fun _ ->
        {
          q = Queue.create ~capacity:4;
          applied = Atomic.make 0;
          busy_ns = Atomic.make 0;
          fin_stats = None;
          fin_counters = [];
          fin_retries = 0;
          pending = None;
          domain = None;
        })
  in
  Array.iteri
    (fun i w ->
      let prof =
        Option.map (fun p -> Obs.Prof.lane p ~tid:(tid_base + i)) profiler
      in
      w.domain <- Some (Domain.spawn (fun () -> reader_loop ?prof mint w)))
    rworkers;
  { rworkers; live = true }

let readers t = Array.length t.rworkers

(* Deal [ops] round-robin so every reader gets an equally mixed slice —
   a contiguous split would give hot-range prefixes to one reader. *)
let split ops n =
  let total = Array.length ops in
  List.init n (fun r ->
      let cnt = (total - r + n - 1) / n in
      Array.init cnt (fun j -> ops.((j * n) + r)))

let run_async t ops =
  if not t.live then invalid_arg "Read_pool.run_async: pool is shut down";
  Array.iter
    (fun w ->
      if w.pending <> None then
        invalid_arg "Read_pool.run_async: previous run not joined")
    t.rworkers;
  List.iteri
    (fun rid slice ->
      let w = t.rworkers.(rid) in
      let r = reply () in
      w.pending <- Some r;
      Queue.push w.q (Run (slice, r)))
    (split ops (readers t))

let join t =
  Array.iter
    (fun w ->
      match w.pending with
      | Some r ->
        await r;
        w.pending <- None
      | None -> ())
    t.rworkers

let run t ops =
  run_async t ops;
  join t

let shutdown t =
  if t.live then begin
    join t;
    Array.iter (fun w -> Queue.push w.q Stop) t.rworkers;
    Array.iter
      (fun w ->
        match w.domain with
        | Some d ->
          Domain.join d;
          w.domain <- None
        | None -> ())
      t.rworkers;
    t.live <- false
  end

let applied t = Array.map (fun w -> Atomic.get w.applied) t.rworkers
let busy_ns t = Array.map (fun w -> Atomic.get w.busy_ns) t.rworkers

let ensure_down name t =
  if t.live then
    invalid_arg (name ^ ": reader counters are only stable after shutdown")

let dev_stats t =
  ensure_down "Read_pool.dev_stats" t;
  S.merge_all
    (Array.to_list
       (Array.map
          (fun w ->
            match w.fin_stats with Some s -> s | None -> S.create ())
          t.rworkers))

let counters t =
  ensure_down "Read_pool.counters" t;
  Array.to_list (Array.map (fun w -> w.fin_counters) t.rworkers)

let retries t =
  ensure_down "Read_pool.retries" t;
  Array.fold_left (fun acc w -> acc + w.fin_retries) 0 t.rworkers
