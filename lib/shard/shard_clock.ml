external thread_cpu_ns : unit -> int64 = "ccl_shard_thread_cputime_ns"
external monotonic_ns : unit -> int64 = "ccl_shard_monotonic_ns"
