(** Bounded blocking MPSC queue (exposed through {!Shard.Queue}).

    Clients (any number of domains) [push] command batches; exactly one
    worker domain [pop]s them.  Both ends block — a full queue applies
    back-pressure to producers instead of growing without bound, an empty
    queue parks the worker.  Batching at the caller keeps the mutex out of
    the per-operation hot path. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val push : 'a t -> 'a -> unit
(** Blocks while the queue is full. *)

val pop : 'a t -> 'a
(** Blocks while the queue is empty. *)

val length : 'a t -> int
val clear : 'a t -> unit
(** Drop every queued element (crash path: unconsumed batches are exactly
    the unacknowledged operations a power failure loses). *)
