module Clock = Shard_clock
module Queue = Shard_queue
module I = Baselines.Index_intf
module S = Pmem.Stats
module Y = Workload.Ycsb

type reply = { m : Mutex.t; c : Condition.t; mutable ready : bool }

let reply () = { m = Mutex.create (); c = Condition.create (); ready = false }

let signal r =
  Mutex.lock r.m;
  r.ready <- true;
  Condition.signal r.c;
  Mutex.unlock r.m

let await r =
  Mutex.lock r.m;
  while not r.ready do
    Condition.wait r.c r.m
  done;
  Mutex.unlock r.m

type job = Run of Y.op array * reply | Stop

type wworker = {
  q : job Queue.t;
  applied : int Atomic.t;
  busy_ns : int Atomic.t;
  crashed : bool Atomic.t;
      (* hit Power_failure on its private view; drops further mutations *)
  (* written by the writer domain just before it exits; the router reads
     them only after [Domain.join], which establishes happens-before *)
  mutable fin_stats : S.t option;
  mutable fin_counters : (string * int) list;
  mutable fin_retries : int;
  mutable pending : reply option;  (* router-side, one job in flight *)
  mutable domain : unit Domain.t option;
}

type t = { wworkers : wworker array; mutable live : bool }

let exec (wops : I.writer_ops) w op =
  match op with
  | Y.Insert (k, v) ->
    if Int64.equal v 0L then wops.I.w_delete k else wops.I.w_upsert k v;
    Atomic.incr w.applied
  | Y.Read _ | Y.Scan _ -> ()
(* write-only pool: the caller routes reads to a reader pool *)

(* The handle is minted on this domain, so every private structure it
   owns (device write view, WAL lane, counters) is domain-local from
   birth.  The profiler lane (created on the router, before spawn)
   attaches here too: the handle's private device view only exists after
   [mint], and attaching from its owning domain binds sync-event routing
   to it. *)
let writer_loop ?prof mint w =
  let wops : I.writer_ops = mint () in
  (match prof with
  | Some ln -> Obs.Prof.attach_device ln (wops.I.w_dev ())
  | None -> ());
  let continue = ref true in
  while !continue do
    match Queue.pop w.q with
    | Stop ->
      w.fin_stats <- Some (wops.I.w_dev_stats ());
      w.fin_counters <- wops.I.w_counters ();
      w.fin_retries <- wops.I.w_retries ();
      continue := false
    | Run (ops, r) ->
      let t0 = Clock.thread_cpu_ns () in
      (if not (Atomic.get w.crashed) then
         try Array.iter (exec wops w) ops
         with Pmem.Device.Power_failure -> Atomic.set w.crashed true);
      Atomic.set w.busy_ns
        (Atomic.get w.busy_ns
        + Int64.to_int (Int64.sub (Clock.thread_cpu_ns ()) t0));
      signal r
  done

let create ?profiler ?(tid_base = 1) mint ~writers =
  if writers < 1 then invalid_arg "Write_pool.create: writers < 1";
  let wworkers =
    Array.init writers (fun _ ->
        {
          q = Queue.create ~capacity:4;
          applied = Atomic.make 0;
          busy_ns = Atomic.make 0;
          crashed = Atomic.make false;
          fin_stats = None;
          fin_counters = [];
          fin_retries = 0;
          pending = None;
          domain = None;
        })
  in
  Array.iteri
    (fun i w ->
      (* lane registered on this (router) domain, before the spawn *)
      let prof =
        Option.map (fun p -> Obs.Prof.lane p ~tid:(tid_base + i)) profiler
      in
      w.domain <- Some (Domain.spawn (fun () -> writer_loop ?prof mint w)))
    wworkers;
  { wworkers; live = true }

let writers t = Array.length t.wworkers

(* Deal [ops] round-robin so every writer lane gets an equally mixed
   slice — a contiguous split would give hot-range prefixes to one
   lane.  Per-key ordering across lanes is the tree's own OLC
   serialization (timestamp order agrees with lock order per node). *)
let split ops n =
  let total = Array.length ops in
  List.init n (fun r ->
      let cnt = (total - r + n - 1) / n in
      Array.init cnt (fun j -> ops.((j * n) + r)))

let run_async t ops =
  if not t.live then invalid_arg "Write_pool.run_async: pool is shut down";
  Array.iter
    (fun w ->
      if w.pending <> None then
        invalid_arg "Write_pool.run_async: previous run not joined")
    t.wworkers;
  List.iteri
    (fun wid slice ->
      let w = t.wworkers.(wid) in
      let r = reply () in
      w.pending <- Some r;
      Queue.push w.q (Run (slice, r)))
    (split ops (writers t))

let join t =
  Array.iter
    (fun w ->
      match w.pending with
      | Some r ->
        await r;
        w.pending <- None
      | None -> ())
    t.wworkers

let run t ops =
  run_async t ops;
  join t

let shutdown t =
  if t.live then begin
    join t;
    Array.iter (fun w -> Queue.push w.q Stop) t.wworkers;
    Array.iter
      (fun w ->
        match w.domain with
        | Some d ->
          Domain.join d;
          w.domain <- None
        | None -> ())
      t.wworkers;
    t.live <- false
  end

let applied t = Array.map (fun w -> Atomic.get w.applied) t.wworkers
let busy_ns t = Array.map (fun w -> Atomic.get w.busy_ns) t.wworkers
let crashed t = Array.map (fun w -> Atomic.get w.crashed) t.wworkers

let ensure_down name t =
  if t.live then
    invalid_arg (name ^ ": writer counters are only stable after shutdown")

let dev_stats t =
  ensure_down "Write_pool.dev_stats" t;
  S.merge_all
    (Array.to_list
       (Array.map
          (fun w ->
            match w.fin_stats with Some s -> s | None -> S.create ())
          t.wworkers))

let counters t =
  ensure_down "Write_pool.counters" t;
  Array.to_list (Array.map (fun w -> w.fin_counters) t.wworkers)

let retries t =
  ensure_down "Write_pool.retries" t;
  Array.fold_left (fun acc w -> acc + w.fin_retries) 0 t.wworkers
