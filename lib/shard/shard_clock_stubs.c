/* Per-thread CPU clock for the sharded execution layer.

   CLOCK_THREAD_CPUTIME_ID charges a worker domain only for the cycles it
   actually executed, so per-shard service time stays meaningful even when
   the host oversubscribes cores (CI containers, shared machines).  On
   platforms without it we degrade to CLOCK_MONOTONIC, which is identical
   whenever each domain has a core to itself. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>
#include <stdint.h>

static value ns_of(struct timespec ts)
{
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + ts.tv_nsec);
}

CAMLprim value ccl_shard_thread_cputime_ns(value unit)
{
  struct timespec ts;
#ifdef CLOCK_THREAD_CPUTIME_ID
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
#else
  clock_gettime(CLOCK_MONOTONIC, &ts);
#endif
  (void)unit;
  return ns_of(ts);
}

CAMLprim value ccl_shard_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  (void)unit;
  return ns_of(ts);
}
