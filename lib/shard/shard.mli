(** Keyspace-partitioned, domain-parallel execution layer.

    Each of N shards owns a {e private} simulated PM device and index
    instance, pinned to its own [Domain] and fed by a bounded MPSC batch
    queue ({!Queue}).  A router on the client side hash- or
    range-partitions keys and batches operations per shard, so queue
    traffic is amortized over [config.batch] operations.  This is the
    shard-per-core structure FPTree and DPTree use to scale PM indexes:
    no locks on the tree itself, because no two domains ever touch the
    same device or node.

    {b Ownership discipline (why this is data-race free).}  A shard's
    device and driver are created by the client (inside [make]), handed to
    the worker domain at spawn, and from then on mutated {e only} by that
    worker.  The client touches them again only in quiescent windows —
    after {!flush}/{!flush_all} (a barrier round-trip through every
    queue, which establishes happens-before) or after {!crash}/{!shutdown}
    (a [Domain.join]).  There is no cross-domain [Bytes] aliasing outside
    those windows.

    {b Acknowledgement contract.}  {!upsert}/{!delete}/{!run} are
    asynchronous: they return once the operation is routed, not once it is
    applied.  An operation is {e acknowledged} when a subsequent {!flush}
    returns (and durable per the underlying index's contract once applied).
    A {!crash} before the flush may lose routed-but-unapplied operations —
    exactly the semantics of a power failure taking down server threads
    with requests still in their inbound queues.

    The router itself ([upsert]/[delete]/[search]/[scan]/[run]/[flush])
    must be driven by one client domain at a time; the queues below it are
    MPSC, so additional client domains can be added by giving each its own
    router (one [t] per client over shared devices is {e not} supported —
    create one [t] and funnel through it). *)

module Clock = Shard_clock
module Queue = Shard_queue

type partition =
  | Hash  (** Mixing hash of the key; balances any stream. *)
  | Range of { lo : int64; hi : int64 }
      (** Contiguous key ranges over [\[lo, hi\]]; preserves scan locality
          (a short scan usually touches one shard). *)

type config = {
  shards : int;  (** Worker domains (and devices, and index instances). *)
  partition : partition;
  queue_depth : int;  (** Bounded queue capacity, in batches. *)
  batch : int;  (** Router-side operations per batch. *)
}

val default_config : config
(** 4 shards, hash partitioning, 64-batch queues, 256-op batches. *)

type t

val create :
  ?config:config ->
  ?recorder:Obs.Recorder.t ->
  ?profiler:Obs.Prof.t ->
  make:(int -> Pmem.Device.t * Baselines.Index_intf.driver) ->
  unit ->
  t
(** [create ~make ()] builds [config.shards] shards; [make i] supplies
    shard [i]'s private device and index driver.  Worker domains start
    immediately.

    [recorder] attaches the observability layer: each worker gets its own
    {!Obs.Recorder.worker} lane (tid [i + 1], registered before the
    domains spawn so recording is race-free) with per-op latency
    histograms, a device time-series sampler, and — when tracing — B/E
    spans from the device's protocol markers plus per-batch busy-period
    spans; the router records queue pushes on lane 0.

    [profiler] attaches an {!Obs.Prof} lane per worker (tid [i + 1],
    composing with the recorder's device tracer): per-site WA attribution
    on each shard device, plus shard-queue residency (enqueue → dequeue →
    applied) — the router stamps each batch at enqueue only when a
    profiler is present, so the unprofiled hot path reads no clock. *)

val config : t -> config
val shards : t -> int

val shard_of : t -> int64 -> int
(** The shard a key routes to. *)

val new_reader : t -> int -> (unit -> Baselines.Index_intf.reader_ops) option
(** Shard [i]'s concurrent-reader factory, when its driver has one.
    Mint handles from the domain that will use them (see {!Read_pool},
    which does exactly that). *)

val new_writer : t -> int -> (unit -> Baselines.Index_intf.writer_ops) option
(** Shard [i]'s concurrent-writer factory, when its driver has one.
    Mint handles from the domain that will use them (see {!Write_pool}). *)

module Read_pool = Read_pool
module Write_pool = Write_pool

val reader_pool :
  ?profiler:Obs.Prof.t ->
  ?tid_base:int ->
  t ->
  shard:int ->
  readers:int ->
  Read_pool.t
(** Attach [readers] read-only domains to shard [shard]'s index; reads
    then run concurrently with that shard's writer domain.
    @raise Invalid_argument if the driver has no concurrent read path. *)

val writer_pool :
  ?profiler:Obs.Prof.t ->
  ?tid_base:int ->
  t ->
  shard:int ->
  writers:int ->
  Write_pool.t
(** Attach [writers] writer domains to shard [shard]'s index (optimistic
    lock coupling inside the tree; see DESIGN.md §13).  While the pool is
    live, do not route mutations to that shard through the router — the
    shard worker's in-tree write path is the zero-handle fast path, not a
    peer lane.  Reads (router or {!Read_pool}) stay safe throughout.
    @raise Invalid_argument if the driver has no concurrent write path. *)

(** {1 Asynchronous operations (routed, batched)} *)

val upsert : t -> int64 -> int64 -> unit
val delete : t -> int64 -> unit

val run : t -> Workload.Ycsb.op array -> unit
(** Route a YCSB stream: inserts and deletes (value [0L]) go to their
    shard; reads execute on their shard with the result discarded; scans
    scatter to every shard for [len/shards] entries each (the per-shard
    share of a gathered merge).  This is the measured-throughput path —
    call {!flush} afterwards to quiesce before reading clocks or stats. *)

(** {1 Synchronous operations} *)

val search : t -> int64 -> int64 option
(** Routed to the owning shard after flushing its pending batch, so every
    earlier asynchronous operation on the same key is visible. *)

val scan : t -> start:int64 -> int -> (int64 * int64) array
(** Scatter-gather: every shard returns up to [n] entries [>= start];
    the client merges them and keeps the [n] smallest. *)

val entries : t -> (int64 * int64) array
(** Every live entry across all shards, key-sorted (chunked per-shard
    scans, merged).  Quiesces first. *)

val iter : t -> (int64 -> int64 -> unit) -> unit
(** [iter t f] applies [f] to {!entries} in key order. *)

(** {1 Quiescing} *)

val flush : t -> unit
(** Push partial router batches and wait until every shard has applied
    everything queued (barrier per shard). *)

val flush_all : t -> unit
(** {!flush}, then the driver's [flush_all] on every shard (end-of-run
    accounting: volatile buffers reach PM). *)

val drain : t -> unit
(** {!flush_all}, then {!Pmem.Device.drain} on every shard's device. *)

val shutdown : t -> unit
(** {!flush} and stop the worker domains.  The structure can be restarted
    by {!recover} (with a rebuild function) if needed; normal users call
    this once at the end. *)

(** {1 Measurement} *)

val stats_per_shard : t -> Pmem.Stats.t array
(** Per-shard device counter snapshots.  Only exact in a quiescent
    window; callers flush first. *)

val stats : t -> Pmem.Stats.t
(** {!Pmem.Stats.merge} of all shards' counters. *)

val applied : t -> int array
(** Operations each worker has applied since the last reset. *)

val busy_ns : t -> int array
(** Thread-CPU nanoseconds each worker spent processing commands since
    the last reset ({!Clock.thread_cpu_ns}).  [total_ops /. max busy_ns]
    is the measured critical-path (service) throughput: what the shard
    fleet sustains when every domain has a core — see DESIGN.md §8. *)

val reset_counters : t -> unit
(** Quiesce, then zero {!applied} and {!busy_ns} (start of a measured
    phase, after warmup). *)

(** {1 Crash injection and recovery} *)

val plan_failure : t -> shard:int -> after_fences:int -> unit
(** Arm {!Pmem.Device.plan_failure} on one shard, through its queue (the
    device is worker-owned; the client must not touch it directly).  When
    the failure fires, that worker discards the rest of its stream and
    marks itself crashed; other shards keep running. *)

val crashed : t -> bool array

val crash : t -> unit
(** Power failure across the fleet: stop every worker immediately
    (queued-but-unapplied batches are dropped — they were never
    acknowledged), then {!Pmem.Device.crash} every shard's device. *)

val recover : t -> (int -> Pmem.Device.t -> Baselines.Index_intf.driver) -> unit
(** Rebuild each shard's driver from its (crashed) device — e.g.
    [Tree.recover] behind the driver interface — clear crash flags,
    restart the worker domains, and reset the router. *)

(** {1 Worker-owned state, for tests and experiments} *)

val device : t -> int -> Pmem.Device.t
(** Shard [i]'s device.  Only safe to use in quiescent windows (after
    {!flush}, {!crash} or {!shutdown}). *)
