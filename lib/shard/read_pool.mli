(** Read-only domain pool over one shard's index (intra-shard read
    parallelism, DESIGN.md §12).

    A {!Shard.t} worker domain owns its tree exclusively for mutations;
    this pool attaches [readers] extra domains to one shard, each holding
    a private {!Baselines.Index_intf.reader_ops} handle (optimistic
    version-validated searches/scans over a device read view).  Reads run
    {e concurrently with the writer} — no flush or barrier is needed
    between routing writes to the shard and running a read storm here.

    Each handle is minted on its own domain, so the per-reader device
    view, counters and epoch slot are domain-local from birth.  Counter
    accessors that read domain-private state ({!dev_stats}, {!counters},
    {!retries}) are only available after {!shutdown}, whose [Domain.join]
    makes them stable; {!applied}/{!busy_ns} are atomics and can be read
    live. *)

type t

val create :
  ?profiler:Obs.Prof.t ->
  ?tid_base:int ->
  (unit -> Baselines.Index_intf.reader_ops) ->
  readers:int ->
  t
(** [create mint ~readers] spawns [readers] reader domains, each minting
    its own handle with [mint].  Use [Shard.reader_pool] to build one
    over a shard's driver.  [profiler] registers an {!Obs.Prof} lane per
    reader (tid [tid_base + i], default base 1), attached to each
    handle's private device view on its worker domain after mint.
    @raise Invalid_argument if [readers < 1]. *)

val readers : t -> int

val run : t -> Workload.Ycsb.op array -> unit
(** Execute the read/scan operations of [ops], dealt round-robin across
    the reader domains; write operations in the array are ignored (route
    them to the shard's writer).  Returns when every reader finished its
    slice. *)

val run_async : t -> Workload.Ycsb.op array -> unit
(** Like {!run} but returns as soon as the slices are enqueued, so the
    caller can drive the shard's writer concurrently.  Exactly one
    outstanding run per pool; complete it with {!join}. *)

val join : t -> unit
(** Wait for an outstanding {!run_async} (no-op without one). *)

val shutdown : t -> unit
(** Join outstanding work, stop and join every reader domain, and latch
    their final counters. *)

val applied : t -> int array
(** Operations completed per reader (live). *)

val busy_ns : t -> int array
(** Per-reader CPU time spent executing slices (live). *)

val dev_stats : t -> Pmem.Stats.t
(** Merged device counters of all reader views (after {!shutdown}). *)

val counters : t -> (string * int) list list
(** Per-reader index counters (after {!shutdown}). *)

val retries : t -> int
(** Total optimistic-validation retries (after {!shutdown}). *)
