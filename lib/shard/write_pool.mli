(** Concurrent-writer domain pool over one shard's index (intra-shard
    write parallelism, DESIGN.md §13).

    Mirror image of {!Read_pool}: this pool attaches [writers] extra
    domains to one shard, each holding a private
    {!Baselines.Index_intf.writer_ops} handle (optimistic lock coupling
    over a device write view and a private WAL lane).  Writes run
    concurrently with each other {e and} with a {!Read_pool} on the same
    shard; only the shard worker's own mutation path must stay quiet
    while a writer pool is live (it is the zero-handle fast path, not a
    peer lane).

    Each handle is minted on its own domain, so the per-writer device
    view, WAL lane and counters are domain-local from birth.  Counter
    accessors that read domain-private state ({!dev_stats}, {!counters},
    {!retries}) are only available after {!shutdown}; {!applied},
    {!busy_ns} and {!crashed} are atomics and can be read live. *)

type t

val create :
  ?profiler:Obs.Prof.t ->
  ?tid_base:int ->
  (unit -> Baselines.Index_intf.writer_ops) ->
  writers:int ->
  t
(** [create mint ~writers] spawns [writers] writer domains, each minting
    its own handle with [mint].  Use [Shard.writer_pool] to build one
    over a shard's driver.  [profiler] registers an {!Obs.Prof} lane per
    writer (tid [tid_base + i], default base 1; lanes are created on the
    calling domain, attached to each handle's private device view on its
    worker domain after mint).  @raise Invalid_argument if
    [writers < 1]. *)

val writers : t -> int

val run : t -> Workload.Ycsb.op array -> unit
(** Execute the insert/delete operations of [ops], dealt round-robin
    across the writer domains; read/scan operations in the array are
    ignored (route them to a reader pool).  Returns when every writer
    finished its slice. *)

val run_async : t -> Workload.Ycsb.op array -> unit
(** Like {!run} but returns as soon as the slices are enqueued, so the
    caller can drive a reader pool concurrently.  Exactly one
    outstanding run per pool; complete it with {!join}. *)

val join : t -> unit
(** Wait for an outstanding {!run_async} (no-op without one). *)

val shutdown : t -> unit
(** Join outstanding work, stop and join every writer domain, and latch
    their final counters.  Shutting down does not flush the tree's
    buffer nodes — call the owning driver's [flush_all] afterwards for
    end-of-run accounting. *)

val applied : t -> int array
(** Operations completed per writer (live). *)

val busy_ns : t -> int array
(** Per-writer CPU time spent executing slices (live). *)

val crashed : t -> bool array
(** Per-writer fault-injection state: true once the lane's view raised
    [Power_failure]; the lane then drops further mutations (live). *)

val dev_stats : t -> Pmem.Stats.t
(** Merged device counters of all writer views (after {!shutdown}). *)

val counters : t -> (string * int) list list
(** Per-writer index counters (after {!shutdown}). *)

val retries : t -> int
(** Total optimistic-validation retries (after {!shutdown}). *)
