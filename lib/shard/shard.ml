module Clock = Shard_clock
module Queue = Shard_queue
module D = Pmem.Device
module S = Pmem.Stats
module I = Baselines.Index_intf
module Y = Workload.Ycsb

type partition = Hash | Range of { lo : int64; hi : int64 }

type config = {
  shards : int;
  partition : partition;
  queue_depth : int;
  batch : int;
}

let default_config = { shards = 4; partition = Hash; queue_depth = 64; batch = 256 }

(* --- sync reply cell ---------------------------------------------------- *)

type reply = {
  rm : Mutex.t;
  rc : Condition.t;
  mutable ready : bool;
  mutable found : int64 option;
  mutable found_entries : (int64 * int64) array;
}

let reply () =
  {
    rm = Mutex.create ();
    rc = Condition.create ();
    ready = false;
    found = None;
    found_entries = [||];
  }

let signal r =
  Mutex.lock r.rm;
  r.ready <- true;
  Condition.signal r.rc;
  Mutex.unlock r.rm

let await r =
  Mutex.lock r.rm;
  while not r.ready do
    Condition.wait r.rc r.rm
  done;
  Mutex.unlock r.rm

(* --- commands ----------------------------------------------------------- *)

type wop =
  | Upsert of int64 * int64
  | Delete of int64
  | Read of int64  (* executed for its traffic; result discarded *)
  | Scan_share of int64 * int  (* this shard's share of a scattered scan *)

type cmd =
  | Batch of wop array * int64
      (* enqueue timestamp (monotonic ns) for profiler queue-residency
         accounting; 0L when no profiler is attached (clock not read) *)
  | Search of int64 * reply
  | Scan of int64 * int * reply
  | Barrier of reply
  | Flush_index of reply
  | Plan_failure of int
  | Stop

type worker = {
  id : int;
  dev : D.t;
  mutable drv : I.driver;
  q : cmd Queue.t;
  applied : int Atomic.t;
  busy_ns : int Atomic.t;
  w_crashed : bool Atomic.t;  (* hit Power_failure; discards mutations *)
  killed : bool Atomic.t;  (* hard-stop: skip queued work (crash path) *)
  mutable obs : Obs.Recorder.worker option;
      (* registered before spawn; touched only by this worker's domain *)
  mutable prof : Obs.Prof.lane option;
      (* profiler lane, same registration discipline as [obs] *)
  mutable domain : unit Domain.t option;
}

type t = {
  cfg : config;
  workers : worker array;
  pending : wop array array;  (* router-side per-shard batch buffers *)
  pend_len : int array;
  obs_router : Obs.Recorder.worker option;  (* router-domain trace lane *)
  profiled : bool;  (* gate: enqueue timestamps only when profiling *)
  mutable running : bool;
}

(* --- worker ------------------------------------------------------------- *)

let exec_wop (drv : I.driver) = function
  | Upsert (k, v) -> drv.I.upsert k v
  | Delete k -> drv.I.delete k
  | Read k -> ignore (drv.I.search k : int64 option)
  | Scan_share (k, n) -> ignore (drv.I.scan ~start:k n : (int64 * int64) array)

let wop_kind = function
  | Upsert _ -> "upsert"
  | Delete _ -> "delete"
  | Read _ -> "read"
  | Scan_share _ -> "scan"

let obs_record w ~kind ~t0 =
  match w.obs with
  | Some ow -> Obs.Recorder.record ow ~kind ~t0 ~t1:(Clock.monotonic_ns ())
  | None -> ()

let worker_loop w =
  let continue = ref true in
  while !continue do
    let cmd = Queue.pop w.q in
    (match w.obs with
    | Some ow -> Obs.Recorder.instant ow "queue.pop"
    | None -> ());
    let t0 = Clock.thread_cpu_ns () in
    (match cmd with
    | Stop -> continue := false
    | _ when Atomic.get w.killed ->
      (* power is off: drop work, but never leave a client waiting *)
      (match cmd with
      | Search (_, r) | Scan (_, _, r) | Barrier r | Flush_index r -> signal r
      | _ -> ())
    | Barrier r -> signal r
    | Plan_failure n -> D.plan_failure w.dev ~after_fences:n
    | Flush_index r ->
      if not (Atomic.get w.w_crashed) then begin
        try w.drv.I.flush_all ()
        with D.Power_failure -> Atomic.set w.w_crashed true
      end;
      signal r
    | Batch (ops, enq) ->
      (match w.prof with
      | Some ln when not (Int64.equal enq 0L) ->
        Obs.Prof.queue_wait ln
          (Int64.to_int (Int64.sub (Clock.monotonic_ns ()) enq))
      | _ -> ());
      if not (Atomic.get w.w_crashed) then begin
        let a0 =
          match w.prof with Some _ -> Clock.monotonic_ns () | None -> 0L
        in
        (try
           match w.obs with
           | None ->
             Array.iter
               (fun op ->
                 exec_wop w.drv op;
                 Atomic.incr w.applied)
               ops
           | Some ow ->
             (* the whole batch is one busy period on this worker's lane;
                each op inside it gets its own histogram/trace record *)
             let b0 = Clock.monotonic_ns () in
             Array.iter
               (fun op ->
                 let t0 = Clock.monotonic_ns () in
                 exec_wop w.drv op;
                 obs_record w ~kind:(wop_kind op) ~t0;
                 Atomic.incr w.applied)
               ops;
             Obs.Recorder.span ow ~name:"worker.batch" ~t0:b0
               ~t1:(Clock.monotonic_ns ())
         with D.Power_failure -> Atomic.set w.w_crashed true);
        match w.prof with
        | Some ln ->
          Obs.Prof.queue_apply ln
            (Int64.to_int (Int64.sub (Clock.monotonic_ns ()) a0))
        | None -> ()
      end
    | Search (k, r) ->
      let s0 = Clock.monotonic_ns () in
      r.found <- (if Atomic.get w.w_crashed then None else w.drv.I.search k);
      obs_record w ~kind:"search" ~t0:s0;
      signal r
    | Scan (k, n, r) ->
      let s0 = Clock.monotonic_ns () in
      r.found_entries <-
        (if Atomic.get w.w_crashed then [||] else w.drv.I.scan ~start:k n);
      obs_record w ~kind:"scan" ~t0:s0;
      signal r);
    (* single-writer counter: plain read-modify-write is safe *)
    Atomic.set w.busy_ns
      (Atomic.get w.busy_ns + Int64.to_int (Int64.sub (Clock.thread_cpu_ns ()) t0))
  done

(* --- partitioning ------------------------------------------------------- *)

(* Fibonacci mixing hash: spreads sequential, shuffled and skewed key
   streams alike, so no shard becomes the hot one by key-pattern accident. *)
let hash_shard shards k =
  let h = Int64.mul k 0x9E3779B97F4A7C15L in
  let h = Int64.logxor h (Int64.shift_right_logical h 29) in
  Int64.to_int (Int64.rem (Int64.logand h Int64.max_int) (Int64.of_int shards))

let range_shard ~lo ~hi shards k =
  if Int64.compare k lo <= 0 then 0
  else if Int64.compare k hi >= 0 then shards - 1
  else
    let f = Int64.to_float (Int64.sub k lo) /. Int64.to_float (Int64.sub hi lo) in
    min (shards - 1) (int_of_float (f *. float_of_int shards))

let shard_of t k =
  match t.cfg.partition with
  | Hash -> hash_shard t.cfg.shards k
  | Range { lo; hi } -> range_shard ~lo ~hi t.cfg.shards k

(* --- lifecycle ---------------------------------------------------------- *)

let start t =
  if not t.running then begin
    Array.iter
      (fun w ->
        Atomic.set w.killed false;
        w.domain <- Some (Domain.spawn (fun () -> worker_loop w)))
      t.workers;
    t.running <- true
  end

let stop t =
  if t.running then begin
    Array.iter (fun w -> Queue.push w.q Stop) t.workers;
    Array.iter
      (fun w ->
        match w.domain with
        | Some d ->
          Domain.join d;
          w.domain <- None
        | None -> ())
      t.workers;
    t.running <- false
  end

let create ?(config = default_config) ?recorder ?profiler ~make () =
  if config.shards < 1 then invalid_arg "Shard.create: shards < 1";
  if config.batch < 1 then invalid_arg "Shard.create: batch < 1";
  let workers =
    Array.init config.shards (fun i ->
        let dev, drv = make i in
        {
          id = i;
          dev;
          drv;
          q = Queue.create ~capacity:config.queue_depth;
          applied = Atomic.make 0;
          busy_ns = Atomic.make 0;
          w_crashed = Atomic.make false;
          killed = Atomic.make false;
          obs = None;
          prof = None;
          domain = None;
        })
  in
  (* observability lanes must be registered from this (router) domain
     before the worker domains spawn; after that each handle is private
     to its worker *)
  (match recorder with
  | Some rc when Obs.Recorder.enabled rc ->
    Array.iter
      (fun w ->
        let ow =
          Obs.Recorder.worker rc ~tid:(w.id + 1)
            ~name:(Printf.sprintf "shard-%d" w.id) ~dev:w.dev ()
        in
        Obs.Recorder.install_device_tracer ow;
        w.obs <- Some ow)
      workers
  | _ -> ());
  (* profiler lanes compose with the recorder's device tracer (add_tracer),
     so they are attached after it, still from the router domain *)
  (match profiler with
  | Some p ->
    Array.iter
      (fun w ->
        let ln = Obs.Prof.lane p ~tid:(w.id + 1) in
        Obs.Prof.attach_device ln w.dev;
        w.prof <- Some ln)
      workers
  | None -> ());
  let obs_router =
    match recorder with
    | Some rc when Obs.Recorder.trace_on rc ->
      Some (Obs.Recorder.worker rc ~tid:0 ~name:"router" ())
    | _ -> None
  in
  let t =
    {
      cfg = config;
      workers;
      pending = Array.init config.shards (fun _ -> Array.make config.batch (Read 0L));
      pend_len = Array.make config.shards 0;
      obs_router;
      profiled = profiler <> None;
      running = false;
    }
  in
  start t;
  t

let config t = t.cfg
let shards t = t.cfg.shards

(* --- router ------------------------------------------------------------- *)

let flush_shard t s =
  let n = t.pend_len.(s) in
  if n > 0 then begin
    t.pend_len.(s) <- 0;
    (match t.obs_router with
    | Some ow -> Obs.Recorder.instant ow ("queue.push s" ^ string_of_int s)
    | None -> ());
    let enq = if t.profiled then Clock.monotonic_ns () else 0L in
    Queue.push t.workers.(s).q (Batch (Array.sub t.pending.(s) 0 n, enq))
  end

let enqueue t s op =
  let buf = t.pending.(s) in
  buf.(t.pend_len.(s)) <- op;
  t.pend_len.(s) <- t.pend_len.(s) + 1;
  if t.pend_len.(s) = Array.length buf then flush_shard t s

let upsert t k v = enqueue t (shard_of t k) (Upsert (k, v))
let delete t k = enqueue t (shard_of t k) (Delete k)

let run t ops =
  let n_shards = t.cfg.shards in
  Array.iter
    (fun op ->
      match op with
      | Y.Insert (k, v) when Int64.equal v 0L -> delete t k
      | Y.Insert (k, v) -> upsert t k v
      | Y.Read k -> enqueue t (shard_of t k) (Read k)
      | Y.Scan (k, len) ->
        (* each shard holds ~1/N of any key interval under Hash (and the
           whole of it under Range when the scan fits one shard): ask every
           shard for its share, the work a gathering merge would consume *)
        let share = max 1 (len / n_shards) in
        for s = 0 to n_shards - 1 do
          enqueue t s (Scan_share (k, share))
        done)
    ops

let barrier_all t =
  let rs =
    Array.map
      (fun w ->
        let r = reply () in
        Queue.push w.q (Barrier r);
        r)
      t.workers
  in
  Array.iter await rs

let flush t =
  for s = 0 to t.cfg.shards - 1 do
    flush_shard t s
  done;
  barrier_all t

let flush_all t =
  flush t;
  let rs =
    Array.map
      (fun w ->
        let r = reply () in
        Queue.push w.q (Flush_index r);
        r)
      t.workers
  in
  Array.iter await rs

let drain t =
  flush_all t;
  (* quiescent window: workers are parked on empty queues *)
  Array.iter (fun w -> D.drain w.dev) t.workers

let shutdown t =
  flush t;
  stop t

(* --- synchronous reads -------------------------------------------------- *)

let search t k =
  let s = shard_of t k in
  flush_shard t s;
  let r = reply () in
  Queue.push t.workers.(s).q (Search (k, r));
  await r;
  r.found

let by_key (k1, _) (k2, _) = Int64.compare k1 k2

let scan t ~start n =
  for s = 0 to t.cfg.shards - 1 do
    flush_shard t s
  done;
  let rs =
    Array.map
      (fun w ->
        let r = reply () in
        Queue.push w.q (Scan (start, n, r));
        r)
      t.workers
  in
  Array.iter await rs;
  let all = Array.concat (Array.to_list (Array.map (fun r -> r.found_entries) rs)) in
  Array.sort by_key all;
  if Array.length all <= n then all else Array.sub all 0 n

(* Chunked per-shard dump: repeated scans, each resuming past the last
   key returned, so no single request asks the driver for an unbounded
   result array. *)
let dump_chunk = 4096

let shard_entries t s =
  let w = t.workers.(s) in
  let rec go start acc =
    let r = reply () in
    Queue.push w.q (Scan (start, dump_chunk, r));
    await r;
    let chunk = r.found_entries in
    let acc = chunk :: acc in
    if Array.length chunk < dump_chunk then List.rev acc
    else
      let last, _ = chunk.(Array.length chunk - 1) in
      if Int64.equal last Int64.max_int then List.rev acc
      else go (Int64.add last 1L) acc
  in
  Array.concat (go Int64.min_int [])

let entries t =
  flush t;
  let all =
    Array.concat (List.init t.cfg.shards (fun s -> shard_entries t s))
  in
  Array.sort by_key all;
  all

let iter t f = Array.iter (fun (k, v) -> f k v) (entries t)

(* --- measurement -------------------------------------------------------- *)

let stats_per_shard t = Array.map (fun w -> D.snapshot w.dev) t.workers
let stats t = S.merge_all (Array.to_list (stats_per_shard t))
let applied t = Array.map (fun w -> Atomic.get w.applied) t.workers
let busy_ns t = Array.map (fun w -> Atomic.get w.busy_ns) t.workers

let reset_counters t =
  flush t;
  Array.iter
    (fun w ->
      Atomic.set w.applied 0;
      Atomic.set w.busy_ns 0)
    t.workers

(* --- crash / recovery --------------------------------------------------- *)

let plan_failure t ~shard ~after_fences =
  Queue.push t.workers.(shard).q (Plan_failure after_fences)

let crashed t = Array.map (fun w -> Atomic.get w.w_crashed) t.workers

let crash t =
  (* power failure: nothing pending or queued gets applied *)
  Array.iter (fun w -> Atomic.set w.killed true) t.workers;
  Array.fill t.pend_len 0 t.cfg.shards 0;
  stop t;
  Array.iter
    (fun w ->
      Queue.clear w.q;
      D.crash w.dev;
      Atomic.set w.w_crashed true)
    t.workers

let recover t rebuild =
  if t.running then invalid_arg "Shard.recover: call crash or shutdown first";
  Array.iter
    (fun w ->
      (* bracket per-shard rebuild for persistency sanitizers; nests
         harmlessly with self-bracketing recovery like [Tree.recover] *)
      w.drv <- Pmsan.recovering w.dev (fun () -> rebuild w.id w.dev);
      Atomic.set w.w_crashed false)
    t.workers;
  Array.fill t.pend_len 0 t.cfg.shards 0;
  start t

let device t i = t.workers.(i).dev

(* Reader factory of shard [i]'s driver.  The field itself is only
   reassigned during [recover] (quiescent), so reading it from the router
   while the worker runs is safe; each factory call mints an independent
   read-only handle. *)
let new_reader t i = t.workers.(i).drv.I.new_reader
let new_writer t i = t.workers.(i).drv.I.new_writer

module Read_pool = Read_pool
module Write_pool = Write_pool

let reader_pool ?profiler ?tid_base t ~shard ~readers =
  match new_reader t shard with
  | None ->
    invalid_arg
      "Shard.reader_pool: this index driver has no concurrent read path"
  | Some mint -> Read_pool.create ?profiler ?tid_base mint ~readers

let writer_pool ?profiler ?tid_base t ~shard ~writers =
  match new_writer t shard with
  | None ->
    invalid_arg
      "Shard.writer_pool: this index driver has no concurrent write path"
  | Some mint -> Write_pool.create ?profiler ?tid_base mint ~writers
