type 'a t = {
  buf : 'a option array;
  mutable head : int;  (* index of the next element to pop *)
  mutable len : int;
  m : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Shard.Queue.create: capacity < 1";
  {
    buf = Array.make capacity None;
    head = 0;
    len = 0;
    m = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
  }

let push t x =
  Mutex.lock t.m;
  let cap = Array.length t.buf in
  while t.len = cap do
    Condition.wait t.not_full t.m
  done;
  t.buf.((t.head + t.len) mod cap) <- Some x;
  t.len <- t.len + 1;
  Condition.signal t.not_empty;
  Mutex.unlock t.m

let pop t =
  Mutex.lock t.m;
  while t.len = 0 do
    Condition.wait t.not_empty t.m
  done;
  let x =
    match t.buf.(t.head) with
    | Some x -> x
    | None -> assert false
  in
  t.buf.(t.head) <- None;
  t.head <- (t.head + 1) mod Array.length t.buf;
  t.len <- t.len - 1;
  Condition.signal t.not_full;
  Mutex.unlock t.m;
  x

let length t =
  Mutex.lock t.m;
  let n = t.len in
  Mutex.unlock t.m;
  n

let clear t =
  Mutex.lock t.m;
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.head <- 0;
  t.len <- 0;
  Condition.broadcast t.not_full;
  Mutex.unlock t.m
