(** Exhaustive crash-state model checker for the simulated PM device.

    The paper's headline claim is crash consistency at {e every} fence
    (§3.4).  Hand-picked failure points miss protocol branches — the
    lesson of RECIPE (SOSP '19) — so this module enumerates them: it runs
    a scripted workload once to count the fences it issues, then for every
    fence index [k] (optionally strided) rewinds the device to a
    {!Pmem.Device.checkpoint} taken right after formatting, arms
    [plan_failure ~after_fences:k], replays the workload until the power
    fails, crashes, recovers, and checks a volatile oracle:

    - every acknowledged operation is present after recovery,
    - the interrupted operation is atomic — old value, new value, or (for
      deletes) absent, never anything else,
    - no deleted key resurrects,
    - all structural invariants hold ([check_invariants] plus, for the
      tree, every {!Fsck.check} integrity error).

    Each (fence, crash seed, persist probability) combination is one
    deterministic execution: the checkpoint restores the adversarial RNG
    too, so any violation found is replayable bit for bit.  On a
    violation the checker minimizes the operation trace by filtering the
    executed prefix down to the operations touching the implicated keys
    and re-verifying that the reduced trace still fails. *)

type op = Ups of int64 * int64 | Del of int64

type target =
  | Tree  (** CCL-BTree ({!Ccl_btree.Tree}). *)
  | Hash  (** CCL-Hash ({!Ccl_hash.Hash_table}). *)

type violation = {
  fence : int;  (** Fence index (1-based) at which power failed. *)
  crash_seed : int;
  persist_prob : float;
  invariant : string;  (** Human-readable description of the failed check. *)
  trace : op list;  (** Minimized reproducing operation trace. *)
}

type report = {
  fences : int;  (** Fences the un-failed workload issues (per combo). *)
  points_tested : int;  (** Distinct (fence, seed, prob) points checked. *)
  crashes_run : int;  (** Crash+recover executions performed. *)
  violations : violation list;
  pmsan_counters : Pmsan.counters option;
      (** Sanitizer counters aggregated over the whole sweep (including
          the fence-counting runs); [None] unless [sanitize] was set. *)
}

val mixed_workload : seed:int -> n:int -> key_space:int -> op list
(** Deterministic mixed workload: ~7/8 upserts (inserts and updates — the
    key space is smaller than [n], so keys repeat), ~1/8 deletes. *)

val check :
  ?cfg:Ccl_btree.Config.t ->
  ?target:target ->
  ?buckets:int ->
  ?device_size:int ->
  ?stride:int ->
  ?persist_probs:float list ->
  ?crash_seeds:int list ->
  ?minimize:bool ->
  ?sanitize:bool ->
  ?progress:(tested:int -> total:int -> unit) ->
  op list ->
  report
(** [check ops] explores every [stride]-th fence index of [ops] under
    every (crash seed, persist probability) combination.

    Defaults: [target = Tree], [buckets = 16] (hash only),
    [device_size = 16 MiB], [stride = 1] (every fence),
    [persist_probs = [0.0; 0.5; 1.0]], [crash_seeds = [1; 2]],
    [minimize = true], [sanitize = false].  [progress] is called after
    each crash point with the running count and the total number of
    points planned.

    With [sanitize] every execution also runs under {!Pmsan}: the shadow
    state rewinds in lock-step with every checkpoint restore,
    correctness-class sanitizer findings are reported as violations of
    their crash point, and the sweep-wide flush/fence counters land in
    [pmsan_counters]. *)

val pp_violation : Format.formatter -> violation -> unit
val pp_report : Format.formatter -> report -> unit
