module D = Pmem.Device
module S = Pmem.Stats
module T = Ccl_btree.Tree
module Fsck = Ccl_btree.Fsck
module H = Ccl_hash.Hash_table

type op = Ups of int64 * int64 | Del of int64
type target = Tree | Hash

type violation = {
  fence : int;
  crash_seed : int;
  persist_prob : float;
  invariant : string;
  trace : op list;
}

type report = {
  fences : int;
  points_tested : int;
  crashes_run : int;
  violations : violation list;
  pmsan_counters : Pmsan.counters option;
      (* aggregated over the whole sweep when sanitize was on *)
}

let key_of = function Ups (k, _) -> k | Del k -> k

let mixed_workload ~seed ~n ~key_space =
  let rng = Random.State.make [| seed |] in
  List.init n (fun i ->
      let key = Int64.of_int (1 + Random.State.int rng key_space) in
      if Random.State.int rng 8 = 0 then Del key
      else Ups (key, Int64.of_int (i + 1)))

(* A uniform view of the two indexes under test.  [fsck] returns integrity
   errors of the persistent image (tree only: Fsck walks the leaf chain). *)
type handle = {
  upsert : int64 -> int64 -> unit;
  delete : int64 -> unit;
  search : int64 -> int64 option;
  check_invariants : unit -> unit;
  fsck : unit -> string list;
}

let attach ~cfg ~target dev =
  match target with
  | Tree ->
    let t = T.recover ~cfg dev in
    {
      upsert = T.upsert t;
      delete = T.delete t;
      search = T.search t;
      check_invariants = (fun () -> T.check_invariants t);
      fsck =
        (fun () ->
          match Fsck.check dev with
          | r -> r.Fsck.errors
          | exception e -> [ "fsck raised: " ^ Printexc.to_string e ]);
    }
  | Hash ->
    let h = H.recover ~cfg dev in
    {
      upsert = H.upsert h;
      delete = H.delete h;
      search = H.search h;
      check_invariants = (fun () -> H.check_invariants h);
      fsck = (fun () -> []);
    }

(* One check failure; [key] (when known) feeds trace minimization. *)
type check_failure = { desc : string; key : int64 option }

(* Replay [ops] from the post-format checkpoint with power failing at the
   [fence]-th workload fence, then crash, recover and run the oracle.
   Returns the executed prefix length (acknowledged ops plus the
   interrupted one) and the list of failed checks. *)
(* [D.restore] rewinds the device but not a sanitizer's shadow state;
   [san] carries the sanitizer and the shadow snapshot taken at the same
   moment as the checkpoint so both rewind in lock-step. *)
let rewind_shadow san =
  match san with None -> () | Some (s, snap) -> Pmsan.rewind s snap

(* Correctness-class sanitizer findings become check failures like any
   oracle violation; performance-class findings only feed the counters. *)
let drain_shadow san errs =
  match san with
  | None -> ()
  | Some (s, _) ->
    List.iter
      (fun v ->
        if Pmsan.severity v.Pmsan.kind = Pmsan.Correctness then
          errs :=
            { desc = Fmt.str "pmsan: %a" Pmsan.pp_violation v; key = None }
            :: !errs)
      (Pmsan.drain_violations s)

let run_point ~cfg ~target ?san dev ck ops ~fence =
  D.restore dev ck;
  rewind_shadow san;
  let h = attach ~cfg ~target dev in
  let model = Hashtbl.create 256 in
  let in_flight = ref None in
  let executed = ref 0 in
  let errs = ref [] in
  let fail desc key = errs := { desc; key } :: !errs in
  D.plan_failure dev ~after_fences:fence;
  (try
     List.iter
       (fun op ->
         in_flight := Some op;
         incr executed;
         (match op with
         | Ups (k, v) -> h.upsert k v
         | Del k -> h.delete k);
         (* returned without failing: the op is acknowledged *)
         (match op with
         | Ups (k, v) -> Hashtbl.replace model k v
         | Del k -> Hashtbl.remove model k);
         in_flight := None)
       ops
   with
  | D.Power_failure -> ()
  | e -> fail ("workload raised: " ^ Printexc.to_string e) None);
  D.cancel_failure dev;
  D.crash dev;
  (* recovery itself must never raise on a crashed-but-uncorrupted image *)
  (match attach ~cfg ~target dev with
  | exception e -> fail ("recovery raised: " ^ Printexc.to_string e) None
  | h2 ->
    (* structural invariants of the recovered index *)
    (try h2.check_invariants ()
     with Failure m -> fail ("invariants: " ^ m) None);
    (* offline integrity of the persistent image *)
    List.iter (fun e -> fail ("fsck: " ^ e) None) (h2.fsck ());
    (* durability: every acknowledged op is present, unless the in-flight
       op legitimately superseded it *)
    Hashtbl.iter
      (fun key v ->
        let tolerated =
          match !in_flight with
          | Some (Ups (k, v')) when Int64.equal k key ->
            h2.search key = Some v'
          | Some (Del k) when Int64.equal k key -> h2.search key = None
          | _ -> false
        in
        if (not tolerated) && h2.search key <> Some v then
          fail (Printf.sprintf "lost acked key %Ld" key) (Some key))
      model;
    (* atomicity of the interrupted op: old value, new value, or (for a
       delete) absent — never anything else *)
    (match !in_flight with
    | Some (Ups (k, v')) ->
      let prev = Hashtbl.find_opt model k in
      let got = h2.search k in
      if got <> Some v' && got <> prev then
        fail (Printf.sprintf "in-flight upsert of %Ld not atomic" k) (Some k)
    | Some (Del k) ->
      let prev = Hashtbl.find_opt model k in
      let got = h2.search k in
      if got <> None && got <> prev then
        fail (Printf.sprintf "in-flight delete of %Ld not atomic" k) (Some k)
    | None -> ());
    (* no resurrection: a key touched by the workload but absent from the
       model must stay absent *)
    let seen = Hashtbl.create 256 in
    List.iter
      (fun op ->
        let k = key_of op in
        if not (Hashtbl.mem seen k) then begin
          Hashtbl.replace seen k ();
          let shadowed =
            match !in_flight with
            | Some (Ups (k', _)) -> Int64.equal k' k
            | _ -> false
          in
          if
            (not (Hashtbl.mem model k))
            && (not shadowed)
            && h2.search k <> None
          then fail (Printf.sprintf "resurrected key %Ld" k) (Some k)
        end)
      ops);
  drain_shadow san errs;
  (!executed, List.rev !errs)

(* Count the fences the un-failed workload issues, entering through the
   same restore+attach path the failing replays use so the fence schedule
   is identical. *)
let count_fences ~cfg ~target ?san dev ck ops =
  D.restore dev ck;
  rewind_shadow san;
  let h = attach ~cfg ~target dev in
  let f0 = (D.snapshot dev).S.sfence_count in
  List.iter
    (fun op ->
      match op with Ups (k, v) -> h.upsert k v | Del k -> h.delete k)
    ops;
  (* findings of the counting run recur identically at the crash points *)
  (match san with Some (s, _) -> ignore (Pmsan.drain_violations s) | None -> ());
  (D.snapshot dev).S.sfence_count - f0

(* Trace minimization: keep only the executed-prefix operations touching
   an implicated key, then verify the reduced trace still violates at
   some fence of its own (shorter) schedule.  Falls back to the full
   executed prefix when the reduction does not reproduce. *)
let minimize_trace ~cfg ~target ?san dev ck ops ~prefix_len failures =
  let prefix = List.filteri (fun i _ -> i < prefix_len) ops in
  let bad_keys =
    List.filter_map (fun f -> f.key) failures
    |> List.sort_uniq Int64.compare
  in
  if bad_keys = [] then prefix
  else begin
    let candidate =
      List.filter (fun op -> List.mem (key_of op) bad_keys) prefix
    in
    if candidate = [] || List.length candidate >= List.length prefix then
      prefix
    else begin
      let total = count_fences ~cfg ~target ?san dev ck candidate in
      let reproduces = ref false in
      let k = ref 1 in
      while (not !reproduces) && !k <= min total 300 do
        let _, errs = run_point ~cfg ~target ?san dev ck candidate ~fence:!k in
        if errs <> [] then reproduces := true;
        incr k
      done;
      if !reproduces then candidate else prefix
    end
  end

let check ?(cfg = Ccl_btree.Config.default) ?(target = Tree) ?(buckets = 16)
    ?(device_size = 16 * 1024 * 1024) ?(stride = 1)
    ?(persist_probs = [ 0.0; 0.5; 1.0 ]) ?(crash_seeds = [ 1; 2 ])
    ?(minimize = true) ?(sanitize = false) ?progress ops =
  if stride < 1 then invalid_arg "Crashmc.check: stride must be >= 1";
  let fences = ref 0 in
  let points = ref 0 and crashes = ref 0 in
  let violations = ref [] in
  let sweep_counters = if sanitize then Some (Pmsan.counters_create ()) else None in
  let combos =
    List.concat_map
      (fun seed -> List.map (fun p -> (seed, p)) persist_probs)
      crash_seeds
  in
  (* Pre-plan the total point count for progress reporting: the fence
     count is the same for every combo (the workload path never consults
     the crash coin), so one counting run suffices. *)
  let totals =
    List.map
      (fun (seed, prob) ->
        let config =
          {
            (Pmem.Config.default ~size:device_size ()) with
            Pmem.Config.persist_prob = prob;
            crash_seed = seed;
          }
        in
        let dev = D.create ~config () in
        (* attach before formatting so the shadow (all-clean, like the
           fresh device) tracks every store from the first one *)
        let san0 = if sanitize then Some (Pmsan.attach ~site:"format" dev) else None in
        (match target with
        | Tree -> ignore (T.create ~cfg dev)
        | Hash -> ignore (H.create ~cfg ~buckets dev));
        let ck = D.checkpoint dev in
        let san =
          Option.map (fun s -> ignore (Pmsan.drain_violations s); (s, Pmsan.snapshot s)) san0
        in
        let total = count_fences ~cfg ~target ?san dev ck ops in
        (seed, prob, dev, ck, san, total))
      combos
  in
  let planned =
    List.fold_left
      (fun acc (_, _, _, _, _, total) -> acc + ((total + stride - 1) / stride))
      0 totals
  in
  List.iter
    (fun (seed, prob, dev, ck, san, total) ->
      fences := max !fences total;
      let fence = ref 1 in
      while !fence <= total do
        let prefix_len, errs =
          run_point ~cfg ~target ?san dev ck ops ~fence:!fence
        in
        incr points;
        incr crashes;
        if errs <> [] then begin
          let trace =
            if minimize then
              minimize_trace ~cfg ~target ?san dev ck ops ~prefix_len errs
            else List.filteri (fun i _ -> i < prefix_len) ops
          in
          List.iter
            (fun f ->
              violations :=
                {
                  fence = !fence;
                  crash_seed = seed;
                  persist_prob = prob;
                  invariant = f.desc;
                  trace;
                }
                :: !violations)
            errs
        end;
        (match progress with
        | Some f -> f ~tested:!points ~total:planned
        | None -> ());
        fence := !fence + stride
      done;
      match (san, sweep_counters) with
      | Some (s, _), Some acc ->
        Pmsan.counters_add ~into:acc (Pmsan.counters s);
        Pmsan.detach s
      | _ -> ())
    totals;
  {
    fences = !fences;
    points_tested = !points;
    crashes_run = !crashes;
    violations = List.rev !violations;
    pmsan_counters = sweep_counters;
  }

let pp_op ppf = function
  | Ups (k, v) -> Fmt.pf ppf "ups %Ld=%Ld" k v
  | Del k -> Fmt.pf ppf "del %Ld" k

let pp_violation ppf v =
  Fmt.pf ppf "@[<v2>fence %d (seed %d, p=%.2f): %s@,trace (%d ops): @[<hov>%a@]@]"
    v.fence v.crash_seed v.persist_prob v.invariant (List.length v.trace)
    (Fmt.list ~sep:Fmt.sp pp_op)
    v.trace

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>fences per run    %d@,crash points      %d@,crashes executed  \
     %d@,violations        %d%a%a@]"
    r.fences r.points_tested r.crashes_run
    (List.length r.violations)
    (fun ppf -> function
      | [] -> ()
      | vs -> Fmt.pf ppf "@,%a" (Fmt.list ~sep:Fmt.cut pp_violation) vs)
    r.violations
    (fun ppf -> function
      | None -> ()
      | Some c -> Fmt.pf ppf "@,pmsan             %a" Pmsan.pp_counters c)
    r.pmsan_counters
