type op = Insert of int64 * int64 | Read of int64 | Scan of int64 * int

type mix =
  | Insert_only
  | Insert_intensive
  | Read_intensive
  | Read_only
  | Scan_insert

let mix_name = function
  | Insert_only -> "Insert-Only"
  | Insert_intensive -> "Insert-Intensive"
  | Read_intensive -> "Read-Intensive"
  | Read_only -> "Read-Only"
  | Scan_insert -> "Scan-Insert"

let all_mixes =
  [ Insert_only; Insert_intensive; Read_intensive; Read_only; Scan_insert ]

(* (insert %, read %, scan %) *)
let ratios = function
  | Insert_only -> (100, 0, 0)
  | Insert_intensive -> (75, 25, 0)
  | Read_intensive -> (25, 75, 0)
  | Read_only -> (0, 100, 0)
  | Scan_insert -> (5, 0, 95)

let op_key = function Insert (k, _) -> k | Read k -> k | Scan (k, _) -> k

let partition ~shards ~shard_of ops =
  let counts = Array.make shards 0 in
  let place op =
    let s = shard_of (op_key op) in
    if s < 0 || s >= shards then
      invalid_arg "Ycsb.partition: shard_of out of range";
    s
  in
  Array.iter (fun op -> counts.(place op) <- counts.(place op) + 1) ops;
  let out = Array.init shards (fun s -> Array.make counts.(s) (Read 0L)) in
  let idx = Array.make shards 0 in
  Array.iter
    (fun op ->
      let s = place op in
      out.(s).(idx.(s)) <- op;
      idx.(s) <- idx.(s) + 1)
    ops;
  out

let generate mix ~seed ~space ~scan_len n =
  let rng = Random.State.make [| seed |] in
  let ins, rd, _ = ratios mix in
  let key () = Int64.of_int (1 + Random.State.int rng space) in
  Array.init n (fun i ->
      let dice = Random.State.int rng 100 in
      if dice < ins then Insert (key (), Int64.of_int (i + 1))
      else if dice < ins + rd then Read (key ())
      else Scan (key (), scan_len))
