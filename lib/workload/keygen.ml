type t =
  | Uniform of Random.State.t * int
  | Zipfian of zipf
  | Sequential of int ref * int

and zipf = {
  rng : Random.State.t;
  n : int;
  theta : float;
  zetan : float;
  alpha : float;
  eta : float;
}

let zeta n theta =
  let acc = ref 0.0 in
  for i = 1 to n do
    acc := !acc +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !acc

let uniform ~seed ~space = Uniform (Random.State.make [| seed |], space)

let zipfian ~seed ~space ~theta =
  assert (theta > 0.0 && theta < 1.0);
  let zetan = zeta space theta in
  let zeta2 = zeta 2 theta in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    (1.0 -. Float.pow (2.0 /. float_of_int space) (1.0 -. theta))
    /. (1.0 -. (zeta2 /. zetan))
  in
  Zipfian { rng = Random.State.make [| seed |]; n = space; theta; zetan; alpha; eta }

let sequential ~space = Sequential (ref 0, space)

let next_zipf z =
  let u = Random.State.float z.rng 1.0 in
  let uz = u *. z.zetan in
  if uz < 1.0 then 1
  else if uz < 1.0 +. Float.pow 0.5 z.theta then 2
  else
    1
    + int_of_float
        (float_of_int z.n *. Float.pow ((z.eta *. u) -. z.eta +. 1.0) z.alpha)

(* As in YCSB, the popularity rank is hash-scrambled so hot keys spread
   over the key space rather than clustering at its low end. *)
let scramble n rank =
  let h = Int64.mul (Int64.of_int rank) 0x9E3779B97F4A7C15L in
  let h = Int64.shift_right_logical h 17 in
  1 + Int64.to_int (Int64.rem h (Int64.of_int n))

let next = function
  | Uniform (rng, space) -> Int64.of_int (1 + Random.State.int rng space)
  | Zipfian z ->
    let rank = min z.n (next_zipf z) in
    Int64.of_int (scramble z.n rank)
  | Sequential (r, space) ->
    incr r;
    if !r > space then r := 1;
    Int64.of_int !r

let shuffled_range ~seed n =
  let a = Array.init n (fun i -> Int64.of_int (i + 1)) in
  let st = Random.State.make [| seed |] in
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

let partition ~shards ~shard_of keys =
  let counts = Array.make shards 0 in
  let place k =
    let s = shard_of k in
    if s < 0 || s >= shards then
      invalid_arg "Keygen.partition: shard_of out of range";
    s
  in
  Array.iter (fun k -> counts.(place k) <- counts.(place k) + 1) keys;
  let out = Array.init shards (fun s -> Array.make counts.(s) 0L) in
  let idx = Array.make shards 0 in
  Array.iter
    (fun k ->
      let s = place k in
      out.(s).(idx.(s)) <- k;
      idx.(s) <- idx.(s) + 1)
    keys;
  out
