(** YCSB-style operation mixes (paper §5.2, Fig 11).

    Five uniform workloads with the paper's read/write ratios:
    insert-only, insert-intensive (75 % insert / 25 % read),
    read-intensive (25 % / 75 %), read-only, and scan-insert
    (95 % scan / 5 % insert). *)

type op =
  | Insert of int64 * int64
  | Read of int64
  | Scan of int64 * int  (** start key, length (100 in the paper). *)

type mix = Insert_only | Insert_intensive | Read_intensive | Read_only | Scan_insert

val mix_name : mix -> string
val all_mixes : mix list

val generate :
  mix -> seed:int -> space:int -> scan_len:int -> int -> op array
(** [generate mix ~seed ~space ~scan_len n] draws [n] operations over keys
    in [1, space] with uniform key choice. *)

val op_key : op -> int64
(** The key an operation routes on (a scan routes on its start key). *)

val partition :
  shards:int -> shard_of:(int64 -> int) -> op array -> op array array
(** Split a stream into per-shard streams by {!op_key}, preserving each
    stream's relative order — per-client feeds for a sharded execution
    layer.  @raise Invalid_argument if [shard_of] leaves [0, shards). *)
