(** Key generators for the micro-benchmarks (§5.1).

    Keys are positive [int64]s.  The Zipfian generator follows the YCSB
    construction (Gray et al.'s method with precomputed zeta), which is
    what the paper uses for its skewed workloads (coefficient 0.9 in
    Fig 4, 0.5–0.99 in Fig 15(a)). *)

type t

val uniform : seed:int -> space:int -> t
val zipfian : seed:int -> space:int -> theta:float -> t
val sequential : space:int -> t
(** Wraps around after [space] keys. *)

val next : t -> int64
(** Next key in [1, space]. *)

val shuffled_range : seed:int -> int -> int64 array
(** A random permutation of [1..n]: the warm-up load order. *)

val partition :
  shards:int -> shard_of:(int64 -> int) -> int64 array -> int64 array array
(** Split a key stream into [shards] per-shard streams, preserving each
    stream's relative order.  [shard_of] is the router's placement
    function (e.g. [Shard.shard_of]); keys it maps outside
    [0, shards) raise [Invalid_argument]. *)
