(* ccl-kv: a durable key-value store CLI backed by CCL-BTree on a
   simulated PM device whose media image persists in a host file.

     dune exec bin/kvcli.exe -- set --db /tmp/store.pm lang ocaml
     dune exec bin/kvcli.exe -- get --db /tmp/store.pm lang
     dune exec bin/kvcli.exe -- scan --db /tmp/store.pm a 10
     dune exec bin/kvcli.exe -- del --db /tmp/store.pm lang
     dune exec bin/kvcli.exe -- stats --db /tmp/store.pm

   Every invocation runs the real recovery path (leaf-chain scan + WAL
   replay) against the stored image, exercising crash consistency on
   every start. *)

module D = Pmem.Device
module T = Ccl_btree.Tree

let open_db path =
  if Sys.file_exists path then begin
    let dev = D.load_image path in
    (dev, T.recover dev)
  end
  else begin
    let dev =
      D.create ~config:(Pmem.Config.default ~size:(32 * 1024 * 1024) ()) ()
    in
    (dev, T.create dev)
  end

let close_db dev t path =
  T.flush_all t;
  D.drain dev;
  D.save_image dev path

open Cmdliner

let db_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "db" ] ~docv:"FILE" ~doc:"Path of the PM image file.")

let with_db db f =
  let dev, t = open_db db in
  let result = f dev t in
  close_db dev t db;
  result

let set_cmd =
  let run db key value =
    with_db db (fun _ t ->
        T.upsert_str t key value;
        Printf.printf "OK\n";
        0)
  in
  Cmd.v (Cmd.info "set" ~doc:"Store a key-value pair")
    Term.(
      const run $ db_arg
      $ Arg.(required & pos 0 (some string) None & info [] ~docv:"KEY")
      $ Arg.(required & pos 1 (some string) None & info [] ~docv:"VALUE"))

let get_cmd =
  let run db key =
    with_db db (fun _ t ->
        match T.search_str t key with
        | Some v ->
          print_endline v;
          0
        | None ->
          prerr_endline "(not found)";
          1)
  in
  Cmd.v (Cmd.info "get" ~doc:"Look up a key")
    Term.(
      const run $ db_arg
      $ Arg.(required & pos 0 (some string) None & info [] ~docv:"KEY"))

let del_cmd =
  let run db key =
    with_db db (fun _ t ->
        T.delete_str t key;
        Printf.printf "OK\n";
        0)
  in
  Cmd.v (Cmd.info "del" ~doc:"Delete a key")
    Term.(
      const run $ db_arg
      $ Arg.(required & pos 0 (some string) None & info [] ~docv:"KEY"))

let scan_cmd =
  let run db start n =
    with_db db (fun dev t ->
        let k = Ccl_btree.Indirect.encode_key start in
        Array.iter
          (fun (_, v) ->
            print_endline (Ccl_btree.Indirect.decode_value (T.device t) v);
            ignore dev)
          (T.scan t ~start:k n);
        0)
  in
  Cmd.v
    (Cmd.info "scan" ~doc:"Print up to N values with key >= START (key order)")
    Term.(
      const run $ db_arg
      $ Arg.(required & pos 0 (some string) None & info [] ~docv:"START")
      $ Arg.(value & pos 1 int 10 & info [] ~docv:"N"))

let stats_cmd =
  let run db =
    with_db db (fun dev t ->
        Printf.printf "entries        %d\n" (T.count_entries t);
        Printf.printf "leaf nodes     %d\n" (T.buffer_node_count t);
        Printf.printf "PM bytes       %d\n" (T.pm_bytes t);
        Printf.printf "DRAM bytes     %d\n" (T.dram_bytes t);
        Printf.printf "live log bytes %d\n" (T.log_live_bytes t);
        let st = D.snapshot dev in
        Printf.printf "session CLI %.2f / XBI %.2f\n"
          (Pmem.Stats.cli_amplification st)
          (Pmem.Stats.xbi_amplification st);
        0)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Show store statistics") Term.(const run $ db_arg)

let fsck_cmd =
  let run db =
    if not (Sys.file_exists db) then begin
      prerr_endline "no such image";
      2
    end
    else begin
      let dev = D.load_image db in
      let report = Ccl_btree.Fsck.check dev in
      Format.printf "%a@." Ccl_btree.Fsck.pp report;
      if Ccl_btree.Fsck.is_healthy report then 0 else 1
    end
  in
  Cmd.v
    (Cmd.info "fsck" ~doc:"Check the integrity of a PM image offline")
    Term.(const run $ db_arg)

let () =
  let doc = "durable KV store on a simulated persistent-memory device" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "ccl-kv" ~doc)
          [ set_cmd; get_cmd; del_cmd; scan_cmd; stats_cmd; fsck_cmd ]))
