(* ccl-ycsb: run a YCSB-style workload against any of the compared
   indexes and report throughput, amplification and traffic.

     # single driver: measured 1-thread wall clock + modeled curve
     dune exec bin/ycsb.exe -- --index ccl --mix insert-only \
       --warmup 50000 --ops 50000 --model-threads 48

     # sharded: real domain-parallel execution, measured (not modeled)
     dune exec bin/ycsb.exe -- --index ccl --mix insert-only --domains 4

   Indexes: ccl fastfair fptree lbtree utree dptree pactree flatstore lsm
   Mixes:   insert-only insert-intensive read-intensive read-only
            scan-insert *)

module D = Pmem.Device
module S = Pmem.Stats
module Y = Workload.Ycsb
module K = Workload.Keygen

let spec_of = function
  | "ccl" -> Harness.Runner.ccl_default
  | "fastfair" -> Harness.Runner.Fastfair
  | "fptree" -> Harness.Runner.Fptree
  | "lbtree" -> Harness.Runner.Lbtree
  | "utree" -> Harness.Runner.Utree
  | "dptree" -> Harness.Runner.Dptree
  | "pactree" -> Harness.Runner.Pactree
  | "flatstore" -> Harness.Runner.Flatstore
  | "lsm" -> Harness.Runner.Lsm
  | s ->
    Printf.eprintf
      "ccl-ycsb: unknown index '%s' (expected ccl fastfair fptree lbtree \
       utree dptree pactree flatstore lsm)\n\
       Try 'ccl-ycsb --help' for usage.\n"
      s;
    exit 2

let mix_of = function
  | "insert-only" -> Y.Insert_only
  | "insert-intensive" -> Y.Insert_intensive
  | "read-intensive" -> Y.Read_intensive
  | "read-only" -> Y.Read_only
  | "scan-insert" -> Y.Scan_insert
  | s ->
    Printf.eprintf
      "ccl-ycsb: unknown mix '%s' (expected insert-only insert-intensive \
       read-intensive read-only scan-insert)\n\
       Try 'ccl-ycsb --help' for usage.\n"
      s;
    exit 2

let kv fmt = Printf.printf ("%-26s " ^^ fmt ^^ "\n")

(* --- observability options ----------------------------------------------- *)

type obs_opts = {
  hist : bool;  (* print measured-latency percentile table *)
  sample : int;  (* device time-series period in ops; 0 = off *)
  trace : string option;  (* Chrome trace-event JSON path *)
  metrics : string option;  (* metrics JSON path *)
  attribution : bool;  (* classifier/counter traffic breakdown *)
  profile : bool;  (* Obs.Prof site-attributed WA/contention profiler *)
}

(* The metrics file always carries histograms (its totals are the run's
   op count), so --metrics-json implies histogram collection. *)
let make_recorder o =
  Obs.Recorder.create
    ~hist:(o.hist || o.metrics <> None)
    ~sample_every:o.sample ~trace:(o.trace <> None)
    ~now:Shard.Clock.monotonic_ns ()

(* --profile: the profiler shares the recorder's window (created after
   warmup / resumed at the measured phase) so its per-site tables cover
   exactly the traffic the device delta covers — that is the summation
   invariant pmstat and the tests rely on. *)
let make_profiler o =
  if o.profile then
    Some
      (Obs.Prof.create ~trace:(o.trace <> None) ~now:Shard.Clock.monotonic_ns
         ())
  else None

let obs_report o ?prof rc ~delta =
  Obs.Recorder.finish rc;
  (match prof with Some p -> Obs.Prof.finish p | None -> ());
  if o.hist then Obs.Recorder.print_hists rc;
  (match o.trace with
  | Some path ->
    let extra =
      match prof with Some p -> Obs.Prof.trace_buffers p | None -> []
    in
    Obs.Recorder.write_trace ~extra rc path;
    Printf.printf "trace written to %s (load in ui.perfetto.dev)\n" path
  | None -> ());
  match o.metrics with
  | Some path ->
    (* the "device" section holds the measured-phase counter deltas: the
       same window the histograms and sample series cover *)
    let extra =
      match prof with
      | Some p -> [ ("profile", Obs.Prof.to_json p) ]
      | None -> []
    in
    Obs.Recorder.write_metrics ~extra rc ~device:delta path;
    Printf.printf "metrics written to %s\n" path
  | None -> ()

(* ipmctl-style attribution table: which writes reached the media, split
   by the allocator's chunk classes, plus index-internal counters. *)
let print_attribution ~ops ~(delta : S.t) ~counters =
  let per_op v = float_of_int v /. float_of_int (max 1 ops) in
  Printf.printf "\ntraffic attribution (measured phase):\n";
  kv "%d (%.2f/op)" "  clwb" delta.S.clwb_count (per_op delta.S.clwb_count);
  kv "%d (%.2f/op)" "  sfence" delta.S.sfence_count
    (per_op delta.S.sfence_count);
  kv "%d (%.2f/op)" "  media write lines" delta.S.media_write_lines
    (per_op delta.S.media_write_lines);
  kv "%d (%.2f/op)" "  cpu evictions" delta.S.cpu_evictions
    (per_op delta.S.cpu_evictions);
  let by_class = delta.S.media_write_bytes_by_class in
  kv "%s" "  media bytes by class"
    (Printf.sprintf "meta %d  leaf %d  log %d  extent %d" by_class.(0)
       by_class.(1) by_class.(2) by_class.(3));
  if counters <> [] then begin
    Printf.printf "index counters (measured phase):\n";
    List.iter (fun (name, v) -> kv "%d" ("  " ^ name) v) counters
  end

(* delta of two index-counter snapshots, by name *)
let counters_delta ~before ~after =
  List.map
    (fun (name, v) ->
      let v0 =
        match List.assoc_opt name before with Some x -> x | None -> 0
      in
      (name, v - v0))
    after

let print_traffic st =
  kv "%.2f" "CLI-amplification" (S.cli_amplification st);
  kv "%.2f" "XBI-amplification" (S.xbi_amplification st);
  kv "%d B (%d XPLines)" "media writes" st.S.media_write_bytes
    st.S.media_write_lines;
  kv "%d B" "media reads" st.S.media_read_bytes

let print_modeled m model_threads =
  kv "%.0f ns" "modeled ns/op (1 thread)" m.Harness.Runner.avg_ns;
  List.iter
    (fun n ->
      kv "%.2f Mop/s"
        (Printf.sprintf "modeled @%d threads" n)
        (Harness.Runner.mops_modeled m ~threads:n))
    (List.sort_uniq compare [ 1; model_threads ])

(* --- single-driver path -------------------------------------------------- *)

(* Route each driver entry point through a site label so the sanitizer
   report attributes violations and redundancy per operation kind. *)
let sited_driver san (drv : Baselines.Index_intf.driver) =
  {
    drv with
    Baselines.Index_intf.upsert =
      (fun k v ->
        Pmsan.set_site san "upsert";
        drv.Baselines.Index_intf.upsert k v);
    search =
      (fun k ->
        Pmsan.set_site san "search";
        drv.Baselines.Index_intf.search k);
    delete =
      (fun k ->
        Pmsan.set_site san "delete";
        drv.Baselines.Index_intf.delete k);
    scan =
      (fun ~start n ->
        Pmsan.set_site san "scan";
        drv.Baselines.Index_intf.scan ~start n);
    flush_all =
      (fun () ->
        Pmsan.set_site san "flush_all";
        drv.Baselines.Index_intf.flush_all ());
  }

(* --rsan: the concurrency sanitizer consumes the global Sync.Hook
   stream, so one detector covers every domain; attach before the index
   (and any worker domains) exist so the whole run is checked.  Device
   watches ride add_tracer and pmsan's attach uses set_tracer, so pmsan
   must attach to a device first — both run_single and the sharded
   pre_shard hook keep that order. *)
let rsan_start rsan =
  if rsan then begin
    let san = Rsan.create () in
    Rsan.attach san;
    Some san
  end
  else None

let rsan_finish = function
  | None -> 0
  | Some san ->
    Rsan.detach ();
    Printf.printf "\nrsan report\n%s\n" (Fmt.str "%a" Rsan.pp_report san);
    if Rsan.clean san then 0 else 1

let no_reader_path spec =
  Printf.eprintf
    "ccl-ycsb: --readers: index '%s' has no concurrent read path (only ccl \
     does)\nTry 'ccl-ycsb --help' for usage.\n"
    (Harness.Runner.name spec);
  exit 2

let no_writer_path spec =
  Printf.eprintf
    "ccl-ycsb: --writers: index '%s' has no concurrent write path (only ccl \
     does)\nTry 'ccl-ycsb --help' for usage.\n"
    (Harness.Runner.name spec);
  exit 2

(* Per-key sum of several index-counter snapshots (writer handles keep
   their own counters; attribution wants the union). *)
let sum_assoc lists =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (List.iter (fun (k, v) ->
         if not (Hashtbl.mem tbl k) then order := k :: !order;
         Hashtbl.replace tbl k
           (v + try Hashtbl.find tbl k with Not_found -> 0)))
    lists;
  List.rev_map (fun k -> (k, Hashtbl.find tbl k)) !order

let run_single spec mix mix_name warmup ops model_threads scan_len pmsan budget
    rsan readers writers o =
  let dev = Harness.Runner.device ~mb:(max 96 (warmup / 4000)) () in
  let san = if pmsan then Some (Pmsan.attach ~site:"create" dev) else None in
  (* after pmsan: its set_tracer would evict an earlier rsan watch *)
  let rsan = rsan_start rsan in
  (match rsan with Some r -> Rsan.watch_device r dev | None -> ());
  let drv = Harness.Runner.build spec dev in
  (* --readers in single-driver mode: mint N concurrent-read handles and
     deal searches/scans to them round-robin.  One domain, so this is not
     parallelism — it exercises the optimistic validated-read path (and
     its private device views, invisible to --pmsan by design) under the
     production CLI. *)
  let reader_handles =
    if readers = 0 then [||]
    else
      match drv.Baselines.Index_intf.new_reader with
      | None -> no_reader_path spec
      | Some mint -> Array.init readers (fun _ -> mint ())
  in
  let drv =
    if readers = 0 then drv
    else begin
      let rr = ref 0 in
      let next () =
        let h = reader_handles.(!rr mod readers) in
        incr rr;
        h
      in
      {
        drv with
        Baselines.Index_intf.search =
          (fun k -> (next ()).Baselines.Index_intf.r_search k);
        scan =
          (fun ~start n -> (next ()).Baselines.Index_intf.r_scan ~start n);
      }
    end
  in
  (match drv.Baselines.Index_intf.new_writer with
  | None when writers > 0 -> no_writer_path spec
  | _ -> ());
  let drv =
    match san with Some s -> sited_driver s drv | None -> drv
  in
  D.set_classifier dev
    (Some (Pmalloc.Alloc.classify (drv.Baselines.Index_intf.allocator ())));
  Printf.printf "loading %d keys into %s...\n%!" warmup
    (Harness.Runner.name spec);
  Harness.Runner.warmup drv ~keys:(K.shuffled_range ~seed:1 warmup);
  (* --writers in single-driver mode: mint N concurrent-writer handles
     (each with a private WAL lane and device write view) and deal the
     mix's mutations to them round-robin.  Minted after the load, so the
     views' counters cover exactly the measured phase.  One domain, so
     this is not parallelism — it exercises the optimistic-lock-coupling
     write path under the production CLI (view traffic is invisible to
     --pmsan by design, like the reader views). *)
  let writer_handles =
    if writers = 0 then [||]
    else
      match drv.Baselines.Index_intf.new_writer with
      | None -> no_writer_path spec
      | Some mint -> Array.init writers (fun _ -> mint ())
  in
  let drv =
    if writers = 0 then drv
    else begin
      let wr = ref 0 in
      let next () =
        let h = writer_handles.(!wr mod writers) in
        incr wr;
        h
      in
      {
        drv with
        Baselines.Index_intf.upsert =
          (fun k v -> (next ()).Baselines.Index_intf.w_upsert k v);
        delete = (fun k -> (next ()).Baselines.Index_intf.w_delete k);
      }
    end
  in
  (* the recorder starts here, after warmup, so histograms / samples /
     trace cover exactly the measured op phase; add_tracer composes with
     a sanitizer installed at attach time, so --pmsan and --trace stack *)
  let rc = make_recorder o in
  let ow =
    if Obs.Recorder.enabled rc then begin
      let w = Obs.Recorder.worker rc ~tid:0 ~name:"main" ~dev () in
      Obs.Recorder.install_device_tracer w;
      Some w
    end
    else None
  in
  (* the profiler joins the same window: lanes attach here, after the
     load, so the per-site tables cover exactly the measured phase
     (lines stored during the load that evict later show as "(other)").
     attach_device rides add_tracer, composing behind pmsan's set_tracer,
     rsan's watch and the recorder's trace hook; the sync-hook consumer
     installs after any rsan attach for the same reason. *)
  let prof = make_profiler o in
  (match prof with
  | Some p ->
    let ln = Obs.Prof.lane p ~tid:0 in
    Obs.Prof.attach_device ln dev;
    Array.iteri
      (fun i h ->
        let ln = Obs.Prof.lane p ~tid:(i + 1) in
        Obs.Prof.attach_device ln (h.Baselines.Index_intf.w_dev ()))
      writer_handles;
    Array.iteri
      (fun i h ->
        let ln = Obs.Prof.lane p ~tid:(writers + i + 1) in
        Obs.Prof.attach_device ln (h.Baselines.Index_intf.r_dev ()))
      reader_handles;
    Obs.Prof.install_sync_hook p
  | None -> ());
  let counters0 = drv.Baselines.Index_intf.counters () in
  let stream = Y.generate mix ~seed:7 ~space:(2 * warmup) ~scan_len ops in
  Printf.printf "running %d x %s ops...\n%!" ops mix_name;
  let m = Harness.Exp_common.run_ops ?obs:ow dev drv spec stream in
  (* writer-handle mutations run through private device views, so their
     traffic is not in the main device's counter delta; merge it back in
     (the views were fresh at mint time, so their absolute counters are
     the measured-phase delta) *)
  let wstats =
    S.merge_all
      (Array.to_list
         (Array.map
            (fun h -> h.Baselines.Index_intf.w_dev_stats ())
            writer_handles))
  in
  let delta =
    if writers = 0 then m.Harness.Runner.delta
    else S.merge_all [ m.Harness.Runner.delta; wstats ]
  in
  Printf.printf "\n";
  kv "%s" "index" (Harness.Runner.name spec);
  kv "%s" "mix" mix_name;
  print_traffic delta;
  kv "%.2f Mop/s" "measured (1 thread)" (Harness.Runner.mops_measured m);
  if writers > 0 then begin
    let wretries =
      Array.fold_left
        (fun a h -> a + h.Baselines.Index_intf.w_retries ())
        0 writer_handles
    in
    kv "%d" "writer handles" writers;
    kv "%d" "writer retries" wretries;
    kv "%d B" "writer media writes" wstats.S.media_write_bytes
  end;
  if readers > 0 then begin
    let rretries =
      Array.fold_left
        (fun a h -> a + h.Baselines.Index_intf.r_retries ())
        0 reader_handles
    in
    let rstats =
      S.merge_all
        (Array.to_list
           (Array.map
              (fun h -> h.Baselines.Index_intf.r_dev_stats ())
              reader_handles))
    in
    kv "%d" "reader handles" readers;
    kv "%d" "reader retries" rretries;
    kv "%d B" "reader media reads" rstats.S.media_read_bytes
  end;
  print_modeled m model_threads;
  (match prof with
  | Some p -> Obs.Prof.print_report p ~name:(Harness.Runner.name spec)
  | None -> ());
  obs_report o ?prof rc ~delta;
  if o.attribution then
    print_attribution ~ops ~delta
      ~counters:
        (counters_delta ~before:counters0
           ~after:
             (sum_assoc
                (drv.Baselines.Index_intf.counters ()
                :: Array.to_list
                     (Array.map
                        (fun h -> h.Baselines.Index_intf.w_counters ())
                        writer_handles))));
  let pmsan_rc =
    match san with
    | None -> 0
    | Some san ->
      (* settle the device so end-of-run shadow state is fully persisted *)
      Pmsan.set_site san "drain";
      drv.Baselines.Index_intf.flush_all ();
      D.drain dev;
      let correctness = Pmsan.correctness (Pmsan.violations san) in
      Printf.printf "\npmsan per-site report\n%s\n"
        (Fmt.str "%a" Pmsan.pp_site_table san);
      let budget_rc =
        match budget with
        | None -> 0
        | Some ceiling -> (
          match Pmsan.Budget.check ceiling (Pmsan.counters san) with
          | Ok () ->
            Printf.printf "flush budget OK (%s)\n"
              (Fmt.str "%a" Pmsan.Budget.pp_ceiling ceiling);
            0
          | Error breaches ->
            Printf.printf "flush budget BREACHED (%s):\n"
              (Fmt.str "%a" Pmsan.Budget.pp_ceiling ceiling);
            List.iter (Printf.printf "  %s\n") breaches;
            1)
      in
      if correctness <> [] then begin
        Printf.printf "\npmsan CORRECTNESS violations:\n%s\n"
          (Fmt.str "%a" Fmt.(list ~sep:cut Pmsan.pp_violation) correctness);
        1
      end
      else budget_rc
  in
  max pmsan_rc (rsan_finish rsan)

(* --- sharded (measured) path --------------------------------------------- *)

let run_sharded spec mix mix_name warmup ops model_threads scan_len domains
    readers rsan o =
  let rc = make_recorder o in
  (* attach before the shard domains spawn so every hook event is seen *)
  let rsan = rsan_start rsan in
  (* workers register their lanes inside Shard.create; pause until the
     measured phase so the load traffic stays out of the books (the
     profiler follows the same discipline — its sync hook installs after
     rsan's so the detector keeps seeing every event) *)
  Obs.Recorder.pause rc;
  let prof = make_profiler o in
  (match prof with
  | Some p ->
    Obs.Prof.install_sync_hook p;
    Obs.Prof.pause p
  | None -> ());
  let t =
    Harness.Runner.make_sharded ~mb:(max 96 (warmup / 4000))
      ?recorder:(if Obs.Recorder.enabled rc then Some rc else None)
      ?profiler:prof
      ?pre_shard:
        (match rsan with
        | Some r -> Some (fun _ dev -> Rsan.watch_device r dev)
        | None -> None)
      spec ~domains ()
  in
  Printf.printf "loading %d keys into %d x %s shards...\n%!" warmup domains
    (Harness.Runner.name spec);
  Shard.run t
    (Array.mapi
       (fun i k -> Y.Insert (k, Int64.of_int (i + 1)))
       (K.shuffled_range ~seed:1 warmup));
  Shard.flush t;
  Shard.reset_counters t;
  Obs.Recorder.resume rc;
  (match prof with Some p -> Obs.Prof.resume p | None -> ());
  (* --readers: a pool of read-only domains on the (single) shard's tree;
     the mix's reads and scans run there, concurrently with the writer
     domain applying the mutations.  Profiler lane tids continue past the
     shard workers' 1..domains range. *)
  let pool =
    if readers = 0 then None
    else begin
      match Shard.new_reader t 0 with
      | None -> no_reader_path spec
      | Some _ ->
        Some
          (Shard.reader_pool ?profiler:prof ~tid_base:(domains + 1) t
             ~shard:0 ~readers)
    end
  in
  let stream = Y.generate mix ~seed:7 ~space:(2 * warmup) ~scan_len ops in
  let read_ops, write_ops =
    match pool with
    | None -> ([||], stream)
    | Some _ ->
      let is_read = function Y.Read _ | Y.Scan _ -> true | Y.Insert _ -> false in
      ( Array.of_seq (Seq.filter is_read (Array.to_seq stream)),
        Array.of_seq
          (Seq.filter (fun op -> not (is_read op)) (Array.to_seq stream)) )
  in
  Printf.printf "running %d x %s ops over %d domains%s...\n%!" ops mix_name
    domains
    (match pool with
    | Some _ -> Printf.sprintf " + %d reader domains" readers
    | None -> "");
  let before = Shard.stats t in
  let t0 = Shard.Clock.monotonic_ns () in
  (match pool with
  | Some p -> Shard.Read_pool.run_async p read_ops
  | None -> ());
  Shard.run t write_ops;
  Shard.flush t;
  (match pool with Some p -> Shard.Read_pool.join p | None -> ());
  let wall_ns = Int64.to_float (Int64.sub (Shard.Clock.monotonic_ns ()) t0) in
  let delta = S.diff ~after:(Shard.stats t) ~before in
  let busy = Shard.busy_ns t in
  let max_busy =
    Array.fold_left max 1
      (match pool with
      | Some p -> Array.append busy (Shard.Read_pool.busy_ns p)
      | None -> busy)
  in
  let applied = Shard.applied t in
  let total_applied =
    Array.fold_left ( + ) 0 applied
    + (match pool with
      | Some p -> Array.fold_left ( + ) 0 (Shard.Read_pool.applied p)
      | None -> 0)
  in
  Printf.printf "\n";
  kv "%s" "index" (Harness.Runner.name spec);
  kv "%s" "mix" mix_name;
  kv "%d" "domains" domains;
  print_traffic delta;
  kv "%.2f Mop/s" "measured wall-clock"
    (float_of_int ops *. 1e3 /. wall_ns);
  kv "%.2f Mop/s" "measured service rate"
    (float_of_int total_applied *. 1e3 /. float_of_int max_busy);
  kv "%s" "per-shard applied"
    (String.concat " "
       (Array.to_list (Array.map string_of_int applied)));
  (match pool with
  | Some p ->
    kv "%s" "per-reader applied"
      (String.concat " "
         (Array.to_list
            (Array.map string_of_int (Shard.Read_pool.applied p))));
    Shard.Read_pool.shutdown p;
    kv "%d" "reader retries" (Shard.Read_pool.retries p);
    kv "%d B" "reader media reads"
      (Shard.Read_pool.dev_stats p).S.media_read_bytes
  | None -> ());
  (* the analytic curve next to the measurement, for comparison *)
  let n = max 1 ops in
  let m =
    {
      Harness.Runner.ops;
      delta;
      avg_ns =
        Perfmodel.Constants.base_op_ns
        +. (Harness.Runner.events_cost_ns delta /. float_of_int n);
      wall_ns;
      samples = [||];
      numa_aware = Harness.Runner.numa_aware spec;
    }
  in
  print_modeled m model_threads;
  (match prof with
  | Some p -> Obs.Prof.print_report p ~name:(Harness.Runner.name spec)
  | None -> ());
  obs_report o ?prof rc ~delta;
  if o.attribution then print_attribution ~ops ~delta ~counters:[];
  Shard.shutdown t;
  rsan_finish rsan

(* --writers in sharded mode: every shard gets a pool of [writers]
   writer domains (optimistic lock coupling inside the tree, one WAL
   lane and device write view per domain), plus a pool of [readers]
   reader domains when --readers is given.  The router never carries a
   mutation — each shard's slice of the stream goes to its pools, the
   write pool executing inserts/deletes and the read pool the
   reads/scans.  Without --readers, reads fall back to the router
   (the shard worker's lock-free search; results are discarded, so a
   read racing a writer lane is harmless).  --pmsan attaches one
   sanitizer per shard device before the worker domains spawn; lane
   traffic runs through private views the sanitizer does not observe
   (same reduced-coverage contract as reader views), so the report
   covers the shared-device traffic: load, WAL chunk handoff, buffer
   flushes and end-of-run drain. *)
let run_sharded_writers spec mix mix_name warmup ops model_threads scan_len
    domains readers writers pmsan rsan o =
  let rc = make_recorder o in
  let rsan = rsan_start rsan in
  Obs.Recorder.pause rc;
  let prof = make_profiler o in
  (match prof with
  | Some p ->
    Obs.Prof.install_sync_hook p;
    Obs.Prof.pause p
  | None -> ());
  let sans = Array.make domains None in
  let t =
    Harness.Runner.make_sharded ~mb:(max 96 (warmup / 4000))
      ?recorder:(if Obs.Recorder.enabled rc then Some rc else None)
      ?profiler:prof
      ?pre_shard:
        (if pmsan || rsan <> None then
           Some
             (fun i dev ->
               (* pmsan first: it set_tracers, rsan's watch add_tracers *)
               if pmsan then
                 sans.(i) <- Some (Pmsan.attach ~site:"shard" dev);
               match rsan with
               | Some r -> Rsan.watch_device r dev
               | None -> ())
         else None)
      spec ~domains ()
  in
  (match Shard.new_writer t 0 with
  | None -> no_writer_path spec
  | Some _ -> ());
  if readers > 0 && Shard.new_reader t 0 = None then no_reader_path spec;
  Printf.printf "loading %d keys into %d x %s shards...\n%!" warmup domains
    (Harness.Runner.name spec);
  Shard.run t
    (Array.mapi
       (fun i k -> Y.Insert (k, Int64.of_int (i + 1)))
       (K.shuffled_range ~seed:1 warmup));
  Shard.flush t;
  Shard.reset_counters t;
  Obs.Recorder.resume rc;
  (match prof with Some p -> Obs.Prof.resume p | None -> ());
  (* pools are created after the load, so each lane's device view and
     retry counter cover exactly the measured phase.  Profiler lane tids:
     shard workers take 1..domains, then writer lanes, then reader
     lanes — disjoint ranges so per-lane trace tracks stay distinct. *)
  let wpools =
    Array.init domains (fun s ->
        Shard.writer_pool ?profiler:prof
          ~tid_base:(domains + 1 + (s * writers))
          t ~shard:s ~writers)
  in
  let rpools =
    if readers = 0 then [||]
    else
      Array.init domains (fun s ->
          Shard.reader_pool ?profiler:prof
            ~tid_base:(domains + 1 + (domains * writers) + (s * readers))
            t ~shard:s ~readers)
  in
  let stream = Y.generate mix ~seed:7 ~space:(2 * warmup) ~scan_len ops in
  (* partition once by owning shard; both of a shard's pools get the
     same slice (the write pool ignores reads and vice versa) *)
  let per_shard = Array.make domains [] in
  for i = Array.length stream - 1 downto 0 do
    let op = stream.(i) in
    let key =
      match op with Y.Insert (k, _) | Y.Read k | Y.Scan (k, _) -> k
    in
    let s = Shard.shard_of t key in
    per_shard.(s) <- op :: per_shard.(s)
  done;
  let per_shard = Array.map Array.of_list per_shard in
  let router_reads =
    if readers > 0 then [||]
    else
      Array.of_seq
        (Seq.filter
           (function Y.Read _ | Y.Scan _ -> true | Y.Insert _ -> false)
           (Array.to_seq stream))
  in
  Printf.printf
    "running %d x %s ops over %d shards x %d writer domains%s...\n%!" ops
    mix_name domains writers
    (if readers > 0 then
       Printf.sprintf " + %d reader domains each" readers
     else "");
  let before = Shard.stats t in
  let t0 = Shard.Clock.monotonic_ns () in
  Array.iteri
    (fun s p -> Shard.Write_pool.run_async p per_shard.(s))
    wpools;
  Array.iteri (fun s p -> Shard.Read_pool.run_async p per_shard.(s)) rpools;
  if Array.length router_reads > 0 then Shard.run t router_reads;
  Array.iter Shard.Write_pool.join wpools;
  Array.iter Shard.Read_pool.join rpools;
  Shard.flush t;
  let wall_ns = Int64.to_float (Int64.sub (Shard.Clock.monotonic_ns ()) t0) in
  (* stop the pools to latch their domain-private counters, then fold
     the lanes' view traffic into the fleet's counter delta (the views
     were fresh at pool creation, so their absolute counters are the
     measured-phase delta) *)
  Array.iter Shard.Write_pool.shutdown wpools;
  Array.iter Shard.Read_pool.shutdown rpools;
  let wstats =
    S.merge_all
      (Array.to_list (Array.map Shard.Write_pool.dev_stats wpools))
  in
  let delta =
    S.merge_all [ S.diff ~after:(Shard.stats t) ~before; wstats ]
  in
  let shard_busy = Shard.busy_ns t in
  let max_busy =
    Array.fold_left max 1
      (Array.concat
         (shard_busy
          :: (Array.to_list (Array.map Shard.Write_pool.busy_ns wpools)
             @ Array.to_list (Array.map Shard.Read_pool.busy_ns rpools))))
  in
  let applied = Shard.applied t in
  let wapplied =
    Array.concat (Array.to_list (Array.map Shard.Write_pool.applied wpools))
  in
  let total_applied =
    Array.fold_left ( + ) 0 applied
    + Array.fold_left ( + ) 0 wapplied
    + Array.fold_left
        (fun acc p -> acc + Array.fold_left ( + ) 0 (Shard.Read_pool.applied p))
        0 rpools
  in
  Printf.printf "\n";
  kv "%s" "index" (Harness.Runner.name spec);
  kv "%s" "mix" mix_name;
  kv "%d" "domains" domains;
  kv "%d" "writers per shard" writers;
  if readers > 0 then kv "%d" "readers per shard" readers;
  print_traffic delta;
  kv "%.2f Mop/s" "measured wall-clock" (float_of_int ops *. 1e3 /. wall_ns);
  kv "%.2f Mop/s" "measured service rate"
    (float_of_int total_applied *. 1e3 /. float_of_int max_busy);
  kv "%s" "per-shard applied"
    (String.concat " " (Array.to_list (Array.map string_of_int applied)));
  kv "%s" "per-writer applied"
    (String.concat " " (Array.to_list (Array.map string_of_int wapplied)));
  kv "%d" "writer retries"
    (Array.fold_left (fun a p -> a + Shard.Write_pool.retries p) 0 wpools);
  kv "%d B" "writer media writes" wstats.S.media_write_bytes;
  if readers > 0 then begin
    kv "%s" "per-reader applied"
      (String.concat " "
         (List.concat_map
            (fun p ->
              Array.to_list
                (Array.map string_of_int (Shard.Read_pool.applied p)))
            (Array.to_list rpools)));
    kv "%d" "reader retries"
      (Array.fold_left (fun a p -> a + Shard.Read_pool.retries p) 0 rpools);
    kv "%d B" "reader media reads"
      (S.merge_all
         (Array.to_list (Array.map Shard.Read_pool.dev_stats rpools)))
        .S.media_read_bytes
  end;
  let n = max 1 ops in
  let m =
    {
      Harness.Runner.ops;
      delta;
      avg_ns =
        Perfmodel.Constants.base_op_ns
        +. (Harness.Runner.events_cost_ns delta /. float_of_int n);
      wall_ns;
      samples = [||];
      numa_aware = Harness.Runner.numa_aware spec;
    }
  in
  print_modeled m model_threads;
  (match prof with
  | Some p -> Obs.Prof.print_report p ~name:(Harness.Runner.name spec)
  | None -> ());
  obs_report o ?prof rc ~delta;
  if o.attribution then print_attribution ~ops ~delta ~counters:[];
  if not pmsan then begin
    Shard.shutdown t;
    rsan_finish rsan
  end
  else begin
    (* settle every shard (flush_all + device drain on the worker
       domains) so end-of-run shadow state is fully persisted, then
       collect the per-shard reports in a quiescent window *)
    Shard.drain t;
    Shard.shutdown t;
    let correctness =
      List.concat_map
        (function
          | Some san -> Pmsan.correctness (Pmsan.violations san)
          | None -> [])
        (Array.to_list sans)
    in
    Array.iteri
      (fun i san ->
        match san with
        | Some san ->
          Printf.printf "\npmsan shard %d per-site report\n%s\n" i
            (Fmt.str "%a" Pmsan.pp_site_table san)
        | None -> ())
      sans;
    let pmsan_rc =
      if correctness <> [] then begin
        Printf.printf "\npmsan CORRECTNESS violations:\n%s\n"
          (Fmt.str "%a" Fmt.(list ~sep:cut Pmsan.pp_violation) correctness);
        1
      end
      else 0
    in
    max pmsan_rc (rsan_finish rsan)
  end

open Cmdliner

let run index mix warmup ops model_threads threads scan_len domains readers
    writers pmsan rsan flush_budget hist sample trace metrics attribution
    profile =
  let usage fmt =
    Printf.ksprintf
      (fun m ->
        Printf.eprintf "ccl-ycsb: %s\nTry 'ccl-ycsb --help' for usage.\n" m;
        exit 2)
      fmt
  in
  (* [--threads] used to be a silent alias of [--model-threads]; accept it
     alone (with a warning), but refuse the ambiguous combinations *)
  (match threads with
  | Some _ when domains > 0 ->
    usage
      "--threads is a deprecated alias for --model-threads (an analytic \
       curve, not an execution) and cannot be combined with --domains, \
       which runs real domains; use --model-threads for the modeled \
       columns or drop it"
  | Some _ when model_threads <> None ->
    usage "--threads and --model-threads are the same option; give one"
  | Some _ ->
    Printf.eprintf
      "ccl-ycsb: warning: --threads is deprecated, use --model-threads\n%!"
  | None -> ());
  let model_threads =
    match (model_threads, threads) with
    | Some n, _ | None, Some n -> n
    | None, None -> 48
  in
  if model_threads < 1 then
    usage "--model-threads must be >= 1 (got %d)" model_threads;
  if domains < 0 || domains > 128 then
    usage "--domains must be in 0..128 (got %d)" domains;
  if readers < 0 || readers > 64 then
    usage "--readers must be in 0..64 (got %d)" readers;
  if writers < 0 || writers > 64 then
    usage "--writers must be in 0..64 (got %d)" writers;
  if readers > 0 && domains > 1 && writers = 0 then
    usage
      "--readers attaches read-only domains to a single shard's index: \
       use --domains 1 (or 0 for the single-driver round-robin mode), or \
       add --writers to attach per-shard pools";
  if writers > 0 && flush_budget <> None then
    usage
      "--flush-budget ceilings are calibrated for the single-writer \
       path; --writers routes mutations through per-lane device views \
       the sanitizer does not observe, so the counters cannot be priced \
       against them — drop one of the two";
  if warmup < 0 then usage "--warmup must be >= 0 (got %d)" warmup;
  if ops < 1 then usage "--ops must be >= 1 (got %d)" ops;
  if scan_len < 1 then usage "--scan-len must be >= 1 (got %d)" scan_len;
  let pmsan = pmsan || flush_budget <> None in
  if pmsan && domains > 0 && writers = 0 then
    usage
      "--pmsan only works in single-driver mode (--domains 0): shards run \
       on their own domains, and the sanitizer hook is not thread-safe \
       (with --writers > 0 a sanitizer is attached per shard instead)";
  let budget =
    match flush_budget with
    | None -> None
    | Some file -> (
      let text =
        try
          let ic = open_in file in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        with Sys_error e -> usage "--flush-budget: %s" e
      in
      match Pmsan.Budget.of_bindings ~index (Obs.Json.scan_numbers text) with
      | Some c -> Some c
      | None -> usage "--flush-budget: no ceiling for index %S in %s" index file)
  in
  if sample < 0 then usage "--sample must be >= 0 (got %d)" sample;
  (match trace with
  | Some "" -> usage "--trace needs a non-empty output path"
  | _ -> ());
  (match metrics with
  | Some "" -> usage "--metrics-json needs a non-empty output path"
  | _ -> ());
  let o = { hist; sample; trace; metrics; attribution; profile } in
  let spec = spec_of index in
  (* one WAL lane per writer handle: the tree asserts the lane index
     against the config's thread count, so size it up front *)
  let spec =
    match spec with
    | Harness.Runner.Ccl (cfg, name) when writers > 0 ->
      Harness.Runner.Ccl
        ( {
            cfg with
            Ccl_btree.Config.threads =
              max cfg.Ccl_btree.Config.threads writers;
          },
          name )
    | s -> s
  in
  let m = mix_of mix in
  if domains = 0 then
    run_single spec m mix warmup ops model_threads scan_len pmsan budget rsan
      readers writers o
  else if writers > 0 then
    run_sharded_writers spec m mix warmup ops model_threads scan_len domains
      readers writers pmsan rsan o
  else
    run_sharded spec m mix warmup ops model_threads scan_len domains readers
      rsan o

let cmd =
  let index =
    Arg.(value & opt string "ccl" & info [ "index" ] ~docv:"INDEX")
  in
  let mix =
    Arg.(value & opt string "insert-only" & info [ "mix" ] ~docv:"MIX")
  in
  let warmup = Arg.(value & opt int 20_000 & info [ "warmup" ]) in
  let ops = Arg.(value & opt int 20_000 & info [ "ops" ]) in
  let model_threads =
    Arg.(
      value
      & opt (some int) None
      & info [ "model-threads" ] ~docv:"N"
          ~doc:
            "Thread count for the $(b,modeled) Perfmodel.Thread_model \
             columns (an analytic curve, not an execution; default 48).  \
             For measured multicore numbers use $(b,--domains).")
  in
  let threads =
    Arg.(
      value
      & opt (some int) None
      & info [ "threads" ] ~docv:"N"
          ~doc:
            "Deprecated alias for $(b,--model-threads).  Rejected when \
             combined with $(b,--domains) or $(b,--model-threads): the \
             name suggests a measured execution, but it only labels the \
             modeled curve — say which one you mean.")
  in
  let scan_len = Arg.(value & opt int 100 & info [ "scan-len" ]) in
  let readers =
    Arg.(
      value & opt int 0
      & info [ "readers" ] ~docv:"N"
          ~doc:
            "Attach $(docv) concurrent read-only handles to the index \
             (CCL-BTree only).  With $(b,--domains 1), a real pool of \
             $(docv) reader domains executes the mix's reads and scans \
             concurrently with the shard's writer domain.  In \
             single-driver mode the handles are exercised round-robin \
             from the main domain (and compose with $(b,--pmsan): reader \
             loads go through private device views the sanitizer does \
             not observe).")
  in
  let writers =
    Arg.(
      value & opt int 0
      & info [ "writers" ] ~docv:"N"
          ~doc:
            "Attach $(docv) concurrent writer handles to the index \
             (CCL-BTree only; optimistic lock coupling, one WAL lane and \
             device write view per handle).  With $(b,--domains) >= 1, \
             each shard gets a real pool of $(docv) writer domains \
             executing the mix's inserts and deletes concurrently \
             (composes with $(b,--readers), which then attaches a reader \
             pool per shard, and with $(b,--pmsan), which then attaches \
             one sanitizer per shard device).  In single-driver mode the \
             handles are exercised round-robin from the main domain.")
  in
  let domains =
    Arg.(
      value & opt int 0
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Run the workload on $(docv) key-partitioned shards, one \
             OCaml domain and one private PM device each, and report \
             $(b,measured) throughput (0 = single-driver mode).  \
             Composes with $(b,--model-threads), which only labels the \
             modeled comparison columns.")
  in
  let pmsan =
    Arg.(
      value & flag
      & info [ "pmsan" ]
          ~doc:
            "Run the workload under the $(b,Pmsan) persistency sanitizer \
             and print a per-site violation/redundancy report.  Exits 1 \
             if any correctness-class violation is found.  Single-driver \
             mode only (incompatible with $(b,--domains) > 0).")
  in
  let rsan =
    Arg.(
      value & flag
      & info [ "rsan" ]
          ~doc:
            "Run the workload under the $(b,Rsan) concurrency sanitizer: \
             a vector-clock race detector and lock-discipline linter over \
             the index's vlock/SX/epoch protocol events, plus the \
             fence→ack ordering check on every device.  Prints a per-site \
             report and exits 1 on any detected race or protocol lint.  \
             Works in every execution mode ($(b,--domains), \
             $(b,--readers), $(b,--writers)) and composes with \
             $(b,--pmsan) and $(b,--trace): rsan's device watch fans out \
             behind them.  Indexes that do not route through lib/sync \
             emit no events and trivially pass.")
  in
  let flush_budget =
    Arg.(
      value
      & opt (some string) None
      & info [ "flush-budget" ] ~docv:"FILE"
          ~doc:
            "Check the run's pmsan counters against the per-index \
             flush-waste ceilings in $(docv) (flat JSON, \
             $(b,index.field) keys as in FLUSH_BUDGET.json).  Implies \
             $(b,--pmsan); exits 1 when any ceiling is exceeded.")
  in
  let hist =
    Arg.(
      value & flag
      & info [ "hist" ]
          ~doc:
            "Record an allocation-free log-bucketed latency histogram per \
             op kind around the measured phase and print the \
             p50/p90/p99/p99.9/max table (per-worker histograms are \
             merged in sharded mode).")
  in
  let sample =
    Arg.(
      value & opt int 0
      & info [ "sample" ] ~docv:"N"
          ~doc:
            "Every $(docv) ops, snapshot the device counter deltas plus \
             XPBuffer occupancy and dirty-cacheline count into the \
             metrics time-series (0 = off; series is exported by \
             $(b,--metrics-json)).")
  in
  let trace =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event JSON of the measured phase \
             (ops, WAL batch flushes, splits, GC runs, queue activity, \
             worker busy periods) to $(docv); load it in \
             ui.perfetto.dev.  Composes with $(b,--pmsan): the tracer \
             fans out, both consumers see every device event.")
  in
  let metrics =
    Arg.(
      value & opt (some string) None
      & info [ "metrics-json" ] ~docv:"FILE"
          ~doc:
            "Write a metrics JSON (latency histograms, measured-phase \
             device counters with amplification ratios, and the \
             $(b,--sample) time-series) to $(docv).  Two such files diff \
             into the paper's counter table with $(b,pmstat.exe).")
  in
  let attribution =
    Arg.(
      value & flag
      & info [ "attribution" ]
          ~doc:
            "Print the traffic-attribution table for the measured phase: \
             flushes and media-write lines per op, media bytes split by \
             allocator chunk class (meta/leaf/log/extent), and \
             index-internal counters (log appends, batch flushes, \
             splits, GC work) where the index exposes them.")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Run the $(b,Obs.Prof) site-attribution profiler over the \
             measured phase and print the per-site write-amplification \
             flame table — bytes logically stored vs bytes reaching the \
             media, split by the mechanism that issued the store \
             (wal-append, leaf-buffer, smo-split, smo-merge, gc, and the \
             baselines' analogues) — plus the contention summary (vlock \
             try failures, upgrade aborts, optimistic-read retries, SX \
             wait percentiles, shard-queue residency).  Composes with \
             every execution mode and with $(b,--pmsan), $(b,--rsan) and \
             $(b,--trace) (per-site counter tracks appear in the trace \
             document); $(b,--metrics-json) gains a $(b,profile) section \
             that $(b,pmstat.exe) prints and diffs.")
  in
  Cmd.v
    (Cmd.info "ccl-ycsb" ~doc:"YCSB workload runner for the compared indexes")
    Term.(
      const run $ index $ mix $ warmup $ ops $ model_threads $ threads
      $ scan_len $ domains $ readers $ writers $ pmsan $ rsan $ flush_budget
      $ hist $ sample $ trace $ metrics $ attribution $ profile)

let () = exit (Cmd.eval' cmd)
