(* crashcheck: exhaustive crash-state model checking of the PM indexes.

     dune exec bin/crashcheck.exe -- --smoke
     dune exec bin/crashcheck.exe -- --ops 800 --stride 5 --probs 0.0,0.4,1.0
     dune exec bin/crashcheck.exe -- --index hash --ops 300 --seeds 7,8,9

   For every fence index of the workload (optionally strided), the device
   is rewound to a post-format checkpoint, power fails at that fence,
   recovery runs, and a volatile oracle plus the offline fsck validate
   the surviving state.  Exit status 1 when any crash point violates. *)

module C = Crashmc
module Config = Ccl_btree.Config

open Cmdliner

let ops_arg =
  Arg.(
    value & opt int 500
    & info [ "ops" ] ~docv:"N" ~doc:"Operations in the scripted workload.")

let key_space_arg =
  Arg.(
    value & opt int 300
    & info [ "key-space" ] ~docv:"K"
        ~doc:"Key space; smaller than N so upserts revisit keys.")

let wseed_arg =
  Arg.(
    value & opt int 1
    & info [ "workload-seed" ] ~docv:"SEED" ~doc:"Workload generator seed.")

let seeds_arg =
  Arg.(
    value & opt (list int) [ 1; 2 ]
    & info [ "seeds" ] ~docv:"S1,S2,..."
        ~doc:"Adversarial crash seeds (comma separated).")

let probs_arg =
  Arg.(
    value & opt (list float) [ 0.0; 0.5; 1.0 ]
    & info [ "probs" ] ~docv:"P1,P2,..."
        ~doc:
          "persist_prob values: probability an unfenced dirty line \
           survives the crash.")

let stride_arg =
  Arg.(
    value & opt int 1
    & info [ "stride"; "sample" ] ~docv:"N"
        ~doc:"Test every N-th fence index (1 = every fence).")

let index_arg =
  Arg.(
    value
    & opt (enum [ ("tree", C.Tree); ("hash", C.Hash) ]) C.Tree
    & info [ "index" ] ~docv:"tree|hash" ~doc:"Index structure under test.")

let buckets_arg =
  Arg.(
    value & opt int 16
    & info [ "buckets" ] ~docv:"B" ~doc:"Hash directory size (hash only).")

let size_arg =
  Arg.(
    value
    & opt int (16 * 1024 * 1024)
    & info [ "size" ] ~docv:"BYTES" ~doc:"Simulated device capacity.")

let nbatch_arg =
  Arg.(
    value & opt int Config.default.Config.nbatch
    & info [ "nbatch" ] ~docv:"N" ~doc:"Buffer-node slots (N_batch).")

let smoke_arg =
  Arg.(
    value & flag
    & info [ "smoke" ]
        ~doc:
          "Smoke preset: a 500-op mixed workload, every fence, crash \
           seeds 1 and 2, persist_prob 0.4, an 8 MiB device, small chunks \
           and an active GC.")

let no_minimize_arg =
  Arg.(
    value & flag
    & info [ "no-minimize" ] ~doc:"Report full traces without minimizing.")

let quiet_arg =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No progress output.")

let pmsan_arg =
  Arg.(
    value & flag
    & info [ "pmsan" ]
        ~doc:
          "Shadow-validate every model-checked execution with the \
           $(b,Pmsan) persistency sanitizer: correctness-class findings \
           are reported as violations of their crash point, and \
           sweep-wide flush/fence counters are printed.")

let run ops key_space wseed seeds probs stride index buckets size nbatch smoke
    no_minimize quiet pmsan =
  let usage m =
    Printf.eprintf "crashcheck: %s\nTry 'crashcheck --help' for usage.\n" m;
    exit 2
  in
  if stride < 1 then usage "--stride must be >= 1";
  if ops < 1 then usage "--ops must be >= 1";
  if key_space < 1 then usage "--key-space must be >= 1";
  if buckets < 1 then usage "--buckets must be >= 1";
  if size < 1 lsl 20 then usage "--size must be at least 1 MiB";
  if nbatch < 1 || nbatch > 12 then usage "--nbatch must be in 1..12";
  if seeds = [] then usage "--seeds needs at least one seed";
  if probs = [] then usage "--probs needs at least one probability";
  if List.exists (fun p -> p < 0.0 || p > 1.0) probs then
    usage "--probs values must be within [0,1]";
  let ops, seeds, probs, stride, size =
    if smoke then (max ops 500, [ 1; 2 ], [ 0.4 ], 1, 8 * 1024 * 1024)
    else (ops, seeds, probs, stride, size)
  in
  let cfg =
    {
      Config.default with
      Config.nbatch;
      chunk_size = 4096;
      th_log = 0.15;
    }
  in
  let workload = C.mixed_workload ~seed:wseed ~n:ops ~key_space in
  let progress =
    if quiet then None
    else
      Some
        (fun ~tested ~total ->
          if tested mod 100 = 0 || tested = total then begin
            Printf.eprintf "\r%d/%d crash points" tested total;
            if tested = total then prerr_newline ();
            flush stderr
          end)
  in
  let t0 = Unix.gettimeofday () in
  let report =
    C.check ~cfg ~target:index ~buckets ~device_size:size ~stride
      ~persist_probs:probs ~crash_seeds:seeds ~minimize:(not no_minimize)
      ~sanitize:pmsan ?progress workload
  in
  let dt = Unix.gettimeofday () -. t0 in
  Fmt.pr "%a@." C.pp_report report;
  Fmt.pr "wall time         %.1f s@." dt;
  if report.C.violations = [] then 0 else 1

let cmd =
  Cmd.v
    (Cmd.info "crashcheck" ~version:"%%VERSION%%"
       ~doc:"Exhaustive crash-point model checker for the PM indexes")
    Term.(
      const run $ ops_arg $ key_space_arg $ wseed_arg $ seeds_arg $ probs_arg
      $ stride_arg $ index_arg $ buckets_arg $ size_arg $ nbatch_arg
      $ smoke_arg $ no_minimize_arg $ quiet_arg $ pmsan_arg)

let () = exit (Cmd.eval' cmd)
