(* pmstat: ipmctl-style counter reporting over metrics-JSON snapshots.

     # one snapshot: print its device counter table
     dune exec bin/pmstat.exe -- run.json

     # two snapshots: diff them (after - before) into the paper's
     # counter table, amplification ratios included
     dune exec bin/pmstat.exe -- before.json after.json

   Snapshots are the files ccl-ycsb writes with --metrics-json (their
   "device" section), or any flat JSON object using Pmem.Stats counter
   names. *)

module S = Pmem.Stats

let read_numbers path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  Obs.Json.scan_numbers body

(* first occurrence wins: the metrics document puts the "device" section
   before the per-sample series, which reuses counter names *)
let stats_of nums =
  S.of_assoc (List.map (fun (k, v) -> (k, int_of_float v)) nums)

(* The "profile" section ccl-ycsb --profile writes uses dotted key
   prefixes — wa.<site>, cont.<site>, sx, queue-wait, queue-apply —
   that collide with nothing else in the document, so the flat number
   scan recovers it without a real JSON path walk. *)
let profile_prefixes = [ "wa."; "cont."; "sx."; "queue-wait."; "queue-apply." ]

let profile_of nums =
  List.filter
    (fun (k, _) ->
      List.exists (fun p -> String.starts_with ~prefix:p k) profile_prefixes)
    nums

let pp_num v =
  if Float.is_integer v then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.2f" v

let class_names = [| "meta"; "leaf"; "log"; "extent" |]

let print_one nums =
  let st = stats_of nums in
  Fmt.pr "%a@." S.pp st;
  Array.iteri
    (fun i v -> Fmt.pr "media writes [%s]  %d B@." class_names.(i) v)
    st.S.media_write_bytes_by_class;
  match profile_of nums with
  | [] -> ()
  | prof ->
    Fmt.pr "@.profile:@.";
    List.iter (fun (k, v) -> Fmt.pr "%-36s %14s@." k (pp_num v)) prof

(* Device counters diff positionally (S.of_assoc normalizes the schema);
   the profile section diffs as a key union — a site present in only one
   snapshot (schema growth, a mechanism that never fired) shows as an
   added/removed marker instead of failing the whole diff. *)
let print_profile_diff ~before ~after =
  match Obs.Metrics.diff_numbers ~before ~after with
  | [] -> ()
  | rows ->
    Fmt.pr "@.profile (after - before):@.";
    Fmt.pr "%-36s %14s %14s %14s@." "key" "before" "after" "delta";
    List.iter
      (fun (k, entry) ->
        match entry with
        | `Delta (vb, va) ->
          Fmt.pr "%-36s %14s %14s %14s@." k (pp_num vb) (pp_num va)
            (pp_num (va -. vb))
        | `Added va ->
          Fmt.pr "%-36s %14s %14s %14s@." k "(added)" (pp_num va) (pp_num va)
        | `Removed vb ->
          Fmt.pr "%-36s %14s %14s %14s@." k (pp_num vb) "(removed)"
            (pp_num (-.vb)))
      rows

let print_diff na nb =
  let a = stats_of na and b = stats_of nb in
  let d = S.diff ~after:b ~before:a in
  Fmt.pr "%-24s %14s %14s %14s@." "counter" "before" "after" "delta";
  List.iter2
    (fun (name, va) (_, vb) ->
      Fmt.pr "%-24s %14d %14d %14d@." name va vb (vb - va))
    (S.to_assoc a) (S.to_assoc b);
  Fmt.pr "%-24s %44.2f@." "CLI-amplification (delta)" (S.cli_amplification d);
  Fmt.pr "%-24s %44.2f@." "XBI-amplification (delta)" (S.xbi_amplification d);
  print_profile_diff ~before:(profile_of na) ~after:(profile_of nb)

open Cmdliner

let run before after =
  let a = read_numbers before in
  match after with
  | None ->
    print_one a;
    0
  | Some after ->
    print_diff a (read_numbers after);
    0

let cmd =
  let before =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"BEFORE"
          ~doc:"Metrics/stats JSON snapshot (printed alone if no AFTER).")
  in
  let after =
    Arg.(
      value
      & pos 1 (some file) None
      & info [] ~docv:"AFTER"
          ~doc:"Second snapshot; the table shows AFTER - BEFORE deltas.")
  in
  Cmd.v
    (Cmd.info "pmstat"
       ~doc:"Print or diff simulated-DCPMM counter snapshots")
    Term.(const run $ before $ after)

let () = exit (Cmd.eval' cmd)
