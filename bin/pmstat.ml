(* pmstat: ipmctl-style counter reporting over metrics-JSON snapshots.

     # one snapshot: print its device counter table
     dune exec bin/pmstat.exe -- run.json

     # two snapshots: diff them (after - before) into the paper's
     # counter table, amplification ratios included
     dune exec bin/pmstat.exe -- before.json after.json

   Snapshots are the files ccl-ycsb writes with --metrics-json (their
   "device" section), or any flat JSON object using Pmem.Stats counter
   names. *)

module S = Pmem.Stats

let read_stats path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  let nums = Obs.Json.scan_numbers body in
  (* first occurrence wins: the metrics document puts the "device"
     section before the per-sample series, which reuses counter names *)
  S.of_assoc (List.map (fun (k, v) -> (k, int_of_float v)) nums)

let class_names = [| "meta"; "leaf"; "log"; "extent" |]

let print_one st =
  Fmt.pr "%a@." S.pp st;
  Array.iteri
    (fun i v -> Fmt.pr "media writes [%s]  %d B@." class_names.(i) v)
    st.S.media_write_bytes_by_class

let print_diff a b =
  let d = S.diff ~after:b ~before:a in
  Fmt.pr "%-24s %14s %14s %14s@." "counter" "before" "after" "delta";
  List.iter2
    (fun (name, va) (_, vb) ->
      Fmt.pr "%-24s %14d %14d %14d@." name va vb (vb - va))
    (S.to_assoc a) (S.to_assoc b);
  Fmt.pr "%-24s %44.2f@." "CLI-amplification (delta)" (S.cli_amplification d);
  Fmt.pr "%-24s %44.2f@." "XBI-amplification (delta)" (S.xbi_amplification d)

open Cmdliner

let run before after =
  let a = read_stats before in
  match after with
  | None ->
    print_one a;
    0
  | Some after ->
    print_diff a (read_stats after);
    0

let cmd =
  let before =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"BEFORE"
          ~doc:"Metrics/stats JSON snapshot (printed alone if no AFTER).")
  in
  let after =
    Arg.(
      value
      & pos 1 (some file) None
      & info [] ~docv:"AFTER"
          ~doc:"Second snapshot; the table shows AFTER - BEFORE deltas.")
  in
  Cmd.v
    (Cmd.info "pmstat"
       ~doc:"Print or diff simulated-DCPMM counter snapshots")
    Term.(const run $ before $ after)

let () = exit (Cmd.eval' cmd)
