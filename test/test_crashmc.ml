(* Smoke tests for the crash-state model checker: enumerate every fence
   of a small mixed workload under two adversarial crash seeds, for both
   the tree and the hash table, and expect zero oracle / fsck violations.
   The heavyweight configuration (>=500 ops, as in the paper-scale sweep)
   runs via `crashcheck --smoke`; this keeps `dune runtest` fast while
   still exercising the full checkpoint-restore-crash-recover loop on
   every PR. *)

module C = Crashmc
module Config = Ccl_btree.Config

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg =
  { Config.default with Config.chunk_size = 4096; th_log = 0.15 }

let device_size = 8 * 1024 * 1024

let show report =
  Fmt.str "%a" C.pp_report report

let test_tree_every_fence () =
  let ops = C.mixed_workload ~seed:1 ~n:120 ~key_space:80 in
  let r =
    C.check ~cfg ~target:C.Tree ~device_size ~stride:1 ~persist_probs:[ 0.4 ]
      ~crash_seeds:[ 1; 2 ] ops
  in
  check_bool (show r) true (r.C.violations = []);
  check_bool "enumerated a real fence schedule" true (r.C.fences > 150);
  check_int "every fence under both seeds" (2 * r.C.fences) r.C.points_tested

let test_tree_extreme_probs () =
  (* p=0 (drop everything unfenced) and p=1 (keep everything, order still
     arbitrary) bracket the adversary *)
  let ops = C.mixed_workload ~seed:2 ~n:60 ~key_space:40 in
  let r =
    C.check ~cfg ~target:C.Tree ~device_size ~stride:1
      ~persist_probs:[ 0.0; 1.0 ] ~crash_seeds:[ 3 ] ops
  in
  check_bool (show r) true (r.C.violations = [])

let test_hash_every_fence () =
  let ops = C.mixed_workload ~seed:3 ~n:100 ~key_space:60 in
  let r =
    C.check ~cfg ~target:C.Hash ~buckets:16 ~device_size ~stride:1
      ~persist_probs:[ 0.5 ] ~crash_seeds:[ 1; 2 ] ops
  in
  check_bool (show r) true (r.C.violations = []);
  check_bool "hash issues fences too" true (r.C.fences > 100)

let test_stride_sampling () =
  let ops = C.mixed_workload ~seed:4 ~n:80 ~key_space:50 in
  let r =
    C.check ~cfg ~target:C.Tree ~device_size ~stride:9 ~persist_probs:[ 0.4 ]
      ~crash_seeds:[ 5 ] ops
  in
  check_bool (show r) true (r.C.violations = []);
  check_int "stride covers ceil(total/9) points"
    ((r.C.fences + 8) / 9)
    r.C.points_tested

let test_workload_generator () =
  let a = C.mixed_workload ~seed:7 ~n:500 ~key_space:300 in
  let b = C.mixed_workload ~seed:7 ~n:500 ~key_space:300 in
  check_bool "deterministic" true (a = b);
  check_int "length" 500 (List.length a);
  let dels =
    List.length (List.filter (function C.Del _ -> true | _ -> false) a)
  in
  check_bool "has deletes" true (dels > 20);
  check_bool "mostly upserts" true (dels < 150);
  (* key reuse: updates actually happen *)
  let keys = List.map (function C.Ups (k, _) -> k | C.Del k -> k) a in
  let distinct = List.sort_uniq Int64.compare keys in
  check_bool "keys repeat" true (List.length distinct < 301)

let test_progress_reporting () =
  let ops = C.mixed_workload ~seed:8 ~n:30 ~key_space:20 in
  let calls = ref 0 and last = ref (0, 0) in
  let r =
    C.check ~cfg ~target:C.Tree ~device_size ~stride:4 ~persist_probs:[ 0.4 ]
      ~crash_seeds:[ 1 ]
      ~progress:(fun ~tested ~total ->
        incr calls;
        last := (tested, total))
      ops
  in
  check_int "one callback per point" r.C.points_tested !calls;
  check_bool "final callback is complete" true
    (!last = (r.C.points_tested, r.C.points_tested))

let () =
  Alcotest.run "crashmc"
    [
      ( "smoke",
        [
          Alcotest.test_case "tree, every fence, 2 seeds" `Quick
            test_tree_every_fence;
          Alcotest.test_case "tree, extreme persist probs" `Quick
            test_tree_extreme_probs;
          Alcotest.test_case "hash, every fence, 2 seeds" `Quick
            test_hash_every_fence;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "stride sampling" `Quick test_stride_sampling;
          Alcotest.test_case "workload generator" `Quick test_workload_generator;
          Alcotest.test_case "progress reporting" `Quick test_progress_reporting;
        ] );
    ]
