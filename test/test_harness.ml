(* Tests for the experiment harness: the runner builds every index spec,
   measurements are self-consistent, the experiment registry is complete,
   and the table formatter aligns columns. *)

module R = Harness.Runner
module E = Harness.Experiments
module Scale = Harness.Scale
module Y = Workload.Ycsb
module I = Baselines.Index_intf

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let all_specs =
  [
    R.Fastfair;
    R.Fptree;
    R.Lbtree;
    R.Utree;
    R.Dptree;
    R.Pactree;
    R.Flatstore;
    R.Lsm;
    R.ccl_default;
  ]

let test_build_every_spec () =
  List.iter
    (fun spec ->
      let dev = R.device ~mb:32 () in
      let drv = R.build spec dev in
      drv.I.upsert 1L 10L;
      Alcotest.(check (option int64))
        (R.name spec ^ " roundtrip")
        (Some 10L) (drv.I.search 1L))
    all_specs

let test_names_distinct () =
  let names = List.map R.name all_specs in
  check_int "all names distinct" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_paper_indexes_shape () =
  check_int "seven line-figure indexes" 7 (List.length R.paper_indexes);
  check_bool "CCL last" true
    (R.name (List.nth R.paper_indexes 6) = "CCL-BTree")

let test_numa_awareness_assignment () =
  check_bool "ccl aware" true (R.numa_aware R.ccl_default);
  check_bool "pactree aware" true (R.numa_aware R.Pactree);
  check_bool "fastfair oblivious" true (not (R.numa_aware R.Fastfair));
  check_bool "flatstore oblivious" true (not (R.numa_aware R.Flatstore))

let test_measurement_consistency () =
  let scale = Scale.of_level 1 in
  let scale = { scale with Scale.warmup = 2000; ops = 2000 } in
  let dev, drv = Harness.Exp_common.warmed R.ccl_default scale in
  let ops = Harness.Exp_common.inserts_fresh scale in
  let m = Harness.Exp_common.run_ops dev drv R.ccl_default ops in
  check_int "op count" 2000 m.R.ops;
  check_bool "positive per-op cost" true (m.R.avg_ns > 100.0);
  check_bool "samples collected" true (Array.length m.R.samples = 2000);
  (* throughput is monotone in threads and finite *)
  let t1 = R.mops_modeled m ~threads:1 and t96 = R.mops_modeled m ~threads:96 in
  check_bool "finite throughput" true (Float.is_finite t1 && Float.is_finite t96);
  check_bool "more threads help" true (t96 > t1);
  check_bool "amplification sane" true
    (R.xbi_amp m > 0.3 && R.xbi_amp m < 100.0)

let test_experiment_registry () =
  (* every paper table/figure has an entry, ids unique, finder works *)
  let ids = E.ids () in
  check_int "21 experiments" 21 (List.length ids);
  check_int "ids unique" 21 (List.length (List.sort_uniq compare ids));
  List.iter
    (fun id ->
      if E.find id = None then Alcotest.failf "registry misses %s" id)
    [
      "fig2"; "fig3"; "fig4"; "fig5"; "fig10"; "fig11"; "fig12"; "fig13";
      "fig14"; "tab1"; "tab2"; "fig15a"; "fig15b"; "fig15c"; "fig15d";
      "fig16"; "fig17"; "fig18"; "fig19"; "tab3"; "ext";
    ];
  check_bool "unknown id rejected" true (E.find "fig99" = None)

let test_scale_levels () =
  let s1 = Scale.of_level 1 and s2 = Scale.of_level 2 and s3 = Scale.of_level 3 in
  check_bool "levels grow" true
    (s1.Scale.warmup < s2.Scale.warmup && s2.Scale.warmup < s3.Scale.warmup);
  check_bool "device grows" true
    (s1.Scale.device_mb < s2.Scale.device_mb
    && s2.Scale.device_mb < s3.Scale.device_mb);
  check_int "paper thread counts" 5 (List.length s1.Scale.threads)

let test_report_table_alignment () =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  let saved = !Harness.Report.out in
  Harness.Report.out := ppf;
  Harness.Report.table
    ~header:[ "name"; "value" ]
    [ [ "a"; "1" ]; [ "longer-name"; "22.5" ] ];
  Format.pp_print_flush ppf ();
  Harness.Report.out := saved;
  let lines = String.split_on_char '\n' (Buffer.contents buf) in
  let lines = List.filter (fun l -> String.trim l <> "") lines in
  check_int "header + rule + 2 rows" 4 (List.length lines);
  (* all lines equal width (right-padded columns) *)
  let widths = List.map String.length (List.tl lines) in
  check_bool "aligned" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_ycsb_ops_drive_all_indexes () =
  (* a mixed stream runs to completion on every index *)
  let ops = Y.generate Y.Scan_insert ~seed:3 ~space:500 ~scan_len:20 300 in
  List.iter
    (fun spec ->
      let dev = R.device ~mb:32 () in
      let drv = R.build spec dev in
      R.warmup drv ~keys:(Workload.Keygen.shuffled_range ~seed:1 500);
      let m = Harness.Exp_common.run_ops dev drv spec ops in
      check_int (R.name spec ^ " ops") 300 m.R.ops)
    all_specs

let () =
  Alcotest.run "harness"
    [
      ( "runner",
        [
          Alcotest.test_case "builds every spec" `Quick test_build_every_spec;
          Alcotest.test_case "names distinct" `Quick test_names_distinct;
          Alcotest.test_case "paper indexes" `Quick test_paper_indexes_shape;
          Alcotest.test_case "numa assignment" `Quick
            test_numa_awareness_assignment;
          Alcotest.test_case "measurement consistency" `Quick
            test_measurement_consistency;
          Alcotest.test_case "ycsb ops drive all indexes" `Quick
            test_ycsb_ops_drive_all_indexes;
        ] );
      ( "registry",
        [
          Alcotest.test_case "experiments" `Quick test_experiment_registry;
          Alcotest.test_case "scale levels" `Quick test_scale_levels;
        ] );
      ( "report",
        [ Alcotest.test_case "table alignment" `Quick test_report_table_alignment ]
      );
    ]
