(* Tests for lib/obs: histogram bucketing/percentile laws, the sampler's
   no-traffic-lost invariant, trace well-formedness, tracer fan-out, and
   an end-to-end recorder run over the real CCL-BTree driver. *)

module D = Pmem.Device
module S = Pmem.Stats
module H = Obs.Histogram

let cfg ?(size = 1 lsl 20) ?(xpbuffer_lines = 64) ?(cpu_cache_lines = 8192) ()
    =
  { (Pmem.Config.default ~size ()) with xpbuffer_lines; cpu_cache_lines }

let device ?size ?xpbuffer_lines ?cpu_cache_lines () =
  D.create ~config:(cfg ?size ?xpbuffer_lines ?cpu_cache_lines ()) ()

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- histogram: qcheck laws ------------------------------------------- *)

(* Latency-like magnitudes: mostly small, occasionally huge. *)
let arb_value =
  QCheck.(
    map
      (fun (base, shift) -> base lsl shift)
      (pair (int_bound 1023) (int_bound 40)))

let arb_values = QCheck.(list_of_size Gen.(1 -- 200) arb_value)

let hist_of vs =
  let h = H.create () in
  List.iter (H.record h) vs;
  h

let prop_bucket_roundtrip =
  QCheck.Test.make ~count:1000 ~name:"bucket_of/bounds_of_bucket round-trip"
    arb_value (fun v ->
      let i = H.bucket_of v in
      let lo, hi = H.bounds_of_bucket i in
      lo <= v && v <= hi
      && (* relative bucket width stays under 1/16 = 6.25% *)
      (v < 16 || hi - lo + 1 <= max 1 (lo / 16)))

let prop_bucket_monotone =
  QCheck.Test.make ~count:1000 ~name:"bucket_of monotone"
    QCheck.(pair arb_value arb_value)
    (fun (a, b) ->
      let a, b = (min a b, max a b) in
      H.bucket_of a <= H.bucket_of b)

(* The reference order statistic: index ceil(p/100 * n) - 1 of the sorted
   values.  The histogram must answer from the same bucket. *)
let reference_percentile vs p =
  let a = Array.of_list vs in
  Array.sort compare a;
  let n = Array.length a in
  let rank = int_of_float (ceil (p *. float_of_int n /. 100.0)) in
  a.(max 0 (min (n - 1) (rank - 1)))

let prop_percentile_vs_sorted =
  QCheck.Test.make ~count:500 ~name:"percentile within one bucket of sorted"
    arb_values (fun vs ->
      let h = hist_of vs in
      List.for_all
        (fun p ->
          let r = reference_percentile vs p in
          let q = H.percentile h p in
          (* same bucket as the exact order statistic, and never below it *)
          H.bucket_of q = H.bucket_of r && q >= r)
        [ 50.0; 90.0; 99.0; 99.9; 100.0 ])

let prop_merge_commutative =
  QCheck.Test.make ~count:200 ~name:"merge commutative"
    QCheck.(pair arb_values arb_values)
    (fun (a, b) -> H.equal (H.merge (hist_of a) (hist_of b)) (H.merge (hist_of b) (hist_of a)))

let prop_merge_associative =
  QCheck.Test.make ~count:200 ~name:"merge associative"
    QCheck.(triple arb_values arb_values arb_values)
    (fun (a, b, c) ->
      let ha, hb, hc = (hist_of a, hist_of b, hist_of c) in
      H.equal (H.merge (H.merge ha hb) hc) (H.merge ha (H.merge hb hc)))

let prop_merge_neutral =
  QCheck.Test.make ~count:200 ~name:"merge neutral element" arb_values
    (fun a ->
      let h = hist_of a in
      H.equal (H.merge h (H.create ())) h && H.equal (H.merge_all [ h ]) h)

(* Recording a@b into one histogram = merging separate histograms of a
   and b: per-worker recording loses nothing vs a global histogram. *)
let prop_record_after_merge =
  QCheck.Test.make ~count:200 ~name:"record = merge of split recordings"
    QCheck.(pair arb_values arb_values)
    (fun (a, b) ->
      H.equal (hist_of (a @ b)) (H.merge (hist_of a) (hist_of b)))

let prop_summary_matches_reference =
  QCheck.Test.make ~count:200 ~name:"count/sum/min/max exact" arb_values
    (fun vs ->
      let h = hist_of vs in
      H.count h = List.length vs
      && H.sum h = List.fold_left ( + ) 0 vs
      && H.min_value h = List.fold_left min max_int vs
      && H.max_value h = List.fold_left max 0 vs)

(* --- sampler: no traffic lost between samples -------------------------- *)

(* Deterministic pseudo-random op stream (fixed seed via the lcg state). *)
let lcg seed =
  let state = ref seed in
  fun bound ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state lsr 7 mod bound

let now_counter () =
  let t = ref 0L in
  fun () ->
    t := Int64.add !t 17L;
    !t

let run_traffic dev rand n =
  for _ = 1 to n do
    let addr = rand (D.size dev - 8) in
    D.store_u8 dev addr (rand 256);
    if rand 4 = 0 then D.persist dev addr 1
  done

let test_sampler_sums_to_total () =
  let dev = device ~size:(1 lsl 16) ~xpbuffer_lines:8 ~cpu_cache_lines:64 () in
  let rand = lcg 42 in
  let sm = Obs.Sampler.create ~every:64 ~now:(now_counter ()) dev in
  let before = D.snapshot dev in
  for _ = 1 to 1000 do
    run_traffic dev rand 3;
    Obs.Sampler.tick sm
  done;
  Obs.Sampler.finish sm;
  let total = S.diff ~after:(D.snapshot dev) ~before in
  check_bool "summed deltas = device delta" true
    (S.equal (Obs.Sampler.summed sm) total);
  check_int "sample count" ((1000 / 64) + 1)
    (List.length (Obs.Sampler.samples sm))

let test_sampler_rebase_excludes_warmup () =
  let dev = device ~size:(1 lsl 16) ~xpbuffer_lines:8 ~cpu_cache_lines:64 () in
  let rand = lcg 7 in
  let sm = Obs.Sampler.create ~every:32 ~now:(now_counter ()) dev in
  (* warmup traffic that must not appear in the series *)
  run_traffic dev rand 500;
  Obs.Sampler.rebase sm;
  let measured_from = D.snapshot dev in
  for _ = 1 to 100 do
    run_traffic dev rand 2;
    Obs.Sampler.tick sm
  done;
  Obs.Sampler.finish sm;
  let measured = S.diff ~after:(D.snapshot dev) ~before:measured_from in
  check_bool "summed = measured-phase delta only" true
    (S.equal (Obs.Sampler.summed sm) measured)

(* --- trace: well-formedness ------------------------------------------- *)

(* Tiny scanner over the emitted document: split the traceEvents array
   into objects and pull one field out of each. *)
let trace_to_string ts =
  let path = Filename.temp_file "obs_trace" ".json" in
  let oc = open_out path in
  Obs.Trace.write_many ts oc;
  close_out oc;
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  s

let events_of body =
  (* strip {"traceEvents":[ ... ]} and split on object boundaries *)
  let start = String.index body '[' + 1 in
  let stop = String.rindex body ']' in
  let inner = String.sub body start (stop - start) in
  String.split_on_char '}' inner
  |> List.filter_map (fun frag ->
         if String.contains frag '{' then Some frag else None)

let field ev name =
  let needle = Printf.sprintf "\"%s\":" name in
  match String.index_opt ev '{' with
  | None -> None
  | Some _ ->
    let rec find i =
      if i + String.length needle > String.length ev then None
      else if String.sub ev i (String.length needle) = needle then
        let j = i + String.length needle in
        let k = ref j in
        while
          !k < String.length ev
          && (match ev.[!k] with ',' -> false | _ -> true)
        do
          incr k
        done;
        Some (String.trim (String.sub ev j (!k - j)))
      else find (i + 1)
    in
    find 0

let test_trace_balanced_and_monotone () =
  let t = Obs.Trace.create () in
  Obs.Trace.thread_name t ~tid:0 "main";
  Obs.Trace.span_end t ~tid:0 ~ts_us:0.5 (* unmatched: must be dropped *);
  Obs.Trace.complete t ~tid:0 ~name:"op" ~cat:"op" ~ts_us:1.0 ~dur_us:2.0;
  Obs.Trace.span_begin t ~tid:0 ~name:"outer" ~ts_us:4.0;
  Obs.Trace.span_begin t ~tid:0 ~name:"inner" ~ts_us:5.0;
  Obs.Trace.span_end t ~tid:0 ~ts_us:6.0;
  Obs.Trace.instant t ~tid:0 ~name:"mark" ~ts_us:7.0;
  Obs.Trace.span_begin t ~tid:0 ~name:"left-open" ~ts_us:8.0
  (* never closed: write must auto-close it (and "outer") *);
  let evs = events_of (trace_to_string [ t ]) in
  let phs = List.filter_map (fun e -> field e "ph") evs in
  let count p = List.length (List.filter (( = ) p) phs) in
  check_int "B/E balanced" (count "\"B\"") (count "\"E\"");
  check_int "three spans opened" 3 (count "\"B\"");
  check_int "one X event" 1 (count "\"X\"");
  check_int "one instant" 1 (count "\"i\"");
  (* timestamps non-decreasing in buffer order (single lane) *)
  let tss =
    List.filter_map
      (fun e ->
        match (field e "ph", field e "ts") with
        | Some "\"M\"", _ | _, None -> None
        | _, Some ts -> Some (float_of_string ts))
      evs
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  check_bool "timestamps monotone" true (monotone tss)

let test_trace_write_many_merges_lanes () =
  let a = Obs.Trace.create () and b = Obs.Trace.create () in
  Obs.Trace.complete a ~tid:1 ~name:"w1" ~cat:"op" ~ts_us:1.0 ~dur_us:1.0;
  Obs.Trace.span_begin b ~tid:2 ~name:"w2" ~ts_us:0.5;
  let evs = events_of (trace_to_string [ a; b ]) in
  let tids = List.filter_map (fun e -> field e "tid") evs in
  check_bool "lane 1 present" true (List.mem "1" tids);
  check_bool "lane 2 present" true (List.mem "2" tids);
  let phs = List.filter_map (fun e -> field e "ph") evs in
  check_bool "open span on lane 2 closed" true (List.mem "\"E\"" phs)

(* --- tracer fan-out ----------------------------------------------------
   Regression: installing a second consumer via add_tracer must not
   clobber the first (--pmsan and --trace compose). *)

let test_add_tracer_fan_out () =
  let dev = device ~size:(1 lsl 16) () in
  let first = ref 0 and second = ref 0 in
  D.set_tracer dev (Some (fun _ -> incr first));
  D.add_tracer dev (fun _ -> incr second);
  let rand = lcg 3 in
  run_traffic dev rand 100;
  check_bool "first consumer still sees events" true (!first > 0);
  check_int "both consumers see every event" !first !second

(* --- end-to-end: recorder over the real CCL-BTree driver -------------- *)

let small_scale =
  {
    Harness.Scale.warmup = 2_000;
    ops = 2_000;
    device_mb = 16;
    scan_len = 50;
    threads = [ 1 ];
  }

let test_recorder_end_to_end () =
  let spec = Harness.Runner.ccl_default in
  let dev, drv = Harness.Exp_common.warmed spec small_scale in
  let rc =
    Obs.Recorder.create ~hist:true ~sample_every:100 ~trace:true
      ~now:(now_counter ()) ()
  in
  let w = Obs.Recorder.worker rc ~tid:0 ~name:"main" ~dev () in
  Obs.Recorder.install_device_tracer w;
  let before = D.snapshot dev in
  ignore
    (Harness.Exp_common.run_ops ~obs:w dev drv spec
       (Harness.Exp_common.updates small_scale));
  ignore
    (Harness.Exp_common.run_ops ~obs:w dev drv spec
       (Harness.Exp_common.searches small_scale));
  Obs.Recorder.finish rc;
  let delta = S.diff ~after:(D.snapshot dev) ~before in
  (* histogram totals = ops executed *)
  check_int "histogram total = ops run" (2 * small_scale.Harness.Scale.ops)
    (Obs.Recorder.total_ops rc);
  (* sampler deltas sum to the device's own accounting *)
  (match Obs.Recorder.samplers rc with
  | [ (_, sm) ] ->
    check_bool "sample deltas sum to device delta" true
      (S.equal (Obs.Sampler.summed sm) delta)
  | _ -> Alcotest.fail "expected exactly one sampler lane");
  (* trace document is balanced: device spans (batch flushes, splits)
     arrived through the fan-out hook *)
  let path = Filename.temp_file "obs_e2e" ".json" in
  Obs.Recorder.write_trace rc path;
  let ic = open_in_bin path in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  let evs = events_of body in
  let phs = List.filter_map (fun e -> field e "ph") evs in
  let count p = List.length (List.filter (( = ) p) phs) in
  check_int "device spans balanced" (count "\"B\"") (count "\"E\"");
  check_bool "device spans present" true (count "\"B\"" > 0);
  check_int "one X per op" (2 * small_scale.Harness.Scale.ops)
    (count "\"X\"");
  (* metrics document round-trips through the pmstat scanner *)
  let mpath = Filename.temp_file "obs_e2e" "_metrics.json" in
  Obs.Recorder.write_metrics rc ~device:delta mpath;
  let ic = open_in_bin mpath in
  let mbody = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove mpath;
  let recovered =
    S.of_assoc
      (List.map
         (fun (k, v) -> (k, int_of_float v))
         (Obs.Json.scan_numbers mbody))
  in
  check_bool "pmstat recovers the device section" true (S.equal recovered delta)

(* Pausing covers the load phase: nothing recorded while paused, and
   resume rebases the sampler to the measured phase. *)
let test_recorder_pause_resume () =
  let dev = device ~size:(1 lsl 16) ~xpbuffer_lines:8 ~cpu_cache_lines:64 () in
  let now = now_counter () in
  let rc = Obs.Recorder.create ~hist:true ~sample_every:16 ~now () in
  let w = Obs.Recorder.worker rc ~tid:0 ~dev () in
  let rand = lcg 11 in
  Obs.Recorder.pause rc;
  run_traffic dev rand 300;
  Obs.Recorder.record w ~kind:"load" ~t0:0L ~t1:5L;
  Obs.Recorder.resume rc;
  let measured_from = D.snapshot dev in
  for _ = 1 to 50 do
    run_traffic dev rand 2;
    let t0 = now () in
    Obs.Recorder.record w ~kind:"upsert" ~t0 ~t1:(now ())
  done;
  Obs.Recorder.finish rc;
  check_int "paused ops not recorded" 50 (Obs.Recorder.total_ops rc);
  check_bool "paused kind absent" true
    (not (List.mem_assoc "load" (Obs.Recorder.hists rc)));
  match Obs.Recorder.samplers rc with
  | [ (_, sm) ] ->
    let measured = S.diff ~after:(D.snapshot dev) ~before:measured_from in
    check_bool "series starts at resume" true
      (S.equal (Obs.Sampler.summed sm) measured)
  | _ -> Alcotest.fail "expected exactly one sampler lane"

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "obs"
    [
      ( "histogram",
        [
          qt prop_bucket_roundtrip;
          qt prop_bucket_monotone;
          qt prop_percentile_vs_sorted;
          qt prop_merge_commutative;
          qt prop_merge_associative;
          qt prop_merge_neutral;
          qt prop_record_after_merge;
          qt prop_summary_matches_reference;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "deltas sum to device total" `Quick
            test_sampler_sums_to_total;
          Alcotest.test_case "rebase excludes warmup" `Quick
            test_sampler_rebase_excludes_warmup;
        ] );
      ( "trace",
        [
          Alcotest.test_case "balanced and monotone" `Quick
            test_trace_balanced_and_monotone;
          Alcotest.test_case "write_many merges lanes" `Quick
            test_trace_write_many_merges_lanes;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "add_tracer fans out" `Quick
            test_add_tracer_fan_out;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "end-to-end over CCL-BTree" `Quick
            test_recorder_end_to_end;
          Alcotest.test_case "pause/resume" `Quick test_recorder_pause_resume;
        ] );
    ]
