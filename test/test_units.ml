(* Unit tests for the core's small modules: leaf-node layout, buffer
   nodes, the volatile inner index, and indirection encoding. *)

module D = Pmem.Device
module L = Ccl_btree.Leaf_node
module B = Ccl_btree.Buffer_node
module Idx = Ccl_btree.Inner_index
module Ind = Ccl_btree.Indirect
module Extent = Pmalloc.Extent
module Alloc = Pmalloc.Alloc

let device () = D.create ~config:(Pmem.Config.default ~size:(1 lsl 20) ()) ()
let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)
let check_bool = Alcotest.(check bool)

(* --- leaf node ----------------------------------------------------------- *)

let leaf () =
  let dev = device () in
  L.init dev 4096 ~next:0;
  (dev, 4096)

let test_leaf_layout_constants () =
  check_int "size is one XPLine" 256 L.size;
  check_int "14 slots" 14 L.slots

let test_leaf_meta_word_packing () =
  let dev, a = leaf () in
  L.store_meta_word dev a ~bitmap:0b1010_1010_1010_10 ~next:0x1234560;
  check_int "bitmap" 0b1010_1010_1010_10 (L.bitmap dev a);
  check_int "next" 0x1234560 (L.next dev a);
  (* updating one field preserves the other *)
  L.store_meta_word dev a ~bitmap:0x3 ~next:(L.next dev a);
  check_int "next preserved" 0x1234560 (L.next dev a)

let test_leaf_slots_roundtrip () =
  let dev, a = leaf () in
  for i = 0 to L.slots - 1 do
    L.store_slot dev a i ~key:(Int64.of_int (i * 7)) ~value:(Int64.of_int i)
  done;
  for i = 0 to L.slots - 1 do
    check_i64 "key" (Int64.of_int (i * 7)) (L.key_at dev a i);
    check_i64 "value" (Int64.of_int i) (L.value_at dev a i)
  done

let test_leaf_find_uses_bitmap () =
  let dev, a = leaf () in
  L.store_slot dev a 3 ~key:42L ~value:1L;
  L.store_fingerprint dev a 3 42L;
  (* slot not yet valid *)
  Alcotest.(check (option int)) "invisible before bitmap" None (L.find dev a 42L);
  L.store_meta_word dev a ~bitmap:(1 lsl 3) ~next:0;
  Alcotest.(check (option int)) "visible after bitmap" (Some 3) (L.find dev a 42L)

let test_leaf_entries_and_free_slots () =
  let dev, a = leaf () in
  L.store_slot dev a 0 ~key:1L ~value:10L;
  L.store_slot dev a 5 ~key:2L ~value:20L;
  L.store_meta_word dev a ~bitmap:((1 lsl 0) lor (1 lsl 5)) ~next:0;
  check_int "valid count" 2 (L.valid_count dev a);
  check_int "entries" 2 (List.length (L.entries dev a));
  check_int "free slots" 12 (List.length (L.free_slots dev a));
  check_bool "slot 1 free" true (List.mem 1 (L.free_slots dev a));
  check_bool "slot 5 used" true (not (List.mem 5 (L.free_slots dev a)))

let test_leaf_timestamp () =
  let dev, a = leaf () in
  L.store_timestamp dev a 12345L;
  check_i64 "timestamp" 12345L (L.timestamp dev a)

let prop_fingerprint_spread =
  QCheck.Test.make ~count:100 ~name:"fingerprints spread over a byte"
    QCheck.(list_of_size (QCheck.Gen.return 64) int64)
    (fun keys ->
      let fps = List.map L.fingerprint keys in
      List.for_all (fun f -> f >= 0 && f <= 255) fps
      && List.length (List.sort_uniq compare fps)
         > List.length (List.sort_uniq compare keys) / 4)

(* --- buffer node ----------------------------------------------------------- *)

let test_buffer_basic () =
  let b = B.create ~nbatch:3 ~leaf:4096 ~low:0L in
  check_int "nbatch" 3 (B.nbatch b);
  Alcotest.(check (option int)) "empty find" None (B.find b 1L);
  Alcotest.(check (option int)) "free slot" (Some 0) (B.free_slot b);
  B.set_slot b 0 ~key:1L ~value:10L ~ts:5L ~epoch:1;
  Alcotest.(check (option int)) "found" (Some 0) (B.find b 1L);
  check_int "unflushed" 1 (B.unflushed_count b);
  check_bool "epoch bit set" true (b.B.epoch land 1 <> 0);
  B.set_slot b 0 ~key:1L ~value:11L ~ts:6L ~epoch:0;
  check_bool "epoch bit cleared" true (b.B.epoch land 1 = 0)

let test_buffer_flush_cache_semantics () =
  let b = B.create ~nbatch:2 ~leaf:4096 ~low:0L in
  B.set_slot b 0 ~key:1L ~value:10L ~ts:1L ~epoch:0;
  B.set_slot b 1 ~key:2L ~value:20L ~ts:2L ~epoch:0;
  check_int "two unflushed" 2 (B.unflushed_count b);
  Alcotest.(check (list int)) "no cached" [] (B.cached_slots b);
  B.mark_all_flushed b;
  check_int "none unflushed" 0 (B.unflushed_count b);
  Alcotest.(check (list int)) "both cached" [ 0; 1 ] (B.cached_slots b);
  (* cached entries still serve reads *)
  Alcotest.(check (option int)) "cache hit" (Some 0) (B.find b 1L)

let test_buffer_unflushed_entries () =
  let b = B.create ~nbatch:3 ~leaf:4096 ~low:0L in
  B.set_slot b 0 ~key:1L ~value:10L ~ts:1L ~epoch:0;
  B.set_slot b 2 ~key:3L ~value:30L ~ts:3L ~epoch:0;
  Alcotest.(check (list (triple int64 int64 int64)))
    "entries with ts"
    [ (1L, 10L, 1L); (3L, 30L, 3L) ]
    (B.unflushed_entries b)

let test_buffer_version_lock () =
  let b = B.create ~nbatch:2 ~leaf:4096 ~low:0L in
  check_bool "unlocked" true (not (B.is_locked b));
  B.lock b;
  check_bool "locked (odd version)" true (B.is_locked b);
  B.unlock b;
  check_bool "unlocked again" true (not (B.is_locked b));
  check_int "version advanced twice" 2 (Sync.Vlock.value b.B.version)

(* --- inner index ------------------------------------------------------------ *)

let test_index_find_le () =
  let idx = Idx.create () in
  Idx.add idx 10L "a";
  Idx.add idx 20L "b";
  Idx.add idx 30L "c";
  Alcotest.(check (option string)) "exact" (Some "b") (Idx.find_le idx 20L);
  Alcotest.(check (option string)) "between" (Some "b") (Idx.find_le idx 25L);
  Alcotest.(check (option string)) "above all" (Some "c") (Idx.find_le idx 99L);
  Alcotest.(check (option string)) "below all" None (Idx.find_le idx 5L);
  Idx.remove idx 20L;
  Alcotest.(check (option string)) "after remove" (Some "a") (Idx.find_le idx 25L);
  check_int "cardinal" 2 (Idx.cardinal idx)

let prop_index_find_le_vs_list =
  QCheck.Test.make ~count:100 ~name:"find_le ≡ list maximum ≤ key"
    QCheck.(pair (list small_int) small_int)
    (fun (keys, probe) ->
      let idx = Idx.create () in
      List.iter (fun k -> Idx.add idx (Int64.of_int k) k) keys;
      let expect =
        List.filter (fun k -> k <= probe) (List.sort_uniq compare keys)
        |> List.rev
        |> function
        | [] -> None
        | k :: _ -> Some k
      in
      Idx.find_le idx (Int64.of_int probe) = expect)

(* --- indirection -------------------------------------------------------------- *)

let with_extent f =
  let dev = device () in
  let alloc = Alloc.format dev ~chunk_size:4096 in
  f dev (Extent.create alloc)

let test_indirect_inline_roundtrip () =
  with_extent (fun dev ext ->
      List.iter
        (fun s ->
          let v = Ind.encode_value dev ext s in
          check_bool "inline for short" true (not (Ind.is_pointer v));
          Alcotest.(check string) "roundtrip" s (Ind.decode_value dev v))
        [ ""; "a"; "abc"; "123456" ])

let test_indirect_pointer_roundtrip () =
  with_extent (fun dev ext ->
      List.iter
        (fun s ->
          let v = Ind.encode_value dev ext s in
          check_bool "pointer for long" true (Ind.is_pointer v);
          Alcotest.(check string) "roundtrip" s (Ind.decode_value dev v))
        [ "1234567"; String.make 100 'x'; String.make 4000 'y' ])

let test_indirect_no_tombstone_collision () =
  with_extent (fun dev ext ->
      let v = Ind.encode_value dev ext "" in
      check_bool "empty string is not 0L" true (not (Int64.equal v 0L)))

let test_indirect_key_order_preserved () =
  let ks = [ "a"; "ab"; "abc"; "b"; "ba"; "zz" ] in
  let encoded = List.map Ind.encode_key ks in
  let resorted =
    List.sort Int64.compare encoded
    |> List.map (fun e -> List.assoc e (List.combine encoded ks))
  in
  Alcotest.(check (list string)) "lexicographic order survives" ks resorted

let test_indirect_long_keys_distinct () =
  let k1 = Ind.encode_key (String.make 50 'a') in
  let k2 = Ind.encode_key (String.make 50 'b') in
  check_bool "distinct hashes" true (not (Int64.equal k1 k2));
  check_bool "positive" true (Int64.compare k1 0L > 0)

let prop_indirect_roundtrip =
  QCheck.Test.make ~count:100 ~name:"value encode/decode roundtrip"
    QCheck.(string_of_size (QCheck.Gen.int_bound 600))
    (fun s ->
      with_extent (fun dev ext ->
          Ind.decode_value dev (Ind.encode_value dev ext s) = s))

let test_indirect_extent_survives_crash () =
  let dev = device () in
  let alloc = Alloc.format dev ~chunk_size:4096 in
  let ext = Extent.create alloc in
  let s = String.make 300 'q' in
  let v = Ind.encode_value dev ext s in
  D.crash dev;
  Alcotest.(check string) "persisted before pointer returned" s
    (Ind.decode_value dev v)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "core-units"
    [
      ( "leaf-node",
        [
          Alcotest.test_case "layout constants" `Quick
            test_leaf_layout_constants;
          Alcotest.test_case "meta word packing" `Quick
            test_leaf_meta_word_packing;
          Alcotest.test_case "slots roundtrip" `Quick test_leaf_slots_roundtrip;
          Alcotest.test_case "find uses bitmap" `Quick test_leaf_find_uses_bitmap;
          Alcotest.test_case "entries and free slots" `Quick
            test_leaf_entries_and_free_slots;
          Alcotest.test_case "timestamp" `Quick test_leaf_timestamp;
          qt prop_fingerprint_spread;
        ] );
      ( "buffer-node",
        [
          Alcotest.test_case "basic" `Quick test_buffer_basic;
          Alcotest.test_case "flush/cache semantics" `Quick
            test_buffer_flush_cache_semantics;
          Alcotest.test_case "unflushed entries" `Quick
            test_buffer_unflushed_entries;
          Alcotest.test_case "version lock" `Quick test_buffer_version_lock;
        ] );
      ( "inner-index",
        [
          Alcotest.test_case "find_le" `Quick test_index_find_le;
          qt prop_index_find_le_vs_list;
        ] );
      ( "indirect",
        [
          Alcotest.test_case "inline roundtrip" `Quick
            test_indirect_inline_roundtrip;
          Alcotest.test_case "pointer roundtrip" `Quick
            test_indirect_pointer_roundtrip;
          Alcotest.test_case "no tombstone collision" `Quick
            test_indirect_no_tombstone_collision;
          Alcotest.test_case "key order preserved" `Quick
            test_indirect_key_order_preserved;
          Alcotest.test_case "long keys distinct" `Quick
            test_indirect_long_keys_distinct;
          Alcotest.test_case "extent survives crash" `Quick
            test_indirect_extent_survives_crash;
          qt prop_indirect_roundtrip;
        ] );
    ]
