(* Units for the lib/sync primitives: seqlock version locks, the SX
   latch's compatibility matrix and upgrade path, and the epoch guard.
   The threaded cases use real domains — small enough to stay fast, real
   enough to catch a latch that admits what it should exclude. *)

module V = Sync.Vlock
module Sx = Sync.Sx
module E = Sync.Epoch

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- version lock ------------------------------------------------------- *)

let test_vlock_basics () =
  let v = V.create () in
  check_int "starts at 0" 0 (V.value v);
  check_bool "unlocked" false (V.locked v);
  let s = V.read_begin v in
  check_bool "snapshot even" false (V.is_locked_v s);
  check_bool "validates while untouched" true (V.validate v s);
  V.lock v;
  check_bool "locked (odd)" true (V.locked v);
  check_bool "stale snapshot fails" false (V.validate v s);
  V.unlock v;
  check_int "advanced by two" 2 (V.value v);
  check_bool "old snapshot still fails" false (V.validate v s)

let test_vlock_read_begin_bounded () =
  let v = V.create () in
  V.lock v;
  (* a sealed (never unlocked) vlock must not trap a reader: the bounded
     spin returns the odd value and the caller re-routes *)
  let s = V.read_begin v in
  check_bool "odd snapshot returned" true (V.is_locked_v s)

let test_vlock_spin_mutex () =
  (* lock/unlock as a spin mutex across domains: increments of a plain
     (non-atomic) counter under the lock must not be lost *)
  let v = V.create () in
  let counter = ref 0 in
  let iters = 10_000 in
  let worker () =
    for _ = 1 to iters do
      V.lock v;
      counter := !counter + 1;
      V.unlock v
    done
  in
  let ds = List.init 3 (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join ds;
  check_int "no lost updates" (4 * iters) !counter

let test_vlock_unlock_unheld_raises () =
  (* regression: unlock used to silently bump an even version, unlocking
     a lock nobody held and corrupting every outstanding snapshot *)
  let v = V.create () in
  (try
     V.unlock v;
     Alcotest.fail "unlock of an unheld vlock must raise"
   with Invalid_argument _ -> ());
  check_int "version untouched by the rejected unlock" 0 (V.value v);
  V.lock v;
  V.unlock v;
  (try
     V.unlock v;
     Alcotest.fail "double unlock must raise"
   with Invalid_argument _ -> ());
  check_int "balanced cycle left value at 2" 2 (V.value v)

let test_vlock_try_upgrade_cas_failure () =
  let v = V.create () in
  (* stale snapshot: the lock moved on, the CAS must fail and leave the
     lock untouched *)
  let s = V.read_begin v in
  V.lock v;
  V.unlock v;
  check_bool "stale upgrade fails" false (V.try_upgrade v s);
  check_bool "failed upgrade does not lock" false (V.locked v);
  check_int "failed upgrade does not bump" 2 (V.value v);
  (* held by someone else: odd cell, CAS must fail even with the "right"
     base version *)
  check_bool "relock" true (V.try_lock v);
  check_bool "upgrade vs held lock fails" false (V.try_upgrade v 2);
  V.unlock v;
  (* fresh snapshot: succeeds and holds *)
  let s = V.read_begin v in
  check_bool "fresh upgrade wins" true (V.try_upgrade v s);
  check_bool "and holds the lock" true (V.locked v);
  V.unlock v

(* --- SX latch ----------------------------------------------------------- *)

let test_sx_s_compatible_with_sx () =
  let l = Sx.create () in
  Sx.acquire l Sx.SX;
  (* an S reader must get in while SX is held *)
  let got_s = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Sx.acquire l Sx.S;
        Atomic.set got_s true;
        Sx.release l Sx.S)
  in
  Domain.join d;
  check_bool "S entered under SX" true (Atomic.get got_s);
  Sx.release l Sx.SX

let test_sx_x_excludes_all () =
  let l = Sx.create () in
  let counter = ref 0 in
  let iters = 2_000 in
  let worker () =
    for _ = 1 to iters do
      Sx.with_mode l Sx.X (fun () -> counter := !counter + 1)
    done
  in
  let ds = List.init 3 (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join ds;
  check_int "X is mutual exclusion" (4 * iters) !counter

let test_sx_upgrade_waits_for_readers () =
  let l = Sx.create () in
  let in_x = Atomic.make false in
  let violation = Atomic.make false in
  Sx.acquire l Sx.SX;
  let reader =
    Domain.spawn (fun () ->
        Sx.acquire l Sx.S;
        (* hold S long enough that the upgrade is surely waiting *)
        for _ = 1 to 1_000 do
          if Atomic.get in_x then Atomic.set violation true;
          Domain.cpu_relax ()
        done;
        Sx.release l Sx.S)
  in
  (* give the reader time to take S, then upgrade: must block until the
     reader drains, and no S-holder may ever observe us in X *)
  for _ = 1 to 10_000 do
    Domain.cpu_relax ()
  done;
  Sx.upgrade l;
  Atomic.set in_x true;
  Atomic.set in_x false;
  Sx.release l Sx.X;
  Domain.join reader;
  check_bool "no S reader saw the X section" false (Atomic.get violation)

let test_sx_downgrade () =
  let l = Sx.create () in
  Sx.acquire l Sx.SX;
  Sx.upgrade l;
  Sx.downgrade l;
  (* back in SX: readers may enter again *)
  let d =
    Domain.spawn (fun () ->
        Sx.acquire l Sx.S;
        Sx.release l Sx.S)
  in
  Domain.join d;
  Sx.release l Sx.SX;
  (* latch is free again: X acquires *)
  Sx.with_mode l Sx.X (fun () -> ())

let test_sx_upgrade_under_contention () =
  (* the writer ladder S -> SX -> X while a pack of S readers churn: the
     upgrade must drain every live S holder before granting X, and the
     X section must be exclusive against all of them *)
  let l = Sx.create () in
  let stop = Atomic.make false in
  let in_x = Atomic.make false in
  let violation = Atomic.make false in
  let readers =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              Sx.acquire l Sx.S;
              if Atomic.get in_x then Atomic.set violation true;
              Domain.cpu_relax ();
              Sx.release l Sx.S
            done))
  in
  for _ = 1 to 200 do
    (* start as a plain S reader, step up to SX (still reader-compatible),
       then claim X for the critical write *)
    Sx.acquire l Sx.S;
    Sx.release l Sx.S;
    Sx.acquire l Sx.SX;
    Sx.upgrade l;
    Atomic.set in_x true;
    Domain.cpu_relax ();
    Atomic.set in_x false;
    Sx.release l Sx.X
  done;
  Atomic.set stop true;
  List.iter Domain.join readers;
  check_bool "no S holder ever overlapped the X section" false
    (Atomic.get violation)

(* --- epoch guard -------------------------------------------------------- *)

let test_epoch_immediate_when_idle () =
  let e = E.create () in
  let freed = ref false in
  E.retire e (fun () -> freed := true);
  check_bool "no readers: freed at retire" true !freed;
  check_int "nothing pending" 0 (E.pending e)

let test_epoch_defers_while_pinned () =
  let e = E.create () in
  let s = E.register e in
  let freed = ref false in
  E.enter s;
  E.retire e (fun () -> freed := true);
  check_bool "deferred while reader inside" false !freed;
  check_int "one pending" 1 (E.pending e);
  E.flush e;
  check_bool "still deferred" false !freed;
  E.exit s;
  E.flush e;
  check_bool "freed after reader exit" true !freed;
  check_int "drained" 0 (E.pending e)

let test_epoch_new_entries_dont_block_old_retires () =
  let e = E.create () in
  let s = E.register e in
  let freed = ref false in
  E.retire e (fun () -> freed := true);
  check_bool "idle retire ran" true !freed;
  let freed2 = ref false in
  E.enter s;
  E.retire e (fun () -> freed2 := true);
  E.exit s;
  (* re-entering now pins a LATER epoch than the retired one *)
  E.enter s;
  E.flush e;
  check_bool "old retire ripe despite active reader" true !freed2;
  E.exit s

let test_epoch_straggler_pin () =
  (* one straggler slot pinned since before the retire holds back exactly
     the retires from its epoch — not later ones, and not forever *)
  let e = E.create () in
  let straggler = E.register e in
  let other = E.register e in
  let freed = ref false in
  E.enter straggler;
  E.retire e (fun () -> freed := true);
  (* the other reader cycling through does not unpin the straggler *)
  for _ = 1 to 5 do
    E.enter other;
    E.exit other;
    E.flush e
  done;
  check_bool "held back by the straggler alone" false !freed;
  check_int "still pending" 1 (E.pending e);
  E.exit straggler;
  E.flush e;
  check_bool "ripe once the straggler leaves" true !freed

let test_epoch_concurrent_storm () =
  (* readers enter/exit while the "writer" retires: every retired closure
     must eventually run exactly once, with no crash or hang *)
  let e = E.create () in
  let stop = Atomic.make false in
  let readers =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            let s = E.register e in
            while not (Atomic.get stop) do
              E.enter s;
              Domain.cpu_relax ();
              E.exit s
            done))
  in
  let runs = Atomic.make 0 in
  let n = 1_000 in
  for _ = 1 to n do
    E.retire e (fun () -> Atomic.incr runs)
  done;
  Atomic.set stop true;
  List.iter Domain.join readers;
  E.flush e;
  check_int "every closure ran" n (Atomic.get runs);
  check_int "none pending" 0 (E.pending e)

let () =
  Alcotest.run "sync"
    [
      ( "vlock",
        [
          Alcotest.test_case "basics" `Quick test_vlock_basics;
          Alcotest.test_case "bounded read_begin" `Quick
            test_vlock_read_begin_bounded;
          Alcotest.test_case "spin mutex across domains" `Quick
            test_vlock_spin_mutex;
          Alcotest.test_case "unlock of unheld raises" `Quick
            test_vlock_unlock_unheld_raises;
          Alcotest.test_case "try_upgrade CAS failure" `Quick
            test_vlock_try_upgrade_cas_failure;
        ] );
      ( "sx",
        [
          Alcotest.test_case "S compatible with SX" `Quick
            test_sx_s_compatible_with_sx;
          Alcotest.test_case "X excludes all" `Quick test_sx_x_excludes_all;
          Alcotest.test_case "upgrade waits for readers" `Quick
            test_sx_upgrade_waits_for_readers;
          Alcotest.test_case "downgrade" `Quick test_sx_downgrade;
          Alcotest.test_case "upgrade ladder under contention" `Quick
            test_sx_upgrade_under_contention;
        ] );
      ( "epoch",
        [
          Alcotest.test_case "immediate when idle" `Quick
            test_epoch_immediate_when_idle;
          Alcotest.test_case "defers while pinned" `Quick
            test_epoch_defers_while_pinned;
          Alcotest.test_case "later entries don't block old retires" `Quick
            test_epoch_new_entries_dont_block_old_retires;
          Alcotest.test_case "straggler pin" `Quick test_epoch_straggler_pin;
          Alcotest.test_case "concurrent storm" `Quick
            test_epoch_concurrent_storm;
        ] );
    ]
