(* Rsan: the vector-clock race detector and lock-discipline linter over
   the vlock/SX/epoch protocol (DESIGN.md §14).

   Two test families:
   - stock discipline: sequential index runs and 2–4-lane writer/reader
     storms must come back violation-free;
   - mutation detection: re-introducing each of the three PR-8 bug
     classes (stale merge certification, missing under-lock validation,
     premature epoch reclaim) must yield an rsan violation of the
     matching kind, plus unit-level lints driven straight through the
     Sync primitives. *)

module D = Pmem.Device
module T = Ccl_btree.Tree
module V = Sync.Vlock
module E = Sync.Epoch
module R = Rsan
module I = Baselines.Index_intf

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let has kind vs = List.exists (fun v -> v.R.kind = kind) vs

let pp_found vs =
  List.iter (fun v -> Format.eprintf "  %a@." R.pp_violation v) vs

let assert_clean name (r : R.report) =
  if not (R.report_clean r) then pp_found r.R.report_violations;
  check_bool name true (R.report_clean r)

(* with the global hook shared across tests, every detector session must
   end detached even on assertion failure *)
let with_detector f =
  let san = R.create () in
  R.attach san;
  Fun.protect ~finally:R.detach (fun () -> f san)

(* --- stock runs are rsan-clean ------------------------------------------ *)

let test_check_index_ccl () =
  let r =
    R.check_index ~ops:3_000 ~name:"ccl"
      ~create:(Baselines.Ccl_index.driver_with Ccl_btree.Config.default)
      ()
  in
  check_int "ops ran" 3_000 r.R.ops_run;
  assert_clean "ccl sequential run is rsan-clean" r

let test_check_index_baseline () =
  let r =
    R.check_index ~ops:1_500 ~name:"fptree"
      ~create:(fun dev ->
        I.driver (module Baselines.Fptree) (Baselines.Fptree.create dev))
      ()
  in
  assert_clean "baseline (no sync events) is rsan-clean" r

let test_storm_2lane_clean () =
  let r = R.check_tree ~writers:2 ~readers:2 ~ops:1_500 () in
  assert_clean "2-lane storm is rsan-clean" r

let test_storm_4lane_clean () =
  let r = R.check_tree ~writers:4 ~readers:2 ~ops:800 ~seed:3 () in
  assert_clean "4-lane storm is rsan-clean" r

(* --- mutation: the three PR-8 bug classes ------------------------------- *)

(* Class 1: writer_try_merge certifying its commit CAS against versions
   snapshotted after the vlocks were released.  The lint fires on the
   certification shape itself, so one lane deterministically suffices —
   merges just need to happen. *)
let test_mutation_stale_merge_cert () =
  let r =
    R.check_tree ~writers:1 ~readers:0 ~ops:1_200
      ~faults:[ T.Fault.Stale_merge_cert ] ()
  in
  check_bool "stale merge certification detected" true
    (has R.Stale_certification r.R.report_violations)

(* Class 2: the optimistic write path skipping the under-lock
   fence-interval validation.  The very first optimistic write fires the
   lint. *)
let test_mutation_skip_write_validation () =
  let r =
    R.check_tree ~writers:1 ~readers:0 ~ops:50
      ~faults:[ T.Fault.Skip_write_validation ] ()
  in
  check_bool "missing under-lock validation detected" true
    (has R.Unvalidated_write r.R.report_violations)

(* Class 3a: premature epoch reclamation, deterministic at the Sync
   level — a pinned slot is live when the deferred closure is forced. *)
let test_mutation_premature_reclaim_epoch () =
  with_detector (fun san ->
      let e = E.create () in
      let s = E.register e in
      E.enter s;
      E.retire ~obj:42 e (fun () -> ());
      E.force e;
      E.exit s;
      check_bool "forced reclaim under a live pin detected" true
        (has R.Premature_reclaim (R.violations san)))

(* Class 3b: the same class at the tree level — merges reclaim leaves
   immediately while reader domains hold pins.  Readers pin on every
   search, so across a storm's worth of merges a live pin at reclaim
   time is (retried to be) certain. *)
let test_mutation_premature_reclaim_tree () =
  let rec attempt n seed =
    let r =
      R.check_tree ~writers:2 ~readers:2 ~ops:1_500 ~seed
        ~faults:[ T.Fault.Premature_reclaim ] ()
    in
    if has R.Premature_reclaim r.R.report_violations then true
    else if n = 0 then false
    else attempt (n - 1) (seed + 17)
  in
  check_bool "premature tree reclaim detected" true (attempt 4 42)

(* --- protocol lints driven straight through Sync ------------------------ *)

let test_unheld_unlock_lint () =
  with_detector (fun san ->
      let l = V.create () in
      (try
         V.unlock l;
         Alcotest.fail "unlock of an unheld vlock must raise"
       with Invalid_argument _ -> ());
      check_bool "unheld unlock reported" true
        (has R.Unheld_unlock (R.violations san)))

let test_stale_certification_unit () =
  with_detector (fun san ->
      let l = V.create () in
      (* sanctioned: read_begin snapshot *)
      let v = V.read_begin l in
      check_bool "sanctioned try_upgrade succeeds" true (V.try_upgrade l v);
      V.unlock l;
      check_bool "no lint for a sanctioned snapshot" true
        (not (has R.Stale_certification (R.violations san)));
      (* sanctioned: value under the lock *)
      check_bool "locked" true (V.try_lock l);
      let vh = V.value l + 1 in
      V.unlock l;
      check_bool "under-lock value certifies" true (V.try_upgrade l vh);
      V.unlock l;
      check_bool "still no lint" true
        (not (has R.Stale_certification (R.violations san)));
      (* unsanctioned: raw value outside the lock *)
      let bad = V.value l in
      ignore (V.try_upgrade l bad);
      V.unlock l;
      check_bool "raw-value certification flagged" true
        (has R.Stale_certification (R.violations san)))

let test_lock_order_inversion_lint () =
  with_detector (fun san ->
      let a = V.create () and b = V.create () in
      V.lock a;
      V.lock b;
      V.unlock b;
      V.unlock a;
      check_bool "consistent order is clean" true (R.clean san);
      V.lock b;
      V.lock a;
      V.unlock a;
      V.unlock b;
      check_bool "reversed order flagged" true
        (has R.Lock_order_inversion (R.violations san)))

let test_race_detection_unit () =
  (* two domains writing the same annotated variable: ordered through a
     vlock -> clean; ordered only by Domain.spawn/join (invisible to the
     hook) -> write-write race *)
  let run ~locked =
    with_detector (fun san ->
        let l = V.create () in
        let id = V.id l in
        let w () =
          if locked then V.lock l;
          Sync.Hook.access ~id ~write:true ~site:"test.write";
          if locked then V.unlock l
        in
        w ();
        Domain.join (Domain.spawn w);
        R.violations san)
  in
  check_bool "lock-ordered writes clean" true
    (not (has R.Write_write_race (run ~locked:true)));
  check_bool "unordered writes race" true
    (has R.Write_write_race (run ~locked:false))

(* --- pmsan composition: ack ordering across domains --------------------- *)

let test_unordered_ack () =
  let run ~via_vlock =
    let san = R.create () in
    let dev = D.create ~config:(Pmem.Config.default ~size:(1 lsl 20) ()) () in
    let pm = Pmsan.attach dev in
    R.attach san;
    R.watch_device san dev;
    Fun.protect ~finally:R.detach (fun () ->
        let l = V.create () in
        D.store_u64 dev 256 77L;
        D.persist dev 256 8;
        if via_vlock then begin
          V.lock l;
          V.unlock l
        end;
        Domain.join
          (Domain.spawn (fun () ->
               if via_vlock then begin
                 V.lock l;
                 V.unlock l
               end;
               D.ack_durable dev ~label:"test.ack" 256 8));
        check_bool "pmsan still composed (clwbs counted)" true
          ((Pmsan.counters pm).Pmsan.clwb > 0);
        Pmsan.detach pm;
        R.violations san)
  in
  check_bool "vlock-ordered ack is clean" true
    (not (has R.Unordered_ack (run ~via_vlock:true)));
  check_bool "ack without a visible edge to the fence is flagged" true
    (has R.Unordered_ack (run ~via_vlock:false))

let () =
  Alcotest.run "rsan"
    [
      ( "stock-clean",
        [
          Alcotest.test_case "check_index ccl" `Quick test_check_index_ccl;
          Alcotest.test_case "check_index baseline" `Quick
            test_check_index_baseline;
          Alcotest.test_case "storm 2 lanes" `Quick test_storm_2lane_clean;
          Alcotest.test_case "storm 4 lanes" `Quick test_storm_4lane_clean;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "stale merge certification" `Quick
            test_mutation_stale_merge_cert;
          Alcotest.test_case "skip write validation" `Quick
            test_mutation_skip_write_validation;
          Alcotest.test_case "premature reclaim (epoch)" `Quick
            test_mutation_premature_reclaim_epoch;
          Alcotest.test_case "premature reclaim (tree)" `Quick
            test_mutation_premature_reclaim_tree;
        ] );
      ( "lints",
        [
          Alcotest.test_case "unheld unlock" `Quick test_unheld_unlock_lint;
          Alcotest.test_case "stale certification" `Quick
            test_stale_certification_unit;
          Alcotest.test_case "lock order inversion" `Quick
            test_lock_order_inversion_lint;
          Alcotest.test_case "vector-clock races" `Quick
            test_race_detection_unit;
        ] );
      ( "composition",
        [ Alcotest.test_case "unordered ack" `Quick test_unordered_ack ] );
    ]
