(* Tests for the write-ahead log: append/replay roundtrips, chunk rollover
   and recycling, epoch reclamation, torn-entry detection under crashes. *)

module D = Pmem.Device
module Alloc = Pmalloc.Alloc
module Clock = Walog.Clock
module Wal = Walog.Wal

let setup ?(chunk_size = 1024) ?(threads = 2) () =
  let dev = D.create ~config:(Pmem.Config.default ~size:(1 lsl 20) ()) () in
  let alloc = Alloc.format dev ~chunk_size in
  let clock = Clock.create () in
  (dev, alloc, clock, Wal.create alloc clock ~threads)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let append w clock ~thread ~epoch k v =
  let ts = Clock.next clock in
  Wal.append w ~thread ~epoch ~key:(Int64.of_int k) ~value:(Int64.of_int v) ~ts;
  ts

let collect alloc =
  let acc = ref [] in
  let max_ts =
    Wal.replay alloc ~f:(fun ~key ~value ~ts ->
        acc := (Int64.to_int key, Int64.to_int value, ts) :: !acc)
  in
  (List.sort compare !acc, max_ts)

let test_append_replay_roundtrip () =
  let _, alloc, clock, w = setup () in
  let ts = List.init 10 (fun i -> append w clock ~thread:0 ~epoch:0 i (i * 10)) in
  let entries, max_ts = collect alloc in
  check_int "all entries" 10 (List.length entries);
  Alcotest.(check int64) "max ts" (List.nth ts 9) max_ts;
  List.iteri
    (fun i (k, v, _) ->
      check_int "key" i k;
      check_int "value" (i * 10) v)
    entries

let test_clock_monotonic () =
  let c = Clock.create () in
  let a = Clock.next c and b = Clock.next c in
  check_bool "strictly increasing" true (Int64.compare b a > 0);
  Clock.advance_to c 100L;
  check_bool "advance" true (Int64.compare (Clock.next c) 100L > 0);
  Clock.advance_to c 5L;
  check_bool "advance never regresses" true (Int64.compare (Clock.next c) 100L > 0)

let test_chunk_rollover () =
  let _, alloc, clock, w = setup ~chunk_size:256 () in
  (* 256 B chunk holds (256-32)/24 = 9 entries *)
  for i = 0 to 25 do
    ignore (append w clock ~thread:0 ~epoch:0 i i)
  done;
  let entries, _ = collect alloc in
  check_int "survives rollover" 26 (List.length entries);
  check_bool "live tracks entry bytes" true (Wal.live_bytes w = 26 * 24)

let test_per_thread_logs_isolated () =
  let _, alloc, clock, w = setup () in
  ignore (append w clock ~thread:0 ~epoch:0 1 1);
  ignore (append w clock ~thread:1 ~epoch:0 2 2);
  let entries, _ = collect alloc in
  check_int "both threads replay" 2 (List.length entries)

let test_reclaim_epoch () =
  let _, alloc, clock, w = setup () in
  for i = 0 to 9 do
    ignore (append w clock ~thread:0 ~epoch:0 i i)
  done;
  ignore (append w clock ~thread:0 ~epoch:1 100 100);
  Wal.reclaim_epoch w ~epoch:0;
  let entries, _ = collect alloc in
  check_int "only epoch-1 entries remain" 1 (List.length entries);
  (match entries with
  | [ (k, _, _) ] -> check_int "the I-log entry" 100 k
  | _ -> Alcotest.fail "unexpected");
  check_bool "live bytes dropped" true (Wal.live_bytes w = 24)

let test_recycled_chunk_hides_stale_entries () =
  let _, alloc, clock, w = setup ~chunk_size:256 () in
  for i = 0 to 8 do
    ignore (append w clock ~thread:0 ~epoch:0 i i)
  done;
  Wal.reclaim_epoch w ~epoch:0;
  (* reuse the same chunk: only the new entry must replay *)
  ignore (append w clock ~thread:0 ~epoch:1 42 42);
  let entries, _ = collect alloc in
  check_int "stale entries invisible" 1 (List.length entries);
  match entries with
  | [ (42, 42, _) ] -> ()
  | _ -> Alcotest.fail "stale entry leaked through recycle"

let test_replay_after_crash_prefix () =
  let dev, _alloc, clock, w = setup () in
  (* every append is fenced, so after a crash all appended entries replay *)
  for i = 0 to 19 do
    ignore (append w clock ~thread:0 ~epoch:0 i i)
  done;
  D.crash dev;
  let alloc2 = Alloc.attach dev in
  let acc = ref 0 in
  ignore (Wal.replay alloc2 ~f:(fun ~key:_ ~value:_ ~ts:_ -> incr acc));
  check_int "all fenced appends replay" 20 !acc

let test_live_and_peak () =
  let _, alloc, clock, w = setup ~chunk_size:256 () in
  ignore alloc;
  check_int "empty" 0 (Wal.live_bytes w);
  for i = 0 to 17 do
    ignore (append w clock ~thread:0 ~epoch:0 i i)
  done;
  let live = Wal.live_bytes w in
  check_bool "live grows" true (live = 18 * 24);
  Wal.reclaim_epoch w ~epoch:0;
  check_int "live zero after reclaim" 0 (Wal.live_bytes w);
  check_bool "peak persists" true (Wal.peak_live_bytes w >= live)

(* Sequential log appends coalesce in the XPBuffer: the media traffic for
   K entries is ~K*24/256 XPLines, not K XPLines (paper §3.5). *)
let test_log_locality () =
  let dev, _, clock, w = setup ~chunk_size:4096 () in
  let before = (D.snapshot dev).Pmem.Stats.media_write_lines in
  let n = 100 in
  for i = 0 to n - 1 do
    ignore (append w clock ~thread:0 ~epoch:0 i i)
  done;
  D.drain dev;
  let after = (D.snapshot dev).Pmem.Stats.media_write_lines in
  let lines = after - before in
  (* 100 entries * 24 B = 2400 B = ~10 XPLines; allow some slack *)
  check_bool
    (Printf.sprintf "sequential appends coalesce (%d lines)" lines)
    true
    (lines <= 16)

(* --- epoch-batched group commit ----------------------------------------- *)

let count_fences dev =
  let n = ref 0 in
  D.add_tracer dev (function D.Sfence -> incr n | _ -> ());
  n

(* Records appended inside one group share a single clwb set and tail
   fence (plus one more fence for the deferred timestamps of entries that
   straddle two cachelines) instead of a flush+fence per record. *)
let test_group_shares_tail_fence () =
  let dev, alloc, clock, w = setup () in
  (* acquire the chunk (and pay its header fence) outside the group *)
  ignore (append w clock ~thread:0 ~epoch:0 0 0);
  let fences = count_fences dev in
  let n = 8 in
  Wal.with_group w (fun () ->
      for i = 1 to n do
        ignore (append w clock ~thread:0 ~epoch:0 i i)
      done);
  check_bool
    (Printf.sprintf "%d grouped appends emit <= 2 fences (saw %d)" n !fences)
    true (!fences <= 2);
  let entries, _ = collect alloc in
  check_int "all grouped entries replay after commit" (n + 1)
    (List.length entries)

let test_group_empty_emits_no_fence () =
  let dev, _, _, w = setup () in
  let fences = count_fences dev in
  Wal.with_group w (fun () -> ());
  check_int "empty group emits no fence" 0 !fences;
  check_bool "group closed" true (not (Wal.group_open w))

(* A crash before [group_commit] loses only the unacked (grouped)
   records: every previously acked append still replays, the in-flight
   group's entries present unfenced stores or missing timestamps and are
   rejected. *)
let test_crash_mid_group_loses_only_unacked () =
  let dev, _, clock, w = setup () in
  for i = 0 to 4 do
    ignore (append w clock ~thread:0 ~epoch:0 i i)
  done;
  Wal.group_begin w;
  for i = 5 to 9 do
    ignore (append w clock ~thread:0 ~epoch:0 i i)
  done;
  D.crash dev;
  let alloc2 = Alloc.attach dev in
  let keys = ref [] in
  ignore
    (Wal.replay alloc2 ~f:(fun ~key ~value:_ ~ts:_ ->
         keys := Int64.to_int key :: !keys));
  let keys = List.sort compare !keys in
  check_bool "every acked record replays" true
    (List.filter (fun k -> k < 5) keys = [ 0; 1; 2; 3; 4 ]);
  (* torn group entries may or may not persist per-line, but an entry
     whose timestamp line never persisted can never replay with a torn
     key/value: the two-phase commit orders kv before ts *)
  check_bool "no phantom keys" true (List.for_all (fun k -> k < 10) keys)

let test_group_commit_then_crash_keeps_all () =
  let dev, _, clock, w = setup () in
  Wal.with_group w (fun () ->
      for i = 0 to 9 do
        ignore (append w clock ~thread:0 ~epoch:0 i i)
      done);
  D.crash dev;
  let alloc2 = Alloc.attach dev in
  let acc = ref 0 in
  ignore (Wal.replay alloc2 ~f:(fun ~key:_ ~value:_ ~ts:_ -> incr acc));
  check_int "committed group survives the crash" 10 !acc

let test_group_abandoned_on_exception () =
  let _, alloc, clock, w = setup () in
  (try
     Wal.with_group w (fun () ->
         ignore (append w clock ~thread:0 ~epoch:0 1 1);
         failwith "boom")
   with Failure _ -> ());
  check_bool "group closed after exception" true (not (Wal.group_open w));
  (* the log still works; only acked entries replay *)
  Wal.with_group w (fun () -> ignore (append w clock ~thread:0 ~epoch:0 2 2));
  let entries, _ = collect alloc in
  check_bool "acked entry present" true
    (List.exists (fun (k, _, _) -> k = 2) entries)

(* Crash at EVERY fence inside a grouped epoch: after each crash, every
   record acked before that fence must replay (acked durability is
   unchanged by group batching).  Acks are observed through the device
   event hook; the [n]-th len-24 ack corresponds to the [n]-th appended
   key because appends and group acks both run in append order. *)
exception Crash_now

let test_crash_at_every_fence_preserves_acked () =
  (* count the fences of one full run first *)
  let total_fences =
    let dev, _, clock, w = setup () in
    let fences = count_fences dev in
    for i = 0 to 2 do
      ignore (append w clock ~thread:0 ~epoch:0 i i)
    done;
    Wal.with_group w (fun () ->
        for i = 3 to 11 do
          ignore (append w clock ~thread:0 ~epoch:0 i i)
        done);
    !fences
  in
  check_bool "scenario emits fences" true (total_fences > 0);
  for crash_at = 1 to total_fences do
    let dev, _, clock, w = setup () in
    let fences = ref 0 in
    let acked = ref 0 in
    D.add_tracer dev (function
      | D.Sfence ->
        incr fences;
        if !fences = crash_at then raise Crash_now
      | D.Acked { len; _ } when len = Wal.entry_size -> incr acked
      | _ -> ());
    (try
       for i = 0 to 2 do
         ignore (append w clock ~thread:0 ~epoch:0 i i)
       done;
       Wal.with_group w (fun () ->
           for i = 3 to 11 do
             ignore (append w clock ~thread:0 ~epoch:0 i i)
           done)
     with Crash_now -> ());
    D.crash dev;
    let alloc2 = Alloc.attach dev in
    let keys = ref [] in
    ignore
      (Wal.replay alloc2 ~f:(fun ~key ~value:_ ~ts:_ ->
           keys := Int64.to_int key :: !keys));
    for k = 0 to !acked - 1 do
      check_bool
        (Printf.sprintf "crash at fence %d/%d: acked key %d replays"
           crash_at total_fences k)
        true
        (List.mem k !keys)
    done
  done

(* Property: append/replay is lossless for any batch across threads and
   epochs, as long as no epoch is reclaimed. *)
let prop_append_replay_lossless =
  QCheck.Test.make ~count:30 ~name:"wal append/replay lossless"
    QCheck.(list (tup3 (int_bound 1) (int_bound 1) small_nat))
    (fun ops ->
      let _, alloc, clock, w = setup ~chunk_size:256 ~threads:2 () in
      List.iter
        (fun (thread, epoch, k) -> ignore (append w clock ~thread ~epoch k k))
        ops;
      let entries, _ = collect alloc in
      List.length entries = List.length ops)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "walog"
    [
      ( "wal",
        [
          Alcotest.test_case "append/replay roundtrip" `Quick
            test_append_replay_roundtrip;
          Alcotest.test_case "clock monotonic" `Quick test_clock_monotonic;
          Alcotest.test_case "chunk rollover" `Quick test_chunk_rollover;
          Alcotest.test_case "per-thread logs" `Quick
            test_per_thread_logs_isolated;
          Alcotest.test_case "reclaim epoch" `Quick test_reclaim_epoch;
          Alcotest.test_case "recycle hides stale entries" `Quick
            test_recycled_chunk_hides_stale_entries;
          Alcotest.test_case "crash keeps fenced prefix" `Quick
            test_replay_after_crash_prefix;
          Alcotest.test_case "live/peak accounting" `Quick test_live_and_peak;
          Alcotest.test_case "log locality" `Quick test_log_locality;
        ] );
      ( "group commit",
        [
          Alcotest.test_case "shared tail fence" `Quick
            test_group_shares_tail_fence;
          Alcotest.test_case "empty group, no fence" `Quick
            test_group_empty_emits_no_fence;
          Alcotest.test_case "crash mid-group loses only unacked" `Quick
            test_crash_mid_group_loses_only_unacked;
          Alcotest.test_case "committed group survives crash" `Quick
            test_group_commit_then_crash_keeps_all;
          Alcotest.test_case "exception abandons group" `Quick
            test_group_abandoned_on_exception;
          Alcotest.test_case "crash at every fence keeps acked" `Quick
            test_crash_at_every_fence_preserves_acked;
        ] );
      ("properties", [ qt prop_append_replay_lossless ]);
    ]
