(* Tests for Obs.Prof, the site-attributed WA/contention profiler:
   - the summation invariant: per-site media/XPBuffer byte totals equal
     the device's global Stats deltas over the profiled window, on the
     sequential path and under real multi-writer domains;
   - the zero-overhead-off contract: an unprofiled run's device counters
     are bit-identical to a profiled run's, and the unhooked store/persist
     hot path allocates nothing;
   - histogram boundary behaviour under cross-lane merge (qcheck);
   - Metrics.diff_numbers union semantics (added/removed markers). *)

module D = Pmem.Device
module S = Pmem.Stats
module H = Obs.Histogram
module I = Baselines.Index_intf

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let spec threads =
  Harness.Runner.Ccl
    ( { Ccl_btree.Config.default with Ccl_btree.Config.threads },
      "CCL-BTree" )

let fresh_driver ?(threads = 1) () =
  let dev = Harness.Runner.device ~mb:96 () in
  (dev, Harness.Runner.build (spec threads) dev)

let insert_range (drv : I.driver) ~from n =
  for i = 1 to n do
    drv.I.upsert (Int64.of_int (from + i)) (Int64.of_int i)
  done

(* --- WA summation invariant, sequential ------------------------------- *)

let test_invariant_sequential () =
  let dev, drv = fresh_driver () in
  insert_range drv ~from:0 3_000;
  let p = Obs.Prof.create ~now:Shard.Clock.monotonic_ns () in
  let ln = Obs.Prof.lane p ~tid:0 in
  Obs.Prof.attach_device ln dev;
  let before = D.snapshot dev in
  insert_range drv ~from:3_000 3_000;
  drv.I.flush_all ();
  let delta = S.diff ~after:(D.snapshot dev) ~before in
  let tot = Obs.Prof.wa_total p in
  check_int "media bytes attributed" delta.S.media_write_bytes
    tot.Obs.Prof.media_bytes;
  check_int "media lines attributed" delta.S.media_write_lines
    tot.Obs.Prof.media_lines;
  check_int "xpbuffer bytes attributed" delta.S.xpbuffer_write_bytes
    tot.Obs.Prof.xp_bytes;
  (* the table rows are a partition of the total *)
  let rows = Obs.Prof.wa_table p in
  check_int "rows sum to total"
    tot.Obs.Prof.media_bytes
    (List.fold_left (fun a r -> a + r.Obs.Prof.media_bytes) 0 rows);
  (* the interesting mechanisms actually got charged *)
  let site name = List.exists (fun r -> r.Obs.Prof.site = name) rows in
  check_bool "wal-append charged" true (site "wal-append");
  check_bool "leaf-buffer charged" true (site "leaf-buffer")

(* --- WA summation invariant, multi-writer domains ---------------------- *)

let test_invariant_multi_writer () =
  let writers = 2 in
  let dev, drv = fresh_driver ~threads:writers () in
  insert_range drv ~from:0 2_000;
  let p = Obs.Prof.create ~now:Shard.Clock.monotonic_ns () in
  let main_ln = Obs.Prof.lane p ~tid:0 in
  Obs.Prof.attach_device main_ln dev;
  let mint = Option.get drv.I.new_writer in
  (* lanes are created on the coordinating domain (Prof.lane locks), the
     device views attach on the worker domains after mint — the same
     lifecycle Shard.Write_pool uses *)
  let lanes = Array.init writers (fun i -> Obs.Prof.lane p ~tid:(i + 1)) in
  let before = D.snapshot dev in
  let doms =
    Array.init writers (fun i ->
        Domain.spawn (fun () ->
            let w = mint () in
            Obs.Prof.attach_device lanes.(i) (w.I.w_dev ());
            for k = 1 to 2_000 do
              w.I.w_upsert
                (Int64.of_int (2_000 + (k * writers) + i))
                (Int64.of_int k)
            done;
            w.I.w_dev_stats ()))
  in
  let wstats = Array.to_list (Array.map Domain.join doms) in
  drv.I.flush_all ();
  let delta =
    S.merge_all (S.diff ~after:(D.snapshot dev) ~before :: wstats)
  in
  let tot = Obs.Prof.wa_total p in
  check_int "media bytes attributed (multi-writer)" delta.S.media_write_bytes
    tot.Obs.Prof.media_bytes;
  check_int "media lines attributed (multi-writer)" delta.S.media_write_lines
    tot.Obs.Prof.media_lines;
  check_int "xpbuffer bytes attributed (multi-writer)"
    delta.S.xpbuffer_write_bytes tot.Obs.Prof.xp_bytes

(* --- zero-overhead-off contract ---------------------------------------- *)

(* Profiling must not perturb what it measures: the same op stream on a
   fresh device produces bit-identical counters with and without a
   profiler attached. *)
let test_off_state_stats_identical () =
  let run profiled =
    let dev, drv = fresh_driver () in
    (if profiled then begin
       let p = Obs.Prof.create ~now:Shard.Clock.monotonic_ns () in
       Obs.Prof.attach_device (Obs.Prof.lane p ~tid:0) dev
     end);
    insert_range drv ~from:0 4_000;
    drv.I.flush_all ();
    D.snapshot dev
  in
  check_bool "stats bit-identical with and without profiler" true
    (S.equal (run false) (run true))

(* The unhooked hot path — store, clwb, sfence on a device with no tracer
   and no site tracking — allocates nothing: every profiler touch must
   stay one flag load behind the off switch. *)
let test_off_state_zero_alloc () =
  let dev = D.create ~config:(Pmem.Config.default ~size:(1 lsl 20) ()) () in
  let buf = Bytes.make 64 'x' in
  let loop () =
    for i = 0 to 999 do
      let off = (i mod 64) * 64 in
      D.store dev off buf;
      D.clwb dev off;
      D.sfence dev
    done
  in
  loop ();
  (* warmed: any one-time lazy setup is done *)
  let w0 = Gc.minor_words () in
  loop ();
  let dw = Gc.minor_words () -. w0 in
  Alcotest.(check (float 0.0)) "unhooked store/persist loop allocates 0 words"
    0.0 dw

(* --- histogram boundaries under cross-lane merge (qcheck) --------------- *)

(* Values pinned to bucket edges (lo and hi of log-buckets) are the
   adversarial inputs for a bucketed percentile; recording them split
   across two lanes and merging must keep every percentile within one
   bucket of the exact order statistic, same as single-lane recording. *)
let arb_edge_value =
  QCheck.(
    map
      (fun (bucket, hi_edge) ->
        let lo, hi = H.bounds_of_bucket (bucket mod 128) in
        if hi_edge then hi else lo)
      (pair (int_bound 127) bool))

let arb_edge_values = QCheck.(list_of_size Gen.(1 -- 200) arb_edge_value)

let reference_percentile vs p =
  let a = Array.of_list vs in
  Array.sort compare a;
  let n = Array.length a in
  let rank = int_of_float (ceil (p *. float_of_int n /. 100.0)) in
  a.(max 0 (min (n - 1) (rank - 1)))

let prop_edge_merge_percentile =
  QCheck.Test.make ~count:500
    ~name:"bucket-edge values: cross-lane merge keeps percentile in-bucket"
    QCheck.(pair arb_edge_values (list_of_size Gen.(0 -- 200) bool))
    (fun (vs, split) ->
      (* deal values to two lanes by the boolean stream (cycled) *)
      let a = H.create () and b = H.create () in
      List.iteri
        (fun i v ->
          let left =
            match List.nth_opt split (i mod max 1 (List.length split)) with
            | Some s -> s
            | None -> true
          in
          H.record (if left then a else b) v)
        vs;
      let merged = H.merge a b in
      List.for_all
        (fun p ->
          let r = reference_percentile vs p in
          let q = H.percentile merged p in
          H.bucket_of q = H.bucket_of r && q >= r)
        [ 50.0; 90.0; 99.0; 99.9; 100.0 ])

(* --- Metrics.diff_numbers union semantics ------------------------------- *)

let test_diff_numbers () =
  let before =
    [ ("a", 1.0); ("b", 2.0); ("gone", 7.0); ("a", 99.0) (* dup: ignored *) ]
  in
  let after = [ ("b", 5.0); ("new", 3.0); ("a", 4.0) ] in
  let d = Obs.Metrics.diff_numbers ~before ~after in
  (* after-order for delta/added rows, removed rows appended last *)
  Alcotest.(check (list string))
    "key order" [ "b"; "new"; "a"; "gone" ]
    (List.map fst d);
  let entry k = List.assoc k d in
  check_bool "delta b" true (entry "b" = `Delta (2.0, 5.0));
  check_bool "added new" true (entry "new" = `Added 3.0);
  check_bool "delta a first-occurrence-wins" true (entry "a" = `Delta (1.0, 4.0));
  check_bool "removed gone" true (entry "gone" = `Removed 7.0);
  check_bool "empty diff" true (Obs.Metrics.diff_numbers ~before:[] ~after:[] = [])

(* --- contention + trace counter tracks ---------------------------------- *)

(* The queue-residency histograms and the Perfetto counter tracks ride the
   same lanes; with [~trace:true] the finish pass must leave counter ("C")
   events in the buffers write_many serializes. *)
let test_counter_tracks () =
  let p =
    Obs.Prof.create ~trace:true ~now:Shard.Clock.monotonic_ns ()
  in
  let ln = Obs.Prof.lane p ~tid:3 in
  for i = 1 to 300 do
    Obs.Prof.queue_wait ln (100 * i);
    Obs.Prof.queue_apply ln (10 * i)
  done;
  Obs.Prof.finish p;
  (match Obs.Prof.queue_hists p with
  | [ ("queue-wait", hw); ("queue-apply", ha) ] ->
    check_int "queue-wait count" 300 (H.count hw);
    check_int "queue-apply count" 300 (H.count ha)
  | other ->
    Alcotest.failf "unexpected queue_hists arity: %d" (List.length other));
  let bufs = Obs.Prof.trace_buffers p in
  check_bool "trace buffers present" true (bufs <> []);
  let path = Filename.temp_file "prof_tracks" ".json" in
  let oc = open_out path in
  Obs.Trace.write_many bufs oc;
  close_out oc;
  let ic = open_in path in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  let contains sub =
    let nl = String.length body and sl = String.length sub in
    let rec at i = i + sl <= nl && (String.sub body i sl = sub || at (i + 1)) in
    at 0
  in
  check_bool "counter phase events emitted" true
    (contains "\"ph\": \"C\"" || contains "\"ph\":\"C\"");
  check_bool "queue-wait track named" true (contains "queue-wait-ns/w3")

let () =
  Alcotest.run "prof"
    [
      ( "wa-invariant",
        [
          Alcotest.test_case "sequential" `Quick test_invariant_sequential;
          Alcotest.test_case "multi-writer" `Quick test_invariant_multi_writer;
        ] );
      ( "off-state",
        [
          Alcotest.test_case "stats bit-identical" `Quick
            test_off_state_stats_identical;
          Alcotest.test_case "zero allocation" `Quick
            test_off_state_zero_alloc;
        ] );
      ( "histogram-edges",
        [ QCheck_alcotest.to_alcotest prop_edge_merge_percentile ] );
      ( "metrics-diff",
        [ Alcotest.test_case "union diff" `Quick test_diff_numbers ] );
      ( "trace",
        [ Alcotest.test_case "counter tracks" `Quick test_counter_tracks ] );
    ]
