(* Concurrent-reader correctness: optimistic version-validated searches
   and scans racing the single writer domain, validated against a
   volatile oracle; device read-view semantics; Stats.merge under a true
   parallel read storm; and a crash-at-every-fence sweep with readers
   mid-validate.

   Value encoding used throughout: key [k] at generation [g] carries
   value [g * key_space + k + 1].  Any value a reader returns for [k]
   must decode back to [k] — a torn read, a wrong-slot read or a
   cross-node confusion decodes to some other key and trips the check
   regardless of which generation the reader observed. *)

module D = Pmem.Device
module S = Pmem.Stats
module T = Ccl_btree.Tree
module Config = Ccl_btree.Config
module I = Baselines.Index_intf
module Y = Workload.Ycsb

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let device ?(size = 8 * 1024 * 1024) ?(persist_prob = 0.5) ?(seed = 17) () =
  D.create
    ~config:
      { (Pmem.Config.default ~size ()) with persist_prob; crash_seed = seed }
    ()

let key_space = 512
let encode ~g k = Int64.of_int ((g * key_space) + k + 1)
let decode_key v = (Int64.to_int v - 1) mod key_space

(* --- device read views -------------------------------------------------- *)

let test_read_view_basics () =
  let dev = device () in
  D.store_u64 dev 4096 0xABCDL;
  let rv = D.read_view dev in
  check_bool "is_read_view" true (D.is_read_view rv);
  check_bool "parent is not" false (D.is_read_view dev);
  Alcotest.(check int64) "sees parent stores" 0xABCDL (D.load_u64 rv 4096);
  D.store_u64 dev 4096 0x1234L;
  Alcotest.(check int64) "sees later stores too" 0x1234L (D.load_u64 rv 4096);
  Alcotest.check_raises "store through view rejected"
    (Invalid_argument "Device: mutation through a read-only view (read_view)")
    (fun () -> D.store_u64 rv 4096 1L);
  Alcotest.check_raises "sfence through view rejected"
    (Invalid_argument "Device: mutation through a read-only view (read_view)")
    (fun () -> D.sfence rv)

let test_read_view_private_stats () =
  let dev = device () in
  D.store_u64 dev 4096 7L;
  let before = (D.snapshot dev).S.media_read_bytes in
  let rv = D.read_view dev in
  for i = 0 to 63 do
    ignore (D.load_u64 rv (4096 + (8 * i)) : int64)
  done;
  check_int "parent read counters untouched" before
    (D.snapshot dev).S.media_read_bytes;
  check_bool "view accounted its own reads" true
    ((D.snapshot rv).S.media_read_bytes > 0);
  (* the monoid composes them *)
  let merged = S.merge (D.snapshot dev) (D.snapshot rv) in
  check_int "merge sums read traffic"
    (before + (D.snapshot rv).S.media_read_bytes)
    merged.S.media_read_bytes

(* --- single-domain reader handle sanity --------------------------------- *)

let test_reader_sequential_agreement () =
  let dev = device () in
  let t = T.create dev in
  for k = 0 to key_space - 1 do
    T.upsert t (Int64.of_int k) (encode ~g:0 k)
  done;
  let r = T.reader t in
  for k = 0 to key_space - 1 do
    Alcotest.(check (option int64))
      (Printf.sprintf "key %d" k)
      (T.search t (Int64.of_int k))
      (T.reader_search r (Int64.of_int k))
  done;
  Alcotest.(check (option int64)) "miss agrees" None
    (T.reader_search r (Int64.of_int (key_space + 7)));
  let ws = T.scan t ~start:0L 100 in
  let rs = T.reader_scan r ~start:0L 100 in
  Alcotest.(check (array (pair int64 int64))) "scan agrees" ws rs;
  check_int "no retries unopposed" 0 (T.reader_retries r)

(* --- randomized concurrent schedule vs volatile oracle ------------------- *)

(* Writer keeps inserting fresh keys into a hot range (forcing splits and
   the occasional merge via deletes) and re-upserting churn keys at
   rising generations, while reader domains hammer searches over the
   whole keyspace.  Stable keys are written once at g=0 and never again:
   readers must find them with the exact g=0 value at every instant.
   Churn keys must decode to themselves whenever present. *)
let test_concurrent_search_storm () =
  let dev = device () in
  let t = T.create dev in
  (* stable keys: even; churn keys: odd *)
  for k = 0 to key_space - 1 do
    T.upsert t (Int64.of_int k) (encode ~g:0 k)
  done;
  let n_readers = 3 in
  let running = Atomic.make n_readers in
  let per_reader_ops = 4_000 in
  let reader_main seed =
    let r = T.reader t in
    let rng = Random.State.make [| seed |] in
    let bad = ref 0 in
    for _ = 1 to per_reader_ops do
      let k = Random.State.int rng key_space in
      match T.reader_search r (Int64.of_int k) with
      | Some v -> if decode_key v <> k then incr bad
      | None ->
        (* stable keys are never deleted; churn keys never either *)
        incr bad
    done;
    Atomic.decr running;
    (!bad, T.reader_retries r)
  in
  let readers =
    List.init n_readers (fun i -> Domain.spawn (fun () -> reader_main (100 + i)))
  in
  (* writer: churn odd keys through rising generations until every reader
     has finished its quota, so the storms genuinely overlap; extra
     inserts/deletes beyond the keyspace drive splits and merges in the
     hot range the readers are searching *)
  let rng = Random.State.make [| 42 |] in
  let g = ref 0 in
  while Atomic.get running > 0 do
    incr g;
    let g = !g in
    for k = 0 to key_space - 1 do
      if k land 1 = 1 then T.upsert t (Int64.of_int k) (encode ~g k)
    done;
    (* burst of far-key inserts/deletes to force structural changes *)
    for _ = 1 to 64 do
      let k = key_space + Random.State.int rng key_space in
      T.upsert t (Int64.of_int k) (encode ~g (k mod key_space))
    done;
    for _ = 1 to 48 do
      let k = key_space + Random.State.int rng key_space in
      T.delete t (Int64.of_int k)
    done
  done;
  let results = List.map Domain.join readers in
  List.iteri
    (fun i (bad, _retries) ->
      check_int (Printf.sprintf "reader %d: zero bad reads" i) 0 bad)
    results;
  check_bool "writer overlapped the storm" true (!g >= 1);
  (* quiesced: full agreement with the writer's view, invariants hold *)
  T.check_invariants t;
  let r = T.reader t in
  for k = 0 to key_space - 1 do
    Alcotest.(check (option int64))
      (Printf.sprintf "final key %d" k)
      (T.search t (Int64.of_int k))
      (T.reader_search r (Int64.of_int k))
  done

let test_concurrent_scan_storm () =
  let dev = device () in
  let t = T.create dev in
  for k = 0 to key_space - 1 do
    T.upsert t (Int64.of_int k) (encode ~g:0 k)
  done;
  let n_scanners = 2 in
  let running = Atomic.make n_scanners in
  let per_scanner = 250 in
  let reader_main seed =
    let r = T.reader t in
    let rng = Random.State.make [| seed |] in
    let bad = ref 0 in
    for _ = 1 to per_scanner do
      let start = Random.State.int rng key_space in
      let arr = T.reader_scan r ~start:(Int64.of_int start) 50 in
      (* sorted strictly increasing, every value decodes to its key *)
      Array.iteri
        (fun i (k, v) ->
          if Int64.to_int k < key_space && decode_key v <> Int64.to_int k then
            incr bad;
          if i > 0 && Int64.compare (fst arr.(i - 1)) k >= 0 then incr bad)
        arr;
      (* keyspace keys are dense and never deleted: a scan starting
         inside it must not skip entries *)
      if Array.length arr > 0 then begin
        let k0, _ = arr.(0) in
        if Int64.to_int k0 <> start then incr bad
      end
    done;
    Atomic.decr running;
    !bad
  in
  let readers =
    List.init n_scanners (fun i -> Domain.spawn (fun () -> reader_main (200 + i)))
  in
  (* writer drives splits and merges beyond the stable keyspace until the
     scanners finish their quotas *)
  let rng = Random.State.make [| 43 |] in
  let g = ref 0 in
  while Atomic.get running > 0 do
    incr g;
    let g = !g in
    for _ = 1 to 96 do
      let k = key_space + Random.State.int rng (4 * key_space) in
      T.upsert t (Int64.of_int k) (encode ~g (k mod key_space))
    done;
    for _ = 1 to 80 do
      let k = key_space + Random.State.int rng (4 * key_space) in
      T.delete t (Int64.of_int k)
    done
  done;
  let results = List.map Domain.join readers in
  List.iteri
    (fun i bad ->
      check_int (Printf.sprintf "scanner %d: zero inconsistencies" i) 0 bad)
    results;
  check_bool "writer overlapped the storm" true (!g >= 1);
  T.check_invariants t

(* --- Stats.merge under a true parallel read storm (qcheck) --------------- *)

(* K domains each run the same load sequence over their own read view of
   a frozen device, updating their private Stats records truly
   concurrently; merging the per-domain records must equal the merge of K
   sequential golden runs.  This pins both the merge monoid and the
   domain-locality of read-view accounting: any shared mutable counter
   between views would make the concurrent sum drift. *)
let stats_merge_parallel =
  QCheck.Test.make ~count:20 ~name:"Stats.merge over parallel read storms"
    QCheck.(pair (small_list (int_bound 1023)) (int_range 2 4))
    (fun (offsets, domains) ->
      let dev = device ~persist_prob:1.0 () in
      for i = 0 to 127 do
        D.store_u64 dev (4096 + (8 * i)) (Int64.of_int i)
      done;
      let run_loads view =
        List.iter
          (fun off -> ignore (D.load_u64 view (4096 + (8 * (off mod 128))) : int64))
          offsets;
        D.snapshot view
      in
      let golden = run_loads (D.read_view dev) in
      let spawned =
        List.init domains (fun _ ->
            Domain.spawn (fun () -> run_loads (D.read_view dev)))
      in
      let per_domain = List.map Domain.join spawned in
      let expected = S.merge_all (List.init domains (fun _ -> S.copy golden)) in
      S.equal expected (S.merge_all per_domain))

(* --- reader pool over a shard ------------------------------------------- *)

let mk_shard () =
  Shard.create
    ~config:{ Shard.default_config with shards = 1; batch = 16 }
    ~make:(fun _ ->
      let dev = device () in
      (dev, Baselines.Ccl_index.driver_with Config.default dev))
    ()

let test_read_pool_concurrent_with_writer () =
  let sh = mk_shard () in
  let keys = Array.init key_space (fun k -> Int64.of_int k) in
  Array.iter (fun k -> Shard.upsert sh k (encode ~g:0 (Int64.to_int k))) keys;
  Shard.flush sh;
  let pool = Shard.reader_pool sh ~shard:0 ~readers:2 in
  (* read storm overlapping a write storm on the same shard *)
  let reads =
    Array.init 2_000 (fun i -> Y.Read (Int64.of_int (i mod key_space)))
  in
  Shard.Read_pool.run_async pool reads;
  for g = 1 to 10 do
    for k = 0 to key_space - 1 do
      if k land 1 = 1 then
        Shard.upsert sh (Int64.of_int k) (encode ~g k)
    done
  done;
  Shard.flush sh;
  Shard.Read_pool.join pool;
  let applied = Shard.Read_pool.applied pool in
  check_int "all reads executed" 2_000 (Array.fold_left ( + ) 0 applied);
  Array.iteri
    (fun i n -> check_bool (Printf.sprintf "reader %d ran" i) true (n > 0))
    applied;
  Shard.Read_pool.shutdown pool;
  (* after shutdown the merged reader device counters are available and
     the pool accounted real load traffic *)
  let rs = Shard.Read_pool.dev_stats pool in
  check_bool "reader views read the medium" true (rs.S.media_read_bytes >= 0);
  Shard.shutdown sh

let test_read_pool_rejects_readerless_driver () =
  let dev0 = device () in
  let sh =
    Shard.create
      ~config:{ Shard.default_config with shards = 1 }
      ~make:(fun _ ->
        let t = T.create dev0 in
        ( dev0,
          {
            I.name = "no-readers";
            upsert = T.upsert t;
            search = T.search t;
            delete = T.delete t;
            scan = (fun ~start n -> T.scan t ~start n);
            flush_all = (fun () -> T.flush_all t);
            dram_bytes = (fun () -> T.dram_bytes t);
            pm_bytes = (fun () -> T.pm_bytes t);
            allocator = (fun () -> T.allocator t);
            counters = (fun () -> []);
            new_reader = None;
            new_writer = None;
          } ))
      ()
  in
  Alcotest.check_raises "pool creation rejected"
    (Invalid_argument
       "Shard.reader_pool: this index driver has no concurrent read path")
    (fun () -> ignore (Shard.reader_pool sh ~shard:0 ~readers:2 : Shard.Read_pool.t));
  Shard.shutdown sh

(* --- crash at every fence while readers are mid-validate ----------------- *)

(* For every fence index: rewind to the post-format checkpoint, recover,
   spawn a reader storm, replay the workload until the power fails at
   that fence, crash while the readers are still validating, and check:
   no reader ever returns a value that decodes to the wrong key (pre- or
   post-crash bytes both encode correctly, torn reads do not), recovery
   preserves the structural invariants, and a fresh reader over the
   recovered tree agrees with the writer on every key.  [persist_prob]
   0.5 keeps the adversarial outcome; the encoding check is exactly the
   anti-torn-read property DESIGN.md §12 claims for optimistic reads. *)
let test_crash_sweep_with_live_readers () =
  let cfg = { Config.default with Config.nbatch = 2 } in
  let dev = device ~size:(4 * 1024 * 1024) ~persist_prob:0.5 ~seed:23 () in
  let t0 = T.create ~cfg dev in
  ignore (t0 : T.t);
  let ck = D.checkpoint dev in
  let ks = 96 in
  let n_ops = 220 in
  let ops =
    (* deterministic mixed stream within a small keyspace + split-driving
       inserts; values carry the generation so the decode check bites *)
    List.init n_ops (fun i ->
        let k = (i * 7) mod ks in
        let g = 1 + (i / ks) in
        if i mod 9 = 8 then (Int64.of_int k, 0L)
        else (Int64.of_int k, Int64.of_int ((g * ks) + k + 1)))
  in
  let decode v = (Int64.to_int v - 1) mod ks in
  let replay t =
    List.iter
      (fun (k, v) -> if Int64.equal v 0L then T.delete t k else T.upsert t k v)
      ops
  in
  let max_fences = 2_000 in
  let rec sweep fence tested =
    if fence > max_fences then Alcotest.fail "fence cap hit: sweep diverged"
    else begin
      D.restore dev ck;
      let t = T.recover ~cfg dev in
      D.plan_failure dev ~after_fences:fence;
      let stop = Atomic.make false in
      let rd =
        Domain.spawn (fun () ->
            let r = T.reader t in
            let rng = Random.State.make [| fence |] in
            let bad = ref 0 in
            while not (Atomic.get stop) do
              let k = Random.State.int rng ks in
              (match T.reader_search r (Int64.of_int k) with
              | Some v -> if decode v <> k then incr bad
              | None -> ());
              Domain.cpu_relax ()
            done;
            !bad)
      in
      let completed =
        try
          replay t;
          true
        with D.Power_failure -> false
      in
      (* the power is now off: the reader domains die with it, before the
         simulator scrambles the shared byte images in [crash] *)
      Atomic.set stop true;
      let bad = Domain.join rd in
      check_int
        (Printf.sprintf "fence %d: no mis-keyed read" fence)
        0 bad;
      if not completed then D.crash dev;
      D.cancel_failure dev;
      if completed then tested
      else begin
        let t' = T.recover ~cfg dev in
        T.check_invariants t';
        let r' = T.reader t' in
        for k = 0 to ks - 1 do
          Alcotest.(check (option int64))
            (Printf.sprintf "fence %d: recovered key %d" fence k)
            (T.search t' (Int64.of_int k))
            (T.reader_search r' (Int64.of_int k))
        done;
        sweep (fence + 7) (tested + 1)
      end
    end
  in
  let tested = sweep 1 0 in
  check_bool "sweep exercised crash points" true (tested > 5)

let () =
  Alcotest.run "readers"
    [
      ( "read-view",
        [
          Alcotest.test_case "basics" `Quick test_read_view_basics;
          Alcotest.test_case "private stats" `Quick
            test_read_view_private_stats;
        ] );
      ( "reader",
        [
          Alcotest.test_case "sequential agreement" `Quick
            test_reader_sequential_agreement;
          Alcotest.test_case "concurrent search storm" `Quick
            test_concurrent_search_storm;
          Alcotest.test_case "concurrent scan storm" `Quick
            test_concurrent_scan_storm;
        ] );
      ( "stats",
        [ QCheck_alcotest.to_alcotest stats_merge_parallel ] );
      ( "read-pool",
        [
          Alcotest.test_case "concurrent with writer" `Quick
            test_read_pool_concurrent_with_writer;
          Alcotest.test_case "rejects readerless driver" `Quick
            test_read_pool_rejects_readerless_driver;
        ] );
      ( "crash",
        [
          Alcotest.test_case "sweep with live readers" `Quick
            test_crash_sweep_with_live_readers;
        ] );
    ]
