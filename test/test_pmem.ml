(* Tests for the simulated DCPMM device: store/flush/fence semantics,
   XPBuffer coalescing, amplification accounting, and adversarial crash
   persistency. *)

module G = Pmem.Geometry
module D = Pmem.Device
module S = Pmem.Stats

let cfg ?(size = 1 lsl 20) ?(xpbuffer_lines = 64) ?(cpu_cache_lines = 8192)
    ?(eadr = false) ?(persist_prob = 0.5) ?(crash_seed = 42) () =
  {
    (Pmem.Config.default ~size ()) with
    xpbuffer_lines;
    cpu_cache_lines;
    eadr;
    persist_prob;
    crash_seed;
  }

let device ?size ?xpbuffer_lines ?cpu_cache_lines ?eadr ?persist_prob
    ?crash_seed () =
  D.create
    ~config:
      (cfg ?size ?xpbuffer_lines ?cpu_cache_lines ?eadr ?persist_prob
         ?crash_seed ())
    ()

let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- geometry -------------------------------------------------------- *)

let test_geometry () =
  check_int "line_of" 64 (G.line_of 100);
  check_int "xpline_of" 256 (G.xpline_of 300);
  check_int "subline" 1 (G.subline_of 320);
  check_int "subline of line 2" 2 (G.subline_of 128);
  check_int "subline within first line" 0 (G.subline_of 44);
  check_int "lines in range" 2 (List.length (G.lines_in_range 60 10));
  check_int "xplines in range" 2 (List.length (G.xplines_in_range 250 10));
  check_int "empty range" 0 (List.length (G.lines_in_range 0 0));
  check_int "single line" 1 (List.length (G.lines_in_range 0 64));
  check_int "xpbuffer slots" 64 G.xpbuffer_capacity_lines

(* The allocation-free iterators the device hot path is built on must
   visit exactly the lines the list versions return, in ascending order,
   for any (addr, len) — including len = 0 and ranges straddling line and
   XPLine boundaries. *)
let test_iter_lines_matches_list () =
  let collect iter addr len =
    let acc = ref [] in
    iter addr len (fun a -> acc := a :: !acc);
    List.rev !acc
  in
  let check_pair addr len =
    Alcotest.(check (list int))
      (Printf.sprintf "iter_lines %d+%d" addr len)
      (G.lines_in_range addr len)
      (collect G.iter_lines addr len);
    Alcotest.(check (list int))
      (Printf.sprintf "iter_xplines %d+%d" addr len)
      (G.xplines_in_range addr len)
      (collect G.iter_xplines addr len)
  in
  (* edge cases: empty, exact line, line-straddling, XPLine-straddling *)
  List.iter
    (fun (addr, len) -> check_pair addr len)
    [
      (0, 0); (100, 0); (0, 1); (0, 64); (63, 2); (60, 10); (250, 10);
      (255, 1); (255, 2); (0, 256); (192, 128); (1000, 3000);
    ];
  let rng = Random.State.make [| 0xFEED |] in
  for _ = 1 to 500 do
    let addr = Random.State.int rng 8192 in
    let len = Random.State.int rng 2048 in
    check_pair addr len
  done

(* The dirty-line FIFO contract: with jitter 1 the ring is an exact FIFO
   (no RNG-dependent reordering), which the deterministic drain relies
   on. *)
let test_ring_jitter1_is_fifo () =
  let rng = Random.State.make [| 42 |] in
  let r = D.Ring.create () in
  let expect = ref 0 in
  let pop_one () =
    match D.Ring.pop_jittered r rng ~jitter:1 with
    | Some v ->
      check_int "exact FIFO order" !expect v;
      incr expect
    | None -> Alcotest.fail "unexpected empty ring"
  in
  (* push enough to force the ring to grow and wrap, interleaving pops so
     the head moves off zero *)
  for i = 0 to 2999 do
    D.Ring.push r i;
    if i mod 7 = 6 then pop_one ()
  done;
  while D.Ring.length r > 0 do
    pop_one ()
  done;
  check_int "all elements popped in order" 3000 !expect;
  check_bool "empty ring pops None" true
    (D.Ring.pop_jittered r rng ~jitter:1 = None)

(* --- basic store/load ------------------------------------------------ *)

let test_store_load () =
  let d = device () in
  D.store_u64 d 128 42L;
  check_i64 "u64 roundtrip" 42L (D.load_u64 d 128);
  D.store_string d 512 "hello";
  Alcotest.(check string) "string" "hello" (Bytes.to_string (D.load d 512 5));
  D.store_u8 d 1000 0xAB;
  check_int "u8" 0xAB (D.load_u8 d 1000)

let test_unflushed_not_on_media () =
  let d = device () in
  D.store_u64 d 0 7L;
  check_int "media still zero" 0 (D.media_byte d 0);
  check_int "one dirty line" 1 (D.dirty_lines d)

let test_persist_reaches_xpbuffer_not_media () =
  let d = device () in
  D.store_u64 d 0 7L;
  D.persist d 0 8;
  (* In the XPBuffer (persistence domain) but not yet written back. *)
  check_int "xpbuffer holds it" 1 (D.xpbuffer_occupancy d);
  check_int "media untouched" 0 (D.media_byte d 0);
  D.drain d;
  check_int "media after drain" 7 (D.media_byte d 0)

let test_clwb_without_fence_is_pending () =
  let d = device () in
  D.store_u64 d 0 9L;
  D.flush_range d 0 8;
  check_int "not yet in xpbuffer" 0 (D.xpbuffer_occupancy d);
  D.sfence d;
  check_int "fence moves it" 1 (D.xpbuffer_occupancy d)

(* --- XPBuffer coalescing and media accounting ------------------------ *)

let test_coalescing_same_xpline () =
  let d = device () in
  (* Four cachelines of the same XPLine, flushed separately. *)
  for sub = 0 to 3 do
    D.store_u64 d (sub * 64) (Int64.of_int sub);
    D.persist d (sub * 64) 8
  done;
  D.drain d;
  let st = D.stats d in
  check_int "one media write" 1 st.S.media_write_lines;
  check_int "no RMW read (full line)" 0 st.S.media_read_lines;
  check_int "4 x 64B into xpbuffer" 256 st.S.xpbuffer_write_bytes

let test_random_xplines_amplify () =
  let d = device ~size:(1 lsl 20) () in
  (* One cacheline in each of 100 distinct XPLines. *)
  for i = 0 to 99 do
    D.store_u64 d (i * 256) (Int64.of_int i);
    D.persist d (i * 256) 8
  done;
  D.drain d;
  let st = D.stats d in
  check_int "100 media writes" 100 st.S.media_write_lines;
  check_int "100 RMW reads" 100 st.S.media_read_lines

let test_xpbuffer_capacity_eviction () =
  let d = device ~xpbuffer_lines:4 () in
  for i = 0 to 9 do
    D.store_u64 d (i * 256) 1L;
    D.persist d (i * 256) 8
  done;
  let st = D.stats d in
  check_bool "evictions happened" true (st.S.media_write_lines >= 6);
  check_bool "occupancy bounded" true (D.xpbuffer_occupancy d <= 4)

let test_lru_eviction_order () =
  let d = device ~xpbuffer_lines:2 () in
  let touch addr =
    D.store_u64 d addr 1L;
    D.persist d addr 8
  in
  touch 0;
  touch 256;
  touch 0;
  (* XPLine 0 is now most recent *)
  touch 512;
  (* evicts XPLine 256, not 0 *)
  check_int "xpline 256 evicted to media" 1 (D.media_byte d 256);
  check_int "xpline 0 still buffered" 0 (D.media_byte d 0)

let test_amplification_ratios () =
  let d = device () in
  (* 8 user bytes -> one 64 B cacheline flush -> one 256 B media write *)
  D.store_u64 d 0 5L;
  D.add_user_bytes d 8;
  D.persist d 0 8;
  D.drain d;
  let st = D.stats d in
  Alcotest.(check (float 0.01)) "CLI = 8x" 8.0 (S.cli_amplification st);
  Alcotest.(check (float 0.01)) "XBI = 32x" 32.0 (S.xbi_amplification st)

let test_stats_diff () =
  let d = device () in
  D.store_u64 d 0 1L;
  D.persist d 0 8;
  let before = D.snapshot d in
  D.store_u64 d 256 1L;
  D.persist d 256 8;
  let delta = S.diff ~after:(D.snapshot d) ~before in
  check_int "one clwb in delta" 1 delta.S.clwb_count;
  check_int "one fence in delta" 1 delta.S.sfence_count

(* --- reads ------------------------------------------------------------ *)

let test_read_accounting () =
  let d = device () in
  D.store_u64 d 0 1L;
  D.persist d 0 8;
  D.drain d;
  (* force a distinct region out of all caches: read a fresh area *)
  let before = (D.snapshot d).S.media_read_lines in
  ignore (D.load_u64 d (512 * 256));
  let mid = (D.snapshot d).S.media_read_lines in
  check_int "cold read costs one media read" 1 (mid - before);
  ignore (D.load_u64 d ((512 * 256) + 8));
  let after = (D.snapshot d).S.media_read_lines in
  check_int "same XPLine read is cached" 0 (after - mid)

let test_dirty_read_free () =
  let d = device () in
  D.store_u64 d (700 * 256) 3L;
  let before = (D.snapshot d).S.media_read_lines in
  ignore (D.load_u64 d (700 * 256));
  check_int "dirty line read hits CPU cache" before
    (D.snapshot d).S.media_read_lines

(* --- CPU cache pressure ----------------------------------------------- *)

let test_cpu_eviction_spills () =
  let d = device ~cpu_cache_lines:8 () in
  for i = 0 to 63 do
    D.store_u64 d (i * 64) (Int64.of_int i)
  done;
  let st = D.stats d in
  check_bool "capacity evictions" true (st.S.cpu_evictions >= 50);
  check_bool "dirty bounded" true (D.dirty_lines d <= 9)

(* --- crash semantics --------------------------------------------------- *)

let test_crash_drops_unflushed () =
  let d = device ~persist_prob:0.0 () in
  D.store_u64 d 0 9L;
  D.crash d;
  check_i64 "dropped" 0L (D.load_u64 d 0)

let test_crash_keeps_flushed () =
  let d = device ~persist_prob:0.0 () in
  D.store_u64 d 0 9L;
  D.persist d 0 8;
  D.crash d;
  check_i64 "persisted" 9L (D.load_u64 d 0)

let test_crash_unfenced_adversarial () =
  (* With persist_prob 1.0 even unflushed stores survive. *)
  let d = device ~persist_prob:1.0 () in
  D.store_u64 d 0 9L;
  D.crash d;
  check_i64 "kept at prob=1" 9L (D.load_u64 d 0)

let test_crash_eadr_keeps_everything () =
  let d = device ~eadr:true ~persist_prob:0.0 () in
  D.store_u64 d 0 9L;
  D.store_u64 d 4096 11L;
  D.crash d;
  check_i64 "eadr keeps a" 9L (D.load_u64 d 0);
  check_i64 "eadr keeps b" 11L (D.load_u64 d 4096)

let test_crash_deterministic_with_seed () =
  let run () =
    let d = device ~persist_prob:0.5 ~crash_seed:7 () in
    for i = 0 to 19 do
      D.store_u64 d (i * 256) (Int64.of_int (i + 1))
    done;
    D.crash d;
    List.init 20 (fun i -> D.load_u64 d (i * 256))
  in
  Alcotest.(check (list int64)) "same survivors" (run ()) (run ())

let test_work_equals_media_after_crash () =
  let d = device ~persist_prob:0.5 () in
  for i = 0 to 49 do
    D.store_u64 d (i * 64) (Int64.of_int i);
    if i mod 3 = 0 then D.persist d (i * 64) 8
  done;
  D.crash d;
  let ok = ref true in
  for a = 0 to 4095 do
    if D.media_byte d a <> D.load_u8 d a then ok := false
  done;
  check_bool "volatile view = media image" true !ok

let test_load_of_uncached_subline_charged () =
  (* Subline 0 of an XPLine is dirty in the CPU cache; a load of subline 2
     cannot be served from it and must cost a media read.  Regression:
     [account_load] used to treat the whole XPLine as CPU-cached when any
     of its sublines was dirty. *)
  let d = device () in
  let xp = 900 * 256 in
  D.store_u64 d xp 5L;
  let before = (D.snapshot d).S.media_read_lines in
  ignore (D.load_u64 d (xp + 128));
  check_int "uncached subline costs a media read" (before + 1)
    (D.snapshot d).S.media_read_lines;
  (* the dirty subline itself is still free *)
  let mid = (D.snapshot d).S.media_read_lines in
  D.store_u64 d ((901 * 256) + 64) 6L;
  ignore (D.load_u64 d ((901 * 256) + 64));
  check_int "dirty subline still free" mid (D.snapshot d).S.media_read_lines

let test_load_spanning_dirty_and_clean () =
  (* A load covering both a dirty and a clean subline needs the media for
     the clean part. *)
  let d = device () in
  let xp = 902 * 256 in
  D.store_u64 d xp 7L;
  (* covers sublines 0 (dirty) and 1 (clean) *)
  let before = (D.snapshot d).S.media_read_lines in
  ignore (D.load d xp 128);
  check_int "partially cached load charged" (before + 1)
    (D.snapshot d).S.media_read_lines

(* --- crash clears the failure plan ------------------------------------- *)

let test_crash_disarms_failure_plan () =
  (* Regression: a failure planned before the crash used to survive it and
     fire at an unrelated later fence (e.g. inside recovery). *)
  let d = device () in
  D.plan_failure d ~after_fences:3;
  D.store_u64 d 0 1L;
  D.persist d 0 8;
  (* one fence consumed; two left on the plan *)
  D.crash d;
  (* post-crash "recovery" work: no stale plan may fire *)
  (match
     for i = 0 to 9 do
       D.store_u64 d (i * 64) 2L;
       D.persist d (i * 64) 8
     done
   with
  | () -> ()
  | exception D.Power_failure ->
    Alcotest.fail "stale failure plan fired after crash")

(* --- drain flushes in address order ------------------------------------ *)

let test_drain_is_address_ordered () =
  (* Two dirty sublines per XPLine, never flushed, XPBuffer of 2 slots.
     Address-ordered insertion keeps each pair adjacent, so the second
     subline always coalesces: exactly one hit per XPLine.  Regression:
     [drain] used to insert in Hashtbl order, splitting pairs across
     capacity evictions (hash-order dependent, unreproducible across
     OCaml versions). *)
  let d = device ~xpbuffer_lines:2 () in
  let n = 50 in
  for i = 0 to n - 1 do
    D.store_u64 d (i * 256) (Int64.of_int i);
    D.store_u64 d ((i * 256) + 64) (Int64.of_int i)
  done;
  D.drain d;
  let st = D.stats d in
  check_int "every second subline coalesces" n st.S.xpbuffer_hits;
  check_int "one slot claim per xpline" n st.S.xpbuffer_misses

(* --- determinism -------------------------------------------------------- *)

(* Same workload + same crash seed => byte-identical media image and
   identical counters.  Guards the ordered drain and the checkpoint /
   restore machinery against hidden dependence on hash iteration order. *)
let mixed_device_workload d =
  let rng = Random.State.make [| 99 |] in
  for i = 0 to 999 do
    let addr = Random.State.int rng (65536 - 8) in
    D.store_u64 d addr (Int64.of_int i);
    if i mod 7 = 0 then D.persist d addr 8;
    if i mod 13 = 0 then ignore (D.load_u64 d addr)
  done;
  D.crash d;
  for i = 0 to 499 do
    let addr = Random.State.int rng (65536 - 8) in
    D.store_u64 d addr (Int64.of_int i)
  done;
  D.drain d

let test_deterministic_replay () =
  let run () =
    (* small CPU cache: capacity evictions consult the jittered RNG *)
    let d = device ~size:65536 ~cpu_cache_lines:64 ~crash_seed:11 () in
    mixed_device_workload d;
    let img = Bytes.init 65536 (fun i -> Char.chr (D.media_byte d i)) in
    (Digest.bytes img, D.snapshot d)
  in
  let img1, st1 = run () in
  let img2, st2 = run () in
  check_bool "media images byte-identical" true (String.equal img1 img2);
  check_bool "stats identical" true (S.equal st1 st2)

(* --- golden determinism -------------------------------------------------- *)

(* A seeded mixed workload covering every primitive (stores of all widths,
   fills, loads, clwb/sfence, planned power failure, crash, recovery,
   drain) on a deliberately tiny device so every cache layer overflows.
   The resulting counters and media image are asserted against a
   checked-in snapshot: the device's *modeled* numbers are a public
   contract, and any hot-path rewrite that shifts a victim choice, an RNG
   draw or an accounting decision must fail this test loudly.  If a
   change is *supposed* to alter the model, update the snapshot in the
   same commit and say why. *)
let golden_size = 1 lsl 18

let golden_config () =
  {
    (Pmem.Config.default ~size:golden_size ()) with
    Pmem.Config.xpbuffer_lines = 8;
    cpu_cache_lines = 64;
    read_cache_lines = 16;
    persist_prob = 0.5;
    crash_seed = 20240406;
  }

let golden_workload d =
  let rng = Random.State.make [| 0x601d; 2024 |] in
  D.set_classifier d (Some (fun xp -> (xp lsr 8) land 3));
  let addr () = Random.State.int rng (golden_size - 64) in
  (* phase 1: mixed stores, widths 1..64, periodic flush/fence/load *)
  for i = 0 to 2999 do
    let a = addr () in
    (match i mod 5 with
    | 0 -> D.store_u64 d a (Int64.of_int i)
    | 1 -> D.store_u8 d a (i land 0xff)
    | 2 -> D.store_string d a "golden!"
    | 3 -> D.store d a (Bytes.make 48 (Char.chr (i land 0xff)))
    | _ -> D.fill d a 64 (Char.chr (i land 0xff)));
    D.add_user_bytes d 8;
    if i mod 3 = 0 then D.flush_range d a 16;
    if i mod 7 = 0 then D.sfence d;
    if i mod 2 = 0 then ignore (D.load d (addr ()) 32);
    if i mod 13 = 0 then ignore (D.load_u64 d (addr ()));
    if i mod 17 = 0 then ignore (D.load_u8 d (addr ()))
  done;
  (* phase 2: power failure planned into the middle of a persist protocol *)
  D.plan_failure d ~after_fences:3;
  (match
     for i = 0 to 99 do
       let a = addr () in
       D.store_u64 d a (Int64.of_int i);
       D.persist d a 8
     done
   with
  | () -> Alcotest.fail "planned failure did not fire"
  | exception D.Power_failure -> D.crash d);
  (* phase 3: recovery-style scan then more traffic, clean shutdown *)
  for i = 0 to 499 do
    ignore (D.load d (i * 337 mod (golden_size - 64)) 64);
    if i mod 4 = 0 then begin
      let a = addr () in
      D.store_u64 d a (Int64.of_int i);
      D.persist d a 8
    end
  done;
  D.drain d

(* Captured from the seed device (PR 1 state) — the reference model. *)
let golden_expected : (string * int) list =
  [
    ("user_bytes", 24000);
    ("store_bytes", 77824);
    ("clwb_count", 1366);
    ("sfence_count", 557);
    ("xpbuffer_write_bytes", 269440);
    ("xpbuffer_hits", 200);
    ("xpbuffer_misses", 4010);
    ("media_write_bytes", 1026560);
    ("media_write_lines", 4010);
    ("media_read_bytes", 1704704);
    ("media_read_lines", 6659);
    ("cpu_evictions", 2917);
    ("crashes", 1);
    ("media_write_bytes_class0", 256768);
    ("media_write_bytes_class1", 260352);
    ("media_write_bytes_class2", 261120);
    ("media_write_bytes_class3", 248320);
  ]

let golden_media_digest = "ae990cf572943d70867e35c0a1945a8d"

let test_golden_stats () =
  let d = D.create ~config:(golden_config ()) () in
  golden_workload d;
  let actual = S.to_assoc (D.snapshot d) in
  let media =
    Digest.to_hex
      (Digest.bytes
         (Bytes.init golden_size (fun i -> Char.chr (D.media_byte d i))))
  in
  if
    List.exists2
      (fun (_, a) (_, b) -> a <> b)
      actual golden_expected
    || media <> golden_media_digest
  then begin
    Printf.printf "golden actuals:\n";
    List.iter (fun (k, v) -> Printf.printf "    (%S, %d);\n" k v) actual;
    Printf.printf "  media digest: %S\n%!" media
  end;
  List.iter2
    (fun (k, a) (_, e) -> check_int ("golden " ^ k) e a)
    actual golden_expected;
  Alcotest.(check string) "golden media digest" golden_media_digest media

(* --- checkpoint / restore ---------------------------------------------- *)

let test_checkpoint_restore_replays_identically () =
  let d = device ~size:65536 ~cpu_cache_lines:64 ~crash_seed:23 () in
  (* some pre-checkpoint state in every layer *)
  D.store_u64 d 0 1L;
  D.persist d 0 8;
  D.store_u64 d 300 2L;
  D.flush_range d 300 8;
  (* pending, unfenced *)
  D.store_u64 d 700 3L;
  (* dirty *)
  let ck = D.checkpoint d in
  let run () =
    mixed_device_workload d;
    let img = Bytes.init 65536 (fun i -> Char.chr (D.media_byte d i)) in
    (Digest.bytes img, D.snapshot d)
  in
  let img1, st1 = run () in
  D.restore d ck;
  let img2, st2 = run () in
  check_bool "replay from checkpoint is identical" true
    (String.equal img1 img2);
  check_bool "stats replay identical" true (S.equal st1 st2);
  (* a checkpoint can be restored any number of times *)
  D.restore d ck;
  let img3, st3 = run () in
  check_bool "third replay identical" true (String.equal img1 img3);
  check_bool "third stats identical" true (S.equal st1 st3)

let test_restore_rewinds_all_layers () =
  let d = device ~size:65536 () in
  D.store_u64 d 0 1L;
  let ck = D.checkpoint d in
  D.store_u64 d 64 2L;
  D.persist d 0 128;
  D.drain d;
  check_int "media written" 1 (D.media_byte d 0);
  D.restore d ck;
  check_int "media rewound" 0 (D.media_byte d 0);
  check_i64 "work rewound" 1L (D.load_u64 d 0);
  check_i64 "later store gone" 0L (D.load_u64 d 64);
  check_int "dirty set rewound" 1 (D.dirty_lines d);
  check_int "xpbuffer rewound" 0 (D.xpbuffer_occupancy d)

(* The classifier and the tracer are device-lifetime configuration, not
   device state: both are documented to survive restore unchanged.  This
   is load-bearing for Crashmc, which installs them once and rewinds the
   device hundreds of times. *)
let test_classifier_and_tracer_survive_restore () =
  let d = device ~size:65536 () in
  let classified = ref 0 in
  let traced = ref 0 in
  D.set_classifier d (Some (fun _xpline -> incr classified; 1));
  D.set_tracer d (Some (fun _ev -> incr traced));
  let ck = D.checkpoint d in
  D.store_u64 d 0 1L;
  D.persist d 0 8;
  D.drain d;
  let c1 = !classified and t1 = !traced in
  check_bool "classifier consulted before restore" true (c1 > 0);
  check_bool "tracer fired before restore" true (t1 > 0);
  D.restore d ck;
  check_bool "tracer still installed" true (D.tracing d);
  D.store_u64 d 0 2L;
  D.persist d 0 8;
  D.drain d;
  check_bool "classifier survives restore" true (!classified > c1);
  check_bool "tracer survives restore" true (!traced > t1);
  (* explicit removal still works after a restore *)
  D.set_tracer d None;
  let t2 = !traced in
  D.store_u64 d 0 3L;
  check_int "removed tracer is silent" t2 !traced

let test_restore_rejects_size_mismatch () =
  let a = device ~size:65536 () in
  let b = device ~size:131072 () in
  let ck = D.checkpoint a in
  match D.restore b ck with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "size mismatch accepted"

(* --- host-file image persistence ---------------------------------------- *)

let test_image_roundtrip () =
  let d = device ~size:65536 () in
  D.store_u64 d 1000 77L;
  D.persist d 1000 8;
  D.drain d;
  let path = Filename.temp_file "pmem" ".img" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      D.save_image d path;
      let d2 = D.load_image path in
      check_int "size restored" 65536 (D.size d2);
      check_i64 "content restored" 77L (D.load_u64 d2 1000);
      check_int "media image too" 77 (D.media_byte d2 1000))

let test_image_excludes_undrained () =
  let d = device ~size:65536 () in
  D.store_u64 d 0 1L;
  (* never flushed: the media image must not contain it *)
  let path = Filename.temp_file "pmem" ".img" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      D.save_image d path;
      let d2 = D.load_image path in
      check_i64 "unflushed data not saved" 0L (D.load_u64 d2 0))

let test_image_rejects_garbage () =
  let path = Filename.temp_file "pmem" ".img" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not an image";
      close_out oc;
      match D.load_image path with
      | exception Invalid_argument _ -> ()
      | exception End_of_file -> ()
      | _ -> Alcotest.fail "garbage accepted")

let test_image_rejects_truncation () =
  (* Regression: a truncated image used to surface as a bare End_of_file
     from [really_input]; it must be a descriptive Invalid_argument. *)
  let d = device ~size:65536 () in
  D.store_u64 d 1000 77L;
  D.persist d 1000 8;
  D.drain d;
  let path = Filename.temp_file "pmem" ".img" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      D.save_image d path;
      let full = In_channel.with_open_bin path In_channel.input_all in
      (* keep the 16 B header (magic + 64-bit size) and half the media *)
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (String.sub full 0 (16 + (String.length full - 16) / 2)));
      let mentions_truncation msg =
        let re = "truncated" in
        let n = String.length msg and m = String.length re in
        let rec scan i = i + m <= n && (String.sub msg i m = re || scan (i + 1)) in
        scan 0
      in
      (match D.load_image path with
      | exception Invalid_argument msg ->
        check_bool "message mentions truncation" true (mentions_truncation msg)
      | exception End_of_file ->
        Alcotest.fail "truncated image raised bare End_of_file"
      | _ -> Alcotest.fail "truncated image accepted");
      (* header-only truncation *)
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (String.sub full 0 10));
      match D.load_image path with
      | exception Invalid_argument _ -> ()
      | exception End_of_file ->
        Alcotest.fail "truncated header raised bare End_of_file"
      | _ -> Alcotest.fail "truncated header accepted")

(* The size field is a full 64-bit big-endian word.  The v1 format wrote
   it with [output_binary_int] (32-bit), which silently truncated the
   size of any image >= 2 GiB; pin the on-disk encoding so that cannot
   regress. *)
let test_image_size_header_is_64bit () =
  let d = device ~size:65536 () in
  let path = Filename.temp_file "pmem" ".img" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      D.save_image d path;
      let full = In_channel.with_open_bin path In_channel.input_all in
      check_string "v2 magic" "PMEMIMG2" (String.sub full 0 8);
      let size64 = Bytes.get_int64_be (Bytes.of_string full) 8 in
      check_i64 "8-byte big-endian size" 65536L size64;
      check_int "payload = size" 65536 (String.length full - 16))

(* Legacy v1 images ("PMEMIMG1", 4-byte size) must still load. *)
let test_image_v1_compat () =
  let path = Filename.temp_file "pmem" ".img" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let size = 65536 in
      let media = Bytes.make size '\000' in
      Bytes.set media 1000 (Char.chr 77);
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "PMEMIMG1";
          output_binary_int oc size;
          Out_channel.output_bytes oc media);
      let d = D.load_image path in
      check_int "v1 size restored" size (D.size d);
      check_int "v1 content restored" 77 (D.load_u8 d 1000))

(* A v2 header whose size field is absurd (negative, or beyond what an
   in-memory image could ever be) must be rejected up front, not turned
   into an allocation attempt. *)
let test_image_rejects_unreasonable_size () =
  let path = Filename.temp_file "pmem" ".img" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let craft size64 =
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc "PMEMIMG2";
            let hdr = Bytes.create 8 in
            Bytes.set_int64_be hdr 0 size64;
            Out_channel.output_bytes oc hdr;
            Out_channel.output_string oc "some media bytes")
      in
      List.iter
        (fun size64 ->
          craft size64;
          match D.load_image path with
          | exception Invalid_argument _ -> ()
          | _ ->
            Alcotest.failf "size %Ld accepted" size64)
        [ -1L; Int64.min_int; 0x4000_0000_0000_0000L; Int64.max_int ])

(* --- properties --------------------------------------------------------- *)

(* After drain, the media image equals the logical image: nothing written
   is lost by the buffering hierarchy. *)
let prop_drain_preserves_content =
  QCheck.Test.make ~count:50 ~name:"drain preserves all stores"
    QCheck.(list (pair (int_bound 4095) (int_bound 255)))
    (fun writes ->
      let d = device ~size:8192 ~xpbuffer_lines:4 ~cpu_cache_lines:8 () in
      List.iter (fun (addr, v) -> D.store_u8 d addr v) writes;
      D.drain d;
      List.for_all
        (fun (addr, _) -> D.media_byte d addr = D.load_u8 d addr)
        writes)

(* Persist-then-crash always retains the persisted value, whatever the
   adversarial coin does to everything else. *)
let prop_persisted_survives_crash =
  QCheck.Test.make ~count:50 ~name:"flush+fence survives any crash"
    QCheck.(pair small_int (list (pair (int_bound 63) (int_bound 255))))
    (fun (seed, writes) ->
      let d =
        device ~size:65536 ~persist_prob:0.5 ~crash_seed:seed ()
      in
      (* interleave persisted and unpersisted writes into distinct lines *)
      List.iteri
        (fun i (slot, v) ->
          let addr = slot * 1024 in
          D.store_u8 d addr v;
          if i mod 2 = 0 then D.persist d addr 1)
        writes;
      (* last persisted value per address must survive *)
      let expected = Hashtbl.create 16 in
      List.iteri
        (fun i (slot, v) ->
          if i mod 2 = 0 then Hashtbl.replace expected (slot * 1024) v)
        writes;
      (* a later unpersisted store to the same line may overwrite the
         persisted one non-deterministically; restrict the check to
         addresses whose last write was the persisted one *)
      let last = Hashtbl.create 16 in
      List.iteri
        (fun i (slot, v) -> Hashtbl.replace last (slot * 1024) (i, v))
        writes;
      D.crash d;
      Hashtbl.fold
        (fun addr v ok ->
          ok
          &&
          match Hashtbl.find_opt last addr with
          | Some (i, v') when i mod 2 = 0 && v = v' -> D.load_u8 d addr = v
          | _ -> true)
        expected true)

(* --- Stats.merge -------------------------------------------------------- *)

(* Random counter record: every field set independently, including the
   per-class attribution array. *)
let arb_stats =
  let gen =
    QCheck.Gen.(
      map
        (fun ints ->
          match ints with
          | a :: b :: c :: d :: e :: f :: g :: h :: i :: j :: k :: l :: m :: rest
            ->
            let s = S.create () in
            s.S.user_bytes <- a;
            s.S.store_bytes <- b;
            s.S.clwb_count <- c;
            s.S.sfence_count <- d;
            s.S.xpbuffer_write_bytes <- e;
            s.S.xpbuffer_hits <- f;
            s.S.xpbuffer_misses <- g;
            s.S.media_write_bytes <- h;
            s.S.media_write_lines <- i;
            s.S.media_read_bytes <- j;
            s.S.media_read_lines <- k;
            s.S.cpu_evictions <- l;
            s.S.crashes <- m;
            List.iteri
              (fun idx v ->
                if idx < S.classes then s.S.media_write_bytes_by_class.(idx) <- v)
              rest;
            s
          | _ -> assert false)
        (list_repeat (13 + S.classes) (int_bound 1_000_000)))
  in
  QCheck.make ~print:(fun s -> Format.asprintf "%a" S.pp s) gen

let prop_merge_commutative =
  QCheck.Test.make ~count:100 ~name:"merge commutative"
    (QCheck.pair arb_stats arb_stats)
    (fun (a, b) -> S.equal (S.merge a b) (S.merge b a))

let prop_merge_associative =
  QCheck.Test.make ~count:100 ~name:"merge associative"
    (QCheck.triple arb_stats arb_stats arb_stats)
    (fun (a, b, c) ->
      S.equal (S.merge (S.merge a b) c) (S.merge a (S.merge b c)))

let prop_merge_neutral =
  QCheck.Test.make ~count:100 ~name:"merge neutral element" arb_stats
    (fun a ->
      S.equal (S.merge a (S.create ())) a
      && S.equal (S.merge_all [ a ]) a)

(* Phase accounting on one device is additive: merging the per-phase
   deltas of a split workload equals the delta of running the
   concatenation — i.e. merge agrees with the device's own accounting. *)
let prop_merge_agrees_with_phases =
  QCheck.Test.make ~count:30 ~name:"merge of phase deltas = total delta"
    QCheck.(
      pair (list (pair (int_bound 8191) (int_bound 255))) (int_bound 100))
    (fun (writes, split_pct) ->
      let d = device ~size:16384 ~xpbuffer_lines:4 ~cpu_cache_lines:8 () in
      let run ops =
        List.iter
          (fun (addr, v) ->
            D.store_u8 d addr v;
            D.persist d addr 1)
          ops
      in
      let cut = List.length writes * split_pct / 100 in
      let phase1 = List.filteri (fun i _ -> i < cut) writes in
      let phase2 = List.filteri (fun i _ -> i >= cut) writes in
      let s0 = D.snapshot d in
      run phase1;
      let s1 = D.snapshot d in
      run phase2;
      let s2 = D.snapshot d in
      S.equal
        (S.merge (S.diff ~after:s1 ~before:s0) (S.diff ~after:s2 ~before:s1))
        (S.diff ~after:s2 ~before:s0))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "pmem"
    [
      ("geometry", [ Alcotest.test_case "address math" `Quick test_geometry ]);
      ( "store-load",
        [
          Alcotest.test_case "roundtrip" `Quick test_store_load;
          Alcotest.test_case "unflushed not on media" `Quick
            test_unflushed_not_on_media;
          Alcotest.test_case "persist reaches xpbuffer" `Quick
            test_persist_reaches_xpbuffer_not_media;
          Alcotest.test_case "clwb needs fence" `Quick
            test_clwb_without_fence_is_pending;
        ] );
      ( "xpbuffer",
        [
          Alcotest.test_case "coalesce same xpline" `Quick
            test_coalescing_same_xpline;
          Alcotest.test_case "random xplines amplify" `Quick
            test_random_xplines_amplify;
          Alcotest.test_case "capacity eviction" `Quick
            test_xpbuffer_capacity_eviction;
          Alcotest.test_case "LRU order" `Quick test_lru_eviction_order;
          Alcotest.test_case "amplification ratios" `Quick
            test_amplification_ratios;
          Alcotest.test_case "stats diff" `Quick test_stats_diff;
        ] );
      ( "reads",
        [
          Alcotest.test_case "read accounting" `Quick test_read_accounting;
          Alcotest.test_case "dirty read free" `Quick test_dirty_read_free;
          Alcotest.test_case "uncached subline charged" `Quick
            test_load_of_uncached_subline_charged;
          Alcotest.test_case "dirty+clean span charged" `Quick
            test_load_spanning_dirty_and_clean;
        ] );
      ( "cpu-cache",
        [ Alcotest.test_case "capacity spills" `Quick test_cpu_eviction_spills ]
      );
      ( "crash",
        [
          Alcotest.test_case "drops unflushed" `Quick test_crash_drops_unflushed;
          Alcotest.test_case "keeps flushed" `Quick test_crash_keeps_flushed;
          Alcotest.test_case "adversarial unfenced" `Quick
            test_crash_unfenced_adversarial;
          Alcotest.test_case "eADR keeps everything" `Quick
            test_crash_eadr_keeps_everything;
          Alcotest.test_case "deterministic with seed" `Quick
            test_crash_deterministic_with_seed;
          Alcotest.test_case "work = media after crash" `Quick
            test_work_equals_media_after_crash;
          Alcotest.test_case "crash disarms failure plan" `Quick
            test_crash_disarms_failure_plan;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "iter_lines matches list versions" `Quick
            test_iter_lines_matches_list;
          Alcotest.test_case "ring with jitter 1 is exact FIFO" `Quick
            test_ring_jitter1_is_fifo;
          Alcotest.test_case "drain is address-ordered" `Quick
            test_drain_is_address_ordered;
          Alcotest.test_case "seeded replay is identical" `Quick
            test_deterministic_replay;
          Alcotest.test_case "golden stats snapshot" `Quick test_golden_stats;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "replay from checkpoint" `Quick
            test_checkpoint_restore_replays_identically;
          Alcotest.test_case "restore rewinds all layers" `Quick
            test_restore_rewinds_all_layers;
          Alcotest.test_case "classifier and tracer survive restore" `Quick
            test_classifier_and_tracer_survive_restore;
          Alcotest.test_case "restore rejects size mismatch" `Quick
            test_restore_rejects_size_mismatch;
        ] );
      ( "image",
        [
          Alcotest.test_case "roundtrip" `Quick test_image_roundtrip;
          Alcotest.test_case "excludes undrained data" `Quick
            test_image_excludes_undrained;
          Alcotest.test_case "rejects garbage" `Quick test_image_rejects_garbage;
          Alcotest.test_case "rejects truncation" `Quick
            test_image_rejects_truncation;
          Alcotest.test_case "64-bit size header" `Quick
            test_image_size_header_is_64bit;
          Alcotest.test_case "loads legacy v1 images" `Quick
            test_image_v1_compat;
          Alcotest.test_case "rejects unreasonable sizes" `Quick
            test_image_rejects_unreasonable_size;
        ] );
      ( "properties",
        [ qt prop_drain_preserves_content; qt prop_persisted_survives_crash ]
      );
      ( "stats-merge",
        [
          qt prop_merge_commutative;
          qt prop_merge_associative;
          qt prop_merge_neutral;
          qt prop_merge_agrees_with_phases;
        ] );
    ]
