(* Concurrent-writer correctness: optimistic lock coupling across 2-4
   writer domains racing each other (and optimistic readers) on one
   tree, validated against a volatile oracle; a qcheck law pinning the
   partitioned-writer accounting to the single-writer baseline; the
   Write_pool plumbing over a shard; and a crash-at-every-fence sweep
   with two writer lanes live, auditing acked durability across both
   WAL lanes after recovery.

   Value encoding as in test_readers: key [k] at generation [g] carries
   value [g * key_space + k + 1], so any value observed for [k] must
   decode back to [k] regardless of which generation won. *)

module D = Pmem.Device
module S = Pmem.Stats
module T = Ccl_btree.Tree
module Stats = Ccl_btree.Tree_stats
module Config = Ccl_btree.Config
module I = Baselines.Index_intf
module Y = Workload.Ycsb

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let device ?(size = 8 * 1024 * 1024) ?(persist_prob = 0.5) ?(seed = 17) () =
  D.create
    ~config:
      { (Pmem.Config.default ~size ()) with persist_prob; crash_seed = seed }
    ()

let key_space = 512
let encode ~g k = Int64.of_int ((g * key_space) + k + 1)
let decode_key v = (Int64.to_int v - 1) mod key_space

(* --- single-domain writer handle sanity ---------------------------------- *)

let test_writer_sequential_agreement () =
  let dev_w = device () and dev_p = device () in
  let cfg = { Config.default with Config.threads = 1 } in
  let tw = T.create ~cfg dev_w and tp = T.create dev_p in
  let w = T.writer tw in
  for k = 0 to key_space - 1 do
    T.writer_upsert w (Int64.of_int k) (encode ~g:0 k);
    T.upsert tp (Int64.of_int k) (encode ~g:0 k)
  done;
  for k = 0 to key_space - 1 do
    if k mod 5 = 0 then begin
      T.writer_delete w (Int64.of_int k);
      T.delete tp (Int64.of_int k)
    end
  done;
  for k = 0 to key_space - 1 do
    Alcotest.(check (option int64))
      (Printf.sprintf "key %d" k)
      (T.search tp (Int64.of_int k))
      (T.search tw (Int64.of_int k))
  done;
  T.check_invariants tw;
  check_int "no retries unopposed" 0 (T.writer_retries w);
  check_bool "writer forced splits" true ((T.writer_stats w).Stats.splits > 0)

(* --- randomized multi-writer storm vs volatile oracle -------------------- *)

(* Each of the N writer domains owns the keys congruent to its lane mod
   N, so the final image is deterministic (per-key order is per-lane
   program order) even though the lanes race over shared leaves, splits
   and merges.  Writers churn their keyspace keys through rising
   generations, insert far keys to drive splits, and delete them again
   to drive merges; concurrent readers must never observe a value that
   decodes to the wrong key.  The quiesced tree must equal the oracle. *)
let storm_ops ~n_writers ~gens lane =
  let ops = ref [] in
  let rng = Random.State.make [| 1000 + lane |] in
  for g = 1 to gens do
    for k = 0 to key_space - 1 do
      if k mod n_writers = lane then
        ops := (Int64.of_int k, encode ~g k) :: !ops
    done;
    (* far keys, lane-owned: inserts force splits, deletes force
       underflow and the occasional merge *)
    for _ = 1 to 48 do
      let k = key_space + (n_writers * Random.State.int rng key_space) + lane in
      ops := (Int64.of_int k, encode ~g (k mod key_space)) :: !ops
    done;
    for _ = 1 to 40 do
      let k = key_space + (n_writers * Random.State.int rng key_space) + lane in
      ops := (Int64.of_int k, 0L) :: !ops
    done
  done;
  List.rev !ops

let run_storm n_writers =
  let dev = device () in
  let cfg = { Config.default with Config.threads = n_writers } in
  let t = T.create ~cfg dev in
  for k = 0 to key_space - 1 do
    T.upsert t (Int64.of_int k) (encode ~g:0 k)
  done;
  let writing = Atomic.make n_writers in
  let writer_main lane =
    let w = T.writer ~lane t in
    List.iter
      (fun (k, v) ->
        if Int64.equal v 0L then T.writer_delete w k else T.writer_upsert w k v)
      (storm_ops ~n_writers ~gens:3 lane);
    Atomic.decr writing;
    ((T.writer_stats w).Stats.splits, T.writer_retries w)
  in
  let reader_main seed =
    let r = T.reader t in
    let rng = Random.State.make [| seed |] in
    let bad = ref 0 in
    while Atomic.get writing > 0 do
      let k = Random.State.int rng key_space in
      (match T.reader_search r (Int64.of_int k) with
      | Some v -> if decode_key v <> k then incr bad
      | None ->
        (* keyspace keys are preloaded and never deleted *)
        incr bad);
      Domain.cpu_relax ()
    done;
    !bad
  in
  let readers =
    List.init 2 (fun i -> Domain.spawn (fun () -> reader_main (300 + i)))
  in
  let writers =
    List.init n_writers (fun lane ->
        Domain.spawn (fun () -> writer_main lane))
  in
  let wresults = List.map Domain.join writers in
  let bad_reads = List.map Domain.join readers in
  List.iteri
    (fun i bad ->
      check_int
        (Printf.sprintf "%d writers: reader %d zero bad reads" n_writers i)
        0 bad)
    bad_reads;
  check_bool
    (Printf.sprintf "%d writers: storm forced splits" n_writers)
    true
    (List.fold_left (fun a (s, _) -> a + s) 0 wresults > 0);
  (* quiesced: the tree equals the oracle built from every lane's ops *)
  T.check_invariants t;
  let oracle = Hashtbl.create 4096 in
  for k = 0 to key_space - 1 do
    Hashtbl.replace oracle (Int64.of_int k) (encode ~g:0 k)
  done;
  for lane = 0 to n_writers - 1 do
    List.iter
      (fun (k, v) ->
        if Int64.equal v 0L then Hashtbl.remove oracle k
        else Hashtbl.replace oracle k v)
      (storm_ops ~n_writers ~gens:3 lane)
  done;
  let live = ref 0 in
  T.iter t (fun k v ->
      incr live;
      match Hashtbl.find_opt oracle k with
      | Some v' ->
        if not (Int64.equal v v') then
          Alcotest.failf "%d writers: key %Ld has %Ld, oracle %Ld" n_writers
            k v v'
      | None -> Alcotest.failf "%d writers: key %Ld not in oracle" n_writers k);
  check_int
    (Printf.sprintf "%d writers: oracle cardinality" n_writers)
    (Hashtbl.length oracle) !live

let test_concurrent_writer_storm () =
  List.iter run_storm [ 2; 3; 4 ]

(* --- qcheck: partitioned writers vs the single-writer baseline ----------- *)

(* The same op sequence, dealt round-robin over N writer handles (still
   executed sequentially, so per-key order is preserved), must produce
   the same tree contents as the plain single-writer path, account the
   same user bytes (plain path counts on the tree's device, writers on
   their private views, merged), and the summed per-writer op counters
   must equal the baseline's phase accounting. *)
let writer_partition_law =
  QCheck.Test.make ~count:15
    ~name:"partitioned writers match single-writer accounting"
    QCheck.(
      pair
        (list_of_size Gen.(0 -- 120) (pair (int_bound 63) (int_bound 200)))
        (int_range 2 4))
    (fun (raw_ops, n) ->
      let ops =
        List.map
          (fun (k, v) ->
            ( Int64.of_int k,
              if v mod 7 = 0 then 0L else Int64.of_int (v + 1) ))
          raw_ops
      in
      let dev_a = device ~persist_prob:1.0 () in
      let ta = T.create dev_a in
      List.iter
        (fun (k, v) ->
          if Int64.equal v 0L then T.delete ta k else T.upsert ta k v)
        ops;
      let dev_b = device ~persist_prob:1.0 () in
      let cfg = { Config.default with Config.threads = n } in
      let tb = T.create ~cfg dev_b in
      let handles = Array.init n (fun lane -> T.writer ~lane tb) in
      List.iteri
        (fun i (k, v) ->
          let w = handles.(i mod n) in
          if Int64.equal v 0L then T.writer_delete w k
          else T.writer_upsert w k v)
        ops;
      let contents t =
        let acc = ref [] in
        T.iter t (fun k v -> acc := (k, v) :: !acc);
        List.rev !acc
      in
      let same_contents = contents ta = contents tb in
      let ub_a = (D.snapshot dev_a).S.user_bytes in
      let ub_b =
        Array.fold_left
          (fun acc w -> acc + (D.snapshot (T.writer_device w)).S.user_bytes)
          (D.snapshot dev_b).S.user_bytes handles
      in
      let n_del = List.length (List.filter (fun (_, v) -> Int64.equal v 0L) ops) in
      let n_ins = List.length ops - n_del in
      let sum sel =
        Array.fold_left (fun acc w -> acc + sel (T.writer_stats w)) 0 handles
      in
      let sa = T.stats ta in
      same_contents && ub_a = ub_b
      && sum (fun s -> s.Stats.inserts) = sa.Stats.inserts
      && sum (fun s -> s.Stats.deletes) = sa.Stats.deletes
      && sum (fun s -> s.Stats.inserts) = n_ins
      && sum (fun s -> s.Stats.deletes) = n_del)

(* --- write pool over a shard --------------------------------------------- *)

let mk_shard ~threads () =
  Shard.create
    ~config:{ Shard.default_config with shards = 1; batch = 16 }
    ~make:(fun _ ->
      let dev = device () in
      ( dev,
        Baselines.Ccl_index.driver_with
          { Config.default with Config.threads } dev ))
    ()

let test_write_pool_applies_stream () =
  let sh = mk_shard ~threads:2 () in
  for k = 0 to key_space - 1 do
    Shard.upsert sh (Int64.of_int k) (encode ~g:0 k)
  done;
  Shard.flush sh;
  let pool = Shard.writer_pool sh ~shard:0 ~writers:2 in
  (* mixed stream: updates, fresh inserts, deletes — plus reads the
     write pool must skip *)
  let ops =
    Array.init 2_000 (fun i ->
        match i mod 4 with
        | 0 -> Y.Insert (Int64.of_int (i mod key_space), encode ~g:1 (i mod key_space))
        | 1 -> Y.Insert (Int64.of_int (key_space + i), encode ~g:1 ((key_space + i) mod key_space))
        | 2 -> Y.Insert (Int64.of_int (key_space + i - 1), 0L)
        | _ -> Y.Read (Int64.of_int (i mod key_space)))
  in
  let n_mutations =
    Array.fold_left
      (fun acc op -> match op with Y.Insert _ -> acc + 1 | _ -> acc)
      0 ops
  in
  Shard.Write_pool.run pool ops;
  let applied = Shard.Write_pool.applied pool in
  check_int "all mutations executed" n_mutations
    (Array.fold_left ( + ) 0 applied);
  Array.iteri
    (fun i n -> check_bool (Printf.sprintf "writer %d ran" i) true (n > 0))
    applied;
  check_bool "no lane crashed" true
    (Array.for_all not (Shard.Write_pool.crashed pool));
  Shard.Write_pool.shutdown pool;
  check_bool "writer views wrote user bytes" true
    ((Shard.Write_pool.dev_stats pool).S.user_bytes = 16 * n_mutations);
  check_bool "retries latched" true (Shard.Write_pool.retries pool >= 0);
  (* pool is down: the router's own paths are safe again *)
  Array.iter
    (fun op ->
      match op with
      | Y.Insert (k, v) when not (Int64.equal v 0L) && Int64.to_int k < key_space
        ->
        Alcotest.(check (option int64))
          (Printf.sprintf "key %Ld after pool" k)
          (Some v) (Shard.search sh k)
      | _ -> ())
    ops;
  Shard.shutdown sh

let test_write_pool_rejects_writerless_driver () =
  let dev0 = device () in
  let sh =
    Shard.create
      ~config:{ Shard.default_config with shards = 1 }
      ~make:(fun _ ->
        let t = T.create dev0 in
        ( dev0,
          {
            I.name = "no-writers";
            upsert = T.upsert t;
            search = T.search t;
            delete = T.delete t;
            scan = (fun ~start n -> T.scan t ~start n);
            flush_all = (fun () -> T.flush_all t);
            dram_bytes = (fun () -> T.dram_bytes t);
            pm_bytes = (fun () -> T.pm_bytes t);
            allocator = (fun () -> T.allocator t);
            counters = (fun () -> []);
            new_reader = None;
            new_writer = None;
          } ))
      ()
  in
  Alcotest.check_raises "pool creation rejected"
    (Invalid_argument
       "Shard.writer_pool: this index driver has no concurrent write path")
    (fun () ->
      ignore (Shard.writer_pool sh ~shard:0 ~writers:2 : Shard.Write_pool.t));
  Shard.shutdown sh

(* --- crash at every fence with two writer lanes live --------------------- *)

(* For every fence index: rewind to the post-format checkpoint, recover,
   run two writer domains over disjoint key sets (lane 0 even slots,
   lane 1 odd) with the failure armed on lane 0's private view.  When
   the power fails, both lanes stop, both views spill their share of the
   XPBuffer (always-persistent under ADR), the parent device crashes
   last, and the tree recovers.  The audit: writer ops log through
   {!Wal.append} with no open group, so every op is durable (acked) the
   moment the call returns — for each key the recovered value must be
   the lane's last acked write to it, or its one in-flight op (whose log
   entry may or may not have reached its fence).  Both lanes' acked
   prefixes must survive, not just the crashing lane's. *)
let test_crash_sweep_two_writers () =
  let cfg = { Config.default with Config.nbatch = 2; Config.threads = 2 } in
  let dev = device ~size:(4 * 1024 * 1024) ~persist_prob:0.5 ~seed:29 () in
  let t0 = T.create ~cfg dev in
  ignore (t0 : T.t);
  let ck = D.checkpoint dev in
  let ks = 64 in
  let n_ops = 150 in
  let ops_for lane =
    (* disjoint keys per lane: per-key order is per-lane program order *)
    List.init n_ops (fun i ->
        let k = (((i * 5) + lane) mod ks / 2 * 2) + lane in
        let g = 1 + (i / ks) in
        if i mod 11 = 10 then (Int64.of_int k, 0L)
        else (Int64.of_int k, Int64.of_int ((g * ks) + k + 1)))
  in
  (* per-key allowed recovered values for a lane that completed [done_n]
     ops: the last completed write, or the in-flight op if it targeted
     the key (logged-but-unacked entries may survive the spill) *)
  let allowed lane done_n =
    let ops = ops_for lane in
    let tbl = Hashtbl.create 64 in
    List.iteri
      (fun i (k, v) ->
        if i < done_n then Hashtbl.replace tbl k [ v ]
        else if i = done_n then
          Hashtbl.replace tbl k
            (v
            :: (match Hashtbl.find_opt tbl k with
               | Some l -> l
               | None -> [ 0L ])))
      ops;
    tbl
  in
  let max_fences = 2_000 in
  let rec sweep fence tested =
    if fence > max_fences then Alcotest.fail "fence cap hit: sweep diverged"
    else begin
      D.restore dev ck;
      let t = T.recover ~cfg dev in
      let failed = Atomic.make false in
      let worker lane =
        Domain.spawn (fun () ->
            let w = T.writer ~lane t in
            let wdev = T.writer_device w in
            if lane = 0 then D.plan_failure wdev ~after_fences:fence;
            let done_n = ref 0 in
            (try
               List.iter
                 (fun (k, v) ->
                   if Atomic.get failed then raise Exit;
                   if Int64.equal v 0L then T.writer_delete w k
                   else T.writer_upsert w k v;
                   incr done_n)
                 (ops_for lane)
             with
            | D.Power_failure -> Atomic.set failed true
            | Exit -> ()
            | _ when Atomic.get failed ->
              (* after the power instant, in-DRAM state is officially
                 garbage; only the PM image below is audited *)
              ());
            (!done_n, wdev))
      in
      let d0 = worker 0 and d1 = worker 1 in
      let done0, wdev0 = Domain.join d0 in
      let done1, wdev1 = Domain.join d1 in
      if not (Atomic.get failed) then begin
        check_int "final run completes every op" n_ops done0;
        tested
      end
      else begin
        (* fleet power failure: every write view spills its share of the
           XPBuffer first, the parent device crashes last *)
        D.crash_spill wdev0;
        D.crash_spill wdev1;
        D.crash dev;
        let t' = T.recover ~cfg dev in
        T.check_invariants t';
        let audit lane done_n =
          let tbl = allowed lane done_n in
          Hashtbl.iter
            (fun k vs ->
              let got =
                match T.search t' k with Some v -> v | None -> 0L
              in
              if not (List.exists (Int64.equal got) vs) then
                Alcotest.failf
                  "fence %d lane %d key %Ld: recovered %Ld not in acked set \
                   [%s] (completed %d)"
                  fence lane k got
                  (String.concat " " (List.map Int64.to_string vs))
                  done_n)
            tbl
        in
        audit 0 done0;
        audit 1 done1;
        sweep (fence + 7) (tested + 1)
      end
    end
  in
  let tested = sweep 1 0 in
  check_bool "sweep exercised crash points" true (tested > 5)

let () =
  Alcotest.run "writers"
    [
      ( "writer",
        [
          Alcotest.test_case "sequential agreement" `Quick
            test_writer_sequential_agreement;
          Alcotest.test_case "concurrent writer storm" `Quick
            test_concurrent_writer_storm;
        ] );
      ("law", [ QCheck_alcotest.to_alcotest writer_partition_law ]);
      ( "write-pool",
        [
          Alcotest.test_case "applies a mixed stream" `Quick
            test_write_pool_applies_stream;
          Alcotest.test_case "rejects writerless driver" `Quick
            test_write_pool_rejects_writerless_driver;
        ] );
      ( "crash",
        [
          Alcotest.test_case "sweep with two writer lanes" `Quick
            test_crash_sweep_two_writers;
        ] );
    ]
