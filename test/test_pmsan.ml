(* Pmsan: unit tests for the shadow state machine and every violation
   kind, seeded fault-injection proving detection of an omitted clwb, and
   the full-matrix run of CCL-BTree plus all eight baselines under the
   sanitizer. *)

module D = Pmem.Device
module G = Pmem.Geometry
module I = Baselines.Index_intf
module T = Ccl_btree.Tree

let dev_mb mb = D.create ~config:(Pmem.Config.default ~size:(mb * 1024 * 1024) ()) ()

let kinds vs = List.map (fun v -> v.Pmsan.kind) vs

let count k vs = List.length (List.filter (fun v -> v.Pmsan.kind = k) vs)

let has k vs = count k vs > 0

(* --- state machine ------------------------------------------------------ *)

let test_happy_path () =
  let dev = dev_mb 1 in
  let san = Pmsan.attach dev in
  let a = 4096 in
  Alcotest.(check string) "clean" "clean" (Pmsan.line_state san a);
  D.store_u64 dev a 7L;
  Alcotest.(check string) "dirty" "dirty" (Pmsan.line_state san a);
  D.clwb dev a;
  Alcotest.(check string) "staged" "staged" (Pmsan.line_state san a);
  D.sfence dev;
  Alcotest.(check string) "persisted" "persisted" (Pmsan.line_state san a);
  Alcotest.(check (list reject)) "no violations" [] (Pmsan.violations san);
  let c = Pmsan.counters san in
  Alcotest.(check int) "1 clwb" 1 c.Pmsan.clwb;
  Alcotest.(check int) "1 sfence" 1 c.Pmsan.sfence;
  Pmsan.detach san

let test_eadr_rejected () =
  let dev =
    D.create
      ~config:{ (Pmem.Config.default ~size:(1 lsl 20) ()) with eadr = true }
      ()
  in
  Alcotest.check_raises "eadr rejected"
    (Invalid_argument
       "Pmsan.attach: eADR device has no flush discipline to sanitize")
    (fun () -> ignore (Pmsan.attach dev))

(* --- performance violations -------------------------------------------- *)

let test_redundant_clwb () =
  let dev = dev_mb 1 in
  let san = Pmsan.attach dev in
  D.clwb dev 4096 (* clean line *);
  Alcotest.(check bool) "redundant flagged" true
    (has Pmsan.Redundant_clwb (Pmsan.violations san));
  D.store_u64 dev 8192 1L;
  D.persist dev 8192 8;
  D.clwb dev 8192 (* persisted line *);
  Alcotest.(check int) "persisted re-clwb flagged" 2
    (count Pmsan.Redundant_clwb (Pmsan.violations san));
  Alcotest.(check int) "counter agrees" 2
    (Pmsan.counters san).Pmsan.clwb_redundant;
  Pmsan.detach san

let test_duplicate_clwb () =
  let dev = dev_mb 1 in
  let san = Pmsan.attach dev in
  D.store_u64 dev 4096 1L;
  D.clwb dev 4096;
  D.clwb dev 4096 (* same content, already staged *);
  D.sfence dev;
  let vs = Pmsan.violations san in
  Alcotest.(check bool) "duplicate flagged" true (has Pmsan.Duplicate_clwb vs);
  Alcotest.(check bool) "no stale-fence" false (has Pmsan.Stale_fence vs);
  Pmsan.detach san

let test_empty_sfence () =
  let dev = dev_mb 1 in
  let san = Pmsan.attach dev in
  D.sfence dev;
  Alcotest.(check bool) "empty fence flagged" true
    (has Pmsan.Empty_sfence (Pmsan.violations san));
  (* a fence that orders something is not flagged *)
  D.store_u64 dev 4096 1L;
  D.clwb dev 4096;
  D.sfence dev;
  Alcotest.(check int) "only the empty one" 1
    (Pmsan.counters san).Pmsan.sfence_empty;
  Pmsan.detach san

(* --- correctness violations -------------------------------------------- *)

let test_stale_fence () =
  let dev = dev_mb 1 in
  let san = Pmsan.attach dev in
  D.store_u64 dev 4096 1L;
  D.clwb dev 4096;
  D.store_u64 dev 4096 2L (* re-store between clwb and sfence *);
  D.sfence dev;
  Alcotest.(check bool) "stale fence flagged" true
    (has Pmsan.Stale_fence (Pmsan.violations san));
  (* re-flushing before the fence is the correct pattern *)
  ignore (Pmsan.drain_violations san);
  D.store_u64 dev 8192 1L;
  D.clwb dev 8192;
  D.store_u64 dev 8192 2L;
  D.clwb dev 8192;
  D.sfence dev;
  Alcotest.(check (list reject)) "re-flush is clean" []
    (Pmsan.violations san);
  Alcotest.(check string) "persisted" "persisted" (Pmsan.line_state san 8192);
  Pmsan.detach san

let test_acked_unpersisted () =
  let dev = dev_mb 1 in
  let san = Pmsan.attach dev in
  Pmsan.set_site san "proto";
  D.store_u64 dev 4096 1L;
  Pmsan.acked ~label:"bad-ack" dev ~addr:4096 ~len:8;
  let vs = Pmsan.violations san in
  Alcotest.(check bool) "dirty ack flagged" true
    (has Pmsan.Acked_unpersisted vs);
  Alcotest.(check string) "site recorded" "proto" (List.hd vs).Pmsan.site;
  ignore (Pmsan.drain_violations san);
  (* clwb without fence is still not durable *)
  D.clwb dev 4096;
  Pmsan.acked dev ~addr:4096 ~len:8;
  Alcotest.(check bool) "staged ack flagged" true
    (has Pmsan.Acked_unpersisted (Pmsan.violations san));
  ignore (Pmsan.drain_violations san);
  D.sfence dev;
  Pmsan.acked dev ~addr:4096 ~len:8;
  Alcotest.(check (list reject)) "persisted ack clean" []
    (Pmsan.violations san);
  Alcotest.(check int) "correctness counted" 2
    (Pmsan.counters san).Pmsan.correctness;
  Pmsan.detach san

let test_recovery_load () =
  let dev = dev_mb 1 in
  let san = Pmsan.attach dev in
  D.store_u64 dev 4096 1L (* never flushed *);
  D.store_u64 dev 8192 2L;
  D.persist dev 8192 8;
  D.crash dev;
  Alcotest.(check string) "indeterminate" "indeterminate"
    (Pmsan.line_state san 4096);
  Alcotest.(check string) "fenced line survives" "persisted"
    (Pmsan.line_state san 8192);
  (* loads outside a recovery bracket are not checked *)
  ignore (D.load_u64 dev 4096);
  Alcotest.(check (list reject)) "no bracket, no check" []
    (Pmsan.violations san);
  Pmsan.recovering dev (fun () ->
      ignore (D.load_u64 dev 8192) (* persisted: fine *);
      ignore (D.load_u64 dev 4096) (* indeterminate: violation *);
      ignore (D.load_u64 dev 4096) (* deduped per line *);
      Pmsan.validating dev (fun () ->
          ignore (D.load_u64 dev 4104) (* declared validated: fine *)));
  Alcotest.(check int) "exactly one recovery-load" 1
    (count Pmsan.Recovery_load (Pmsan.violations san));
  Pmsan.detach san

(* --- seeded fault injection: an omitted clwb must be caught ------------- *)

(* A tiny two-line commit protocol: payload line then a commit record.
   [omit_clwb] simulates the classic bug of forgetting to flush the
   payload before acknowledging — exactly what the sanitizer exists to
   catch deterministically, without needing a crash to sample it. *)
let two_line_commit dev ~omit_clwb =
  let payload = 4096 and commit = 4096 + 64 in
  D.store_u64 dev payload 0xdeadbeefL;
  if not omit_clwb then D.clwb dev payload;
  D.store_u64 dev commit 1L;
  D.clwb dev commit;
  D.sfence dev;
  D.ack_durable dev ~label:"two-line-commit" payload 128

let test_omitted_clwb_detected () =
  (* correct protocol: silent *)
  let dev = dev_mb 1 in
  let san = Pmsan.attach dev in
  two_line_commit dev ~omit_clwb:false;
  Alcotest.(check (list reject)) "correct protocol is silent" []
    (Pmsan.violations san);
  Pmsan.detach san;
  (* buggy protocol: deterministic Acked_unpersisted *)
  let dev = dev_mb 1 in
  let san = Pmsan.attach dev in
  two_line_commit dev ~omit_clwb:true;
  let vs = Pmsan.correctness (Pmsan.violations san) in
  Alcotest.(check bool) "omitted clwb detected" true
    (has Pmsan.Acked_unpersisted vs);
  (match vs with
  | v :: _ ->
    Alcotest.(check int) "points at the unflushed payload line" 4096
      v.Pmsan.addr
  | [] -> Alcotest.fail "no violation recorded");
  Pmsan.detach san

(* --- snapshot / rewind -------------------------------------------------- *)

let test_rewind () =
  let dev = dev_mb 1 in
  let san = Pmsan.attach dev in
  D.store_u64 dev 4096 1L;
  D.persist dev 4096 8;
  let ck = D.checkpoint dev in
  let snap = Pmsan.snapshot san in
  D.store_u64 dev 8192 2L;
  D.crash dev;
  Alcotest.(check string) "indeterminate after crash" "indeterminate"
    (Pmsan.line_state san 8192);
  D.restore dev ck;
  Pmsan.rewind san snap;
  Alcotest.(check string) "rewound to clean" "clean"
    (Pmsan.line_state san 8192);
  Alcotest.(check string) "persisted line preserved" "persisted"
    (Pmsan.line_state san 4096);
  Alcotest.(check (list reject)) "violations cleared" []
    (Pmsan.violations san);
  Pmsan.detach san

(* --- whole indexes under the sanitizer ---------------------------------- *)

let ccl_driver t =
  {
    I.name = "CCL-BTree";
    upsert = T.upsert t;
    search = T.search t;
    delete = T.delete t;
    scan = (fun ~start n -> T.scan t ~start n);
    flush_all = (fun () -> T.flush_all t);
    dram_bytes = (fun () -> T.dram_bytes t);
    pm_bytes = (fun () -> T.pm_bytes t);
    allocator = (fun () -> T.allocator t);
    counters = (fun () -> []);
    new_reader = None;
    new_writer = None;
  }

let check_report r =
  Fmt.epr "%a@." Pmsan.pp_index_report r;
  Alcotest.(check (list string))
    (r.Pmsan.index ^ ": model errors")
    [] r.Pmsan.model_errors;
  Alcotest.(check int)
    (r.Pmsan.index ^ ": correctness violations")
    0 (Pmsan.correctness_count r)

let test_ccl_under_sanitizer () =
  let r =
    Pmsan.check_index ~name:"CCL-BTree"
      ~create:(fun dev -> ccl_driver (T.create dev))
      ~recover:(fun dev -> ccl_driver (T.recover dev))
      ()
  in
  check_report r;
  Alcotest.(check bool) "recovered at least twice" true (r.Pmsan.recoveries >= 2)

let baseline_specs =
  [
    Harness.Runner.Fastfair;
    Harness.Runner.Fptree;
    Harness.Runner.Lbtree;
    Harness.Runner.Utree;
    Harness.Runner.Dptree;
    Harness.Runner.Pactree;
    Harness.Runner.Flatstore;
    Harness.Runner.Lsm;
  ]

let test_baselines_under_sanitizer () =
  Alcotest.(check int) "all eight baselines" 8 (List.length baseline_specs);
  List.iter
    (fun spec ->
      let name = Harness.Runner.name spec in
      let r =
        Pmsan.check_index ~name
          ~create:(fun dev -> Harness.Runner.build spec dev)
          ()
      in
      check_report r)
    baseline_specs

(* --- flush/fence elision regressions ------------------------------------ *)

module K = Workload.Keygen
module Y = Workload.Ycsb

(* Scaled-down README pmsan workload (insert-intensive).  Before the
   flush/fence elision fixes this reproduced every waste class the README
   table used to report: CCL-BTree's split path fenced with nothing
   staged (251 empty sfences at this scale) and re-flushed clean
   new-leaf lines, FAST&FAIR's shift path re-clwb'd the header line once
   per insert (597 duplicates), pactree persisted clean new-node tails on
   split, and the LSM flushed whole 64 KB chunks per memtable drain
   (34.9% redundant).  These tests pin all of that at zero. *)
let readme_workload_counters spec =
  let warmup = 2000 and ops = 2000 in
  let dev = Harness.Runner.device ~mb:96 () in
  let san = Pmsan.attach ~site:"create" dev in
  let drv = Harness.Runner.build spec dev in
  Pmsan.set_site san "warmup";
  Harness.Runner.warmup drv ~keys:(K.shuffled_range ~seed:1 warmup);
  let stream =
    Y.generate Y.Insert_intensive ~seed:7 ~space:(2 * warmup) ~scan_len:100 ops
  in
  Pmsan.set_site san "ops";
  Array.iter
    (fun op ->
      match op with
      | Y.Insert (k, v) -> drv.I.upsert k v
      | Y.Read k -> ignore (drv.I.search k)
      | Y.Scan (k, n) -> ignore (drv.I.scan ~start:k n))
    stream;
  Pmsan.set_site san "drain";
  drv.I.flush_all ();
  D.drain dev;
  let c = Pmsan.counters_copy (Pmsan.counters san) in
  Pmsan.detach san;
  c

let test_ccl_no_flush_waste () =
  let c = readme_workload_counters Harness.Runner.ccl_default in
  Alcotest.(check int) "ccl: empty sfences" 0 c.Pmsan.sfence_empty;
  Alcotest.(check int) "ccl: redundant clwbs" 0 c.Pmsan.clwb_redundant;
  Alcotest.(check int) "ccl: duplicate clwbs" 0 c.Pmsan.clwb_duplicate;
  Alcotest.(check int) "ccl: correctness" 0 c.Pmsan.correctness

let test_fastfair_no_duplicate_clwbs () =
  let c = readme_workload_counters Harness.Runner.Fastfair in
  Alcotest.(check int) "fastfair: duplicate clwbs" 0 c.Pmsan.clwb_duplicate;
  Alcotest.(check int) "fastfair: redundant clwbs" 0 c.Pmsan.clwb_redundant;
  Alcotest.(check int) "fastfair: empty sfences" 0 c.Pmsan.sfence_empty

let test_pactree_no_duplicate_clwbs () =
  let c = readme_workload_counters Harness.Runner.Pactree in
  Alcotest.(check int) "pactree: duplicate clwbs" 0 c.Pmsan.clwb_duplicate;
  Alcotest.(check int) "pactree: redundant clwbs" 0 c.Pmsan.clwb_redundant;
  Alcotest.(check int) "pactree: empty sfences" 0 c.Pmsan.sfence_empty

let test_lsm_redundancy_under_target () =
  let c = readme_workload_counters Harness.Runner.Lsm in
  let pct = Pmsan.redundant_flush_pct c in
  Alcotest.(check bool)
    (Printf.sprintf "lsm: redundant flush rate %.1f%% < 5%%" pct)
    true (pct < 5.0);
  Alcotest.(check int) "lsm: empty sfences" 0 c.Pmsan.sfence_empty

(* --- flush budgets ------------------------------------------------------ *)

let test_budget_api () =
  let text =
    {|{ "ccl.redundant_pct": 1.5, "ccl.duplicate": 2, "other.empty_sfence": 3 }|}
  in
  let bindings = Obs.Json.scan_numbers text in
  (match Pmsan.Budget.of_bindings ~index:"ccl" bindings with
  | None -> Alcotest.fail "expected a ceiling for ccl"
  | Some c ->
    Alcotest.(check (float 1e-9))
      "redundant_pct parsed" 1.5 c.Pmsan.Budget.redundant_pct;
    Alcotest.(check int) "duplicate parsed" 2 c.Pmsan.Budget.duplicate;
    Alcotest.(check int) "absent field is 0" 0 c.Pmsan.Budget.empty_sfence);
  Alcotest.(check bool)
    "unknown index has no ceiling" true
    (Pmsan.Budget.of_bindings ~index:"nope" bindings = None);
  let c = Pmsan.counters_create () in
  c.Pmsan.clwb <- 100;
  c.Pmsan.clwb_redundant <- 10;
  (match Pmsan.Budget.check Pmsan.Budget.exact c with
  | Ok () -> Alcotest.fail "exact ceiling must flag 10% redundancy"
  | Error breaches ->
    Alcotest.(check bool) "breach described" true (breaches <> []));
  match Pmsan.Budget.check (Pmsan.Budget.ceiling ~redundant_pct:10.0 ()) c with
  | Ok () -> ()
  | Error bs -> Alcotest.failf "unexpected breach: %s" (String.concat "; " bs)

(* Per-index sweep against the committed ceilings.  The table mirrors
   FLUSH_BUDGET.json (keep the two in sync): the four fixed indexes plus
   the four already-clean ones hold the all-zero budget; fptree, lbtree
   and dptree carry their pre-existing redundancy, capped where it
   stands so it can only improve. *)
let budget_table =
  [
    (Harness.Runner.ccl_default, Pmsan.Budget.exact);
    (Harness.Runner.Fastfair, Pmsan.Budget.exact);
    (Harness.Runner.Pactree, Pmsan.Budget.exact);
    (Harness.Runner.Lsm, Pmsan.Budget.exact);
    (Harness.Runner.Utree, Pmsan.Budget.exact);
    (Harness.Runner.Flatstore, Pmsan.Budget.exact);
    (Harness.Runner.Fptree, Pmsan.Budget.ceiling ~redundant_pct:4.0 ());
    (Harness.Runner.Lbtree, Pmsan.Budget.ceiling ~redundant_pct:4.0 ());
    (Harness.Runner.Dptree, Pmsan.Budget.ceiling ~redundant_pct:3.0 ());
  ]

let test_budget_sweep () =
  List.iter
    (fun (spec, ceiling) ->
      let name = Harness.Runner.name spec in
      let c = readme_workload_counters spec in
      match Pmsan.Budget.check ceiling c with
      | Ok () -> ()
      | Error breaches ->
        Alcotest.failf "%s: %s" name (String.concat "; " breaches))
    budget_table

(* --- model checker integration ------------------------------------------ *)

let test_crashmc_sanitized () =
  let ops = Crashmc.mixed_workload ~seed:11 ~n:60 ~key_space:25 in
  let r =
    Crashmc.check ~stride:7 ~persist_probs:[ 0.5 ] ~crash_seeds:[ 3 ]
      ~sanitize:true ops
  in
  Alcotest.(check int) "no violations under sanitized sweep" 0
    (List.length r.Crashmc.violations);
  match r.Crashmc.pmsan_counters with
  | None -> Alcotest.fail "sanitize:true must report counters"
  | Some c ->
    Alcotest.(check bool) "sweep saw flushes" true (c.Pmsan.clwb > 0);
    Alcotest.(check int) "no correctness findings" 0 c.Pmsan.correctness

let () =
  ignore kinds;
  Alcotest.run "pmsan"
    [
      ( "machine",
        [
          Alcotest.test_case "happy path" `Quick test_happy_path;
          Alcotest.test_case "eadr rejected" `Quick test_eadr_rejected;
          Alcotest.test_case "rewind" `Quick test_rewind;
        ] );
      ( "performance",
        [
          Alcotest.test_case "redundant clwb" `Quick test_redundant_clwb;
          Alcotest.test_case "duplicate clwb" `Quick test_duplicate_clwb;
          Alcotest.test_case "empty sfence" `Quick test_empty_sfence;
        ] );
      ( "correctness",
        [
          Alcotest.test_case "stale fence" `Quick test_stale_fence;
          Alcotest.test_case "acked unpersisted" `Quick test_acked_unpersisted;
          Alcotest.test_case "recovery load" `Quick test_recovery_load;
          Alcotest.test_case "omitted clwb detected" `Quick
            test_omitted_clwb_detected;
        ] );
      ( "indexes",
        [
          Alcotest.test_case "ccl-btree" `Quick test_ccl_under_sanitizer;
          Alcotest.test_case "eight baselines" `Slow
            test_baselines_under_sanitizer;
        ] );
      ( "elision",
        [
          Alcotest.test_case "ccl: no flush waste" `Quick
            test_ccl_no_flush_waste;
          Alcotest.test_case "fastfair: no duplicate clwbs" `Quick
            test_fastfair_no_duplicate_clwbs;
          Alcotest.test_case "pactree: no duplicate clwbs" `Quick
            test_pactree_no_duplicate_clwbs;
          Alcotest.test_case "lsm: redundancy under target" `Quick
            test_lsm_redundancy_under_target;
        ] );
      ( "budget",
        [
          Alcotest.test_case "api" `Quick test_budget_api;
          Alcotest.test_case "per-index sweep" `Slow test_budget_sweep;
        ] );
      ( "crashmc",
        [ Alcotest.test_case "sanitized sweep" `Slow test_crashmc_sanitized ] );
    ]
