(* Tests for the sharded, domain-parallel execution layer:

   - the bounded MPSC queue's FIFO and blocking contracts,
   - router partitioning (hash and range) and stream partition helpers,
   - equivalence: a randomized op stream applied to an N-shard fleet and
     to one single-device CCL-BTree gives identical search/scan/iter
     results after quiesce,
   - crash-at-a-random-fence -> recover -> audit over all shards,
   - measured counters (applied ops, per-shard busy clocks). *)

module D = Pmem.Device
module S = Pmem.Stats
module T = Ccl_btree.Tree
module I = Baselines.Index_intf
module Y = Workload.Ycsb
module K = Workload.Keygen

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let small_dev () =
  D.create ~config:(Pmem.Config.default ~size:(8 * 1024 * 1024) ()) ()

(* CCL-BTree shards with the Tree.t handles kept around, so tests can run
   recovery and invariant checks on the worker-owned trees during
   quiescent windows. *)
let ccl_fleet ?(config = Shard.default_config) shards =
  let trees = Array.make shards None in
  let t =
    Shard.create
      ~config:{ config with Shard.shards }
      ~make:(fun i ->
        let dev = small_dev () in
        let tree = T.create dev in
        trees.(i) <- Some tree;
        (dev, I.driver (module Baselines.Ccl_index) tree))
      ()
  in
  (t, trees)

let tree_of trees i =
  match trees.(i) with Some t -> t | None -> Alcotest.fail "no tree"

(* --- queue -------------------------------------------------------------- *)

let test_queue_fifo () =
  let q = Shard.Queue.create ~capacity:4 in
  (* a consumer domain drains; the producer overfills the capacity, so
     pushes must block and back-pressure rather than fail *)
  let got = ref [] in
  let consumer =
    Domain.spawn (fun () ->
        for _ = 1 to 100 do
          got := Shard.Queue.pop q :: !got
        done)
  in
  for i = 1 to 100 do
    Shard.Queue.push q i
  done;
  Domain.join consumer;
  check_int "all delivered" 100 (List.length !got);
  check_bool "FIFO order" true (List.rev !got = List.init 100 (fun i -> i + 1));
  check_int "empty after" 0 (Shard.Queue.length q)

let test_queue_clear () =
  let q = Shard.Queue.create ~capacity:8 in
  Shard.Queue.push q 1;
  Shard.Queue.push q 2;
  Shard.Queue.clear q;
  check_int "cleared" 0 (Shard.Queue.length q);
  Shard.Queue.push q 3;
  check_int "usable after clear" 3 (Shard.Queue.pop q)

(* --- partitioning ------------------------------------------------------- *)

let test_hash_partition_balances () =
  let t, _ = ccl_fleet 4 in
  let counts = Array.make 4 0 in
  Array.iter
    (fun k ->
      let s = Shard.shard_of t k in
      counts.(s) <- counts.(s) + 1)
    (K.shuffled_range ~seed:3 8000);
  Shard.shutdown t;
  Array.iteri
    (fun i c ->
      check_bool (Printf.sprintf "shard %d within 20%% of fair share" i) true
        (c > 1600 && c < 2400))
    counts

let test_range_partition_orders () =
  let t, _ =
    ccl_fleet
      ~config:
        {
          Shard.default_config with
          partition = Shard.Range { lo = 0L; hi = 1000L };
        }
      4
  in
  check_int "low key -> first shard" 0 (Shard.shard_of t 1L);
  check_int "high key -> last shard" 3 (Shard.shard_of t 999L);
  check_bool "monotone" true
    (Shard.shard_of t 100L <= Shard.shard_of t 600L);
  Shard.shutdown t

let test_stream_partition_helpers () =
  let shard_of k = Int64.to_int (Int64.rem k 3L) in
  let keys = K.shuffled_range ~seed:5 300 in
  let parts = K.partition ~shards:3 ~shard_of keys in
  check_int "keys conserved" 300
    (Array.fold_left (fun a p -> a + Array.length p) 0 parts);
  Array.iteri
    (fun s part ->
      Array.iter (fun k -> check_int "routed home" s (shard_of k)) part)
    parts;
  (* relative order within a shard is the stream order *)
  let order = Hashtbl.create 300 in
  Array.iteri (fun i k -> Hashtbl.replace order k i) keys;
  Array.iter
    (fun part ->
      let idx = Array.map (fun k -> Hashtbl.find order k) part in
      Array.iteri
        (fun i v -> if i > 0 then check_bool "order kept" true (idx.(i - 1) < v))
        idx)
    parts;
  let ops = Y.generate Y.Insert_intensive ~seed:6 ~space:500 ~scan_len:10 200 in
  let op_parts = Y.partition ~shards:3 ~shard_of ops in
  check_int "ops conserved" 200
    (Array.fold_left (fun a p -> a + Array.length p) 0 op_parts)

(* --- equivalence with a single tree ------------------------------------- *)

let random_ops ~seed n =
  let rng = Random.State.make [| seed |] in
  List.init n (fun i ->
      let k = Int64.of_int (1 + Random.State.int rng 700) in
      match Random.State.int rng 10 with
      | 0 -> `Del k
      | _ -> `Ups (k, Int64.of_int (i + 1)))

let test_equivalence_with_single_tree () =
  let shards = 3 in
  let t, trees = ccl_fleet shards in
  let oracle_dev = small_dev () in
  let oracle = T.create oracle_dev in
  List.iter
    (fun op ->
      match op with
      | `Ups (k, v) ->
        Shard.upsert t k v;
        T.upsert oracle k v
      | `Del k ->
        Shard.delete t k;
        T.delete oracle k)
    (random_ops ~seed:11 4000);
  Shard.flush t;
  (* searches agree on hits and misses *)
  for k = 1 to 800 do
    let k = Int64.of_int k in
    Alcotest.(check (option int64))
      (Printf.sprintf "search %Ld" k)
      (T.search oracle k) (Shard.search t k)
  done;
  (* scatter-gather scan agrees with the single tree's scan *)
  List.iter
    (fun (start, n) ->
      let a = Shard.scan t ~start n in
      let b = T.scan oracle ~start n in
      check_bool (Printf.sprintf "scan %Ld+%d" start n) true (a = b))
    [ (1L, 50); (100L, 100); (350L, 17); (699L, 10); (900L, 5) ];
  (* full merged iteration agrees *)
  let of_iter it =
    let acc = ref [] in
    it (fun k v -> acc := (k, v) :: !acc);
    List.rev !acc
  in
  let got = of_iter (fun f -> Shard.iter t f) in
  let expect = of_iter (fun f -> T.iter oracle f) in
  check_bool "iter equal" true (got = expect);
  check_int "entries count" (List.length expect)
    (Array.length (Shard.entries t));
  (* per-shard trees individually satisfy the structural invariants *)
  for i = 0 to shards - 1 do
    T.check_invariants (tree_of trees i)
  done;
  Shard.shutdown t

let test_run_ycsb_stream () =
  let t, _ = ccl_fleet 3 in
  Shard.run t
    (Array.mapi
       (fun i k -> Y.Insert (k, Int64.of_int (i + 1)))
       (K.shuffled_range ~seed:13 2000));
  Shard.flush t;
  let ops = Y.generate Y.Scan_insert ~seed:14 ~space:2000 ~scan_len:30 500 in
  Shard.run t ops;
  Shard.flush t;
  let applied = Array.fold_left ( + ) 0 (Shard.applied t) in
  (* every routed command ran: 2000 loads, plus the mixed stream (scans
     scatter one share per shard) *)
  let scans =
    Array.fold_left
      (fun a op -> match op with Y.Scan _ -> a + 1 | _ -> a)
      0 ops
  in
  check_int "applied everything" (2000 + (Array.length ops - scans) + (scans * 3))
    applied;
  let busy = Shard.busy_ns t in
  Array.iteri
    (fun i b -> check_bool (Printf.sprintf "shard %d clocked work" i) true (b > 0))
    busy;
  check_bool "merged stats saw traffic" true
    ((Shard.stats t).S.media_write_bytes > 0);
  Shard.shutdown t

(* --- crash and recovery ------------------------------------------------- *)

(* Run a random upsert/delete stream with a power failure armed at a
   random fence of a random shard; crash the whole fleet; recover every
   shard with Tree.recover; audit.

   Acknowledgement contract of the shard layer: everything routed before
   the last flush is acked, so it must read back exactly (CCL-BTree's
   per-op durability covers acked upserts).  Operations routed after the
   last flush may or may not have applied: those keys may read as the
   acked value, any later submitted value, or (if never acked) absent. *)
let crash_recover_audit ~seed =
  let shards = 3 in
  let t, trees = ccl_fleet shards in
  let rng = Random.State.make [| seed |] in
  Shard.plan_failure t
    ~shard:(Random.State.int rng shards)
    ~after_fences:(1 + Random.State.int rng 400);
  (* [acked]: key -> value as of the last flush that completed before any
     shard crashed (absence = absent or deleted).  [pending]: key -> every
     state submitted since then, newest first ([Some v] upsert, [None]
     delete).  After a crash, a key may legitimately hold its acked state
     or any submitted-but-unacked state — but nothing else. *)
  let acked = Hashtbl.create 512 in
  let pending = Hashtbl.create 64 in
  let submit op =
    let k, s = match op with `Ups (k, v) -> (k, Some v) | `Del k -> (k, None) in
    let prev = Option.value ~default:[] (Hashtbl.find_opt pending k) in
    Hashtbl.replace pending k (s :: prev)
  in
  let ack_pending () =
    Hashtbl.iter
      (fun k states ->
        match states with
        | Some v :: _ -> Hashtbl.replace acked k v
        | None :: _ -> Hashtbl.remove acked k
        | [] -> ())
      pending;
    Hashtbl.reset pending
  in
  List.iteri
    (fun i op ->
      (match op with
      | `Ups (k, v) -> Shard.upsert t k v
      | `Del k -> Shard.delete t k);
      submit op;
      if (i + 1) mod 500 = 0 then begin
        Shard.flush t;
        if not (Array.exists Fun.id (Shard.crashed t)) then ack_pending ()
      end)
    (random_ops ~seed:(seed + 1) 3000);
  Shard.crash t;
  Shard.recover t (fun i dev ->
      let tree = T.recover dev in
      trees.(i) <- Some tree;
      I.driver (module Baselines.Ccl_index) tree);
  for i = 0 to shards - 1 do
    T.check_invariants (tree_of trees i)
  done;
  let errs = ref [] in
  let audit k =
    let got = Shard.search t k in
    let acked_v = Hashtbl.find_opt acked k in
    let subs = Option.value ~default:[] (Hashtbl.find_opt pending k) in
    if got <> acked_v && not (List.mem got subs) then
      errs :=
        Printf.sprintf "seed %d: key %Ld recovered to an unsubmitted state"
          seed k
        :: !errs
  in
  Hashtbl.iter (fun k _ -> audit k) acked;
  Hashtbl.iter (fun k _ -> if not (Hashtbl.mem acked k) then audit k) pending;
  Shard.shutdown t;
  !errs

let test_crash_recover_all_shards () =
  let errs = List.concat_map (fun seed -> crash_recover_audit ~seed) [ 1; 2; 3; 4; 5 ] in
  if errs <> [] then Alcotest.fail (String.concat "\n" errs)

let test_clean_crash_loses_nothing () =
  (* drain-quiesced fleet: a crash afterwards must preserve every entry *)
  let t, trees = ccl_fleet 2 in
  let keys = K.shuffled_range ~seed:21 1500 in
  Array.iteri (fun i k -> Shard.upsert t k (Int64.of_int (i + 1))) keys;
  Shard.drain t;
  let expect = Shard.entries t in
  Shard.crash t;
  Shard.recover t (fun i dev ->
      let tree = T.recover dev in
      trees.(i) <- Some tree;
      I.driver (module Baselines.Ccl_index) tree);
  let got = Shard.entries t in
  check_bool "all entries survive a post-drain crash" true (got = expect);
  check_int "entry count" 1500 (Array.length got);
  Shard.shutdown t

(* --- clocks ------------------------------------------------------------- *)

let test_clocks () =
  let w0 = Shard.Clock.monotonic_ns () in
  let c0 = Shard.Clock.thread_cpu_ns () in
  (* burn a little CPU so both clocks must advance *)
  let acc = ref 0 in
  for i = 0 to 2_000_000 do
    acc := !acc + i
  done;
  ignore !acc;
  let w1 = Shard.Clock.monotonic_ns () in
  let c1 = Shard.Clock.thread_cpu_ns () in
  check_bool "monotonic advances" true (Int64.compare w1 w0 > 0);
  check_bool "cpu clock advances" true (Int64.compare c1 c0 > 0);
  (* CPU time never exceeds wall time for a single busy thread *)
  check_bool "cpu <= wall (with slack)" true
    (Int64.compare (Int64.sub c1 c0)
       (Int64.add (Int64.sub w1 w0) 50_000_000L)
    <= 0)

let () =
  Alcotest.run "shard"
    [
      ( "queue",
        [
          Alcotest.test_case "fifo + backpressure" `Quick test_queue_fifo;
          Alcotest.test_case "clear" `Quick test_queue_clear;
        ] );
      ( "partition",
        [
          Alcotest.test_case "hash balances" `Quick test_hash_partition_balances;
          Alcotest.test_case "range orders" `Quick test_range_partition_orders;
          Alcotest.test_case "stream helpers" `Quick
            test_stream_partition_helpers;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "matches single tree" `Quick
            test_equivalence_with_single_tree;
          Alcotest.test_case "ycsb stream + counters" `Quick
            test_run_ycsb_stream;
        ] );
      ( "crash",
        [
          Alcotest.test_case "random-fence failure, recover, audit" `Quick
            test_crash_recover_all_shards;
          Alcotest.test_case "post-drain crash lossless" `Quick
            test_clean_crash_loses_nothing;
        ] );
      ("clock", [ Alcotest.test_case "advances" `Quick test_clocks ]);
    ]
